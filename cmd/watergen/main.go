// Command watergen builds and equilibrates TIP3P water boxes and writes
// them as gob files for reuse by mdrun and the experiment harness.
//
//	watergen -side 16 -steps 500 -o water16.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"tme4a/internal/md"
	"tme4a/internal/water"
)

func main() {
	side := flag.Int("side", 16, "waters per box edge (side³ molecules)")
	steps := flag.Int("steps", 300, "equilibration steps (1 fs, 300 K)")
	seed := flag.Int64("seed", 7, "random seed")
	out := flag.String("o", "water.gob", "output file")
	flag.Parse()

	nmol := (*side) * (*side) * (*side)
	box := water.CubicBoxFor(nmol)
	fmt.Printf("building %d TIP3P waters in a %.4f nm box...\n", nmol, box.L[0])
	sys := water.Build(*side, *side, *side, box, *seed)
	if *steps > 0 {
		rc := box.L[0] / 2 * 0.95
		if rc > 0.9 {
			rc = 0.9
		}
		fmt.Printf("equilibrating %d steps at 300 K (rc = %.2f nm)...\n", *steps, rc)
		water.Equilibrate(sys, *steps, 0.001, 300, rc, *seed+1)
		fmt.Printf("final temperature: %.1f K\n", sys.Temperature())
	}
	snap := sys.TakeSnapshot(map[string]int64{"side": int64(*side), "seed": *seed})
	if err := md.SaveSnapshot(*out, snap); err != nil {
		fmt.Fprintf(os.Stderr, "watergen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d atoms)\n", *out, sys.N())
}
