// Command tmebench regenerates every table and figure of the paper's
// evaluation:
//
//	tmebench -exp fig3a      Gaussian-sum approximation of g_{α,l} (Fig 3a)
//	tmebench -exp fig3b      approximation error vs M (Fig 3b)
//	tmebench -exp table1     relative force errors of SPME and TME (Table 1)
//	tmebench -exp shootout   kernel-family accuracy/cost shootout (GL vs u-series)
//	tmebench -exp fig4       NVE total-energy stability (Fig 4)
//	tmebench -exp fig4resume crash/resume bitwise-identity harness
//	tmebench -exp fig9       single-step machine time chart (Fig 9)
//	tmebench -exp fig9live   measured per-stage step breakdown (live Fig 9)
//	tmebench -exp fig10      long-range phase breakdown (Fig 10, Sec V.B)
//	tmebench -exp fig10scale rank strong-scaling sweep with torus comm model
//	tmebench -exp overlap    step time with/without long-range (Sec V.C)
//	tmebench -exp table2     cross-system comparison (Table 2)
//	tmebench -exp costmodel  Sec III.C cost model + strong-scaling curves
//	tmebench -exp grid64     64³ (L=2) projection (Sec VI.A)
//	tmebench -exp whatif     Sec VI.B design-space accelerations
//	tmebench -exp saturate   mdserve multi-tenant saturation sweep
//	tmebench -exp autotune   auto-tuner oracle: measured error/cost of every plan
//	tmebench -exp all        everything above
//
// By default experiments run at single-host ("quick") scale, which
// preserves all dimensionless parameters of the paper (see DESIGN.md);
// -full runs the paper-scale workloads (the Table 1 reference Ewald
// summation then takes tens of minutes and is cached under results/cache).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tme4a/internal/expt"
	"tme4a/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig3a,fig3b,table1,shootout,fig4,fig4resume,fig9,fig9live,fig10,fig10scale,overlap,table2,costmodel,grid64,whatif,saturate,autotune,all")
	full := flag.Bool("full", false, "run paper-scale workloads (slow)")
	outDir := flag.String("out", "results", "output directory ('' = stdout only)")
	flag.Parse()

	runner := &runner{full: *full, outDir: *outDir}
	exps := []string{*exp}
	if *exp == "all" {
		exps = []string{"fig3a", "fig3b", "table1", "shootout", "fig4", "fig4resume", "fig9", "fig9live", "fig10", "fig10scale", "overlap", "table2", "costmodel", "grid64", "whatif", "saturate", "autotune"}
	}
	for _, e := range exps {
		if err := runner.run(e); err != nil {
			fmt.Fprintf(os.Stderr, "tmebench: %s: %v\n", e, err)
			os.Exit(1)
		}
	}
}

type runner struct {
	full   bool
	outDir string
	hw     *expt.HWContext
}

func (r *runner) hwContext() *expt.HWContext {
	if r.hw == nil {
		r.hw = expt.NewHWContext()
	}
	return r.hw
}

// out returns a writer that tees to stdout and results/<name>.csv.
func (r *runner) out(name string) (io.Writer, func()) {
	if r.outDir == "" {
		return os.Stdout, func() {}
	}
	if err := os.MkdirAll(r.outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "tmebench: %v (writing to stdout only)\n", err)
		return os.Stdout, func() {}
	}
	f, err := os.Create(filepath.Join(r.outDir, name))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmebench: %v (writing to stdout only)\n", err)
		return os.Stdout, func() {}
	}
	return io.MultiWriter(os.Stdout, f), func() { f.Close() }
}

// writeJSON writes the machine-readable stage report to path at the
// repository root (next to the results directory), the artifact CI uploads.
func writeJSON(path string, rep obs.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("wrote %s\n", path)
	return rep.WriteJSON(f)
}

func (r *runner) run(exp string) error {
	fmt.Printf("\n===== %s =====\n", exp)
	switch exp {
	case "fig3a":
		w, done := r.out("fig3a.csv")
		defer done()
		expt.RunFig3(2, 160, 8, w)
	case "fig3b":
		w, done := r.out("fig3b.csv")
		defer done()
		pts := expt.RunFig3(4, 400, 10, nil)
		fmt.Fprintf(w, "# Fig 3b: max |approx - exact|/g(0) over x in [0,10]\n")
		fmt.Fprintf(w, "M,max_error\n")
		for m := 1; m <= 4; m++ {
			fmt.Fprintf(w, "%d,%.3e\n", m, expt.MaxErr(pts, m))
		}
	case "table1":
		cfg := expt.QuickTable1()
		if r.full {
			cfg = expt.FullTable1()
		}
		w, done := r.out("table1.csv")
		defer done()
		expt.RunTable1(cfg, w)
	case "shootout":
		cfg := expt.QuickShootout()
		if r.full {
			cfg = expt.FullShootout()
		}
		w, done := r.out("shootout.csv")
		defer done()
		expt.RunShootout(cfg, w)
	case "fig4":
		cfg := expt.QuickFig4()
		if r.full {
			cfg = expt.FullFig4()
		}
		w, done := r.out("fig4.csv")
		defer done()
		expt.RunFig4(cfg, w)
	case "fig4resume":
		cfg := expt.QuickFig4Resume()
		w, done := r.out("fig4resume.txt")
		defer done()
		ckdir, err := os.MkdirTemp("", "tme-ckpt-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(ckdir)
		res, err := expt.RunFig4Resume(cfg, filepath.Join(ckdir, "clean"), filepath.Join(ckdir, "torn"), nil, w)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "final state hash %016x (resume points: clean %d, torn fallback %d)\n",
			res.FinalHash, res.ResumedFrom, res.TornResumeFrom)
	case "fig9":
		w, done := r.out("fig9.txt")
		defer done()
		r.hwContext().RunFig9(w)
	case "fig9live":
		cfg := expt.QuickFig9Live()
		if r.full {
			cfg = expt.FullFig9Live()
		}
		w, done := r.out("fig9live.txt")
		defer done()
		rep := expt.RunFig9Live(cfg, w)
		if err := writeJSON("BENCH_obs.json", rep); err != nil {
			return err
		}
	case "fig10":
		w, done := r.out("fig10.csv")
		defer done()
		r.hwContext().RunFig10(w)
	case "fig10scale":
		cfg := expt.QuickFigScale()
		if r.full {
			cfg = expt.FullFigScale()
		}
		w, done := r.out("fig10scale.csv")
		defer done()
		points, err := expt.RunFigScale(cfg, w)
		if err != nil {
			return err
		}
		f, err := os.Create("BENCH_scale.json")
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"experiment": "fig10scale", "points": points}); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_scale.json")
	case "overlap":
		w, done := r.out("overlap.csv")
		defer done()
		r.hwContext().RunOverlap(w)
	case "table2":
		w, done := r.out("table2.csv")
		defer done()
		r.hwContext().RunTable2(w)
	case "costmodel":
		w, done := r.out("costmodel.csv")
		defer done()
		expt.RunCostModel(w)
	case "grid64":
		w, done := r.out("grid64.csv")
		defer done()
		r.hwContext().RunGrid64(w)
	case "whatif":
		w, done := r.out("whatif.csv")
		defer done()
		expt.RunWhatIf(r.hwContext(), w)
	case "saturate":
		w, done := r.out("saturate.csv")
		defer done()
		points, err := expt.RunSaturate(expt.QuickSaturate(), w)
		if err != nil {
			return err
		}
		f, err := os.Create("BENCH_serve.json")
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"experiment": "saturate", "points": points}); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_serve.json")
	case "autotune":
		w, done := r.out("autotune.csv")
		defer done()
		rows, verdicts, err := expt.RunAutotune(expt.QuickAutotune(), w)
		if err != nil {
			return err
		}
		f, err := os.Create("BENCH_tune.json")
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"experiment": "autotune", "rows": rows, "verdicts": verdicts,
		}); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_tune.json")
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
