package main

import (
	"fmt"
	"math"

	"tme4a/internal/core"
	"tme4a/internal/ewald"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

func main() {
	box := water.CubicBoxFor(4096)
	sys := water.Build(16, 16, 16, box, 7)
	water.Equilibrate(sys, 300, 0.001, 300, 0.9, 8)
	// NO exclusions: full Coulomb among all point charges, as a pure
	// electrostatics benchmark would do.
	_, fRef := ewald.Reference(sys.Box, sys.Pos, sys.Q, nil, 1e-8)
	var s2 float64
	for _, fi := range fRef {
		s2 += fi.Norm2()
	}
	fmt.Printf("no-exclusion RMS|F_ref| = %.0f kJ/mol/nm\n", math.Sqrt(s2/float64(len(fRef))))
	relErr := func(f []vec.V) float64 {
		var n, d float64
		for i := range f {
			n += f[i].Sub(fRef[i]).Norm2()
			d += fRef[i].Norm2()
		}
		return math.Sqrt(n / d)
	}
	for _, rc := range []float64{1.0, 1.25, 1.5} {
		alpha := spme.AlphaFromRTol(rc, 1e-4)
		s := spme.New(spme.Params{Alpha: alpha, Rc: rc, Order: 6, N: [3]int{16, 16, 16}}, box)
		f := make([]vec.V, sys.N())
		s.Coulomb(sys.Pos, sys.Q, nil, f)
		t := core.New(core.Params{Alpha: alpha, Rc: rc, Order: 6, N: [3]int{16, 16, 16}, Levels: 1, M: 3, Gc: 8}, box)
		ft := make([]vec.V, sys.N())
		t.Coulomb(sys.Pos, sys.Q, nil, ft)
		fmt.Printf("rc=%.2f: SPME %.3e (paper %s)  TME(M3gc8) %.3e (paper %s)\n",
			rc, relErr(f), map[float64]string{1.0: "5.86e-4", 1.25: "1.33e-4", 1.5: "5.92e-5"}[rc],
			relErr(ft), map[float64]string{1.0: "6.18e-4", 1.25: "1.40e-4", 1.5: "5.99e-5"}[rc])
	}
}
