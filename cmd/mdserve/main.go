// Command mdserve is the MD-as-a-service daemon: it serves the
// internal/serve job API over HTTP, multiplexing every submitted
// simulation across the shared worker pool in fair round-robin quanta.
//
// Usage:
//
//	mdserve -addr :8612 -dir mdserve-data
//
// Submit and watch a job:
//
//	curl -s localhost:8612/jobs -d '{"method":"tme","side":4,"steps":1000}'
//	curl -s localhost:8612/jobs/j000000
//	curl -s localhost:8612/jobs/j000000/metrics
//	curl -sN localhost:8612/jobs/j000000/stream
//
// With -dir set, jobs are durable: killing the daemon at any instant —
// including mid-checkpoint — and restarting it resumes every unfinished
// job from its newest valid checkpoint, bitwise identical to a run that
// was never interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tme4a/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8612", "listen address")
	dir := flag.String("dir", "mdserve-data", "durability root (specs, checkpoints); empty disables persistence")
	maxActive := flag.Int("max-active", 8, "concurrent jobs in the round-robin ring")
	queueCap := flag.Int("queue", 64, "pending-queue capacity (beyond it, submissions get 429)")
	quantum := flag.Int("quantum", 25, "steps per scheduling quantum")
	ckptEvery := flag.Int("ckpt-every", 200, "checkpoint cadence in steps (0 disables)")
	ckptKeep := flag.Int("ckpt-keep", 3, "checkpoints retained per job")
	energyEvery := flag.Int("energy-every", 10, "energy-ledger cadence in steps")
	flag.Parse()

	sched, err := serve.New(serve.Config{
		Dir:         *dir,
		MaxActive:   *maxActive,
		QueueCap:    *queueCap,
		Quantum:     *quantum,
		CkptEvery:   *ckptEvery,
		CkptKeep:    *ckptKeep,
		EnergyEvery: *energyEvery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdserve: %v\n", err)
		os.Exit(1)
	}
	resumed := 0
	for _, st := range sched.List() {
		if !st.State.Terminal() {
			resumed++
		}
	}
	if resumed > 0 {
		fmt.Printf("mdserve: recovered %d unfinished job(s) from %s\n", resumed, *dir)
	}
	sched.Start()

	srv := &http.Server{Addr: *addr, Handler: serve.NewServer(sched)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("mdserve: listening on %s (max-active %d, quantum %d steps)\n", *addr, *maxActive, *quantum)

	select {
	case <-ctx.Done():
		fmt.Println("mdserve: shutting down")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "mdserve: %v\n", err)
		sched.Close()
		os.Exit(1)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx) //nolint:errcheck // best-effort drain before Close
	sched.Close()         // checkpoints stay durable; restart resumes
}
