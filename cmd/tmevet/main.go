// Command tmevet is the project's static analyzer. It enforces the
// determinism, hot-path, and parallel-safety invariants of the simulation
// code: no map-order iteration in numeric packages (detmap), no
// wall-clock or global-random-source reads in simulation paths (noclock),
// no allocation constructs in //tme:noalloc functions (noalloc), no
// unpartitioned writes to captured state in par worker closures
// (parwrite), and no exported mutable package-level state in numeric
// packages (mutflag).
//
// Usage:
//
//	go run ./cmd/tmevet [-list] [packages]
//
// Packages follow the go tool's pattern syntax ("./...", "./internal/...",
// a plain directory), resolved against the enclosing module. With no
// arguments it analyzes "./...". Exit status is 1 when any diagnostic is
// reported, 2 on usage or load errors.
//
// Findings are suppressed line-by-line with
// "//tmevet:ignore <check>[,<check>...] -- rationale" on the offending
// line or the line above. See DESIGN.md §7.3.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tme4a/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list registered checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tmevet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-10s %s\n", c.Name, c.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmevet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Patterns are given relative to the working directory; the loader
	// wants them relative to the module root.
	rel, err := rebase(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmevet:", err)
		os.Exit(2)
	}

	diags, err := lint.Run(root, rel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmevet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := d.Pos
		if r, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			pos.Filename = r
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tmevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// rebase converts working-directory-relative package patterns to
// module-root-relative ones.
func rebase(root string, patterns []string) ([]string, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(patterns))
	for _, pat := range patterns {
		suffix := ""
		base := pat
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			suffix = "/..."
			base = rest
			if base == "" {
				base = "."
			}
		}
		abs := base
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, base)
		}
		r, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(r, "..") {
			return nil, fmt.Errorf("package pattern %q lies outside the module at %s", pat, root)
		}
		out = append(out, filepath.ToSlash(r)+suffix)
	}
	return out, nil
}
