// Command tmevet is the project's static analyzer. It enforces the
// determinism, hot-path, parallel-safety, and (since ISSUE 8)
// concurrency/durability invariants of the simulation code: no map-order
// iteration in numeric packages (detmap), no discarded errors on
// durability/wire paths (errdrop), no unjoinable goroutines in the service
// tier (goleak), no wall-clock or global-random-source reads in simulation
// paths (noclock), no allocation constructs in //tme:noalloc functions —
// including through the call graph (noalloc, noalloc-ipa), no
// unpartitioned writes to captured state in par worker closures
// (parwrite), no exported mutable package-level state in numeric packages
// (mutflag), and no mutation of //tme:owner fields outside the owner
// goroutine's call tree (schedown).
//
// Usage:
//
//	go run ./cmd/tmevet [-list] [-json] [-baseline file] [-write-baseline] [packages]
//
// Packages follow the go tool's pattern syntax ("./...", "./internal/...",
// a plain directory), resolved against the enclosing module. With no
// arguments it analyzes "./...".
//
//	-json            emit a deterministic machine-readable report on stdout
//	-baseline file   silence findings recorded in the committed baseline;
//	                 stale entries (matching nothing) are noted on stderr
//	-write-baseline  rewrite the -baseline file to cover current findings
//
// Exit status is 1 when any non-baselined diagnostic is reported, 2 on
// usage or load errors.
//
// Findings are suppressed line-by-line with
// "//tmevet:ignore <check>[,<check>...] -- rationale" on the offending
// line or the line above. See DESIGN.md §7.3 and §7.8.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tme4a/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list registered checks and exit")
	jsonOut := flag.Bool("json", false, "emit a machine-readable report on stdout")
	baselinePath := flag.String("baseline", "", "baseline file of grandfathered findings")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the -baseline file from current findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tmevet [-list] [-json] [-baseline file] [-write-baseline] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "tmevet: -write-baseline requires -baseline")
		os.Exit(2)
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmevet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Patterns are given relative to the working directory; the loader
	// wants them relative to the module root.
	rel, err := rebase(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmevet:", err)
		os.Exit(2)
	}

	diags, err := lint.Run(root, rel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmevet:", err)
		os.Exit(2)
	}

	if *writeBaseline {
		b := lint.FromDiagnostics(root, diags)
		if err := b.Save(*baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "tmevet:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "tmevet: wrote %d baseline entrie(s) to %s\n", len(b.Entries), *baselinePath)
		return
	}

	kept, baselined := diags, []lint.Diagnostic(nil)
	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmevet:", err)
			os.Exit(2)
		}
		var stale []lint.BaselineEntry
		kept, baselined, stale = b.Apply(root, diags)
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "tmevet: stale baseline entry (fixed? remove it): %s %s: %s\n", e.Check, e.File, e.Message)
		}
	}

	if *jsonOut {
		data, err := lint.NewReport(root, kept, baselined).Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmevet:", err)
			os.Exit(2)
		}
		os.Stdout.Write(data) //tmevet:ignore errdrop -- report emission; a failed stdout write has nowhere to go
	} else {
		for _, d := range kept {
			pos := d.Pos
			pos.Filename = lint.RelPath(root, pos.Filename)
			fmt.Printf("%s: %s: %s\n", pos, d.Check, d.Message)
		}
	}
	if len(kept) > 0 {
		fmt.Fprintf(os.Stderr, "tmevet: %d finding(s)\n", len(kept))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// rebase converts working-directory-relative package patterns to
// module-root-relative ones.
func rebase(root string, patterns []string) ([]string, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(patterns))
	for _, pat := range patterns {
		suffix := ""
		base := pat
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			suffix = "/..."
			base = rest
			if base == "" {
				base = "."
			}
		}
		abs := base
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, base)
		}
		r, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(r, "..") {
			return nil, fmt.Errorf("package pattern %q lies outside the module at %s", pat, root)
		}
		out = append(out, filepath.ToSlash(r)+suffix)
	}
	return out, nil
}
