package main

import (
	"fmt"
	"time"

	"tme4a/internal/nonbond"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

func main() {
	box := water.CubicBoxFor(4096)
	sys := water.Build(16, 16, 16, box, 7)
	f := make([]vec.V, sys.N())
	start := time.Now()
	const n = 5
	var pairs int
	for i := 0; i < n; i++ {
		r := nonbond.Compute(sys.Box, sys.Pos, sys.Q, sys.LJ, 2.3, 0.9, sys.Excl, f)
		pairs = r.Pairs
	}
	fmt.Printf("per call: %v, pairs=%d\n", time.Since(start)/n, pairs)
}
