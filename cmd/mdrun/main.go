// Command mdrun runs molecular dynamics of TIP3P water with a selectable
// long-range electrostatics method:
//
//	mdrun -side 10 -steps 500 -method tme -rc 1.0 -grid 16 -M 3 -gc 8
//
// Methods: cutoff (erfc-screened short range only), spme, tme, msm.
// With -in, a snapshot written by watergen is used instead of building a
// fresh box.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"runtime"

	"tme4a/internal/core"
	"tme4a/internal/md"
	"tme4a/internal/msm"
	"tme4a/internal/obs"
	"tme4a/internal/spme"
	"tme4a/internal/water"
)

func main() {
	var (
		side   = flag.Int("side", 10, "waters per box edge when building fresh")
		in     = flag.String("in", "", "snapshot file from watergen (optional)")
		steps  = flag.Int("steps", 200, "MD steps (1 fs)")
		method = flag.String("method", "tme", "long-range method: cutoff|spme|tme|msm")
		rc     = flag.Float64("rc", 1.0, "short-range cutoff (nm)")
		gridN  = flag.Int("grid", 16, "mesh points per axis")
		m      = flag.Int("M", 3, "TME Gaussians per shell")
		gc     = flag.Int("gc", 8, "grid kernel cutoff")
		levels = flag.Int("L", 1, "TME/MSM middle levels")
		temp   = flag.Float64("T", 300, "initial temperature (K)")
		nvt    = flag.Bool("nvt", false, "couple a Berendsen thermostat")
		every  = flag.Int("report", 20, "report interval (steps)")
		seed   = flag.Int64("seed", 1, "random seed")
		obsOn  = flag.Bool("obs", false, "record per-stage timings and print the breakdown at the end")
	)
	flag.Parse()

	sys, err := buildSystem(*in, *side, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdrun: %v\n", err)
		os.Exit(1)
	}
	if *rc >= sys.Box.L[0]/2 {
		*rc = sys.Box.L[0] / 2 * 0.95
		fmt.Printf("cutoff reduced to %.3f nm (half box)\n", *rc)
	}
	sys.InitVelocities(*temp, rand.New(rand.NewSource(*seed+2)))

	alpha := spme.AlphaFromRTol(*rc, 1e-4)
	n := [3]int{*gridN, *gridN, *gridN}
	var mesh md.MeshSolver
	switch *method {
	case "cutoff":
		mesh = nil
	case "spme":
		mesh = spme.New(spme.Params{Alpha: alpha, Rc: *rc, Order: 6, N: n}, sys.Box)
	case "tme":
		mesh = core.New(core.Params{Alpha: alpha, Rc: *rc, Order: 6, N: n,
			Levels: *levels, M: *m, Gc: *gc}, sys.Box)
	case "msm":
		mesh = msm.New(msm.Params{Alpha: alpha, Rc: *rc, Order: 6, N: n,
			Levels: *levels, Gc: *gc}, sys.Box)
	default:
		fmt.Fprintf(os.Stderr, "mdrun: unknown method %q\n", *method)
		os.Exit(1)
	}

	integ := &md.Integrator{
		FF: &md.ForceField{Alpha: alpha, Rc: *rc, Mesh: mesh},
		Dt: 0.001,
	}
	if *nvt {
		integ.Thermostat = &md.Thermostat{T: *temp, Tau: 0.1}
	}
	var rec *obs.Recorder
	if *obsOn {
		rec = obs.New()
		integ.SetObs(rec)
	}

	fmt.Printf("%d atoms, method %s, rc %.2f nm, α %.3f nm⁻¹, grid %d³\n",
		sys.N(), *method, *rc, alpha, *gridN)
	fmt.Printf("%8s %14s %14s %14s %8s\n", "step", "potential", "kinetic", "total", "T(K)")
	integ.Run(sys, *steps, func(s int, e md.Energies) {
		if s%*every == 0 || s == 1 {
			fmt.Printf("%8d %14.3f %14.3f %14.3f %8.1f\n",
				s, e.Potential(), e.Kinetic, e.Total(), sys.Temperature())
		}
	})
	if rec != nil {
		fmt.Println()
		rec.Report(*method, sys.N(), runtime.GOMAXPROCS(0)).Render(os.Stdout, 60)
	}
}

func buildSystem(in string, side int, seed int64) (*md.System, error) {
	if in == "" {
		nmol := side * side * side
		box := water.CubicBoxFor(nmol)
		sys := water.Build(side, side, side, box, seed)
		water.Equilibrate(sys, 200, 0.001, 300, minf(0.9, box.L[0]/2*0.95), seed+1)
		return sys, nil
	}
	snap, err := md.LoadSnapshot(in)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", in, err)
	}
	wside := int(snap.Meta["side"])
	wseed := snap.Meta["seed"]
	sys := water.Build(wside, wside, wside, snap.Box, wseed)
	if err := sys.Restore(snap); err != nil {
		return nil, err
	}
	return sys, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
