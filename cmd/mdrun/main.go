// Command mdrun runs molecular dynamics of TIP3P water with a selectable
// long-range electrostatics method:
//
//	mdrun -side 10 -steps 500 -method tme -rc 1.0 -grid 16 -M 3 -gc 8
//
// Methods: cutoff (erfc-screened short range only) plus every method in
// the solver registry (spme, tme, msm). TME additionally selects its
// middle-range kernel family with -kernel (gauss|useries). With -in, a
// snapshot written by watergen is used instead of building a fresh box.
//
// Crash-consistent checkpointing (see DESIGN.md §7.5):
//
//	mdrun -side 10 -steps 5000 -checkpoint-dir ck -checkpoint-every 500
//	mdrun -side 10 -steps 5000 -checkpoint-dir ck -resume
//
// The second invocation scans ck, rejects anything torn or corrupt by
// CRC, restores from the newest valid checkpoint and continues the
// trajectory bitwise-identically to an uninterrupted run (NVE or
// Berendsen; the stochastic CSVR thermostat resumes from the same state
// but draws fresh noise). -steps is the total trajectory length, so the
// resumed run performs only the remaining steps.
//
// Auto-tuning (see DESIGN.md §7.10):
//
//	mdrun -side 10 -steps 500 -tune -errbudget 1e-3
//	mdrun -side 10 -steps 5000 -tune -errbudget 1e-3 -retune \
//	      -checkpoint-dir ck -checkpoint-every 500
//
// -tune replaces the manual solver flags with the internal/tune plan:
// the cheapest enumerated method/kernel/cutoff/grid configuration whose
// predicted relative force error meets -errbudget. -retune additionally
// watches live per-stage timings and, when they drift off the cost
// model at a checkpoint boundary, switches to a re-planned
// configuration — bitwise identically to restarting from that
// checkpoint under the new plan.
//
// Rank-decomposed execution (see DESIGN.md §7.9):
//
//	mdrun -ranks 4 -side 6 -rc 0.23 -grid 32 -M 2 -gc 4 -steps 100
//
// -ranks N steps the same NVE trajectory through internal/rank — N
// domain-owning workers exchanging halos over typed channels — bitwise
// identical to -ranks 1 and to the serial integrator. Rank mode is NVE
// only (cutoff or tme) and excludes -nvt, -resume and checkpointing.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"runtime"

	"tme4a/internal/ckpt"
	"tme4a/internal/md"
	"tme4a/internal/obs"
	"tme4a/internal/rank"
	"tme4a/internal/solver"
	"tme4a/internal/spme"
	"tme4a/internal/tune"
	"tme4a/internal/water"

	// Populate the solver registry.
	_ "tme4a/internal/core"
	_ "tme4a/internal/msm"
)

func main() {
	var (
		side    = flag.Int("side", 10, "waters per box edge when building fresh")
		in      = flag.String("in", "", "snapshot file from watergen (optional)")
		steps   = flag.Int("steps", 200, "total MD steps (1 fs); a resumed run does the remainder")
		method  = flag.String("method", "tme", "long-range method: cutoff|"+strings.Join(solver.Names(), "|"))
		kernel  = flag.String("kernel", "", "TME middle-range kernel family: gauss|useries (default gauss)")
		rc      = flag.Float64("rc", 1.0, "short-range cutoff (nm)")
		gridN   = flag.Int("grid", 16, "mesh points per axis")
		m       = flag.Int("M", 3, "TME Gaussians per shell")
		gc      = flag.Int("gc", 8, "grid kernel cutoff")
		levels  = flag.Int("L", 1, "TME/MSM middle levels")
		temp    = flag.Float64("T", 300, "initial temperature (K)")
		nvt     = flag.Bool("nvt", false, "couple a Berendsen thermostat")
		every   = flag.Int("report", 20, "report interval (steps)")
		seed    = flag.Int64("seed", 1, "random seed")
		obsOn   = flag.Bool("obs", false, "record per-stage timings and print the breakdown at the end")
		ckDir   = flag.String("checkpoint-dir", "", "directory for crash-consistent checkpoints")
		ckEvery = flag.Int("checkpoint-every", 0, "checkpoint cadence in steps (0 = off)")
		ckKeep  = flag.Int("checkpoint-keep", 3, "checkpoints retained (keep-last-K)")
		resume  = flag.Bool("resume", false, "restore from the newest valid checkpoint in -checkpoint-dir")
		ranks   = flag.Int("ranks", 0, "rank-decomposed run with N domain workers (0 = serial; NVE, cutoff|tme only)")
		tuneOn  = flag.Bool("tune", false, "auto-tune: pick method/kernel/rc/grid/gc/M for -errbudget, ignoring the manual solver flags")
		budget  = flag.Float64("errbudget", 1e-3, "relative force-error budget for -tune")
		retune  = flag.Bool("retune", false, "with -tune and checkpointing: re-plan at checkpoint boundaries when stage timings drift off the cost model")
	)
	flag.Parse()

	// Auto-tuning resolves the solver configuration before anything else:
	// the plan is a pure function of (box, atoms, budget), so it can be
	// recomputed identically on a resume from the same flags, and the
	// resolved values flow into the config hash below exactly like
	// hand-picked ones.
	var (
		skin     float64
		tuneReq  tune.Request
		tunePlan tune.Plan
	)
	if *tuneOn {
		if *in != "" {
			fatalf("-tune plans from -side; it does not combine with -in")
		}
		if *ranks > 0 {
			fatalf("-tune does not combine with -ranks")
		}
		tuneReq = tune.Request{
			Box:       water.CubicBoxFor(*side * *side * *side),
			Atoms:     3 * *side * *side * *side,
			ErrBudget: *budget,
		}
		var err error
		tunePlan, err = tune.PlanFor(tuneReq)
		if err != nil {
			fatalf("tune: %v", err)
		}
		fmt.Printf("tuned plan: %s\n", tunePlan.String())
		*method, *kernel, *rc = tunePlan.Method, tunePlan.Kernel, tunePlan.Rc
		*gridN, *gc, *m, *levels = tunePlan.Grid[0], tunePlan.Gc, tunePlan.M, tunePlan.Levels
		if *levels < 1 {
			*levels = 1
		}
		skin = tunePlan.Skin
	}
	if *retune {
		if !*tuneOn {
			fatalf("-retune requires -tune")
		}
		if *ckDir == "" || *ckEvery <= 0 {
			fatalf("-retune re-plans at checkpoint boundaries; set -checkpoint-dir and -checkpoint-every")
		}
		if *nvt {
			fatalf("-retune is NVE only; drop -nvt")
		}
	}

	// Everything that shapes the trajectory goes into the config hash;
	// a checkpoint from a run with different parameters is refused.
	cfgStr := fmt.Sprintf(
		"mdrun in=%q side=%d method=%s kernel=%s rc=%g grid=%d M=%d gc=%d L=%d T=%g nvt=%t seed=%d dt=0.001",
		*in, *side, *method, *kernel, *rc, *gridN, *m, *gc, *levels, *temp, *nvt, *seed)
	if *tuneOn {
		// A tuned run's trajectory additionally depends on the skin and —
		// through possible mid-run retunes — on the budget; non-tuned runs
		// keep the historical hash string so their checkpoints stay valid.
		cfgStr += fmt.Sprintf(" tune=true errbudget=%g skin=%g retune=%t", *budget, skin, *retune)
	}
	cfgHash := ckpt.ConfigHash(cfgStr)

	var store *ckpt.Store
	openStore := func() *ckpt.Store {
		if store == nil {
			st, err := ckpt.Open(*ckDir, *ckKeep, cfgHash, nil)
			if err != nil {
				fatalf("opening checkpoint store: %v", err)
			}
			store = st
		}
		return store
	}

	var (
		sys       *md.System
		meta      map[string]int64
		resumed   *ckpt.Checkpoint
		startStep int
	)
	if *resume {
		if *ckDir == "" {
			fatalf("-resume requires -checkpoint-dir")
		}
		c, err := openStore().LoadLatest()
		if err != nil {
			fatalf("resume: %v", err)
		}
		resumed = c
		startStep = int(c.Step())
		// Rebuild the topology the checkpoint was taken from; positions
		// and velocities come from the snapshot, so no equilibration and
		// no fresh velocity draw.
		wside := int(c.Snap.Meta["side"])
		wseed := c.Snap.Meta["seed"]
		if wside <= 0 {
			fatalf("resume: checkpoint carries no builder meta")
		}
		sys = water.Build(wside, wside, wside, c.Snap.Box, wseed)
		meta = c.Snap.Meta
		fmt.Printf("resuming from %s/%s at step %d\n", *ckDir, ckpt.FileName(c.Step()), startStep)
	} else {
		var err error
		sys, meta, err = buildSystem(*in, *side, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		sys.InitVelocities(*temp, rand.New(rand.NewSource(*seed+2)))
	}
	if *rc >= sys.Box.L[0]/2 {
		*rc = sys.Box.L[0] / 2 * 0.95
		fmt.Printf("cutoff reduced to %.3f nm (half box)\n", *rc)
	}

	alpha := spme.AlphaFromRTol(*rc, 1e-4)
	n := [3]int{*gridN, *gridN, *gridN}
	var mesh md.MeshSolver
	if *kernel != "" && *method != "tme" {
		fatalf("-kernel selects the TME middle-range family and applies only to -method tme")
	}
	if *method != "cutoff" {
		s, err := solver.New(*method, solver.Config{
			Alpha: alpha, Rc: *rc, Order: 6, N: n,
			Levels: *levels, M: *m, Gc: *gc, Kernel: *kernel,
		}, sys.Box)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(s.Describe())
		mesh = s
	}

	if *ranks > 0 {
		if *nvt {
			fatalf("-ranks is NVE only; drop -nvt")
		}
		if *resume || *ckDir != "" || *ckEvery > 0 {
			fatalf("-ranks does not support checkpointing or -resume")
		}
		runRanks(sys, mesh, alpha, *rc, *ranks, *steps, *every, *obsOn, *method)
		return
	}

	integ := &md.Integrator{
		FF: &md.ForceField{Alpha: alpha, Rc: *rc, Skin: skin, Mesh: mesh},
		Dt: 0.001,
	}
	if *nvt {
		integ.Thermostat = &md.Thermostat{T: *temp, Tau: 0.1}
	}
	var rec *obs.Recorder
	if *obsOn || *retune {
		// The retune monitor feeds on live stage timings, so -retune
		// records them even without -obs.
		rec = obs.New()
		integ.SetObs(rec)
	}
	if resumed != nil {
		if err := integ.RestoreResume(sys, resumed.Snap); err != nil {
			fatalf("resume: %v", err)
		}
		if rec != nil {
			resumed.RestoreObs(rec)
		}
	}
	if *ckEvery > 0 && *ckDir != "" {
		openStore()
	}
	if store != nil && rec != nil {
		store.SetObs(rec)
	}

	remaining := *steps - startStep
	if remaining <= 0 {
		fmt.Printf("trajectory already at step %d of %d; nothing to do\n", startStep, *steps)
		return
	}

	fmt.Printf("%d atoms, method %s, rc %.2f nm, α %.3f nm⁻¹, grid %d³\n",
		sys.N(), *method, *rc, alpha, *gridN)
	fmt.Printf("%8s %14s %14s %14s %8s\n", "step", "potential", "kinetic", "total", "T(K)")
	if *retune {
		runRetuned(sys, integ, rec, store, meta, tuneReq, tunePlan, startStep, remaining, *every, *ckEvery)
		if rec != nil && *obsOn {
			fmt.Println()
			rec.Report(*method, sys.N(), runtime.GOMAXPROCS(0)).Render(os.Stdout, 60)
		}
		return
	}
	integ.Run(sys, remaining, func(s int, e md.Energies) {
		abs := startStep + s
		if abs%*every == 0 || s == 1 {
			fmt.Printf("%8d %14.3f %14.3f %14.3f %8.1f\n",
				abs, e.Potential(), e.Kinetic, e.Total(), sys.Temperature())
		}
		if store != nil && *ckEvery > 0 && abs%*ckEvery == 0 {
			if err := store.Save(integ.CaptureResume(sys, meta)); err != nil {
				fmt.Fprintf(os.Stderr, "mdrun: checkpoint at step %d failed: %v\n", abs, err)
			}
		}
	})
	if rec != nil {
		fmt.Println()
		rec.Report(*method, sys.N(), runtime.GOMAXPROCS(0)).Render(os.Stdout, 60)
	}
}

// runRetuned drives the trajectory with the online retune loop: each
// checkpoint boundary saves a snapshot, hands the live obs profile to
// the drift monitor, and — when the monitor re-plans — switches the
// integrator through tune.Switch. The switch consumes exactly the state
// a fresh restore of that checkpoint would, so the trajectory after a
// retune is bitwise identical to restarting under the new plan
// (TestRetuneBitwise pins this).
func runRetuned(sys *md.System, integ *md.Integrator, rec *obs.Recorder, store *ckpt.Store,
	meta map[string]int64, req tune.Request, plan tune.Plan, startStep, remaining, every, ckEvery int) {
	mon := tune.NewMonitor(req, plan)
	for s := 1; s <= remaining; s++ {
		e := integ.Step(sys)
		abs := startStep + s
		if abs%every == 0 || s == 1 {
			fmt.Printf("%8d %14.3f %14.3f %14.3f %8.1f\n",
				abs, e.Potential(), e.Kinetic, e.Total(), sys.Temperature())
		}
		if abs%ckEvery != 0 {
			continue
		}
		snap := integ.CaptureResume(sys, meta)
		if err := store.Save(snap); err != nil {
			fmt.Fprintf(os.Stderr, "mdrun: checkpoint at step %d failed: %v\n", abs, err)
			continue
		}
		next, changed := mon.Observe(rec.Profile(), int64(s))
		if !changed {
			continue
		}
		ni, err := tune.Switch(sys, snap, next, integ.Dt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdrun: retune switch failed, keeping current plan: %v\n", err)
			continue
		}
		integ = ni
		integ.SetObs(rec)
		fmt.Printf("%8d retune: %s\n", abs, next.String())
	}
}

// runRanks steps the trajectory through the rank-decomposed engine and
// reports energies exactly like the serial path, plus the protocol
// traffic summary at the end.
func runRanks(sys *md.System, mesh md.MeshSolver, alpha, rc float64, ranks, steps, every int, obsOn bool, method string) {
	ff := &md.ForceField{Alpha: alpha, Rc: rc, Mesh: mesh}
	eng, err := rank.New(rank.Config{Ranks: ranks}, sys, ff, 0.001)
	if err != nil {
		fatalf("%v", err)
	}
	defer eng.Close()
	var rec *obs.Recorder
	if obsOn {
		rec = obs.New()
		eng.SetObs(rec)
	}
	fmt.Printf("%d atoms over %d ranks, method %s, rc %.2f nm, α %.3f nm⁻¹\n",
		sys.N(), ranks, method, rc, alpha)
	fmt.Printf("%8s %14s %14s %14s %8s\n", "step", "potential", "kinetic", "total", "T(K)")
	for s := 1; s <= steps; s++ {
		e, err := eng.Step()
		if err != nil {
			fatalf("step %d: %v", s, err)
		}
		if s%every == 0 || s == 1 {
			fmt.Printf("%8d %14.3f %14.3f %14.3f %8.1f\n",
				s, e.Potential(), e.Kinetic, e.Total(), sys.Temperature())
		}
	}
	if b := eng.CommBytes(); steps > 0 {
		fmt.Printf("protocol traffic: %d bytes total, %d bytes/step\n", b, b/int64(steps))
	}
	if rec != nil {
		fmt.Println()
		rec.Report(fmt.Sprintf("%s-ranks%d", method, ranks), sys.N(), runtime.GOMAXPROCS(0)).Render(os.Stdout, 60)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mdrun: "+format+"\n", args...)
	os.Exit(1)
}

func buildSystem(in string, side int, seed int64) (*md.System, map[string]int64, error) {
	if in == "" {
		nmol := side * side * side
		box := water.CubicBoxFor(nmol)
		sys := water.Build(side, side, side, box, seed)
		water.Equilibrate(sys, 200, 0.001, 300, minf(0.9, box.L[0]/2*0.95), seed+1)
		return sys, map[string]int64{"side": int64(side), "seed": seed}, nil
	}
	snap, err := md.LoadSnapshot(in)
	if err != nil {
		return nil, nil, fmt.Errorf("loading %s: %w", in, err)
	}
	wside := int(snap.Meta["side"])
	wseed := snap.Meta["seed"]
	sys := water.Build(wside, wside, wside, snap.Box, wseed)
	if err := sys.Restore(snap); err != nil {
		return nil, nil, err
	}
	return sys, snap.Meta, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
