package tme4a_test

// One benchmark per table/figure of the paper's evaluation, measuring the
// computational kernels that regenerate each result (cmd/tmebench produces
// the actual rows/series). Run with:
//
//	go test -bench=. -benchmem .

import (
	"io"
	"math/rand"
	"testing"

	"tme4a/internal/core"
	"tme4a/internal/expt"
	"tme4a/internal/grid"
	"tme4a/internal/md"
	"tme4a/internal/msm"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

// benchWater caches a small equilibrated water system across benchmarks.
var benchWater *md.System

func waterSystem(b *testing.B) *md.System {
	if benchWater == nil {
		box := water.CubicBoxFor(512)
		benchWater = water.Build(8, 8, 8, box, 1)
		water.Equilibrate(benchWater, 100, 0.001, 300, 0.9, 2)
	}
	return benchWater
}

func benchParams(m, gc int) core.Params {
	return core.Params{
		Alpha: spme.AlphaFromRTol(1.0, 1e-4), Rc: 1.0, Order: 6,
		N: [3]int{16, 16, 16}, Levels: 1, M: m, Gc: gc,
	}
}

// BenchmarkFig3GaussianApprox measures the Fig. 3 series evaluation
// (exact shells and their Gaussian-sum approximations, M = 1..4).
func BenchmarkFig3GaussianApprox(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		expt.RunFig3(4, 200, 10, io.Discard)
	}
}

// BenchmarkTable1 measures the per-configuration force evaluations of
// Table 1: the SPME baseline and the TME at its g_c/M corners.
func BenchmarkTable1(b *testing.B) {
	sys := waterSystem(b)
	b.Run("SPME", func(b *testing.B) {
		s := spme.New(spme.Params{Alpha: spme.AlphaFromRTol(1.0, 1e-4),
			Rc: 1.0, Order: 6, N: [3]int{16, 16, 16}}, sys.Box)
		f := make([]vec.V, sys.N())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Coulomb(sys.Pos, sys.Q, sys.Excl, f)
		}
	})
	for _, cfg := range []struct {
		name  string
		m, gc int
	}{{"TME_M1_gc8", 1, 8}, {"TME_M4_gc8", 4, 8}, {"TME_M4_gc12", 4, 12}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			s := core.New(benchParams(cfg.m, cfg.gc), sys.Box)
			f := make([]vec.V, sys.N())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Coulomb(sys.Pos, sys.Q, sys.Excl, f)
			}
		})
	}
}

// BenchmarkFig4NVEStep measures one NVE MD step (velocity Verlet + SETTLE)
// with SPME and with TME — the inner loop of the Fig. 4 trajectories.
func BenchmarkFig4NVEStep(b *testing.B) {
	run := func(b *testing.B, mesh md.MeshSolver) {
		sys := waterSystem(b)
		alpha := spme.AlphaFromRTol(1.0, 1e-4)
		integ := &md.Integrator{
			FF: &md.ForceField{Alpha: alpha, Rc: 1.0, Mesh: mesh}, Dt: 0.001,
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			integ.Step(sys)
		}
	}
	b.Run("SPME", func(b *testing.B) {
		sys := waterSystem(b)
		run(b, spme.New(spme.Params{Alpha: spme.AlphaFromRTol(1.0, 1e-4),
			Rc: 1.0, Order: 6, N: [3]int{16, 16, 16}}, sys.Box))
	})
	b.Run("TME_M3", func(b *testing.B) {
		sys := waterSystem(b)
		run(b, core.New(benchParams(3, 8), sys.Box))
	})
}

// BenchmarkMDStepVerletSPME measures one MD step in the production
// configuration: buffered Verlet pair list (0.1 nm skin), SPME mesh and
// the parallel short-range slab engine. ReportAllocs guards the
// zero-steady-state-allocation contract at the whole-step level.
func BenchmarkMDStepVerletSPME(b *testing.B) {
	sys := waterSystem(b)
	alpha := spme.AlphaFromRTol(1.0, 1e-4)
	mesh := spme.New(spme.Params{Alpha: alpha, Rc: 1.0, Order: 6,
		N: [3]int{16, 16, 16}}, sys.Box)
	integ := &md.Integrator{
		FF: &md.ForceField{Alpha: alpha, Rc: 1.0, Skin: 0.1, Mesh: mesh},
		Dt: 0.001,
	}
	integ.Step(sys) // warm the pair list and scratch pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		integ.Step(sys)
	}
}

// BenchmarkFig9MachineStep measures the full machine-model simulation of
// one MD step on the 80,540-atom workload (Fig. 9).
func BenchmarkFig9MachineStep(b *testing.B) {
	hw := expt.NewHWContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hw.Cfg.SimulateStep(hw.Workload, hw.Prm, true)
	}
}

// BenchmarkFig10LongRangePhases measures the long-range chain model in
// isolation (Fig. 10 breakdown).
func BenchmarkFig10LongRangePhases(b *testing.B) {
	hw := expt.NewHWContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hw.RunFig10(io.Discard)
	}
}

// BenchmarkTable2 measures the cross-system table assembly (simulated
// MDGRAPE-4A row + literature rows).
func BenchmarkTable2(b *testing.B) {
	hw := expt.NewHWContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hw.RunTable2(io.Discard)
	}
}

// BenchmarkGrid64Projection measures the Sec. VI.A 64³ (L = 2) projection.
func BenchmarkGrid64Projection(b *testing.B) {
	hw := expt.NewHWContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hw.RunGrid64(io.Discard)
	}
}

// BenchmarkCostModel measures the Sec. III.C analytic sweep.
func BenchmarkCostModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		expt.RunCostModel(io.Discard)
	}
}

// BenchmarkConvSeparableVsDirect is the central ablation: the separable
// (tensor-structured) convolution of TME against the direct 3D convolution
// of B-spline MSM on the production 32³ grid with g_c = 8 — the paper's
// Sec. III.C computational claim, measured.
func BenchmarkConvSeparableVsDirect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := grid.New(32, 32, 32)
	for i := range src.Data {
		src.Data[i] = rng.NormFloat64()
	}
	gc := 8
	k1 := make([]float64, 2*gc+1)
	for i := range k1 {
		k1[i] = rng.NormFloat64()
	}
	k3 := make([]float64, len(k1)*len(k1)*len(k1))
	for i := range k3 {
		k3[i] = rng.NormFloat64()
	}
	b.Run("TME_separable_M4", func(b *testing.B) {
		// Steady-state form: the M = 4 Gaussians are fused into one
		// accumulating pass with preallocated scratch, exactly as
		// core.levelConvAccum runs it — the same arithmetic as four
		// ConvSeparable calls, but allocation-free.
		dst := grid.New(32, 32, 32)
		t1 := grid.New(32, 32, 32)
		t2 := grid.New(32, 32, 32)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst.Zero()
			for v := 0; v < 4; v++ {
				grid.ConvSeparableAccum(dst, src, k1, k1, k1, t1, t2)
			}
		}
	})
	b.Run("MSM_direct3D", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			grid.ConvDirect3D(src, k3, gc)
		}
	})
}

// BenchmarkLongRangeSolvers compares the three mesh methods end to end on
// the same system (ablation 2 of DESIGN.md).
func BenchmarkLongRangeSolvers(b *testing.B) {
	sys := waterSystem(b)
	alpha := spme.AlphaFromRTol(1.0, 1e-4)
	n := [3]int{16, 16, 16}
	f := make([]vec.V, sys.N())
	b.Run("SPME", func(b *testing.B) {
		s := spme.New(spme.Params{Alpha: alpha, Rc: 1.0, Order: 6, N: n}, sys.Box)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.LongRange(sys.Pos, sys.Q, f)
		}
	})
	b.Run("TME", func(b *testing.B) {
		s := core.New(benchParams(4, 8), sys.Box)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.LongRange(sys.Pos, sys.Q, f)
		}
	})
	b.Run("MSM", func(b *testing.B) {
		s := msm.New(msm.Params{Alpha: alpha, Rc: 1.0, Order: 6, N: n,
			Levels: 1, Gc: 8}, sys.Box)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.LongRange(sys.Pos, sys.Q, f)
		}
	})
}
