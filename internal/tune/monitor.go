package tune

import (
	"tme4a/internal/obs"
)

// Monitor watches live per-stage timings (obs.Profile snapshots taken at
// checkpoint boundaries) and re-plans when the measured costs drift from
// the cost model's prediction. It never reads a clock itself — the obs
// recorder owns the clock seam — so a monitor driven by a scripted
// profile is fully deterministic, and the production one is exactly as
// deterministic as its timing inputs.
//
// The feedback loop is multiplicative: when the measured short-range or
// mesh group runs r× the predicted cost, the group's weights are scaled
// by r and the request is re-planned under the recalibrated weights. The
// plan only changes when the reweighted ranking actually flips, so a
// uniformly slow machine (both groups drift together) keeps its plan.
type Monitor struct {
	// Threshold is the relative drift that triggers a re-plan: 0.3 means
	// a measured/predicted ratio outside [1/1.3, 1.3] on either stage
	// group. Non-positive means the DefaultDriftThreshold.
	Threshold float64

	req     Request
	plan    Plan
	weights Weights

	base      obs.Profile
	baseSteps int64
	haveBase  bool
}

// DefaultDriftThreshold is the re-plan trigger: the cost model's stage
// weights are trusted to roughly ±30%; beyond that the measurements,
// not the priors, should pick the plan.
const DefaultDriftThreshold = 0.3

// NewMonitor starts monitoring a running plan. The request should be the
// one the plan was made from; the monitor re-plans through it.
func NewMonitor(req Request, plan Plan) *Monitor {
	w := DefaultWeights()
	if req.Weights != nil {
		w = *req.Weights
	}
	return &Monitor{req: req, plan: plan, weights: w}
}

// Plan returns the plan the monitor currently considers live.
func (m *Monitor) Plan() Plan { return m.plan }

// Weights returns the monitor's current (possibly recalibrated) weights.
func (m *Monitor) Weights() Weights { return m.weights }

// threshold returns the effective drift threshold.
func (m *Monitor) threshold() float64 {
	if m.Threshold > 0 {
		return m.Threshold
	}
	return DefaultDriftThreshold
}

// Observe ingests the cumulative profile at a checkpoint boundary after
// stepsDone completed steps. The first call establishes the baseline
// window. Later calls diff against the previous boundary, compare the
// measured short-range and mesh group costs per step against the model's
// prediction, and — when either group drifts past the threshold —
// recalibrate the weights from the measurement and re-plan.
//
// It returns the plan that should run from this boundary on and whether
// that is a change. A changed plan must be installed through Switch at
// this boundary (that is what keeps the retune bitwise-resumable); the
// monitor assumes the caller does so.
func (m *Monitor) Observe(p obs.Profile, stepsDone int64) (Plan, bool) {
	if !m.haveBase {
		m.base, m.baseSteps, m.haveBase = p, stepsDone, true
		return m.plan, false
	}
	window := p.Delta(m.base)
	steps := stepsDone - m.baseSteps
	if steps <= 0 {
		return m.plan, false
	}
	m.base, m.baseSteps = p, stepsDone

	pred := m.weights.StepCost(m.req, m.plan)
	predShort := shortGroup(pred)
	predMesh := meshGroup(pred)
	gotShort := float64(window.StageNs(obs.StageShortRange)+window.StageNs(obs.StageNeighbor)) / float64(steps)
	gotMesh := float64(window.StageNs(obs.StageMesh)) / float64(steps)
	if gotShort <= 0 || gotMesh <= 0 || predShort <= 0 || predMesh <= 0 {
		return m.plan, false // window too small or untimed; nothing to learn
	}
	rShort := gotShort / predShort
	rMesh := gotMesh / predMesh
	t := 1 + m.threshold()
	if rShort < t && 1/rShort < t && rMesh < t && 1/rMesh < t {
		return m.plan, false
	}

	// Recalibrate: scale each group's weights by its measured ratio, then
	// re-plan under the corrected model.
	w := m.weights
	w.PairNs *= rShort
	w.SkinPairNs *= rShort
	w.RebuildPairNs *= rShort
	w.RebuildAtomNs *= rShort
	w.CellPairNs *= rShort
	w.CellAtomNs *= rShort
	w.AssignNs *= rMesh
	w.ConvNs *= rMesh
	w.ConvDirectNs *= rMesh
	w.FFTNs *= rMesh
	w.GridNs *= rMesh
	w.ExclNs *= rMesh
	if w.validate() != nil {
		return m.plan, false // a degenerate ratio (Inf/NaN) must not poison the model
	}
	req := m.req
	req.Weights = &w
	plan, err := PlanFor(req)
	if err != nil {
		// The budget became infeasible under honest weights: keep the most
		// accurate plan we had rather than abandoning the run.
		return m.plan, false
	}
	m.weights = w
	m.req = req
	if samePlanID(plan, m.plan) {
		m.plan = plan // predictions refreshed, identity unchanged
		return m.plan, false
	}
	m.plan = plan
	return m.plan, true
}

// samePlanID reports whether two plans are the same run configuration,
// ignoring the predicted error/cost annotations.
func samePlanID(a, b Plan) bool {
	a.PredErr, a.PredMs = 0, 0
	b.PredErr, b.PredMs = 0, 0
	return a == b
}
