// Package tune closes the loop between the repository's calibrated cost
// model (internal/perfmodel), the measured Table-1 accuracy surface
// (results/table1.csv) and the live per-stage timings (internal/obs):
// given a box, an atom count and a force-error budget, it enumerates
// every candidate plan over the registered long-range solvers (SPME, TME
// with the gauss and u-series kernel families, B-spline MSM), scores each
// with per-stage cost rows plus a surface-fit error estimate, and emits a
// deterministic Plan — method, kernel, cutoff, grid, g_c, M, Verlet skin
// and rank-slab count.
//
// The tuner runs in two regimes:
//
//   - At startup, PlanFor picks the cheapest candidate whose predicted
//     force error meets the budget (mdrun -tune, serve's "auto" method,
//     the autotune experiment).
//
//   - Online, a Monitor watches the live obs stage profile; when measured
//     per-stage costs drift from the model's prediction past a threshold,
//     it recalibrates the cost weights from the measurement and re-plans.
//     The switch itself (Switch) goes through the plain checkpoint state,
//     so a mid-run retune inherits internal/ckpt's bitwise-resume
//     guarantees: the retuned trajectory is bit-identical to a fresh run
//     started from that plan's state (TestRetuneBitwise).
//
// Everything in this package is a pure function of its inputs — no clock,
// no maps ranged for results, no randomness — so the same request always
// yields the same plan, the decision table is byte-pinned, and a plan can
// participate in checkpoint config hashes.
package tune

import (
	"fmt"
	"math"
	"sort"

	"tme4a/internal/perfmodel"
	"tme4a/internal/vec"
)

// RTol is the erfc(α·rc) force tolerance every plan shares — the paper's
// ewald-rtol = 1e-4 convention (the Table-1 surface the error estimator
// is fit to was measured at this tolerance, so plans must not vary it).
const RTol = 1e-4

// Order is the B-spline interpolation order of every plan (the paper's
// hardware operating point; the accuracy surface was measured at p = 6).
const Order = 6

// Request asks the tuner for a plan.
type Request struct {
	// Box is the periodic simulation box.
	Box vec.Box
	// Atoms is the number of charged particles.
	Atoms int
	// ErrBudget is the maximum acceptable relative force error
	// (Table 1's metric: RMS force deviation over the Ewald reference).
	ErrBudget float64
	// Workers is the parallelism available for a rank-decomposed run; it
	// sets the plan's slab count and nothing else. 0 means serial.
	Workers int
	// Weights overrides the cost-model calibration; nil selects
	// DefaultWeights. The online monitor re-plans through this field.
	Weights *Weights
}

// Plan is the tuner's output: a complete, validated parameterization of a
// run. A Plan is a pure function of its Request, so it can be embedded in
// checkpoint config hashes and golden decision tables.
type Plan struct {
	Method string  // "spme", "tme" or "msm"
	Kernel string  // TME middle-range family: "" (gauss), "gauss", "useries"
	Rc     float64 // short-range cutoff (nm)
	Skin   float64 // Verlet buffer (nm); 0 selects the skinless cell path
	Grid   [3]int  // mesh points per axis
	Gc     int     // grid-kernel cutoff (TME/MSM; 0 for SPME)
	M      int     // Gaussians per middle-range shell (TME; 0 otherwise)
	Levels int     // middle-range levels (TME/MSM; 0 for SPME)
	Order  int     // B-spline order
	Slabs  int     // rank-decomposition slab count (1 = serial)

	// PredErr is the estimated relative force error (surface fit).
	PredErr float64
	// PredMs is the modeled step time in milliseconds.
	PredMs float64
}

// Candidate is one scored plan of an enumeration.
type Candidate struct {
	Plan
	// Feasible reports whether PredErr meets the request's budget.
	Feasible bool
	// Cost is the per-stage breakdown behind PredMs.
	Cost perfmodel.Breakdown
}

// RequestError reports an invalid tuning request field.
type RequestError struct {
	Field  string
	Reason string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("tune: invalid request: %s %s", e.Field, e.Reason)
}

// InfeasibleError reports that no candidate meets the error budget. Best
// carries the most accurate candidate considered, so callers can report
// how far the budget is from achievable.
type InfeasibleError struct {
	Budget  float64
	BestErr float64
	Best    Plan
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("tune: no plan meets error budget %.3g (best achievable %.3g: %s)",
		e.Budget, e.BestErr, e.Best.String())
}

// String renders the plan's identity (everything but the predictions).
func (p Plan) String() string {
	switch p.Method {
	case "spme":
		return fmt.Sprintf("spme rc=%g grid=%d skin=%g", p.Rc, p.Grid[0], p.Skin)
	case "tme":
		return fmt.Sprintf("tme/%s rc=%g grid=%d gc=%d M=%d skin=%g",
			p.kernelOrDefault(), p.Rc, p.Grid[0], p.Gc, p.M, p.Skin)
	case "msm":
		return fmt.Sprintf("msm rc=%g grid=%d gc=%d skin=%g", p.Rc, p.Grid[0], p.Gc, p.Skin)
	}
	return fmt.Sprintf("%s rc=%g grid=%d", p.Method, p.Rc, p.Grid[0])
}

func (p Plan) kernelOrDefault() string {
	if p.Kernel == "" {
		return "gauss"
	}
	return p.Kernel
}

// Request bounds. Outside these the model has no data to stand on and the
// tuner answers with a typed error instead of a guess.
const (
	minBoxEdge   = 0.6
	maxBoxEdge   = 100
	maxAspect    = 8
	minAtoms     = 12
	maxAtoms     = 100_000_000
	minBudget    = 1e-6
	maxBudget    = 0.5
	maxWorkers   = 4096
	maxGridDim   = 64
	minGridDim   = 8
	maxSkin      = 0.1
	minKernelW   = 2.5 // minimum g_c·α·h window coverage the surface supports
	maxXStretch  = 1.1 // how far above the surface's α·h range estimates may extrapolate
	boxEdgeShare = 0.49
)

// validate checks the request against the model's supported envelope.
func (r Request) validate() error {
	lmin, lmax := math.Inf(1), 0.0
	for k := 0; k < 3; k++ {
		l := r.Box.L[k]
		if !isFinite(l) || l <= 0 {
			return &RequestError{Field: "box", Reason: fmt.Sprintf("edge %d is %g, want finite and positive", k, l)}
		}
		lmin = math.Min(lmin, l)
		lmax = math.Max(lmax, l)
	}
	if lmin < minBoxEdge || lmax > maxBoxEdge {
		return &RequestError{Field: "box", Reason: fmt.Sprintf("edges %.3g..%.3g nm outside the supported [%g, %g]", lmin, lmax, float64(minBoxEdge), float64(maxBoxEdge))}
	}
	if lmax/lmin > maxAspect {
		return &RequestError{Field: "box", Reason: fmt.Sprintf("aspect ratio %.3g exceeds %d", lmax/lmin, maxAspect)}
	}
	if r.Atoms < minAtoms || r.Atoms > maxAtoms {
		return &RequestError{Field: "atoms", Reason: fmt.Sprintf("%d outside [%d, %d]", r.Atoms, minAtoms, maxAtoms)}
	}
	if !isFinite(r.ErrBudget) || r.ErrBudget < minBudget || r.ErrBudget > maxBudget {
		return &RequestError{Field: "err_budget", Reason: fmt.Sprintf("%g outside [%g, %g]", r.ErrBudget, minBudget, maxBudget)}
	}
	if r.Workers < 0 || r.Workers > maxWorkers {
		return &RequestError{Field: "workers", Reason: fmt.Sprintf("%d outside [0, %d]", r.Workers, maxWorkers)}
	}
	if r.Weights != nil {
		if err := r.Weights.validate(); err != nil {
			return err
		}
	}
	return nil
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// rcCandidates returns the cutoffs worth considering: the Table-1 sweep
// values that fit the box, or a box-proportional fallback for boxes too
// small for any of them.
func rcCandidates(lmin float64) []float64 {
	var rcs []float64
	for _, rc := range []float64{1.0, 1.25, 1.5} {
		if rc < boxEdgeShare*lmin {
			rcs = append(rcs, rc)
		}
	}
	if len(rcs) == 0 {
		rcs = append(rcs, 0.35*lmin)
	}
	return rcs
}

// gridCandidates returns the cubic mesh sizes worth considering.
func gridCandidates() []int { return []int{8, 16, 32, 64} }

// slabsFor returns the rank-decomposition slab count: the largest power
// of two ≤ workers that keeps at least two grid planes per slab.
func slabsFor(gridZ, workers int) int {
	s := 1
	for s*2 <= workers && gridZ/(s*2) >= 2 {
		s *= 2
	}
	return s
}

// Enumerate scores every candidate plan for the request, cheapest first.
// The order is a total order (cost, then method/kernel/grid/gc/M/rc/skin),
// so the listing — and hence PlanFor's pick — is deterministic.
func Enumerate(req Request) ([]Candidate, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	w := DefaultWeights()
	if req.Weights != nil {
		w = *req.Weights
	}
	lmin := math.Min(req.Box.L[0], math.Min(req.Box.L[1], req.Box.L[2]))
	hmax := func(n int) float64 {
		h := 0.0
		for k := 0; k < 3; k++ {
			h = math.Max(h, req.Box.L[k]/float64(n))
		}
		return h
	}

	var out []Candidate
	add := func(p Plan) {
		p.Order = Order
		p.Slabs = slabsFor(p.Grid[2], req.Workers)
		cost := w.StepCost(req, p)
		p.PredMs = cost.Total() * 1e-6
		out = append(out, Candidate{
			Plan:     p,
			Feasible: p.PredErr <= req.ErrBudget,
			Cost:     cost,
		})
	}

	for _, rc := range rcCandidates(lmin) {
		alpha := alphaFor(rc)
		for _, skin := range []float64{0, maxSkin} {
			if rc+skin >= boxEdgeShare*lmin+1e-12 {
				continue
			}
			for _, n := range gridCandidates() {
				x := alpha * hmax(n)
				if x > maxXStretch*surfaceXMax() {
					continue // grid too coarse for the surface to certify
				}
				grid := [3]int{n, n, n}
				// SPME: no middle-range knobs.
				est, ok := estimateSPME(x)
				if ok && n >= minGridDim {
					add(Plan{Method: "spme", Rc: rc, Skin: skin, Grid: grid, PredErr: est})
				}
				// TME and MSM need a top grid ≥ the spline order.
				if n/2 < Order {
					continue
				}
				for _, gc := range surfaceGcs() {
					if float64(gc)*x < minKernelW {
						continue // kernel window too narrow for the surface to certify
					}
					for _, kernel := range []string{"gauss", "useries"} {
						for m := 1; m <= 4; m++ {
							est, ok := estimateTME(kernel, gc, m, x)
							if !ok {
								continue
							}
							add(Plan{Method: "tme", Kernel: kernel, Rc: rc, Skin: skin,
								Grid: grid, Gc: gc, M: m, Levels: 1, PredErr: est})
						}
					}
					if est, ok := estimateMSM(gc, x); ok {
						add(Plan{Method: "msm", Rc: rc, Skin: skin, Grid: grid,
							Gc: gc, Levels: 1, PredErr: est})
					}
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, &InfeasibleError{Budget: req.ErrBudget, BestErr: math.Inf(1)}
	}
	sort.SliceStable(out, func(i, j int) bool { return planLess(out[i], out[j]) })
	return out, nil
}

// planLess is the total order of a candidate listing: cheaper first, ties
// broken on the full plan identity so equal-cost candidates still sort
// deterministically.
func planLess(a, b Candidate) bool {
	if a.PredMs != b.PredMs {
		return a.PredMs < b.PredMs
	}
	if a.PredErr != b.PredErr {
		return a.PredErr < b.PredErr
	}
	if a.Method != b.Method {
		return a.Method < b.Method
	}
	if a.Kernel != b.Kernel {
		return a.Kernel < b.Kernel
	}
	if a.Grid[0] != b.Grid[0] {
		return a.Grid[0] < b.Grid[0]
	}
	if a.Gc != b.Gc {
		return a.Gc < b.Gc
	}
	if a.M != b.M {
		return a.M < b.M
	}
	if a.Rc != b.Rc {
		return a.Rc < b.Rc
	}
	return a.Skin < b.Skin
}

// PlanFor returns the cheapest plan whose predicted error meets the
// request's budget. It returns *RequestError for requests outside the
// model's envelope and *InfeasibleError when no candidate fits the
// budget; it never panics.
func PlanFor(req Request) (Plan, error) {
	cands, err := Enumerate(req)
	if err != nil {
		return Plan{}, err
	}
	for _, c := range cands {
		if c.Feasible {
			return c.Plan, nil
		}
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.PredErr < best.PredErr {
			best = c
		}
	}
	return Plan{}, &InfeasibleError{Budget: req.ErrBudget, BestErr: best.PredErr, Best: best.Plan}
}
