package tune

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"tme4a/internal/vec"
	"tme4a/internal/water"
)

func table1Request() Request {
	return Request{Box: water.CubicBoxFor(4096), Atoms: 12288, ErrBudget: 1e-3}
}

// TestPlanForDeterministic re-plans the same request many times and
// demands identical output — the property that lets a plan participate in
// checkpoint config hashes.
func TestPlanForDeterministic(t *testing.T) {
	req := table1Request()
	first, err := PlanFor(req)
	if err != nil {
		t.Fatalf("PlanFor: %v", err)
	}
	for i := 0; i < 20; i++ {
		p, err := PlanFor(req)
		if err != nil || p != first {
			t.Fatalf("replan %d diverged: %+v (%v) != %+v", i, p, err, first)
		}
	}
	c1, _ := Enumerate(req)
	c2, _ := Enumerate(req)
	if !reflect.DeepEqual(c1, c2) {
		t.Error("Enumerate is not deterministic")
	}
}

// TestPlansValidateClean checks the planner's core contract: every
// emitted plan passes Plan.Validate (which runs the same Params.Validate
// the solver constructors enforce), and meets its budget by prediction.
func TestPlansValidateClean(t *testing.T) {
	req := table1Request()
	for _, budget := range []float64{2e-3, 1e-3, 5e-4, 2e-4, 1e-4} {
		req.ErrBudget = budget
		p, err := PlanFor(req)
		if err != nil {
			t.Fatalf("budget %g: %v", budget, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("budget %g: plan %s invalid: %v", budget, p.String(), err)
		}
		if p.PredErr > budget {
			t.Errorf("budget %g: plan %s predicts %.3e over budget", budget, p.String(), p.PredErr)
		}
		if _, err := p.NewSolver(req.Box); err != nil {
			t.Errorf("budget %g: plan %s not constructible: %v", budget, p.String(), err)
		}
	}
	// Every candidate — not just picks — validates.
	req.ErrBudget = 1e-3
	cands, err := Enumerate(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 50 {
		t.Errorf("only %d candidates at the Table-1 box; expected a dense enumeration", len(cands))
	}
	for _, c := range cands {
		if err := c.Plan.Validate(); err != nil {
			t.Errorf("candidate %s invalid: %v", c.Plan.String(), err)
		}
		if c.Cost.Total() <= 0 || c.PredMs <= 0 {
			t.Errorf("candidate %s has non-positive cost", c.Plan.String())
		}
	}
}

// TestBudgetMonotonicity: loosening the budget never yields a slower
// plan — the feasible set only grows.
func TestBudgetMonotonicity(t *testing.T) {
	req := table1Request()
	prev := math.Inf(1)
	for _, budget := range []float64{5e-5, 8e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 1e-2} {
		req.ErrBudget = budget
		p, err := PlanFor(req)
		if err != nil {
			var inf *InfeasibleError
			if !errors.As(err, &inf) {
				t.Fatalf("budget %g: unexpected error type %T", budget, err)
			}
			continue
		}
		if p.PredMs > prev+1e-9 {
			t.Errorf("budget %g: plan %s costs %.2f ms, slower than tighter budget's %.2f",
				budget, p.String(), p.PredMs, prev)
		}
		prev = p.PredMs
	}
}

// TestRequestErrors checks the typed-error contract over the envelope
// boundaries.
func TestRequestErrors(t *testing.T) {
	base := table1Request()
	cases := []struct {
		name   string
		mutate func(*Request)
	}{
		{"zero box", func(r *Request) { r.Box = vec.Box{} }},
		{"negative edge", func(r *Request) { r.Box.L[1] = -2 }},
		{"nan edge", func(r *Request) { r.Box.L[0] = math.NaN() }},
		{"tiny box", func(r *Request) { r.Box = vec.Cubic(0.2) }},
		{"huge box", func(r *Request) { r.Box = vec.Cubic(500) }},
		{"extreme aspect", func(r *Request) { r.Box = vec.NewBox(1, 1, 50) }},
		{"no atoms", func(r *Request) { r.Atoms = 0 }},
		{"negative atoms", func(r *Request) { r.Atoms = -5 }},
		{"zero budget", func(r *Request) { r.ErrBudget = 0 }},
		{"absurd budget", func(r *Request) { r.ErrBudget = 2 }},
		{"nan budget", func(r *Request) { r.ErrBudget = math.NaN() }},
		{"negative workers", func(r *Request) { r.Workers = -1 }},
		{"bad weights", func(r *Request) { w := DefaultWeights(); w.PairNs = math.Inf(1); r.Weights = &w }},
		{"zero drift", func(r *Request) { w := DefaultWeights(); w.DriftPerStep = 0; r.Weights = &w }},
	}
	for _, tc := range cases {
		req := base
		tc.mutate(&req)
		_, err := PlanFor(req)
		var re *RequestError
		if !errors.As(err, &re) {
			t.Errorf("%s: got %v, want *RequestError", tc.name, err)
		} else if re.Error() == "" {
			t.Errorf("%s: empty error text", tc.name)
		}
	}
}

// TestInfeasibleBudget checks that impossible budgets surface the best
// achievable alternative in a typed error.
func TestInfeasibleBudget(t *testing.T) {
	req := table1Request()
	req.ErrBudget = 2e-6
	_, err := PlanFor(req)
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("got %v, want *InfeasibleError", err)
	}
	if !(inf.BestErr > 2e-6) {
		t.Errorf("best achievable %.3e should exceed the infeasible budget", inf.BestErr)
	}
	if inf.Best.Method == "" {
		t.Error("infeasible error does not carry the best plan")
	}
}

// TestSmallBoxFallback: a box too small for the Table-1 cutoffs still
// plans, with a proportional cutoff.
func TestSmallBoxFallback(t *testing.T) {
	req := Request{Box: vec.Cubic(1.6), Atoms: 150, ErrBudget: 2e-3}
	p, err := PlanFor(req)
	if err != nil {
		t.Fatalf("small box: %v", err)
	}
	if p.Rc >= 0.49*1.6 {
		t.Errorf("fallback cutoff %.3f too large for a 1.6 nm box", p.Rc)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("fallback plan invalid: %v", err)
	}
}

// TestSlabsFollowWorkers: the slab count is the largest power of two
// within the worker budget that keeps ≥ 2 planes per slab.
func TestSlabsFollowWorkers(t *testing.T) {
	for _, tc := range []struct {
		grid, workers, want int
	}{
		{32, 0, 1}, {32, 1, 1}, {32, 2, 2}, {32, 3, 2}, {32, 4, 4},
		{32, 16, 16}, {32, 64, 16}, {8, 8, 4}, {16, 1000, 8},
	} {
		if got := slabsFor(tc.grid, tc.workers); got != tc.want {
			t.Errorf("slabsFor(%d, %d) = %d, want %d", tc.grid, tc.workers, got, tc.want)
		}
	}
	req := table1Request()
	req.Workers = 4
	p, err := PlanFor(req)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slabs != 4 {
		t.Errorf("plan slabs = %d with 4 workers, want 4", p.Slabs)
	}
}

// TestStepCostBreakdownShape: the scoring rows are positive, ordered,
// and partition into the short-range and mesh groups the monitor diffs
// against obs stage timings.
func TestStepCostBreakdownShape(t *testing.T) {
	req := table1Request()
	cands, err := Enumerate(req)
	if err != nil {
		t.Fatal(err)
	}
	w := DefaultWeights()
	for _, c := range cands[:10] {
		b := w.StepCost(req, c.Plan)
		if b.Method != c.Method {
			t.Errorf("breakdown method %q != plan method %q", b.Method, c.Method)
		}
		if got := b.Total() * 1e-6; math.Abs(got-c.PredMs) > 1e-9 {
			t.Errorf("%s: breakdown total %.4f ms != PredMs %.4f", c.Plan.String(), got, c.PredMs)
		}
		if shortGroup(b) <= 0 || meshGroup(b) <= 0 {
			t.Errorf("%s: empty stage group (short %.1f, mesh %.1f)",
				c.Plan.String(), shortGroup(b), meshGroup(b))
		}
		for _, s := range b.Stages {
			if s.Units <= 0 || s.Time < 0 {
				t.Errorf("%s: bad stage row %+v", c.Plan.String(), s)
			}
		}
	}
}
