package tune

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const goldenPlansPath = "../../results/autotune_plans.csv"

// goldenBudgets spans the Table-1 accuracy range, from looser than the
// coarsest measured point down past the feasibility floor, so the table
// pins both the plan ladder and the infeasible sentinel rows.
func goldenBudgets() []float64 {
	return []float64{2e-3, 1e-3, 5e-4, 2e-4, 1.5e-4, 1e-4, 8e-5, 6e-5, 3e-5}
}

// TestGoldenDecisionTable byte-pins the tuner's decision ladder over the
// Table-1 request. Any change to the enumeration order, the error
// estimator, the cost weights, or the CSV formatting shows up as a diff
// against results/autotune_plans.csv. Regenerate deliberately with
// TUNE_REGEN=1 go test ./internal/tune -run TestGoldenDecisionTable.
func TestGoldenDecisionTable(t *testing.T) {
	var buf bytes.Buffer
	if err := DecisionTable(table1Request(), goldenBudgets(), &buf); err != nil {
		t.Fatalf("DecisionTable: %v", err)
	}
	if os.Getenv("TUNE_REGEN") != "" {
		if err := os.WriteFile(goldenPlansPath, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("regen: %v", err)
		}
		t.Logf("regenerated %s (%d bytes)", goldenPlansPath, buf.Len())
		return
	}
	want, err := os.ReadFile(goldenPlansPath)
	if err != nil {
		t.Fatalf("golden table missing (regenerate with TUNE_REGEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("decision table drifted from %s.\n got:\n%s\nwant:\n%s\nRegenerate with TUNE_REGEN=1 if the change is intentional.",
			goldenPlansPath, buf.String(), string(want))
	}

	// Structural sanity independent of the exact bytes: one row per
	// budget, accuracy ladder tightens monotonically until infeasible.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if got, want := len(lines), 1+len(goldenBudgets()); got != want {
		t.Fatalf("table has %d lines, want %d", got, want)
	}
	sawPlan, sawInfeasible := false, false
	for _, line := range lines[1:] {
		if strings.Contains(line, ",none,") {
			sawInfeasible = true
		} else {
			if sawInfeasible {
				t.Errorf("feasible row %q after an infeasible one — ladder not monotone", line)
			}
			sawPlan = true
		}
	}
	if !sawPlan || !sawInfeasible {
		t.Errorf("table should contain both plan rows and infeasible rows (plan=%v infeasible=%v)",
			sawPlan, sawInfeasible)
	}
}
