package tune

import (
	"bufio"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestSurfaceMatchesTable1 cross-checks every embedded surface value
// against the committed results/table1.csv, so the estimator can never
// silently drift from the measured accuracy data it claims to encode.
func TestSurfaceMatchesTable1(t *testing.T) {
	f, err := os.Open("../../results/table1.csv")
	if err != nil {
		t.Skipf("golden table unavailable: %v", err)
	}
	defer f.Close()

	rcs := surfaceRc()
	gcs := surfaceGcs()
	spmeErrs := surfaceSPME()
	tmeErrs := surfaceTME()
	rcIdx := func(rc float64) int {
		for i, r := range rcs {
			if math.Abs(r-rc) < 1e-9 {
				return i
			}
		}
		return -1
	}
	gcIdx := func(gc int) int {
		for j, g := range gcs {
			if g == gc {
				return j
			}
		}
		return -1
	}

	checked := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "method") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 5 {
			continue
		}
		rc, _ := strconv.ParseFloat(parts[1], 64)
		errVal, _ := strconv.ParseFloat(parts[4], 64)
		i := rcIdx(rc)
		if i < 0 {
			t.Errorf("csv rc %v not in embedded surface", parts[1])
			continue
		}
		var got float64
		switch parts[0] {
		case "SPME":
			got = spmeErrs[i]
		case "TME":
			gc, _ := strconv.Atoi(parts[2])
			m, _ := strconv.Atoi(parts[3])
			j := gcIdx(gc)
			if j < 0 || m < 1 || m > 4 {
				t.Errorf("csv row %q outside embedded surface axes", line)
				continue
			}
			got = tmeErrs[i][j][m-1]
		default:
			t.Errorf("unexpected method %q", parts[0])
			continue
		}
		if got != errVal {
			t.Errorf("%s rc=%v gc=%s M=%s: embedded %.4e != csv %.4e",
				parts[0], parts[1], parts[2], parts[3], got, errVal)
		}
		checked++
	}
	if checked != 39 {
		t.Errorf("cross-checked %d rows, want 39 (3 SPME + 36 TME)", checked)
	}
}

// TestEstimatorReproducesSurfaceNodes checks that the interpolator is
// exact at the measured points: querying the estimator at a surface
// node's (g_c, M, x) must return the node's value (the u-series family
// scaled by its shootout ratio).
func TestEstimatorReproducesSurfaceNodes(t *testing.T) {
	xs := surfaceXs()
	gcs := surfaceGcs()
	tme := surfaceTME()
	spmeErrs := surfaceSPME()
	for i, x := range xs {
		got, ok := estimateSPME(x)
		if !ok {
			t.Fatalf("estimateSPME(%g) not ok", x)
		}
		if rel := math.Abs(got-spmeErrs[i]) / spmeErrs[i]; rel > 1e-9 {
			t.Errorf("SPME at node x=%g: %.6e, want %.6e", x, got, spmeErrs[i])
		}
		for j, gc := range gcs {
			for m := 1; m <= 4; m++ {
				want := tme[i][j][m-1]
				got, ok := estimateTME("gauss", gc, m, x)
				if !ok {
					t.Fatalf("estimateTME(gauss, %d, %d, %g) not ok", gc, m, x)
				}
				if rel := math.Abs(got-want) / want; rel > 1e-9 {
					t.Errorf("TME gc=%d M=%d x=%g: %.6e, want %.6e", gc, m, x, got, want)
				}
				gotU, _ := estimateTME("useries", gc, m, x)
				wantU := want * useriesRatio()[m-1]
				if rel := math.Abs(gotU-wantU) / wantU; rel > 1e-9 {
					t.Errorf("useries gc=%d M=%d x=%g: %.6e, want %.6e", gc, m, x, gotU, wantU)
				}
			}
		}
	}
}

// TestEstimatorConservativeClamps checks the safety behaviour off the
// surface: finer-than-measured meshes never get credited with errors
// better than the surface floor times the safety factor, and unsupported
// inputs report not-ok instead of guessing.
func TestEstimatorConservativeClamps(t *testing.T) {
	xs := surfaceXs()
	xmin := math.Min(xs[2], math.Min(xs[0], xs[1]))

	// Below the surface: clamped to the finest node × safety.
	atMin, _ := estimateSPME(xmin)
	below, _ := estimateSPME(xmin / 4)
	if want := atMin * clampLowSafety; math.Abs(below-want)/want > 1e-9 {
		t.Errorf("below-range SPME estimate %.4e, want clamp %.4e", below, want)
	}
	// Above the surface: extrapolated error grows with x.
	atMax, _ := estimateSPME(surfaceXMax())
	above, _ := estimateSPME(surfaceXMax() * 1.08)
	if above <= atMax {
		t.Errorf("above-range estimate %.4e not worse than at-max %.4e", above, atMax)
	}

	// Narrower kernel windows never predict better errors.
	x := xs[0]
	wide, _ := estimateTME("gauss", 12, 2, x)
	narrow, _ := estimateTME("gauss", 4, 2, x)
	if narrow < wide {
		t.Errorf("g_c=4 estimate %.4e better than g_c=12 %.4e", narrow, wide)
	}

	// MSM carries its safety factor over the TME M=4 surface.
	msmE, ok := estimateMSM(8, x)
	tmeE, _ := estimateTME("gauss", 8, 4, x)
	if !ok || msmE <= tmeE {
		t.Errorf("MSM estimate %.4e not above TME M=4 %.4e", msmE, tmeE)
	}

	// Unsupported inputs: not-ok, never a guess.
	if _, ok := estimateTME("gauss", 8, 5, x); ok {
		t.Error("M=5 should be unsupported")
	}
	if _, ok := estimateTME("cubic", 8, 2, x); ok {
		t.Error("unknown kernel should be unsupported")
	}
	if _, ok := estimateTME("gauss", 8, 2, math.NaN()); ok {
		t.Error("NaN x should be unsupported")
	}
	if _, ok := estimateSPME(-1); ok {
		t.Error("negative x should be unsupported")
	}
}
