package tune

import (
	"fmt"
	"math"

	"tme4a/internal/perfmodel"
)

// Weights calibrates the step-cost model: nanoseconds per model unit for
// each pipeline stage. DefaultWeights carries constants fit to measured
// per-stage timings of this engine (the autotune experiment re-measures
// them; the online Monitor rescales them when live obs profiles drift).
// All cost predictions are per md step.
type Weights struct {
	PairNs        float64 // per pair inside rc (Verlet path force kernel)
	SkinPairNs    float64 // per stored pair outside rc (distance check only)
	RebuildPairNs float64 // per stored pair at a Verlet list rebuild
	RebuildAtomNs float64 // per atom at a Verlet list rebuild (binning)
	CellPairNs    float64 // per pair inside rc on the skinless cell path
	CellAtomNs    float64 // per atom per step on the skinless cell path
	AssignNs      float64 // per atom·spline-tap of charge assign + interp
	ConvNs        float64 // per separable-convolution MAC (TME)
	ConvDirectNs  float64 // per direct-convolution MAC (MSM)
	FFTNs         float64 // per FFT butterfly (5·d³·log2 d³ per transform)
	GridNs        float64 // per grid point of restrict/prolong/k-scale
	ExclNs        float64 // per atom of exclusion corrections
	AtomNs        float64 // per atom fixed work (bonded, settle, integrate)
	HaloNs        float64 // per grid point exchanged across slab halos
	DriftPerStep  float64 // nm of per-atom drift per step (rebuild cadence)
}

// DefaultWeights returns the committed calibration, fit to stage timings
// measured by `tmebench -exp autotune` on the reference development
// machine. Absolute values shift across hardware (the Monitor re-fits
// them online); the ratios are what the planner's ranking rests on.
func DefaultWeights() Weights {
	return Weights{
		PairNs:        175,
		SkinPairNs:    70,
		RebuildPairNs: 60,
		RebuildAtomNs: 500,
		CellPairNs:    280,
		CellAtomNs:    600,
		AssignNs:      4.2,
		ConvNs:        2.0,
		ConvDirectNs:  1.45,
		FFTNs:         3.0,
		GridNs:        2.0,
		ExclNs:        150,
		AtomNs:        800,
		HaloNs:        4,
		DriftPerStep:  5e-4,
	}
}

// validate rejects weights the cost model cannot score with.
func (w Weights) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"pair_ns", w.PairNs}, {"skin_pair_ns", w.SkinPairNs},
		{"rebuild_pair_ns", w.RebuildPairNs}, {"rebuild_atom_ns", w.RebuildAtomNs},
		{"cell_pair_ns", w.CellPairNs}, {"cell_atom_ns", w.CellAtomNs},
		{"assign_ns", w.AssignNs}, {"conv_ns", w.ConvNs},
		{"conv_direct_ns", w.ConvDirectNs}, {"fft_ns", w.FFTNs},
		{"grid_ns", w.GridNs}, {"excl_ns", w.ExclNs},
		{"atom_ns", w.AtomNs}, {"halo_ns", w.HaloNs},
	} {
		if !isFinite(f.v) || f.v < 0 {
			return &RequestError{Field: "weights." + f.name, Reason: fmt.Sprintf("%g, want finite and non-negative", f.v)}
		}
	}
	if !isFinite(w.DriftPerStep) || w.DriftPerStep <= 0 {
		return &RequestError{Field: "weights.drift_per_step", Reason: fmt.Sprintf("%g, want finite and positive", w.DriftPerStep)}
	}
	return nil
}

// fftUnits returns the butterfly count of one 3D transform of dim d:
// 5·d³·log₂(d³).
func fftUnits(d int) float64 {
	n3 := float64(d) * float64(d) * float64(d)
	return 5 * n3 * 3 * math.Log2(float64(d))
}

// StepCost scores a plan as per-stage rows. Row order is fixed —
// short-range, neighbor, assign, then the method's mesh stages, then
// excl/integrate/halo — so the float64 total is deterministic. Units are
// model counts (pairs, taps, MACs, grid points); Time is nanoseconds per
// step.
func (w Weights) StepCost(req Request, p Plan) perfmodel.Breakdown {
	atoms := float64(req.Atoms)
	rho := atoms / req.Box.Volume()
	pairs := func(r float64) float64 {
		return 0.5 * atoms * rho * (4 * math.Pi / 3) * r * r * r
	}
	par := float64(p.Slabs)
	if par < 1 {
		par = 1
	}

	var rows []perfmodel.StageCost
	add := func(stage string, units, ns float64) {
		rows = append(rows, perfmodel.StageCost{Stage: stage, Units: units, Time: ns})
	}

	inRc := pairs(p.Rc)
	if p.Skin > 0 {
		stored := pairs(p.Rc + p.Skin)
		cadence := math.Max(1, math.Floor(p.Skin/(2*w.DriftPerStep)))
		add("short-range", inRc, (inRc*w.PairNs+(stored-inRc)*w.SkinPairNs)/par)
		add("neighbor", stored, (stored*w.RebuildPairNs+atoms*w.RebuildAtomNs)/cadence/par)
	} else {
		add("short-range", inRc, inRc*w.CellPairNs/par)
		add("neighbor", atoms, atoms*w.CellAtomNs/par)
	}

	n := p.Grid[0]
	n3 := float64(n) * float64(n) * float64(n)
	order := float64(p.Order)
	assignUnits := 2 * atoms * order * order * order
	add("assign", assignUnits, assignUnits*w.AssignNs/par)

	switch p.Method {
	case "spme":
		u := 2 * fftUnits(n)
		add("fft", u, u*w.FFTNs/par)
		add("grid", n3, n3*w.GridNs/par)
	case "tme":
		levels := p.Levels
		if levels < 1 {
			levels = 1
		}
		var convUnits float64
		for l := 0; l < levels; l++ {
			convUnits += perfmodel.CompCostTME(p.Gc, n>>l, p.M)
		}
		add("conv", convUnits, convUnits*w.ConvNs/par)
		top := n >> levels
		u := 2 * fftUnits(top)
		add("fft", u, u*w.FFTNs/par)
		gridUnits := 2 * n3 * order
		add("grid", gridUnits, gridUnits*w.GridNs/par)
	case "msm":
		convUnits := perfmodel.CompCostMSM(p.Gc, n)
		add("conv", convUnits, convUnits*w.ConvDirectNs/par)
		levels := p.Levels
		if levels < 1 {
			levels = 1
		}
		top := n >> levels
		u := 2 * fftUnits(top)
		add("fft", u, u*w.FFTNs/par)
		gridUnits := 2 * n3 * order
		add("grid", gridUnits, gridUnits*w.GridNs/par)
	}

	add("excl", atoms, atoms*w.ExclNs/par)
	add("integrate", atoms, atoms*w.AtomNs)
	if p.Slabs > 1 {
		haloGc := p.Gc
		if haloGc == 0 {
			haloGc = p.Order
		}
		haloUnits := 2 * float64(haloGc) * float64(n) * float64(n) * float64(p.Slabs)
		add("halo", haloUnits, haloUnits*w.HaloNs)
	}
	return perfmodel.Breakdown{Method: p.Method, Stages: rows}
}

// shortGroup and meshGroup partition the rows for the monitor's drift
// comparison against obs stage timings: obs.StageShortRange +
// StageNeighbor cover the first group, obs.StageMesh the second.
func shortGroup(b perfmodel.Breakdown) float64 {
	return b.StageTime("short-range") + b.StageTime("neighbor")
}

func meshGroup(b perfmodel.Breakdown) float64 {
	return b.StageTime("assign") + b.StageTime("conv") + b.StageTime("fft") +
		b.StageTime("grid") + b.StageTime("excl")
}
