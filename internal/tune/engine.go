package tune

import (
	"fmt"

	"tme4a/internal/core"
	"tme4a/internal/md"
	"tme4a/internal/msm"
	"tme4a/internal/solver"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
)

// Plans materialize through the solver registry; importing the three
// implementation packages here (core registers "tme") keeps every plan
// the tuner can emit constructible by every caller of this package.

// Alpha returns the plan's Ewald splitting parameter — derived, not
// stored: every plan shares the RTol convention.
func (p Plan) Alpha() float64 { return alphaFor(p.Rc) }

// SolverConfig maps the plan onto the solver registry's superset config.
func (p Plan) SolverConfig() solver.Config {
	return solver.Config{
		Alpha:  p.Alpha(),
		Rc:     p.Rc,
		Order:  p.Order,
		N:      p.Grid,
		Levels: p.Levels,
		M:      p.M,
		Gc:     p.Gc,
		Kernel: p.Kernel,
	}
}

// Validate checks the plan without allocating a solver: the plan-level
// fields first, then the concrete method's Params.Validate — the same
// checks the registry constructor would run. A plan returned by PlanFor
// always passes (FuzzPlanRequest leans on this).
func (p Plan) Validate() error {
	if !isFinite(p.Rc) || p.Rc <= 0 {
		return fmt.Errorf("tune: plan Rc %g, want positive", p.Rc)
	}
	if !isFinite(p.Skin) || p.Skin < 0 || p.Skin > maxSkin {
		return fmt.Errorf("tune: plan Skin %g outside [0, %g]", p.Skin, float64(maxSkin))
	}
	if p.Slabs < 1 {
		return fmt.Errorf("tune: plan Slabs %d, want ≥ 1", p.Slabs)
	}
	if !isFinite(p.PredErr) || p.PredErr <= 0 {
		return fmt.Errorf("tune: plan PredErr %g, want positive", p.PredErr)
	}
	if !isFinite(p.PredMs) || p.PredMs <= 0 {
		return fmt.Errorf("tune: plan PredMs %g, want positive", p.PredMs)
	}
	switch p.Method {
	case "spme":
		return spme.Params{Alpha: p.Alpha(), Rc: p.Rc, Order: p.Order, N: p.Grid}.Validate()
	case "tme":
		return core.Params{Alpha: p.Alpha(), Rc: p.Rc, Order: p.Order, N: p.Grid,
			Levels: p.Levels, M: p.M, Gc: p.Gc, Kernel: core.KernelFamily(p.Kernel)}.Validate()
	case "msm":
		return msm.Params{Alpha: p.Alpha(), Rc: p.Rc, Order: p.Order, N: p.Grid,
			Levels: p.Levels, Gc: p.Gc}.Validate()
	}
	return fmt.Errorf("tune: plan method %q not one of spme, tme, msm", p.Method)
}

// NewSolver constructs the plan's long-range solver for a box.
func (p Plan) NewSolver(box vec.Box) (solver.Solver, error) {
	return solver.New(p.Method, p.SolverConfig(), box)
}

// NewIntegrator constructs a velocity-Verlet integrator running the plan:
// the plan's solver behind a force field with the plan's cutoff and skin.
func (p Plan) NewIntegrator(box vec.Box, dt float64) (*md.Integrator, error) {
	mesh, err := p.NewSolver(box)
	if err != nil {
		return nil, err
	}
	return &md.Integrator{
		FF: &md.ForceField{Alpha: p.Alpha(), Rc: p.Rc, Skin: p.Skin, Mesh: mesh},
		Dt: dt,
	}, nil
}

// PlainState strips a resume snapshot to the plan-independent state:
// box, positions, velocities, builder metadata and the step counter.
// Everything else a CaptureResume snapshot carries — forces, Verlet
// reference positions, cached mesh terms — is a cache of the *old*
// plan's force evaluation and must not leak across a retune. Restoring
// a plain snapshot leaves the integrator uninitialized, so its first
// Step recomputes forces from scratch under the new plan.
//
// This is the retune bitwise guarantee: a mid-run switch and a fresh
// process restoring the same checkpoint both pass through PlainState,
// so they hand the new plan byte-identical inputs (TestRetuneBitwise).
// The returned snapshot aliases the input's slices; it is a read-only
// view for RestoreResume, not an independent copy.
func PlainState(snap *md.Snapshot) *md.Snapshot {
	return &md.Snapshot{
		Box:  snap.Box,
		Pos:  snap.Pos,
		Vel:  snap.Vel,
		Meta: snap.Meta,
		Step: snap.Step,
	}
}

// Switch builds the plan's integrator and moves a running system onto it
// at a checkpoint boundary. The snapshot should come from
// Integrator.CaptureResume (or a checkpoint load) at that boundary; its
// plan-specific caches are dropped via PlainState, so the hand-off is
// exactly a fresh resume under the new plan.
func Switch(sys *md.System, snap *md.Snapshot, plan Plan, dt float64) (*md.Integrator, error) {
	integ, err := plan.NewIntegrator(snap.Box, dt)
	if err != nil {
		return nil, err
	}
	if err := integ.RestoreResume(sys, PlainState(snap)); err != nil {
		return nil, err
	}
	return integ, nil
}
