package tune

import (
	"errors"
	"testing"

	"tme4a/internal/vec"
)

// FuzzPlanRequest fuzzes the planner over arbitrary box shapes, atom
// counts, budgets, and worker counts. The contract under fuzzing:
// PlanFor never panics, and either returns a plan that passes
// Plan.Validate (predicting within budget) or one of the two typed
// errors — *RequestError for inputs outside the supported envelope,
// *InfeasibleError when no candidate meets the budget.
func FuzzPlanRequest(f *testing.F) {
	f.Add(3.493, 3.493, 3.493, 12288, 1e-3, 0) // Table-1 box
	f.Add(1.6, 1.6, 1.6, 150, 2e-3, 0)         // small-box fallback
	f.Add(6.99, 6.99, 6.99, 98304, 1e-4, 8)    // full-scale, tight budget
	f.Add(2.0, 3.0, 4.0, 2000, 5e-4, 4)        // anisotropic
	f.Add(0.0, 0.0, 0.0, 0, 0.0, 0)            // degenerate zeros
	f.Add(-1.0, 2.0, 2.0, 100, 1e-3, -3)       // negative edge + workers
	f.Add(500.0, 0.1, 3.0, 1, 2.0, 5000)       // everything out of range
	f.Add(3.5, 3.5, 3.5, 12288, 1e-9, 0)       // infeasible budget
	f.Fuzz(func(t *testing.T, lx, ly, lz float64, atoms int, budget float64, workers int) {
		req := Request{Box: vec.NewBox(lx, ly, lz), Atoms: atoms, ErrBudget: budget, Workers: workers}
		p, err := PlanFor(req)
		if err != nil {
			var re *RequestError
			var inf *InfeasibleError
			if !errors.As(err, &re) && !errors.As(err, &inf) {
				t.Fatalf("untyped error %T: %v", err, err)
			}
			if err.Error() == "" {
				t.Fatal("typed error with empty message")
			}
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("plan %s fails Validate: %v", p.String(), verr)
		}
		if p.PredErr > budget {
			t.Fatalf("plan %s predicts %.3e over budget %.3e", p.String(), p.PredErr, budget)
		}
		if p.PredMs <= 0 || !isFinite(p.PredMs) {
			t.Fatalf("plan %s has bad predicted cost %g", p.String(), p.PredMs)
		}
	})
}
