package tune

import (
	"fmt"
	"io"
)

// DecisionTable renders the tuner's pick for each error budget of a
// sweep as CSV rows. Output is a pure function of the request and the
// budget list — plans, predictions and formatting are all deterministic
// — so the repository pins the Table-1 sweep byte-for-byte
// (results/autotune_plans.csv, TestGoldenDecisionTable).
func DecisionTable(req Request, budgets []float64, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "err_budget,method,kernel,rc,grid,gc,M,skin,slabs,pred_err,pred_ms"); err != nil {
		return err
	}
	for _, budget := range budgets {
		r := req
		r.ErrBudget = budget
		plan, err := PlanFor(r)
		if err != nil {
			// An infeasible budget is a legitimate table row, not a failure.
			if _, ok := err.(*InfeasibleError); ok {
				if _, werr := fmt.Fprintf(w, "%.3g,none,,,,,,,,,\n", budget); werr != nil {
					return werr
				}
				continue
			}
			return err
		}
		if _, err := fmt.Fprintf(w, "%.3g,%s,%s,%.3g,%d,%d,%d,%.3g,%d,%.3e,%.3f\n",
			budget, plan.Method, plan.Kernel, plan.Rc, plan.Grid[0], plan.Gc, plan.M,
			plan.Skin, plan.Slabs, plan.PredErr, plan.PredMs); err != nil {
			return err
		}
	}
	return nil
}
