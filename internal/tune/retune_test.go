package tune_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"tme4a/internal/ckpt"
	"tme4a/internal/md"
	"tme4a/internal/tune"
	"tme4a/internal/water"
)

// stepRecord is everything a trajectory step exposes: the FNV-1a hash of
// the full dynamic state plus every energy field.
type stepRecord struct {
	Hash uint64
	E    md.Energies
}

// TestRetuneBitwise proves the online-retune safety property: switching
// plans mid-run at a checkpoint boundary produces a trajectory bitwise
// identical — StateHash and every energy field — to a fresh process that
// restores the same checkpoint and starts under the new plan. Both paths
// go through tune.Switch → PlainState, which strips the old plan's force
// and neighbor-list caches, so the new plan bootstraps identically from
// plain (positions, velocities, step) state either way. The property must
// hold at any parallelism, so the whole scenario runs at GOMAXPROCS 1
// and 4 and the traces must also agree across the two.
func TestRetuneBitwise(t *testing.T) {
	const (
		side     = 4
		dt       = 0.001
		preSteps = 4
		steps    = 5
	)
	box := water.CubicBoxFor(side * side * side)
	build := func() *md.System {
		sys := water.Build(side, side, side, box, 11)
		sys.InitVelocities(300, rand.New(rand.NewSource(11)))
		return sys
	}
	probe := build()

	// Two genuinely different plans from the tuner's own enumeration:
	// the cheapest SPME and the cheapest TME candidate.
	cands, err := tune.Enumerate(tune.Request{Box: box, Atoms: probe.N(), ErrBudget: 5e-3})
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	var planA, planB tune.Plan
	foundA, foundB := false, false
	for _, c := range cands {
		if !foundA && c.Method == "spme" {
			planA, foundA = c.Plan, true
		}
		if !foundB && c.Method == "tme" {
			planB, foundB = c.Plan, true
		}
	}
	if !foundA || !foundB {
		t.Fatalf("enumeration lacks spme/tme candidates (%d total)", len(cands))
	}

	traces := map[int][]stepRecord{}
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs-%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

			// Run preSteps under plan A, checkpoint at the boundary.
			sys := build()
			integA, err := planA.NewIntegrator(box, dt)
			if err != nil {
				t.Fatalf("plan A integrator: %v", err)
			}
			for s := 0; s < preSteps; s++ {
				integA.Step(sys)
			}
			snap := integA.CaptureResume(sys, map[string]int64{"side": side})
			store, err := ckpt.Open("ck", 3, 0, ckpt.NewMemFS())
			if err != nil {
				t.Fatalf("ckpt.Open: %v", err)
			}
			if err := store.Save(snap); err != nil {
				t.Fatalf("ckpt.Save: %v", err)
			}

			// Mid-run retune: switch the live system to plan B.
			integB, err := tune.Switch(sys, snap, planB, dt)
			if err != nil {
				t.Fatalf("Switch: %v", err)
			}
			if got := integB.StepCount(); got != preSteps {
				t.Fatalf("switched integrator starts at step %d, want %d", got, preSteps)
			}
			midRun := trace(integB, sys, steps)

			// Fresh process: rebuild the topology, load the checkpoint,
			// start under plan B.
			sys2 := build()
			cp, err := store.LoadLatest()
			if err != nil {
				t.Fatalf("LoadLatest: %v", err)
			}
			integB2, err := tune.Switch(sys2, cp.Snap, planB, dt)
			if err != nil {
				t.Fatalf("Switch (fresh): %v", err)
			}
			fresh := trace(integB2, sys2, steps)

			for s := range midRun {
				if midRun[s] != fresh[s] {
					t.Fatalf("step %d diverged:\n  mid-run retune: %+v\n  fresh restart:  %+v",
						preSteps+s+1, midRun[s], fresh[s])
				}
			}
			traces[procs] = midRun
		})
	}

	// The retuned trajectory is also invariant across parallelism.
	if len(traces[1]) == len(traces[4]) && len(traces[1]) > 0 {
		for s := range traces[1] {
			if traces[1][s] != traces[4][s] {
				t.Fatalf("step %d differs between GOMAXPROCS 1 and 4: %+v vs %+v",
					preSteps+s+1, traces[1][s], traces[4][s])
			}
		}
	}
}

func trace(integ *md.Integrator, sys *md.System, steps int) []stepRecord {
	out := make([]stepRecord, steps)
	for s := 0; s < steps; s++ {
		e := integ.Step(sys)
		out[s] = stepRecord{Hash: md.StateHash(sys), E: e}
	}
	return out
}
