package tune

import (
	"math"
	"testing"

	"tme4a/internal/obs"
	"tme4a/internal/water"
)

// advance extends a cumulative obs profile by a window of steps steps
// whose per-step short-range and mesh costs are the monitor's current
// prediction scaled by rShort and rMesh.
func advance(m *Monitor, prev obs.Profile, steps int64, rShort, rMesh float64) obs.Profile {
	b := m.Weights().StepCost(m.req, m.Plan())
	p := prev
	p.Ns[obs.StageShortRange] += int64(shortGroup(b) * rShort * float64(steps))
	p.Ns[obs.StageMesh] += int64(meshGroup(b) * rMesh * float64(steps))
	p.Count[obs.StageShortRange] += steps
	p.Count[obs.StageMesh] += steps
	return p
}

func monitorUnderTest(t *testing.T, budget float64) *Monitor {
	t.Helper()
	req := Request{Box: water.CubicBoxFor(4096), Atoms: 12288, ErrBudget: budget}
	plan, err := PlanFor(req)
	if err != nil {
		t.Fatalf("PlanFor: %v", err)
	}
	return NewMonitor(req, plan)
}

// TestMonitorStableWhenOnModel: timings matching the prediction never
// trigger a retune.
func TestMonitorStableWhenOnModel(t *testing.T) {
	m := monitorUnderTest(t, 1e-3)
	orig := m.Plan()
	cum := advance(m, obs.Profile{}, 100, 1, 1)
	if _, changed := m.Observe(cum, 100); changed {
		t.Fatal("baseline observation triggered a retune")
	}
	for i := int64(2); i <= 5; i++ {
		cum = advance(m, cum, 100, 1, 1)
		p, changed := m.Observe(cum, 100*i)
		if changed || !samePlanID(p, orig) {
			t.Fatalf("on-model window %d changed the plan", i)
		}
	}
	if m.Weights() != DefaultWeights() {
		t.Error("on-model observations recalibrated the weights")
	}
}

// TestMonitorUniformDriftKeepsPlan: a machine uniformly 3× slower than
// the model recalibrates the weights but keeps the plan — scaling both
// groups equally cannot flip any ranking.
func TestMonitorUniformDriftKeepsPlan(t *testing.T) {
	m := monitorUnderTest(t, 1e-3)
	orig := m.Plan()
	cum := advance(m, obs.Profile{}, 100, 1, 1)
	m.Observe(cum, 100)
	cum = advance(m, cum, 100, 3, 3)
	p, changed := m.Observe(cum, 200)
	if changed || !samePlanID(p, orig) {
		t.Fatalf("uniform drift changed the plan to %s", p.String())
	}
	if w := m.Weights(); math.Abs(w.PairNs/DefaultWeights().PairNs-3) > 0.2 {
		t.Errorf("PairNs rescaled to %.1f, want ≈3× default", w.PairNs)
	}
}

// TestMonitorMeshDriftRetunes: on hardware where the mesh pipeline runs
// far slower than modeled, the monitor re-plans toward a plan that
// spends less in the mesh (larger cutoff and/or coarser grid), while
// still meeting the budget under the recalibrated model.
func TestMonitorMeshDriftRetunes(t *testing.T) {
	m := monitorUnderTest(t, 1e-4)
	orig := m.Plan()
	cum := advance(m, obs.Profile{}, 100, 1, 1)
	m.Observe(cum, 100)
	cum = advance(m, cum, 100, 1, 200)
	p, changed := m.Observe(cum, 200)
	if !changed {
		t.Fatalf("200× mesh drift did not retune from %s", orig.String())
	}
	if samePlanID(p, orig) {
		t.Fatal("changed=true but identical plan")
	}
	// Under the recalibrated weights, the new plan must spend less in the
	// mesh than the old one would — that is what the retune bought.
	w := m.Weights()
	if newMesh, oldMesh := meshGroup(w.StepCost(m.req, p)), meshGroup(w.StepCost(m.req, orig)); newMesh >= oldMesh {
		t.Errorf("retuned plan %s mesh cost %.1f not below original %s's %.1f",
			p.String(), newMesh, orig.String(), oldMesh)
	}
	if p.PredErr > 1e-4 {
		t.Errorf("retuned plan %s predicts %.3e over budget", p.String(), p.PredErr)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("retuned plan invalid: %v", err)
	}
}

// TestMonitorDegenerateWindows: empty or non-advancing windows are
// ignored rather than poisoning the calibration.
func TestMonitorDegenerateWindows(t *testing.T) {
	m := monitorUnderTest(t, 1e-3)
	orig := m.Plan()
	cum := advance(m, obs.Profile{}, 100, 1, 1)
	m.Observe(cum, 100)
	// No step progress.
	if _, changed := m.Observe(cum, 100); changed {
		t.Error("zero-step window retuned")
	}
	// Zero measured time (untimed run: nil recorder).
	if _, changed := m.Observe(obs.Profile{}, 300); changed {
		t.Error("untimed window retuned")
	}
	if !samePlanID(m.Plan(), orig) || m.Weights() != DefaultWeights() {
		t.Error("degenerate windows altered monitor state")
	}
}

// TestMonitorInfeasibleRecalibrationKeepsPlan: if honest weights make the
// budget unreachable, the monitor keeps the current plan rather than
// abandoning the run mid-flight.
func TestMonitorInfeasibleRecalibrationKeepsPlan(t *testing.T) {
	m := monitorUnderTest(t, 6.5e-5) // barely feasible at default weights
	orig := m.Plan()
	cum := advance(m, obs.Profile{}, 100, 1, 1)
	m.Observe(cum, 100)
	// Enormous uniform drift: re-planning still finds the same feasible
	// set, so the plan must not change; a degenerate Inf ratio must not
	// pass validation either way.
	cum = advance(m, cum, 100, 1e6, 1e6)
	p, changed := m.Observe(cum, 200)
	if changed || !samePlanID(p, orig) {
		t.Errorf("extreme uniform drift changed plan to %s", p.String())
	}
}
