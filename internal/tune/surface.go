package tune

import (
	"math"

	"tme4a/internal/spme"
	"tme4a/internal/water"
)

// The accuracy surface: relative force errors measured against the Ewald
// reference on the Table-1 system (4096 TIP3P waters, 16³ grid,
// h = 0.3106 nm, ewald-rtol 1e-4) across rc ∈ {1.0, 1.25, 1.5} nm,
// g_c ∈ {4, 8, 12} and M ∈ {1..4}. Values are results/table1.csv verbatim
// (TestSurfaceMatchesTable1 cross-checks); the estimator interpolates this
// surface in two dimensionless keys:
//
//	x = α·h        mesh resolution relative to the Ewald splitting
//	w = g_c·α·h    grid-kernel window coverage in splitting widths
//
// Both keys are invariant under rescaling the box and the cutoff
// together (α·rc is pinned by RTol), which is what lets a surface
// measured at one system size speak for other boxes and grids.

// surfaceRc lists the measured cutoffs, ascending.
func surfaceRc() [3]float64 { return [3]float64{1.0, 1.25, 1.5} }

// surfaceGcs lists the measured grid-kernel cutoffs, ascending.
func surfaceGcs() [3]int { return [3]int{4, 8, 12} }

// surfaceSPME lists SPME's error per cutoff (same order as surfaceRc).
func surfaceSPME() [3]float64 { return [3]float64{7.157e-04, 1.482e-04, 6.016e-05} }

// surfaceTME lists TME/gauss errors indexed [rc][gc][M-1]
// (orders matching surfaceRc, surfaceGcs, M = 1..4).
func surfaceTME() [3][3][4]float64 {
	return [3][3][4]float64{
		{ // rc = 1.00
			{1.794e-03, 7.743e-04, 7.631e-04, 7.612e-04},
			{1.784e-03, 7.497e-04, 7.388e-04, 7.373e-04},
			{1.785e-03, 7.496e-04, 7.388e-04, 7.373e-04},
		},
		{ // rc = 1.25
			{1.469e-03, 2.309e-04, 1.957e-04, 1.966e-04},
			{1.469e-03, 1.991e-04, 1.642e-04, 1.634e-04},
			{1.469e-03, 1.992e-04, 1.643e-04, 1.635e-04},
		},
		{ // rc = 1.50
			{1.267e-03, 2.742e-04, 2.609e-04, 2.610e-04},
			{1.267e-03, 1.157e-04, 6.303e-05, 6.265e-05},
			{1.267e-03, 1.157e-04, 6.302e-05, 6.267e-05},
		},
	}
}

// useriesRatio lists the u-series/gauss error ratio per M, from the
// kernel shootout at the Table-1 operating point (results/shootout.csv):
// the u-series quadrature tracks the Gaussian one to within a couple of
// percent at every M, so its error is modeled as gauss × ratio.
func useriesRatio() [4]float64 {
	return [4]float64{
		1.802e-03 / 1.784e-03,
		7.562e-04 / 7.497e-04,
		7.378e-04 / 7.388e-04,
		7.374e-04 / 7.373e-04,
	}
}

// clampLowSafety inflates estimates whose x = α·h lies below the
// surface's finest measured point. The clamp itself already refuses to
// promise better errors than the surface demonstrated; the extra factor
// covers the component of the measured error that does NOT shrink with
// the mesh (the M-truncation and real-space floors), which the x-clamp
// alone underestimates by up to ~45% in the oracle's ground-truth
// measurements (TestAutotuneOracle).
const clampLowSafety = 1.5

// msmSafety inflates the TME gauss M=4 estimate for B-spline MSM: the
// direct (2g_c+1)³ convolution evaluates the same softened kernel the
// separable sweep approximates, so its error tracks the M→∞ TME limit;
// the factor absorbs the residual mismatch on the safe side.
const msmSafety = 1.3

// surfaceH is the Table-1 mesh spacing: the 4096-water cubic box over a
// 16³ grid — recomputed from the same helpers the experiments use so the
// estimator's x keys and a rerun of the experiment can never disagree.
func surfaceH() float64 { return water.CubicBoxFor(4096).L[0] / 16 }

// alphaFor returns the Ewald splitting for a cutoff under the package's
// fixed RTol convention.
func alphaFor(rc float64) float64 { return spme.AlphaFromRTol(rc, RTol) }

// surfaceXs returns the measured x = α·h keys, descending in rc order
// (larger rc ⇒ smaller α ⇒ smaller x), i.e. ascending in x when read
// back-to-front. Index order matches surfaceRc.
func surfaceXs() [3]float64 {
	h := surfaceH()
	rcs := surfaceRc()
	var xs [3]float64
	for i := range rcs {
		xs[i] = alphaFor(rcs[i]) * h
	}
	return xs
}

// surfaceXMax returns the largest x the surface covers.
func surfaceXMax() float64 {
	xs := surfaceXs()
	m := xs[0]
	for _, x := range xs[1:] {
		m = math.Max(m, x)
	}
	return m
}

// logInterp linearly interpolates ln(err) over ln(key) across the sample
// points (keys ascending). Below the range it clamps to the first value
// — the surface's most accurate point is the best the model will ever
// promise, so finer-than-measured settings are never credited with
// errors the surface has not demonstrated. Above the range it
// extrapolates on the last segment's slope (the enumerator caps how far).
func logInterp(key float64, keys, vals []float64) float64 {
	n := len(keys)
	if key <= keys[0] {
		return vals[0]
	}
	i := n - 2
	for j := 0; j < n-1; j++ {
		if key <= keys[j+1] {
			i = j
			break
		}
	}
	lx0, lx1 := math.Log(keys[i]), math.Log(keys[i+1])
	ly0, ly1 := math.Log(vals[i]), math.Log(vals[i+1])
	t := (math.Log(key) - lx0) / (lx1 - lx0)
	return math.Exp(ly0 + t*(ly1-ly0))
}

// xOrdered returns the surface x keys and a parallel value slice sorted
// ascending in x (the rc order is descending in x, so it reverses).
func xOrdered(vals [3]float64) (keys, out []float64) {
	xs := surfaceXs()
	keys = []float64{xs[2], xs[1], xs[0]}
	out = []float64{vals[2], vals[1], vals[0]}
	return keys, out
}

// lowSafety returns the conservative multiplier for estimates below the
// surface's x range.
func lowSafety(x float64) float64 {
	xs := surfaceXs()
	if x < math.Min(xs[2], math.Min(xs[0], xs[1])) {
		return clampLowSafety
	}
	return 1
}

// estimateSPME predicts SPME's relative force error at mesh key x.
func estimateSPME(x float64) (float64, bool) {
	if !isFinite(x) || x <= 0 {
		return 0, false
	}
	keys, vals := xOrdered(surfaceSPME())
	return lowSafety(x) * logInterp(x, keys, vals), true
}

// estimateTME predicts the TME relative force error at mesh key x for a
// kernel family, grid-kernel cutoff and Gaussian count. For each
// measured rc row it first interpolates over the window key w = g_c·x
// within the row (capturing the g_c = 4 truncation penalty), then
// interpolates the three row values over x.
func estimateTME(kernel string, gc, m int, x float64) (float64, bool) {
	if !isFinite(x) || x <= 0 || m < 1 || m > 4 || gc < 1 {
		return 0, false
	}
	var ratio float64
	switch kernel {
	case "", "gauss":
		ratio = 1
	case "useries":
		ratio = useriesRatio()[m-1]
	default:
		return 0, false
	}
	xs := surfaceXs()
	gcs := surfaceGcs()
	tme := surfaceTME()
	w := float64(gc) * x
	var rows [3]float64
	for i := range xs {
		wKeys := []float64{float64(gcs[0]) * xs[i], float64(gcs[1]) * xs[i], float64(gcs[2]) * xs[i]}
		wVals := []float64{tme[i][0][m-1], tme[i][1][m-1], tme[i][2][m-1]}
		rows[i] = logInterp(w, wKeys, wVals)
	}
	keys, vals := xOrdered(rows)
	return ratio * lowSafety(x) * logInterp(x, keys, vals), true
}

// estimateMSM predicts the B-spline MSM relative force error: the TME
// gauss M=4 surface (the exact softened kernel) times a safety factor.
func estimateMSM(gc int, x float64) (float64, bool) {
	e, ok := estimateTME("gauss", gc, 4, x)
	if !ok {
		return 0, false
	}
	return msmSafety * e, true
}
