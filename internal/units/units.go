// Package units defines the unit system and physical constants used
// throughout the library.
//
// The unit system follows common molecular-dynamics conventions (the same as
// GROMACS): length in nanometres, time in picoseconds, mass in atomic mass
// units, charge in elementary charges, energy in kJ/mol and temperature in
// kelvin. With these units, force comes out in kJ mol⁻¹ nm⁻¹ and velocity in
// nm ps⁻¹.
package units

// Physical constants in the nm/ps/amu/e/kJ·mol⁻¹ unit system.
const (
	// Coulomb is the electric conversion factor f = 1/(4πε₀) expressed in
	// kJ mol⁻¹ nm e⁻², so that the Coulomb energy of two unit charges at
	// 1 nm separation is Coulomb kJ/mol.
	Coulomb = 138.935458

	// Boltzmann is k_B in kJ mol⁻¹ K⁻¹.
	Boltzmann = 8.314462618e-3

	// MassO and MassH are atomic masses in amu.
	MassO = 15.99943
	MassH = 1.007947
)

// TIP3P water-model parameters (Jorgensen et al. 1983).
const (
	// TIP3PQO and TIP3PQH are the partial charges of oxygen and hydrogen
	// in elementary charges.
	TIP3PQO = -0.834
	TIP3PQH = +0.417

	// TIP3PSigma and TIP3PEpsilon are the Lennard-Jones parameters of the
	// oxygen site (σ in nm, ε in kJ/mol). Hydrogens carry no LJ site.
	TIP3PSigma   = 0.315061
	TIP3PEpsilon = 0.6364

	// TIP3PROH is the rigid O–H bond length in nm and TIP3PAngleHOH the
	// H–O–H angle in radians (104.52°).
	TIP3PROH      = 0.09572
	TIP3PAngleHOH = 104.52 * DegToRad

	// TIP3PDensity is the molecular number density of liquid water at
	// ambient conditions in molecules nm⁻³.
	TIP3PDensity = 33.3679
)

// DegToRad converts degrees to radians when multiplied.
const DegToRad = 3.14159265358979323846 / 180.0
