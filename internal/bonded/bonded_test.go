package bonded

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/vec"
)

func fdCheck(t *testing.T, ff *FF, box vec.Box, pos []vec.V, tol float64) {
	t.Helper()
	f := make([]vec.V, len(pos))
	ff.Compute(box, pos, f)
	const h = 1e-7
	for i := range pos {
		for axis := 0; axis < 3; axis++ {
			p0 := pos[i]
			pos[i][axis] = p0[axis] + h
			ep := ff.Compute(box, pos, nil)
			pos[i][axis] = p0[axis] - h
			em := ff.Compute(box, pos, nil)
			pos[i] = p0
			fd := -(ep - em) / (2 * h)
			if math.Abs(f[i][axis]-fd) > tol*math.Max(1, math.Abs(fd)) {
				t.Errorf("atom %d axis %d: F=%.8f fd=%.8f", i, axis, f[i][axis], fd)
			}
		}
	}
}

func TestBondEnergyAndForce(t *testing.T) {
	box := vec.Cubic(10)
	ff := &FF{Bonds: []Bond{{I: 0, J: 1, R0: 0.15, K: 1000}}}
	pos := []vec.V{{1, 1, 1}, {1.25, 1, 1}} // stretched by 0.1
	e := ff.Compute(box, pos, nil)
	want := 0.5 * 1000 * 0.1 * 0.1
	if math.Abs(e-want) > 1e-12 {
		t.Errorf("bond energy %g, want %g", e, want)
	}
	fdCheck(t, ff, box, pos, 1e-5)
}

func TestBondAtEquilibriumHasNoForce(t *testing.T) {
	box := vec.Cubic(10)
	ff := &FF{Bonds: []Bond{{I: 0, J: 1, R0: 0.2, K: 500}}}
	pos := []vec.V{{1, 1, 1}, {1.2, 1, 1}}
	f := make([]vec.V, 2)
	if e := ff.Compute(box, pos, f); e > 1e-20 {
		t.Errorf("equilibrium energy %g", e)
	}
	if f[0].Norm() > 1e-12 || f[1].Norm() > 1e-12 {
		t.Errorf("equilibrium forces %v %v", f[0], f[1])
	}
}

func TestBondAcrossPeriodicBoundary(t *testing.T) {
	box := vec.Cubic(2)
	ff := &FF{Bonds: []Bond{{I: 0, J: 1, R0: 0.2, K: 500}}}
	// Atoms separated by 0.2 through the boundary.
	pos := []vec.V{{0.05, 1, 1}, {1.85, 1, 1}}
	if e := ff.Compute(box, pos, nil); e > 1e-20 {
		t.Errorf("periodic bond energy %g, want 0", e)
	}
}

func TestAngleEnergyAndForce(t *testing.T) {
	box := vec.Cubic(10)
	ff := &FF{Angles: []Angle{{I: 0, J: 1, K: 2, Theta0: math.Pi / 2, KTheta: 100}}}
	// 120° angle at apex atom 1.
	pos := []vec.V{
		{1 + math.Cos(2*math.Pi/3), 1 + math.Sin(2*math.Pi/3), 1},
		{1, 1, 1},
		{2, 1, 1},
	}
	e := ff.Compute(box, pos, nil)
	dth := 2*math.Pi/3 - math.Pi/2
	if want := 0.5 * 100 * dth * dth; math.Abs(e-want) > 1e-10 {
		t.Errorf("angle energy %g, want %g", e, want)
	}
	fdCheck(t, ff, box, pos, 1e-5)
}

func TestAngleForceIsTorqueFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(10)
	ff := &FF{Angles: []Angle{{I: 0, J: 1, K: 2, Theta0: 1.9, KTheta: 250}}}
	for trial := 0; trial < 20; trial++ {
		pos := []vec.V{
			{4 + rng.NormFloat64()*0.2, 4, 4},
			{4, 4 + rng.NormFloat64()*0.2, 4},
			{4, 4, 4 + rng.NormFloat64()*0.2},
		}
		f := make([]vec.V, 3)
		ff.Compute(box, pos, f)
		var net, torque vec.V
		for i := range f {
			net = net.Add(f[i])
			torque = torque.Add(pos[i].Cross(f[i]))
		}
		if net.Norm() > 1e-9 {
			t.Fatalf("net force %v", net)
		}
		if torque.Norm() > 1e-9 {
			t.Fatalf("net torque %v", torque)
		}
	}
}

func TestDihedralEnergyPeriodicity(t *testing.T) {
	box := vec.Cubic(10)
	mk := func(phi float64) []vec.V {
		// Build a chain with dihedral angle φ.
		return []vec.V{
			{1, 1 + math.Cos(phi), 1 + math.Sin(phi)},
			{1, 1, 1},
			{2, 1, 1},
			{2, 2, 1},
		}
	}
	ff := &FF{Dihedrals: []Dihedral{{I: 0, J: 1, K: 2, L: 3, Phase: 0, KPhi: 10, Mult: 3}}}
	// Threefold term: energy repeats every 2π/3.
	for _, phi := range []float64{0.3, 1.1, 2.0} {
		e1 := ff.Compute(box, mk(phi), nil)
		e2 := ff.Compute(box, mk(phi+2*math.Pi/3), nil)
		if math.Abs(e1-e2) > 1e-9 {
			t.Errorf("phi=%g: threefold periodicity violated: %g vs %g", phi, e1, e2)
		}
	}
}

func TestDihedralForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	box := vec.Cubic(10)
	ff := &FF{Dihedrals: []Dihedral{{I: 0, J: 1, K: 2, L: 3, Phase: 0.7, KPhi: 25, Mult: 2}}}
	for trial := 0; trial < 10; trial++ {
		pos := []vec.V{
			{1 + 0.1*rng.NormFloat64(), 1.5 + 0.1*rng.NormFloat64(), 1 + 0.1*rng.NormFloat64()},
			{1, 1, 1},
			{2, 1, 1},
			{2.2, 1.8, 1 + 0.3*rng.NormFloat64()},
		}
		fdCheck(t, ff, box, pos, 1e-4)
	}
}

func TestDihedralForceConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	box := vec.Cubic(10)
	ff := &FF{Dihedrals: []Dihedral{{I: 0, J: 1, K: 2, L: 3, Phase: 0, KPhi: 12, Mult: 1}}}
	for trial := 0; trial < 10; trial++ {
		pos := []vec.V{
			{1 + 0.2*rng.NormFloat64(), 1.4, 0.9},
			{1.1, 1, 1},
			{2, 1.1, 1},
			{2.3, 1.9, 1.2 + 0.2*rng.NormFloat64()},
		}
		f := make([]vec.V, 4)
		ff.Compute(box, pos, f)
		var net, torque vec.V
		for i := range f {
			net = net.Add(f[i])
			torque = torque.Add(pos[i].Cross(f[i]))
		}
		if net.Norm() > 1e-9 {
			t.Fatalf("net dihedral force %v", net)
		}
		if torque.Norm() > 1e-8 {
			t.Fatalf("net dihedral torque %v", torque)
		}
	}
}

func TestNilFF(t *testing.T) {
	var ff *FF
	if ff.Compute(vec.Cubic(1), nil, nil) != 0 {
		t.Error("nil FF should contribute zero energy")
	}
	if ff.NTerms() != 0 {
		t.Error("nil FF should have zero terms")
	}
}
