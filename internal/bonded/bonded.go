// Package bonded implements intramolecular (bonded) force-field terms:
// harmonic bonds, harmonic angles and periodic proper dihedrals.
//
// On MDGRAPE-4A these terms are evaluated by the general-purpose (GP)
// RISC-V cores; this package is the numerical implementation, and the GP
// cycle model in internal/hw charges time per term using these counts.
package bonded

import (
	"math"

	"tme4a/internal/vec"
)

// Bond is a harmonic bond E = ½·K·(r − R0)².
type Bond struct {
	I, J int32
	R0   float64 // nm
	K    float64 // kJ mol⁻¹ nm⁻²
}

// Angle is a harmonic angle E = ½·K·(θ − Theta0)².
type Angle struct {
	I, J, K int32   // J is the apex
	Theta0  float64 // radians
	KTheta  float64 // kJ mol⁻¹ rad⁻²
}

// Dihedral is a periodic proper dihedral E = K·(1 + cos(Mult·φ − Phase)).
type Dihedral struct {
	I, J, K, L int32
	Phase      float64 // radians
	KPhi       float64 // kJ/mol
	Mult       int
}

// FF is a set of bonded terms over one topology.
type FF struct {
	Bonds     []Bond
	Angles    []Angle
	Dihedrals []Dihedral
}

// NTerms returns the total number of bonded terms.
func (ff *FF) NTerms() int {
	if ff == nil {
		return 0
	}
	return len(ff.Bonds) + len(ff.Angles) + len(ff.Dihedrals)
}

// Compute evaluates all bonded terms with minimum-image displacements,
// accumulating forces into f (may be nil) and returning the total energy.
func (ff *FF) Compute(box vec.Box, pos []vec.V, f []vec.V) float64 {
	if ff == nil {
		return 0
	}
	var e float64
	for _, b := range ff.Bonds {
		d := box.MinImage(pos[b.I].Sub(pos[b.J]))
		r := d.Norm()
		dr := r - b.R0
		e += 0.5 * b.K * dr * dr
		if f != nil && r > 0 {
			fv := d.Scale(-b.K * dr / r)
			f[b.I] = f[b.I].Add(fv)
			f[b.J] = f[b.J].Sub(fv)
		}
	}
	for _, a := range ff.Angles {
		e += angleTerm(box, pos, f, a)
	}
	for _, d := range ff.Dihedrals {
		e += dihedralTerm(box, pos, f, d)
	}
	return e
}

func angleTerm(box vec.Box, pos []vec.V, f []vec.V, a Angle) float64 {
	rij := box.MinImage(pos[a.I].Sub(pos[a.J]))
	rkj := box.MinImage(pos[a.K].Sub(pos[a.J]))
	nij, nkj := rij.Norm(), rkj.Norm()
	cosTh := rij.Dot(rkj) / (nij * nkj)
	cosTh = math.Max(-1, math.Min(1, cosTh))
	th := math.Acos(cosTh)
	dth := th - a.Theta0
	e := 0.5 * a.KTheta * dth * dth
	if f == nil {
		return e
	}
	sinTh := math.Sqrt(1 - cosTh*cosTh)
	if sinTh < 1e-8 {
		return e // collinear: force direction undefined, energy still valid
	}
	// F_i = −K·dθ·∇_iθ = (K·dθ/sinθ)·∇_i cosθ.
	c := a.KTheta * dth / sinTh
	fi := rkj.Scale(1 / (nij * nkj)).Sub(rij.Scale(cosTh / (nij * nij))).Scale(c)
	fk := rij.Scale(1 / (nij * nkj)).Sub(rkj.Scale(cosTh / (nkj * nkj))).Scale(c)
	f[a.I] = f[a.I].Add(fi)
	f[a.K] = f[a.K].Add(fk)
	f[a.J] = f[a.J].Sub(fi).Sub(fk)
	return e
}

func dihedralTerm(box vec.Box, pos []vec.V, f []vec.V, d Dihedral) float64 {
	// φ is the angle between the (ijk) and (jkl) planes, measured with the
	// IUPAC sign convention via the robust atan2 form.
	b1 := box.MinImage(pos[d.J].Sub(pos[d.I]))
	b2 := box.MinImage(pos[d.K].Sub(pos[d.J]))
	b3 := box.MinImage(pos[d.L].Sub(pos[d.K]))
	m := b1.Cross(b2)
	n := b2.Cross(b3)
	b2n := b2.Norm()
	phi := math.Atan2(m.Cross(n).Dot(b2)/b2n, m.Dot(n))
	arg := float64(d.Mult)*phi - d.Phase
	e := d.KPhi * (1 + math.Cos(arg))
	if f == nil {
		return e
	}
	dE := -d.KPhi * float64(d.Mult) * math.Sin(arg) // dE/dφ
	msq := m.Norm2()
	nsq := n.Norm2()
	if msq < 1e-14 || nsq < 1e-14 {
		return e // collinear backbone: gradient undefined
	}
	// Blondel & Karplus gradients of φ.
	gi := m.Scale(-b2n / msq)
	gl := n.Scale(b2n / nsq)
	a := b1.Dot(b2) / (b2n * b2n)
	bb := b3.Dot(b2) / (b2n * b2n)
	gj := gi.Scale(-(1 + a)).Add(gl.Scale(bb))
	gk := gi.Scale(a).Sub(gl.Scale(1 + bb))
	f[d.I] = f[d.I].Sub(gi.Scale(dE))
	f[d.J] = f[d.J].Sub(gj.Scale(dE))
	f[d.K] = f[d.K].Sub(gk.Scale(dE))
	f[d.L] = f[d.L].Sub(gl.Scale(dE))
	return e
}
