package expt

import (
	"fmt"
	"io"

	"tme4a/internal/hw/machine"
)

// WhatIfRow is one design variant of the Sec. VI.B discussion.
type WhatIfRow struct {
	Variant     string
	LongRangeUs float64
	StepUs      float64
}

// RunWhatIf evaluates the acceleration options the paper's discussion
// (Sec. VI.B) proposes, against the built machine:
//
//   - a 4× faster top-level FFT (larger FPGA / higher clock, Sec. IV.C);
//   - direct SoC–FPGA connection (removing TMENW tree stages and their
//     software overhead, Sec. VI.B);
//   - a doubled-throughput GCU ("performance and parallelization of the
//     GCU should increase");
//   - lighter CGP orchestration ("the management of hierarchical processes
//     should be more integrated in hardware");
//   - all of the above combined.
func RunWhatIf(h *HWContext, w io.Writer) []WhatIfRow {
	base := h.Cfg

	variants := []struct {
		name string
		mod  func(machine.Config) machine.Config
	}{
		{"built machine", func(c machine.Config) machine.Config { return c }},
		{"4x faster FPGA FFT", func(c machine.Config) machine.Config {
			c.TopSolveNs /= 4
			return c
		}},
		{"direct SoC-FPGA link", func(c machine.Config) machine.Config {
			// One fewer tree stage and lighter per-stage overhead.
			c.Octree.GatherStages = 2
			c.Octree.StageOverhead = 300
			return c
		}},
		{"2x GCU throughput", func(c machine.Config) machine.Config {
			c.GCUPointsCycle *= 2
			c.Cal.GCUConvSlackNs /= 2
			return c
		}},
		{"hardware event manager (CGP gaps -> 0.5 us)", func(c machine.Config) machine.Config {
			c.Cal.CGPPhaseOverheadNs = 500
			return c
		}},
		{"all combined", func(c machine.Config) machine.Config {
			c.TopSolveNs /= 4
			c.Octree.GatherStages = 2
			c.Octree.StageOverhead = 300
			c.GCUPointsCycle *= 2
			c.Cal.GCUConvSlackNs /= 2
			c.Cal.CGPPhaseOverheadNs = 500
			return c
		}},
	}

	var rows []WhatIfRow
	if w != nil {
		fmt.Fprintf(w, "# Sec VI.B design-space: long-range latency under proposed accelerations\n")
		fmt.Fprintf(w, "variant,long_range_us,step_us\n")
	}
	for _, v := range variants {
		cfg := v.mod(base)
		rep := cfg.SimulateStep(h.Workload, h.Prm, true)
		row := WhatIfRow{Variant: v.name, LongRangeUs: rep.LR.Total / 1e3, StepUs: rep.StepNs / 1e3}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "%s,%.1f,%.1f\n", row.Variant, row.LongRangeUs, row.StepUs)
		}
	}
	return rows
}
