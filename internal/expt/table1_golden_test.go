package expt

import (
	"bufio"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestTable1Golden re-measures the rc = 1.0 column of Table 1 at the quick
// configuration and compares every row against the committed
// results/table1.csv — the accuracy regression guard for the whole mesh
// stack (charge assignment, restriction, convolutions, top-level SPME,
// prolongation, back interpolation). The reference Ewald forces come from
// the on-disk cache, so the test costs the equilibration plus one solve per
// row; it is skipped in -short mode and runs in full tier-1.
func TestTable1Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("Table 1 golden sweep costs ~1 min")
	}
	golden := loadTable1CSV(t, "../../results/table1.csv")

	cfg := QuickTable1()
	cfg.CacheDir = "../../results/cache"
	cfg.Rcs = []float64{1.0}
	rows := RunTable1(cfg, io.Discard)
	if len(rows) == 0 {
		t.Fatal("sweep produced no rows")
	}

	const tol = 0.25 // relative; golden values are printed to 3 significant digits
	for _, r := range rows {
		want, ok := golden[table1Key(r)]
		if !ok {
			t.Errorf("row %s rc=%.2f gc=%d M=%d missing from results/table1.csv", r.Method, r.Rc, r.Gc, r.M)
			continue
		}
		if dev := math.Abs(r.Err-want) / want; dev > tol {
			t.Errorf("%s rc=%.2f gc=%d M=%d: force error %.3e deviates %.0f%% from golden %.3e",
				r.Method, r.Rc, r.Gc, r.M, r.Err, 100*dev, want)
		}
	}
}

func table1Key(r Table1Row) string {
	return r.Method + "/" + strconv.FormatFloat(r.Rc, 'f', 2, 64) + "/" +
		strconv.Itoa(r.Gc) + "/" + strconv.Itoa(r.M)
}

// loadTable1CSV parses the committed table into method/rc/gc/M → error.
func loadTable1CSV(t *testing.T, path string) map[string]float64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Skipf("golden table unavailable: %v", err)
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "method") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 5 {
			continue
		}
		rc, err1 := strconv.ParseFloat(parts[1], 64)
		errVal, err2 := strconv.ParseFloat(parts[4], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		gc, _ := strconv.Atoi(parts[2])
		m, _ := strconv.Atoi(parts[3])
		out[table1Key(Table1Row{Method: parts[0], Rc: rc, Gc: gc, M: m})] = errVal
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatalf("no golden rows parsed from %s", path)
	}
	return out
}
