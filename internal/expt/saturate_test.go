package expt

import (
	"bytes"
	"strings"
	"testing"

	"tme4a/internal/serve"
)

// TestRunSaturateSmoke runs a tiny two-level sweep end to end — real
// listener, real HTTP, real scheduler — and checks the measurements and
// the cross-level hash equality the sweep itself enforces.
func TestRunSaturateSmoke(t *testing.T) {
	cfg := SaturateConfig{
		Levels:  []int{1, 2},
		Jobs:    4,
		Spec:    serve.Spec{Method: "cutoff", Side: 2, Steps: 20, Equil: 10, Seed: 700},
		Quantum: 5,
	}
	var buf bytes.Buffer
	points, err := RunSaturate(cfg, &buf)
	if err != nil {
		t.Fatalf("RunSaturate: %v\n%s", err, buf.String())
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for _, pt := range points {
		if pt.JobsPerSec <= 0 {
			t.Errorf("level %d: jobs/sec = %g", pt.Boxes, pt.JobsPerSec)
		}
		if pt.P99StepNs < pt.P50StepNs || pt.P50StepNs <= 0 {
			t.Errorf("level %d: latency p50 %d p99 %d", pt.Boxes, pt.P50StepNs, pt.P99StepNs)
		}
		if pt.StepsDone < int64(cfg.Jobs*cfg.Spec.Steps) {
			t.Errorf("level %d: steps_done %d, want >= %d", pt.Boxes, pt.StepsDone, cfg.Jobs*cfg.Spec.Steps)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "boxes,jobs,jobs_per_sec") {
		t.Errorf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "hashes identical") {
		t.Errorf("missing determinism footer:\n%s", out)
	}
}
