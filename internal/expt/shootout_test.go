package expt

import (
	"io"
	"testing"
)

// TestShootoutTiny runs the kernel shootout on a small box and pins its
// structural claims: both families converge toward the grid-error floor
// with M, and the converged u-series error is no worse than converged
// Gauss–Legendre (the acceptance bar of the full-size run, checked here
// at reduced scale).
func TestShootoutTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny shootout still costs ~20 s")
	}
	cfg := ShootoutConfig{
		WaterSide:  8,
		GridN:      16,
		RTol:       1e-4,
		RefTol:     1e-10,
		Rc:         1.0,
		Gc:         8,
		Ms:         []int{1, 3},
		Reps:       1,
		EquilSteps: 60,
		Seed:       3,
		CacheDir:   t.TempDir(),
	}
	rows := RunShootout(cfg, io.Discard)
	get := func(method, kernel string, m int) ShootoutRow {
		for _, r := range rows {
			if r.Method == method && r.Kernel == kernel && r.M == m {
				return r
			}
		}
		t.Fatalf("row %s/%s/M=%d missing", method, kernel, m)
		return ShootoutRow{}
	}
	spmeRow := get("spme", "", 0)
	for _, kernel := range []string{"gauss", "useries"} {
		worst, best := get("tme", kernel, 1), get("tme", kernel, 3)
		t.Logf("%s: M=1 %.3e, M=3 %.3e (spme %.3e)", kernel, worst.Err, best.Err, spmeRow.Err)
		if best.Err >= worst.Err {
			t.Errorf("%s: M=3 error %g did not improve on M=1 %g", kernel, best.Err, worst.Err)
		}
		if best.Err > 4*spmeRow.Err {
			t.Errorf("%s: converged error %g not comparable to SPME %g", kernel, best.Err, spmeRow.Err)
		}
		if best.Step <= 0 {
			t.Errorf("%s: non-positive step time %g", kernel, best.Step)
		}
	}
	// At this reduced scale the box is smaller relative to the grid, so
	// the discretization floor sits lower and residual quadrature
	// differences between the families peek through; the strict
	// useries ≤ gauss acceptance bar is asserted at the Table-1 operating
	// point by the full run's summary line (and in internal/core's
	// TestUSeriesForceAccuracyVsReference). Here both families must land
	// within 15% of each other at M = 3.
	if u, g := get("tme", "useries", 3).Err, get("tme", "gauss", 3).Err; u > g*1.15 {
		t.Errorf("converged useries error %g not within 15%% of gauss %g", u, g)
	}
}
