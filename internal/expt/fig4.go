package expt

import (
	"fmt"
	"io"
	"math/rand"

	"tme4a/internal/core"
	"tme4a/internal/md"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

// Fig4Config parameterizes the NVE stability experiment. The paper runs
// 200 ps of 98k-atom water; the quick configuration runs a shorter
// trajectory of a smaller box with the same integrator (velocity Verlet,
// 1 fs), SETTLE constraints, p = 6 and g_c = 8. The two observables —
// absence of systematic drift and the M-dependent total-energy offset —
// are visible at this scale.
type Fig4Config struct {
	WaterSide  int
	GridN      int
	Rc         float64
	RTol       float64
	Steps      int
	Dt         float64 // ps
	Ms         []int   // TME Gaussian counts to compare with SPME
	Gc         int
	Seed       int64
	EquilSteps int
	ReportEach int
}

// QuickFig4 returns a ~6k-atom configuration usable on one core.
func QuickFig4() Fig4Config {
	return Fig4Config{
		WaterSide:  12, // 1,728 waters, 5,184 atoms
		GridN:      16,
		Rc:         1.2,
		RTol:       1e-4,
		Steps:      200,
		Dt:         0.001,
		Ms:         []int{1, 2, 3},
		Gc:         8,
		Seed:       11,
		EquilSteps: 200,
		ReportEach: 10,
	}
}

// FullFig4 returns the larger configuration (4,096 waters, 2 ps).
func FullFig4() Fig4Config {
	c := QuickFig4()
	c.WaterSide = 16
	c.Steps = 2000
	return c
}

// Fig4Series is the total-energy trajectory of one method.
type Fig4Series struct {
	Label string
	Time  []float64 // ps
	Total []float64 // kJ/mol
}

// Drift returns the least-squares slope of total energy in kJ/mol/ps.
func (s Fig4Series) Drift() float64 {
	n := float64(len(s.Time))
	if n < 2 {
		return 0
	}
	var st, se, stt, ste float64
	for i := range s.Time {
		st += s.Time[i]
		se += s.Total[i]
		stt += s.Time[i] * s.Time[i]
		ste += s.Time[i] * s.Total[i]
	}
	return (n*ste - st*se) / (n*stt - st*st)
}

// Mean returns the mean total energy.
func (s Fig4Series) Mean() float64 {
	var m float64
	for _, e := range s.Total {
		m += e
	}
	return m / float64(len(s.Total))
}

// RunFig4 runs NVE trajectories with SPME and with TME (M ∈ cfg.Ms) from
// identical initial conditions and returns the total-energy series.
func RunFig4(cfg Fig4Config, w io.Writer) []Fig4Series {
	nmol := cfg.WaterSide * cfg.WaterSide * cfg.WaterSide
	box := water.CubicBoxFor(nmol)
	base := water.Build(cfg.WaterSide, cfg.WaterSide, cfg.WaterSide, box, cfg.Seed)
	water.Equilibrate(base, cfg.EquilSteps, cfg.Dt, 300, min(0.9, cfg.Rc), cfg.Seed+1)
	base.InitVelocities(300, rand.New(rand.NewSource(cfg.Seed+2)))
	alpha := spme.AlphaFromRTol(cfg.Rc, cfg.RTol)
	n := [3]int{cfg.GridN, cfg.GridN, cfg.GridN}

	var out []Fig4Series
	run := func(label string, mesh md.MeshSolver) {
		sys := cloneSystem(base)
		integ := &md.Integrator{
			FF: &md.ForceField{Alpha: alpha, Rc: cfg.Rc, Mesh: mesh},
			Dt: cfg.Dt,
		}
		s := Fig4Series{Label: label}
		for step := 1; step <= cfg.Steps; step++ {
			e := integ.Step(sys)
			if step%cfg.ReportEach == 0 {
				s.Time = append(s.Time, float64(step)*cfg.Dt)
				s.Total = append(s.Total, e.Total())
			}
		}
		out = append(out, s)
		logf(w, "# %s: mean E = %.2f kJ/mol, drift = %.3f kJ/mol/ps\n",
			label, s.Mean(), s.Drift())
	}

	run("SPME", spme.New(spme.Params{Alpha: alpha, Rc: cfg.Rc, Order: 6, N: n}, box))
	for _, m := range cfg.Ms {
		tme := core.New(core.Params{
			Alpha: alpha, Rc: cfg.Rc, Order: 6, N: n,
			Levels: 1, M: m, Gc: cfg.Gc,
		}, box)
		run(sprintfLabel(m), tme)
	}

	if w != nil {
		logf(w, "time_ps")
		for _, s := range out {
			logf(w, ",%s", s.Label)
		}
		logf(w, "\n")
		for i := range out[0].Time {
			logf(w, "%.3f", out[0].Time[i])
			for _, s := range out {
				logf(w, ",%.4f", s.Total[i])
			}
			logf(w, "\n")
		}
	}
	return out
}

func sprintfLabel(m int) string {
	return fmt.Sprintf("TME_M%d", m)
}

func cloneSystem(src *md.System) *md.System {
	dst := *src
	dst.Pos = append([]vec.V(nil), src.Pos...)
	dst.Vel = append([]vec.V(nil), src.Vel...)
	dst.Frc = append([]vec.V(nil), src.Frc...)
	return &dst
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
