package expt

import (
	"fmt"
	"io"
	"net"
	"net/http"

	"tme4a/internal/serve"
	"tme4a/internal/serve/loadgen"
)

// SaturateConfig parameterizes the mdserve saturation sweep: the same job
// fleet is pushed through the daemon at increasing concurrent-box counts,
// measuring how throughput and tail step latency respond as more
// simulations share the one worker pool.
type SaturateConfig struct {
	// Levels are the concurrent-box counts to sweep (MaxActive and client
	// concurrency per level).
	Levels []int
	// Jobs is the fleet size per level (identical across levels so the
	// per-seed trajectories are comparable).
	Jobs int
	// Spec is the job template; seeds Spec.Seed..Spec.Seed+Jobs-1.
	Spec serve.Spec
	// Quantum is the scheduler quantum in steps.
	Quantum int
}

// QuickSaturate is the single-host sweep: a small TME box fleet over
// 1/2/4/8 concurrent boxes.
func QuickSaturate() SaturateConfig {
	return SaturateConfig{
		Levels:  []int{1, 2, 4, 8},
		Jobs:    8,
		Spec:    serve.Spec{Method: "tme", Side: 2, Steps: 25, Equil: 10, Seed: 900},
		Quantum: 5,
	}
}

// SaturatePoint is one row of the sweep.
type SaturatePoint struct {
	Boxes      int     `json:"boxes"`
	Jobs       int     `json:"jobs"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50StepNs  int64   `json:"p50_step_ns"`
	P99StepNs  int64   `json:"p99_step_ns"`
	StepsDone  int64   `json:"steps_done"`
	Rejected   int     `json:"rejected"`
}

// RunSaturate runs the sweep. Each level boots a fresh daemon on a
// loopback listener and drives it with the load generator over real HTTP.
// Beyond the timings it enforces the service determinism contract: every
// seed's final-state hash must be identical at every concurrency level —
// a job's bits must not depend on how many neighbors it shared the pool
// with.
func RunSaturate(cfg SaturateConfig, w io.Writer) ([]SaturatePoint, error) {
	if w == nil {
		w = io.Discard
	}
	fmt.Fprintf(w, "# mdserve saturation: %d jobs per level, %s side=%d steps=%d quantum=%d\n",
		cfg.Jobs, cfg.Spec.Method, cfg.Spec.Side, cfg.Spec.Steps, cfg.Quantum)
	fmt.Fprintf(w, "boxes,jobs,jobs_per_sec,p50_step_us,p99_step_us,steps_done,rejected\n")

	points := make([]SaturatePoint, 0, len(cfg.Levels))
	var refHashes map[int64]string
	for _, level := range cfg.Levels {
		pt, hashes, err := runSaturateLevel(cfg, level)
		if err != nil {
			return points, fmt.Errorf("level %d: %w", level, err)
		}
		if refHashes == nil {
			refHashes = hashes
		} else {
			for seed, want := range refHashes {
				if got := hashes[seed]; got != want {
					return points, fmt.Errorf("level %d: seed %d hash %s differs from level %d's %s — concurrency leaked into a trajectory",
						level, seed, got, cfg.Levels[0], want)
				}
			}
		}
		points = append(points, pt)
		fmt.Fprintf(w, "%d,%d,%.3f,%.1f,%.1f,%d,%d\n",
			pt.Boxes, pt.Jobs, pt.JobsPerSec,
			float64(pt.P50StepNs)/1e3, float64(pt.P99StepNs)/1e3, pt.StepsDone, pt.Rejected)
	}
	fmt.Fprintf(w, "# per-seed final hashes identical across all %d levels\n", len(cfg.Levels))
	return points, nil
}

// runSaturateLevel boots one daemon with MaxActive=level and pushes the
// fleet through it, returning the measured point and seed→hash map.
func runSaturateLevel(cfg SaturateConfig, level int) (SaturatePoint, map[int64]string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return SaturatePoint{}, nil, err
	}
	sched, err := serve.New(serve.Config{MaxActive: level, QueueCap: cfg.Jobs + 1, Quantum: cfg.Quantum})
	if err != nil {
		ln.Close()
		return SaturatePoint{}, nil, err
	}
	sched.Start()
	srv := &http.Server{Handler: serve.NewServer(sched)}
	go srv.Serve(ln) //nolint:errcheck // closed below

	res, lerr := loadgen.Run(loadgen.Config{
		BaseURL:     "http://" + ln.Addr().String(),
		Jobs:        cfg.Jobs,
		Concurrency: level,
		Spec:        cfg.Spec,
	})
	srv.Close() //nolint:errcheck // also closes ln
	hashes := make(map[int64]string, cfg.Jobs)
	for _, st := range sched.List() {
		hashes[st.Spec.Seed] = st.FinalHash
	}
	sched.Close()
	if lerr != nil {
		return SaturatePoint{}, nil, lerr
	}
	if res.Completed != cfg.Jobs {
		return SaturatePoint{}, nil, fmt.Errorf("%d of %d jobs completed (failed %d)", res.Completed, cfg.Jobs, res.Failed)
	}
	return SaturatePoint{
		Boxes:      level,
		Jobs:       cfg.Jobs,
		JobsPerSec: res.JobsPerSec,
		P50StepNs:  res.P50StepNs,
		P99StepNs:  res.P99StepNs,
		StepsDone:  res.StepsDone,
		Rejected:   res.Rejected,
	}, hashes, nil
}
