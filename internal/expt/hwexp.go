package expt

import (
	"fmt"
	"io"

	"tme4a/internal/core"
	"tme4a/internal/hw/machine"
	"tme4a/internal/perfmodel"
	"tme4a/internal/protein"
	"tme4a/internal/spme"
)

// HWContext bundles the machine model with the paper's 80,540-atom
// workload, shared by the Fig. 9/10, Table 2 and Sec. VI experiments.
type HWContext struct {
	Cfg      machine.Config
	Workload *machine.Workload
	Prm      core.Params
}

// NewHWContext builds the paper workload and decomposes it onto the
// machine.
func NewHWContext() *HWContext {
	cfg := machine.MDGRAPE4A()
	ps := protein.Build(protein.PaperTarget())
	return &HWContext{
		Cfg:      cfg,
		Workload: cfg.Decompose(ps.System, ps.Bonded, 1.2),
		Prm: core.Params{
			Alpha: spme.AlphaFromRTol(1.2, 1e-4), Rc: 1.2, Order: 6,
			N: [3]int{32, 32, 32}, Levels: 1, M: 4, Gc: 8,
		},
	}
}

// RunFig9 simulates one MD step and renders the machine time chart
// (paper Fig. 9).
func (h *HWContext) RunFig9(w io.Writer) *machine.StepReport {
	rep := h.Cfg.SimulateStep(h.Workload, h.Prm, true)
	if w != nil {
		fmt.Fprintf(w, "# Fig 9: single-step time chart, %d atoms on %d nodes\n",
			h.Workload.TotalAtoms, h.Workload.NNodes)
		fmt.Fprint(w, rep.Chart.Render(100))
		fmt.Fprintf(w, "step time: %.1f us (paper: 206 us)\n", rep.StepNs/1e3)
		fmt.Fprintf(w, "throughput at 2.5 fs: %.2f us/day (paper: ~1.0)\n",
			rep.PerformanceNsPerDay(2.5)/1e3)
	}
	return rep
}

// RunFig10 reports the detailed long-range phase breakdown (paper Fig. 10
// and Sec. V.B).
func (h *HWContext) RunFig10(w io.Writer) machine.LongRangePhases {
	rep := h.Cfg.SimulateStep(h.Workload, h.Prm, true)
	lr := rep.LR
	if w != nil {
		fmt.Fprintf(w, "# Fig 10 / Sec V.B: long-range phase breakdown (us)\n")
		fmt.Fprintf(w, "phase,measured_us,paper_us\n")
		fmt.Fprintf(w, "charge_assignment+back_interp,%.1f,~10\n", (lr.CA+lr.BI)/1e3)
		fmt.Fprintf(w, "restriction,%.2f,1.5\n", lr.Restrict/1e3)
		fmt.Fprintf(w, "level1_convolution,%.2f,6\n", lr.Conv/1e3)
		fmt.Fprintf(w, "prolongation,%.2f,1.5\n", lr.Prolong/1e3)
		fmt.Fprintf(w, "tmenw_roundtrip,%.1f,<20\n", lr.TMENW/1e3)
		fmt.Fprintf(w, "long_range_total,%.1f,~50\n", lr.Total/1e3)
	}
	return lr
}

// RunOverlap reproduces Sec. V.C: step time with and without the
// long-range part, and the ~5% overlap cost.
func (h *HWContext) RunOverlap(w io.Writer) (withLR, withoutLR float64) {
	r1 := h.Cfg.SimulateStep(h.Workload, h.Prm, true)
	r0 := h.Cfg.SimulateStep(h.Workload, h.Prm, false)
	withLR, withoutLR = r1.StepNs, r0.StepNs
	if w != nil {
		fmt.Fprintf(w, "# Sec V.C: overlap of long-range with short-range/bonded\n")
		fmt.Fprintf(w, "with_long_range_us,%.1f (paper: 206)\n", withLR/1e3)
		fmt.Fprintf(w, "without_long_range_us,%.1f (paper: 196)\n", withoutLR/1e3)
		fmt.Fprintf(w, "overhead_us,%.1f (paper: ~10, ~5%%)\n", (withLR-withoutLR)/1e3)
		fmt.Fprintf(w, "overhead_fraction,%.1f%%\n", (withLR-withoutLR)/withoutLR*100)
	}
	return withLR, withoutLR
}

// RunTable2 assembles Table 2: the literature rows plus the simulated
// MDGRAPE-4A row.
func (h *HWContext) RunTable2(w io.Writer) []perfmodel.Table2Row {
	rep := h.Cfg.SimulateStep(h.Workload, h.Prm, true)
	rows := perfmodel.LiteratureRows()
	mdg := perfmodel.Table2Row{
		System:       "MDGRAPE-4A (512 nodes)",
		Method:       "TME",
		PerfUsPerDay: rep.PerformanceNsPerDay(2.5) / 1e3,
		StepUs:       rep.StepNs / 1e3,
		LongRangeUs:  rep.LR.Total / 1e3,
	}
	// Insert in throughput order (between GPU cluster and Anton 1).
	out := append([]perfmodel.Table2Row{}, rows[:2]...)
	out = append(out, mdg)
	out = append(out, rows[2:]...)
	if w != nil {
		fmt.Fprintf(w, "# Table 2: performance comparison (50k-100k atom targets)\n")
		fmt.Fprintf(w, "system,method,performance_us_per_day,time_per_step_us,long_range_us,source\n")
		for _, r := range out {
			src := "simulated"
			if r.FromLiterature {
				src = "literature"
			}
			fmt.Fprintf(w, "%s,%s,%.2f,%.0f,%.0f,%s\n",
				r.System, r.Method, r.PerfUsPerDay, r.StepUs, r.LongRangeUs, src)
		}
	}
	return out
}

// RunGrid64 reproduces the Sec. VI.A projection: the 64³ (L = 2) TME.
func (h *HWContext) RunGrid64(w io.Writer) (lr32, lr64 machine.LongRangePhases) {
	rep32 := h.Cfg.SimulateStep(h.Workload, h.Prm, true)
	prm64 := h.Prm
	prm64.N = [3]int{64, 64, 64}
	prm64.Levels = 2
	rep64 := h.Cfg.SimulateStep(h.Workload, prm64, true)
	if w != nil {
		fmt.Fprintf(w, "# Sec VI.A: 64^3 grid (L=2) projection\n")
		fmt.Fprintf(w, "quantity,32^3,64^3,paper_64^3\n")
		fmt.Fprintf(w, "gcu_total_us,%.1f,%.1f,~72 (8x)\n",
			(rep32.LR.Restrict+rep32.LR.Conv+rep32.LR.Prolong)/1e3,
			(rep64.LR.Restrict+rep64.LR.Conv+rep64.LR.Prolong)/1e3)
		fmt.Fprintf(w, "long_range_total_us,%.1f,%.1f,~150\n",
			rep32.LR.Total/1e3, rep64.LR.Total/1e3)
	}
	return rep32.LR, rep64.LR
}

// RunCostModel prints the Sec. III.C analytic comparison and the
// strong-scaling curves.
func RunCostModel(w io.Writer) []perfmodel.CostRow {
	rows := perfmodel.CostTable(8, 4)
	if w != nil {
		fmt.Fprintf(w, "# Sec III.C: level-1 convolution cost, gc=8, M=4\n")
		fmt.Fprintf(w, "gamma,Nx/Px,comp_MSM,comp_TME,comp_ratio,comm_MSM,comm_TME,comm_ratio\n")
		for _, r := range rows {
			fmt.Fprintf(w, "%.1f,%d,%.3e,%.3e,%.1f,%.3e,%.3e,%.1f\n",
				r.Gamma, r.NxPx, r.CompMSM, r.CompTME, r.CompRatio,
				r.CommMSM, r.CommTME, r.CommRatio)
		}
		s := perfmodel.DefaultScaling()
		fmt.Fprintf(w, "\n# strong scaling model (arbitrary time units), 64^3 grid\n")
		fmt.Fprintf(w, "procs,PME,MSM,TME\n")
		for p := 8; p <= 8192; p *= 2 {
			fmt.Fprintf(w, "%d,%.0f,%.0f,%.0f\n", p, s.PMETime(p), s.MSMTime(p), s.TMETime(p))
		}
	}
	return rows
}
