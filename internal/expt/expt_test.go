package expt

import (
	"io"
	"math"
	"testing"

	"tme4a/internal/vec"
)

// TestFig3MatchesPaper: Fig. 3(b)'s qualitative content — the maximum
// relative approximation error drops by more than an order of magnitude
// per added Gaussian and is below 1e-5 by M = 4 (paper shows ~1e-6).
func TestFig3MatchesPaper(t *testing.T) {
	pts := RunFig3(4, 400, 10, io.Discard)
	var prev float64 = math.Inf(1)
	for m := 1; m <= 4; m++ {
		e := MaxErr(pts, m)
		if e >= prev/5 {
			t.Errorf("M=%d: error %g does not drop sharply from %g", m, e, prev)
		}
		prev = e
	}
	if prev > 1e-5 {
		t.Errorf("M=4 max error %g, paper reports ~1e-6", prev)
	}
	// Fig 3(a): even M=1 tracks the shell within a few percent of g(0).
	if e := MaxErr(pts, 1); e > 0.05 {
		t.Errorf("M=1 max error %g, should be a few percent", e)
	}
	// The exact series starts at 1 (normalized) and decays monotonically
	// after its flat head.
	if math.Abs(pts[0].Exact-1) > 1e-12 {
		t.Errorf("normalized shell at r=0 is %g, want 1", pts[0].Exact)
	}
	if pts[len(pts)-1].Exact > 1e-6 {
		t.Errorf("shell has not decayed by x=10: %g", pts[len(pts)-1].Exact)
	}
}

// TestTable1Tiny runs the Table 1 machinery at a deliberately tiny scale
// (512 waters) to validate the plumbing: SPME and converged TME errors in
// the same decade, M=1 clearly worse, gc=12 no worse than gc=4.
func TestTable1Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny Table 1 still costs ~20 s")
	}
	cfg := Table1Config{
		WaterSide:  8,
		GridN:      16,
		RTol:       1e-4,
		RefTol:     1e-10,
		Rcs:        []float64{1.0},
		Gcs:        []int{4, 12},
		Ms:         []int{1, 4},
		EquilSteps: 60,
		Seed:       3,
		CacheDir:   t.TempDir(),
	}
	rows := RunTable1(cfg, io.Discard)
	get := func(method string, gc, m int) float64 {
		for _, r := range rows {
			if r.Method == method && r.Gc == gc && r.M == m {
				return r.Err
			}
		}
		t.Fatalf("row %s gc=%d M=%d missing", method, gc, m)
		return 0
	}
	spmeErr := get("SPME", 0, 0)
	tmeBest := get("TME", 12, 4)
	tmeWorst := get("TME", 4, 1)
	t.Logf("SPME %.3e, TME(gc=12,M=4) %.3e, TME(gc=4,M=1) %.3e", spmeErr, tmeBest, tmeWorst)
	if tmeBest > 4*spmeErr {
		t.Errorf("converged TME error %g not comparable to SPME %g", tmeBest, spmeErr)
	}
	if tmeWorst <= tmeBest {
		t.Errorf("M=1/gc=4 error %g should exceed converged error %g", tmeWorst, tmeBest)
	}
}

// TestTable1CacheRoundTrip: the reference cache must hit on identical
// configurations.
func TestTable1CacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pos := []vec.V{{1, 2, 3}, {4, 5, 6}}
	c := &cachedForces{Pos: pos, Energy: -7, Forces: []vec.V{{0, 0, 1}, {0, 0, -1}}}
	if err := storeCache(dir, "k", c); err != nil {
		t.Fatal(err)
	}
	got, ok := loadCache(dir, "k", pos)
	if !ok {
		t.Fatal("cache miss on identical positions")
	}
	if got.Energy != -7 || got.Forces[1][2] != -1 {
		t.Errorf("cache content corrupted: %+v", got)
	}
	// Different positions must miss.
	pos2 := []vec.V{{1, 2, 3}, {4, 5, 6.0001}}
	if _, ok := loadCache(dir, "k", pos2); ok {
		t.Error("cache hit on different positions")
	}
}

// TestHWExperimentsRun exercises the hardware experiment wrappers.
func TestHWExperimentsRun(t *testing.T) {
	hw := NewHWContext()
	if rep := hw.RunFig9(io.Discard); rep.StepNs <= 0 {
		t.Error("Fig 9 produced no step time")
	}
	lr := hw.RunFig10(io.Discard)
	if lr.Total <= 0 || lr.TMENW <= 0 {
		t.Errorf("Fig 10 breakdown empty: %+v", lr)
	}
	withLR, withoutLR := hw.RunOverlap(io.Discard)
	if withLR <= withoutLR {
		t.Error("long-range must cost something")
	}
	rows := hw.RunTable2(io.Discard)
	if len(rows) != 5 {
		t.Fatalf("Table 2 has %d rows, want 5", len(rows))
	}
	// MDGRAPE-4A sits between the GPU cluster and Anton 1 in throughput.
	if !(rows[1].PerfUsPerDay < rows[2].PerfUsPerDay && rows[2].PerfUsPerDay < rows[3].PerfUsPerDay) {
		t.Errorf("Table 2 ordering wrong: %v", rows)
	}
	if rows[2].FromLiterature {
		t.Error("MDGRAPE-4A row should be simulated, not literature")
	}
	lr32, lr64 := hw.RunGrid64(io.Discard)
	if lr64.Total <= lr32.Total {
		t.Error("64³ long-range must exceed 32³")
	}
}

// TestWhatIfVariants: every Sec. VI.B acceleration must reduce the
// long-range latency relative to the built machine, and the combined
// variant must be the fastest.
func TestWhatIfVariants(t *testing.T) {
	hw := NewHWContext()
	rows := RunWhatIf(hw, io.Discard)
	if len(rows) != 6 {
		t.Fatalf("expected 6 variants, got %d", len(rows))
	}
	baseLR, baseStep := rows[0].LongRangeUs, rows[0].StepUs
	for _, r := range rows[1:] {
		// Each option must improve either the long-range latency or the
		// step time (the GCU-throughput option only shortens the step:
		// the TMENW dominates that segment of the long-range chain).
		if r.LongRangeUs >= baseLR && r.StepUs >= baseStep {
			t.Errorf("%s: LR %.1f µs, step %.1f µs — no improvement over built (%.1f, %.1f)",
				r.Variant, r.LongRangeUs, r.StepUs, baseLR, baseStep)
		}
	}
	last := rows[len(rows)-1]
	for _, r := range rows[:len(rows)-1] {
		if last.LongRangeUs > r.LongRangeUs || last.StepUs > r.StepUs {
			t.Errorf("combined variant (LR %.1f, step %.1f) slower than %s (LR %.1f, step %.1f)",
				last.LongRangeUs, last.StepUs, r.Variant, r.LongRangeUs, r.StepUs)
		}
	}
}
