package expt

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"tme4a/internal/vec"
)

// cachedForces stores a configuration and its reference forces on disk so
// that the expensive reference Ewald summation runs once per workload.
type cachedForces struct {
	Pos    []vec.V
	Energy float64
	Forces []vec.V
}

func cachePath(dir, key string) string {
	return filepath.Join(dir, key+".gob")
}

// loadCache returns the cached entry if present and consistent with pos.
func loadCache(dir, key string, pos []vec.V) (*cachedForces, bool) {
	if dir == "" {
		return nil, false
	}
	f, err := os.Open(cachePath(dir, key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var c cachedForces
	if err := gob.NewDecoder(f).Decode(&c); err != nil {
		return nil, false
	}
	if len(c.Pos) != len(pos) {
		return nil, false
	}
	for i := range pos {
		if c.Pos[i] != pos[i] {
			return nil, false
		}
	}
	return &c, true
}

// storeCache persists an entry; failures are non-fatal (cache only).
func storeCache(dir, key string, c *cachedForces) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(cachePath(dir, key))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(c); err != nil {
		return fmt.Errorf("expt: encoding cache: %w", err)
	}
	return nil
}
