package expt

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"tme4a/internal/ckpt"
	"tme4a/internal/md"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

// Fig4ResumeConfig parameterizes the crash/resume experiment: an NVE
// trajectory is run straight through, then re-run with periodic
// checkpoints and killed mid-flight, then resumed from the newest
// checkpoint. The resumed trajectory must match the straight one bit for
// bit at every remaining step — the paper's reproducibility requirement
// (bitwise-identical runs on the same machine count) extended across a
// process boundary. A second variant tears the checkpoint written at the
// kill step, so the resume must fall back to the previous checkpoint and
// replay the gap, still bitwise.
type Fig4ResumeConfig struct {
	WaterSide  int
	GridN      int
	Rc         float64
	RTol       float64
	Skin       float64 // Verlet buffer; >0 exercises pair-list resume
	Steps      int     // total trajectory length
	KillAt     int     // the interrupted run dies after this step
	Every      int     // checkpoint cadence (steps)
	Keep       int     // retention for the checkpoint store
	MeshEvery  int     // >1 exercises the cached long-range term
	Dt         float64 // ps
	Seed       int64
	EquilSteps int
}

// QuickFig4Resume is the standard configuration: 375 atoms, 1000 steps,
// killed at step 500 with checkpoints every 100.
func QuickFig4Resume() Fig4ResumeConfig {
	return Fig4ResumeConfig{
		WaterSide:  5, // 125 waters, 375 atoms
		GridN:      16,
		Rc:         0.6,
		RTol:       1e-4,
		Skin:       0.1,
		Steps:      1000,
		KillAt:     500,
		Every:      100,
		Keep:       3,
		MeshEvery:  2,
		Dt:         0.001,
		Seed:       7,
		EquilSteps: 100,
	}
}

// TinyFig4Resume is a seconds-scale configuration for -short test runs.
func TinyFig4Resume() Fig4ResumeConfig {
	c := QuickFig4Resume()
	c.WaterSide = 4
	c.Rc = 0.5
	c.Steps = 120
	c.KillAt = 60
	c.Every = 20
	return c
}

// Fig4ResumeResult reports what the harness observed.
type Fig4ResumeResult struct {
	Atoms          int
	ResumedFrom    int64 // checkpoint step the clean resume restarted at
	TornResumeFrom int64 // fallback step after the torn final checkpoint
	FinalHash      uint64
}

// configHash fingerprints every parameter that shapes the trajectory.
func (cfg Fig4ResumeConfig) configHash() uint64 {
	return ckpt.ConfigHash(fmt.Sprintf(
		"fig4resume side=%d grid=%d rc=%g rtol=%g skin=%g steps=%d dt=%g meshEvery=%d seed=%d equil=%d",
		cfg.WaterSide, cfg.GridN, cfg.Rc, cfg.RTol, cfg.Skin, cfg.Steps, cfg.Dt,
		cfg.MeshEvery, cfg.Seed, cfg.EquilSteps))
}

// build constructs the initial state; it is a pure function of cfg.
func (cfg Fig4ResumeConfig) build() *md.System {
	nmol := cfg.WaterSide * cfg.WaterSide * cfg.WaterSide
	box := water.CubicBoxFor(nmol)
	sys := water.Build(cfg.WaterSide, cfg.WaterSide, cfg.WaterSide, box, cfg.Seed)
	water.Equilibrate(sys, cfg.EquilSteps, cfg.Dt, 300, math.Min(0.9, cfg.Rc), cfg.Seed+1)
	sys.InitVelocities(300, rand.New(rand.NewSource(cfg.Seed+2)))
	return sys
}

// rebuild reconstructs the topology for a resume: same builder, but the
// box comes from the checkpoint and no equilibration runs — positions
// and velocities are about to be overwritten by the snapshot.
func (cfg Fig4ResumeConfig) rebuild(snap *md.Snapshot) *md.System {
	return water.Build(cfg.WaterSide, cfg.WaterSide, cfg.WaterSide, snap.Box, cfg.Seed)
}

func (cfg Fig4ResumeConfig) integrator(box vec.Box) *md.Integrator {
	alpha := spme.AlphaFromRTol(cfg.Rc, cfg.RTol)
	n := [3]int{cfg.GridN, cfg.GridN, cfg.GridN}
	return &md.Integrator{
		FF: &md.ForceField{
			Alpha: alpha,
			Rc:    cfg.Rc,
			Skin:  cfg.Skin,
			Mesh:  spme.New(spme.Params{Alpha: alpha, Rc: cfg.Rc, Order: 6, N: n}, box),
		},
		Dt:        cfg.Dt,
		MeshEvery: cfg.MeshEvery,
	}
}

// stateHash digests the full dynamic state (positions and velocities,
// raw float64 bits) so per-step comparisons are exact, not tolerance-based.
func stateHash(sys *md.System) uint64 { return md.StateHash(sys) }

// RunFig4Resume executes the experiment using checkpoint stores rooted at
// cleanDir and tornDir (distinct directories on fsys; nil fsys uses the
// real filesystem). It returns an error describing the first divergence,
// if any.
func RunFig4Resume(cfg Fig4ResumeConfig, cleanDir, tornDir string, fsys ckpt.FS, w io.Writer) (Fig4ResumeResult, error) {
	var res Fig4ResumeResult
	hash := cfg.configHash()
	meta := map[string]int64{"side": int64(cfg.WaterSide), "seed": cfg.Seed}

	// Reference: the uninterrupted trajectory, hashed after every step.
	ref := cfg.build()
	res.Atoms = ref.N()
	refInteg := cfg.integrator(ref.Box)
	hashes := make([]uint64, cfg.Steps+1)
	for s := 1; s <= cfg.Steps; s++ {
		refInteg.Step(ref)
		hashes[s] = stateHash(ref)
	}
	res.FinalHash = hashes[cfg.Steps]
	logf(w, "# fig4resume: %d atoms, %d steps, kill at %d, checkpoint every %d\n",
		res.Atoms, cfg.Steps, cfg.KillAt, cfg.Every)

	// runInterrupted integrates to KillAt, checkpointing through st; a
	// save error is treated as the process dying at that step (the torn
	// variant relies on this).
	runInterrupted := func(st *ckpt.Store) error {
		sys := cfg.build()
		integ := cfg.integrator(sys.Box)
		for s := 1; s <= cfg.KillAt; s++ {
			integ.Step(sys)
			if hashes[s] != stateHash(sys) {
				return fmt.Errorf("interrupted run diverged from reference at step %d", s)
			}
			if s%cfg.Every == 0 {
				if err := st.Save(integ.CaptureResume(sys, meta)); err != nil {
					return fmt.Errorf("checkpoint at step %d: %w", s, err)
				}
			}
		}
		return nil
	}

	// resume restores from the newest valid checkpoint in dir and runs to
	// the end, demanding bitwise identity with the reference at each step.
	resume := func(dir string) (int64, error) {
		st, err := ckpt.Open(dir, cfg.Keep, hash, fsys)
		if err != nil {
			return 0, err
		}
		c, err := st.LoadLatest()
		if err != nil {
			return 0, err
		}
		from := c.Step()
		sys := cfg.rebuild(c.Snap)
		integ := cfg.integrator(sys.Box)
		if err := integ.RestoreResume(sys, c.Snap); err != nil {
			return from, err
		}
		if got := stateHash(sys); got != hashes[from] {
			return from, fmt.Errorf("restored state at step %d differs from reference (hash %016x vs %016x)",
				from, got, hashes[from])
		}
		for s := int(from) + 1; s <= cfg.Steps; s++ {
			integ.Step(sys)
			if got := stateHash(sys); got != hashes[s] {
				return from, fmt.Errorf("resumed trajectory diverged at step %d (hash %016x vs %016x)",
					s, got, hashes[s])
			}
		}
		return from, nil
	}

	// Clean kill/resume: the checkpoint at KillAt is intact.
	st, err := ckpt.Open(cleanDir, cfg.Keep, hash, fsys)
	if err != nil {
		return res, err
	}
	if err := runInterrupted(st); err != nil {
		return res, err
	}
	res.ResumedFrom, err = resume(cleanDir)
	if err != nil {
		return res, fmt.Errorf("clean resume: %w", err)
	}
	if res.ResumedFrom != int64(cfg.KillAt) {
		return res, fmt.Errorf("clean resume started at %d, want %d", res.ResumedFrom, cfg.KillAt)
	}
	logf(w, "clean kill at %d: resumed from %d, bitwise identical to straight run\n",
		cfg.KillAt, res.ResumedFrom)

	// Torn variant: the write of the final checkpoint is torn mid-buffer
	// and the "machine" dies. The half-written temp never got renamed, so
	// recovery must ignore it (and would reject its content on CRC if it
	// had), fall back one checkpoint, and replay the gap bitwise.
	inner := fsys
	if inner == nil {
		inner = ckpt.OS()
	}
	ffs := ckpt.NewFaultFS(inner, ckpt.Rule{
		Op:    ckpt.OpWrite,
		Match: ckpt.FileName(int64(cfg.KillAt)),
		Mode:  ckpt.ModeTorn,
	})
	tst, err := ckpt.Open(tornDir, cfg.Keep, hash, ffs)
	if err != nil {
		return res, err
	}
	if err := runInterrupted(tst); err == nil {
		return res, fmt.Errorf("torn write at step %d went unreported", cfg.KillAt)
	}
	res.TornResumeFrom, err = resume(tornDir)
	if err != nil {
		return res, fmt.Errorf("torn-fallback resume: %w", err)
	}
	if want := int64(cfg.KillAt - cfg.Every); res.TornResumeFrom != want {
		return res, fmt.Errorf("torn-fallback resume started at %d, want %d", res.TornResumeFrom, want)
	}
	logf(w, "torn checkpoint at %d: fell back to %d, replayed %d steps, bitwise identical\n",
		cfg.KillAt, res.TornResumeFrom, int64(cfg.Steps)-res.TornResumeFrom)
	return res, nil
}
