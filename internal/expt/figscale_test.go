package expt

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFigScaleSmoke runs a trimmed sweep end to end and checks the
// cross-rank-count hash equality the sweep itself enforces, plus the
// traffic monotony the protocol guarantees (a single rank moves no
// bytes; multi-rank runs always move some).
func TestRunFigScaleSmoke(t *testing.T) {
	cfg := QuickFigScale()
	cfg.EquilSteps = 50
	cfg.Warmup = 2
	cfg.Steps = 10
	cfg.Ranks = []int{1, 2, 4}
	var buf bytes.Buffer
	points, err := RunFigScale(cfg, &buf)
	if err != nil {
		t.Fatalf("RunFigScale: %v\n%s", err, buf.String())
	}
	if len(points) != len(cfg.Ranks) {
		t.Fatalf("got %d points, want %d", len(points), len(cfg.Ranks))
	}
	for i, pt := range points {
		if pt.Ranks != cfg.Ranks[i] {
			t.Errorf("point %d: ranks %d, want %d", i, pt.Ranks, cfg.Ranks[i])
		}
		if pt.StateHash != points[0].StateHash {
			t.Errorf("ranks=%d hash %s != ranks=1 hash %s", pt.Ranks, pt.StateHash, points[0].StateHash)
		}
		if pt.StepNs <= 0 {
			t.Errorf("ranks=%d: step_ns %d", pt.Ranks, pt.StepNs)
		}
		if pt.Ranks == 1 {
			if pt.CommPerStep != 0 || pt.TorusNs != 0 {
				t.Errorf("ranks=1 reports traffic: %d bytes, %d ns", pt.CommPerStep, pt.TorusNs)
			}
		} else if pt.CommPerStep <= 0 || pt.TorusNs <= 0 {
			t.Errorf("ranks=%d reports no traffic: %d bytes, %d ns", pt.Ranks, pt.CommPerStep, pt.TorusNs)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "ranks,atoms,state_hash") {
		t.Errorf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "hash identical") {
		t.Errorf("missing determinism footer:\n%s", out)
	}
}
