package expt

import (
	"fmt"
	"io"
	"math/rand"

	"tme4a/internal/core"
	"tme4a/internal/hw/torus"
	"tme4a/internal/md"
	"tme4a/internal/obs"
	"tme4a/internal/rank"
	"tme4a/internal/spme"
	"tme4a/internal/water"
)

// FigScaleConfig parameterizes the rank strong-scaling sweep (the live
// counterpart of the paper's Fig 10 node-scaling discussion): the same
// NVE water trajectory is stepped by the rank engine at increasing rank
// counts, measuring the per-stage step breakdown, the protocol traffic,
// and the torus-modeled communication time — while asserting the
// trajectory itself stays bitwise identical at every rank count.
type FigScaleConfig struct {
	WaterSide  int     // waters per box edge
	GridN      int     // finest TME grid (GridN³)
	Levels     int     // TME levels L
	M          int     // Gaussians per shell
	Gc         int     // grid-kernel cutoff
	Rc         float64 // short-range cutoff (nm)
	RTol       float64 // erfc(α·rc) tolerance
	Dt         float64 // ps
	Seed       int64
	EquilSteps int   // thermostatted pre-equilibration steps
	Warmup     int   // instrumented-but-discarded steps per rank count
	Steps      int   // measured steps per rank count
	Ranks      []int // rank counts to sweep
}

// QuickFigScale is the single-host sweep: a 216-water box whose 8 cell
// layers and 32 mesh planes divide evenly across 1/2/4/8 ranks.
func QuickFigScale() FigScaleConfig {
	return FigScaleConfig{
		WaterSide:  6, // 216 waters, 648 atoms
		GridN:      32,
		Levels:     1,
		M:          2,
		Gc:         4,
		Rc:         0.23,
		RTol:       1e-4,
		Dt:         0.001,
		Seed:       23,
		EquilSteps: 100,
		Warmup:     5,
		Steps:      40,
		Ranks:      []int{1, 2, 4, 8},
	}
}

// FullFigScale scales the sweep up (512 waters, longer measurement).
func FullFigScale() FigScaleConfig {
	c := QuickFigScale()
	c.WaterSide = 8
	c.Rc = 0.3
	c.Steps = 200
	return c
}

// FigScalePoint is one row of the sweep. Hash and traffic are
// deterministic; the stage timings are measured wall time on rank 0.
type FigScalePoint struct {
	Ranks        int    `json:"ranks"`
	Atoms        int    `json:"atoms"`
	StateHash    string `json:"state_hash"`
	CommPerStep  int64  `json:"comm_bytes_per_step"`
	TorusNs      int64  `json:"torus_comm_ns_per_step"`
	StepNs       int64  `json:"step_ns"`
	ShortNs      int64  `json:"short_range_ns"`
	NeighborNs   int64  `json:"neighbor_ns"`
	MeshNs       int64  `json:"mesh_ns"`
	IntegrateNs  int64  `json:"integrate_ns"`
	ConstraintNs int64  `json:"constraint_ns"`
	MergeNs      int64  `json:"merge_ns"`
}

// buildScaleSystem prepares the equilibrated box; the seed chain makes
// every call return a bitwise-identical system.
func buildScaleSystem(cfg FigScaleConfig) *md.System {
	nmol := cfg.WaterSide * cfg.WaterSide * cfg.WaterSide
	box := water.CubicBoxFor(nmol)
	sys := water.Build(cfg.WaterSide, cfg.WaterSide, cfg.WaterSide, box, cfg.Seed)
	water.Equilibrate(sys, cfg.EquilSteps, cfg.Dt, 300, cfg.Rc, cfg.Seed+1)
	sys.InitVelocities(300, rand.New(rand.NewSource(cfg.Seed+2)))
	return sys
}

// RunFigScale runs the sweep: one fresh engine per rank count, warm-up,
// then cfg.Steps measured steps. Every rank count must land on the same
// md.StateHash — a divergence is returned as an error, not a data point.
// The torus-comm column routes each step's traffic matrix over the
// MDGRAPE-4A 3D torus (ranks laid out along one torus axis, as the slab
// decomposition prescribes) and reports the modeled drain time.
func RunFigScale(cfg FigScaleConfig, w io.Writer) ([]FigScalePoint, error) {
	if w == nil {
		w = io.Discard
	}
	fmt.Fprintf(w, "# fig10scale: %d waters, grid %d^3 L=%d M=%d gc=%d rc=%g, %d measured steps per rank count\n",
		cfg.WaterSide*cfg.WaterSide*cfg.WaterSide, cfg.GridN, cfg.Levels, cfg.M, cfg.Gc, cfg.Rc, cfg.Steps)
	fmt.Fprintf(w, "ranks,atoms,state_hash,comm_bytes_per_step,torus_comm_ns,step_us,short_us,neighbor_us,mesh_us,integrate_us,constraint_us,merge_us\n")

	points := make([]FigScalePoint, 0, len(cfg.Ranks))
	var refHash uint64
	for _, r := range cfg.Ranks {
		pt, hash, err := runFigScalePoint(cfg, r)
		if err != nil {
			return points, fmt.Errorf("ranks=%d: %w", r, err)
		}
		if len(points) == 0 {
			refHash = hash
		} else if hash != refHash {
			return points, fmt.Errorf("ranks=%d: state hash %016x differs from ranks=%d's %016x — rank decomposition leaked into the trajectory",
				r, hash, cfg.Ranks[0], refHash)
		}
		points = append(points, pt)
		fmt.Fprintf(w, "%d,%d,%s,%d,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f\n",
			pt.Ranks, pt.Atoms, pt.StateHash, pt.CommPerStep, pt.TorusNs,
			float64(pt.StepNs)/1e3, float64(pt.ShortNs)/1e3, float64(pt.NeighborNs)/1e3,
			float64(pt.MeshNs)/1e3, float64(pt.IntegrateNs)/1e3,
			float64(pt.ConstraintNs)/1e3, float64(pt.MergeNs)/1e3)
	}
	fmt.Fprintf(w, "# state hash identical across all %d rank counts\n", len(points))
	return points, nil
}

// runFigScalePoint measures one rank count and returns the point plus
// the final state hash.
func runFigScalePoint(cfg FigScaleConfig, r int) (FigScalePoint, uint64, error) {
	sys := buildScaleSystem(cfg)
	alpha := spme.AlphaFromRTol(cfg.Rc, cfg.RTol)
	n := [3]int{cfg.GridN, cfg.GridN, cfg.GridN}
	mesh := core.New(core.Params{
		Alpha: alpha, Rc: cfg.Rc, Order: 4, N: n,
		Levels: cfg.Levels, M: cfg.M, Gc: cfg.Gc,
	}, sys.Box)
	ff := &md.ForceField{Alpha: alpha, Rc: cfg.Rc, Mesh: mesh}

	eng, err := rank.New(rank.Config{Ranks: r}, sys, ff, cfg.Dt)
	if err != nil {
		return FigScalePoint{}, 0, err
	}
	defer eng.Close()
	rec := obs.New()
	eng.SetObs(rec)
	for s := 0; s < cfg.Warmup; s++ {
		if _, err := eng.Step(); err != nil {
			return FigScalePoint{}, 0, err
		}
	}
	rec.Reset()
	bytes0 := eng.CommBytes()
	m0 := eng.CommMatrix()
	for s := 0; s < cfg.Steps; s++ {
		if _, err := eng.Step(); err != nil {
			return FigScalePoint{}, 0, err
		}
	}
	hash := md.StateHash(sys)
	steps := int64(cfg.Steps)
	per := func(s obs.Stage) int64 { return rec.StageNs(s) / steps }
	pt := FigScalePoint{
		Ranks:        r,
		Atoms:        sys.N(),
		StateHash:    fmt.Sprintf("%016x", hash),
		CommPerStep:  (eng.CommBytes() - bytes0) / steps,
		TorusNs:      torusCommNs(eng.CommMatrix(), m0, steps),
		StepNs:       per(obs.StageStep),
		ShortNs:      per(obs.StageShortRange),
		NeighborNs:   per(obs.StageNeighbor),
		MeshNs:       per(obs.StageMesh),
		IntegrateNs:  per(obs.StageIntegrate),
		ConstraintNs: per(obs.StageConstraint),
		MergeNs:      per(obs.StageMerge),
	}
	return pt, hash, nil
}

// torusCommNs routes one step's average traffic matrix over the
// MDGRAPE-4A torus, rank a at torus coordinate (0, 0, a), and returns
// the modeled time (ns) until the last packet drains. Pairs are replayed
// in the engine's deterministic (src, dst) order, all injected at t=0,
// so contention on shared links is accounted for.
func torusCommNs(m1, m0 [][]int64, steps int64) int64 {
	net := torus.NewNetwork(torus.MDGRAPE4A())
	var last float64
	for a := range m1 {
		for b := range m1[a] {
			bytes := float64(m1[a][b]-m0[a][b]) / float64(steps)
			if bytes == 0 {
				continue
			}
			at := net.Send(torus.Coord{Z: a}, torus.Coord{Z: b}, bytes, 0)
			if at > last {
				last = at
			}
		}
	}
	return int64(last)
}
