package expt

import (
	"fmt"
	"io"
	"time"

	"tme4a/internal/ewald"
	"tme4a/internal/solver"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
)

// ShootoutConfig parameterizes the kernel-family accuracy/cost shootout:
// a Table-1-style measurement comparing, at one operating point, the SPME
// baseline against TME with the Gauss–Legendre (Eq. (7)) and u-series
// middle-range decompositions over the M sweep. Solvers are built through
// the solver registry — the same path mdrun uses.
type ShootoutConfig struct {
	WaterSide  int     // waters per axis (lattice side)
	GridN      int     // finest grid per axis
	RTol       float64 // erfc(α·rc) target
	RefTol     float64 // reference Ewald error-factor tolerance
	Rc         float64 // short-range cutoff (nm)
	Gc         int     // grid-kernel cutoff
	Ms         []int   // Gaussians per shell to sweep
	Reps       int     // timed long-range solves per row (min is reported)
	EquilSteps int
	Seed       int64
	CacheDir   string
}

// QuickShootout returns the single-host configuration at the Table-1
// operating point rc = 1.0 nm, g_c = 8 (the paper's hardware design
// point), sharing the water box and cached Ewald reference of QuickTable1.
func QuickShootout() ShootoutConfig {
	return ShootoutConfig{
		WaterSide:  16,
		GridN:      16,
		RTol:       1e-4,
		RefTol:     1e-12,
		Rc:         1.0,
		Gc:         8,
		Ms:         []int{1, 2, 3, 4},
		Reps:       5,
		EquilSteps: 300,
		Seed:       7,
		CacheDir:   "results/cache",
	}
}

// FullShootout is the paper-scale variant (32³ waters, 32³ grid), sharing
// FullTable1's cached reference.
func FullShootout() ShootoutConfig {
	c := QuickShootout()
	c.WaterSide = 32
	c.GridN = 32
	c.RefTol = 1e-10
	c.EquilSteps = 150
	return c
}

// table1Config maps the shootout onto the Table-1 system builder and
// reference cache (identical key fields → the expensive Ewald reference is
// computed once across both experiments).
func (c ShootoutConfig) table1Config() Table1Config {
	return Table1Config{
		WaterSide:  c.WaterSide,
		GridN:      c.GridN,
		RTol:       c.RTol,
		RefTol:     c.RefTol,
		EquilSteps: c.EquilSteps,
		Seed:       c.Seed,
		CacheDir:   c.CacheDir,
	}
}

// ShootoutRow is one measured entry of the shootout.
type ShootoutRow struct {
	Method string  // registry method name
	Kernel string  // kernel family ("" for non-TME methods)
	M      int     // Gaussians per shell (0 for SPME)
	Err    float64 // relative force error vs the Ewald reference
	Step   float64 // long-range solve wall time (ms, min over Reps)
}

// RunShootout measures the accuracy/cost trade of the registered kernel
// families at one operating point and writes CSV rows to w as they are
// produced. The closing summary line states whether the u-series family
// meets this PR's acceptance bar: force RMS error no worse than M = 3
// Gauss–Legendre at comparable step time.
func RunShootout(cfg ShootoutConfig, w io.Writer) []ShootoutRow {
	t1 := cfg.table1Config()
	logf(w, "# Kernel shootout: %d TIP3P waters, grid %d^3, rc %.2f nm, gc %d\n",
		cfg.WaterSide*cfg.WaterSide*cfg.WaterSide, cfg.GridN, cfg.Rc, cfg.Gc)
	sys := buildWater(t1, w)
	_, fRef := referenceForces(t1, sys, w)

	alpha := spme.AlphaFromRTol(cfg.Rc, cfg.RTol)
	n := [3]int{cfg.GridN, cfg.GridN, cfg.GridN}
	fSR := make([]vec.V, sys.N())
	ewald.RealSpace(sys.Box, sys.Pos, sys.Q, alpha, cfg.Rc, nil, fSR)

	measure := func(method, kernel string, m int) ShootoutRow {
		s, err := solver.New(method, solver.Config{
			Alpha: alpha, Rc: cfg.Rc, Order: 6, N: n,
			Levels: 1, M: m, Gc: cfg.Gc, Kernel: kernel,
		}, sys.Box)
		if err != nil {
			panic(fmt.Sprintf("expt: shootout construction: %v", err))
		}
		f := cloneForces(fSR)
		s.LongRange(sys.Pos, sys.Q, f)
		row := ShootoutRow{Method: method, Kernel: kernel, M: m, Err: relForceError(f, fRef)}
		reps := cfg.Reps
		if reps < 1 {
			reps = 1
		}
		for i := 0; i < reps; i++ {
			start := time.Now()
			s.LongRange(sys.Pos, sys.Q, nil)
			if ms := time.Since(start).Seconds() * 1e3; i == 0 || ms < row.Step {
				row.Step = ms
			}
		}
		return row
	}

	var rows []ShootoutRow
	logf(w, "method,kernel,M,relative_force_error,longrange_ms\n")
	emit := func(row ShootoutRow) {
		rows = append(rows, row)
		mcol := ""
		if row.M > 0 {
			mcol = fmt.Sprintf("%d", row.M)
		}
		logf(w, "%s,%s,%s,%.3e,%.3f\n", row.Method, row.Kernel, mcol, row.Err, row.Step)
	}

	emit(measure("spme", "", 0))
	byKey := map[string]ShootoutRow{}
	for _, kernel := range []string{"gauss", "useries"} {
		for _, m := range cfg.Ms {
			row := measure("tme", kernel, m)
			emit(row)
			byKey[fmt.Sprintf("%s/%d", kernel, m)] = row
		}
	}

	gl3, okG := byKey["gauss/3"]
	us3, okU := byKey["useries/3"]
	if okG && okU {
		verdict := "PASS"
		if us3.Err > gl3.Err {
			verdict = "FAIL"
		}
		logf(w, "# acceptance: useries M=3 err %.3e vs gauss M=3 err %.3e (times %.3f/%.3f ms) -> %s\n",
			us3.Err, gl3.Err, us3.Step, gl3.Step, verdict)
	}
	return rows
}
