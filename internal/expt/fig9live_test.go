package expt

import (
	"bufio"
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"
)

// fig9liveShort is a seconds-scale configuration for tests.
func fig9liveShort() Fig9LiveConfig {
	cfg := QuickFig9Live()
	cfg.WaterSide = 6 // 216 waters, 648 atoms
	cfg.EquilSteps = 20
	cfg.Warmup = 3
	cfg.Steps = 20
	return cfg
}

// TestFig9LiveReport: the live chart must resolve the pipeline — at least
// eight distinct stages with spans — and attribute most of the step to them.
func TestFig9LiveReport(t *testing.T) {
	if testing.Short() {
		t.Skip("instrumented MD run skipped in -short mode")
	}
	var buf bytes.Buffer
	rep := RunFig9Live(fig9liveShort(), &buf)
	if rep.Steps != 20 {
		t.Errorf("report counted %d steps, want 20", rep.Steps)
	}
	if len(rep.Stages) < 8 {
		t.Errorf("report resolves only %d stages, want >= 8:\n%s", len(rep.Stages), buf.String())
	}
	for _, name := range []string{"charge_assign", "restrict", "grid_conv", "top_spme", "prolong", "back_interp", "short_range", "step_total"} {
		if _, ok := rep.StageStatByName(name); !ok {
			t.Errorf("stage %s missing from the live report", name)
		}
	}
	step, _ := rep.StageStatByName("step_total")
	mesh, _ := rep.StageStatByName("mesh_total")
	sr, _ := rep.StageStatByName("short_range")
	if step.TotalNs <= 0 {
		t.Fatal("no step time measured")
	}
	if covered := float64(mesh.TotalNs+sr.TotalNs) / float64(step.TotalNs); covered < 0.5 {
		t.Errorf("mesh+short-range cover only %.0f%% of the step; instrumentation is missing the bulk of the work", 100*covered)
	}
}

// TestFig9LivePerfModelDeviation compares the measured stage shares against
// the hardware cost model's Fig 9 chart (results/fig9.txt). The two run on
// wildly different machines — one core here vs 512 nodes of purpose-built
// pipelines there — so this test never fails on deviation; it prints the
// side-by-side table that makes the software/model gap visible in test
// logs.
func TestFig9LivePerfModelDeviation(t *testing.T) {
	if testing.Short() {
		t.Skip("instrumented MD run skipped in -short mode")
	}
	model, stepUs, err := loadFig9Model("../../results/fig9.txt")
	if err != nil {
		t.Skipf("hardware-model chart unavailable: %v", err)
	}
	rep := RunFig9Live(fig9liveShort(), nil)
	step, ok := rep.StageStatByName("step_total")
	if !ok || step.TotalNs <= 0 {
		t.Fatal("live run measured no step time")
	}
	live := func(names ...string) float64 {
		var ns int64
		for _, n := range names {
			if s, ok := rep.StageStatByName(n); ok {
				ns += s.TotalNs
			}
		}
		return float64(ns) / float64(step.TotalNs)
	}
	// Hardware units ↔ live software stages. The LRU performs both charge
	// assignment and back interpolation; TMENW is the root-FPGA top-level
	// convolution, which the software times as top SPME.
	rows := []struct {
		unit   string
		model  float64
		live   float64
		stages string
	}{
		{"NB pipeline", model["NB pipeline"], live("short_range"), "short_range"},
		{"LRU", model["LRU"], live("charge_assign", "back_interp"), "charge_assign+back_interp"},
		{"GCU restrict", model["GCU restrict"], live("restrict"), "restrict"},
		{"GCU conv", model["GCU conv"], live("grid_conv"), "grid_conv"},
		{"GCU prolong", model["GCU prolong"], live("prolong"), "prolong"},
		{"TMENW", model["TMENW"], live("top_spme"), "top_spme"},
	}
	t.Logf("hardware model step %.1f us (512 nodes) vs live step %.1f us (GOMAXPROCS=%d, %d atoms)",
		stepUs, float64(step.MeanStepNs)/1e3, rep.GOMAXPROCS, rep.Atoms)
	t.Logf("%-14s %-26s %10s %10s %10s", "unit", "live stages", "model", "live", "delta")
	for _, r := range rows {
		t.Logf("%-14s %-26s %9.1f%% %9.1f%% %+9.1f%%",
			r.unit, r.stages, 100*r.model, 100*r.live, 100*(r.live-r.model))
	}
}

// loadFig9Model parses the cost-model chart: each bar row contributes
// occupied-columns/width as that unit's share of the step, plus the "step
// time: X us" footer.
func loadFig9Model(path string) (map[string]float64, float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	shares := map[string]float64{}
	var stepUs float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "step time: "); ok {
			v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
			if err != nil {
				return nil, 0, err
			}
			stepUs = v
			continue
		}
		open := strings.IndexByte(line, '|')
		close := strings.LastIndexByte(line, '|')
		if open < 0 || close <= open+1 {
			continue
		}
		bar := line[open+1 : close]
		filled := strings.Count(bar, "#")
		if filled == 0 {
			continue
		}
		label := strings.TrimSpace(line[:open])
		shares[label] = float64(filled) / float64(len(bar))
	}
	return shares, stepUs, sc.Err()
}
