package expt

import (
	"runtime"
	"testing"

	"tme4a/internal/ckpt"
)

// TestFig4Resume runs the kill/resume harness end to end — clean kill
// plus torn-final-checkpoint fallback — and repeats it under serial and
// parallel scheduling, since the resume contract is bitwise identity and
// the engine promises the same bits at any GOMAXPROCS.
func TestFig4Resume(t *testing.T) {
	cfg := QuickFig4Resume()
	if testing.Short() {
		cfg = TinyFig4Resume()
	}
	for _, procs := range []int{1, 4} {
		t.Run(name(procs), func(t *testing.T) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)

			// A MemFS keeps the many small checkpoint files off disk and
			// lets the torn-write crash revert to a true durable view.
			fs := ckpt.NewMemFS()
			res, err := RunFig4Resume(cfg, "clean", "torn", fs, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.ResumedFrom != int64(cfg.KillAt) {
				t.Errorf("clean resume from %d, want %d", res.ResumedFrom, cfg.KillAt)
			}
			if want := int64(cfg.KillAt - cfg.Every); res.TornResumeFrom != want {
				t.Errorf("torn resume from %d, want %d", res.TornResumeFrom, want)
			}
		})
	}
}

// TestFig4ResumeOnRealFS exercises the same harness against the real
// filesystem (the osFS path: O_TRUNC create, rename, directory fsync).
func TestFig4ResumeOnRealFS(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: MemFS variant covers the logic")
	}
	cfg := TinyFig4Resume()
	dir := t.TempDir()
	res, err := RunFig4Resume(cfg, dir+"/clean", dir+"/torn", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom != int64(cfg.KillAt) || res.TornResumeFrom != int64(cfg.KillAt-cfg.Every) {
		t.Errorf("resume points %d/%d, want %d/%d",
			res.ResumedFrom, res.TornResumeFrom, cfg.KillAt, cfg.KillAt-cfg.Every)
	}
}

func name(procs int) string {
	if procs == 1 {
		return "gomaxprocs-1"
	}
	return "gomaxprocs-4"
}
