package expt

import (
	"fmt"
	"io"
	"time"

	"tme4a/internal/ewald"
	"tme4a/internal/md"
	"tme4a/internal/spme"
	"tme4a/internal/tune"
	"tme4a/internal/vec"
)

// AutotuneConfig parameterizes the auto-tuner oracle experiment: measure
// the TRUE relative force error and step time of every candidate plan the
// tuner enumerates on a small water box, then check the tuner's pick per
// error budget against the brute-force best. This is the measuring side
// of internal/tune — it lives here, not there, because the tuner itself
// is a pure model with no clock (the tmevet noclock contract).
type AutotuneConfig struct {
	WaterSide  int       // waters per axis (8 → 512 molecules, 1536 atoms)
	RTol       float64   // erfc(α·rc) target shared with the tuner (1e-4)
	RefTol     float64   // reference Ewald error-factor tolerance
	Budgets    []float64 // error budgets to render a verdict for
	MaxGrid    int       // measure candidates up to this grid dim (0 = all)
	Steps      int       // timed steps per repetition
	Reps       int       // repetitions; minimum wins
	EquilSteps int
	Seed       int64
	CacheDir   string
	Dt         float64 // ps
}

// QuickAutotune returns the single-host oracle configuration: a 512-water
// box whose grid-8 spacing h = 0.3106 nm reproduces the Table-1 operating
// point exactly, with four budgets spanning the Table-1 error range.
func QuickAutotune() AutotuneConfig {
	return AutotuneConfig{
		WaterSide:  8,
		RTol:       1e-4,
		RefTol:     1e-12,
		Budgets:    []float64{2e-3, 1e-3, 5e-4, 2e-4},
		MaxGrid:    16,
		Steps:      3,
		Reps:       2,
		EquilSteps: 200,
		Seed:       7,
		CacheDir:   "results/cache",
		Dt:         0.001,
	}
}

// AutotuneRow is one measured candidate: the tuner's predictions next to
// ground truth.
type AutotuneRow struct {
	Plan    tune.Plan
	MeasErr float64 // relative force error vs the Ewald reference
	StepMs  float64 // measured ms per md step (min over reps)
}

// AutotuneVerdict is the oracle's judgement of the tuner at one budget.
type AutotuneVerdict struct {
	Budget     float64
	Pick       tune.Plan
	PickErr    float64 // measured error of the pick
	PickMs     float64 // measured step time of the pick
	Best       tune.Plan
	BestMs     float64 // true-best step time among budget-meeting candidates
	MeetBudget bool    // pick's measured error within the budget
	WithinFrac float64 // PickMs/BestMs − 1
}

// RunAutotune measures every enumerated candidate on the configured box
// and judges the tuner's pick at each budget. Rows and verdicts are
// logged to w as CSV as they are produced.
func RunAutotune(cfg AutotuneConfig, w io.Writer) ([]AutotuneRow, []AutotuneVerdict, error) {
	t1 := Table1Config{
		WaterSide: cfg.WaterSide, GridN: cfg.WaterSide, RTol: cfg.RTol,
		RefTol: cfg.RefTol, EquilSteps: cfg.EquilSteps, Seed: cfg.Seed,
		CacheDir: cfg.CacheDir,
	}
	logf(w, "# Autotune oracle: %d TIP3P waters\n", cfg.WaterSide*cfg.WaterSide*cfg.WaterSide)
	sys := buildWater(t1, w)
	logf(w, "# box %.4f nm, %d atoms\n", sys.Box.L[0], sys.N())
	_, fRef := referenceForces(t1, sys, w)
	start := sys.TakeSnapshot(nil)

	req := tune.Request{Box: sys.Box, Atoms: sys.N(), ErrBudget: cfg.Budgets[0]}
	cands, err := tune.Enumerate(req)
	if err != nil {
		return nil, nil, fmt.Errorf("autotune: enumerate: %w", err)
	}
	var measured []tune.Plan
	skipped := 0
	for _, c := range cands {
		if cfg.MaxGrid > 0 && c.Grid[0] > cfg.MaxGrid {
			skipped++
			continue
		}
		measured = append(measured, c.Plan)
	}
	if skipped > 0 {
		logf(w, "# skipping %d candidates with grid > %d (strictly more mesh work than their measured grid-%d twins)\n",
			skipped, cfg.MaxGrid, cfg.MaxGrid)
	}

	// The short-range term is shared by every candidate at the same
	// cutoff: compute it once per distinct rc, in candidate order.
	var srRc []float64
	var srF [][]vec.V
	shortRange := func(rc float64) []vec.V {
		for i, r := range srRc {
			if r == rc {
				return srF[i]
			}
		}
		f := make([]vec.V, sys.N())
		ewald.RealSpace(sys.Box, sys.Pos, sys.Q, spme.AlphaFromRTol(rc, cfg.RTol), rc, nil, f)
		srRc = append(srRc, rc)
		srF = append(srF, f)
		return f
	}

	logf(w, "method,kernel,rc,grid,gc,M,skin,pred_err,meas_err,pred_ms,step_ms\n")
	var rows []AutotuneRow
	for _, p := range measured {
		row, err := measurePlan(cfg, sys, start, p, shortRange(p.Rc), fRef)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
		logf(w, "%s,%s,%.3g,%d,%d,%d,%.3g,%.3e,%.3e,%.3f,%.3f\n",
			p.Method, p.Kernel, p.Rc, p.Grid[0], p.Gc, p.M, p.Skin,
			p.PredErr, row.MeasErr, p.PredMs, row.StepMs)
	}

	logf(w, "budget,pick,pick_err,pick_ms,best,best_ms,meets_budget,within_frac\n")
	var verdicts []AutotuneVerdict
	for _, budget := range cfg.Budgets {
		r := req
		r.ErrBudget = budget
		pick, err := tune.PlanFor(r)
		if err != nil {
			return nil, nil, fmt.Errorf("autotune: budget %g: %w", budget, err)
		}
		pickRow, err := findOrMeasure(cfg, sys, start, pick, &rows, shortRange, fRef, w)
		if err != nil {
			return nil, nil, err
		}
		v := AutotuneVerdict{
			Budget:  budget,
			Pick:    pick,
			PickErr: pickRow.MeasErr,
			PickMs:  pickRow.StepMs,
		}
		v.MeetBudget = v.PickErr <= budget
		// Brute force: the fastest measured candidate whose TRUE error
		// meets the budget.
		first := true
		for _, row := range rows {
			if row.MeasErr > budget {
				continue
			}
			if first || row.StepMs < v.BestMs {
				v.Best, v.BestMs, first = row.Plan, row.StepMs, false
			}
		}
		if first {
			v.Best, v.BestMs = pickRow.Plan, pickRow.StepMs
		}
		v.WithinFrac = pickRow.StepMs/v.BestMs - 1
		verdicts = append(verdicts, v)
		logf(w, "%.3g,%s,%.3e,%.3f,%s,%.3f,%v,%.3f\n",
			budget, quote(v.Pick.String()), v.PickErr, v.PickMs,
			quote(v.Best.String()), v.BestMs, v.MeetBudget, v.WithinFrac)
	}
	return rows, verdicts, nil
}

func quote(s string) string { return `"` + s + `"` }

// findOrMeasure returns the measured row for a plan, measuring it on the
// spot if the enumeration cap excluded it.
func findOrMeasure(cfg AutotuneConfig, sys *md.System, start *md.Snapshot, p tune.Plan,
	rows *[]AutotuneRow, shortRange func(float64) []vec.V, fRef []vec.V, w io.Writer) (AutotuneRow, error) {
	for _, r := range *rows {
		if r.Plan.String() == p.String() {
			return r, nil
		}
	}
	logf(w, "# pick %s was outside the measured set; measuring it now\n", p.String())
	row, err := measurePlan(cfg, sys, start, p, shortRange(p.Rc), fRef)
	if err == nil {
		*rows = append(*rows, row)
	}
	return row, err
}

// measurePlan computes a candidate's true relative force error (one
// long-range solve against the Ewald reference) and its md step time
// (min over reps of a few steps, after a warmup step that absorbs the
// bootstrap force evaluation and first neighbor-list build).
func measurePlan(cfg AutotuneConfig, sys *md.System, start *md.Snapshot, p tune.Plan,
	fSR []vec.V, fRef []vec.V) (AutotuneRow, error) {
	mesh, err := p.NewSolver(sys.Box)
	if err != nil {
		return AutotuneRow{}, fmt.Errorf("autotune: %s: %w", p.String(), err)
	}
	f := cloneForces(fSR)
	mesh.LongRange(sys.Pos, sys.Q, f)
	row := AutotuneRow{Plan: p, MeasErr: relForceError(f, fRef)}

	best := 0.0
	for rep := 0; rep < cfg.Reps; rep++ {
		if err := sys.Restore(start); err != nil {
			return AutotuneRow{}, fmt.Errorf("autotune: restore: %w", err)
		}
		integ, err := p.NewIntegrator(sys.Box, cfg.Dt)
		if err != nil {
			return AutotuneRow{}, fmt.Errorf("autotune: %s: %w", p.String(), err)
		}
		integ.Step(sys) // warmup: bootstrap Compute + first list build
		t0 := time.Now()
		for s := 0; s < cfg.Steps; s++ {
			integ.Step(sys)
		}
		ms := time.Since(t0).Seconds() * 1e3 / float64(cfg.Steps)
		if rep == 0 || ms < best {
			best = ms
		}
	}
	row.StepMs = best
	if err := sys.Restore(start); err != nil {
		return AutotuneRow{}, fmt.Errorf("autotune: restore: %w", err)
	}
	return row, nil
}
