// Package expt implements the paper's experiments — one runner per table
// and figure — shared by the cmd/tmebench harness and the repository-level
// benchmarks. Each runner writes the same rows/series the paper reports
// and returns them for programmatic checks; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package expt

import (
	"fmt"
	"io"

	"tme4a/internal/core"
)

// Fig3Point is one sample of the Gaussian-approximation study.
type Fig3Point struct {
	X      float64 // αr/2^{l−1}
	Exact  float64 // g_{α,l}(r)/g_{α,l}(0)
	Approx map[int]float64
	Err    map[int]float64
}

// RunFig3 evaluates Fig. 3(a) and (b): the normalized middle-range shell
// g_{α,l}(r)/g_{α,l}(0) against its M-term Gaussian-sum approximations and
// their absolute errors, for M = 1..maxM, over x = αr/2^{l−1} ∈ [0, xMax].
// Both panels are invariant in α and l (Eq. (5)); α is set to 1 and l to 1.
func RunFig3(maxM, samples int, xMax float64, w io.Writer) []Fig3Point {
	const alpha = 1.0
	g0 := core.ShellExact(alpha, 1, 0)
	pts := make([]Fig3Point, 0, samples+1)
	if w != nil {
		fmt.Fprintf(w, "# Fig 3: x = alpha*r/2^(l-1); exact = g/g(0); approx/err per M\n")
		fmt.Fprintf(w, "x,exact")
		for m := 1; m <= maxM; m++ {
			fmt.Fprintf(w, ",approx_M%d,err_M%d", m, m)
		}
		fmt.Fprintln(w)
	}
	for i := 0; i <= samples; i++ {
		x := xMax * float64(i) / float64(samples)
		r := x / alpha
		p := Fig3Point{
			X:      x,
			Exact:  core.ShellExact(alpha, 1, r) / g0,
			Approx: map[int]float64{},
			Err:    map[int]float64{},
		}
		for m := 1; m <= maxM; m++ {
			a := core.ShellApprox(alpha, 1, m, r) / g0
			p.Approx[m] = a
			p.Err[m] = abs(a - p.Exact)
		}
		pts = append(pts, p)
		if w != nil {
			fmt.Fprintf(w, "%.4f,%.8e", p.X, p.Exact)
			for m := 1; m <= maxM; m++ {
				fmt.Fprintf(w, ",%.8e,%.3e", p.Approx[m], p.Err[m])
			}
			fmt.Fprintln(w)
		}
	}
	return pts
}

// MaxErr returns the maximum approximation error over the series for a
// given M (the quantity plotted in Fig. 3(b)).
func MaxErr(pts []Fig3Point, m int) float64 {
	var e float64
	for _, p := range pts {
		if p.Err[m] > e {
			e = p.Err[m]
		}
	}
	return e
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
