package expt

import (
	"io"
	"math/rand"
	"runtime"

	"tme4a/internal/core"
	"tme4a/internal/md"
	"tme4a/internal/obs"
	"tme4a/internal/spme"
	"tme4a/internal/water"
)

// Fig9LiveConfig parameterizes the live (measured) counterpart of Fig 9:
// instead of replaying the hardware cost model, it runs the software TME
// pipeline with the internal/obs stage recorder attached and charts where
// the step time actually goes — charge assignment, restriction, separable
// convolutions, top-level SPME (with the FFTs nested inside), prolongation,
// back interpolation, short-range, constraints and integration.
type Fig9LiveConfig struct {
	WaterSide  int     // waters per box edge
	GridN      int     // finest TME grid (GridN³)
	Levels     int     // TME levels L
	M          int     // Gaussians per shell
	Gc         int     // grid-kernel cutoff
	Rc         float64 // short-range cutoff (nm)
	Skin       float64 // Verlet buffer (nm)
	RTol       float64 // erfc(α·rc) tolerance
	Dt         float64 // ps
	Seed       int64
	EquilSteps int // thermostatted pre-equilibration steps
	Warmup     int // instrumented-but-discarded steps (fills pools and lists)
	Steps      int // measured steps
}

// QuickFig9Live returns a ~1.5k-atom configuration at the paper's operating
// point (p = 6, L = 1, g_c = 8) that runs in seconds on one core.
func QuickFig9Live() Fig9LiveConfig {
	return Fig9LiveConfig{
		WaterSide:  8, // 512 waters, 1,536 atoms
		GridN:      16,
		Levels:     1,
		M:          3,
		Gc:         8,
		Rc:         0.9,
		Skin:       0.1,
		RTol:       1e-4,
		Dt:         0.001,
		Seed:       17,
		EquilSteps: 50,
		Warmup:     10,
		Steps:      100,
	}
}

// FullFig9Live scales the measured run up (4,096 waters, 32³ grid).
func FullFig9Live() Fig9LiveConfig {
	c := QuickFig9Live()
	c.WaterSide = 16
	c.GridN = 32
	c.Steps = 200
	return c
}

// RunFig9Live builds a water box, attaches a stage recorder to the TME MD
// step, discards cfg.Warmup steps (so pool fills and list builds are not
// charged to the steady state), measures cfg.Steps steps, renders the
// Fig 9-style chart to w and returns the machine-readable report.
func RunFig9Live(cfg Fig9LiveConfig, w io.Writer) obs.Report {
	nmol := cfg.WaterSide * cfg.WaterSide * cfg.WaterSide
	box := water.CubicBoxFor(nmol)
	sys := water.Build(cfg.WaterSide, cfg.WaterSide, cfg.WaterSide, box, cfg.Seed)
	water.Equilibrate(sys, cfg.EquilSteps, cfg.Dt, 300, min(0.9, cfg.Rc), cfg.Seed+1)
	sys.InitVelocities(300, rand.New(rand.NewSource(cfg.Seed+2)))

	alpha := spme.AlphaFromRTol(cfg.Rc, cfg.RTol)
	n := [3]int{cfg.GridN, cfg.GridN, cfg.GridN}
	mesh := core.New(core.Params{
		Alpha: alpha, Rc: cfg.Rc, Order: 6, N: n,
		Levels: cfg.Levels, M: cfg.M, Gc: cfg.Gc,
	}, box)
	integ := &md.Integrator{
		FF: &md.ForceField{Alpha: alpha, Rc: cfg.Rc, Skin: cfg.Skin, Mesh: mesh},
		Dt: cfg.Dt,
	}

	rec := obs.New()
	integ.SetObs(rec)
	for step := 0; step < cfg.Warmup; step++ {
		integ.Step(sys)
	}
	rec.Reset()
	for step := 0; step < cfg.Steps; step++ {
		integ.Step(sys)
	}

	rep := rec.Report("fig9live", sys.N(), runtime.GOMAXPROCS(0))
	if w != nil {
		rep.Render(w, 60)
	}
	return rep
}
