package expt

import (
	"bytes"
	"testing"
)

// TestAutotuneOracle is the brute-force oracle for the auto-tuner: it
// measures the TRUE relative force error and step time of every candidate
// plan on the 512-water box (whose grid-8 spacing reproduces the Table-1
// operating point h = 0.3106 nm exactly), then checks, at four budgets
// spanning the Table-1 error range, that the tuner's pick
//
//   - never violates the error budget (measured, not predicted, error),
//   - lands within 15% of the true-best step time among all candidates
//     that actually meet the budget.
//
// The Ewald reference forces come from the committed cache, so the test
// costs the equilibration plus one long-range solve and a few timed steps
// per candidate. Skipped in -short mode; runs in full tier-1.
func TestAutotuneOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("autotune oracle measures every candidate plan (~1 min)")
	}
	cfg := QuickAutotune()
	cfg.CacheDir = "../../results/cache"

	var log bytes.Buffer
	rows, verdicts, err := RunAutotune(cfg, &log)
	if err != nil {
		t.Fatalf("RunAutotune: %v", err)
	}
	if len(rows) < 20 {
		t.Errorf("only %d candidates measured; the enumeration should produce dozens", len(rows))
	}
	if len(verdicts) != len(cfg.Budgets) {
		t.Fatalf("%d verdicts for %d budgets", len(verdicts), len(cfg.Budgets))
	}

	const slack = 0.15
	for _, v := range verdicts {
		if !v.MeetBudget {
			t.Errorf("budget %.3g: pick %s has measured error %.3e over budget",
				v.Budget, v.Pick.String(), v.PickErr)
		}
		if v.WithinFrac > slack {
			t.Errorf("budget %.3g: pick %s takes %.3f ms, %.0f%% over true best %s (%.3f ms)",
				v.Budget, v.Pick.String(), v.PickMs, 100*v.WithinFrac, v.Best.String(), v.BestMs)
		}
	}
	if t.Failed() {
		t.Logf("oracle log:\n%s", log.String())
	}
}
