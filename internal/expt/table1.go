package expt

import (
	"fmt"
	"io"
	"math"
	"time"

	"tme4a/internal/core"
	"tme4a/internal/ewald"
	"tme4a/internal/md"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

// Table1Config parameterizes the Table 1 reproduction. The quick
// configuration shrinks the water box while preserving every dimensionless
// parameter of the paper (α·r_c from ewald-rtol = 1e-4, grid spacing
// h ≈ 0.311 nm via N ∝ box, p = 6, the g_c and M sweeps, L = 1).
type Table1Config struct {
	WaterSide  int     // waters per axis (lattice side); paper: 32
	GridN      int     // finest grid per axis; paper: 32
	RTol       float64 // erfc(α·rc) target (1e-4)
	RefTol     float64 // reference Ewald error-factor tolerance
	Rcs        []float64
	Gcs        []int
	Ms         []int
	EquilSteps int
	Seed       int64
	CacheDir   string
}

// QuickTable1 returns the single-host configuration: 4,096 waters
// (12,288 atoms) with a 16³ grid, h = 0.311 nm as in the paper.
func QuickTable1() Table1Config {
	return Table1Config{
		WaterSide:  16,
		GridN:      16,
		RTol:       1e-4,
		RefTol:     1e-12,
		Rcs:        []float64{1.0, 1.25, 1.5},
		Gcs:        []int{4, 8, 12},
		Ms:         []int{1, 2, 3, 4},
		EquilSteps: 300,
		Seed:       7,
		CacheDir:   "results/cache",
	}
}

// FullTable1 returns the paper-scale configuration: 32,768 waters
// (98,304 atoms; the paper used 32,773) on the 32³ grid. The reference
// Ewald summation takes tens of minutes on one core; results are cached.
func FullTable1() Table1Config {
	c := QuickTable1()
	c.WaterSide = 32
	c.GridN = 32
	c.RefTol = 1e-10
	c.EquilSteps = 150
	return c
}

// Table1Row is one measured entry of Table 1.
type Table1Row struct {
	Method string // "SPME" or "TME"
	Rc     float64
	Gc, M  int
	Err    float64 // relative force error vs the Ewald reference
}

// RunTable1 builds the water system, computes the double-precision Ewald
// reference forces (cached), and measures the relative force error of
// SPME and of TME over the g_c × M sweep for each cutoff. Rows are written
// to w as they are produced.
func RunTable1(cfg Table1Config, w io.Writer) []Table1Row {
	logf(w, "# Table 1: %d TIP3P waters, grid %d^3\n",
		cfg.WaterSide*cfg.WaterSide*cfg.WaterSide, cfg.GridN)
	sys := buildWater(cfg, w)
	n := [3]int{cfg.GridN, cfg.GridN, cfg.GridN}
	logf(w, "# box %.4f nm, h %.4f nm, %d atoms\n",
		sys.Box.L[0], sys.Box.L[0]/float64(cfg.GridN), sys.N())

	eRef, fRef := referenceForces(cfg, sys, w)
	_ = eRef

	var rows []Table1Row
	logf(w, "method,rc,gc,M,relative_force_error\n")
	for _, rc := range cfg.Rcs {
		if rc >= sys.Box.L[0]/2 {
			logf(w, "# skipping rc=%.2f (exceeds half box)\n", rc)
			continue
		}
		alpha := spme.AlphaFromRTol(rc, cfg.RTol)
		// The short-range forces are identical for SPME and every TME
		// configuration at this cutoff: compute once.
		fSR := make([]vec.V, sys.N())
		ewald.RealSpace(sys.Box, sys.Pos, sys.Q, alpha, rc, nil, fSR)

		// SPME row.
		sp := spme.New(spme.Params{Alpha: alpha, Rc: rc, Order: 6, N: n}, sys.Box)
		f := cloneForces(fSR)
		sp.Recip(sys.Pos, sys.Q, f)
		row := Table1Row{Method: "SPME", Rc: rc, Err: relForceError(f, fRef)}
		rows = append(rows, row)
		logf(w, "SPME,%.2f,,,%.3e\n", rc, row.Err)

		// TME sweep.
		for _, gc := range cfg.Gcs {
			for _, m := range cfg.Ms {
				tme := core.New(core.Params{
					Alpha: alpha, Rc: rc, Order: 6, N: n,
					Levels: 1, M: m, Gc: gc,
				}, sys.Box)
				f := cloneForces(fSR)
				tme.LongRange(sys.Pos, sys.Q, f)
				row := Table1Row{Method: "TME", Rc: rc, Gc: gc, M: m, Err: relForceError(f, fRef)}
				rows = append(rows, row)
				logf(w, "TME,%.2f,%d,%d,%.3e\n", rc, gc, m, row.Err)
			}
		}
	}
	return rows
}

// buildWater constructs and lightly equilibrates the water box.
func buildWater(cfg Table1Config, w io.Writer) *md.System {
	nmol := cfg.WaterSide * cfg.WaterSide * cfg.WaterSide
	box := water.CubicBoxFor(nmol)
	sys := water.Build(cfg.WaterSide, cfg.WaterSide, cfg.WaterSide, box, cfg.Seed)
	if cfg.EquilSteps > 0 {
		start := time.Now()
		rcEq := math.Min(0.9, box.L[0]/2*0.95)
		water.Equilibrate(sys, cfg.EquilSteps, 0.001, 300, rcEq, cfg.Seed+1)
		logf(w, "# equilibrated %d steps in %.1fs (T=%.0f K)\n",
			cfg.EquilSteps, time.Since(start).Seconds(), sys.Temperature())
	}
	return sys
}

// referenceForces returns the double-precision Ewald reference, using the
// on-disk cache when available.
//
// Note the exclusion convention: Table 1 is a pure electrostatics
// benchmark — "the Coulomb forces for 32,773 TIP3P water molecules" — so
// the full Coulomb interaction among ALL point charges is evaluated, with
// no intramolecular exclusions (this is what the paper's standalone C++
// Ewald/SPME/TME programs compute, and it is what makes the published
// error magnitudes reproducible: the intramolecular terms dominate the
// Σ|F_ref|² denominator).
func referenceForces(cfg Table1Config, sys *md.System, w io.Writer) (float64, []vec.V) {
	key := fmt.Sprintf("table1-ref-noexcl-n%d-g%d-s%d-e%d-t%g",
		cfg.WaterSide, cfg.GridN, cfg.Seed, cfg.EquilSteps, cfg.RefTol)
	if c, ok := loadCache(cfg.CacheDir, key, sys.Pos); ok {
		logf(w, "# reference forces loaded from cache\n")
		return c.Energy, c.Forces
	}
	start := time.Now()
	e, f := ewald.Reference(sys.Box, sys.Pos, sys.Q, nil, cfg.RefTol)
	logf(w, "# reference Ewald computed in %.1fs (E=%.3f kJ/mol)\n",
		time.Since(start).Seconds(), e)
	if err := storeCache(cfg.CacheDir, key, &cachedForces{Pos: sys.Pos, Energy: e, Forces: f}); err != nil {
		logf(w, "# cache write failed: %v\n", err)
	}
	return e, f
}

func cloneForces(f []vec.V) []vec.V {
	out := make([]vec.V, len(f))
	copy(out, f)
	return out
}

func relForceError(f, ref []vec.V) float64 {
	var num, den float64
	for i := range f {
		num += f[i].Sub(ref[i]).Norm2()
		den += ref[i].Norm2()
	}
	return math.Sqrt(num / den)
}

func logf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
