package quad

import (
	"math"
	"testing"
)

// shellN is the normalized middle-range shell Ĝ(x) = [erf(x) − erf(x/2)]/x.
func shellN(x float64) float64 {
	if x == 0 {
		return 1 / math.SqrtPi
	}
	return (math.Erf(x) - math.Erf(x/2)) / x
}

// forceNorm evaluates the force-weighted L² error ∫ (d/dx Δ)²·x² dx of a
// Gaussian-sum approximation Σ c_v·exp(−(τ_v·x)²) of the shell, by central
// differences on a fine grid.
func forceNorm(tau, c []float64) float64 {
	eval := func(x float64) float64 {
		var s float64
		for v := range tau {
			t := tau[v] * x
			s += c[v] * math.Exp(-t*t)
		}
		return s
	}
	const dx, h = 1e-3, 1e-4
	var l2 float64
	for x := dx; x <= 8.0; x += dx {
		d := ((eval(x+h) - shellN(x+h)) - (eval(x) - shellN(x))) / h
		l2 += d * d * x * x * dx
	}
	return math.Sqrt(l2)
}

// glShell maps the Gauss–Legendre rule onto the shell the way core.New
// does: τ_v = (3 − x_v)/4, c_v = w_v/(2√π).
func glShell(m int) (tau, c []float64) {
	nodes, weights := GaussLegendre(m)
	tau = make([]float64, m)
	c = make([]float64, m)
	for v := 0; v < m; v++ {
		tau[v] = (3 - nodes[v]) / 4
		c[v] = weights[v] / (2 * math.SqrtPi)
	}
	return tau, c
}

// TestUSeriesBeatsGaussLegendreForceNorm pins the design claim of the
// u-series family: in the force-weighted norm the fit minimizes, it is
// strictly more accurate than the M-point Gauss–Legendre rule for every
// M ≤ 3 (at M = 4 both are far below the grid-error floor of any real
// solve; see the shootout experiment).
func TestUSeriesBeatsGaussLegendreForceNorm(t *testing.T) {
	for m := 1; m <= 3; m++ {
		ut, uc := USeries(m)
		gt, gc := glShell(m)
		u, g := forceNorm(ut, uc), forceNorm(gt, gc)
		t.Logf("M=%d: useries %.3e vs GL %.3e (%.2fx)", m, u, g, u/g)
		if u >= g {
			t.Errorf("M=%d: u-series force norm %g not below Gauss-Legendre %g", m, u, g)
		}
	}
}

// TestUSeriesNodesInOctave: every width stays inside the shell's bounded
// support octave [1/2, 1], so g_c truncation of the grid kernels behaves no
// worse than for the Gauss–Legendre family.
func TestUSeriesNodesInOctave(t *testing.T) {
	for m := 1; m <= USeriesMaxM; m++ {
		tau, c := USeries(m)
		if len(tau) != m || len(c) != m {
			t.Fatalf("M=%d: got %d nodes, %d weights", m, len(tau), len(c))
		}
		for v, tv := range tau {
			if tv < 0.5 || tv > 1.0 {
				t.Errorf("M=%d: node %d = %g outside [1/2, 1]", m, v, tv)
			}
			if v > 0 {
				ratio := tau[v] / tau[v-1]
				want := useriesRatio[m]
				if math.Abs(ratio-want) > 1e-12 {
					t.Errorf("M=%d: node ratio %g, want geometric %g", m, ratio, want)
				}
			}
			if c[v] <= 0 {
				t.Errorf("M=%d: weight %d = %g not positive", m, v, c[v])
			}
		}
	}
}

// TestUSeriesDeterministic: repeated construction is bitwise identical —
// the weights feed kernel tables whose bits the determinism contracts pin.
func TestUSeriesDeterministic(t *testing.T) {
	for m := 1; m <= USeriesMaxM; m++ {
		t1, c1 := USeries(m)
		t2, c2 := USeries(m)
		for v := 0; v < m; v++ {
			if t1[v] != t2[v] || c1[v] != c2[v] {
				t.Fatalf("M=%d: non-reproducible nodes/weights", m)
			}
		}
	}
}

func TestUSeriesRange(t *testing.T) {
	for _, m := range []int{0, USeriesMaxM + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("USeries(%d): expected panic", m)
				}
			}()
			USeries(m)
		}()
	}
}
