package quad

import (
	"math"
	"testing"
)

func TestGaussLegendreKnownValues(t *testing.T) {
	// 2-point rule: nodes ±1/√3, weights 1.
	n, w := GaussLegendre(2)
	if math.Abs(n[1]-1/math.Sqrt(3)) > 1e-14 || math.Abs(n[0]+1/math.Sqrt(3)) > 1e-14 {
		t.Errorf("2-point nodes wrong: %v", n)
	}
	if math.Abs(w[0]-1) > 1e-14 || math.Abs(w[1]-1) > 1e-14 {
		t.Errorf("2-point weights wrong: %v", w)
	}
	// 3-point rule: nodes 0, ±√(3/5); weights 8/9, 5/9.
	n, w = GaussLegendre(3)
	if math.Abs(n[1]) > 1e-14 || math.Abs(n[2]-math.Sqrt(0.6)) > 1e-14 {
		t.Errorf("3-point nodes wrong: %v", n)
	}
	if math.Abs(w[1]-8.0/9.0) > 1e-14 || math.Abs(w[0]-5.0/9.0) > 1e-14 {
		t.Errorf("3-point weights wrong: %v", w)
	}
}

func TestGaussLegendreWeightSum(t *testing.T) {
	for m := 1; m <= 20; m++ {
		_, w := GaussLegendre(m)
		var s float64
		for _, wi := range w {
			s += wi
		}
		if math.Abs(s-2) > 1e-13 {
			t.Errorf("M=%d: weights sum to %.16f, want 2", m, s)
		}
	}
}

func TestGaussLegendreSymmetry(t *testing.T) {
	for m := 1; m <= 12; m++ {
		n, w := GaussLegendre(m)
		for i := range n {
			j := m - 1 - i
			if math.Abs(n[i]+n[j]) > 1e-14 {
				t.Errorf("M=%d: nodes %d/%d not symmetric: %g %g", m, i, j, n[i], n[j])
			}
			if math.Abs(w[i]-w[j]) > 1e-14 {
				t.Errorf("M=%d: weights %d/%d not symmetric: %g %g", m, i, j, w[i], w[j])
			}
		}
	}
}

// TestGaussLegendrePolynomialExactness checks that the M-point rule
// integrates monomials up to degree 2M−1 exactly.
func TestGaussLegendrePolynomialExactness(t *testing.T) {
	for m := 1; m <= 10; m++ {
		n, w := GaussLegendre(m)
		for deg := 0; deg <= 2*m-1; deg++ {
			var got float64
			for i := range n {
				got += w[i] * math.Pow(n[i], float64(deg))
			}
			var want float64
			if deg%2 == 0 {
				want = 2 / float64(deg+1)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("M=%d deg=%d: got %.15f want %.15f", m, deg, got, want)
			}
		}
	}
}

// TestGaussLegendreGaussianIntegral checks convergence on the TME integrand
// class: the rule must approximate ∫_{-1}^{1} e^{-((3-u)/4·x)²} du rapidly
// in M (paper Fig. 3(b) behaviour).
func TestGaussLegendreGaussianIntegral(t *testing.T) {
	f := func(u float64) float64 {
		a := (3 - u) / 4 * 2.0 // x = 2
		return math.Exp(-a * a)
	}
	// High-resolution reference via 200-point rule.
	nRef, wRef := GaussLegendre(200)
	var ref float64
	for i := range nRef {
		ref += wRef[i] * f(nRef[i])
	}
	prevErr := math.Inf(1)
	for m := 1; m <= 6; m++ {
		n, w := GaussLegendre(m)
		var got float64
		for i := range n {
			got += w[i] * f(n[i])
		}
		err := math.Abs(got - ref)
		if err > prevErr*1.5 {
			t.Errorf("M=%d: error %g did not decrease (prev %g)", m, err, prevErr)
		}
		prevErr = err
	}
	if prevErr > 1e-8 {
		t.Errorf("M=6 error too large: %g", prevErr)
	}
}
