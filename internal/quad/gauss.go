// Package quad provides Gauss–Legendre quadrature rules.
//
// The TME method (paper Eq. (6)–(7)) approximates the middle-range Ewald
// shells by an M-point Gauss–Legendre discretisation of an integral of
// Gaussians; this package supplies the nodes and weights on [−1, 1].
package quad

import "math"

// GaussLegendre returns the n nodes and weights of the Gauss–Legendre
// quadrature rule on [−1, 1], ordered by increasing node. The rule
// integrates polynomials up to degree 2n−1 exactly.
//
// Nodes are found by Newton iteration on the Legendre polynomial Pₙ starting
// from the Chebyshev-based asymptotic guess; this converges to full double
// precision for all practical n.
func GaussLegendre(n int) (nodes, weights []float64) {
	if n < 1 {
		panic("quad: GaussLegendre needs n >= 1")
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		// Initial guess: Chebyshev-like approximation of the i-th root.
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var dp float64
		for iter := 0; iter < 100; iter++ {
			p, d := legendre(n, x)
			dp = d
			dx := p / d
			x -= dx
			if math.Abs(dx) < 1e-16 {
				break
			}
		}
		// Refresh derivative at the converged root for the weight.
		_, dp = legendre(n, x)
		w := 2 / ((1 - x*x) * dp * dp)
		nodes[i] = -x
		nodes[n-1-i] = x
		weights[i] = w
		weights[n-1-i] = w
	}
	if n%2 == 1 {
		// The middle node of an odd rule is exactly zero.
		nodes[n/2] = 0
		_, dp := legendre(n, 0)
		weights[n/2] = 2 / (dp * dp)
	}
	return nodes, weights
}

// legendre evaluates the Legendre polynomial Pₙ and its derivative at x
// using the three-term recurrence.
func legendre(n int, x float64) (p, dp float64) {
	p0, p1 := 1.0, x
	if n == 0 {
		return 1, 0
	}
	for k := 2; k <= n; k++ {
		p0, p1 = p1, ((2*float64(k)-1)*x*p1-(float64(k)-1)*p0)/float64(k)
	}
	// dPₙ/dx = n (x Pₙ − Pₙ₋₁) / (x² − 1)
	dp = float64(n) * (x*p1 - p0) / (x*x - 1)
	return p1, dp
}
