package quad

import (
	"fmt"
	"math"
)

// USeriesMaxM is the largest Gaussian count with a tabulated geometric
// ratio; USeries panics beyond it (core.Params.Validate reports the error
// before construction reaches this point).
const USeriesMaxM = 4

// useriesCenter and useriesRatio tabulate, per Gaussian count m, the
// center width τ_c and geometric ratio b of the u-series node layout
// τ_v = τ_c·b^{v−(m−1)/2}. The ratios were fitted offline by minimizing
// the force-norm objective of uSeriesWeights over (τ_c, b); the center
// settles on the geometric midpoint 1/√2 of the shell's width octave
// [1/2, 1] for every m ≥ 2.
var useriesCenter = [USeriesMaxM + 1]float64{1: 0.72, 2: 1 / math.Sqrt2, 3: 1 / math.Sqrt2, 4: 1 / math.Sqrt2}
var useriesRatio = [USeriesMaxM + 1]float64{1: 1, 2: 1.476, 3: 1.302, 4: 1.208}

// USeries returns the m-term u-series decomposition of the normalized
// middle-range Ewald shell
//
//	Ĝ(x) = [erf(x) − erf(x/2)]/x  ≈  Σ_v c_v·exp(−(τ_v·x)²),
//
// with x = α·r, so that g_{α,1}(r) ≈ α·Σ_v c_v·exp(−(τ_v·α·r)²). Following
// Predescu et al. (the u-series), the Gaussian widths form a geometric
// progression — the property that lets one kernel table serve every level
// of a multilevel mesh by self-similarity — and all widths stay inside the
// shell's bounded support octave [α/2, α], so grid-kernel truncation at g_c
// behaves no worse than for the Gauss–Legendre family. Unlike Eq. (7)'s
// Gauss–Legendre rule, which fixes weights by integration exactness, the
// u-series weights solve a small constrained least-squares system that
// minimizes the force-error functional ∫ (d/dx residual)²·x² dx — the
// quantity the Table-1 metric actually measures — which is why the family
// achieves a lower force RMS error per term (M ≤ 3) than Gauss–Legendre.
//
// Nodes and weights are dimensionless and α-independent; both slices are
// freshly allocated (constructor-time cost only, never on a hot path).
func USeries(m int) (tau, c []float64) {
	if m < 1 || m > USeriesMaxM {
		panic(fmt.Sprintf("quad: u-series ratios are tabulated for 1 <= m <= %d, got %d", USeriesMaxM, m))
	}
	tau = make([]float64, m)
	for v := 0; v < m; v++ {
		e := float64(v) - float64(m-1)/2
		tau[v] = useriesCenter[m] * math.Pow(useriesRatio[m], e)
	}
	return tau, uSeriesWeights(tau)
}

// uSeriesWeights solves the normal equations of the force-weighted fit
//
//	min_c Σ_x x²·Δx·[Σ_v c_v·φ′_v(x) − Ĝ′(x)]²,  φ_v(x) = exp(−(τ_v·x)²),
//
// on the fixed grid x ∈ (0, 8.25] with Δx = 0.005 (≈ 3 decay lengths of
// the widest Gaussian; the integrand is numerically zero beyond). The grid,
// the summation order and the elimination pivoting are all deterministic,
// so the weights are bitwise reproducible across runs and platforms.
func uSeriesWeights(tau []float64) []float64 {
	m := len(tau)
	G := make([][]float64, m)
	for u := range G {
		G[u] = make([]float64, m)
	}
	rhs := make([]float64, m)
	phiP := make([]float64, m)
	const (
		dx   = 0.005
		xmax = 8.25
	)
	steps := int(math.Round(xmax / dx))
	for i := 1; i <= steps; i++ {
		x := float64(i) * dx
		w := x * x * dx
		// Ĝ′(x), analytically.
		gp := 2/math.SqrtPi*(math.Exp(-x*x)-0.5*math.Exp(-x*x/4))/x -
			(math.Erf(x)-math.Erf(x/2))/(x*x)
		for v := 0; v < m; v++ {
			tv := tau[v]
			phiP[v] = -2 * tv * tv * x * math.Exp(-tv*tv*x*x)
		}
		for u := 0; u < m; u++ {
			rhs[u] += w * phiP[u] * gp
			for v := 0; v < m; v++ {
				G[u][v] += w * phiP[u] * phiP[v]
			}
		}
	}
	return solveDense(G, rhs)
}

// solveDense solves the small (m ≤ USeriesMaxM) linear system A·x = b by
// Gaussian elimination with partial pivoting, in place.
func solveDense(A [][]float64, b []float64) []float64 {
	n := len(b)
	for i := 0; i < n; i++ {
		p := i
		for k := i + 1; k < n; k++ {
			if math.Abs(A[k][i]) > math.Abs(A[p][i]) {
				p = k
			}
		}
		A[i], A[p] = A[p], A[i]
		b[i], b[p] = b[p], b[i]
		for k := i + 1; k < n; k++ {
			f := A[k][i] / A[i][i]
			for j := i; j < n; j++ {
				A[k][j] -= f * A[i][j]
			}
			b[k] -= f * b[i]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= A[i][j] * x[j]
		}
		x[i] = s / A[i][i]
	}
	return x
}
