package obs

import "testing"

// TestProfileSnapshotAndDelta drives a scripted clock through two windows
// and checks that Profile/Delta report exactly the recorded work.
func TestProfileSnapshotAndDelta(t *testing.T) {
	now := int64(0)
	r := NewWithClock(func() int64 { return now })

	sp := r.Start(StageShortRange)
	now += 100
	sp.Stop()
	first := r.Profile()
	if got := first.StageNs(StageShortRange); got != 100 {
		t.Fatalf("first window short-range ns = %d, want 100", got)
	}
	if got := first.Count[StageShortRange]; got != 1 {
		t.Fatalf("first window short-range count = %d, want 1", got)
	}

	sp = r.Start(StageShortRange)
	now += 40
	sp.Stop()
	sp = r.Start(StageMesh)
	now += 7
	sp.Stop()
	second := r.Profile()

	d := second.Delta(first)
	if got := d.StageNs(StageShortRange); got != 40 {
		t.Errorf("delta short-range ns = %d, want 40", got)
	}
	if got := d.StageNs(StageMesh); got != 7 {
		t.Errorf("delta mesh ns = %d, want 7", got)
	}
	if got := d.Count[StageMesh]; got != 1 {
		t.Errorf("delta mesh count = %d, want 1", got)
	}
	if got := d.StageNs(StageStep); got != 0 {
		t.Errorf("delta step ns = %d, want 0", got)
	}
	if got := d.StageNs(NumStages + 3); got != 0 {
		t.Errorf("out-of-range stage ns = %d, want 0", got)
	}
}

// TestProfileNilRecorder checks the nil no-op contract shared by the rest
// of the package.
func TestProfileNilRecorder(t *testing.T) {
	var r *Recorder
	p := r.Profile()
	for s := Stage(0); s < NumStages; s++ {
		if p.Ns[s] != 0 || p.Count[s] != 0 {
			t.Fatalf("nil recorder profile has non-zero slot at stage %v", s)
		}
	}
}
