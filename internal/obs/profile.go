package obs

// Profile is an immutable snapshot of every stage's accumulated time and
// span count, indexed by Stage. The auto-tuner's drift monitor
// (internal/tune) diffs two profiles taken at consecutive checkpoint
// boundaries to obtain the measured per-stage cost of the window between
// them, without ever mutating the recorder.
type Profile struct {
	Ns    [NumStages]int64
	Count [NumStages]int64
}

// Profile snapshots the recorder's stage accumulators. On a nil recorder
// it returns the zero Profile. Each slot is loaded atomically; the
// snapshot as a whole is not a cross-stage atomic cut, which is fine for
// the monitor's use (it reads between steps, when nothing records).
func (r *Recorder) Profile() Profile {
	var p Profile
	if r == nil {
		return p
	}
	for s := Stage(0); s < NumStages; s++ {
		p.Ns[s] = r.stages[s].ns.Load()
		p.Count[s] = r.stages[s].count.Load()
	}
	return p
}

// Delta returns the per-stage difference p − prev: the work recorded in
// the window between the two snapshots.
func (p Profile) Delta(prev Profile) Profile {
	var d Profile
	for s := Stage(0); s < NumStages; s++ {
		d.Ns[s] = p.Ns[s] - prev.Ns[s]
		d.Count[s] = p.Count[s] - prev.Count[s]
	}
	return d
}

// StageNs returns the profile's accumulated nanoseconds of stage s.
func (p Profile) StageNs(s Stage) int64 {
	if s >= NumStages {
		return 0
	}
	return p.Ns[s]
}
