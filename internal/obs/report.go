package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// StageStat is one stage row of a Report.
type StageStat struct {
	Stage      string  `json:"stage"`
	TotalNs    int64   `json:"total_ns"`
	Count      int64   `json:"count"`
	MeanStepNs int64   `json:"mean_step_ns"` // TotalNs / Steps (0 when no steps recorded)
	Share      float64 `json:"share_of_step"`
}

// CounterStat is one counter row of a Report.
type CounterStat struct {
	Counter string `json:"counter"`
	Value   int64  `json:"value"`
}

// Report is an immutable snapshot of a recorder, shaped for both the
// Fig 9-style text chart (Render) and machine-readable JSON (WriteJSON).
// Stage order is pipeline order; only stages that recorded at least one
// span appear. Shares are relative to the step-total stage when present,
// otherwise to the largest stage (stages nest, so shares need not sum
// to 100%).
type Report struct {
	Label      string        `json:"label"`
	Atoms      int           `json:"atoms"`
	Steps      int64         `json:"steps"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Stages     []StageStat   `json:"stages"`
	Counters   []CounterStat `json:"counters"`
}

// Report snapshots the recorder. label names the run in the chart header,
// atoms and gomaxprocs describe the workload (callers pass
// runtime.GOMAXPROCS(0); obs does not read runtime state itself so
// snapshots stay pure). On a nil recorder it returns an empty report.
func (r *Recorder) Report(label string, atoms, gomaxprocs int) Report {
	rep := Report{Label: label, Atoms: atoms, GOMAXPROCS: gomaxprocs}
	if r == nil {
		return rep
	}
	rep.Steps = r.StageCount(StageStep)
	// Denominator: the step total when recorded, else the largest stage.
	var denom int64
	if ns := r.StageNs(StageStep); ns > 0 {
		denom = ns
	} else {
		for s := Stage(0); s < NumStages; s++ {
			if ns := r.StageNs(s); ns > denom {
				denom = ns
			}
		}
	}
	for s := Stage(0); s < NumStages; s++ {
		count := r.StageCount(s)
		if count == 0 {
			continue
		}
		st := StageStat{
			Stage:   s.JSONName(),
			TotalNs: r.StageNs(s),
			Count:   count,
		}
		if rep.Steps > 0 {
			st.MeanStepNs = st.TotalNs / rep.Steps
		}
		if denom > 0 {
			st.Share = float64(st.TotalNs) / float64(denom)
		}
		rep.Stages = append(rep.Stages, st)
	}
	for c := Counter(0); c < NumCounters; c++ {
		if v := r.CounterValue(c); v != 0 {
			rep.Counters = append(rep.Counters, CounterStat{Counter: c.String(), Value: v})
		}
	}
	return rep
}

// chartLabels maps JSON stage names back to chart labels.
var chartLabels = func() map[string]string {
	m := make(map[string]string, NumStages)
	for s := Stage(0); s < NumStages; s++ {
		m[s.JSONName()] = s.String()
	}
	return m
}()

// Render writes the Fig 9-style text chart: one bar per recorded stage,
// scaled to the stage's share of the step total, with the mean per-step
// time alongside. width is the bar width in characters (≤ 0 uses 50).
func (rep Report) Render(w io.Writer, width int) {
	if width <= 0 {
		width = 50
	}
	fmt.Fprintf(w, "# %s: per-stage machine time, %d atoms, %d steps, GOMAXPROCS=%d\n",
		rep.Label, rep.Atoms, rep.Steps, rep.GOMAXPROCS)
	if len(rep.Stages) == 0 {
		fmt.Fprintf(w, "(no stages recorded)\n")
		return
	}
	labelW := 0
	for _, st := range rep.Stages {
		if l := len(chartLabel(st.Stage)); l > labelW {
			labelW = l
		}
	}
	for _, st := range rep.Stages {
		bar := int(st.Share*float64(width) + 0.5)
		if bar > width {
			bar = width
		}
		mean := st.MeanStepNs
		if rep.Steps == 0 {
			mean = st.TotalNs
		}
		fmt.Fprintf(w, "%-*s |%-*s| %5.1f%% %12s/step  (%d spans)\n",
			labelW, chartLabel(st.Stage), width, strings.Repeat("#", bar),
			100*st.Share, fmtNs(mean), st.Count)
	}
	if len(rep.Counters) > 0 {
		fmt.Fprintf(w, "# counters\n")
		for _, c := range rep.Counters {
			fmt.Fprintf(w, "%-*s %d\n", labelW+2, c.Counter, c.Value)
		}
	}
}

func chartLabel(jsonName string) string {
	if l, ok := chartLabels[jsonName]; ok {
		return l
	}
	return jsonName
}

// fmtNs renders a nanosecond quantity with a human unit. The breakpoints
// are fixed so golden tests stay stable.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2f s", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2f ms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1f us", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%d ns", ns)
	}
}

// WriteJSON writes the report as indented JSON (the BENCH_obs.json
// format). Field order is fixed by the struct definitions, so the output
// is byte-deterministic for a given report.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// StageStatByName returns the named stage row, if present.
func (rep Report) StageStatByName(jsonName string) (StageStat, bool) {
	for _, st := range rep.Stages {
		if st.Stage == jsonName {
			return st, true
		}
	}
	return StageStat{}, false
}
