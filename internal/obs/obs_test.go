package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestNilRecorderIsInert: every method must no-op (not panic) on a nil
// recorder — the disabled path of every instrumented call site.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	sp := r.Start(StageStep)
	sp.Stop()
	r.Record(StageMesh, 123)
	r.Add(CounterPoolGets, 1)
	r.Reset()
	if r.StageNs(StageStep) != 0 || r.StageCount(StageStep) != 0 || r.CounterValue(CounterPoolGets) != 0 {
		t.Fatal("nil recorder returned nonzero readings")
	}
	rep := r.Report("nil", 0, 1)
	if len(rep.Stages) != 0 || len(rep.Counters) != 0 {
		t.Fatalf("nil recorder produced a non-empty report: %+v", rep)
	}
}

// TestSpanAccumulation checks sums, counts and Reset with a scripted
// clock.
func TestSpanAccumulation(t *testing.T) {
	var now int64
	r := NewWithClock(func() int64 { return now })
	for i := 0; i < 3; i++ {
		sp := r.Start(StageConv)
		now += 1000
		sp.Stop()
	}
	r.Record(StageConv, 500)
	if got := r.StageNs(StageConv); got != 3500 {
		t.Errorf("StageConv ns = %d, want 3500", got)
	}
	if got := r.StageCount(StageConv); got != 4 {
		t.Errorf("StageConv count = %d, want 4", got)
	}
	r.Add(CounterFFTTransforms, 2)
	r.Add(CounterFFTTransforms, 3)
	if got := r.CounterValue(CounterFFTTransforms); got != 5 {
		t.Errorf("fft counter = %d, want 5", got)
	}
	r.Reset()
	if r.StageNs(StageConv) != 0 || r.StageCount(StageConv) != 0 || r.CounterValue(CounterFFTTransforms) != 0 {
		t.Error("Reset left residue")
	}
}

// TestConcurrentIncrementStress hammers one recorder from many goroutines
// — the par.Do overlap situation — and checks the totals are exact. Run
// under -race in tier1.sh, this is also the data-race gate on the slot
// arrays.
func TestConcurrentIncrementStress(t *testing.T) {
	var tick atomic.Int64
	r := NewWithClock(func() int64 { return tick.Add(1) })
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			stage := Stage(w % int(NumStages))
			ctr := Counter(w % int(NumCounters))
			for i := 0; i < iters; i++ {
				sp := r.Start(stage)
				sp.Stop()
				r.Record(stage, 7)
				r.Add(ctr, 3)
			}
		}()
	}
	wg.Wait()
	var spans, ctrSum int64
	for s := Stage(0); s < NumStages; s++ {
		spans += r.StageCount(s)
	}
	for c := Counter(0); c < NumCounters; c++ {
		ctrSum += r.CounterValue(c)
	}
	if want := int64(workers * iters * 2); spans != want {
		t.Errorf("total span count = %d, want %d", spans, want)
	}
	if want := int64(workers * iters * 3); ctrSum != want {
		t.Errorf("total counter sum = %d, want %d", ctrSum, want)
	}
	// The scripted clock ticks once per Start and once per Stop; every
	// span duration is therefore ≥ 1 tick and the per-stage ns sums must
	// be positive wherever spans were recorded.
	for s := Stage(0); s < NumStages; s++ {
		if r.StageCount(s) > 0 && r.StageNs(s) <= 0 {
			t.Errorf("stage %s recorded %d spans but %d ns", s, r.StageCount(s), r.StageNs(s))
		}
	}
}

// TestEnabledPathAllocs gates the zero-allocation contract of the enabled
// path: Start/Stop/Record/Add with the real monotonic clock must not
// allocate — they run inside //tme:noalloc hot paths.
func TestEnabledPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	r := New()
	allocs := testing.AllocsPerRun(100, func() {
		sp := r.Start(StageShortRange)
		r.Record(StageMesh, 42)
		r.Add(CounterPoolGets, 1)
		sp.Stop()
	})
	if allocs != 0 {
		t.Errorf("enabled-path Start/Record/Add/Stop allocates %.1f per run, want 0", allocs)
	}
	var nilR *Recorder
	allocs = testing.AllocsPerRun(100, func() {
		sp := nilR.Start(StageShortRange)
		nilR.Record(StageMesh, 42)
		nilR.Add(CounterPoolGets, 1)
		sp.Stop()
	})
	if allocs != 0 {
		t.Errorf("disabled-path calls allocate %.1f per run, want 0", allocs)
	}
}

// TestMonotonicClock: the default clock must be non-decreasing and
// strictly positive after package init.
func TestMonotonicClock(t *testing.T) {
	a := monotonicNow()
	b := monotonicNow()
	if a < 0 || b < a {
		t.Errorf("monotonic clock went backwards: %d then %d", a, b)
	}
}

// TestStageAndCounterNames pins the name tables: every preregistered slot
// must have distinct, non-empty chart and JSON names (the report and the
// BENCH_obs.json schema key off them).
func TestStageAndCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < NumStages; s++ {
		if s.String() == "" || s.JSONName() == "" {
			t.Errorf("stage %d has an empty name", s)
		}
		if seen[s.JSONName()] {
			t.Errorf("duplicate stage JSON name %q", s.JSONName())
		}
		seen[s.JSONName()] = true
	}
	for c := Counter(0); c < NumCounters; c++ {
		if c.String() == "" {
			t.Errorf("counter %d has an empty name", c)
		}
		if seen[c.String()] {
			t.Errorf("counter name %q collides", c.String())
		}
		seen[c.String()] = true
	}
	if Stage(200).String() != "unknown" || Stage(200).JSONName() != "unknown" || Counter(200).String() != "unknown" {
		t.Error("out-of-range names must render as unknown")
	}
}
