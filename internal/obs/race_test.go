//go:build race

package obs

// raceEnabled disables allocation-count assertions under the race
// detector, whose instrumentation allocates.
const raceEnabled = true
