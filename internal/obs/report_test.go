package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// goldenRecorder replays a fixed two-step scenario through a scripted
// clock, so report output is byte-reproducible.
func goldenRecorder() *Recorder {
	var now int64
	r := NewWithClock(func() int64 { return now })
	for i := 0; i < 2; i++ {
		step := r.Start(StageStep)
		sp := r.Start(StageAssign)
		now += 100_000
		sp.Stop()
		sp = r.Start(StageTopSPME)
		now += 300_000
		sp.Stop()
		sp = r.Start(StageShortRange)
		now += 400_000
		sp.Stop()
		now += 200_000 // unattributed remainder of the step
		step.Stop()
		r.Add(CounterMeshSolves, 1)
		r.Add(CounterPoolGets, 2)
	}
	return r
}

// TestReportRenderGolden pins the Fig 9-style chart format byte for byte.
func TestReportRenderGolden(t *testing.T) {
	rep := goldenRecorder().Report("golden", 648, 1)
	var buf bytes.Buffer
	rep.Render(&buf, 40)
	want := strings.Join([]string{
		"# golden: per-stage machine time, 648 atoms, 2 steps, GOMAXPROCS=1",
		"charge assign |####                                    |  10.0%     100.0 us/step  (2 spans)",
		"top SPME      |############                            |  30.0%     300.0 us/step  (2 spans)",
		"short-range   |################                        |  40.0%     400.0 us/step  (2 spans)",
		"step total    |########################################| 100.0%      1.00 ms/step  (2 spans)",
		"# counters",
		"mesh_solves     2",
		"pool_gets       4",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("golden chart mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestReportStats pins the computed statistics of the golden scenario.
func TestReportStats(t *testing.T) {
	rep := goldenRecorder().Report("golden", 648, 1)
	if rep.Steps != 2 || rep.Atoms != 648 || rep.GOMAXPROCS != 1 {
		t.Fatalf("header fields wrong: %+v", rep)
	}
	sr, ok := rep.StageStatByName("short_range")
	if !ok {
		t.Fatal("short_range stage missing")
	}
	if sr.TotalNs != 800_000 || sr.Count != 2 || sr.MeanStepNs != 400_000 {
		t.Errorf("short_range stats wrong: %+v", sr)
	}
	if sr.Share < 0.399 || sr.Share > 0.401 {
		t.Errorf("short_range share = %g, want 0.4", sr.Share)
	}
	if _, ok := rep.StageStatByName("bonded"); ok {
		t.Error("unrecorded stage must not appear in the report")
	}
	st, _ := rep.StageStatByName("step_total")
	if st.Share != 1 {
		t.Errorf("step_total share = %g, want 1", st.Share)
	}
}

// TestReportJSONRoundTrip: WriteJSON output must decode back to the same
// report (the BENCH_obs.json contract) and carry the stable schema keys.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := goldenRecorder().Report("golden", 648, 1)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"label"`, `"stages"`, `"stage": "short_range"`, `"mean_step_ns"`, `"share_of_step"`, `"counter": "mesh_solves"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON output missing %s:\n%s", key, buf.String())
		}
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round trip changed the report:\n%+v\nvs\n%+v", rep, back)
	}
	// Byte-determinism: encoding the same report twice is identical.
	var buf2 bytes.Buffer
	if err := rep.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteJSON is not byte-deterministic")
	}
}

// TestReportWithoutStepStage: a recorder used outside Integrator.Step
// (solver-only runs) must scale shares to the largest stage.
func TestReportWithoutStepStage(t *testing.T) {
	var now int64
	r := NewWithClock(func() int64 { return now })
	sp := r.Start(StageConv)
	now += 600
	sp.Stop()
	sp = r.Start(StageProlong)
	now += 300
	sp.Stop()
	rep := r.Report("solver", 0, 1)
	conv, _ := rep.StageStatByName("grid_conv")
	pro, _ := rep.StageStatByName("prolong")
	if conv.Share != 1 {
		t.Errorf("largest stage share = %g, want 1", conv.Share)
	}
	if pro.Share != 0.5 {
		t.Errorf("prolong share = %g, want 0.5", pro.Share)
	}
}
