// Package obs is the stage-level observability layer of the simulation
// stack: preregistered per-stage timers and counters for the pipeline the
// paper charts in Fig. 9 (charge assignment, restriction, grid
// convolution, top-level SPME, prolongation, back interpolation,
// short-range, bonded, constraints, and the par.Do overlap window).
//
// Design constraints, in order:
//
//   - Determinism. Instrumentation must never change a trajectory bitwise.
//     The recorder therefore touches no numeric state: it only reads an
//     injected monotonic clock and adds into fixed atomic slots. Simulation
//     code never calls time.Now directly — the only sanctioned time source
//     in internal/ is this package's clock seam (clock.go), which the
//     tmevet obsclock check enforces statically.
//
//   - Zero allocation. Start/Stop/Add are allocation-free on the enabled
//     path (fixed-size slot arrays, no maps, value Spans) so the
//     //tme:noalloc hot paths of PRs 1–2 can carry spans without breaking
//     their AllocsPerRun gates.
//
//   - Zero cost when disabled. Every method no-ops on a nil *Recorder, so
//     uninstrumented runs pay one nil check per span — the ForceField,
//     Integrator, meshers and plans all hold a nil recorder by default.
//
// Stages may nest (fft inside the top-level SPME solve, the neighbor-list
// rebuild inside short-range, everything inside the step total); the
// report presents raw per-stage sums and leaves the hierarchy to the
// reader, exactly like the paper's machine-time chart.
package obs

import "sync/atomic"

// Stage identifies one preregistered pipeline stage. The order is the
// pipeline order used by the report renderer.
type Stage uint8

const (
	StageAssign     Stage = iota // charge assignment (anterpolation) onto the finest grid
	StageRestrict                // two-scale restriction, downward pass over all levels
	StageConv                    // separable middle-range grid convolutions
	StageTopSPME                 // top-level SPME solve (FFT · Green · IFFT)
	StageFFT                     // 3D real-FFT transforms (nested inside the top solve)
	StageProlong                 // two-scale prolongation, upward pass
	StageInterp                  // back interpolation of potentials and forces
	StageMesh                    // whole long-range mesh solve (assign .. interp + self)
	StageShortRange              // short-range nonbonded pair engine
	StageNeighbor                // Verlet pair-list / cell-list rebuild
	StageBonded                  // bonded terms
	StageConstraint              // SETTLE position + velocity constraints
	StageMerge                   // per-atom force-buffer merge
	StageOverlap                 // par.Do overlap window of the force terms
	StageIntegrate               // kick/drift integration bookkeeping
	StageStep                    // whole Integrator.Step
	StageCheckpoint              // checkpoint encode + atomic write (outside the step)
	NumStages                    // number of preregistered stages
)

// stageNames are the human-readable chart labels, indexed by Stage.
var stageNames = [NumStages]string{
	"charge assign",
	"restrict",
	"grid conv",
	"top SPME",
	"fft",
	"prolong",
	"back interp",
	"mesh total",
	"short-range",
	"neighbor build",
	"bonded",
	"constraint",
	"force merge",
	"overlap window",
	"integrate",
	"step total",
	"ckpt write",
}

// stageJSONNames are the machine-readable identifiers, indexed by Stage.
var stageJSONNames = [NumStages]string{
	"charge_assign",
	"restrict",
	"grid_conv",
	"top_spme",
	"fft",
	"prolong",
	"back_interp",
	"mesh_total",
	"short_range",
	"neighbor_build",
	"bonded",
	"constraint",
	"force_merge",
	"overlap_window",
	"integrate",
	"step_total",
	"ckpt_write",
}

// String returns the chart label of the stage.
func (s Stage) String() string {
	if s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// JSONName returns the machine-readable identifier of the stage.
func (s Stage) JSONName() string {
	if s >= NumStages {
		return "unknown"
	}
	return stageJSONNames[s]
}

// Counter identifies one preregistered event counter.
type Counter uint8

const (
	CounterMeshSolves     Counter = iota // full long-range mesh evaluations
	CounterMeshReplays                   // multiple-timestep replays of cached mesh forces
	CounterVerletRebuilds                // Verlet pair-list rebuilds
	CounterVerletPairs                   // pairs enumerated across all rebuilds
	CounterCellRebuilds                  // cell-list rebuilds
	CounterFFTTransforms                 // 3D real-FFT transforms (forward + inverse)
	CounterPoolGets                      // grid-pool Get calls
	CounterPoolMisses                    // grid-pool Gets that had to allocate
	CounterCkptWrites                    // checkpoints written durably
	CounterCkptBytes                     // checkpoint bytes written durably
	CounterCkptFailures                  // checkpoint writes that failed (fault or I/O error)
	NumCounters                          // number of preregistered counters
)

// counterJSONNames are the counter identifiers, indexed by Counter.
var counterJSONNames = [NumCounters]string{
	"mesh_solves",
	"mesh_replays",
	"verlet_rebuilds",
	"verlet_pairs",
	"cell_rebuilds",
	"fft_transforms",
	"pool_gets",
	"pool_misses",
	"ckpt_writes",
	"ckpt_bytes",
	"ckpt_failures",
}

// CounterFromJSONName maps a counter identifier (Counter.String) back to
// its enum value; ok is false for unknown names. Checkpoint restore uses
// this so counter state saved by an older or newer build degrades to
// "unknown counters are dropped" instead of misattributing values.
func CounterFromJSONName(name string) (Counter, bool) {
	for c := Counter(0); c < NumCounters; c++ {
		if counterJSONNames[c] == name {
			return c, true
		}
	}
	return 0, false
}

// String returns the counter's identifier.
func (c Counter) String() string {
	if c >= NumCounters {
		return "unknown"
	}
	return counterJSONNames[c]
}

// slot is one stage's accumulator pair, padded to its own cache line so
// concurrently-updated stages (the par.Do overlap) do not false-share.
type slot struct {
	ns    atomic.Int64
	count atomic.Int64
	_     [48]byte
}

// cslot is one counter's accumulator, cache-line padded like slot.
type cslot struct {
	v atomic.Int64
	_ [56]byte
}

// Recorder accumulates span durations and counter increments into
// fixed-size atomic slot arrays. All methods are safe for concurrent use
// and no-op on a nil receiver. Construct with New or NewWithClock.
type Recorder struct {
	clock    func() int64
	stages   [NumStages]slot
	counters [NumCounters]cslot
}

// New returns an enabled recorder reading the process-monotonic clock.
func New() *Recorder {
	return NewWithClock(monotonicNow)
}

// NewWithClock returns a recorder reading monotonic nanoseconds from
// clock, which must be safe for concurrent use. Tests inject deterministic
// clocks here so report rendering is reproducible.
func NewWithClock(clock func() int64) *Recorder {
	if clock == nil {
		panic("obs: nil clock")
	}
	return &Recorder{clock: clock}
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Span is an open interval of one stage. The zero Span (from a disabled
// recorder) is valid and Stop on it is a no-op.
type Span struct {
	r     *Recorder
	stage Stage
	t0    int64
}

// Start opens a span of stage s. On a nil recorder it returns the zero
// Span and reads no clock.
//
//tme:noalloc
func (r *Recorder) Start(s Stage) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, stage: s, t0: r.clock()}
}

// Stop closes the span, adding its duration to the stage's slot.
//
//tme:noalloc
func (sp Span) Stop() {
	if sp.r == nil {
		return
	}
	sl := &sp.r.stages[sp.stage]
	sl.ns.Add(sp.r.clock() - sp.t0)
	sl.count.Add(1)
}

// Record adds a ready-made duration to stage s without reading the clock
// (used when the caller already has both endpoints).
//
//tme:noalloc
func (r *Recorder) Record(s Stage, ns int64) {
	if r == nil {
		return
	}
	sl := &r.stages[s]
	sl.ns.Add(ns)
	sl.count.Add(1)
}

// Add increments counter c by v.
//
//tme:noalloc
func (r *Recorder) Add(c Counter, v int64) {
	if r == nil {
		return
	}
	r.counters[c].v.Add(v)
}

// StageNs returns the accumulated nanoseconds of stage s.
func (r *Recorder) StageNs(s Stage) int64 {
	if r == nil {
		return 0
	}
	return r.stages[s].ns.Load()
}

// StageCount returns the number of closed spans of stage s.
func (r *Recorder) StageCount(s Stage) int64 {
	if r == nil {
		return 0
	}
	return r.stages[s].count.Load()
}

// CounterValue returns the current value of counter c.
func (r *Recorder) CounterValue(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c].v.Load()
}

// CounterValues returns the current value of every counter, indexed by
// Counter. On a nil recorder it returns nil. Checkpointing uses this to
// carry cumulative event counts across a kill+resume.
func (r *Recorder) CounterValues() []int64 {
	if r == nil {
		return nil
	}
	vals := make([]int64, NumCounters)
	for c := Counter(0); c < NumCounters; c++ {
		vals[c] = r.counters[c].v.Load()
	}
	return vals
}

// SetCounter stores v into counter c (absolute, not additive), the
// restore-side counterpart of CounterValues. Not atomic with respect to
// concurrent recording; callers quiesce the pipeline first.
func (r *Recorder) SetCounter(c Counter, v int64) {
	if r == nil || c >= NumCounters {
		return
	}
	r.counters[c].v.Store(v)
}

// Reset zeroes every stage and counter slot. Not atomic with respect to
// concurrent recording; callers quiesce the pipeline first.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.stages {
		r.stages[i].ns.Store(0)
		r.stages[i].count.Store(0)
	}
	for i := range r.counters {
		r.counters[i].v.Store(0)
	}
}
