package obs

import "time"

// This file is the clock seam: the only place in internal/ allowed to read
// wall-clock time. The tmevet obsclock check enforces that time.* calls in
// this package appear only inside functions carrying the //tme:clock-seam
// directive, and the noclock check keeps every other internal package
// clock-free — so a trajectory can depend on the clock only through the
// recorder's non-numeric timing slots.

// epoch anchors the monotonic clock; reading durations relative to a
// process-local epoch keeps the int64 nanosecond values small and uses
// Go's monotonic clock reading, immune to wall-clock adjustments.
var epoch = seamEpoch()

// seamEpoch captures the process start time.
//
//tme:clock-seam
func seamEpoch() time.Time { return time.Now() }

// monotonicNow returns monotonic nanoseconds since the package was
// initialized. It is the default clock of New and allocates nothing.
//
//tme:clock-seam
func monotonicNow() int64 { return int64(time.Since(epoch)) }

// Now returns monotonic nanoseconds since process start — the sanctioned
// clock for code outside the experiment harnesses that must measure wall
// latency (the serve tier's per-step samples). It reads the same seam as
// the recorder's default clock, so the noclock invariant stays intact:
// every clock read in internal/ flows through this file.
func Now() int64 { return monotonicNow() }
