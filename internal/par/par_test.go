package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForRangeCoversExactly checks that ForRange visits every index exactly
// once for trip counts just below, at, and above the minChunk boundaries
// where the worker-count formula changes value.
func TestForRangeCoversExactly(t *testing.T) {
	counts := []int{0, 1, minChunk - 1, minChunk, minChunk + 1,
		2*minChunk - 1, 2 * minChunk, 2*minChunk + 1, 7*minChunk + 13}
	for _, n := range counts {
		var mu sync.Mutex
		seen := make([]int, n)
		ForRange(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("n=%d: bad chunk [%d,%d)", n, lo, hi)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForRangeGrainCoversExactly(t *testing.T) {
	for _, grain := range []int{0, 1, 3, 64} {
		n := 37
		var visited int64
		ForRangeGrain(n, grain, func(lo, hi int) {
			atomic.AddInt64(&visited, int64(hi-lo))
		})
		if visited != int64(n) {
			t.Fatalf("grain=%d: visited %d of %d", grain, visited, n)
		}
	}
}

// TestWorkersMatchesForRange pins the satellite fix: ForRange and Workers
// must share one worker-count formula, including the n < minChunk case
// where the quotient is zero.
func TestWorkersMatchesForRange(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for _, n := range []int{1, minChunk - 1, minChunk, 4 * minChunk, 1000} {
		if w := Workers(n); w != WorkersGrain(n, minChunk) {
			t.Errorf("n=%d: Workers=%d, WorkersGrain=%d", n, w, WorkersGrain(n, minChunk))
		}
		if w := Workers(n); w < 1 {
			t.Errorf("n=%d: Workers=%d < 1", n, w)
		}
	}
	if w := WorkersGrain(10, 1); w != 4 {
		t.Errorf("WorkersGrain(10,1) = %d at GOMAXPROCS=4, want 4", w)
	}
	if w := WorkersGrain(2, 1); w != 2 {
		t.Errorf("WorkersGrain(2,1) = %d, want 2", w)
	}
}

func TestSumFloat64(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for _, n := range []int{0, 1, minChunk, 10 * minChunk} {
		got := SumFloat64(n, func(i int) float64 { return float64(i) })
		want := float64(n) * float64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if got != want {
			t.Errorf("n=%d: sum %g, want %g", n, got, want)
		}
	}
}

func TestForSeesAllIndices(t *testing.T) {
	n := 5 * minChunk
	var sum int64
	For(n, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if want := int64(n) * int64(n-1) / 2; sum != want {
		t.Errorf("sum %d, want %d", sum, want)
	}
}
