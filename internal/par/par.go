// Package par provides small data-parallel helpers (worker-pool loops and
// reductions) used by the hot loops of the force and mesh modules.
//
// The helpers degrade gracefully to plain sequential loops when GOMAXPROCS
// is one or the trip count is small, so there is no goroutine overhead on
// single-core hosts.
//
// Determinism: the helpers only decide *which worker* executes a chunk,
// never the chunk boundaries themselves. Callers that need results bitwise
// independent of GOMAXPROCS must therefore fix their own reduction
// granularity (see pmesh.Interpolate for the pattern); plain ForRange/
// ForRangeGrain bodies that write disjoint outputs are deterministic as is.
package par

import (
	"runtime"
	"sync"
)

// minChunk is the smallest per-worker slice of iterations worth spawning a
// goroutine for when the caller gives no better estimate of per-iteration
// cost.
const minChunk = 64

// For runs body(i) for every i in [0, n) using up to GOMAXPROCS workers.
// body must be safe to call concurrently for distinct i.
func For(n int, body func(i int)) {
	ForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange splits [0, n) into contiguous chunks and runs body(lo, hi) for
// each chunk, using up to GOMAXPROCS workers. It is the preferred form for
// loops that carry per-worker scratch state.
func ForRange(n int, body func(lo, hi int)) {
	ForRangeGrain(n, minChunk, body)
}

// ForRangeGrain is ForRange with a caller-chosen minimum chunk size. Use a
// small grain (down to 1) for loops whose iterations are individually
// expensive — grid lines, z-slabs, atom blocks — where minChunk's
// cheap-iteration assumption would serialize the loop.
func ForRangeGrain(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := WorkersGrain(n, grain)
	if workers == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Concurrent reports whether more than one worker is available at all —
// callers use it to pick a closure-free sequential path when parallelism
// cannot help (keeping hot paths allocation-free on single-proc hosts).
func Concurrent() bool {
	return runtime.GOMAXPROCS(0) > 1
}

// Do runs the tasks concurrently, waiting for all of them; with a single
// worker available they run sequentially in argument order. Tasks must
// write disjoint state. Unlike ForRange this is for heterogeneous work —
// e.g. overlapping the short-range pair loop with the long-range mesh
// solve and the bonded terms of one force evaluation.
func Do(tasks ...func()) {
	if !Concurrent() || len(tasks) <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks) - 1)
	for _, t := range tasks[1:] {
		go func(t func()) {
			defer wg.Done()
			t()
		}(t)
	}
	tasks[0]()
	wg.Wait()
}

// Workers returns the number of workers ForRange would use for n items.
func Workers(n int) int {
	return WorkersGrain(n, minChunk)
}

// WorkersGrain returns the number of workers ForRangeGrain would use for n
// items at the given grain. It is the single source of truth for the
// worker-count formula.
func WorkersGrain(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	workers := runtime.GOMAXPROCS(0)
	if m := n / grain; workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// pad is the number of float64 words per partial-sum slot; 8 words = 64
// bytes keeps each worker's accumulator on its own cache line.
const pad = 8

// SumFloat64 computes body(i) summed over [0, n) with a parallel reduction.
// body must be pure with respect to shared state. Partials are reduced in
// fixed worker order, so the result is deterministic for a given worker
// count; the chunking (and hence the floating-point association) depends on
// GOMAXPROCS.
func SumFloat64(n int, body func(i int) float64) float64 {
	workers := Workers(n)
	if workers == 1 {
		var s float64
		for i := 0; i < n; i++ {
			s += body(i)
		}
		return s
	}
	partial := make([]float64, workers*pad)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += body(i)
			}
			partial[w*pad] = s
		}(w, lo, hi)
	}
	wg.Wait()
	var s float64
	for w := 0; w < workers; w++ {
		s += partial[w*pad]
	}
	return s
}
