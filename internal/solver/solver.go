// Package solver is the registry of long-range electrostatics solvers.
//
// Every mesh method in this repository — SPME, the paper's TME, and the
// B-spline MSM comparator — computes the same thing: the mesh + self part
// of the periodic Coulomb energy with forces accumulated into a caller
// buffer. This package names that contract (the Molly.jl/AtomsCalculators
// "calculator" idiom: one energy_forces entry point per interchangeable
// method) and lets the implementations register constructors under their
// method names, so callers select a solver per run from a string without
// importing — or even knowing — the concrete packages.
//
// The implementations register themselves from init functions
// (internal/spme, internal/core, internal/msm); a caller that wants the
// full registry imports them for effect:
//
//	import (
//	    _ "tme4a/internal/core"
//	    _ "tme4a/internal/msm"
//	    _ "tme4a/internal/spme"
//	)
//	mesh, err := solver.New("tme", solver.Config{...}, box)
//
// Constructors validate their parameter subset via the per-package
// Params.Validate methods and return errors — never panic — so a CLI can
// turn a bad -method/-kernel/-grid combination into a usage message.
package solver

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tme4a/internal/md"
	"tme4a/internal/obs"
	"tme4a/internal/vec"
)

// Config is the superset of the registered solvers' parameters; each
// constructor maps the subset it understands onto its package Params and
// validates it there. Field semantics follow core.Params.
type Config struct {
	Alpha  float64 // Ewald splitting parameter (nm⁻¹)
	Rc     float64 // short-range cutoff (nm)
	Order  int     // B-spline order p (even)
	N      [3]int  // finest grid dimensions
	Levels int     // middle-range levels (TME/MSM)
	M      int     // Gaussians per middle-range shell (TME)
	Gc     int     // grid-kernel cutoff (TME/MSM)
	Kernel string  // middle-range kernel family (TME): "", "gauss", "useries"
}

// Solver extends the md.MeshSolver calculator contract with
// self-description, so a run header or results table can state exactly
// which method and parameters produced it.
//
// Two optional hooks are discovered by interface assertion, never
// required: ObsWirer (per-stage timing; all three registered solvers
// implement it) and resume hooks, which live at the md.ForceField layer —
// solvers are stateless between steps by design, so checkpoint/restart
// needs nothing from them (DESIGN.md §7.5).
type Solver interface {
	md.MeshSolver
	// Describe returns a one-line human-readable description of the
	// configured method and its parameters.
	Describe() string
}

// ObsWirer is the optional instrumentation hook: a solver that implements
// it propagates a stage recorder to its meshers, pools and sub-solvers
// (nil detaches). md.ForceField.SetObs performs the same assertion.
type ObsWirer interface {
	SetObs(*obs.Recorder)
}

// Constructor builds a configured solver for a box, returning an error —
// not panicking — on invalid parameters.
type Constructor func(cfg Config, box vec.Box) (Solver, error)

// entry is one registered method: its constructor plus the one-line doc
// the listing endpoints render.
type entry struct {
	doc  string
	ctor Constructor
}

var (
	regMu    sync.Mutex
	registry = map[string]entry{}
)

// Register adds a named constructor with a one-line description to the
// registry. It is intended for package init functions; registering an
// empty name, a nil constructor or a duplicate name is a programming
// error and panics.
func Register(name, doc string, c Constructor) {
	if name == "" || c == nil {
		panic("solver: Register needs a non-empty name and a non-nil constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("solver: method %q registered twice", name))
	}
	registry[name] = entry{doc: doc, ctor: c}
}

// New constructs the named solver. Unknown names and invalid
// configurations come back as errors suitable for a CLI usage message.
func New(name string, cfg Config, box vec.Box) (Solver, error) {
	regMu.Lock()
	e, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("solver: unknown method %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	return e.ctor(cfg, box)
}

// Names returns the registered method names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for name := range registry { //tmevet:ignore detmap -- key collection, sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Method is one row of the registry listing.
type Method struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// Methods returns every registered method with its description, sorted by
// name — the order is deterministic, never the map's iteration order, so
// API listings and usage strings built on it are byte-stable across runs.
func Methods() []Method {
	names := Names()
	regMu.Lock()
	defer regMu.Unlock()
	ms := make([]Method, len(names))
	for i, name := range names {
		ms[i] = Method{Name: name, Doc: registry[name].doc}
	}
	return ms
}

// Describe renders the registry listing, one "name: doc" line per method
// in sorted name order. Repeated calls return identical strings.
func Describe() string {
	var b strings.Builder
	for _, m := range Methods() {
		fmt.Fprintf(&b, "%s: %s\n", m.Name, m.Doc)
	}
	return b.String()
}
