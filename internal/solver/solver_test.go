package solver_test

import (
	"math/rand"
	"strings"
	"testing"

	"tme4a/internal/core"
	"tme4a/internal/msm"
	"tme4a/internal/obs"
	"tme4a/internal/solver"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
)

func neutralRandomSystem(rng *rand.Rand, n int, box vec.Box) ([]vec.V, []float64) {
	pos := make([]vec.V, n)
	q := make([]float64, n)
	var qt float64
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
		q[i] = rng.NormFloat64()
		qt += q[i]
	}
	for i := range q {
		q[i] -= qt / float64(n)
	}
	return pos, q
}

func testConfig() solver.Config {
	return solver.Config{
		Alpha:  spme.AlphaFromRTol(1.0, 1e-4),
		Rc:     1.0,
		Order:  6,
		N:      [3]int{16, 16, 16},
		Levels: 1,
		M:      2,
		Gc:     8,
	}
}

// directTwin constructs the same solver the registry constructor should
// build, through the concrete package API.
func directTwin(t *testing.T, name string, cfg solver.Config, box vec.Box) interface {
	LongRange(pos []vec.V, q []float64, f []vec.V) float64
} {
	t.Helper()
	switch name {
	case "spme":
		return spme.New(spme.Params{Alpha: cfg.Alpha, Rc: cfg.Rc, Order: cfg.Order, N: cfg.N}, box)
	case "tme":
		return core.New(core.Params{
			Alpha: cfg.Alpha, Rc: cfg.Rc, Order: cfg.Order, N: cfg.N,
			Levels: cfg.Levels, M: cfg.M, Gc: cfg.Gc,
			Kernel: core.KernelFamily(cfg.Kernel),
		}, box)
	case "msm":
		return msm.New(msm.Params{
			Alpha: cfg.Alpha, Rc: cfg.Rc, Order: cfg.Order, N: cfg.N,
			Levels: cfg.Levels, Gc: cfg.Gc,
		}, box)
	default:
		t.Fatalf("no direct twin for method %q — update this test alongside the registry", name)
		return nil
	}
}

// TestRegistryRoundTrip pins the tentpole contract: for every registered
// method, the registry-built solver is bitwise interchangeable with direct
// construction — identical long-range energy and force bits on the same
// system. Run over both kernel families for methods that honor the field.
func TestRegistryRoundTrip(t *testing.T) {
	names := solver.Names()
	if len(names) < 3 {
		t.Fatalf("expected at least spme, tme, msm registered; got %v", names)
	}
	box := vec.Cubic(4)
	rng := rand.New(rand.NewSource(11))
	pos, q := neutralRandomSystem(rng, 64, box)
	for _, name := range names {
		kernels := []string{""}
		if name == "tme" {
			kernels = []string{"", "gauss", "useries"}
		}
		for _, kern := range kernels {
			cfg := testConfig()
			cfg.Kernel = kern
			s, err := solver.New(name, cfg, box)
			if err != nil {
				t.Errorf("%s/%q: registry construction failed: %v", name, kern, err)
				continue
			}
			if s.Describe() == "" {
				t.Errorf("%s/%q: empty Describe()", name, kern)
			}
			if _, ok := s.(solver.ObsWirer); !ok {
				t.Errorf("%s/%q: solver does not implement ObsWirer", name, kern)
			}
			twin := directTwin(t, name, cfg, box)
			fr, ft := make([]vec.V, len(pos)), make([]vec.V, len(pos))
			er := s.LongRange(pos, q, fr)
			et := twin.LongRange(pos, q, ft)
			if er != et {
				t.Errorf("%s/%q: registry energy %v != direct %v", name, kern, er, et)
			}
			for i := range fr {
				if fr[i] != ft[i] {
					t.Errorf("%s/%q: force %d differs bitwise: %v vs %v", name, kern, i, fr[i], ft[i])
					break
				}
			}
		}
	}
}

// TestRegistryGaussIsDefaultKernel: the empty kernel string selects the
// Gauss–Legendre family bit-for-bit.
func TestRegistryGaussIsDefaultKernel(t *testing.T) {
	box := vec.Cubic(4)
	rng := rand.New(rand.NewSource(12))
	pos, q := neutralRandomSystem(rng, 48, box)
	cfgDefault := testConfig()
	cfgGauss := testConfig()
	cfgGauss.Kernel = "gauss"
	sd, err := solver.New("tme", cfgDefault, box)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := solver.New("tme", cfgGauss, box)
	if err != nil {
		t.Fatal(err)
	}
	if ed, eg := sd.LongRange(pos, q, nil), sg.LongRange(pos, q, nil); ed != eg {
		t.Errorf("default kernel energy %v != gauss %v", ed, eg)
	}
}

func TestRegistryUnknownMethod(t *testing.T) {
	_, err := solver.New("p3m", testConfig(), vec.Cubic(4))
	if err == nil {
		t.Fatal("expected error for unknown method")
	}
	for _, name := range solver.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-method error %q does not list registered method %q", err, name)
		}
	}
}

// TestRegistryValidationErrors: every constructor surfaces bad parameters
// as errors (never panics) through the registry.
func TestRegistryValidationErrors(t *testing.T) {
	box := vec.Cubic(4)
	bad := []struct {
		label  string
		mutate func(*solver.Config)
	}{
		{"odd order", func(c *solver.Config) { c.Order = 5 }},
		{"zero alpha", func(c *solver.Config) { c.Alpha = 0 }},
		{"negative rc", func(c *solver.Config) { c.Rc = -1 }},
		{"non-power-of-two grid", func(c *solver.Config) { c.N = [3]int{18, 18, 18} }},
	}
	for _, name := range solver.Names() {
		for _, tc := range bad {
			cfg := testConfig()
			tc.mutate(&cfg)
			s, err := solver.New(name, cfg, box)
			if err == nil {
				t.Errorf("%s: %s accepted (got %s)", name, tc.label, s.Describe())
			}
		}
	}
	// TME-only: u-series beyond the tabulated range and unknown families.
	cfg := testConfig()
	cfg.Kernel = "useries"
	cfg.M = 9
	if _, err := solver.New("tme", cfg, box); err == nil {
		t.Error("tme accepted useries M=9 beyond the tabulated range")
	}
	cfg = testConfig()
	cfg.Kernel = "hermite"
	if _, err := solver.New("tme", cfg, box); err == nil {
		t.Error("tme accepted unknown kernel family")
	}
}

func TestNamesSorted(t *testing.T) {
	names := solver.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted/unique: %v", names)
		}
	}
}

// TestMethodsDeterministic pins the registry listing surface the serve
// tier exposes at /methods: Methods() and Describe() are sorted by name,
// carry a doc line per method, and never vary run to run (no map-range
// ordering leak).
func TestMethodsDeterministic(t *testing.T) {
	ref := solver.Methods()
	if len(ref) != len(solver.Names()) {
		t.Fatalf("Methods() has %d entries, Names() %d", len(ref), len(solver.Names()))
	}
	for i, name := range solver.Names() {
		if ref[i].Name != name {
			t.Errorf("Methods()[%d] = %q, want %q (sorted order)", i, ref[i].Name, name)
		}
		if ref[i].Doc == "" {
			t.Errorf("method %q registered without a doc line", ref[i].Name)
		}
	}
	refDesc := solver.Describe()
	for trial := 0; trial < 50; trial++ {
		got := solver.Methods()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("Methods() ordering varies: trial %d entry %d = %+v, want %+v", trial, i, got[i], ref[i])
			}
		}
		if d := solver.Describe(); d != refDesc {
			t.Fatalf("Describe() varies between calls:\n%s\nvs\n%s", d, refDesc)
		}
	}
	lines := strings.Split(strings.TrimRight(refDesc, "\n"), "\n")
	if len(lines) != len(ref) {
		t.Fatalf("Describe() has %d lines for %d methods:\n%s", len(lines), len(ref), refDesc)
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, ref[i].Name+": ") {
			t.Errorf("Describe() line %d = %q, want prefix %q", i, line, ref[i].Name+": ")
		}
	}
}

// TestObsWiring smoke-checks that SetObs round-trips on every registered
// solver without panicking, attached and detached.
func TestObsWiring(t *testing.T) {
	box := vec.Cubic(4)
	rng := rand.New(rand.NewSource(13))
	pos, q := neutralRandomSystem(rng, 32, box)
	for _, name := range solver.Names() {
		s, err := solver.New(name, testConfig(), box)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		w, ok := s.(solver.ObsWirer)
		if !ok {
			t.Fatalf("%s: no ObsWirer", name)
		}
		rec := obs.New()
		w.SetObs(rec)
		s.LongRange(pos, q, nil)
		w.SetObs(nil)
		s.LongRange(pos, q, nil)
	}
}
