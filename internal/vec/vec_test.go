package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicAlgebra(t *testing.T) {
	a := New(1, 2, 3)
	b := New(4, -5, 6)
	if got := a.Add(b); got != New(5, -3, 9) {
		t.Errorf("Add: %v", got)
	}
	if got := a.Sub(b); got != New(-3, 7, -3) {
		t.Errorf("Sub: %v", got)
	}
	if got := a.Dot(b); got != 1*4-2*5+3*6 {
		t.Errorf("Dot: %v", got)
	}
	if got := a.Cross(b); got != New(2*6+3*5, 3*4-1*6, -1*5-2*4) {
		t.Errorf("Cross: %v", got)
	}
	if got := a.Scale(2); got != New(2, 4, 6) {
		t.Errorf("Scale: %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := New(math.Mod(ax, 100), math.Mod(ay, 100), math.Mod(az, 100))
		b := New(math.Mod(bx, 100), math.Mod(by, 100), math.Mod(bz, 100))
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 {
			return true
		}
		return math.Abs(c.Dot(a))/scale < 1e-9 && math.Abs(c.Dot(b))/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMinImageRange(t *testing.T) {
	box := NewBox(3, 5, 7)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		d := New(rng.NormFloat64()*20, rng.NormFloat64()*20, rng.NormFloat64()*20)
		m := box.MinImage(d)
		for k := 0; k < 3; k++ {
			if m[k] < -box.L[k]/2-1e-12 || m[k] > box.L[k]/2+1e-12 {
				t.Fatalf("MinImage out of range: %v -> %v", d, m)
			}
			// Difference must be an integer multiple of the box edge.
			r := (d[k] - m[k]) / box.L[k]
			if math.Abs(r-math.Round(r)) > 1e-9 {
				t.Fatalf("MinImage not lattice-equivalent: %v -> %v", d, m)
			}
		}
	}
}

func TestWrapIntoBox(t *testing.T) {
	box := NewBox(2.5, 4, 1)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		r := New(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10)
		w := box.Wrap(r)
		for k := 0; k < 3; k++ {
			if w[k] < 0 || w[k] >= box.L[k] {
				t.Fatalf("Wrap out of box: %v -> %v", r, w)
			}
		}
	}
}

func TestVolumeAndFrac(t *testing.T) {
	box := NewBox(2, 3, 4)
	if box.Volume() != 24 {
		t.Errorf("Volume = %g", box.Volume())
	}
	if got := box.Frac(New(1, 1.5, 2)); got != New(0.5, 0.5, 0.5) {
		t.Errorf("Frac = %v", got)
	}
}
