// Package vec provides 3-component vector algebra and periodic-box
// geometry used by every particle module in the library.
package vec

import "math"

// V is a 3-vector with components in x, y, z order.
type V [3]float64

// New returns the vector (x, y, z).
func New(x, y, z float64) V { return V{x, y, z} }

// Add returns a + b.
func (a V) Add(b V) V { return V{a[0] + b[0], a[1] + b[1], a[2] + b[2]} }

// Sub returns a − b.
func (a V) Sub(b V) V { return V{a[0] - b[0], a[1] - b[1], a[2] - b[2]} }

// Scale returns s·a.
func (a V) Scale(s float64) V { return V{s * a[0], s * a[1], s * a[2]} }

// Mul returns the component-wise product a∘b.
func (a V) Mul(b V) V { return V{a[0] * b[0], a[1] * b[1], a[2] * b[2]} }

// Div returns the component-wise quotient a/b.
func (a V) Div(b V) V { return V{a[0] / b[0], a[1] / b[1], a[2] / b[2]} }

// Dot returns the inner product a·b.
func (a V) Dot(b V) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }

// Cross returns the vector product a×b.
func (a V) Cross(b V) V {
	return V{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}

// Norm2 returns |a|².
func (a V) Norm2() float64 { return a.Dot(a) }

// Norm returns |a|.
func (a V) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Normalize returns a/|a|. It panics on the zero vector.
func (a V) Normalize() V {
	n := a.Norm()
	if n == 0 {
		panic("vec: normalize zero vector")
	}
	return a.Scale(1 / n)
}

// Box is a rectangular periodic simulation box with edge lengths L.
type Box struct {
	L V
}

// NewBox returns a rectangular box with the given edge lengths.
func NewBox(lx, ly, lz float64) Box { return Box{L: V{lx, ly, lz}} }

// Cubic returns a cubic box with edge length l.
func Cubic(l float64) Box { return Box{L: V{l, l, l}} }

// Volume returns the box volume.
func (b Box) Volume() float64 { return b.L[0] * b.L[1] * b.L[2] }

// MinImage returns the minimum-image convention displacement equivalent
// to d, i.e. d shifted by integer multiples of the box edges so each
// component lies in [−L/2, L/2).
func (b Box) MinImage(d V) V {
	for k := 0; k < 3; k++ {
		d[k] -= b.L[k] * math.Round(d[k]/b.L[k])
	}
	return d
}

// Wrap maps position r into the primary cell [0, L).
func (b Box) Wrap(r V) V {
	for k := 0; k < 3; k++ {
		r[k] -= b.L[k] * math.Floor(r[k]/b.L[k])
		if r[k] >= b.L[k] { // guard against floating rounding at the edge
			r[k] -= b.L[k]
		}
	}
	return r
}

// Frac returns r expressed in fractional (box-relative) coordinates.
func (b Box) Frac(r V) V { return r.Div(b.L) }
