package fixpoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeRoundTrip(t *testing.T) {
	f := Q24
	rng := rand.New(rand.NewSource(1))
	prop := func(raw float64) bool {
		v := math.Mod(raw, f.MaxValue())
		q := f.Value(f.Quantize(v))
		return math.Abs(q-v) <= f.Resolution()/2+1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeSaturates(t *testing.T) {
	f := Format{Frac: 24}
	if f.Quantize(1e12) != math.MaxInt32 {
		t.Error("positive saturation failed")
	}
	if f.Quantize(-1e12) != math.MinInt32 {
		t.Error("negative saturation failed")
	}
}

func TestSatAdd32(t *testing.T) {
	if SatAdd32(math.MaxInt32, 1) != math.MaxInt32 {
		t.Error("positive overflow not saturated")
	}
	if SatAdd32(math.MinInt32, -1) != math.MinInt32 {
		t.Error("negative overflow not saturated")
	}
	if SatAdd32(5, -7) != -2 {
		t.Error("plain addition wrong")
	}
}

func TestMulShiftMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := Q24
	for trial := 0; trial < 500; trial++ {
		a := rng.Float64()*4 - 2
		b := rng.Float64()*2 - 1
		qa := f.Quantize(a)
		qb := f.Quantize(b)
		got := f.Value(MulShift(qa, qb, f.Frac))
		want := f.Value(qa) * f.Value(qb)
		if math.Abs(got-want) > f.Resolution() {
			t.Fatalf("a=%g b=%g: got %g want %g", a, b, got, want)
		}
	}
}

func TestMulShiftRoundsNegative(t *testing.T) {
	// −3 × 1 >> 1 rounds to −2 (nearest, away from zero on tie): (−3+1)>>1 = −2...
	// with our symmetric rounding: |−3|+1 = 4 >> 1 = 2 → −2.
	if got := MulShift(-3, 1, 1); got != -2 {
		t.Errorf("MulShift(-3,1,1) = %d, want -2", got)
	}
	if got := MulShift(3, 1, 1); got != 2 {
		t.Errorf("MulShift(3,1,1) = %d, want 2", got)
	}
}

func TestAcc64(t *testing.T) {
	a := Acc64{Fmt: Q24}
	for i := 0; i < 1000; i++ {
		a.Add(Q24.Quantize(0.001))
	}
	if math.Abs(a.Value()-1.0) > 1e-4 {
		t.Errorf("accumulated %g, want ~1.0", a.Value())
	}
	if a.Overflowed() {
		t.Error("spurious overflow")
	}
}

func TestGrid32AccumAndWrap(t *testing.T) {
	g := NewGrid32(4, 4, 4, Format{Frac: 16})
	g.AccumAt(-1, 5, 4, g.Fmt.Quantize(1.5))
	g.AccumAt(3, 1, 0, g.Fmt.Quantize(0.25))
	got := g.Fmt.Value(g.Data[g.Idx(3, 1, 0)])
	if math.Abs(got-1.75) > 1e-4 {
		t.Errorf("wrapped accumulation %g, want 1.75", got)
	}
}

func TestGrid32QuantizeInto(t *testing.T) {
	g := NewGrid32(2, 2, 2, Format{Frac: 20})
	data := []float64{0.1, -0.2, 0.3, -0.4, 0.5, -0.6, 0.7, -0.8}
	g.QuantizeInto(data)
	back := g.Float()
	for i := range data {
		if math.Abs(back[i]-data[i]) > g.Fmt.Resolution() {
			t.Fatalf("index %d: %g vs %g", i, back[i], data[i])
		}
	}
}

func TestFormatString(t *testing.T) {
	if Q24.String() != "Q7.24" {
		t.Errorf("format string %q", Q24.String())
	}
}
