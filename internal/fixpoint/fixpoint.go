// Package fixpoint implements the fixed-point arithmetic of the
// MDGRAPE-4A datapaths: 32-bit two's-complement values with a tunable
// binary point (the paper's LRU uses a 24-bit fractional part for B-spline
// coefficients; grid data and force accumulation use 32-bit fixed point
// with a shiftable binary point; the global memory accumulates 32-bit
// fixed-point values on stored data; total potentials accumulate in 64-bit).
package fixpoint

import (
	"fmt"
	"math"
)

// Format describes a fixed-point representation: a signed 32-bit integer
// with Frac fractional bits.
type Format struct {
	Frac uint // number of fractional bits (binary point position)
}

// Q24 is the LRU coefficient format (24-bit fractional part).
var Q24 = Format{Frac: 24}

// Scale returns 2^Frac.
func (f Format) Scale() float64 { return float64(int64(1) << f.Frac) }

// Quantize converts v to the nearest representable fixed-point value,
// saturating at the int32 range.
func (f Format) Quantize(v float64) int32 {
	x := math.RoundToEven(v * f.Scale())
	if x > math.MaxInt32 {
		return math.MaxInt32
	}
	if x < math.MinInt32 {
		return math.MinInt32
	}
	return int32(x)
}

// Value converts a fixed-point value back to float64.
func (f Format) Value(x int32) float64 { return float64(x) / f.Scale() }

// Resolution returns the quantization step 2^−Frac.
func (f Format) Resolution() float64 { return 1 / f.Scale() }

// MaxValue returns the largest representable magnitude.
func (f Format) MaxValue() float64 { return float64(math.MaxInt32) / f.Scale() }

func (f Format) String() string { return fmt.Sprintf("Q%d.%d", 31-f.Frac, f.Frac) }

// SatAdd32 adds two 32-bit fixed-point values with saturation — the
// accumulate-on-write mode of the MDGRAPE-4A global memory.
func SatAdd32(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s > math.MaxInt32 {
		return math.MaxInt32
	}
	if s < math.MinInt32 {
		return math.MinInt32
	}
	return int32(s)
}

// MulShift multiplies two fixed-point values and shifts the 64-bit product
// right by shift bits (round to nearest, ties away from zero), saturating
// to 32 bits — the GCU convolution primitive: grid(32-bit) × kernel(24-bit
// fraction) with a specified output binary point.
func MulShift(a, b int32, shift uint) int32 {
	p := int64(a) * int64(b)
	// Round to nearest.
	if shift > 0 {
		half := int64(1) << (shift - 1)
		if p >= 0 {
			p = (p + half) >> shift
		} else {
			p = -((-p + half) >> shift)
		}
	}
	if p > math.MaxInt32 {
		return math.MaxInt32
	}
	if p < math.MinInt32 {
		return math.MinInt32
	}
	return int32(p)
}

// Acc64 is a 64-bit fixed-point accumulator (used for total potential
// accumulation in the LRU).
type Acc64 struct {
	Sum  int64
	Fmt  Format
	over bool
}

// Add accumulates a 32-bit fixed-point value.
func (a *Acc64) Add(x int32) {
	s := a.Sum + int64(x)
	// Detect (unlikely) 64-bit overflow.
	if (a.Sum > 0 && x > 0 && s < 0) || (a.Sum < 0 && x < 0 && s > 0) {
		a.over = true
	}
	a.Sum = s
}

// Value returns the accumulated value as float64.
func (a *Acc64) Value() float64 { return float64(a.Sum) / a.Fmt.Scale() }

// Overflowed reports whether the accumulator wrapped.
func (a *Acc64) Overflowed() bool { return a.over }

// Grid32 is a 3D grid of 32-bit fixed-point values — the GCU grid memory
// and LRU grid memory representation.
type Grid32 struct {
	N    [3]int
	Fmt  Format
	Data []int32
}

// NewGrid32 allocates a zeroed fixed-point grid.
func NewGrid32(nx, ny, nz int, fmtt Format) *Grid32 {
	return &Grid32{N: [3]int{nx, ny, nz}, Fmt: fmtt, Data: make([]int32, nx*ny*nz)}
}

// Idx returns the flat index with periodic wrapping.
func (g *Grid32) Idx(ix, iy, iz int) int {
	return wrap(ix, g.N[0]) + g.N[0]*(wrap(iy, g.N[1])+g.N[1]*wrap(iz, g.N[2]))
}

// AccumAt adds a fixed-point value at (ix, iy, iz) with saturation
// (GM accumulate-on-write).
func (g *Grid32) AccumAt(ix, iy, iz int, v int32) {
	i := g.Idx(ix, iy, iz)
	g.Data[i] = SatAdd32(g.Data[i], v)
}

// Float converts the grid to float64 values.
func (g *Grid32) Float() []float64 {
	out := make([]float64, len(g.Data))
	for i, v := range g.Data {
		out[i] = g.Fmt.Value(v)
	}
	return out
}

// QuantizeInto fills the grid from float64 data (len must match).
func (g *Grid32) QuantizeInto(data []float64) {
	if len(data) != len(g.Data) {
		panic("fixpoint: QuantizeInto length mismatch")
	}
	for i, v := range data {
		g.Data[i] = g.Fmt.Quantize(v)
	}
}

func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}
