package msm

import (
	"math/rand"
	"runtime"
	"testing"

	"tme4a/internal/vec"
)

// TestLongRangeSteadyStateAllocs pins the MSM hot-path fix of this PR:
// after warmup, a full MSM long-range solve (assign → restrictions →
// direct 3D level convolutions → SPME top → prolongations → interpolate)
// reuses pooled grids and pre-scaled level kernels and allocates nothing
// per step at GOMAXPROCS=1. The gate is exact (== 0) — stricter than
// core's, because the direct convolution has no sync.Pool line scratch
// that a mid-measurement GC could repopulate.
func TestLongRangeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(31))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 200, box)
	f := make([]vec.V, len(pos))
	s := New(params(1.0, 8), box)

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	// Warm the grid pool and all sync.Pool scratch.
	for i := 0; i < 3; i++ {
		s.LongRange(pos, q, f)
	}
	allocs := testing.AllocsPerRun(10, func() {
		s.LongRange(pos, q, f)
	})
	// The pre-refactor pipeline allocated a fresh grid per level per
	// stage (plus a full kernel-scaled copy) on every call.
	if allocs != 0 {
		t.Errorf("LongRange allocates %.1f objects per step in steady state, want 0", allocs)
	}
}
