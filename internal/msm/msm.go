// Package msm implements the B-spline multilevel summation method — the
// comparator the paper measures TME against (Sec. III.C).
//
// The structure is identical to TME (Ewald splitting, B-spline charge
// assignment/back interpolation, two-scale restriction/prolongation,
// top-level SPME), but each middle-range shell g_{α,l}(r) is convolved
// directly as a range-limited 3D grid kernel instead of a separable
// Gaussian sum: cost (2g_c+1)³ per grid point versus TME's 3·M·(2g_c+1).
// Because no Gaussian approximation is made, MSM is (slightly) more
// accurate at the same g_c — TME trades that accuracy headroom for
// separability; the exchange is quantified by the Table 1 benches and the
// BenchmarkConvSeparableVsDirect ablation.
//
// Hardy et al. (2016) formulate B-spline MSM with polynomially softened
// kernels; following the paper's framing we keep the Ewald-based splitting
// so MSM and TME differ only in the convolution structure. This is the
// substitution documented in DESIGN.md.
package msm

import (
	"fmt"
	"math"
	"sync"

	"tme4a/internal/bspline"
	"tme4a/internal/core"
	"tme4a/internal/ewald"
	"tme4a/internal/grid"
	"tme4a/internal/obs"
	"tme4a/internal/pmesh"
	"tme4a/internal/spme"
	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// Params configures a B-spline MSM solver. The fields mirror core.Params
// without the Gaussian count M.
type Params struct {
	Alpha  float64
	Rc     float64
	Order  int
	N      [3]int
	Levels int
	Gc     int
}

// Validate reports the first invalid parameter as an error. New panics on
// the same conditions; the solver registry surfaces them as errors.
func (p Params) Validate() error {
	if !(p.Alpha > 0) {
		return fmt.Errorf("msm: Alpha must be positive, got %g", p.Alpha)
	}
	if !(p.Rc > 0) {
		return fmt.Errorf("msm: Rc must be positive, got %g", p.Rc)
	}
	if p.Order%2 != 0 || p.Order < 2 || p.Order > pmesh.MaxOrder {
		return fmt.Errorf("msm: order must be even and in [2, %d], got %d", pmesh.MaxOrder, p.Order)
	}
	if p.Levels < 1 {
		return fmt.Errorf("msm: MSM needs at least one middle level, got %d", p.Levels)
	}
	if p.Gc < 1 {
		return fmt.Errorf("msm: grid-kernel cutoff must be >= 1, got %d", p.Gc)
	}
	for jx := 0; jx < 3; jx++ {
		d := p.N[jx] >> p.Levels
		if d<<p.Levels != p.N[jx] || d < 1 {
			return fmt.Errorf("msm: grid dim %d not divisible by 2^%d", p.N[jx], p.Levels)
		}
		if p.N[jx] < p.Order {
			return fmt.Errorf("msm: grid dim %d smaller than spline order %d", p.N[jx], p.Order)
		}
		if d&(d-1) != 0 {
			return fmt.Errorf("msm: top-level grid dim %d (= %d/2^%d) is not a power of two", d, p.N[jx], p.Levels)
		}
		if d < p.Order {
			return fmt.Errorf("msm: top-level grid dim %d (= %d/2^%d) smaller than spline order %d", d, p.N[jx], p.Levels, p.Order)
		}
	}
	return nil
}

// Solver holds precomputed 3D level kernels.
type Solver struct {
	Prm    Params
	Box    vec.Box
	Mesher *pmesh.Mesher

	j      []float64
	kernel []float64 // 3D grid kernel of g_{α,1}, side 2·Gc+1 (level-invariant)
	top    *spme.Solver

	// kernL[l-1] is kernel with the level-l prefactor Coulomb/2^{l-1}
	// folded in, and wraps[l-1] the level-l x-axis wrap table, so the
	// per-level direct convolutions run without scaling passes or
	// allocations.
	kernL [][]float64
	wraps [][]int

	pool *grid.Pool // recycled level grids (zero steady-state allocs)

	// o, when non-nil, times the restriction, per-level convolution and
	// prolongation stages of the mesh pipeline.
	o *obs.Recorder

	// mu guards the reused per-level grid table of the mesh pipeline.
	mu      sync.Mutex
	charges []*grid.G
}

// SetObs attaches a stage recorder to the solver, its mesher, grid pool
// and top-level SPME solver (nil detaches). Not safe to call concurrently
// with solves.
func (s *Solver) SetObs(r *obs.Recorder) {
	s.o = r
	s.Mesher.SetObs(r)
	s.pool.SetObs(r)
	s.top.SetObs(r)
}

// New precomputes the MSM solver for the box. It panics on invalid
// parameters; use Params.Validate (or the solver registry) to get the same
// conditions as errors.
func New(prm Params, box vec.Box) *Solver {
	if err := prm.Validate(); err != nil {
		panic(err.Error())
	}
	var topN [3]int
	for jx := 0; jx < 3; jx++ {
		topN[jx] = prm.N[jx] >> prm.Levels
	}
	s := &Solver{
		Prm:    prm,
		Box:    box,
		Mesher: pmesh.NewMesher(prm.Order, prm.N, box),
		j:      bspline.TwoScale(prm.Order),
	}
	s.kernel = levelKernel3D(prm, s.Mesher.H())
	s.kernL = make([][]float64, prm.Levels)
	s.wraps = make([][]int, prm.Levels)
	for l := 1; l <= prm.Levels; l++ {
		scale := units.Coulomb / math.Pow(2, float64(l-1))
		kl := make([]float64, len(s.kernel))
		for i, k := range s.kernel {
			kl[i] = k * scale
		}
		s.kernL[l-1] = kl
		s.wraps[l-1] = grid.WrapTable(prm.N[0]>>(l-1), prm.Gc)
	}
	s.pool = grid.NewPool()
	s.charges = make([]*grid.G, prm.Levels+2)
	s.top = spme.New(spme.Params{
		Alpha: prm.Alpha / math.Pow(2, float64(prm.Levels)),
		Rc:    prm.Rc,
		Order: prm.Order,
		N:     topN,
	}, box)
	return s
}

// Describe returns a one-line description of the configured method.
func (s *Solver) Describe() string {
	return fmt.Sprintf("msm: alpha=%g rc=%g order=%d grid=%dx%dx%d levels=%d gc=%d",
		s.Prm.Alpha, s.Prm.Rc, s.Prm.Order, s.Prm.N[0], s.Prm.N[1], s.Prm.N[2],
		s.Prm.Levels, s.Prm.Gc)
}

// levelKernel3D builds the B-spline representation of g_{α,1} on the grid:
// samples of the shell at grid displacements, convolved with ω′ along each
// axis (the 3D analogue of bspline.GridKernel), truncated to |m_j| ≤ g_c.
//
// By the self-similarity g_{α,l}(r) = g_{α,1}(r/2^{l−1})/2^{l−1} and the
// level-l grid spacing 2^{l−1}h, the same kernel serves every level with a
// 1/2^{l−1} prefactor.
func levelKernel3D(prm Params, h vec.V) []float64 {
	gc := prm.Gc
	// ω′ reach: beyond ~25 entries the filter is below double precision.
	const pad = 26
	ext := gc + pad
	side := 2*ext + 1
	buf := make([]float64, side*side*side)
	// Sample the exact shell on the extended grid.
	for mz := -ext; mz <= ext; mz++ {
		for my := -ext; my <= ext; my++ {
			for mx := -ext; mx <= ext; mx++ {
				r := math.Sqrt(float64(mx*mx)*h[0]*h[0] + float64(my*my)*h[1]*h[1] + float64(mz*mz)*h[2]*h[2])
				buf[(mx+ext)+side*((my+ext)+side*(mz+ext))] = core.ShellExact(prm.Alpha, 1, r)
			}
		}
	}
	// Convolve ω′ along each axis (non-periodic; the shell has decayed to
	// negligible values at the padded boundary).
	wp := bspline.OmegaSq(prm.Order, pad)
	tmp := make([]float64, side*side*side)
	convAxis := func(src, dst []float64, axis int) {
		strides := [3]int{1, side, side * side}
		st := strides[axis]
		for c := 0; c < side; c++ {
			for b := 0; b < side; b++ {
				var base int
				switch axis {
				case 0:
					base = side * (b + side*c)
				case 1:
					base = b + side*side*c
				default:
					base = b + side*c
				}
				for i := 0; i < side; i++ {
					var sum float64
					for m := -pad; m <= pad; m++ {
						jj := i - m
						if jj < 0 || jj >= side {
							continue
						}
						sum += wp[m+pad] * src[base+jj*st]
					}
					dst[base+i*st] = sum
				}
			}
		}
	}
	convAxis(buf, tmp, 0)
	convAxis(tmp, buf, 1)
	convAxis(buf, tmp, 2)
	// Truncate to the g_c window.
	k := 2*gc + 1
	out := make([]float64, k*k*k)
	for mz := -gc; mz <= gc; mz++ {
		for my := -gc; my <= gc; my++ {
			for mx := -gc; mx <= gc; mx++ {
				out[(mx+gc)+k*((my+gc)+k*(mz+gc))] =
					tmp[(mx+ext)+side*((my+ext)+side*(mz+ext))]
			}
		}
	}
	return out
}

// Kernel3D returns the precomputed level-1 grid kernel (read-only), side
// 2·Gc+1 per axis.
func (s *Solver) Kernel3D() []float64 { return s.kernel }

// MeshPotential runs charge assignment, restrictions, direct 3D level
// convolutions, top-level SPME and prolongations, returning the finest-grid
// potential in kJ mol⁻¹ e⁻¹.
//
// The returned grid is drawn from the solver's internal pool and is owned
// by the caller; LongRange recycles it, external callers may simply let it
// be garbage collected.
//
//tme:noalloc
func (s *Solver) MeshPotential(pos []vec.V, q []float64) *grid.G {
	qg := s.pool.Get(s.Prm.N)
	qg.Zero()
	s.Mesher.AssignTo(qg, pos, q)
	phi := s.meshPotentialFromCharges(qg)
	s.pool.Put(qg)
	return phi
}

// meshPotentialFromCharges is the grid pipeline below charge assignment,
// structured exactly like core.Solver's: every intermediate grid comes
// from the pool and goes back, so steady-state solves allocate nothing.
//
//tme:noalloc
func (s *Solver) meshPotentialFromCharges(qg *grid.G) *grid.G {
	s.mu.Lock()
	defer s.mu.Unlock()
	L := s.Prm.Levels
	// Downward pass: restrict charges level by level. charges is 1-based;
	// [L+1] is the top grid. Entry 1 aliases the caller's grid and is
	// never recycled.
	charges := s.charges
	charges[1] = qg
	spDown := s.o.Start(obs.StageRestrict)
	for l := 1; l <= L; l++ {
		n := charges[l].N
		charges[l+1] = s.pool.Get([3]int{n[0] / 2, n[1] / 2, n[2] / 2})
		grid.RestrictInto(charges[l+1], charges[l], s.j, s.pool)
	}
	spDown.Stop()
	// Top-level SPME convolution.
	phi := s.pool.Get(charges[L+1].N)
	s.top.PotentialGridInto(phi, charges[L+1])
	s.pool.Put(charges[L+1])
	charges[L+1] = nil
	// Upward pass: prolong, then accumulate each level's direct 3D
	// convolution with the pre-scaled level kernel, recycling every
	// intermediate grid.
	for l := L; l >= 1; l-- {
		up := s.pool.Get(charges[l].N)
		spUp := s.o.Start(obs.StageProlong)
		grid.ProlongInto(up, phi, s.j, s.pool)
		spUp.Stop()
		s.pool.Put(phi)
		spConv := s.o.Start(obs.StageConv)
		grid.ConvDirect3DAccum(up, charges[l], s.kernL[l-1], s.Prm.Gc, s.wraps[l-1])
		spConv.Stop()
		if l > 1 {
			s.pool.Put(charges[l])
		}
		charges[l] = nil
		phi = up
	}
	return phi
}

// LongRange computes the mesh part plus self energy, accumulating forces
// into f (may be nil).
//
//tme:noalloc
func (s *Solver) LongRange(pos []vec.V, q []float64, f []vec.V) float64 {
	phi := s.MeshPotential(pos, q)
	e := s.Mesher.Interpolate(phi, pos, q, f)
	s.pool.Put(phi)
	return e + ewald.SelfEnergy(q, s.Prm.Alpha)
}

// Coulomb computes the full MSM Coulomb energy, accumulating forces into f.
func (s *Solver) Coulomb(pos []vec.V, q []float64, excl *topol.Exclusions, f []vec.V) float64 {
	e := ewald.RealSpace(s.Box, pos, q, s.Prm.Alpha, s.Prm.Rc, excl, f)
	e += s.LongRange(pos, q, f)
	e += ewald.ExclusionCorrection(s.Box, pos, q, s.Prm.Alpha, excl, f)
	return e
}
