// Package msm implements the B-spline multilevel summation method — the
// comparator the paper measures TME against (Sec. III.C).
//
// The structure is identical to TME (Ewald splitting, B-spline charge
// assignment/back interpolation, two-scale restriction/prolongation,
// top-level SPME), but each middle-range shell g_{α,l}(r) is convolved
// directly as a range-limited 3D grid kernel instead of a separable
// Gaussian sum: cost (2g_c+1)³ per grid point versus TME's 3·M·(2g_c+1).
// Because no Gaussian approximation is made, MSM is (slightly) more
// accurate at the same g_c — TME trades that accuracy headroom for
// separability; the exchange is quantified by the Table 1 benches and the
// BenchmarkConvSeparableVsDirect ablation.
//
// Hardy et al. (2016) formulate B-spline MSM with polynomially softened
// kernels; following the paper's framing we keep the Ewald-based splitting
// so MSM and TME differ only in the convolution structure. This is the
// substitution documented in DESIGN.md.
package msm

import (
	"math"

	"tme4a/internal/bspline"
	"tme4a/internal/core"
	"tme4a/internal/ewald"
	"tme4a/internal/grid"
	"tme4a/internal/pmesh"
	"tme4a/internal/spme"
	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// Params configures a B-spline MSM solver. The fields mirror core.Params
// without the Gaussian count M.
type Params struct {
	Alpha  float64
	Rc     float64
	Order  int
	N      [3]int
	Levels int
	Gc     int
}

// Solver holds precomputed 3D level kernels.
type Solver struct {
	Prm    Params
	Box    vec.Box
	Mesher *pmesh.Mesher

	j      []float64
	kernel []float64 // 3D grid kernel of g_{α,1}, side 2·Gc+1 (level-invariant)
	top    *spme.Solver
}

// New precomputes the MSM solver for the box.
func New(prm Params, box vec.Box) *Solver {
	var topN [3]int
	for jx := 0; jx < 3; jx++ {
		topN[jx] = prm.N[jx] >> prm.Levels
	}
	s := &Solver{
		Prm:    prm,
		Box:    box,
		Mesher: pmesh.NewMesher(prm.Order, prm.N, box),
		j:      bspline.TwoScale(prm.Order),
	}
	s.kernel = levelKernel3D(prm, s.Mesher.H())
	s.top = spme.New(spme.Params{
		Alpha: prm.Alpha / math.Pow(2, float64(prm.Levels)),
		Rc:    prm.Rc,
		Order: prm.Order,
		N:     topN,
	}, box)
	return s
}

// levelKernel3D builds the B-spline representation of g_{α,1} on the grid:
// samples of the shell at grid displacements, convolved with ω′ along each
// axis (the 3D analogue of bspline.GridKernel), truncated to |m_j| ≤ g_c.
//
// By the self-similarity g_{α,l}(r) = g_{α,1}(r/2^{l−1})/2^{l−1} and the
// level-l grid spacing 2^{l−1}h, the same kernel serves every level with a
// 1/2^{l−1} prefactor.
func levelKernel3D(prm Params, h vec.V) []float64 {
	gc := prm.Gc
	// ω′ reach: beyond ~25 entries the filter is below double precision.
	const pad = 26
	ext := gc + pad
	side := 2*ext + 1
	buf := make([]float64, side*side*side)
	// Sample the exact shell on the extended grid.
	for mz := -ext; mz <= ext; mz++ {
		for my := -ext; my <= ext; my++ {
			for mx := -ext; mx <= ext; mx++ {
				r := math.Sqrt(float64(mx*mx)*h[0]*h[0] + float64(my*my)*h[1]*h[1] + float64(mz*mz)*h[2]*h[2])
				buf[(mx+ext)+side*((my+ext)+side*(mz+ext))] = core.ShellExact(prm.Alpha, 1, r)
			}
		}
	}
	// Convolve ω′ along each axis (non-periodic; the shell has decayed to
	// negligible values at the padded boundary).
	wp := bspline.OmegaSq(prm.Order, pad)
	tmp := make([]float64, side*side*side)
	convAxis := func(src, dst []float64, axis int) {
		strides := [3]int{1, side, side * side}
		st := strides[axis]
		for c := 0; c < side; c++ {
			for b := 0; b < side; b++ {
				var base int
				switch axis {
				case 0:
					base = side * (b + side*c)
				case 1:
					base = b + side*side*c
				default:
					base = b + side*c
				}
				for i := 0; i < side; i++ {
					var sum float64
					for m := -pad; m <= pad; m++ {
						jj := i - m
						if jj < 0 || jj >= side {
							continue
						}
						sum += wp[m+pad] * src[base+jj*st]
					}
					dst[base+i*st] = sum
				}
			}
		}
	}
	convAxis(buf, tmp, 0)
	convAxis(tmp, buf, 1)
	convAxis(buf, tmp, 2)
	// Truncate to the g_c window.
	k := 2*gc + 1
	out := make([]float64, k*k*k)
	for mz := -gc; mz <= gc; mz++ {
		for my := -gc; my <= gc; my++ {
			for mx := -gc; mx <= gc; mx++ {
				out[(mx+gc)+k*((my+gc)+k*(mz+gc))] =
					tmp[(mx+ext)+side*((my+ext)+side*(mz+ext))]
			}
		}
	}
	return out
}

// Kernel3D returns the precomputed level-1 grid kernel (read-only), side
// 2·Gc+1 per axis.
func (s *Solver) Kernel3D() []float64 { return s.kernel }

// MeshPotential runs charge assignment, restrictions, direct 3D level
// convolutions, top-level SPME and prolongations, returning the finest-grid
// potential in kJ mol⁻¹ e⁻¹.
func (s *Solver) MeshPotential(pos []vec.V, q []float64) *grid.G {
	qg := s.Mesher.Assign(pos, q)
	L := s.Prm.Levels
	charges := make([]*grid.G, L+2)
	charges[1] = qg
	for l := 1; l <= L; l++ {
		charges[l+1] = grid.Restrict(charges[l], s.j)
	}
	phi := s.top.PotentialGrid(charges[L+1])
	for l := L; l >= 1; l-- {
		up := grid.Prolong(phi, s.j)
		conv := grid.ConvDirect3D(charges[l], s.kernel, s.Prm.Gc)
		conv.Scale(units.Coulomb / math.Pow(2, float64(l-1)))
		up.AddGrid(conv)
		phi = up
	}
	return phi
}

// LongRange computes the mesh part plus self energy, accumulating forces
// into f (may be nil).
func (s *Solver) LongRange(pos []vec.V, q []float64, f []vec.V) float64 {
	phi := s.MeshPotential(pos, q)
	return s.Mesher.Interpolate(phi, pos, q, f) + ewald.SelfEnergy(q, s.Prm.Alpha)
}

// Coulomb computes the full MSM Coulomb energy, accumulating forces into f.
func (s *Solver) Coulomb(pos []vec.V, q []float64, excl *topol.Exclusions, f []vec.V) float64 {
	e := ewald.RealSpace(s.Box, pos, q, s.Prm.Alpha, s.Prm.Rc, excl, f)
	e += s.LongRange(pos, q, f)
	e += ewald.ExclusionCorrection(s.Box, pos, q, s.Prm.Alpha, excl, f)
	return e
}
