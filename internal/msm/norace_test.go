//go:build !race

package msm

const raceEnabled = false
