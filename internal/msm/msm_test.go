package msm

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/core"
	"tme4a/internal/ewald"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
)

func neutralRandomSystem(rng *rand.Rand, n int, box vec.Box) ([]vec.V, []float64) {
	pos := make([]vec.V, n)
	q := make([]float64, n)
	var qt float64
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
		q[i] = rng.NormFloat64()
		qt += q[i]
	}
	for i := range q {
		q[i] -= qt / float64(n)
	}
	return pos, q
}

func relForceError(f, ref []vec.V) float64 {
	var num, den float64
	for i := range f {
		num += f[i].Sub(ref[i]).Norm2()
		den += ref[i].Norm2()
	}
	return math.Sqrt(num / den)
}

func params(rc float64, gc int) Params {
	return Params{
		Alpha:  spme.AlphaFromRTol(rc, 1e-4),
		Rc:     rc,
		Order:  6,
		N:      [3]int{16, 16, 16},
		Levels: 1,
		Gc:     gc,
	}
}

func TestMSMMatchesEwaldReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 64, box)
	_, fRef := ewald.Reference(box, pos, q, nil, 1e-12)
	s := New(params(1.2, 8), box)
	f := make([]vec.V, len(pos))
	s.Coulomb(pos, q, nil, f)
	err := relForceError(f, fRef)
	t.Logf("MSM gc=8 relative force error: %.3e", err)
	if err > 3e-3 {
		t.Errorf("relative force error %g, want < 3e-3", err)
	}
}

// TestMSMIsTMELimitOfManyGaussians: the TME error converges toward the MSM
// error from above as M grows, because MSM uses the exact shell kernel the
// Gaussians approximate.
func TestMSMIsTMELimitOfManyGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 96, box)
	_, fRef := ewald.Reference(box, pos, q, nil, 1e-12)

	s := New(params(1.2, 8), box)
	fm := make([]vec.V, len(pos))
	s.Coulomb(pos, q, nil, fm)
	errMSM := relForceError(fm, fRef)

	tme := core.New(core.Params{
		Alpha: s.Prm.Alpha, Rc: s.Prm.Rc, Order: 6,
		N: s.Prm.N, Levels: 1, M: 8, Gc: 8,
	}, box)
	ft := make([]vec.V, len(pos))
	tme.Coulomb(pos, q, nil, ft)
	errTME := relForceError(ft, fRef)

	t.Logf("MSM err=%.3e, TME(M=8) err=%.3e", errMSM, errTME)
	if errTME > 1.25*errMSM {
		t.Errorf("TME with many Gaussians (%g) should approach MSM accuracy (%g)", errTME, errMSM)
	}
}

// TestMSMAndTMEGridPotentialsAgree compares the mesh potentials directly:
// with many Gaussians the separable TME convolution must reproduce the
// direct 3D MSM convolution (tensor decomposition of the same kernel).
func TestMSMAndTMEGridPotentialsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 40, box)
	s := New(params(1.2, 8), box)
	tme := core.New(core.Params{
		Alpha: s.Prm.Alpha, Rc: s.Prm.Rc, Order: 6,
		N: s.Prm.N, Levels: 1, M: 10, Gc: 8,
	}, box)
	pm := s.MeshPotential(pos, q)
	pt := tme.MeshPotential(pos, q)
	var maxAbs, maxDiff float64
	for i := range pm.Data {
		if a := math.Abs(pm.Data[i]); a > maxAbs {
			maxAbs = a
		}
		if d := math.Abs(pm.Data[i] - pt.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3*maxAbs {
		t.Errorf("mesh potentials differ: max |Δ| = %g vs scale %g", maxDiff, maxAbs)
	}
}

func TestMSMForceGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 10, box)
	s := New(params(1.2, 6), box)
	f := make([]vec.V, len(pos))
	s.LongRange(pos, q, f)
	const h = 2e-6
	for _, i := range []int{0, 9} {
		for axis := 0; axis < 3; axis++ {
			p0 := pos[i]
			pos[i][axis] = p0[axis] + h
			ep := s.LongRange(pos, q, nil)
			pos[i][axis] = p0[axis] - h
			em := s.LongRange(pos, q, nil)
			pos[i] = p0
			fd := -(ep - em) / (2 * h)
			if math.Abs(f[i][axis]-fd) > 1e-4*math.Max(1, math.Abs(fd)) {
				t.Errorf("atom %d axis %d: F %.8f vs −dE/dx %.8f", i, axis, f[i][axis], fd)
			}
		}
	}
}

func BenchmarkMSMLongRange(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 1000, box)
	s := New(params(1.2, 8), box)
	f := make([]vec.V, len(pos))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LongRange(pos, q, f)
	}
}
