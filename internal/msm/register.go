package msm

import (
	"tme4a/internal/solver"
	"tme4a/internal/vec"
)

// init registers B-spline MSM under "msm". The registry subset ignores the
// TME-only fields of the shared config (M, Kernel).
func init() {
	solver.Register("msm",
		"B-spline multilevel summation: real-space level hierarchy comparator, SPME top solve",
		func(cfg solver.Config, box vec.Box) (solver.Solver, error) {
			prm := Params{
				Alpha:  cfg.Alpha,
				Rc:     cfg.Rc,
				Order:  cfg.Order,
				N:      cfg.N,
				Levels: cfg.Levels,
				Gc:     cfg.Gc,
			}
			if err := prm.Validate(); err != nil {
				return nil, err
			}
			return New(prm, box), nil
		})
}
