//go:build race

package msm

// raceEnabled disables allocation-count assertions under the race
// detector, whose instrumentation allocates on sync.Pool operations.
const raceEnabled = true
