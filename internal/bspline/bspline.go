// Package bspline implements the cardinal B-spline machinery that underlies
// SPME, B-spline MSM and the TME method: pointwise evaluation of the central
// B-spline M_p and its derivative, particle–mesh spreading weights, the
// two-scale coefficients J used for restriction/prolongation, the
// fundamental-spline inverse filter ω (and ω′ = ω∗ω) used to build grid
// kernels, and the Euler-spline factors |b(m)|² of the SPME lattice Green
// function.
//
// Conventions follow the paper: M_p is the *central* B-spline of even order
// p with support (−p/2, p/2), normalised to ∫M_p = 1 and partition of unity
// Σ_m M_p(x−m) = 1.
package bspline

import (
	"fmt"
	"math"

	"tme4a/internal/fft"
)

// Eval returns the central B-spline M_p(x). p must be ≥ 2.
func Eval(p int, x float64) float64 {
	return cardinal(p, x+float64(p)/2)
}

// Deriv returns dM_p/dx.
func Deriv(p int, x float64) float64 {
	t := x + float64(p)/2
	return cardinal(p-1, t) - cardinal(p-1, t-1)
}

// cardinal evaluates the cardinal B-spline B_p with support [0, p] by the
// Cox–de Boor recurrence. It is exact but O(p²); hot paths use Weights.
// The recursion bottoms out at the continuous triangle B_2 rather than the
// half-open indicator B_1, so evaluation exactly at knots is well defined.
func cardinal(p int, t float64) float64 {
	if t <= 0 || t >= float64(p) {
		return 0
	}
	switch p {
	case 1:
		return 1
	case 2:
		return 1 - math.Abs(t-1)
	}
	return (t*cardinal(p-1, t) + (float64(p)-t)*cardinal(p-1, t-1)) / float64(p-1)
}

// Weights computes the p particle–mesh spreading weights of a particle at
// normalised coordinate u (grid units). It returns m0, the lowest grid index
// with nonzero weight; w[k] = M_p(u − (m0+k)) and dw[k] = M_p'(u − (m0+k))
// for k = 0..p−1. w and dw must each have length ≥ p.
//
// This is the O(p²) single-pass recurrence used by SPME implementations;
// for p = 6 it evaluates M_p and M_p' on all six grid points at once, the
// same computation the LRU pipeline performs in hardware.
func Weights(p int, u float64, w, dw []float64) (m0 int) {
	fl := math.Floor(u)
	frac := u - fl
	m0 = Base(p, u)

	// v[j] holds B_k(frac + j) for the current order k.
	var vbuf [16]float64
	v := vbuf[:p]
	v[0] = 1 // B_1(frac) = 1 for frac in [0,1)
	for k := 1; k < p-1; k++ {
		// Raise order: B_{k+1}(frac+j) from B_k.
		v[k] = 0
		for j := k; j >= 0; j-- {
			var lower float64
			if j > 0 {
				lower = v[j-1]
			}
			t := frac + float64(j)
			v[j] = (t*v[j] + (float64(k+1)-t)*lower) / float64(k)
		}
	}
	// v now holds B_{p-1}(frac+j), j = 0..p-2. Derivatives first:
	// M_p'(u-m_k) = B_{p-1}(frac+p-1-k) - B_{p-1}(frac+p-2-k).
	for k := 0; k < p; k++ {
		var a, b float64
		if j := p - 1 - k; j >= 0 && j <= p-2 {
			a = v[j]
		}
		if j := p - 2 - k; j >= 0 && j <= p-2 {
			b = v[j]
		}
		dw[k] = a - b
	}
	// Final order raise to B_p.
	v2 := vbuf[:p]
	v2[p-1] = 0
	for j := p - 1; j >= 0; j-- {
		var lower float64
		if j > 0 {
			lower = v[j-1]
		}
		var cur float64
		if j <= p-2 {
			cur = v[j]
		}
		t := frac + float64(j)
		v2[j] = (t*cur + (float64(p)-t)*lower) / float64(p-1)
	}
	// w[k] = M_p(u-m_k) = B_p(frac + p-1-k).
	for k := 0; k < p; k++ {
		w[k] = v2[p-1-k]
	}
	return m0
}

// Base returns the lowest grid index with nonzero order-p spreading weight
// for a particle at normalised coordinate u — the m0 that Weights returns,
// without computing the weights. Spatially-decomposed scatter loops
// (pmesh.AssignTo) use it to reject particles whose support misses a
// worker's slab before paying for the full weight recurrence.
func Base(p int, u float64) int {
	return int(math.Floor(u)) - p/2 + 1
}

// TwoScale returns the two-scale relation coefficients J_m of the order-p
// central B-spline, indexed J[m+p/2] for m = −p/2..p/2 (paper Sec. III.A):
//
//	M_p(x) = Σ_m J_m M_p(2x − m),  J_m = 2^{1−p} C(p, p/2+|m|).
//
// p must be even.
func TwoScale(p int) []float64 {
	if p%2 != 0 {
		panic("bspline: TwoScale requires even order")
	}
	J := make([]float64, p+1)
	scale := math.Pow(2, float64(1-p))
	for m := -p / 2; m <= p/2; m++ {
		J[m+p/2] = scale * float64(binom(p, p/2+abs(m)))
	}
	return J
}

// IntegerSamples returns M_p(k) for k = −p/2..p/2, indexed [k+p/2].
func IntegerSamples(p int) []float64 {
	s := make([]float64, p+1)
	for k := -p / 2; k <= p/2; k++ {
		s[k+p/2] = Eval(p, float64(k))
	}
	return s
}

// omegaRing is the ring length used for the spectral inversion that yields
// the fundamental-spline filter ω. The inverse filter decays geometrically
// (ratio ≈ 0.43 for p = 6), so a 512-ring leaves wrap-around error far below
// double-precision round-off.
const omegaRing = 512

// Omega returns the fundamental-spline interpolation filter ω of order p,
// defined by Σ_m ω_m M_p(n−m) = δ_{n0}, truncated to |m| ≤ maxM and indexed
// ω[m+maxM]. It is computed by spectral inversion of the Euler–Frobenius
// trigonometric polynomial E_p(θ) = Σ_k M_p(k) e^{−ikθ}.
func Omega(p, maxM int) []float64 {
	return invertSpectrum(p, maxM, 1)
}

// OmegaSq returns ω′ = ω∗ω truncated to |m| ≤ maxM, indexed ω′[m+maxM].
// ω′ converts samples of a kernel into the coefficients of its
// "spline-on-both-sides" representation (paper Eq. (8), Hardy et al. Table I).
func OmegaSq(p, maxM int) []float64 {
	return invertSpectrum(p, maxM, 2)
}

func invertSpectrum(p, maxM, power int) []float64 {
	if maxM >= omegaRing/2 {
		panic("bspline: maxM too large for spectral ring")
	}
	samples := IntegerSamples(p)
	plan := fft.NewPlan(omegaRing)
	spec := make([]complex128, omegaRing)
	for k := -p / 2; k <= p/2; k++ {
		idx := ((k % omegaRing) + omegaRing) % omegaRing
		spec[idx] += complex(samples[k+p/2], 0)
	}
	plan.Forward(spec)
	for i := range spec {
		e := spec[i]
		for q := 1; q < power; q++ {
			e *= spec[i]
		}
		spec[i] = 1 / e
	}
	// The spectrum of E_p is real and even, so no conjugation subtleties.
	plan.Inverse(spec)
	out := make([]float64, 2*maxM+1)
	for m := -maxM; m <= maxM; m++ {
		idx := ((m % omegaRing) + omegaRing) % omegaRing
		out[m+maxM] = real(spec[idx])
	}
	return out
}

// GridKernel returns the coefficients G_m(a) of the B-spline representation
// of the 1D Gaussian e^{−a²(x−x')²} (paper Eq. (8)): G(a) = g(a) ∗ ω′ with
// g_m = e^{−a²m²}. The result is truncated to |m| ≤ maxM, indexed [m+maxM].
func GridKernel(p int, a float64, maxM int) []float64 {
	if a <= 0 {
		panic(fmt.Sprintf("bspline: GridKernel needs a > 0, got %g", a))
	}
	// Range where the Gaussian samples are above double-precision noise.
	jmax := int(math.Ceil(6.8/a)) + 1
	wp := OmegaSq(p, maxM+jmax)
	half := maxM + jmax
	out := make([]float64, 2*maxM+1)
	for m := -maxM; m <= maxM; m++ {
		var s float64
		for j := -jmax; j <= jmax; j++ {
			// g_j * ω′_{m−j}; ω′ index bounds are ±(maxM+jmax).
			k := m - j
			if k < -half || k > half {
				continue
			}
			s += math.Exp(-a*a*float64(j*j)) * wp[k+half]
		}
		out[m+maxM] = s
	}
	return out
}

// EulerFactorsSq returns |b(m)|² for m = 0..N−1, the squared modulus of the
// SPME Euler-spline factor of order p on an N-point grid (Essmann et al.).
// The SPME lattice Green function multiplies |b_x|²|b_y|²|b_z|² because the
// B-spline approximation enters on both the charge-assignment and the
// back-interpolation sides.
func EulerFactorsSq(p, n int) []float64 {
	out := make([]float64, n)
	for m := 0; m < n; m++ {
		var dr, di float64
		for k := 0; k <= p-2; k++ {
			theta := 2 * math.Pi * float64(m) * float64(k) / float64(n)
			mp := Eval(p, float64(k+1)-float64(p)/2) // M_p(k+1) in cardinal indexing
			dr += mp * math.Cos(theta)
			di += mp * math.Sin(theta)
		}
		d2 := dr*dr + di*di
		if d2 < 1e-30 {
			// Interpolation blind spot (odd orders at the Nyquist mode);
			// the corresponding mode is dropped.
			out[m] = 0
			continue
		}
		out[m] = 1 / d2
	}
	return out
}

func binom(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := int64(1)
	for i := 1; i <= k; i++ {
		r = r * int64(n-k+i) / int64(i)
	}
	return r
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
