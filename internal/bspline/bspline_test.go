package bspline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var orders = []int{2, 4, 6, 8}

func TestEvalSupportAndSymmetry(t *testing.T) {
	for _, p := range orders {
		half := float64(p) / 2
		if Eval(p, half) != 0 || Eval(p, -half) != 0 {
			t.Errorf("p=%d: M_p should vanish at ±p/2", p)
		}
		if Eval(p, half+0.5) != 0 {
			t.Errorf("p=%d: M_p should vanish outside support", p)
		}
		for _, x := range []float64{0.1, 0.7, 1.3, 2.4} {
			if math.Abs(Eval(p, x)-Eval(p, -x)) > 1e-15 {
				t.Errorf("p=%d: M_p not even at x=%g", p, x)
			}
		}
	}
}

func TestEvalKnownValues(t *testing.T) {
	// M_2 is the unit triangle.
	if math.Abs(Eval(2, 0)-1) > 1e-15 {
		t.Errorf("M_2(0) = %g, want 1", Eval(2, 0))
	}
	if math.Abs(Eval(2, 0.5)-0.5) > 1e-15 {
		t.Errorf("M_2(0.5) = %g, want 0.5", Eval(2, 0.5))
	}
	// M_4(0) = 2/3, M_4(±1) = 1/6 (cubic B-spline central values).
	if math.Abs(Eval(4, 0)-2.0/3.0) > 1e-15 {
		t.Errorf("M_4(0) = %g, want 2/3", Eval(4, 0))
	}
	if math.Abs(Eval(4, 1)-1.0/6.0) > 1e-15 {
		t.Errorf("M_4(1) = %g, want 1/6", Eval(4, 1))
	}
	// M_6 at integers: 1/120, 26/120, 66/120 (quintic central values).
	want := []float64{1.0 / 120, 26.0 / 120, 66.0 / 120}
	for k, w := range want {
		got := Eval(6, float64(2-k))
		if math.Abs(got-w) > 1e-15 {
			t.Errorf("M_6(%d) = %.16f, want %.16f", 2-k, got, w)
		}
	}
}

func TestPartitionOfUnity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range orders {
		f := func(xr float64) bool {
			x := math.Mod(xr, 50)
			var s float64
			for m := int(math.Floor(x)) - p; m <= int(math.Ceil(x))+p; m++ {
				s += Eval(p, x-float64(m))
			}
			return math.Abs(s-1) < 1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
			t.Errorf("p=%d: partition of unity violated: %v", p, err)
		}
	}
}

func TestUnitIntegral(t *testing.T) {
	for _, p := range orders {
		const n = 20000
		half := float64(p) / 2
		h := 2 * half / n
		var s float64
		for i := 0; i < n; i++ {
			s += Eval(p, -half+(float64(i)+0.5)*h) * h
		}
		if math.Abs(s-1) > 1e-6 {
			t.Errorf("p=%d: ∫M_p = %g, want 1", p, s)
		}
	}
}

func TestDerivMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range orders {
		for trial := 0; trial < 40; trial++ {
			x := (rng.Float64() - 0.5) * float64(p)
			const h = 1e-6
			fd := (Eval(p, x+h) - Eval(p, x-h)) / (2 * h)
			if math.Abs(Deriv(p, x)-fd) > 1e-6 {
				t.Errorf("p=%d x=%g: Deriv=%g fd=%g", p, x, Deriv(p, x), fd)
			}
		}
	}
}

func TestWeightsMatchEval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := make([]float64, 8)
	dw := make([]float64, 8)
	for _, p := range orders {
		for trial := 0; trial < 100; trial++ {
			u := (rng.Float64() - 0.5) * 40
			m0 := Weights(p, u, w[:p], dw[:p])
			for k := 0; k < p; k++ {
				x := u - float64(m0+k)
				if math.Abs(w[k]-Eval(p, x)) > 1e-13 {
					t.Fatalf("p=%d u=%g k=%d: weight %g, want M_p(%g)=%g",
						p, u, k, w[k], x, Eval(p, x))
				}
				if math.Abs(dw[k]-Deriv(p, x)) > 1e-13 {
					t.Fatalf("p=%d u=%g k=%d: dweight %g, want M_p'(%g)=%g",
						p, u, k, dw[k], x, Deriv(p, x))
				}
			}
		}
	}
}

func TestWeightsSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, p := range orders {
		f := func(ur float64) bool {
			u := math.Mod(ur, 100)
			w := make([]float64, p)
			dw := make([]float64, p)
			Weights(p, u, w, dw)
			var sw, sdw float64
			for k := 0; k < p; k++ {
				sw += w[k]
				sdw += dw[k]
			}
			// Weights sum to 1 (partition of unity), derivatives to 0.
			return math.Abs(sw-1) < 1e-12 && math.Abs(sdw) < 1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
	}
}

func TestTwoScaleRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, p := range orders {
		J := TwoScale(p)
		// Check coefficients sum to 2 (so restriction preserves total charge
		// per axis up to the downsampling convention).
		var s float64
		for _, j := range J {
			s += j
		}
		if math.Abs(s-2) > 1e-14 {
			t.Errorf("p=%d: ΣJ = %g, want 2", p, s)
		}
		// M_p(x) = Σ_m J_m M_p(2x−m) pointwise.
		for trial := 0; trial < 50; trial++ {
			x := (rng.Float64() - 0.5) * float64(p+1)
			var rhs float64
			for m := -p / 2; m <= p/2; m++ {
				rhs += J[m+p/2] * Eval(p, 2*x-float64(m))
			}
			if math.Abs(Eval(p, x)-rhs) > 1e-13 {
				t.Errorf("p=%d x=%g: two-scale violated: %g vs %g", p, x, Eval(p, x), rhs)
			}
		}
	}
}

func TestTwoScaleKnownP6(t *testing.T) {
	J := TwoScale(6)
	want := []float64{1.0 / 32, 6.0 / 32, 15.0 / 32, 20.0 / 32, 15.0 / 32, 6.0 / 32, 1.0 / 32}
	for i := range want {
		if math.Abs(J[i]-want[i]) > 1e-15 {
			t.Errorf("J[%d] = %g, want %g", i, J[i], want[i])
		}
	}
}

func TestOmegaInterpolationIdentity(t *testing.T) {
	for _, p := range []int{4, 6} {
		maxM := 40
		om := Omega(p, maxM)
		// Σ_m ω_m M_p(n−m) should be δ_{n0}.
		for n := -5; n <= 5; n++ {
			var s float64
			for m := -maxM; m <= maxM; m++ {
				s += om[m+maxM] * Eval(p, float64(n-m))
			}
			want := 0.0
			if n == 0 {
				want = 1
			}
			if math.Abs(s-want) > 1e-12 {
				t.Errorf("p=%d n=%d: Σω M = %g, want %g", p, n, s, want)
			}
		}
	}
}

func TestOmegaSqIsOmegaConvolved(t *testing.T) {
	p := 6
	maxM := 20
	big := 60
	om := Omega(p, big)
	os := OmegaSq(p, maxM)
	for m := -maxM; m <= maxM; m++ {
		var s float64
		for k := -big; k <= big; k++ {
			j := m - k
			if j < -big || j > big {
				continue
			}
			s += om[k+big] * om[j+big]
		}
		if math.Abs(os[m+maxM]-s) > 1e-11 {
			t.Errorf("m=%d: ω′=%g, ω∗ω=%g", m, os[m+maxM], s)
		}
	}
}

// TestOmegaSqDefiningProperty verifies ω′ ∗ m_p ∗ m_p = δ, where m_p is the
// sequence of integer samples of M_p and ∗ is discrete convolution — the
// property that makes ω′ the "double-sided" inverse filter of Eq. (8).
func TestOmegaSqDefiningProperty(t *testing.T) {
	for _, p := range []int{4, 6} {
		maxM := 50
		os := OmegaSq(p, maxM)
		mp := IntegerSamples(p) // index k+p/2, k=-p/2..p/2
		// mm = m_p ∗ m_p, support |k| ≤ p.
		mm := make([]float64, 2*p+1)
		for i := -p / 2; i <= p/2; i++ {
			for j := -p / 2; j <= p/2; j++ {
				mm[i+j+p] += mp[i+p/2] * mp[j+p/2]
			}
		}
		for n := -4; n <= 4; n++ {
			var s float64
			for m := -maxM; m <= maxM; m++ {
				k := n - m
				if k < -p || k > p {
					continue
				}
				s += os[m+maxM] * mm[k+p]
			}
			want := 0.0
			if n == 0 {
				want = 1
			}
			if math.Abs(s-want) > 1e-11 {
				t.Errorf("p=%d n=%d: (ω′∗m∗m)(n) = %g, want %g", p, n, s, want)
			}
		}
	}
}

// TestGridKernelReconstructsGaussian validates paper Eq. (8): the kernel
// coefficients G_m(a) reproduce the Gaussian e^{−a²(x−x′)²} through the
// double B-spline expansion. The representation error is the order-p
// fundamental-spline interpolation error of a width-1/a Gaussian sampled on
// a unit grid, which scales as a^p; we assert both the measured error bound
// and the scaling, and that the representation is exact at integer points
// (where it reduces to interpolation).
func TestGridKernelReconstructsGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := 6
	reconstruct := func(G []float64, maxM int, x, xp float64) float64 {
		var got float64
		for m := int(x) - p; m <= int(x)+p; m++ {
			mx := Eval(p, x-float64(m))
			if mx == 0 {
				continue
			}
			for mp := int(xp) - p; mp <= int(xp)+p; mp++ {
				mxp := Eval(p, xp-float64(mp))
				if mxp == 0 {
					continue
				}
				d := m - mp
				if d < -maxM || d > maxM {
					continue
				}
				got += G[d+maxM] * mx * mxp
			}
		}
		return got
	}
	var prevMax float64 = -1
	for _, a := range []float64{1.0, 0.7, 0.5, 0.3} { // decreasing width parameter
		maxM := 24
		G := GridKernel(p, a, maxM)
		var maxErr float64
		for trial := 0; trial < 400; trial++ {
			x := rng.Float64() * 4
			xp := rng.Float64() * 4
			want := math.Exp(-a * a * (x - xp) * (x - xp))
			if e := math.Abs(reconstruct(G, maxM, x, xp) - want); e > maxErr {
				maxErr = e
			}
		}
		// Empirical bound ~0.06·a^6 (+ floor from kernel truncation).
		if bound := 0.12*math.Pow(a, 6) + 5e-5; maxErr > bound {
			t.Errorf("a=%g: max reconstruction error %g exceeds %g", a, maxErr, bound)
		}
		if prevMax >= 0 && maxErr > prevMax {
			t.Errorf("a=%g: error %g did not decrease with narrower a (prev %g)", a, maxErr, prevMax)
		}
		prevMax = maxErr
		// Exactness (to interpolation accuracy) at integer sample pairs.
		for xi := 0; xi <= 3; xi++ {
			for xj := 0; xj <= 3; xj++ {
				want := math.Exp(-a * a * float64((xi-xj)*(xi-xj)))
				got := reconstruct(G, maxM, float64(xi), float64(xj))
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("a=%g integers (%d,%d): got %.12f want %.12f", a, xi, xj, got, want)
				}
			}
		}
	}
}

func TestEulerFactorsSqDC(t *testing.T) {
	for _, p := range orders {
		b := EulerFactorsSq(p, 32)
		// At m=0 the denominator is Σ_k M_p(k+1) = 1 (partition of unity).
		if math.Abs(b[0]-1) > 1e-12 {
			t.Errorf("p=%d: |b(0)|² = %g, want 1", p, b[0])
		}
		// Symmetry b(m) = b(N−m).
		for m := 1; m < 16; m++ {
			if math.Abs(b[m]-b[32-m]) > 1e-9*math.Abs(b[m]) {
				t.Errorf("p=%d m=%d: Euler factors not symmetric", p, m)
			}
		}
	}
}

func BenchmarkWeightsP6(b *testing.B) {
	w := make([]float64, 6)
	dw := make([]float64, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Weights(6, 3.7+float64(i%10)*0.1, w, dw)
	}
}
