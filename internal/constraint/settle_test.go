package constraint

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/units"
	"tme4a/internal/vec"
)

func tip3p() *Water {
	return NewWater(units.TIP3PROH, units.TIP3PAngleHOH, units.MassO, units.MassH)
}

// canonicalWater returns positions satisfying the rigid geometry, rotated
// by random Euler angles and translated.
func canonicalWater(w *Water, rng *rand.Rand) (a, b, c vec.V) {
	a = vec.V{0, w.ra, 0}
	b = vec.V{-w.rc, -w.rb, 0}
	c = vec.V{w.rc, -w.rb, 0}
	rot := randomRotation(rng)
	tr := vec.V{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	a = rot(a).Add(tr)
	b = rot(b).Add(tr)
	c = rot(c).Add(tr)
	return a, b, c
}

// smallRotation returns a rotation by at most maxAngle radians about a
// random axis (Rodrigues formula).
func smallRotation(rng *rand.Rand, maxAngle float64) func(vec.V) vec.V {
	axis := vec.V{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Normalize()
	ang := (rng.Float64()*2 - 1) * maxAngle
	sin, cos := math.Sin(ang), math.Cos(ang)
	return func(v vec.V) vec.V {
		return v.Scale(cos).Add(axis.Cross(v).Scale(sin)).Add(axis.Scale(axis.Dot(v) * (1 - cos)))
	}
}

func randomRotation(rng *rand.Rand) func(vec.V) vec.V {
	// Rotation from a random unit quaternion.
	var q [4]float64
	var n float64
	for i := range q {
		q[i] = rng.NormFloat64()
		n += q[i] * q[i]
	}
	n = math.Sqrt(n)
	for i := range q {
		q[i] /= n
	}
	w, x, y, z := q[0], q[1], q[2], q[3]
	return func(v vec.V) vec.V {
		return vec.V{
			(1-2*(y*y+z*z))*v[0] + 2*(x*y-w*z)*v[1] + 2*(x*z+w*y)*v[2],
			2*(x*y+w*z)*v[0] + (1-2*(x*x+z*z))*v[1] + 2*(y*z-w*x)*v[2],
			2*(x*z-w*y)*v[0] + 2*(y*z+w*x)*v[1] + (1-2*(x*x+y*y))*v[2],
		}
	}
}

func checkGeometry(t *testing.T, w *Water, a, b, c vec.V, tol float64) {
	t.Helper()
	if d := a.Sub(b).Norm(); math.Abs(d-w.ROH) > tol {
		t.Errorf("O-H1 distance %.12f, want %.12f", d, w.ROH)
	}
	if d := a.Sub(c).Norm(); math.Abs(d-w.ROH) > tol {
		t.Errorf("O-H2 distance %.12f, want %.12f", d, w.ROH)
	}
	if d := b.Sub(c).Norm(); math.Abs(d-w.RHH()) > tol {
		t.Errorf("H-H distance %.12f, want %.12f", d, w.RHH())
	}
}

func TestCanonicalGeometry(t *testing.T) {
	w := tip3p()
	rng := rand.New(rand.NewSource(1))
	a, b, c := canonicalWater(w, rng)
	checkGeometry(t, w, a, b, c, 1e-12)
	// COM at the translation point by construction of ra, rb.
	com := a.Scale(w.MO).Add(b.Scale(w.MH)).Add(c.Scale(w.MH)).Scale(1 / w.mTot)
	_ = com
}

func TestSettleRestoresConstraints(t *testing.T) {
	w := tip3p()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		a0, b0, c0 := canonicalWater(w, rng)
		// Perturb like an MD drift step (≤ a few pm).
		d := 0.004
		a1 := a0.Add(vec.V{rng.NormFloat64() * d, rng.NormFloat64() * d, rng.NormFloat64() * d})
		b1 := b0.Add(vec.V{rng.NormFloat64() * d, rng.NormFloat64() * d, rng.NormFloat64() * d})
		c1 := c0.Add(vec.V{rng.NormFloat64() * d, rng.NormFloat64() * d, rng.NormFloat64() * d})
		a, b, c := w.Settle(a0, b0, c0, a1, b1, c1)
		checkGeometry(t, w, a, b, c, 1e-9)

		// COM of the unconstrained proposal is preserved.
		com1 := a1.Scale(w.MO).Add(b1.Scale(w.MH)).Add(c1.Scale(w.MH)).Scale(1 / w.mTot)
		com := a.Scale(w.MO).Add(b.Scale(w.MH)).Add(c.Scale(w.MH)).Scale(1 / w.mTot)
		if com.Sub(com1).Norm() > 1e-12 {
			t.Fatalf("trial %d: SETTLE moved the centre of mass by %g", trial, com.Sub(com1).Norm())
		}
	}
}

func TestSettleIdempotentOnRigidMotion(t *testing.T) {
	// If the proposal is itself a rigid-body motion of the reference, the
	// constrained result equals the proposal.
	// SETTLE's analytic root choice selects the constrained configuration
	// nearest the reference, so exact recovery holds for the moderate
	// per-step rotations MD produces (≲ 0.2 rad at 1–2 fs), not arbitrary
	// reorientations.
	w := tip3p()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		a0, b0, c0 := canonicalWater(w, rng)
		rot := smallRotation(rng, 0.15)
		tr := vec.V{0.01 * rng.NormFloat64(), 0.01 * rng.NormFloat64(), 0.01 * rng.NormFloat64()}
		com := a0.Scale(w.MO).Add(b0.Scale(w.MH)).Add(c0.Scale(w.MH)).Scale(1 / w.mTot)
		a1 := rot(a0.Sub(com)).Add(com).Add(tr)
		b1 := rot(b0.Sub(com)).Add(com).Add(tr)
		c1 := rot(c0.Sub(com)).Add(com).Add(tr)
		a, b, c := w.Settle(a0, b0, c0, a1, b1, c1)
		if a.Sub(a1).Norm() > 1e-9 || b.Sub(b1).Norm() > 1e-9 || c.Sub(c1).Norm() > 1e-9 {
			t.Fatalf("trial %d: rigid proposal was altered: Δ=(%g,%g,%g)",
				trial, a.Sub(a1).Norm(), b.Sub(b1).Norm(), c.Sub(c1).Norm())
		}
	}
}

func TestSettleMatchesShake(t *testing.T) {
	w := tip3p()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		a0, b0, c0 := canonicalWater(w, rng)
		d := 0.002
		a1 := a0.Add(vec.V{rng.NormFloat64() * d, rng.NormFloat64() * d, rng.NormFloat64() * d})
		b1 := b0.Add(vec.V{rng.NormFloat64() * d, rng.NormFloat64() * d, rng.NormFloat64() * d})
		c1 := c0.Add(vec.V{rng.NormFloat64() * d, rng.NormFloat64() * d, rng.NormFloat64() * d})
		sa, sb, sc := w.Settle(a0, b0, c0, a1, b1, c1)
		ka, kb, kc, _ := w.Shake(a0, b0, c0, a1, b1, c1, 1e-14, 500)
		// Both solutions satisfy the constraints; for small displacements
		// they coincide to high order.
		if sa.Sub(ka).Norm() > 1e-6 || sb.Sub(kb).Norm() > 1e-6 || sc.Sub(kc).Norm() > 1e-6 {
			t.Fatalf("trial %d: SETTLE and SHAKE disagree: %g %g %g",
				trial, sa.Sub(ka).Norm(), sb.Sub(kb).Norm(), sc.Sub(kc).Norm())
		}
	}
}

func TestSettleVelocities(t *testing.T) {
	w := tip3p()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		a, b, c := canonicalWater(w, rng)
		va := vec.V{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		vb := vec.V{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		vc := vec.V{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		p0 := va.Scale(w.MO).Add(vb.Scale(w.MH)).Add(vc.Scale(w.MH))
		w.SettleVelocities(a, b, c, &va, &vb, &vc)
		// Bond-direction relative velocities vanish.
		checkZero := func(vi, vj vec.V, ri, rj vec.V, name string) {
			e := ri.Sub(rj).Normalize()
			if v := vi.Sub(vj).Dot(e); math.Abs(v) > 1e-10 {
				t.Fatalf("trial %d: residual %s bond velocity %g", trial, name, v)
			}
		}
		checkZero(va, vb, a, b, "O-H1")
		checkZero(va, vc, a, c, "O-H2")
		checkZero(vb, vc, b, c, "H-H")
		// Linear momentum preserved.
		p1 := va.Scale(w.MO).Add(vb.Scale(w.MH)).Add(vc.Scale(w.MH))
		if p1.Sub(p0).Norm() > 1e-10 {
			t.Fatalf("trial %d: momentum changed by %v", trial, p1.Sub(p0))
		}
	}
}

func BenchmarkSettle(b *testing.B) {
	w := tip3p()
	rng := rand.New(rand.NewSource(1))
	a0, b0, c0 := canonicalWater(w, rng)
	a1 := a0.Add(vec.V{0.001, -0.002, 0.0015})
	b1 := b0.Add(vec.V{-0.001, 0.001, 0.002})
	c1 := c0.Add(vec.V{0.002, 0.0005, -0.001})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Settle(a0, b0, c0, a1, b1, c1)
	}
}
