// Package constraint implements holonomic constraints for rigid 3-site
// water: the analytic SETTLE algorithm of Miyamoto & Kollman (1992) for
// positions, an exact velocity-constraint solve, and an iterative SHAKE
// solver used for cross-validation and as a general fallback.
package constraint

import (
	"math"

	"tme4a/internal/vec"
)

// Water describes the rigid geometry of a 3-site water model.
type Water struct {
	ROH   float64 // O–H bond length (nm)
	Theta float64 // H–O–H angle (radians)
	MO    float64 // oxygen mass
	MH    float64 // hydrogen mass

	// Canonical-frame offsets derived from the geometry: the oxygen sits at
	// (0, ra), the hydrogens at (±rc, −rb), with the centre of mass at the
	// origin.
	ra, rb, rc float64
	rHH        float64
	mTot       float64
}

// NewWater precomputes the canonical geometry used by SETTLE.
func NewWater(roh, theta, mo, mh float64) *Water {
	w := &Water{ROH: roh, Theta: theta, MO: mo, MH: mh}
	w.rHH = 2 * roh * math.Sin(theta/2)
	h := roh * math.Cos(theta/2) // O-to-HH-midline distance
	w.mTot = mo + 2*mh
	w.ra = 2 * mh * h / w.mTot
	w.rb = h - w.ra
	w.rc = w.rHH / 2
	return w
}

// RHH returns the rigid H–H distance.
func (w *Water) RHH() float64 { return w.rHH }

// Settle constrains the proposed positions (a1, b1, c1) of one water
// molecule (O, H, H) to the rigid geometry, given reference positions
// (a0, b0, c0) that satisfy the constraints. It implements the analytic
// SETTLE rotation scheme; the constrained positions preserve the centre of
// mass of the proposal.
func (w *Water) Settle(a0, b0, c0, a1, b1, c1 vec.V) (a, b, c vec.V) {
	ra, rb, rc := w.ra, w.rb, w.rc

	// Reference molecule edges and the COM of the proposal.
	xb0 := b0.Sub(a0)
	xc0 := c0.Sub(a0)
	com := a1.Scale(w.MO).Add(b1.Scale(w.MH)).Add(c1.Scale(w.MH)).Scale(1 / w.mTot)
	xa1 := a1.Sub(com)
	xb1 := b1.Sub(com)
	xc1 := c1.Sub(com)

	// Orthonormal frame: z ⟂ old molecular plane, x along the projection
	// of the proposed oxygen.
	zax := xb0.Cross(xc0)
	xax := xa1.Cross(zax)
	yax := zax.Cross(xax)
	zax = zax.Normalize()
	xax = xax.Normalize()
	yax = yax.Normalize()

	toFrame := func(v vec.V) vec.V {
		return vec.V{v.Dot(xax), v.Dot(yax), v.Dot(zax)}
	}
	fromFrame := func(v vec.V) vec.V {
		return xax.Scale(v[0]).Add(yax.Scale(v[1])).Add(zax.Scale(v[2]))
	}

	b0d := toFrame(xb0)
	c0d := toFrame(xc0)
	a1d := toFrame(xa1)
	b1d := toFrame(xb1)
	c1d := toFrame(xc1)

	// φ: tilt of the symmetry axis out of plane; ψ: rocking of the H pair.
	sinphi := clamp(a1d[2] / ra)
	cosphi := math.Sqrt(1 - sinphi*sinphi)
	sinpsi := clamp((b1d[2] - c1d[2]) / (2 * rc * cosphi))
	cospsi := math.Sqrt(1 - sinpsi*sinpsi)

	ya2d := ra * cosphi
	xb2d := -rc * cospsi
	yb2d := -rb*cosphi - rc*sinpsi*sinphi
	yc2d := -rb*cosphi + rc*sinpsi*sinphi

	// θ: in-plane rotation fixed by angular-momentum matching against the
	// reference orientation.
	alpha := xb2d*(b0d[0]-c0d[0]) + b0d[1]*yb2d + c0d[1]*yc2d
	beta := xb2d*(c0d[1]-b0d[1]) + b0d[0]*yb2d + c0d[0]*yc2d
	gamma := b0d[0]*b1d[1] - b1d[0]*b0d[1] + c0d[0]*c1d[1] - c1d[0]*c0d[1]
	al2be2 := alpha*alpha + beta*beta
	sintheta := clamp((alpha*gamma - beta*math.Sqrt(math.Max(0, al2be2-gamma*gamma))) / al2be2)
	costheta := math.Sqrt(1 - sintheta2(sintheta))

	a3d := vec.V{-ya2d * sintheta, ya2d * costheta, a1d[2]}
	b3d := vec.V{
		xb2d*costheta - yb2d*sintheta,
		xb2d*sintheta + yb2d*costheta,
		b1d[2],
	}
	c3d := vec.V{
		-xb2d*costheta - yc2d*sintheta,
		-xb2d*sintheta + yc2d*costheta,
		c1d[2],
	}

	a = fromFrame(a3d).Add(com)
	b = fromFrame(b3d).Add(com)
	c = fromFrame(c3d).Add(com)
	return a, b, c
}

func sintheta2(s float64) float64 { return s * s }

func clamp(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}

// SettleVelocities removes the components of relative velocity along the
// three rigid bonds of a water whose positions already satisfy the
// constraints. It solves the exact 3×3 linear system for the constraint
// impulses (velocity constraints are linear, so one solve is exact — the
// velocity half of SETTLE).
func (w *Water) SettleVelocities(a, b, c vec.V, va, vb, vc *vec.V) {
	type bond struct {
		i, j int
		e    vec.V
	}
	pos := [3]vec.V{a, b, c}
	vel := [3]*vec.V{va, vb, vc}
	mass := [3]float64{w.MO, w.MH, w.MH}
	bonds := [3]bond{
		{0, 1, pos[0].Sub(pos[1]).Normalize()},
		{0, 2, pos[0].Sub(pos[2]).Normalize()},
		{1, 2, pos[1].Sub(pos[2]).Normalize()},
	}
	// A·λ = −g, where g_b = (v_i − v_j)·e_b and applying impulse λ_b adds
	// +λ_b e_b/m_i to v_i, −λ_b e_b/m_j to v_j.
	var A [3][3]float64
	var g [3]float64
	for bi, bb := range bonds {
		g[bi] = vel[bb.i].Sub(*vel[bb.j]).Dot(bb.e)
		for bj, ob := range bonds {
			var coef float64
			if bb.i == ob.i {
				coef += bb.e.Dot(ob.e) / mass[bb.i]
			}
			if bb.i == ob.j {
				coef -= bb.e.Dot(ob.e) / mass[bb.i]
			}
			if bb.j == ob.i {
				coef -= bb.e.Dot(ob.e) / mass[bb.j]
			}
			if bb.j == ob.j {
				coef += bb.e.Dot(ob.e) / mass[bb.j]
			}
			A[bi][bj] = coef
		}
	}
	lam := solve3(A, [3]float64{-g[0], -g[1], -g[2]})
	for bi, bb := range bonds {
		*vel[bb.i] = vel[bb.i].Add(bonds[bi].e.Scale(lam[bi] / mass[bb.i]))
		*vel[bb.j] = vel[bb.j].Sub(bonds[bi].e.Scale(lam[bi] / mass[bb.j]))
	}
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(a [3][3]float64, b [3]float64) [3]float64 {
	for col := 0; col < 3; col++ {
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for cc := col; cc < 3; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
			b[r] -= f * b[col]
		}
	}
	var x [3]float64
	for r := 2; r >= 0; r-- {
		s := b[r]
		for cc := r + 1; cc < 3; cc++ {
			s -= a[r][cc] * x[cc]
		}
		x[r] = s / a[r][r]
	}
	return x
}

// Shake iteratively constrains the proposed positions of one water to the
// rigid geometry (reference implementation used to cross-validate SETTLE).
// It returns the constrained positions and the number of iterations used.
func (w *Water) Shake(a0, b0, c0, a1, b1, c1 vec.V, tol float64, maxIter int) (a, b, c vec.V, iters int) {
	pos0 := [3]vec.V{a0, b0, c0}
	pos := [3]vec.V{a1, b1, c1}
	mass := [3]float64{w.MO, w.MH, w.MH}
	type cons struct {
		i, j int
		d2   float64
	}
	cs := [3]cons{
		{0, 1, w.ROH * w.ROH},
		{0, 2, w.ROH * w.ROH},
		{1, 2, w.rHH * w.rHH},
	}
	for iters = 0; iters < maxIter; iters++ {
		converged := true
		for _, cc := range cs {
			d := pos[cc.i].Sub(pos[cc.j])
			diff := d.Norm2() - cc.d2
			if math.Abs(diff) > tol*cc.d2 {
				converged = false
				ref := pos0[cc.i].Sub(pos0[cc.j])
				gk := diff / (2 * d.Dot(ref) * (1/mass[cc.i] + 1/mass[cc.j]))
				pos[cc.i] = pos[cc.i].Sub(ref.Scale(gk / mass[cc.i]))
				pos[cc.j] = pos[cc.j].Add(ref.Scale(gk / mass[cc.j]))
			}
		}
		if converged {
			break
		}
	}
	return pos[0], pos[1], pos[2], iters
}
