package analysis

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/vec"
)

// TestRDFIdealGasIsFlat: for uncorrelated uniform points g(r) ≈ 1.
func TestRDFIdealGasIsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(6)
	n := 4000
	pos := make([]vec.V, n)
	sites := make([]int, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*6, rng.Float64()*6, rng.Float64()*6)
		sites[i] = i
	}
	r := NewRDF(2.0, 40)
	r.AddFrame(box, pos, sites, sites)
	rs, g := r.G()
	for b := range rs {
		if rs[b] < 0.3 {
			continue // too few pairs per bin for statistics
		}
		if math.Abs(g[b]-1) > 0.15 {
			t.Errorf("ideal gas g(%.2f) = %.3f, want ~1", rs[b], g[b])
		}
	}
}

// TestRDFLatticePeaks: a simple cubic lattice has its first g(r) peak at
// the lattice constant.
func TestRDFLatticePeaks(t *testing.T) {
	const a = 0.5
	const side = 8
	box := vec.Cubic(side * a)
	var pos []vec.V
	var sites []int
	for z := 0; z < side; z++ {
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				sites = append(sites, len(pos))
				pos = append(pos, vec.New((float64(x)+0.5)*a, (float64(y)+0.5)*a, (float64(z)+0.5)*a))
			}
		}
	}
	r := NewRDF(1.2, 120)
	r.AddFrame(box, pos, sites, sites)
	peak, height := r.FirstPeak(0.2)
	if math.Abs(peak-a) > 0.02 {
		t.Errorf("lattice first peak at %.3f nm, want %.3f", peak, a)
	}
	if height < 5 {
		t.Errorf("lattice peak height %.1f suspiciously low", height)
	}
}

// TestRDFCrossSets: A–B RDF of two interleaved lattices peaks at the
// nearest A–B distance.
func TestRDFCrossSets(t *testing.T) {
	const a = 0.6
	const side = 6
	box := vec.Cubic(side * a)
	var pos []vec.V
	var sa, sb []int
	for z := 0; z < side; z++ {
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				sa = append(sa, len(pos))
				pos = append(pos, vec.New(float64(x)*a, float64(y)*a, float64(z)*a))
				sb = append(sb, len(pos))
				pos = append(pos, vec.New((float64(x)+0.5)*a, (float64(y)+0.5)*a, (float64(z)+0.5)*a))
			}
		}
	}
	r := NewRDF(1.0, 100)
	r.AddFrame(box, pos, sa, sb)
	peak, _ := r.FirstPeak(0.1)
	want := a * math.Sqrt(3) / 2 // body-centre distance
	if math.Abs(peak-want) > 0.02 {
		t.Errorf("cross peak at %.3f, want %.3f", peak, want)
	}
}

// TestMSDBallistic: particles moving at constant velocity have
// MSD = v²t², and the unwrapping must survive boundary crossings.
func TestMSDBallistic(t *testing.T) {
	box := vec.Cubic(2)
	n := 50
	rng := rand.New(rand.NewSource(2))
	pos := make([]vec.V, n)
	vel := make([]vec.V, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*2, rng.Float64()*2, rng.Float64()*2)
		vel[i] = vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	m := NewMSD(box, pos)
	const dt = 0.05
	var v2 float64
	for i := range vel {
		v2 += vel[i].Norm2()
	}
	v2 /= float64(n)
	for s := 1; s <= 40; s++ {
		for i := range pos {
			pos[i] = box.Wrap(pos[i].Add(vel[i].Scale(dt)))
		}
		m.AddFrame(pos)
		tNow := float64(s) * dt
		want := v2 * tNow * tNow
		got := m.Samples[len(m.Samples)-1]
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("step %d: MSD %.6f, want %.6f", s, got, want)
		}
	}
}

// TestMSDDiffusionSlope: a random walk's fitted D matches its step
// variance (MSD = 6Dt with D = var/(6·dt) per axis... D = σ²·3/(6·dt)).
func TestMSDDiffusionSlope(t *testing.T) {
	box := vec.Cubic(5)
	rng := rand.New(rand.NewSource(3))
	n := 400
	pos := make([]vec.V, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*5, rng.Float64()*5, rng.Float64()*5)
	}
	m := NewMSD(box, pos)
	const sigma = 0.02
	const dt = 1.0
	for s := 0; s < 200; s++ {
		for i := range pos {
			pos[i] = box.Wrap(pos[i].Add(vec.New(
				rng.NormFloat64()*sigma, rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)))
		}
		m.AddFrame(pos)
	}
	got := m.DiffusionCoefficient(dt)
	want := 3 * sigma * sigma / (6 * dt)
	if math.Abs(got-want)/want > 0.2 {
		t.Errorf("D = %.3e, want %.3e", got, want)
	}
}
