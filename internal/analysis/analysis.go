// Package analysis provides trajectory observables: radial distribution
// functions and mean-square displacements. The O–O g(r) of TIP3P water is
// the standard structural check that an MD stack produces a physical
// liquid (first peak near 0.28 nm), used by the analysis example to
// validate the whole engine end to end.
package analysis

import (
	"math"

	"tme4a/internal/celllist"
	"tme4a/internal/vec"
)

// RDF accumulates a radial distribution function between two site sets.
type RDF struct {
	RMax   float64
	Bins   int
	counts []float64
	frames int
	// density normalization accumulators
	nA, nB   int
	vol      float64
	sameSets bool
}

// NewRDF returns an accumulator with the given range and resolution.
func NewRDF(rmax float64, bins int) *RDF {
	return &RDF{RMax: rmax, Bins: bins, counts: make([]float64, bins)}
}

// AddFrame bins all A–B pairs within RMax for one configuration. Pass the
// same slice twice for a self-RDF (pairs are counted once and mirrored).
// Sites are indices into pos.
func (r *RDF) AddFrame(box vec.Box, pos []vec.V, sitesA, sitesB []int) {
	same := &sitesA[0] == &sitesB[0] && len(sitesA) == len(sitesB)
	r.sameSets = same
	r.nA, r.nB = len(sitesA), len(sitesB)
	r.vol = box.Volume()
	r.frames++
	dr := r.RMax / float64(r.Bins)

	// Use a cell list over the union for large site sets.
	if same {
		sub := make([]vec.V, len(sitesA))
		for i, s := range sitesA {
			sub[i] = pos[s]
		}
		cl := celllist.Build(box, r.RMax, sub)
		cl.ForEachPair(sub, func(i, j int, d vec.V, r2 float64) {
			b := int(math.Sqrt(r2) / dr)
			if b < r.Bins {
				r.counts[b] += 2 // each pair contributes to both sites
			}
		})
		return
	}
	for _, a := range sitesA {
		for _, b := range sitesB {
			d := box.MinImage(pos[a].Sub(pos[b]))
			rr := d.Norm()
			if rr >= r.RMax || rr == 0 {
				continue
			}
			r.counts[int(rr/dr)]++
		}
	}
}

// G returns the bin centres and g(r) values normalized against the ideal
// gas at the B-site density.
func (r *RDF) G() (rs, g []float64) {
	rs = make([]float64, r.Bins)
	g = make([]float64, r.Bins)
	if r.frames == 0 {
		return rs, g
	}
	dr := r.RMax / float64(r.Bins)
	densB := float64(r.nB) / r.vol
	for b := 0; b < r.Bins; b++ {
		rlo := float64(b) * dr
		rhi := rlo + dr
		shell := 4.0 / 3.0 * math.Pi * (rhi*rhi*rhi - rlo*rlo*rlo)
		rs[b] = rlo + dr/2
		ideal := densB * shell * float64(r.nA) * float64(r.frames)
		if ideal > 0 {
			g[b] = r.counts[b] / ideal
		}
	}
	return rs, g
}

// FirstPeak returns the position and height of the first maximum of g(r)
// above the given minimum radius (to skip the excluded-volume hole).
func (r *RDF) FirstPeak(rmin float64) (pos, height float64) {
	rs, g := r.G()
	for b := 1; b < r.Bins-1; b++ {
		if rs[b] < rmin {
			continue
		}
		if g[b] > height {
			height = g[b]
			pos = rs[b]
		}
		// Stop after the curve has clearly descended from the peak.
		if height > 0 && g[b] < height*0.7 {
			break
		}
	}
	return pos, height
}

// MSD accumulates mean-square displacements against a reference frame,
// tracking unwrapped coordinates across periodic boundaries.
type MSD struct {
	box     vec.Box
	ref     []vec.V
	prev    []vec.V
	unwrap  []vec.V
	Samples []float64 // MSD per recorded frame (nm²)
}

// NewMSD starts tracking from the given configuration.
func NewMSD(box vec.Box, pos []vec.V) *MSD {
	m := &MSD{
		box:    box,
		ref:    append([]vec.V(nil), pos...),
		prev:   append([]vec.V(nil), pos...),
		unwrap: append([]vec.V(nil), pos...),
	}
	return m
}

// AddFrame records the MSD of the new configuration. Frames must be close
// enough in time that no particle moved more than half a box between
// calls (always true at MD time steps).
func (m *MSD) AddFrame(pos []vec.V) {
	var sum float64
	for i := range pos {
		step := m.box.MinImage(pos[i].Sub(m.prev[i]))
		m.unwrap[i] = m.unwrap[i].Add(step)
		m.prev[i] = pos[i]
		sum += m.unwrap[i].Sub(m.ref[i]).Norm2()
	}
	m.Samples = append(m.Samples, sum/float64(len(pos)))
}

// DiffusionCoefficient estimates D from the last fraction of the MSD curve
// via MSD = 6·D·t (dt is the time between recorded frames, ps; D in
// nm²/ps).
func (m *MSD) DiffusionCoefficient(dt float64) float64 {
	n := len(m.Samples)
	if n < 4 {
		return 0
	}
	// Least-squares slope over the second half.
	lo := n / 2
	var st, sy, stt, sty float64
	cnt := 0.0
	for i := lo; i < n; i++ {
		t := float64(i+1) * dt
		st += t
		sy += m.Samples[i]
		stt += t * t
		sty += t * m.Samples[i]
		cnt++
	}
	slope := (cnt*sty - st*sy) / (cnt*stt - st*st)
	return slope / 6
}
