package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// schedown enforces single-goroutine state ownership, the discipline the
// serve tier's Scheduler is built on: a struct field annotated
// "//tme:owner <func>" (e.g. `//tme:owner Scheduler.loop` on the engine
// fields of serve.job) may only be MUTATED by the declared owner function
// and the functions it reaches over same-goroutine call edges. Everything
// else — an HTTP handler, a spawned helper goroutine, a constructor-time
// convenience that later grows into a race — must route the mutation
// through the owner's channel; channel sends are the one sanctioned
// cross-goroutine edge and are never flagged (they are not field writes).
//
// The annotation goes on the field line (or the line above) inside the
// struct declaration; a type-level doc annotation applies to every field
// of the struct. The owner is named relative to the declaring package:
// "Func" for a package function, "Type.Method" for a method. Reads are
// deliberately out of scope (snapshot-under-mutex reads are a different,
// legitimate discipline); so are writes reached through interface
// dispatch or function values, which the static graph cannot see — the
// race-detector tier remains the runtime backstop.
var schedownCheck = &Check{
	Name: "schedown",
	Doc:  "mutation of a //tme:owner field outside the owner goroutine's call tree",
	Run:  runSchedown,
}

// ownerDirective declares the single goroutine allowed to mutate a field.
const ownerDirective = "//tme:owner"

// parseOwnerDirective extracts the owner name — the first whitespace-
// separated token after the directive; anything further is prose.
func parseOwnerDirective(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, ownerDirective)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", true
	}
	return fields[0], true
}

// Owners lazily builds the program-wide //tme:owner index: annotated
// struct field -> resolved owner function.
func (prog *Program) Owners() map[*types.Var]*ownerInfo {
	if prog.owned != nil {
		return prog.owned
	}
	prog.owned = map[*types.Var]*ownerInfo{}
	seen := map[*Package]bool{}
	for _, node := range prog.nodes {
		if !seen[node.Pkg] {
			seen[node.Pkg] = true
			prog.collectOwners(node.Pkg)
		}
	}
	return prog.owned
}

// collectOwners scans one package's struct declarations for annotations.
func (prog *Program) collectOwners(p *Package) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gd, ok := n.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				return true
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				// A type-level annotation (on the type spec or the decl)
				// is the default owner for every field.
				typeOwner := ""
				typePos := ts.Pos()
				for _, cg := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					if name, pos, ok := ownerFromGroup(cg); ok {
						typeOwner, typePos = name, pos
					}
				}
				for _, field := range st.Fields.List {
					owner, pos := typeOwner, typePos
					for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
						if name, npos, ok := ownerFromGroup(cg); ok {
							owner, pos = name, npos
						}
					}
					if owner == "" {
						continue
					}
					info := &ownerInfo{name: owner, pos: pos, pkg: p, owner: p.resolveOwner(owner)}
					for _, name := range field.Names {
						if v, ok := p.Info.Defs[name].(*types.Var); ok {
							prog.owned[v] = info
						}
					}
				}
			}
			return true
		})
	}
}

// ownerFromGroup finds a //tme:owner directive in a comment group.
func ownerFromGroup(cg *ast.CommentGroup) (string, token.Pos, bool) {
	if cg == nil {
		return "", token.NoPos, false
	}
	for _, c := range cg.List {
		if name, ok := parseOwnerDirective(c.Text); ok {
			return name, c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// resolveOwner looks "Func" or "Type.Method" up in the package scope.
func (p *Package) resolveOwner(name string) *types.Func {
	if p.Pkg == nil {
		return nil
	}
	typeName, method, isMethod := strings.Cut(name, ".")
	if !isMethod {
		if fn, ok := p.Pkg.Scope().Lookup(name).(*types.Func); ok {
			return origin(fn)
		}
		return nil
	}
	tn, ok := p.Pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, p.Pkg, method)
	if fn, ok := obj.(*types.Func); ok {
		return origin(fn)
	}
	return nil
}

func runSchedown(p *Package) []Diagnostic {
	prog := p.Prog
	if prog == nil {
		return nil
	}
	owned := prog.Owners()
	var diags []Diagnostic

	// Unresolvable annotations declared in this package are findings
	// themselves: a typo'd owner silently disables the whole protection.
	reported := map[*ownerInfo]bool{}
	for _, info := range owned {
		if info.pkg == p && info.owner == nil && !reported[info] {
			reported[info] = true
			diags = append(diags, p.diag(info.pos, "schedown",
				"//tme:owner names unknown function %q; use Func or Type.Method from the declaring package", info.name))
		}
	}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			diags = append(diags, p.schedownFunc(prog, origin(fn), fd, owned)...)
		}
	}
	return diags
}

// schedownFunc flags writes to owned fields from the wrong context. The
// function's own statements (and its ordinary closures) are owner context
// when the function is reachable from the owner; `go`-spawned subtrees are
// a fresh goroutine and never owner context.
func (p *Package) schedownFunc(prog *Program, fn *types.Func, fd *ast.FuncDecl, owned map[*types.Var]*ownerInfo) []Diagnostic {
	// Pre-collect the spans of go-spawned subtrees.
	var goSpans [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goSpans = append(goSpans, [2]token.Pos{g.Pos(), g.End()})
		}
		return true
	})
	inSpawn := func(pos token.Pos) bool {
		for _, sp := range goSpans {
			if pos >= sp[0] && pos < sp[1] {
				return true
			}
		}
		return false
	}

	var diags []Diagnostic
	check := func(target ast.Expr) {
		for _, v := range p.spineFields(target) {
			info, ok := owned[v]
			if !ok || info.owner == nil {
				continue
			}
			ownerName := displayName(info.owner, p)
			switch {
			case inSpawn(target.Pos()):
				diags = append(diags, p.diag(target.Pos(), "schedown",
					"goroutine spawned in %s writes field %s, owned by %s (//tme:owner); only the owner's call tree may mutate it",
					displayName(fn, p), v.Name(), ownerName))
			case !prog.Reachable(info.owner)[fn]:
				diags = append(diags, p.diag(target.Pos(), "schedown",
					"%s writes field %s, owned by %s (//tme:owner), but is not reachable from the owner; send on the owner's channel instead",
					displayName(fn, p), v.Name(), ownerName))
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					check(n.Key)
				}
				if n.Value != nil {
					check(n.Value)
				}
			}
		}
		return true
	})
	return diags
}

// spineFields returns the struct fields on an assignment target's access
// spine (j.sys, s.buf[i], (*s).tab.next — every selector on the path to
// the root), so a write through any owned field is seen as a mutation of
// that field's state.
func (p *Package) spineFields(e ast.Expr) []*types.Var {
	var out []*types.Var
	for {
		switch t := e.(type) {
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[t]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					out = append(out, v)
				}
			}
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return out
		}
	}
}
