package lint

import (
	"go/ast"
	"go/types"
)

// detmap flags `range` over a map in the numeric packages. Go randomizes
// map iteration order, so any floating-point accumulation, force write, or
// even output ordering fed from such a loop varies between runs — exactly
// the nondeterminism the slab/chunk-partitioned designs of PRs 1–2 exist
// to exclude. Iterate a sorted key slice instead; if the loop provably
// cannot influence numeric state (e.g. draining a free pool), suppress
// with //tmevet:ignore detmap and a rationale.
var detmapCheck = &Check{
	Name: "detmap",
	Doc:  "range over a map type in a numeric package (nondeterministic iteration order)",
	Run:  runDetmap,
}

func runDetmap(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				diags = append(diags, p.diag(rs.Pos(), "detmap",
					"range over map %s iterates in nondeterministic order; range over a sorted key slice instead",
					types.TypeString(tv.Type, types.RelativeTo(p.Pkg))))
			}
			return true
		})
	}
	return diags
}
