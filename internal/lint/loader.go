package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package as the analyzer sees it: the parsed
// non-test files of a directory plus full go/types information. Test files
// are excluded by construction (the determinism and allocation invariants
// are properties of the shipped simulation code; external test packages
// would also complicate single-pass type checking).
type Package struct {
	// Path is the import path, Rel the module-relative directory
	// ("internal/grid"; "." for the module root).
	Path string
	Rel  string
	Dir  string

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// TypeErrors collects type-checker diagnostics. The repo must
	// type-check cleanly (tier-1 builds it first), so the runner surfaces
	// these rather than silently analyzing with partial type info.
	TypeErrors []error

	// ignores maps filename -> line -> check names suppressed on that
	// line by a "//tmevet:ignore check[,check...]" comment.
	ignores map[string]map[int][]string

	// Prog is the whole-module call-graph view, set by Run after every
	// package is loaded. Interprocedural checks return nothing when it is
	// nil (e.g. a package checked in isolation by a unit test).
	Prog *Program
}

// Loader parses and type-checks module packages on demand, resolving
// module-internal imports from source (the go tool's build cache and
// export data are deliberately not used: the analyzer must work from a
// bare checkout with only the stdlib toolchain).
type Loader struct {
	Root       string // module root (directory containing go.mod)
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by absolute dir
	loading map[string]bool     // import-cycle guard
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:       root,
		ModulePath: mod,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Packages returns every package the loader has materialized so far —
// pattern packages plus the module-internal imports type-checking pulled
// in — sorted by directory for deterministic iteration.
func (l *Loader) Packages() []*Package {
	pkgs := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	return pkgs
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Expand resolves package patterns (relative to the module root) to
// package directories. Supported forms: "./...", "dir/...", and plain
// directories. Walks skip hidden, underscore, and testdata directories —
// unless the pattern base itself lies inside a testdata tree, which is how
// the golden fixtures are addressed explicitly.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(l.Root, filepath.FromSlash(pat))
		if fi, err := os.Stat(base); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: no such package directory: %s", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		inTestdata := strings.Contains(filepath.ToSlash(base), "/testdata")
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base {
				if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
					return filepath.SkipDir
				}
				if name == "testdata" && !inTestdata {
					return filepath.SkipDir
				}
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir contains at least one non-test .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// Load parses and type-checks the package in dir (absolute), memoized.
func (l *Loader) Load(dir string) (*Package, error) {
	if p, ok := l.pkgs[dir]; ok {
		return p, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + rel
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Rel: rel, Dir: dir, Fset: l.fset}
	for _, e := range ents {
		if !isSourceFile(e) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	if len(p.Files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	p.collectIgnores()

	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// The returned error repeats the first entry of TypeErrors; the
	// partial Pkg and Info are kept either way so checks can still run.
	p.Pkg, _ = cfg.Check(path, l.fset, p.Files, p.Info)
	l.pkgs[dir] = p
	return p, nil
}

// loaderImporter routes module-internal imports back through the loader
// and everything else (the stdlib) through the from-source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok || path == l.ModulePath {
		if !ok {
			rel = "."
		}
		p, err := l.Load(filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// ignorePrefix introduces a line-scoped suppression comment.
const ignorePrefix = "//tmevet:ignore"

// ParseIgnoreDirective parses a "//tmevet:ignore <check>[,<check>...] --
// rationale" comment, returning the suppressed check names. ok is false
// when the comment is not an ignore directive at all. The grammar is
// strict where it matters for safety: the prefix must be followed by a
// space, tab, or end of comment (so "//tmevet:ignorexyz" is prose, not a
// directive), and check names must match [a-z][a-z0-9-]* — a malformed
// name suppresses nothing rather than something unintended. The rationale
// after the first "--" is free text and ignored.
func ParseIgnoreDirective(text string) (checks []string, ok bool) {
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return nil, false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	for _, name := range strings.Split(rest, ",") {
		if name = strings.TrimSpace(name); name != "" && validCheckName(name) {
			checks = append(checks, name)
		}
	}
	return checks, true
}

// validCheckName reports whether name matches [a-z][a-z0-9-]*.
func validCheckName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case i > 0 && (c >= '0' && c <= '9' || c == '-'):
		default:
			return false
		}
	}
	return len(name) > 0
}

// collectIgnores records every "//tmevet:ignore check[,check...]" comment
// by file and line. A diagnostic is suppressed when such a comment naming
// its check sits on the diagnostic's line or on the line directly above.
func (p *Package) collectIgnores() {
	p.ignores = map[string]map[int][]string{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checks, ok := ParseIgnoreDirective(c.Text)
				if !ok || len(checks) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				m := p.ignores[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					p.ignores[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], checks...)
			}
		}
	}
}

// suppressed reports whether a diagnostic of the given check at pos is
// covered by an ignore comment.
func (p *Package) suppressed(check string, pos token.Position) bool {
	m := p.ignores[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range m[line] {
			if name == check {
				return true
			}
		}
	}
	return false
}
