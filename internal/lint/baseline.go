package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline is the committed ledger of grandfathered findings: diagnostics
// that are real by the checks' rules but accepted for now (typically deep
// engine helpers reached from //tme:noalloc roots, queued for hoisting).
// Entries match by (check, file, message) — deliberately NOT by line, and
// the interprocedural checks emit line-free messages, so a baseline
// survives unrelated edits shifting line numbers. An entry silences every
// diagnostic it matches; entries that match nothing are reported as stale
// so the ledger shrinks as findings are fixed.
type Baseline struct {
	// Version guards the file format.
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry identifies one grandfathered finding.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"` // module-relative, slash-separated
	Message string `json:"message"`
}

func (e BaselineEntry) key() string { return e.Check + "\x00" + e.File + "\x00" + e.Message }

// less orders entries for the written file: by file, then check, then
// message, so the ledger diffs alongside the source tree.
func (e BaselineEntry) less(o BaselineEntry) bool {
	if e.File != o.File {
		return e.File < o.File
	}
	if e.Check != o.Check {
		return e.Check < o.Check
	}
	return e.Message < o.Message
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline
// (the common case for a clean repo), any other error is fatal.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s has unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Apply splits diagnostics into kept (must be fixed) and baselined
// (grandfathered), and returns the stale entries that matched nothing.
// root rebases diagnostic filenames to module-relative slash paths for
// matching.
func (b *Baseline) Apply(root string, diags []Diagnostic) (kept, baselined []Diagnostic, stale []BaselineEntry) {
	index := map[string]*int{}
	for i := range b.Entries {
		index[b.Entries[i].key()] = new(int)
	}
	for _, d := range diags {
		e := BaselineEntry{Check: d.Check, File: RelPath(root, d.Pos.Filename), Message: d.Message}
		if n, ok := index[e.key()]; ok {
			*n++
			baselined = append(baselined, d)
		} else {
			kept = append(kept, d)
		}
	}
	for _, e := range b.Entries {
		if *index[e.key()] == 0 {
			stale = append(stale, e)
		}
	}
	return kept, baselined, stale
}

// FromDiagnostics builds a baseline covering diags (for -write-baseline),
// deduplicated and sorted.
func FromDiagnostics(root string, diags []Diagnostic) *Baseline {
	seen := map[string]bool{}
	b := &Baseline{Version: 1}
	for _, d := range diags {
		e := BaselineEntry{Check: d.Check, File: RelPath(root, d.Pos.Filename), Message: d.Message}
		if !seen[e.key()] {
			seen[e.key()] = true
			b.Entries = append(b.Entries, e)
		}
	}
	sort.Slice(b.Entries, func(i, j int) bool { return b.Entries[i].less(b.Entries[j]) })
	return b
}

// Save writes the baseline as stable, human-diffable JSON.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RelPath rebases an absolute filename to a module-relative slash path;
// paths outside root (or already relative) pass through slash-normalized.
func RelPath(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !isUpward(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

func isUpward(rel string) bool {
	return rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)
}
