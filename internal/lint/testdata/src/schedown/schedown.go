// Package schedown exercises the schedown check: a struct field annotated
// //tme:owner <func> may be mutated only by functions reachable from the
// owner over same-goroutine call edges. Spawned goroutines — even ones
// launched by the owner itself — and foreign call trees (HTTP handlers)
// must route mutations through the owner's channel; channel sends are the
// sanctioned cross-goroutine edge and are never flagged.
package schedown

// Sched's scheduling ring is owned by the loop goroutine.
type Sched struct {
	rr    int //tme:owner Sched.loop
	steps int //tme:owner Sched.loop
	subc  chan int

	count int //tme:owner missingFunc // want "//tme:owner names unknown function \"missingFunc\"; use Func or Type.Method from the declaring package"
}

// ring is wholly owned by the loop: the type-level annotation covers
// every field.
//
//tme:owner Sched.loop
type ring struct {
	head int
	tail int
}

// loop is the owner goroutine. Its own writes — and those of everything
// it calls — are owner context; the goroutine it spawns is not.
func (s *Sched) loop(r *ring) {
	for range s.subc {
		s.rr++
		s.advance(r)
	}
	go func() {
		s.rr = 0 // want "goroutine spawned in Sched.loop writes field rr, owned by Sched.loop"
	}()
}

// advance is reachable from loop, so its writes are owner context.
func (s *Sched) advance(r *ring) {
	s.steps++
	r.head++
}

// HandleSubmit runs on an HTTP goroutine: the direct mutation is flagged,
// the channel send is the sanctioned edge.
func (s *Sched) HandleSubmit(n int) {
	s.steps += n // want "Sched.HandleSubmit writes field steps, owned by Sched.loop"
	s.subc <- n
	s.count = n // ok: the annotation failed to resolve, so nothing is enforced
}

// Reset is a package function outside the owner's call tree; the
// type-level annotation on ring catches it too.
func Reset(r *ring) {
	r.tail = 0 // want "Reset writes field tail, owned by Sched.loop"
}
