// Package detmap exercises the detmap check: every range over a map type
// must be flagged; ranges over slices, channels, and integers must not.
package detmap

import "sort"

// weights is a named map type — the underlying type decides.
type weights map[string]float64

func sumMap(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want "range over map map\[int\]float64 iterates in nondeterministic order"
		s += v
	}
	return s
}

func keysOnly(m weights) int {
	n := 0
	for k := range m { // want "range over map weights iterates in nondeterministic order"
		_ = k
		n++
	}
	return n
}

func sortedKeys(m weights) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //tmevet:ignore detmap -- keys are sorted below before any numeric use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func overSlice(xs []float64) float64 {
	var s float64
	for _, v := range xs { // slices iterate in index order: no finding
		s += v
	}
	for i := range 3 { // integer range: no finding
		s += float64(i)
	}
	return s
}
