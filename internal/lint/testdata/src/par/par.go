// Package par is a stub of tme4a/internal/par for the lint golden
// fixtures: the parwrite and noalloc checks match the par package by
// import-path suffix, so fixtures can exercise them without importing the
// real worker pool.
package par

// For mirrors par.For.
func For(n int, body func(i int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}

// ForRange mirrors par.ForRange.
func ForRange(n int, body func(lo, hi int)) { body(0, n) }

// ForRangeGrain mirrors par.ForRangeGrain.
func ForRangeGrain(n, grain int, body func(lo, hi int)) { body(0, n) }

// Do mirrors par.Do.
func Do(tasks ...func()) {
	for _, t := range tasks {
		t()
	}
}

// SumFloat64 mirrors par.SumFloat64.
func SumFloat64(n int, body func(i int) float64) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += body(i)
	}
	return s
}
