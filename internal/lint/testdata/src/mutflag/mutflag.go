// Package mutflag exercises the mutflag check: exported package-level
// vars are flagged; unexported vars, constants, and suppressed lines are
// not.
package mutflag

// Tunable is the classic offender: callers can flip solver behaviour
// out-of-band.
var Tunable = 1.5 // want "exported package-level variable Tunable is mutable global state"

var (
	inner   = 2         // unexported: no finding
	Another = []int{1}  // want "exported package-level variable Another is mutable global state"
	Legacy  = "default" //tmevet:ignore mutflag -- demo suppression
)

// MaxOrder is immutable: no finding.
const MaxOrder = 16

func use() (int, float64, string) { return inner, Tunable, Legacy }
