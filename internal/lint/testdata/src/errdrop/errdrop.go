// Package errdrop exercises the errdrop check: on a durability/wire path
// every discarded error result is flagged — bare call statements, the
// same under defer or go, and error results landed in the blank
// identifier — while handled errors and reviewed, suppressed drops pass.
// The shape mirrors the real finding class: a checkpoint write whose
// error vanishes.
package errdrop

import "errors"

var errBoom = errors.New("boom")

// store stands in for the checkpoint store.
type store struct{ n int }

func (st *store) save() error        { return errBoom }
func (st *store) load() (int, error) { return 0, errBoom }
func (st *store) bump()              { st.n++ }

func flush(st *store) {
	st.save()         // want "call discards its error result on a durability/wire path"
	defer st.save()   // want "deferred call discards its error result"
	go st.save()      // want "go statement discards the spawned call's error result"
	n, _ := st.load() // want "error result assigned to the blank identifier"
	_ = st.save()     // want "error result assigned to the blank identifier"
	_ = n
	st.bump() // ok: no error to drop
	if err := st.save(); err != nil {
		return
	}
	st.save() //tmevet:ignore errdrop -- fixture: a reviewed drop with a rationale passes
}
