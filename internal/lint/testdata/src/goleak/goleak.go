// Package goleak exercises the goleak check: every go statement must be
// joinable through one of the three sanctioned protocols — a WaitGroup
// Done, a channel send or close, or a context-cancellation check —
// reachable from the spawned function. Unresolvable spawn targets
// (function values) are flagged too.
package goleak

import (
	"context"
	"sync"
)

func work() {}

func leakyClosure() {
	go func() { // want "goroutine is never joined"
		work()
	}()
}

func namedLeak() {
	go work() // want "goroutine is never joined"
}

// dynamic spawn target: no static callee, so no provable join.
func dynamic(f func()) {
	go f() // want "goroutine is never joined"
}

func joinedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func joinedBySend() {
	done := make(chan error, 1)
	go func() {
		done <- nil
	}()
	<-done
}

func joinedByClose() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

func joinedByContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// runner joins by closing its done channel; the named spawn below is
// proven through the call graph.
func runner(done chan struct{}) {
	work()
	close(done)
}

func namedJoined() {
	done := make(chan struct{})
	go runner(done)
	<-done
}

// helper reaches wg.Done only transitively, through signal.
func signal(wg *sync.WaitGroup) { wg.Done() }

func helper(wg *sync.WaitGroup) {
	work()
	signal(wg)
}

func transitiveJoined(wg *sync.WaitGroup) {
	wg.Add(1)
	go helper(wg)
}
