// Package parwrite exercises the parwrite check: chunked worker closures
// must not assign captured variables except through element indices, and
// par.Do tasks must touch pairwise-disjoint captured state.
package parwrite

import "tme4a/internal/lint/testdata/src/par"

type accum struct {
	total float64
	part  []float64
}

func raceyReduction(xs []float64) float64 {
	var sum float64
	par.ForRange(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want "closure passed to par.ForRange writes captured variable \"sum\""
		}
	})
	return sum
}

func raceyCounter(n int) int {
	count := 0
	par.For(n, func(i int) {
		count++ // want "closure passed to par.For writes captured variable \"count\""
	})
	return count
}

func partitionedWrites(a *accum, xs []float64) {
	par.ForRange(len(xs), func(lo, hi int) {
		local := 0.0 // locals are fine
		for i := lo; i < hi; i++ {
			local += xs[i]
			a.part[i] = xs[i] // element write through an index: no finding
		}
		_ = local
	})
}

func raceyPointer(out *float64, n int) {
	par.ForRangeGrain(n, 1, func(lo, hi int) {
		*out = float64(hi) // want "closure passed to par.ForRangeGrain writes captured variable \"out\""
	})
}

func disjointDo(a, b *accum) (x, y float64) {
	par.Do(
		func() { x = a.part[0] }, // each task writes its own result: no finding
		func() { y = b.part[0] },
	)
	return x, y
}

func overlappingDo(a *accum) float64 {
	var t float64
	par.Do(
		func() { t = a.part[0] },   // want "par.Do task writes captured variable \"t\" that a sibling task also touches"
		func() { a.total = t + 1 }, // want "par.Do task writes captured variable \"a\" that a sibling task also touches"
	)
	return t
}

func suppressedWrite(n int) int {
	last := 0
	par.For(n, func(i int) {
		last = i //tmevet:ignore parwrite -- demo: any worker's value is acceptable here
	})
	return last
}
