// Package noallocipa exercises the noalloc-ipa check: a //tme:noalloc
// function must not reach, through the static call graph, an unannotated
// callee that allocates. Callees carrying their own annotation are
// checked directly by the per-function noalloc check, the par stub is the
// trusted dispatch leaf, and a callee whose allocation site is suppressed
// with a rationale (grow-once) does not count.
package noallocipa

import "tme4a/internal/lint/testdata/src/par"

type engine struct {
	buf []float64
	out []float64
}

// step is the annotated hot path; its own body is clean, so only the
// call graph betrays the allocations below. Diagnostics anchor on the
// first-hop call so step's author sees them.
//
//tme:noalloc
func (e *engine) step(n int) {
	e.helperAlloc(n) // want "//tme:noalloc function engine.step calls engine.helperAlloc, which allocates \(make\); annotate the callee //tme:noalloc or hoist the allocation"
	e.helperClean(n)
	e.helperDeep(1.5) // want "calls deeper via engine.helperDeep, which allocates \(append\)"
	e.helperAnnotated(n)
	e.helperSuppressed(n)
	e.helperPar(n)
}

// helperAlloc allocates directly: one hop from the annotated root.
func (e *engine) helperAlloc(n int) {
	e.buf = make([]float64, n)
}

// helperClean touches preallocated state only.
func (e *engine) helperClean(n int) {
	for i := 0; i < n && i < len(e.buf); i++ {
		e.buf[i] = 0
	}
}

// helperDeep is clean itself but reaches an allocating helper; the
// diagnostic names the path.
func (e *engine) helperDeep(x float64) {
	e.out = deeper(e.out, x)
}

func deeper(b []float64, x float64) []float64 {
	return append(b, x)
}

// helperAnnotated carries its own //tme:noalloc, so the per-function
// check owns it and noalloc-ipa skips it.
//
//tme:noalloc
func (e *engine) helperAnnotated(n int) {
	if n >= 0 && n < len(e.buf) {
		e.buf[n] = 1
	}
}

// helperSuppressed's allocation is a reviewed grow-once site.
func (e *engine) helperSuppressed(n int) {
	if cap(e.buf) < n {
		e.buf = make([]float64, n) //tmevet:ignore noalloc -- grow-once: runs on resize only, never at steady state
	}
}

// helperPar dispatches through the sanctioned worker-pool leaf; the
// closure handed to par.For is the exempt pattern.
func (e *engine) helperPar(n int) {
	par.For(n, func(i int) {
		e.buf[i] = 0
	})
}
