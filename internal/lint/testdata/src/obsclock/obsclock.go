// Package obsclock exercises the obsclock check: wall-clock reads are
// legal only inside functions carrying the //tme:clock-seam doc directive.
package obsclock

import (
	stdtime "time"
)

// A package-level initializer runs outside any seam function: flagged.
var bootTime = stdtime.Now() // want "time.Now outside a //tme:clock-seam function"

// seamEpoch is the sanctioned pattern: the directive whitelists the read.
//
//tme:clock-seam
func seamEpoch() stdtime.Time { return stdtime.Now() }

// monotonic nests two clock reads under one seam: no finding.
//
//tme:clock-seam
func monotonic() int64 {
	t0 := stdtime.Now()
	return int64(stdtime.Since(t0))
}

func stamp() int64 {
	return stdtime.Now().UnixNano() // want "time.Now outside a //tme:clock-seam function"
}

func elapsed(t0 stdtime.Time) stdtime.Duration {
	return stdtime.Since(t0) // want "time.Since outside a //tme:clock-seam function"
}

func deadline(t stdtime.Time) stdtime.Duration {
	return stdtime.Until(t) // want "time.Until outside a //tme:clock-seam function"
}

// Pure time constructors and converters carry no ambient state: no finding.
func pure() stdtime.Duration {
	d := 3 * stdtime.Millisecond
	_ = stdtime.Unix(0, 0)
	_ = bootTime.Add(d)
	return d
}

func suppressed() stdtime.Time {
	return stdtime.Now() //tmevet:ignore obsclock -- demo of the suppression grammar
}

func notTheRealTime() int {
	// A local identifier named "time" must not confuse the resolver.
	time := struct{ Now func() int }{Now: func() int { return 0 }}
	return time.Now()
}
