// Package noalloc exercises the noalloc check: inside a //tme:noalloc
// function every syntactic allocation source is flagged, par worker
// closures and plain value literals are not, and unannotated functions
// are never inspected.
package noalloc

import "tme4a/internal/lint/testdata/src/par"

type vec3 [3]float64

type state struct {
	buf []float64
	sum float64
}

// hot is the annotated steady-state path.
//
//tme:noalloc
func (s *state) hot(n int) {
	b := make([]float64, n)            // want "make in //tme:noalloc function state.hot allocates"
	s.buf = append(s.buf, 1)           // want "append in //tme:noalloc function state.hot may grow its backing array"
	p := new(vec3)                     // want "new in //tme:noalloc function state.hot allocates"
	xs := []float64{1, 2}              // want "\[\]float64 literal in //tme:noalloc function state.hot allocates"
	m := map[int]int{}                 // want "map\[int\]int literal in //tme:noalloc function state.hot allocates"
	q := &vec3{1, 2, 3}                // want "&vec3 literal in //tme:noalloc function state.hot risks a heap allocation"
	v := vec3{1, 2, 3}                 // plain value literal stays on the stack: no finding
	f := func() {}                     // want "closure literal in //tme:noalloc function state.hot may allocate"
	go s.drain()                       // want "go statement in //tme:noalloc function state.hot allocates a goroutine"
	par.ForRange(n, func(lo, hi int) { // par worker closure is the sanctioned pattern: no finding
		for i := lo; i < hi; i++ {
			s.buf[i] = v[0]
		}
	})
	if cap(s.buf) < n {
		s.buf = make([]float64, n) //tmevet:ignore noalloc -- grow-once demo
	}
	_, _, _, _, _, _ = b, p, xs, m, q, f
}

// cold is unannotated: the same constructs produce no findings.
func (s *state) cold(n int) {
	s.buf = append(make([]float64, 0, n), 1)
	go s.drain()
}

func (s *state) drain() { s.sum = 0 }
