// Package noclock exercises the noclock check: wall-clock reads and
// global-random-source draws are flagged; explicitly seeded generators
// and *rand.Rand methods are not.
package noclock

import (
	"math/rand"
	stdtime "time"
)

func stamp() int64 {
	t := stdtime.Now() // want "time.Now makes simulation results depend on wall-clock state"
	return t.UnixNano()
}

func elapsed(t0 stdtime.Time) stdtime.Duration {
	return stdtime.Since(t0) // want "time.Since makes simulation results depend on wall-clock state"
}

func globalDraws() float64 {
	x := rand.Float64()                // want "rand.Float64 draws from the global random source"
	n := rand.Intn(7)                  // want "rand.Intn draws from the global random source"
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle draws from the global random source"
	return x + float64(n)
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors are the sanctioned pattern: no finding
	return rng.Float64()                  // method on explicit *rand.Rand: no finding
}

func suppressed() float64 {
	return rand.Float64() //tmevet:ignore noclock -- demo of the suppression grammar
}

func notTheRealTime() {
	// A local identifier named "time" must not confuse the resolver.
	time := struct{ Now func() int }{Now: func() int { return 0 }}
	_ = time.Now()
}
