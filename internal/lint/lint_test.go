package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts golden expectations: a trailing `// want "regexp"`
// comment on the line a diagnostic must be reported at.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants parses every fixture file of dir for want comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	fset := token.NewFileSet()
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := regexp.Compile(strings.ReplaceAll(m[1], `\"`, `"`))
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", path, m[1], err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{file: path, line: pos.Line, re: pat})
			}
		}
	}
	return wants
}

// TestGoldenFixtures runs each check against its testdata/src/<check>
// fixture package and matches the diagnostics (after suppression) against
// the // want expectations, both ways: every want must be hit, and every
// diagnostic must be wanted.
func TestGoldenFixtures(t *testing.T) {
	root := moduleRoot(t)
	fixRoot := filepath.Join(root, "internal", "lint", "testdata", "src")
	ents, err := os.ReadDir(fixRoot)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range ents {
		if !e.IsDir() || ByName(e.Name()) == nil {
			continue // support packages like the par stub
		}
		ran++
		t.Run(e.Name(), func(t *testing.T) {
			dir := filepath.Join(fixRoot, e.Name())
			diags, err := Run(root, []string{"internal/lint/testdata/src/" + e.Name()})
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want expectations", e.Name())
			}
		Diags:
			for _, d := range diags {
				if d.Check != e.Name() {
					t.Errorf("fixture %s produced a diagnostic from check %s: %s", e.Name(), d.Check, d)
					continue
				}
				for _, w := range wants {
					if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						continue Diags
					}
				}
				t.Errorf("unexpected diagnostic: %s", d)
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
	if ran != len(Checks()) {
		t.Errorf("ran %d fixture packages, want one per check (%d)", ran, len(Checks()))
	}
}

// TestFixturesFailViaDriverPatterns pins the acceptance criterion that
// the fixture tree as a whole produces findings (tmevet must exit
// non-zero on it).
func TestFixturesFailViaDriverPatterns(t *testing.T) {
	root := moduleRoot(t)
	diags, err := Run(root, []string{"internal/lint/testdata/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture tree produced no diagnostics")
	}
	perCheck := map[string]int{}
	for _, d := range diags {
		perCheck[d.Check]++
	}
	for _, c := range Checks() {
		if perCheck[c.Name] == 0 {
			t.Errorf("check %s produced no fixture diagnostics", c.Name)
		}
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
