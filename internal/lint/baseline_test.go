package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func baselineDiag(file string, line int, check, msg string) Diagnostic {
	d := Diagnostic{Check: check, Message: msg}
	d.Pos.Filename = file
	d.Pos.Line = line
	return d
}

// TestBaselineApply covers the three-way split: matched findings are
// silenced, unmatched ones kept, and entries matching nothing surface as
// stale. Matching is by (check, file, message) — never by line — so a
// baselined finding survives unrelated edits shifting it.
func TestBaselineApply(t *testing.T) {
	b := &Baseline{Version: 1, Entries: []BaselineEntry{
		{Check: "noalloc-ipa", File: "internal/md/x.go", Message: "grandfathered"},
		{Check: "errdrop", File: "internal/ckpt/y.go", Message: "long gone"},
	}}
	diags := []Diagnostic{
		baselineDiag("/repo/internal/md/x.go", 10, "noalloc-ipa", "grandfathered"),
		baselineDiag("/repo/internal/md/x.go", 99, "noalloc-ipa", "grandfathered"), // line moved: still matched
		baselineDiag("/repo/internal/md/x.go", 11, "noalloc-ipa", "fresh finding"),
		baselineDiag("/repo/internal/serve/z.go", 3, "goleak", "fresh too"),
	}
	kept, baselined, stale := b.Apply("/repo", diags)
	if len(kept) != 2 || kept[0].Message != "fresh finding" || kept[1].Message != "fresh too" {
		t.Fatalf("kept = %v, want the two fresh findings", kept)
	}
	if len(baselined) != 2 {
		t.Fatalf("baselined = %v, want both matched findings", baselined)
	}
	if len(stale) != 1 || stale[0].Message != "long gone" {
		t.Fatalf("stale = %v, want the unmatched entry", stale)
	}
}

// TestBaselineRoundTrip pins FromDiagnostics + Save + Load: the written
// ledger is deduplicated, sorted, and silences exactly what it covers.
func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		baselineDiag("/repo/b.go", 2, "errdrop", "msg-b"),
		baselineDiag("/repo/a.go", 7, "goleak", "msg-a"),
		baselineDiag("/repo/a.go", 9, "goleak", "msg-a"), // duplicate message: one entry
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := FromDiagnostics("/repo", diags).Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("entries = %v, want 2 after dedup", b.Entries)
	}
	if b.Entries[0].File != "a.go" || b.Entries[1].File != "b.go" {
		t.Fatalf("entries not sorted: %v", b.Entries)
	}
	kept, baselined, stale := b.Apply("/repo", diags)
	if len(kept) != 0 || len(baselined) != 3 || len(stale) != 0 {
		t.Fatalf("round trip: kept=%d baselined=%d stale=%d, want 0/3/0", len(kept), len(baselined), len(stale))
	}
}

// TestBaselineMissingAndVersion: a missing file is an empty baseline; a
// wrong version or corrupt JSON is an error, not a silent pass.
func TestBaselineMissingAndVersion(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || len(b.Entries) != 0 {
		t.Fatalf("missing file: got %v, %v; want empty baseline", b, err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":99,"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Fatal("unsupported version must error")
	}
	if err := os.WriteFile(bad, []byte(`{garbage`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Fatal("corrupt baseline must error")
	}
}

// TestRepoBaselineIsCurrent loads the committed baseline and checks shape:
// version 1, entries sorted and deduplicated, files module-relative. The
// stale check itself lives in TestRepoIsClean.
func TestRepoBaselineIsCurrent(t *testing.T) {
	root := moduleRoot(t)
	b, err := LoadBaseline(filepath.Join(root, "tmevet.baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, e := range b.Entries {
		k := e.key()
		if seen[k] {
			t.Errorf("duplicate baseline entry: %+v", e)
		}
		seen[k] = true
		if i > 0 && e.less(b.Entries[i-1]) {
			t.Errorf("baseline entries not sorted at %+v", e)
		}
		if filepath.IsAbs(e.File) {
			t.Errorf("baseline file %q must be module-relative", e.File)
		}
		if ByName(e.Check) == nil {
			t.Errorf("baseline names unknown check %q", e.Check)
		}
	}
}
