package lint

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// TestParseIgnoreDirective pins the suppression grammar the fuzzer
// explores: the prefix must be a whole word, the rationale after "--" is
// free text, and malformed check names suppress nothing.
func TestParseIgnoreDirective(t *testing.T) {
	cases := []struct {
		in     string
		ok     bool
		checks []string
	}{
		{"//tmevet:ignore detmap -- reason", true, []string{"detmap"}},
		{"//tmevet:ignore detmap,noalloc -- two at once", true, []string{"detmap", "noalloc"}},
		{"//tmevet:ignore noalloc-ipa -- dashed name", true, []string{"noalloc-ipa"}},
		{"//tmevet:ignore\tdetmap", true, []string{"detmap"}},
		{"//tmevet:ignore", true, nil}, // bare: a directive, but suppresses nothing
		{"//tmevet:ignore -- rationale only", true, nil},
		{"//tmevet:ignored detmap", false, nil}, // prefix must be a whole word
		{"//tmevet:ignoreX", false, nil},
		{"// tmevet:ignore detmap", false, nil}, // space before the marker: prose
		{"//tmevet:ignore Detmap", true, nil},   // uppercase: invalid name, dropped
		{"//tmevet:ignore det map", true, nil},  // embedded space: invalid name
		{"//tmevet:ignore -detmap", true, nil},  // must start with a letter
		{"//tmevet:ignore detmap, , noclock", true, []string{"detmap", "noclock"}},
		{"//tmevet:ignore detmap--glued rationale", true, []string{"detmap"}},
	}
	for _, c := range cases {
		checks, ok := ParseIgnoreDirective(c.in)
		if ok != c.ok {
			t.Errorf("ParseIgnoreDirective(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if strings.Join(checks, ",") != strings.Join(c.checks, ",") {
			t.Errorf("ParseIgnoreDirective(%q) = %q, want %q", c.in, checks, c.checks)
		}
	}
}

// FuzzIgnoreDirective hardens the suppression parser against malformed
// input: whatever the comment text, the parser must not panic, must only
// claim directive status for real "//tmevet:ignore" word-prefixed
// comments, and must only ever return well-formed check names — a
// malformed list must fail closed (suppress nothing), never open.
func FuzzIgnoreDirective(f *testing.F) {
	f.Add("//tmevet:ignore detmap -- rationale")
	f.Add("//tmevet:ignore detmap,noalloc-ipa -- two")
	f.Add("//tmevet:ignore")
	f.Add("//tmevet:ignoreX sneak")
	f.Add("//tmevet:ignore \t , , -- ")
	f.Add("//tmevet:ignore --")
	f.Add("// plain comment")
	f.Add("//tmevet:ignore detmap -- -- double dash")
	f.Add("//tmevet:ignore \x00\xff")
	f.Add("//tmevet:ignore détmap -- unicode")
	f.Fuzz(func(t *testing.T, text string) {
		checks, ok := ParseIgnoreDirective(text)
		if !ok {
			if len(checks) != 0 {
				t.Fatalf("not a directive but returned checks %q", checks)
			}
			// Only a true word-prefix may be rejected for the right reason;
			// anything the parser rejects must genuinely not be a directive.
			if rest, has := strings.CutPrefix(text, "//tmevet:ignore"); has &&
				(rest == "" || rest[0] == ' ' || rest[0] == '\t') {
				t.Fatalf("rejected a well-prefixed directive: %q", text)
			}
			return
		}
		if !strings.HasPrefix(text, "//tmevet:ignore") {
			t.Fatalf("claimed directive status without the prefix: %q", text)
		}
		for _, name := range checks {
			if name == "" || !utf8.ValidString(name) {
				t.Fatalf("returned malformed check name %q from %q", name, text)
			}
			if !validCheckName(name) {
				t.Fatalf("returned invalid check name %q from %q", name, text)
			}
			if strings.ContainsAny(name, " \t,") {
				t.Fatalf("check name %q contains separators (from %q)", name, text)
			}
		}
	})
}
