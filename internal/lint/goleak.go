package lint

import (
	"go/ast"
	"go/types"
)

// goleak enforces goroutine lifecycle discipline in the service tier and
// the worker-pool layer: every `go` statement must be joinable — the
// spawned function (or something it statically reaches) must, on some
// path, signal completion or observe cancellation. The accepted join
// protocols are exactly the three the codebase uses:
//
//   - a sync.WaitGroup Done (par's worker fan-out, joined by Wait);
//   - a send on — or close of — a channel (the done-channel protocol:
//     serve.Scheduler.loop closes loopDone, mdserve's listener goroutine
//     sends its error);
//   - a context cancellation check ((context.Context).Done).
//
// A goroutine with none of these is unjoinable by construction: nothing
// can wait for it, Close can return while it still runs, and tests leak
// it across cases. The check is path-insensitive (a marker anywhere in
// the spawned call tree counts) — it catches the goroutine that CANNOT be
// joined, not one that merely might not be. Spawns whose target cannot be
// resolved statically (interface method, function value) are flagged too:
// wrap them in a closure that performs the join.
var goleakCheck = &Check{
	Name: "goleak",
	Doc:  "go statement spawns a goroutine with no WaitGroup, done-channel, or context join",
	Run:  runGoleak,
}

func runGoleak(p *Package) []Diagnostic {
	prog := p.Prog
	if prog == nil {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !p.spawnJoined(prog, g) {
				diags = append(diags, p.diag(g.Pos(), "goleak",
					"goroutine is never joined: no WaitGroup.Done, channel send/close, or context-cancellation check reachable from the spawned function"))
			}
			return true
		})
	}
	return diags
}

// spawnJoined reports whether a go statement's spawned call tree contains
// a join marker.
func (p *Package) spawnJoined(prog *Program, g *ast.GoStmt) bool {
	// Seed the scan with the spawned body: a closure's own statements, or
	// the resolved callee's declaration.
	var roots []*types.Func
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if p.hasJoinMarker(fl.Body) {
			return true
		}
		// The closure's direct calls feed the reachability scan.
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := p.staticCallee(call); callee != nil {
					roots = append(roots, callee)
				}
			}
			return true
		})
	} else if callee := p.staticCallee(g.Call); callee != nil {
		roots = append(roots, callee)
	} else {
		return false // dynamic spawn target: cannot prove a join
	}
	for _, root := range roots {
		for fn := range prog.Reachable(root) {
			node := prog.Node(fn)
			if node != nil && node.Pkg.hasJoinMarker(node.Decl.Body) {
				return true
			}
		}
	}
	return false
}

// hasJoinMarker scans a body for the three join protocols.
func (p *Package) hasJoinMarker(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if b, ok := p.useOf(fun).(*types.Builtin); ok && b.Name() == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fn := p.methodCallee(fun); fn != nil {
					switch fn.FullName() {
					case "(*sync.WaitGroup).Done", "(context.Context).Done":
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// methodCallee resolves a selector to the method it names, including
// interface methods (which staticCallee deliberately skips).
func (p *Package) methodCallee(sel *ast.SelectorExpr) *types.Func {
	if s, ok := p.Info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return origin(fn)
		}
		return nil
	}
	if fn, ok := p.useOf(sel.Sel).(*types.Func); ok {
		return origin(fn)
	}
	return nil
}
