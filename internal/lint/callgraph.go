package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Program is the whole-module view the interprocedural checks (schedown,
// goleak, noalloc-ipa) share: every function declaration the loader has
// parsed, indexed by its canonical *types.Func, plus a static call graph
// over them. It is built once per Run, after all pattern packages (and the
// module-internal imports their type-checking pulled in) are loaded.
//
// The graph is deliberately conservative and syntactic:
//
//   - Only statically resolvable calls become edges: package-level
//     functions, qualified pkg.Func calls, and concrete method calls.
//     Interface dispatch and function values (including closures passed as
//     parameters) produce no edge — the runtime gates (race detector,
//     AllocsPerRun) remain the backstop for those.
//   - Calls inside a `go` statement's subtree are NOT edges of the
//     enclosing function: they run on a different goroutine, which is the
//     distinction the ownership check is built on. Each spawn is recorded
//     separately in Spawns for the goleak check.
//   - Calls inside ordinary closures (deferred, called inline, or passed
//     to par.*) are attributed to the enclosing declaration.
type Program struct {
	nodes map[*types.Func]*FuncNode
	reach map[*types.Func]map[*types.Func]bool // memoized sync-reachability
	owned map[*types.Var]*ownerInfo            // //tme:owner index, all packages
}

// FuncNode is one declared function or method in the module.
type FuncNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl

	// Calls are the statically resolved same-goroutine call edges, in
	// source order.
	Calls []Edge
	// Spawns are the `go` statements in the declaration's body (including
	// those nested in closures), in source order.
	Spawns []*ast.GoStmt
}

// Edge is one static call edge.
type Edge struct {
	Callee *types.Func
	Pos    token.Pos
}

// ownerInfo records one //tme:owner annotation resolution.
type ownerInfo struct {
	owner *types.Func // nil when the annotation failed to resolve
	name  string      // the annotated owner string
	pos   token.Pos   // annotation position (for unresolved-owner diags)
	pkg   *Package    // declaring package
}

// NewProgram indexes every package the loader has materialized.
func NewProgram(l *Loader) *Program {
	prog := &Program{
		nodes: map[*types.Func]*FuncNode{},
		reach: map[*types.Func]map[*types.Func]bool{},
	}
	for _, p := range l.Packages() {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: origin(fn), Pkg: p, Decl: fd}
				collectEdges(p, fd.Body, node)
				prog.nodes[node.Fn] = node
			}
		}
	}
	return prog
}

// collectEdges walks a function body recording call edges and spawns.
// `go` subtrees contribute spawns but no edges (they run elsewhere).
func collectEdges(p *Package, body ast.Node, node *FuncNode) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			node.Spawns = append(node.Spawns, n)
			return false
		case *ast.CallExpr:
			if callee := p.staticCallee(n); callee != nil {
				node.Calls = append(node.Calls, Edge{Callee: callee, Pos: n.Pos()})
			}
		}
		return true
	})
}

// origin canonicalizes generic instantiations to their declared function.
func origin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// staticCallee resolves a call expression to the module-or-stdlib function
// it statically invokes, or nil for builtins, conversions, interface
// dispatch, and function values.
func (p *Package) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.useOf(fun).(*types.Func); ok {
			return origin(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				return nil // dynamic dispatch
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return origin(fn)
			}
			return nil
		}
		// No selection: a package-qualified reference (pkg.Func).
		if fn, ok := p.useOf(fun.Sel).(*types.Func); ok {
			return origin(fn)
		}
	}
	return nil
}

// Node returns the declaration node for fn, or nil for functions without a
// loaded body (stdlib, interface methods).
func (prog *Program) Node(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return prog.nodes[origin(fn)]
}

// Reachable returns the set of module functions reachable from root over
// same-goroutine call edges, including root itself. Memoized per root.
func (prog *Program) Reachable(root *types.Func) map[*types.Func]bool {
	root = origin(root)
	if set, ok := prog.reach[root]; ok {
		return set
	}
	set := map[*types.Func]bool{root: true}
	queue := []*types.Func{root}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := prog.nodes[fn]
		if node == nil {
			continue
		}
		for _, e := range node.Calls {
			if !set[e.Callee] {
				set[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	prog.reach[root] = set
	return set
}

// displayName renders fn for diagnostics: Type.Method or Func, prefixed
// with the package name when it differs from the reporting package.
func displayName(fn *types.Func, from *Package) string {
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv()
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && from != nil && fn.Pkg() != from.Pkg {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// isParPackage reports whether a package path is the par worker-pool
// package (or its fixture stub): the sanctioned goroutine dispatch layer,
// trusted as a leaf by noalloc-ipa.
func isParPackage(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == "par" || strings.HasSuffix(pkg.Path(), "/par")
}
