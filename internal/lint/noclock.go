package lint

import (
	"go/ast"
	"go/types"
)

// noclock flags wall-clock reads and global-random-source draws inside
// simulation packages. A trajectory must be a pure function of its inputs
// and seeds; time.Now and the math/rand package-level functions (which
// share a randomly-seeded global source) both smuggle in ambient state.
// Timing belongs in the experiment harnesses (internal/expt, benchmarks)
// and randomness must flow through an explicitly seeded *rand.Rand.
// Test files are exempt by construction: the analyzer only loads non-test
// sources.
var noclockCheck = &Check{
	Name: "noclock",
	Doc:  "time.Now or math/rand global-source call in a simulation path",
	Run:  runNoclock,
}

// randConstructors are the math/rand (and rand/v2) functions that do NOT
// touch the global source: they build explicitly seeded generators, which
// is precisely the sanctioned pattern.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // rand/v2
	"NewChaCha8": true, // rand/v2
}

func runNoclock(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg := p.pkgNameOf(sel.X)
			if pkg == nil {
				return true
			}
			name := sel.Sel.Name
			switch pkg.Path() {
			case "time":
				if name == "Now" || name == "Since" || name == "Until" {
					diags = append(diags, p.diag(call.Pos(), "noclock",
						"time.%s makes simulation results depend on wall-clock state; time at the harness level instead", name))
				}
			case "math/rand", "math/rand/v2":
				// Only package-level functions draw from the global
				// source; methods on an explicit *rand.Rand are fine.
				fn, ok := p.useOf(sel.Sel).(*types.Func)
				if !ok || fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				if !randConstructors[name] {
					diags = append(diags, p.diag(call.Pos(), "noclock",
						"%s.%s draws from the global random source; thread an explicitly seeded *rand.Rand instead", pkg.Name(), name))
				}
			}
			return true
		})
	}
	return diags
}
