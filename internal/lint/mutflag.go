package lint

import (
	"go/ast"
	"go/token"
)

// mutflag flags exported package-level variables in the numeric packages.
// An exported mutable global invites callers (and future PRs) to tweak
// solver behaviour out-of-band, which silently breaks run-to-run
// reproducibility and makes results depend on initialization order.
// Export a constant, take the value as a parameter, or unexport the
// variable (unexported state like plan caches and sync.Pools stays under
// the package's own locking discipline and is fine).
var mutflagCheck = &Check{
	Name: "mutflag",
	Doc:  "exported package-level var in a numeric package (mutable global state)",
	Run:  runMutflag,
}

func runMutflag(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.IsExported() {
						diags = append(diags, p.diag(name.Pos(), "mutflag",
							"exported package-level variable %s is mutable global state; unexport it, make it a constant, or pass it as a parameter", name.Name))
					}
				}
			}
		}
	}
	return diags
}
