package lint

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestJSONDeterministic pins tmevet's -json contract: the encoded report
// is byte-identical across independent runs and across file-discovery
// order (patterns given forwards, reversed, and interleaved must all
// produce the same bytes). CI diffs tmevet.json between runs, so a single
// unstable map iteration would show up as noise here first.
func TestJSONDeterministic(t *testing.T) {
	root := moduleRoot(t)
	forward := []string{
		"internal/lint/testdata/src/errdrop",
		"internal/lint/testdata/src/goleak",
		"internal/lint/testdata/src/noalloc-ipa",
		"internal/lint/testdata/src/schedown",
	}
	reversed := []string{forward[3], forward[2], forward[1], forward[0]}
	shuffled := []string{forward[2], forward[0], forward[3], forward[1]}

	encode := func(patterns []string) []byte {
		t.Helper()
		diags, err := Run(root, patterns)
		if err != nil {
			t.Fatal(err)
		}
		data, err := NewReport(root, diags, nil).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	first := encode(forward)
	if again := encode(forward); !bytes.Equal(first, again) {
		t.Errorf("two identical runs produced different report bytes")
	}
	if rev := encode(reversed); !bytes.Equal(first, rev) {
		t.Errorf("reversed pattern order changed the report bytes")
	}
	if shuf := encode(shuffled); !bytes.Equal(first, shuf) {
		t.Errorf("shuffled pattern order changed the report bytes")
	}

	var rep Report
	if err := json.Unmarshal(first, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Version != 1 || rep.Total == 0 || rep.Total != len(rep.Diagnostics) {
		t.Errorf("report shape wrong: version=%d total=%d diags=%d", rep.Version, rep.Total, len(rep.Diagnostics))
	}
	if len(rep.Checks) != len(Checks()) {
		t.Errorf("report lists %d checks, registry has %d", len(rep.Checks), len(Checks()))
	}
	for _, d := range rep.Diagnostics {
		if d.File == "" || d.File[0] == '/' {
			t.Errorf("diagnostic file %q is not module-relative", d.File)
		}
	}
}

// TestReportMergesBaselined checks the kept/baselined merge keeps
// position order and marks entries.
func TestReportMergesBaselined(t *testing.T) {
	mk := func(file string, line int, check string) Diagnostic {
		d := Diagnostic{Check: check, Message: "m"}
		d.Pos.Filename = file
		d.Pos.Line = line
		return d
	}
	kept := []Diagnostic{mk("a.go", 2, "detmap"), mk("b.go", 9, "goleak")}
	base := []Diagnostic{mk("a.go", 5, "errdrop")}
	rep := NewReport("", kept, base)
	if rep.Total != 3 || rep.Baselined != 1 {
		t.Fatalf("total=%d baselined=%d, want 3/1", rep.Total, rep.Baselined)
	}
	order := []struct {
		file string
		line int
		bl   bool
	}{{"a.go", 2, false}, {"a.go", 5, true}, {"b.go", 9, false}}
	for i, want := range order {
		got := rep.Diagnostics[i]
		if got.File != want.file || got.Line != want.line || got.Baselined != want.bl {
			t.Errorf("diag[%d] = %s:%d baselined=%v, want %s:%d baselined=%v",
				i, got.File, got.Line, got.Baselined, want.file, want.line, want.bl)
		}
	}
}
