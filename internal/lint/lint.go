// Package lint implements tmevet, the project's static analyzer. It
// enforces, at review time, the invariants PRs 1–2 established at runtime:
// bitwise-deterministic results at any GOMAXPROCS, allocation-free
// steady-state hot paths, and slab/owner-partitioned parallel writes.
//
// The analyzer is stdlib-only (go/parser + go/types with the from-source
// importer) so it runs on a bare checkout. Each check lives in its own
// file and is individually suppressible with a line-scoped
// "//tmevet:ignore <check>[,<check>...] -- rationale" comment on the
// offending line or the line above. The noalloc check is opt-in per
// function via the "//tme:noalloc" doc directive.
//
// See DESIGN.md §7.3 for the check catalog and the suppression policy.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Check is one named invariant detector.
type Check struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// checks is the registry, ordered for stable output.
var checks = []*Check{
	detmapCheck,
	errdropCheck,
	goleakCheck,
	mutflagCheck,
	noallocCheck,
	noallocIPACheck,
	noclockCheck,
	obsclockCheck,
	parwriteCheck,
	schedownCheck,
}

// Checks returns the registered checks in name order.
func Checks() []*Check { return checks }

// ByName returns the named check, or nil.
func ByName(name string) *Check {
	for _, c := range checks {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// numericPkgs are the module-relative directories whose floating-point
// results must be bitwise reproducible: the mesh pipeline, the short-range
// stack, and every force/integration module (ISSUE 3). detmap and mutflag
// apply only here; noalloc and parwrite are annotation/usage driven and
// run everywhere.
var numericPkgs = map[string]bool{
	"internal/grid":       true,
	"internal/pmesh":      true,
	"internal/spme":       true,
	"internal/core":       true,
	"internal/msm":        true,
	"internal/ewald":      true,
	"internal/nonbond":    true,
	"internal/celllist":   true,
	"internal/md":         true,
	"internal/fft":        true,
	"internal/bonded":     true,
	"internal/constraint": true,
	"internal/quad":       true,
	"internal/solver":     true,
	// The serve tier holds job tables and renders listings; a map-range
	// leak there would make job ordering, traces or API output vary
	// between runs, so it gets the same determinism checks as the
	// numeric core.
	"internal/serve":         true,
	"internal/serve/loadgen": true,
	// The rank-decomposed engine and its halo-exchange layer must be
	// bitwise identical to the serial path at any rank count, so a
	// nondeterministic map range anywhere in them is a trajectory
	// divergence.
	"internal/dist": true,
	"internal/rank": true,
	// The auto-tuner is a pure cost/error model: its plans feed config
	// hashes and the retune path, so any map-range or clock
	// nondeterminism in it would split trajectories between bitwise-equal
	// runs. Measuring code lives in internal/expt, which is noclock-exempt.
	"internal/tune": true,
}

// noclockExempt are packages where wall-clock reads are the point
// (experiment harnesses time themselves) or meaningless (the analyzer).
var noclockExempt = map[string]bool{
	"internal/expt": true,
	"internal/lint": true,
}

// errdropPkgs are the durability and wire paths (ISSUE 8): the checkpoint
// store, whose dropped write error IS a lost checkpoint, and the serve
// tier, whose persistence protocol and HTTP encoding sit between the
// engine and its clients.
var errdropPkgs = map[string]bool{
	"internal/ckpt":  true,
	"internal/serve": true,
}

// goleakScope covers the packages that launch goroutines as part of the
// product (the service tier, the worker pool, the rank engine, and the
// commands): every spawn there must be joinable.
func goleakScope(rel string) bool {
	return rel == "internal/par" || rel == "internal/serve" ||
		strings.HasPrefix(rel, "internal/serve/") ||
		rel == "internal/rank" ||
		rel == "cmd" || strings.HasPrefix(rel, "cmd/")
}

const fixturePrefix = "internal/lint/testdata/src/"

// checksFor maps a module-relative package directory to the checks that
// apply to it. Golden fixture packages select the single check named by
// their directory, so each fixture exercises exactly its own check.
func checksFor(rel string) []*Check {
	if rest, ok := strings.CutPrefix(rel, fixturePrefix); ok {
		name, _, _ := strings.Cut(rest, "/")
		if c := ByName(name); c != nil {
			return []*Check{c}
		}
		return nil // support packages for fixtures, e.g. the par stub
	}
	if strings.Contains(rel, "testdata") {
		return nil
	}
	var cs []*Check
	if numericPkgs[rel] {
		cs = append(cs, detmapCheck, mutflagCheck)
	}
	if errdropPkgs[rel] {
		cs = append(cs, errdropCheck)
	}
	if goleakScope(rel) {
		cs = append(cs, goleakCheck)
	}
	if rel == "internal/obs" {
		// The observability package must read the clock, so noclock is
		// replaced by the stricter-scoped seam rule.
		cs = append(cs, obsclockCheck)
	} else if strings.HasPrefix(rel, "internal/") && !noclockExempt[rel] {
		cs = append(cs, noclockCheck)
	}
	// Annotation-driven checks run everywhere: they only fire on
	// //tme:noalloc and //tme:owner declarations.
	cs = append(cs, noallocCheck, noallocIPACheck, parwriteCheck, schedownCheck)
	return cs
}

// Run loads the packages matching patterns (relative to the module root)
// and returns every unsuppressed diagnostic, sorted by position. Type
// errors are reported as "typecheck" diagnostics: the analyzer refuses to
// pass silently on code it could not fully resolve.
func Run(root string, patterns []string) ([]Diagnostic, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	// Phase 1: load every pattern package (type-checking pulls in the
	// module-internal imports transitively), so the program-wide call
	// graph below sees the whole module.
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	// Phase 2: build the interprocedural view and share it with every
	// loaded package (imports included, so fixture support packages get
	// it too).
	prog := NewProgram(l)
	for _, p := range l.Packages() {
		p.Prog = prog
	}
	// Phase 3: run the checks per pattern package.
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			pos := token.Position{Filename: p.Dir}
			if te, ok := terr.(types.Error); ok {
				pos = te.Fset.Position(te.Pos)
			}
			diags = append(diags, Diagnostic{Pos: pos, Check: "typecheck", Message: terr.Error()})
		}
		for _, c := range checksFor(p.Rel) {
			for _, d := range c.Run(p) {
				if !p.suppressed(d.Check, d.Pos) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// diag builds a Diagnostic at a node position.
func (p *Package) diag(pos token.Pos, check, format string, args ...interface{}) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

// useOf resolves an identifier to its object via Uses then Defs.
func (p *Package) useOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// pkgNameOf returns the imported package a selector base refers to, or
// nil if the base is not a package identifier.
func (p *Package) pkgNameOf(expr ast.Expr) *types.Package {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := p.useOf(id).(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// parFuncs are the worker-pool entry points whose closure arguments the
// parwrite and noalloc checks treat specially.
var parFuncs = map[string]bool{
	"For":           true,
	"ForRange":      true,
	"ForRangeGrain": true,
	"Do":            true,
	"SumFloat64":    true,
}

// parCallee reports whether call invokes one of the par package's loop
// helpers, returning the helper name. The par package is matched by
// import-path suffix so the testdata stub package qualifies too.
func (p *Package) parCallee(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg := p.pkgNameOf(sel.X)
	if pkg == nil {
		return "", false
	}
	path := pkg.Path()
	if path != "par" && !strings.HasSuffix(path, "/par") {
		return "", false
	}
	if !parFuncs[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}
