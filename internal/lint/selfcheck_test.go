package lint

import (
	"go/token"
	"path/filepath"
	"testing"
)

// TestRepoIsClean is the self-check: the analyzer must run clean over the
// whole module modulo the committed baseline, i.e. `go run ./cmd/tmevet
// -baseline tmevet.baseline.json ./...` exits 0. Any new finding must be
// fixed, carry an explicit justified //tmevet:ignore, or — for
// grandfathered debt only — be added to the baseline. Stale baseline
// entries fail too: the ledger must shrink as findings are fixed.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root := moduleRoot(t)
	diags, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(filepath.Join(root, "tmevet.baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	kept, _, stale := b.Apply(root, diags)
	for _, d := range kept {
		t.Errorf("%s", d)
	}
	if len(kept) > 0 {
		t.Logf("fix the findings or suppress with //tmevet:ignore <check> -- rationale (see DESIGN.md §7.3, §7.8)")
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (finding fixed? remove it): %s %s: %s", e.Check, e.File, e.Message)
	}
}

// TestSuppressionRequiresNamedCheck pins the suppression grammar: a bare
// ignore comment (no check name) must not suppress anything.
func TestSuppressionRequiresNamedCheck(t *testing.T) {
	p := &Package{}
	p.ignores = map[string]map[int][]string{}
	if p.suppressed("detmap", diagAt("f.go", 3)) {
		t.Fatal("empty ignore table suppressed a diagnostic")
	}
	p.ignores["f.go"] = map[int][]string{3: nil} // "//tmevet:ignore" with no names
	if p.suppressed("detmap", diagAt("f.go", 3)) {
		t.Fatal("bare //tmevet:ignore must not suppress; the check must be named")
	}
	p.ignores["f.go"][3] = []string{"detmap"}
	if !p.suppressed("detmap", diagAt("f.go", 3)) {
		t.Fatal("named ignore on the same line must suppress")
	}
	if !p.suppressed("detmap", diagAt("f.go", 4)) {
		t.Fatal("named ignore on the line above must suppress")
	}
	if p.suppressed("detmap", diagAt("f.go", 5)) {
		t.Fatal("ignore must not leak two lines down")
	}
	if p.suppressed("noclock", diagAt("f.go", 3)) {
		t.Fatal("ignore must not cover other checks")
	}
}

func diagAt(file string, line int) (pos token.Position) {
	pos.Filename = file
	pos.Line = line
	return pos
}
