package lint

import (
	"bytes"
	"encoding/json"
)

// Report is tmevet's machine-readable output (-json): the check catalog
// plus every diagnostic, byte-identical across runs and file-discovery
// orders. Determinism comes for free from the pipeline — Run sorts
// diagnostics by position, the registry is name-ordered, and baselines
// match by content, not by encounter order.
type Report struct {
	Version     int          `json:"version"`
	Checks      []CheckInfo  `json:"checks"`
	Diagnostics []ReportDiag `json:"diagnostics"`
	Total       int          `json:"total"`
	Baselined   int          `json:"baselined"`
}

// CheckInfo documents one registered check.
type CheckInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// ReportDiag is one finding with module-relative file path.
type ReportDiag struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Check     string `json:"check"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
}

// NewReport assembles a report from Run's sorted output. kept and
// baselined are the two halves of Baseline.Apply; pass all diagnostics as
// kept when no baseline is in play.
func NewReport(root string, kept, baselined []Diagnostic) *Report {
	r := &Report{Version: 1}
	for _, c := range Checks() {
		r.Checks = append(r.Checks, CheckInfo{Name: c.Name, Doc: c.Doc})
	}
	add := func(d Diagnostic, isBase bool) {
		r.Diagnostics = append(r.Diagnostics, ReportDiag{
			File:      RelPath(root, d.Pos.Filename),
			Line:      d.Pos.Line,
			Col:       d.Pos.Column,
			Check:     d.Check,
			Message:   d.Message,
			Baselined: isBase,
		})
	}
	// Merge the two sorted halves back into position order.
	i, j := 0, 0
	for i < len(kept) || j < len(baselined) {
		switch {
		case j == len(baselined):
			add(kept[i], false)
			i++
		case i == len(kept):
			add(baselined[j], true)
			j++
		case diagLess(kept[i], baselined[j]):
			add(kept[i], false)
			i++
		default:
			add(baselined[j], true)
			j++
		}
	}
	r.Total = len(r.Diagnostics)
	r.Baselined = len(baselined)
	return r
}

// diagLess is the same ordering Run sorts by.
func diagLess(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Check < b.Check
}

// Encode renders the report as indented JSON with a trailing newline.
func (r *Report) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
