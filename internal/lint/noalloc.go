package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noalloc enforces the steady-state zero-allocation contract on functions
// annotated with a "//tme:noalloc" doc directive (the hot paths of the
// mesh pipeline and short-range engine from PRs 1–2). Inside an annotated
// function it flags the syntactic allocation sources:
//
//   - make, new, and append calls (append may grow its backing array);
//   - composite literals of slice or map type, and any composite literal
//     whose address is taken (escape risk);
//   - closure literals, except those passed directly to a par.* worker
//     helper — the one sanctioned closure (it is only materialized on the
//     multi-worker path, which the callers gate behind par.WorkersGrain);
//   - go statements (goroutine launch allocates; use par).
//
// Type info whitelists the non-escaping cases: plain struct and array
// value literals (vec.V{...} and friends live on the stack). This check
// inspects only the annotated body itself; the companion noalloc-ipa
// check walks the call graph so an unannotated helper cannot silently
// reintroduce an allocation. testing.AllocsPerRun gates remain the
// runtime backstop. Guarded grow-once paths ("if cap(buf) < n { buf =
// make... }") are legitimate; suppress those lines explicitly with
// //tmevet:ignore noalloc -- grow-once.
var noallocCheck = &Check{
	Name: "noalloc",
	Doc:  "allocation construct inside a //tme:noalloc annotated function",
	Run:  runNoalloc,
}

// noallocDirective marks a function as a steady-state zero-allocation
// path.
const noallocDirective = "//tme:noalloc"

func hasNoallocDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == noallocDirective || strings.HasPrefix(c.Text, noallocDirective+" ") {
			return true
		}
	}
	return false
}

func runNoalloc(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocDirective(fd) {
				continue
			}
			diags = append(diags, p.checkNoallocBody(fd)...)
		}
	}
	return diags
}

// allocKind classifies one syntactic allocation source.
type allocKind int

const (
	allocMakeNew allocKind = iota
	allocAppend
	allocLiteral
	allocAddressedLiteral
	allocClosure
	allocGo
)

// allocSite is one allocation construct found in a function body. The
// shared collector feeds both the per-function noalloc check and the
// call-graph-aware noalloc-ipa check.
type allocSite struct {
	pos  token.Pos
	kind allocKind
	what string // "make", "new", or the literal's type string
}

// funcAllocs collects every allocation construct in fd's body, applying
// the par-closure exemption (closures handed directly to a par.* worker
// helper are the sanctioned dispatch pattern).
func (p *Package) funcAllocs(fd *ast.FuncDecl) []allocSite {
	// First pass: closures handed directly to par.* helpers are the
	// sanctioned parallel-dispatch pattern; composite literals under & are
	// heap-escape risks even for struct types.
	parClosures := map[*ast.FuncLit]bool{}
	addressed := map[*ast.CompositeLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, ok := p.parCallee(n); ok {
				for _, arg := range n.Args {
					if fl, ok := arg.(*ast.FuncLit); ok {
						parClosures[fl] = true
					}
				}
			}
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" {
				addressed[cl] = true
			}
		}
		return true
	})

	var sites []allocSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := p.useOf(id).(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new":
						sites = append(sites, allocSite{n.Pos(), allocMakeNew, b.Name()})
					case "append":
						sites = append(sites, allocSite{n.Pos(), allocAppend, "append"})
					}
				}
			}
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			ts := types.TypeString(tv.Type, types.RelativeTo(p.Pkg))
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				sites = append(sites, allocSite{n.Pos(), allocLiteral, ts})
			default:
				if addressed[n] {
					sites = append(sites, allocSite{n.Pos(), allocAddressedLiteral, ts})
				}
			}
		case *ast.FuncLit:
			if !parClosures[n] {
				sites = append(sites, allocSite{n.Pos(), allocClosure, "closure"})
			}
		case *ast.GoStmt:
			sites = append(sites, allocSite{n.Pos(), allocGo, "go statement"})
		}
		return true
	})
	return sites
}

// describe renders a site for cross-function messages ("make", "append",
// "[]float64 literal", "closure literal", "go statement").
func (s allocSite) describe() string {
	switch s.kind {
	case allocLiteral:
		return s.what + " literal"
	case allocAddressedLiteral:
		return "&" + s.what + " literal"
	case allocClosure:
		return "closure literal"
	default:
		return s.what
	}
}

func (p *Package) checkNoallocBody(fd *ast.FuncDecl) []Diagnostic {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if id := receiverTypeName(fd.Recv.List[0].Type); id != "" {
			name = id + "." + name
		}
	}
	var diags []Diagnostic
	for _, s := range p.funcAllocs(fd) {
		switch s.kind {
		case allocMakeNew:
			diags = append(diags, p.diag(s.pos, "noalloc",
				"%s in //tme:noalloc function %s allocates; preallocate or pool the buffer", s.what, name))
		case allocAppend:
			diags = append(diags, p.diag(s.pos, "noalloc",
				"append in //tme:noalloc function %s may grow its backing array; size the buffer at rebuild time", name))
		case allocLiteral:
			diags = append(diags, p.diag(s.pos, "noalloc",
				"%s literal in //tme:noalloc function %s allocates", s.what, name))
		case allocAddressedLiteral:
			diags = append(diags, p.diag(s.pos, "noalloc",
				"&%s literal in //tme:noalloc function %s risks a heap allocation", s.what, name))
		case allocClosure:
			diags = append(diags, p.diag(s.pos, "noalloc",
				"closure literal in //tme:noalloc function %s may allocate; only closures passed directly to par.* are exempt", name))
		case allocGo:
			diags = append(diags, p.diag(s.pos, "noalloc",
				"go statement in //tme:noalloc function %s allocates a goroutine; dispatch through par instead", name))
		}
	}
	return diags
}

// receiverTypeName extracts the receiver's type identifier for messages.
func receiverTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(t.X)
	}
	return ""
}
