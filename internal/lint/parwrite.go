package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// parwrite guards the slab-ownership discipline: a closure handed to a
// par worker helper runs concurrently on many chunks, so a plain
// assignment to a variable captured from the enclosing scope is a data
// race (and, even when "benign", makes the result depend on scheduling).
// The sanctioned write forms are element writes through an index
// (buf[i] = ..., v.part[s].e += ... — ownership partitions the index
// space) and variables declared inside the closure itself.
//
// par.Do is different: its heterogeneous tasks legitimately assign
// distinct captured result variables (res = shortRange(...) in one task,
// eBonded = bonded(...) in another). For Do the check therefore flags
// only overlap — a captured variable written by one task and read or
// written by a sibling task of the same call.
//
// Mutation hidden behind method calls is out of scope (not
// interprocedural); the race-detector tier of tier1.sh remains the
// runtime backstop.
var parwriteCheck = &Check{
	Name: "parwrite",
	Doc:  "closure passed to par.For/ForRange/Do writes captured shared state",
	Run:  runParwrite,
}

func runParwrite(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := p.parCallee(call)
			if !ok {
				return true
			}
			var closures []*ast.FuncLit
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					closures = append(closures, fl)
				}
			}
			if name == "Do" {
				diags = append(diags, p.checkDoTasks(closures)...)
			} else {
				for _, fl := range closures {
					diags = append(diags, p.checkWorkerClosure(fl, name)...)
				}
			}
			return true
		})
	}
	return diags
}

// lhsRoot walks an assignment target down to its root identifier,
// reporting whether the path passes through an element index.
func lhsRoot(e ast.Expr) (id *ast.Ident, indexed bool) {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t, indexed
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			indexed = true
			e = t.X
		default:
			return nil, indexed
		}
	}
}

// capturedTarget resolves an assignment target to a variable declared
// outside the closure, or nil if the write is local or index-partitioned.
func (p *Package) capturedTarget(fl *ast.FuncLit, e ast.Expr) *types.Var {
	id, indexed := lhsRoot(e)
	if id == nil || indexed || id.Name == "_" {
		return nil
	}
	v, ok := p.useOf(id).(*types.Var)
	if !ok {
		return nil
	}
	if v.Pos() >= fl.Pos() && v.Pos() < fl.End() {
		return nil // declared inside the closure (param or local)
	}
	return v
}

// closureWrites collects the captured variables a closure assigns (other
// than through an index), with one representative position each.
func (p *Package) closureWrites(fl *ast.FuncLit) map[*types.Var]token.Pos {
	writes := map[*types.Var]token.Pos{}
	record := func(e ast.Expr) {
		if v := p.capturedTarget(fl, e); v != nil {
			if _, ok := writes[v]; !ok {
				writes[v] = e.Pos()
			}
		}
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					record(n.Key)
				}
				if n.Value != nil {
					record(n.Value)
				}
			}
		}
		return true
	})
	return writes
}

// checkWorkerClosure flags every captured non-index write in a closure
// passed to a chunked worker helper (For/ForRange/ForRangeGrain/
// SumFloat64), where the closure body runs concurrently with itself.
func (p *Package) checkWorkerClosure(fl *ast.FuncLit, helper string) []Diagnostic {
	var diags []Diagnostic
	for v, pos := range p.closureWrites(fl) {
		diags = append(diags, p.diag(pos, "parwrite",
			"closure passed to par.%s writes captured variable %q; partition writes by index (buf[i]) or use per-worker scratch", helper, v.Name()))
	}
	return diags
}

// checkDoTasks flags captured variables written by one par.Do task and
// touched by a sibling task of the same call.
func (p *Package) checkDoTasks(tasks []*ast.FuncLit) []Diagnostic {
	writes := make([]map[*types.Var]token.Pos, len(tasks))
	uses := make([]map[*types.Var]bool, len(tasks))
	for i, fl := range tasks {
		writes[i] = p.closureWrites(fl)
		uses[i] = map[*types.Var]bool{}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := p.useOf(id).(*types.Var); ok {
				if v.Pos() < fl.Pos() || v.Pos() >= fl.End() {
					uses[i][v] = true
				}
			}
			return true
		})
	}
	var diags []Diagnostic
	for i := range tasks {
		for v, pos := range writes[i] {
			for j := range tasks {
				if j == i {
					continue
				}
				if uses[j][v] {
					diags = append(diags, p.diag(pos, "parwrite",
						"par.Do task writes captured variable %q that a sibling task also touches; tasks must write disjoint state", v.Name()))
					break
				}
			}
		}
	}
	return diags
}
