package lint

import (
	"go/ast"
	"go/types"
)

// errdrop guards the durability and wire paths (internal/ckpt and the
// serve tier's persistence/HTTP encoding): an error silently discarded
// there is how a torn checkpoint, a lost terminal marker, or a half-
// written response turns into undetectable corruption. The check flags
// every discarded error result:
//
//   - a bare call statement whose callee returns an error;
//   - the same under `defer` or `go`;
//   - an assignment that lands an error result in the blank identifier
//     (`_ = f()`, `n, _ := strconv.Atoi(v)`).
//
// Intentional drops carry a //tmevet:ignore errdrop suppression with a
// rationale — which is the point: every drop on a durability path is a
// reviewed decision, not an accident.
var errdropCheck = &Check{
	Name: "errdrop",
	Doc:  "discarded error result on a durability or wire path",
	Run:  runErrdrop,
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// callErrors reports whether a call yields at least one error result.
func (p *Package) callErrors(call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

func runErrdrop(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && p.callErrors(call) {
					diags = append(diags, p.diag(call.Pos(), "errdrop",
						"call discards its error result on a durability/wire path; handle it or suppress with a rationale"))
				}
			case *ast.DeferStmt:
				if p.callErrors(n.Call) {
					diags = append(diags, p.diag(n.Call.Pos(), "errdrop",
						"deferred call discards its error result; capture it or suppress with a rationale"))
				}
			case *ast.GoStmt:
				if p.callErrors(n.Call) {
					diags = append(diags, p.diag(n.Call.Pos(), "errdrop",
						"go statement discards the spawned call's error result; collect it through a channel or suppress with a rationale"))
				}
			case *ast.AssignStmt:
				diags = append(diags, p.blankErrorAssigns(n)...)
			}
			return true
		})
	}
	return diags
}

// blankErrorAssigns flags `_` targets whose assigned value is an error,
// in both the tuple form (n, _ := f()) and the parallel form (_ = err).
func (p *Package) blankErrorAssigns(as *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	flag := func(id *ast.Ident) {
		diags = append(diags, p.diag(id.Pos(), "errdrop",
			"error result assigned to the blank identifier; handle it or suppress with a rationale"))
	}
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		tv, ok := p.Info.Types[call]
		if !ok {
			return nil
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return nil
		}
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && isErrorType(tuple.At(i).Type()) {
				flag(id)
			}
		}
		return diags
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || i >= len(as.Rhs) {
			continue
		}
		if tv, ok := p.Info.Types[as.Rhs[i]]; ok && isErrorType(tv.Type) {
			flag(id)
		}
	}
	return diags
}
