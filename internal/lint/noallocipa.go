package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noalloc-ipa closes the loophole the per-function noalloc check leaves
// open: extracting a helper out of an annotated hot function silently
// moves the allocation out of the checker's sight. This check walks the
// static call graph from every //tme:noalloc function and flags calls
// that reach an UNANNOTATED module function containing an allocation
// construct. Callees that carry their own //tme:noalloc are skipped here
// — they are checked directly — so annotating the helper is the fix that
// both silences this check and extends the per-function one.
//
// The par package (and its fixture stub) is trusted as a leaf: it is the
// sanctioned goroutine-dispatch layer, whose worker spawns are gated to
// the multi-worker path by design. Allocation sites in a callee that are
// suppressed with //tmevet:ignore noalloc (or noalloc-ipa) — grow-once
// guards, pool refills — do not count against it. Interface dispatch and
// function values produce no edges; the AllocsPerRun gates remain the
// runtime backstop for those.
var noallocIPACheck = &Check{
	Name: "noalloc-ipa",
	Doc:  "//tme:noalloc function reaches an allocating unannotated callee through the call graph",
	Run:  runNoallocIPA,
}

func runNoallocIPA(p *Package) []Diagnostic {
	prog := p.Prog
	if prog == nil {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocDirective(fd) {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			diags = append(diags, p.ipaFrom(prog, origin(fn))...)
		}
	}
	return diags
}

// ipaItem is one frontier entry of the breadth-first walk: a callee, the
// first-hop call position in the annotated root (where the diagnostic is
// anchored, so the root's author can see and suppress it), and the call
// path for the message.
type ipaItem struct {
	fn       *types.Func
	firstHop token.Pos
	path     []string
}

// ipaFrom walks the call graph from an annotated root and reports every
// reachable unannotated module function that allocates.
func (p *Package) ipaFrom(prog *Program, root *types.Func) []Diagnostic {
	rootNode := prog.Node(root)
	if rootNode == nil {
		return nil
	}
	rootName := displayName(root, p)
	visited := map[*types.Func]bool{root: true}
	var queue []ipaItem
	for _, e := range rootNode.Calls {
		if !visited[e.Callee] {
			visited[e.Callee] = true
			queue = append(queue, ipaItem{fn: e.Callee, firstHop: e.Pos})
		}
	}
	var diags []Diagnostic
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		node := prog.Node(it.fn)
		if node == nil {
			continue // stdlib or bodiless: out of scope
		}
		if isParPackage(it.fn.Pkg()) {
			continue // sanctioned dispatch leaf
		}
		if hasNoallocDirective(node.Decl) {
			continue // carries its own annotation; checked directly
		}
		calleeName := displayName(it.fn, p)
		if desc, ok := node.unsuppressedAlloc(); ok {
			via := ""
			if len(it.path) > 0 {
				via = " via " + strings.Join(it.path, " -> ")
			}
			diags = append(diags, p.diag(it.firstHop, "noalloc-ipa",
				"//tme:noalloc function %s calls %s%s, which allocates (%s); annotate the callee //tme:noalloc or hoist the allocation",
				rootName, calleeName, via, desc))
		}
		for _, e := range node.Calls {
			if !visited[e.Callee] {
				visited[e.Callee] = true
				path := append(append([]string(nil), it.path...), calleeName)
				queue = append(queue, ipaItem{fn: e.Callee, firstHop: it.firstHop, path: path})
			}
		}
	}
	return diags
}

// unsuppressedAlloc reports the first allocation site in the node's body
// that is not excused by a //tmevet:ignore noalloc / noalloc-ipa comment
// at the site.
func (n *FuncNode) unsuppressedAlloc() (string, bool) {
	for _, s := range n.Pkg.funcAllocs(n.Decl) {
		pos := n.Pkg.Fset.Position(s.pos)
		if n.Pkg.suppressed("noalloc", pos) || n.Pkg.suppressed("noalloc-ipa", pos) {
			continue
		}
		return s.describe(), true
	}
	return "", false
}
