package lint

import (
	"go/ast"
	"strings"
)

// obsclock is the clock-seam rule of the observability package. internal/obs
// is exempt from noclock — it must read the wall clock to time stages — but
// unconstrained time.* calls there would let timing leak anywhere the
// package is imported. obsclock therefore confines wall-clock reads to
// functions carrying a "//tme:clock-seam" doc directive: everything else in
// the package (span arithmetic, reports, counters) must receive time through
// the recorder's injected clock, which tests replace with a scripted
// function. time.* reads in package-level variable initializers sit outside
// any seam function and are flagged too; route them through a seam helper.
var obsclockCheck = &Check{
	Name: "obsclock",
	Doc:  "time.* read outside a //tme:clock-seam function in the clock-seam package",
	Run:  runObsclock,
}

// clockSeamDirective marks a function as a sanctioned wall-clock source.
const clockSeamDirective = "//tme:clock-seam"

func hasClockSeamDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == clockSeamDirective || strings.HasPrefix(c.Text, clockSeamDirective+" ") {
			return true
		}
	}
	return false
}

// clockFuncs are the time package functions that read the wall clock.
// Pure constructors and converters (time.Duration, time.Unix, ...) carry no
// ambient state and stay legal everywhere.
var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runObsclock(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasClockSeamDirective(fd) {
				continue
			}
			diags = append(diags, p.obsclockScan(decl)...)
		}
	}
	return diags
}

// obsclockScan flags every wall-clock read under n (a non-seam declaration:
// an unannotated function, or a var/const block whose initializers run at
// package init, outside any seam).
func (p *Package) obsclockScan(n ast.Node) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := p.pkgNameOf(sel.X)
		if pkg == nil || pkg.Path() != "time" {
			return true
		}
		if clockFuncs[sel.Sel.Name] {
			diags = append(diags, p.diag(call.Pos(), "obsclock",
				"time.%s outside a //tme:clock-seam function; only seam-annotated helpers may read the clock", sel.Sel.Name))
		}
		return true
	})
	return diags
}
