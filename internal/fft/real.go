package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"tme4a/internal/obs"
	"tme4a/internal/par"
)

// cbufPool recycles per-worker complex scratch rows so the 3D passes
// allocate nothing in steady state.
var cbufPool = sync.Pool{New: func() interface{} { return new([]complex128) }}

//tme:noalloc
func getCBuf(n int) *[]complex128 {
	p := cbufPool.Get().(*[]complex128)
	if cap(*p) < n {
		*p = make([]complex128, n) //tmevet:ignore noalloc -- grow-once: reused via cbufPool in steady state
	}
	*p = (*p)[:n]
	return p
}

// rowGrain keeps each parallel chunk of 1D transforms at a useful size:
// roughly 4096 butterfly operations per chunk.
func rowGrain(n int) int {
	work := n * (bits.Len(uint(n)) + 1)
	g := 4096 / (work + 1)
	if g < 1 {
		g = 1
	}
	return g
}

// RealPlan transforms N real samples using an N/2-point complex FFT (the
// classic packing trick), producing the non-redundant half spectrum
// X[0..N/2] (N/2+1 bins; X[0] and X[N/2] are real).
type RealPlan struct {
	n    int
	half *Plan
	// w[k] = e^{-2πi k/n}, k = 0..n/2.
	w []complex128
}

// NewRealPlan returns a plan for even power-of-two length n ≥ 2.
func NewRealPlan(n int) *RealPlan {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: real length %d is not a power of two ≥ 2", n))
	}
	p := &RealPlan{n: n, half: NewPlan(n / 2)}
	p.w = make([]complex128, n/2+1)
	for k := range p.w {
		theta := -2 * math.Pi * float64(k) / float64(n)
		p.w[k] = complex(math.Cos(theta), math.Sin(theta))
	}
	return p
}

// Len returns the real transform length.
func (p *RealPlan) Len() int { return p.n }

// Forward computes the half spectrum of the n real samples into dst
// (length n/2+1). scratch must have length ≥ n/2.
//
//tme:noalloc
func (p *RealPlan) Forward(src []float64, dst, scratch []complex128) {
	n := p.n
	h := n / 2
	c := scratch[:h]
	for j := 0; j < h; j++ {
		c[j] = complex(src[2*j], src[2*j+1])
	}
	p.half.Forward(c)
	// Unpack: A[k] = E[k] + W^k·O[k], with
	// E[k] = (C[k]+conj(C[h−k]))/2, O[k] = (C[k]−conj(C[h−k]))/(2i).
	for k := 0; k <= h; k++ {
		var ck, chk complex128
		if k == h {
			ck = c[0]
		} else {
			ck = c[k]
		}
		if k == 0 {
			chk = c[0]
		} else {
			chk = c[h-k]
		}
		cc := complex(real(chk), -imag(chk))
		e := (ck + cc) * 0.5
		o := (ck - cc) * complex(0, -0.5)
		dst[k] = e + p.w[k]*o
	}
}

// Inverse reconstructs n real samples from the half spectrum src (length
// n/2+1), including the 1/n normalization. scratch must have length ≥ n/2.
//
//tme:noalloc
func (p *RealPlan) Inverse(src []complex128, dst []float64, scratch []complex128) {
	n := p.n
	h := n / 2
	c := scratch[:h]
	// Repack: C[k] = E[k] + i·W^{-k}... invert the unpacking:
	// E[k] = (A[k]+conj(A[h−k]))/2, O[k] = conj(W^k)·(A[k]−conj(A[h−k]))/2,
	// C[k] = E[k] + i·O[k].
	for k := 0; k < h; k++ {
		ak := src[k]
		ahk := src[h-k]
		cahk := complex(real(ahk), -imag(ahk))
		e := (ak + cahk) * 0.5
		o := (ak - cahk) * 0.5 * conj(p.w[k])
		c[k] = e + complex(0, 1)*o
	}
	p.half.Inverse(c)
	for j := 0; j < h; j++ {
		dst[2*j] = real(c[j])
		dst[2*j+1] = imag(c[j])
	}
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }

// RealPlan3 performs 3D transforms of real data (x-fastest layout) storing
// only the non-redundant half spectrum along x: hx = nx/2+1 complex bins.
// This halves the work and memory of the y/z passes relative to a full
// complex transform — the layout used for the SPME reciprocal solve, where
// the input grid and the Green function are real.
type RealPlan3 struct {
	Nx, Ny, Nz int
	Hx         int // nx/2 + 1
	px         *RealPlan
	py, pz     *Plan
	// o, when non-nil, times Forward/Inverse as the fft stage (which nests
	// inside the top-SPME stage) and counts transforms.
	o *obs.Recorder
}

// SetObs attaches a stage recorder (nil detaches). Not safe to call
// concurrently with Forward/Inverse.
func (p *RealPlan3) SetObs(r *obs.Recorder) { p.o = r }

// NewRealPlan3 returns a 3D real-transform plan.
func NewRealPlan3(nx, ny, nz int) *RealPlan3 {
	return &RealPlan3{
		Nx: nx, Ny: ny, Nz: nz, Hx: nx/2 + 1,
		px: NewRealPlan(nx),
		py: NewPlan(ny),
		pz: NewPlan(nz),
	}
}

// SpectrumLen returns the half-spectrum size hx·ny·nz.
func (p *RealPlan3) SpectrumLen() int { return p.Hx * p.Ny * p.Nz }

// Forward computes the half spectrum of real data (length nx·ny·nz) into
// spec (length SpectrumLen), indexed kx + Hx·(ky + Ny·kz).
//
//tme:noalloc
func (p *RealPlan3) Forward(data []float64, spec []complex128) {
	nx, ny, nz, hx := p.Nx, p.Ny, p.Nz, p.Hx
	if len(data) != nx*ny*nz || len(spec) != p.SpectrumLen() {
		panic("fft: RealPlan3 Forward size mismatch")
	}
	sp := p.o.Start(obs.StageFFT)
	p.o.Add(obs.CounterFFTTransforms, 1)
	defer sp.Stop()
	// Every 1D line is transformed independently with per-worker scratch,
	// so the passes parallelize with bitwise-deterministic results. Each
	// pass branches before building its closure so the single-worker path
	// stays allocation-free.
	if par.WorkersGrain(nz*ny, rowGrain(nx)) == 1 {
		p.xPass(data, spec, false, 0, nz*ny)
	} else {
		par.ForRangeGrain(nz*ny, rowGrain(nx), func(lo, hi int) { p.xPass(data, spec, false, lo, hi) })
	}
	// y-pass (stride hx) and z-pass (stride hx·ny) on the half spectrum.
	if par.WorkersGrain(nz*hx, rowGrain(ny)) == 1 {
		p.yPass(spec, false, 0, nz*hx)
	} else {
		par.ForRangeGrain(nz*hx, rowGrain(ny), func(lo, hi int) { p.yPass(spec, false, lo, hi) })
	}
	if par.WorkersGrain(ny*hx, rowGrain(nz)) == 1 {
		p.zPass(spec, false, 0, ny*hx)
	} else {
		par.ForRangeGrain(ny*hx, rowGrain(nz), func(lo, hi int) { p.zPass(spec, false, lo, hi) })
	}
}

// xPass runs the r2c (forward) or c2r (inverse) x-transform on rows
// [lo, hi) with pooled scratch.
//
//tme:noalloc
func (p *RealPlan3) xPass(data []float64, spec []complex128, inverse bool, lo, hi int) {
	nx, hx := p.Nx, p.Hx
	sp := getCBuf(nx / 2)
	for r := lo; r < hi; r++ {
		re := data[nx*r : nx*r+nx]
		cx := spec[hx*r : hx*r+hx]
		if inverse {
			p.px.Inverse(cx, re, *sp)
		} else {
			p.px.Forward(re, cx, *sp)
		}
	}
	cbufPool.Put(sp)
}

// yPass transforms the y-lines (stride hx) indexed by columns [lo, hi)
// over (x, z).
//
//tme:noalloc
func (p *RealPlan3) yPass(spec []complex128, inverse bool, lo, hi int) {
	ny, hx := p.Ny, p.Hx
	rp := getCBuf(ny)
	row := *rp
	for c := lo; c < hi; c++ {
		x, z := c%hx, c/hx
		base := x + hx*ny*z
		for y := 0; y < ny; y++ {
			row[y] = spec[base+hx*y]
		}
		if inverse {
			p.py.Inverse(row[:ny])
		} else {
			p.py.Forward(row[:ny])
		}
		for y := 0; y < ny; y++ {
			spec[base+hx*y] = row[y]
		}
	}
	cbufPool.Put(rp)
}

// zPass transforms the z-lines (stride hx·ny) indexed by columns [lo, hi)
// over (x, y).
//
//tme:noalloc
func (p *RealPlan3) zPass(spec []complex128, inverse bool, lo, hi int) {
	ny, nz, hx := p.Ny, p.Nz, p.Hx
	rp := getCBuf(nz)
	row := *rp
	for c := lo; c < hi; c++ {
		x, y := c%hx, c/hx
		base := x + hx*y
		for z := 0; z < nz; z++ {
			row[z] = spec[base+hx*ny*z]
		}
		if inverse {
			p.pz.Inverse(row[:nz])
		} else {
			p.pz.Forward(row[:nz])
		}
		for z := 0; z < nz; z++ {
			spec[base+hx*ny*z] = row[z]
		}
	}
	cbufPool.Put(rp)
}

// Inverse reconstructs real data from the half spectrum (normalized).
// spec is modified in place.
//
//tme:noalloc
func (p *RealPlan3) Inverse(spec []complex128, data []float64) {
	nx, ny, nz, hx := p.Nx, p.Ny, p.Nz, p.Hx
	if len(data) != nx*ny*nz || len(spec) != p.SpectrumLen() {
		panic("fft: RealPlan3 Inverse size mismatch")
	}
	sp := p.o.Start(obs.StageFFT)
	p.o.Add(obs.CounterFFTTransforms, 1)
	defer sp.Stop()
	if par.WorkersGrain(ny*hx, rowGrain(nz)) == 1 {
		p.zPass(spec, true, 0, ny*hx)
	} else {
		par.ForRangeGrain(ny*hx, rowGrain(nz), func(lo, hi int) { p.zPass(spec, true, lo, hi) })
	}
	if par.WorkersGrain(nz*hx, rowGrain(ny)) == 1 {
		p.yPass(spec, true, 0, nz*hx)
	} else {
		par.ForRangeGrain(nz*hx, rowGrain(ny), func(lo, hi int) { p.yPass(spec, true, lo, hi) })
	}
	if par.WorkersGrain(nz*ny, rowGrain(nx)) == 1 {
		p.xPass(data, spec, true, 0, nz*ny)
	} else {
		par.ForRangeGrain(nz*ny, rowGrain(nx), func(lo, hi int) { p.xPass(data, spec, true, lo, hi) })
	}
}
