package fft

import (
	"fmt"
	"math"
)

// RealPlan transforms N real samples using an N/2-point complex FFT (the
// classic packing trick), producing the non-redundant half spectrum
// X[0..N/2] (N/2+1 bins; X[0] and X[N/2] are real).
type RealPlan struct {
	n    int
	half *Plan
	// w[k] = e^{-2πi k/n}, k = 0..n/2.
	w []complex128
}

// NewRealPlan returns a plan for even power-of-two length n ≥ 2.
func NewRealPlan(n int) *RealPlan {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: real length %d is not a power of two ≥ 2", n))
	}
	p := &RealPlan{n: n, half: NewPlan(n / 2)}
	p.w = make([]complex128, n/2+1)
	for k := range p.w {
		theta := -2 * math.Pi * float64(k) / float64(n)
		p.w[k] = complex(math.Cos(theta), math.Sin(theta))
	}
	return p
}

// Len returns the real transform length.
func (p *RealPlan) Len() int { return p.n }

// Forward computes the half spectrum of the n real samples into dst
// (length n/2+1). scratch must have length ≥ n/2.
func (p *RealPlan) Forward(src []float64, dst, scratch []complex128) {
	n := p.n
	h := n / 2
	c := scratch[:h]
	for j := 0; j < h; j++ {
		c[j] = complex(src[2*j], src[2*j+1])
	}
	p.half.Forward(c)
	// Unpack: A[k] = E[k] + W^k·O[k], with
	// E[k] = (C[k]+conj(C[h−k]))/2, O[k] = (C[k]−conj(C[h−k]))/(2i).
	for k := 0; k <= h; k++ {
		var ck, chk complex128
		if k == h {
			ck = c[0]
		} else {
			ck = c[k]
		}
		if k == 0 {
			chk = c[0]
		} else {
			chk = c[h-k]
		}
		cc := complex(real(chk), -imag(chk))
		e := (ck + cc) * 0.5
		o := (ck - cc) * complex(0, -0.5)
		dst[k] = e + p.w[k]*o
	}
}

// Inverse reconstructs n real samples from the half spectrum src (length
// n/2+1), including the 1/n normalization. scratch must have length ≥ n/2.
func (p *RealPlan) Inverse(src []complex128, dst []float64, scratch []complex128) {
	n := p.n
	h := n / 2
	c := scratch[:h]
	// Repack: C[k] = E[k] + i·W^{-k}... invert the unpacking:
	// E[k] = (A[k]+conj(A[h−k]))/2, O[k] = conj(W^k)·(A[k]−conj(A[h−k]))/2,
	// C[k] = E[k] + i·O[k].
	for k := 0; k < h; k++ {
		ak := src[k]
		ahk := src[h-k]
		cahk := complex(real(ahk), -imag(ahk))
		e := (ak + cahk) * 0.5
		o := (ak - cahk) * 0.5 * conj(p.w[k])
		c[k] = e + complex(0, 1)*o
	}
	p.half.Inverse(c)
	for j := 0; j < h; j++ {
		dst[2*j] = real(c[j])
		dst[2*j+1] = imag(c[j])
	}
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }

// RealPlan3 performs 3D transforms of real data (x-fastest layout) storing
// only the non-redundant half spectrum along x: hx = nx/2+1 complex bins.
// This halves the work and memory of the y/z passes relative to a full
// complex transform — the layout used for the SPME reciprocal solve, where
// the input grid and the Green function are real.
type RealPlan3 struct {
	Nx, Ny, Nz int
	Hx         int // nx/2 + 1
	px         *RealPlan
	py, pz     *Plan
}

// NewRealPlan3 returns a 3D real-transform plan.
func NewRealPlan3(nx, ny, nz int) *RealPlan3 {
	return &RealPlan3{
		Nx: nx, Ny: ny, Nz: nz, Hx: nx/2 + 1,
		px: NewRealPlan(nx),
		py: NewPlan(ny),
		pz: NewPlan(nz),
	}
}

// SpectrumLen returns the half-spectrum size hx·ny·nz.
func (p *RealPlan3) SpectrumLen() int { return p.Hx * p.Ny * p.Nz }

// Forward computes the half spectrum of real data (length nx·ny·nz) into
// spec (length SpectrumLen), indexed kx + Hx·(ky + Ny·kz).
func (p *RealPlan3) Forward(data []float64, spec []complex128) {
	nx, ny, nz, hx := p.Nx, p.Ny, p.Nz, p.Hx
	if len(data) != nx*ny*nz || len(spec) != p.SpectrumLen() {
		panic("fft: RealPlan3 Forward size mismatch")
	}
	scratch := make([]complex128, nx/2)
	row := make([]complex128, max(ny, nz))
	// x-pass: r2c per row.
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			src := data[nx*(y+ny*z) : nx*(y+ny*z)+nx]
			dst := spec[hx*(y+ny*z) : hx*(y+ny*z)+hx]
			p.px.Forward(src, dst, scratch)
		}
	}
	// y-pass (stride hx) and z-pass (stride hx·ny) on the half spectrum.
	for z := 0; z < nz; z++ {
		for x := 0; x < hx; x++ {
			base := x + hx*ny*z
			for y := 0; y < ny; y++ {
				row[y] = spec[base+hx*y]
			}
			p.py.Forward(row[:ny])
			for y := 0; y < ny; y++ {
				spec[base+hx*y] = row[y]
			}
		}
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < hx; x++ {
			base := x + hx*y
			for z := 0; z < nz; z++ {
				row[z] = spec[base+hx*ny*z]
			}
			p.pz.Forward(row[:nz])
			for z := 0; z < nz; z++ {
				spec[base+hx*ny*z] = row[z]
			}
		}
	}
}

// Inverse reconstructs real data from the half spectrum (normalized).
// spec is modified in place.
func (p *RealPlan3) Inverse(spec []complex128, data []float64) {
	nx, ny, nz, hx := p.Nx, p.Ny, p.Nz, p.Hx
	if len(data) != nx*ny*nz || len(spec) != p.SpectrumLen() {
		panic("fft: RealPlan3 Inverse size mismatch")
	}
	row := make([]complex128, max(ny, nz))
	for y := 0; y < ny; y++ {
		for x := 0; x < hx; x++ {
			base := x + hx*y
			for z := 0; z < nz; z++ {
				row[z] = spec[base+hx*ny*z]
			}
			p.pz.Inverse(row[:nz])
			for z := 0; z < nz; z++ {
				spec[base+hx*ny*z] = row[z]
			}
		}
	}
	for z := 0; z < nz; z++ {
		for x := 0; x < hx; x++ {
			base := x + hx*ny*z
			for y := 0; y < ny; y++ {
				row[y] = spec[base+hx*y]
			}
			p.py.Inverse(row[:ny])
			for y := 0; y < ny; y++ {
				spec[base+hx*y] = row[y]
			}
		}
	}
	scratch := make([]complex128, nx/2)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			src := spec[hx*(y+ny*z) : hx*(y+ny*z)+hx]
			dst := data[nx*(y+ny*z) : nx*(y+ny*z)+nx]
			p.px.Inverse(src, dst, scratch)
		}
	}
}
