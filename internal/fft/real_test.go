package fft

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestRealPlanMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 16, 64, 256} {
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		// Reference: full complex FFT.
		ref := make([]complex128, n)
		for i, v := range src {
			ref[i] = complex(v, 0)
		}
		NewPlan(n).Forward(ref)
		// Half-spectrum transform.
		p := NewRealPlan(n)
		got := make([]complex128, n/2+1)
		scratch := make([]complex128, n/2)
		p.Forward(src, got, scratch)
		for k := 0; k <= n/2; k++ {
			if cmplx.Abs(got[k]-ref[k]) > 1e-10 {
				t.Fatalf("n=%d k=%d: got %v want %v", n, k, got[k], ref[k])
			}
		}
	}
}

func TestRealPlanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 32, 128} {
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		p := NewRealPlan(n)
		spec := make([]complex128, n/2+1)
		scratch := make([]complex128, n/2)
		p.Forward(src, spec, scratch)
		back := make([]float64, n)
		p.Inverse(spec, back, scratch)
		for i := range src {
			if diff := back[i] - src[i]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("n=%d i=%d: roundtrip %g vs %g", n, i, back[i], src[i])
			}
		}
	}
}

func TestRealPlan3MatchesComplexPlan3(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nx, ny, nz := 8, 4, 16
	data := make([]float64, nx*ny*nz)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	// Reference full complex 3D transform.
	ref := make([]complex128, nx*ny*nz)
	for i, v := range data {
		ref[i] = complex(v, 0)
	}
	NewPlan3(nx, ny, nz).Forward(ref)
	// Half-spectrum transform.
	p := NewRealPlan3(nx, ny, nz)
	spec := make([]complex128, p.SpectrumLen())
	p.Forward(data, spec)
	for kz := 0; kz < nz; kz++ {
		for ky := 0; ky < ny; ky++ {
			for kx := 0; kx < p.Hx; kx++ {
				got := spec[kx+p.Hx*(ky+ny*kz)]
				want := ref[kx+nx*(ky+ny*kz)]
				if cmplx.Abs(got-want) > 1e-9 {
					t.Fatalf("k=(%d,%d,%d): got %v want %v", kx, ky, kz, got, want)
				}
			}
		}
	}
}

func TestRealPlan3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewRealPlan3(16, 8, 8)
	data := make([]float64, 16*8*8)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	orig := append([]float64(nil), data...)
	spec := make([]complex128, p.SpectrumLen())
	p.Forward(data, spec)
	back := make([]float64, len(data))
	p.Inverse(spec, back)
	for i := range orig {
		if d := back[i] - orig[i]; d > 1e-11 || d < -1e-11 {
			t.Fatalf("roundtrip mismatch at %d: %g vs %g", i, back[i], orig[i])
		}
	}
}

func BenchmarkRealFFT3D32(b *testing.B) {
	p := NewRealPlan3(32, 32, 32)
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 32*32*32)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	spec := make([]complex128, p.SpectrumLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(data, spec)
		p.Inverse(spec, data)
	}
}
