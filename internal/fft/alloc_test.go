package fft

import (
	"math/rand"
	"runtime"
	"testing"
)

// TestPlan3SteadyStateAllocs gates the //tme:noalloc annotations on the
// complex 3D path: after the plan cache and the row-scratch pool are
// warm, repeated transforms of a fixed-size grid allocate nothing at
// GOMAXPROCS=1 (the strided-line buffer is pooled, not remade per call).
func TestPlan3SteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(7))
	p := NewPlan3(16, 16, 16)
	data := make([]complex128, p.Size())
	for i := range data {
		data[i] = complex(rng.Float64(), rng.Float64())
	}

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	for i := 0; i < 3; i++ {
		p.Forward(data)
		p.Inverse(data)
	}
	allocs := testing.AllocsPerRun(10, func() {
		p.Forward(data)
		p.Inverse(data)
	})
	// Budget 1 for sync.Pool repopulation after a GC mid-measurement.
	if allocs > 1 {
		t.Errorf("Plan3 Forward+Inverse allocates %.1f objects per step in steady state, want 0", allocs)
	}
}

// TestRealPlan3SteadyStateAllocs gates the real-to-half-spectrum path
// that the SPME reciprocal solve runs every step.
func TestRealPlan3SteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(8))
	p := NewRealPlan3(32, 16, 16)
	data := make([]float64, p.Nx*p.Ny*p.Nz)
	spec := make([]complex128, p.SpectrumLen())
	for i := range data {
		data[i] = rng.Float64()
	}

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	for i := 0; i < 3; i++ {
		p.Forward(data, spec)
		p.Inverse(spec, data)
	}
	allocs := testing.AllocsPerRun(10, func() {
		p.Forward(data, spec)
		p.Inverse(spec, data)
	})
	if allocs > 1 {
		t.Errorf("RealPlan3 Forward+Inverse allocates %.1f objects per step in steady state, want 0", allocs)
	}
}
