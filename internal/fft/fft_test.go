package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			theta := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			out[k] += x[j] * cmplx.Exp(complex(0, theta))
		}
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		x := randComplex(rng, n)
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		NewPlan(n).Forward(got)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d k=%d: got %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 8, 64, 256, 1024} {
		p := NewPlan(n)
		x := randComplex(rng, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		for i := range x {
			if cmplx.Abs(x[i]-y[i]) > 1e-12 {
				t.Fatalf("n=%d: roundtrip mismatch at %d: %v vs %v", n, i, x[i], y[i])
			}
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 128
	x := randComplex(rng, n)
	var timeE float64
	for _, v := range x {
		timeE += real(v)*real(v) + imag(v)*imag(v)
	}
	NewPlan(n).Forward(x)
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-9*timeE {
		t.Errorf("Parseval violated: time %g freq/n %g", timeE, freqE/float64(n))
	}
}

func TestImpulseResponse(t *testing.T) {
	n := 32
	x := make([]complex128, n)
	x[0] = 1
	NewPlan(n).Forward(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-13 {
			t.Errorf("delta transform at %d: %v, want 1", k, v)
		}
	}
}

func TestLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 64
	p := NewPlan(n)
	f := func(seed int64, ar, ai float64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randComplex(r, n)
		y := randComplex(r, n)
		a := complex(math.Mod(ar, 10), math.Mod(ai, 10))
		// FFT(a·x + y)
		lhs := make([]complex128, n)
		for i := range lhs {
			lhs[i] = a*x[i] + y[i]
		}
		p.Forward(lhs)
		// a·FFT(x) + FFT(y)
		fx := append([]complex128(nil), x...)
		fy := append([]complex128(nil), y...)
		p.Forward(fx)
		p.Forward(fy)
		for i := range lhs {
			if cmplx.Abs(lhs[i]-(a*fx[i]+fy[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRealInputHermitianSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	NewPlan(n).Forward(x)
	for k := 1; k < n; k++ {
		if cmplx.Abs(x[k]-cmplx.Conj(x[n-k])) > 1e-10 {
			t.Fatalf("Hermitian symmetry violated at k=%d", k)
		}
	}
}

func TestPlan3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewPlan3(8, 4, 16)
	x := randComplex(rng, p.Size())
	y := append([]complex128(nil), x...)
	p.Forward(y)
	p.Inverse(y)
	for i := range x {
		if cmplx.Abs(x[i]-y[i]) > 1e-12 {
			t.Fatalf("3D roundtrip mismatch at %d", i)
		}
	}
}

func TestPlan3MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nx, ny, nz := 4, 2, 8
	p := NewPlan3(nx, ny, nz)
	x := randComplex(rng, p.Size())
	got := append([]complex128(nil), x...)
	p.Forward(got)
	// Naive separable check at a few frequencies.
	for _, k := range [][3]int{{0, 0, 0}, {1, 0, 3}, {3, 1, 7}, {2, 1, 4}} {
		var want complex128
		for iz := 0; iz < nz; iz++ {
			for iy := 0; iy < ny; iy++ {
				for ix := 0; ix < nx; ix++ {
					theta := -2 * math.Pi * (float64(k[0]*ix)/float64(nx) +
						float64(k[1]*iy)/float64(ny) + float64(k[2]*iz)/float64(nz))
					want += x[ix+nx*(iy+ny*iz)] * cmplx.Exp(complex(0, theta))
				}
			}
		}
		g := got[k[0]+nx*(k[1]+ny*k[2])]
		if cmplx.Abs(g-want) > 1e-9 {
			t.Errorf("3D DFT at %v: got %v want %v", k, g, want)
		}
	}
}

func TestPlanCacheReuse(t *testing.T) {
	if NewPlan(64) != NewPlan(64) {
		t.Error("plans of equal length should be cached and shared")
	}
}

func TestNewPlanRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two length")
		}
	}()
	NewPlan(12)
}

func BenchmarkFFT1D32(b *testing.B)   { benchFFT1D(b, 32) }
func BenchmarkFFT1D1024(b *testing.B) { benchFFT1D(b, 1024) }

func benchFFT1D(b *testing.B, n int) {
	p := NewPlan(n)
	x := randComplex(rand.New(rand.NewSource(1)), n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFT3D16(b *testing.B) { benchFFT3D(b, 16) }
func BenchmarkFFT3D32(b *testing.B) { benchFFT3D(b, 32) }
func BenchmarkFFT3D64(b *testing.B) { benchFFT3D(b, 64) }

func benchFFT3D(b *testing.B, n int) {
	p := NewPlan3(n, n, n)
	x := randComplex(rand.New(rand.NewSource(1)), p.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}
