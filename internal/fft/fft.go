// Package fft implements fast Fourier transforms for power-of-two sizes.
//
// It provides cached 1D plans (iterative radix-2 Cooley–Tukey with
// precomputed twiddle factors) and 3D transforms over flat slices. All paper
// grid sizes (16³, 32³, 64³) are powers of two; this package substitutes the
// vendor FFT libraries used by the original SPME implementations.
//
// Convention: Forward computes X[k] = Σ_n x[n]·e^{−2πi nk/N} (unnormalised);
// Inverse divides by N so that Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Plan holds the precomputed tables for 1D transforms of a fixed
// power-of-two length. Plans are safe for concurrent use.
type Plan struct {
	n       int
	logn    int
	rev     []int32      // bit-reversal permutation
	twiddle []complex128 // e^{-2πi k / n}, k = 0..n/2-1
}

var (
	planMu    sync.Mutex
	planCache = map[int]*Plan{}
)

// NewPlan returns a transform plan for length n, which must be a power of
// two and at least 1. Plans are cached and shared.
func NewPlan(n int) *Plan {
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := planCache[n]; ok {
		return p
	}
	p := &Plan{n: n, logn: bits.TrailingZeros(uint(n))}
	p.rev = make([]int32, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse(uint(i)) >> (bits.UintSize - p.logn))
	}
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		theta := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = complex(math.Cos(theta), math.Sin(theta))
	}
	planCache[n] = p
	return p
}

// Len returns the transform length of the plan.
func (p *Plan) Len() int { return p.n }

// Forward transforms x in place (unnormalised DFT). len(x) must equal the
// plan length.
//
//tme:noalloc
func (p *Plan) Forward(x []complex128) { p.transform(x, false) }

// Inverse transforms x in place, including the 1/N normalisation.
//
//tme:noalloc
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	inv := 1 / float64(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
	}
}

// transform runs the in-place iterative radix-2 butterflies.
//
//tme:noalloc
func (p *Plan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: data length %d does not match plan length %d", len(x), p.n))
	}
	n := p.n
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(p.rev[i])
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				t := w * x[k+half]
				x[k+half] = x[k] - t
				x[k] = x[k] + t
				tw += step
			}
		}
	}
}

// Plan3 performs 3D transforms on data stored x-fastest:
// index = ix + nx*(iy + ny*iz).
type Plan3 struct {
	Nx, Ny, Nz int
	px, py, pz *Plan
}

// NewPlan3 returns a 3D plan for an nx×ny×nz grid (each a power of two).
func NewPlan3(nx, ny, nz int) *Plan3 {
	return &Plan3{
		Nx: nx, Ny: ny, Nz: nz,
		px: NewPlan(nx), py: NewPlan(ny), pz: NewPlan(nz),
	}
}

// Size returns the number of complex points nx·ny·nz.
func (p *Plan3) Size() int { return p.Nx * p.Ny * p.Nz }

// Forward computes the unnormalised 3D DFT of data in place.
//
//tme:noalloc
func (p *Plan3) Forward(data []complex128) { p.transform3(data, false) }

// Inverse computes the normalised (÷N³ total) inverse 3D DFT in place.
//
//tme:noalloc
func (p *Plan3) Inverse(data []complex128) { p.transform3(data, true) }

// transform3 applies the three 1D passes with a pooled strided-line
// buffer, so repeated transforms of a fixed-size grid allocate nothing.
//
//tme:noalloc
func (p *Plan3) transform3(data []complex128, inverse bool) {
	if len(data) != p.Size() {
		panic(fmt.Sprintf("fft: data length %d does not match 3D plan size %d", len(data), p.Size()))
	}
	nx, ny, nz := p.Nx, p.Ny, p.Nz
	// x-lines are contiguous.
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			off := nx * (y + ny*z)
			if inverse {
				p.px.Inverse(data[off : off+nx])
			} else {
				p.px.Forward(data[off : off+nx])
			}
		}
	}
	// y-lines have stride nx.
	rp := getCBuf(max(ny, nz))
	row := *rp
	for z := 0; z < nz; z++ {
		for x := 0; x < nx; x++ {
			base := x + nx*ny*z
			for y := 0; y < ny; y++ {
				row[y] = data[base+nx*y]
			}
			if inverse {
				p.py.Inverse(row[:ny])
			} else {
				p.py.Forward(row[:ny])
			}
			for y := 0; y < ny; y++ {
				data[base+nx*y] = row[y]
			}
		}
	}
	// z-lines have stride nx*ny.
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			base := x + nx*y
			for z := 0; z < nz; z++ {
				row[z] = data[base+nx*ny*z]
			}
			if inverse {
				p.pz.Inverse(row[:nz])
			} else {
				p.pz.Forward(row[:nz])
			}
			for z := 0; z < nz; z++ {
				data[base+nx*ny*z] = row[z]
			}
		}
	}
	cbufPool.Put(rp)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
