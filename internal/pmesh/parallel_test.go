package pmesh

// Serial-vs-parallel equivalence of the particle–mesh operations: the
// plane-ownership scatter of AssignTo and the fixed-chunk energy reduction
// of Interpolate promise results bitwise independent of GOMAXPROCS.

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"tme4a/internal/grid"
	"tme4a/internal/vec"
)

func testSystem(rng *rand.Rand, n int, box vec.Box) ([]vec.V, []float64) {
	pos := make([]vec.V, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
		q[i] = rng.NormFloat64()
	}
	return pos, q
}

// withGOMAXPROCS runs fn under the given worker count, restoring the old
// setting afterwards.
func withGOMAXPROCS(p int, fn func()) {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	fn()
}

func TestAssignToBitwiseAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	box := vec.Cubic(2.5)
	m := NewMesher(6, [3]int{16, 12, 20}, box)
	pos, q := testSystem(rng, 400, box)

	results := map[int]*grid.G{}
	for _, procs := range []int{1, 4} {
		withGOMAXPROCS(procs, func() {
			g := grid.New(16, 12, 20)
			m.AssignTo(g, pos, q)
			results[procs] = g
		})
	}
	for i := range results[1].Data {
		if results[1].Data[i] != results[4].Data[i] {
			t.Fatalf("AssignTo differs at %d: GOMAXPROCS=1 %.17g vs GOMAXPROCS=4 %.17g",
				i, results[1].Data[i], results[4].Data[i])
		}
	}
}

func TestInterpolateBitwiseAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	box := vec.Cubic(2.5)
	m := NewMesher(6, [3]int{16, 16, 16}, box)
	// More atoms than one energy chunk, so the reduction really splits.
	pos, q := testSystem(rng, 3*energyChunk+17, box)
	phi := grid.New(16, 16, 16)
	for i := range phi.Data {
		phi.Data[i] = rng.NormFloat64()
	}

	type result struct {
		e float64
		f []vec.V
	}
	results := map[int]result{}
	for _, procs := range []int{1, 4} {
		withGOMAXPROCS(procs, func() {
			f := make([]vec.V, len(pos))
			e := m.Interpolate(phi, pos, q, f)
			results[procs] = result{e, f}
		})
	}
	if results[1].e != results[4].e {
		t.Fatalf("energy differs: GOMAXPROCS=1 %.17g vs GOMAXPROCS=4 %.17g",
			results[1].e, results[4].e)
	}
	for i := range results[1].f {
		if results[1].f[i] != results[4].f[i] {
			t.Fatalf("force %d differs: %v vs %v", i, results[1].f[i], results[4].f[i])
		}
	}
}

// TestAssignToMatchesSerialReference pins the scatter to the plain serial
// loop: plane ownership must not change any mesh point's accumulation
// order, so the match is exact.
func TestAssignToMatchesSerialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	box := vec.Cubic(3)
	n := [3]int{12, 16, 8}
	m := NewMesher(4, n, box)
	pos, q := testSystem(rng, 300, box)

	var got *grid.G
	withGOMAXPROCS(4, func() {
		got = grid.New(n[0], n[1], n[2])
		m.AssignTo(got, pos, q)
	})
	// Serial reference: one-plane slab covering the whole grid.
	want := grid.New(n[0], n[1], n[2])
	withGOMAXPROCS(1, func() { m.AssignTo(want, pos, q) })
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("scatter differs from serial at %d", i)
		}
	}
	// Charge conservation as a sanity anchor.
	var qs, gs float64
	for _, v := range q {
		qs += v
	}
	gs = got.Sum()
	if d := qs - gs; d > 1e-10 || d < -1e-10 {
		t.Fatalf("total charge %g vs grid sum %g", qs, gs)
	}
}

func TestNewMesherRejectsOrderAbove16(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for order 18")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "<= 16") {
			t.Fatalf("panic message %q does not state the order cap", r)
		}
	}()
	// Order 18 is even and smaller than the grid, so it passed the old
	// validation and only blew up later with an opaque slice-bounds panic
	// in the fixed [16]float64 weight scratch.
	NewMesher(18, [3]int{32, 32, 32}, vec.Cubic(1))
}
