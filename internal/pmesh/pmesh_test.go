package pmesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tme4a/internal/grid"
	"tme4a/internal/vec"
)

func randomSystem(rng *rand.Rand, n int, box vec.Box) ([]vec.V, []float64) {
	pos := make([]vec.V, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
		q[i] = rng.NormFloat64()
	}
	return pos, q
}

// TestChargeConservation: the grid total equals the total charge —
// the partition-of-unity property of B-spline assignment.
func TestChargeConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.NewBox(4, 5, 6)
	m := NewMesher(6, [3]int{16, 16, 32}, box)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pos, q := randomSystem(r, 20, box)
		g := m.Assign(pos, q)
		var qt float64
		for _, qi := range q {
			qt += qi
		}
		return math.Abs(g.Sum()-qt) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestAssignSingleChargeMoments(t *testing.T) {
	// A single unit charge: grid sum is 1 and the (periodic) first moment
	// of the spread charge matches the particle position, because central
	// B-splines are symmetric.
	box := vec.Cubic(8)
	m := NewMesher(6, [3]int{16, 16, 16}, box)
	pos := []vec.V{vec.New(3.21, 4.75, 1.03)}
	g := m.Assign(pos, []float64{1})
	if math.Abs(g.Sum()-1) > 1e-12 {
		t.Fatalf("sum %g", g.Sum())
	}
	h := box.L[0] / 16
	for axis := 0; axis < 3; axis++ {
		var mom float64
		for iz := 0; iz < 16; iz++ {
			for iy := 0; iy < 16; iy++ {
				for ix := 0; ix < 16; ix++ {
					v := g.Data[g.Idx(ix, iy, iz)]
					if v == 0 {
						continue
					}
					idx := [3]int{ix, iy, iz}[axis]
					// Unwrap relative to the particle to handle periodicity.
					d := float64(idx)*h - pos[0][axis]
					d -= box.L[axis] * math.Round(d/box.L[axis])
					mom += v * d
				}
			}
		}
		if math.Abs(mom) > 1e-12 {
			t.Errorf("axis %d: first moment %g, want 0", axis, mom)
		}
	}
}

func TestInterpolateConstantPotential(t *testing.T) {
	// A constant grid potential must interpolate to that constant and
	// produce zero force (partition of unity + derivative sum zero).
	box := vec.NewBox(3, 3, 3)
	m := NewMesher(6, [3]int{8, 8, 8}, box)
	phi := grid.New(8, 8, 8)
	for i := range phi.Data {
		phi.Data[i] = 2.5
	}
	rng := rand.New(rand.NewSource(2))
	pos, q := randomSystem(rng, 10, box)
	f := make([]vec.V, 10)
	e := m.Interpolate(phi, pos, q, f)
	var qt float64
	for _, qi := range q {
		qt += qi
	}
	if math.Abs(e-0.5*2.5*qt) > 1e-10 {
		t.Errorf("energy %g, want %g", e, 0.5*2.5*qt)
	}
	for i, fi := range f {
		if fi.Norm() > 1e-10 {
			t.Errorf("atom %d: nonzero force %v in constant potential", i, fi)
		}
	}
}

func TestForceIsNegativeGradientOfPotential(t *testing.T) {
	// For a fixed external potential grid, the interpolated force on a probe
	// charge must equal −q ∇φ with φ from PotentialAt (finite differences).
	box := vec.Cubic(5)
	m := NewMesher(6, [3]int{16, 16, 16}, box)
	rng := rand.New(rand.NewSource(3))
	phi := grid.New(16, 16, 16)
	for i := range phi.Data {
		phi.Data[i] = rng.NormFloat64()
	}
	for trial := 0; trial < 20; trial++ {
		r := vec.New(rng.Float64()*5, rng.Float64()*5, rng.Float64()*5)
		qp := 1.7
		f := make([]vec.V, 1)
		m.Interpolate(phi, []vec.V{r}, []float64{qp}, f)
		const h = 1e-6
		for axis := 0; axis < 3; axis++ {
			rp, rm := r, r
			rp[axis] += h
			rm[axis] -= h
			fd := -(m.PotentialAt(phi, rp) - m.PotentialAt(phi, rm)) / (2 * h) * qp
			if math.Abs(f[0][axis]-fd) > 1e-5*math.Max(1, math.Abs(fd)) {
				t.Errorf("trial %d axis %d: force %g, fd %g", trial, axis, f[0][axis], fd)
			}
		}
	}
}

func TestAssignInterpolateRoundTripPair(t *testing.T) {
	// Direct check of the double-spline pair expansion: energy from
	// Assign → (identity grid op) → Interpolate equals
	// ½ Σ_{ij} q_i q_j Σ_m M(u_i−m) M(u_j−m) computed naively.
	box := vec.Cubic(4)
	n := [3]int{8, 8, 8}
	m := NewMesher(4, n, box)
	rng := rand.New(rand.NewSource(4))
	pos, q := randomSystem(rng, 5, box)
	g := m.Assign(pos, q)
	e := m.Interpolate(g, pos, q, nil)
	// Naive: E = ½ Σ_m Q_m² since Φ = Q here.
	var want float64
	for _, v := range g.Data {
		want += 0.5 * v * v
	}
	if math.Abs(e-want) > 1e-10 {
		t.Errorf("pair energy %g, want %g", e, want)
	}
}

func TestNewMesherValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for odd order")
		}
	}()
	NewMesher(5, [3]int{8, 8, 8}, vec.Cubic(1))
}

func BenchmarkAssignP6(b *testing.B) {
	box := vec.Cubic(5)
	m := NewMesher(6, [3]int{32, 32, 32}, box)
	rng := rand.New(rand.NewSource(1))
	pos, q := randomSystem(rng, 1000, box)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Assign(pos, q)
	}
}

func BenchmarkInterpolateP6(b *testing.B) {
	box := vec.Cubic(5)
	m := NewMesher(6, [3]int{32, 32, 32}, box)
	rng := rand.New(rand.NewSource(1))
	pos, q := randomSystem(rng, 1000, box)
	phi := m.Assign(pos, q)
	f := make([]vec.V, len(pos))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Interpolate(phi, pos, q, f)
	}
}
