// Package pmesh implements the particle–mesh operations shared by SPME,
// B-spline MSM and TME: charge assignment (anterpolation, paper Eq. (12))
// and back interpolation of potentials, energies and forces (Eq. (13)–(17)).
//
// These are the operations the MDGRAPE-4A LRU accelerates in hardware; this
// package is the double-precision software reference. The fixed-point
// hardware datapath lives in internal/hw/lru.
//
// Both AssignTo and Interpolate are parallel and deterministic: the mesh is
// partitioned by z-plane ownership (scatter) and the energy reduction uses
// fixed-size particle chunks (gather), so results are bitwise independent
// of GOMAXPROCS.
package pmesh

import (
	"fmt"
	"sync"

	"tme4a/internal/bspline"
	"tme4a/internal/grid"
	"tme4a/internal/obs"
	"tme4a/internal/par"
	"tme4a/internal/vec"
)

// MaxOrder is the largest supported B-spline order; the hot loops use
// fixed [MaxOrder]float64 weight scratch to stay allocation-free.
// Params.Validate in the solver packages checks against it so a bad
// -order reaches the user as an error before construction panics here.
const MaxOrder = 16

// Mesher spreads charges onto, and gathers potentials from, a periodic
// N[0]×N[1]×N[2] mesh over box using order-p central B-splines.
type Mesher struct {
	P   int
	N   [3]int
	Box vec.Box
	// invH[j] = N[j]/L[j] converts coordinates to grid units.
	invH [3]float64
	// o, when non-nil, times AssignTo and Interpolate as the charge-assign
	// and back-interpolation stages.
	o *obs.Recorder
}

// SetObs attaches a stage recorder (nil detaches). Not safe to call
// concurrently with AssignTo/Interpolate.
func (m *Mesher) SetObs(r *obs.Recorder) { m.o = r }

// NewMesher returns a mesher of even B-spline order p on an N-point grid
// over box. p is capped at 16 (the fixed weight-scratch size of the
// spreading and interpolation kernels).
func NewMesher(p int, n [3]int, box vec.Box) *Mesher {
	if p < 2 || p%2 != 0 {
		panic(fmt.Sprintf("pmesh: order must be even and >= 2, got %d", p))
	}
	if p > MaxOrder {
		panic(fmt.Sprintf("pmesh: order must be <= %d (fixed weight scratch), got %d", MaxOrder, p))
	}
	m := &Mesher{P: p, N: n, Box: box}
	for j := 0; j < 3; j++ {
		if n[j] < p {
			panic(fmt.Sprintf("pmesh: grid dimension %d smaller than spline order %d", n[j], p))
		}
		m.invH[j] = float64(n[j]) / box.L[j]
	}
	return m
}

// H returns the grid spacings (h_x, h_y, h_z).
func (m *Mesher) H() vec.V {
	return vec.V{1 / m.invH[0], 1 / m.invH[1], 1 / m.invH[2]}
}

// Assign spreads the charges q at positions pos onto a fresh grid
// (charge assignment, Eq. (12)). Positions may lie outside the primary box;
// they are wrapped periodically.
func (m *Mesher) Assign(pos []vec.V, q []float64) *grid.G {
	g := grid.New(m.N[0], m.N[1], m.N[2])
	m.AssignTo(g, pos, q)
	return g
}

// AssignTo accumulates the charge assignment onto an existing grid.
//
// The scatter is parallelized by z-plane ownership: each worker walks all
// particles in index order but writes only the grid planes it owns, so
// every mesh point accumulates its contributions in exactly the serial
// order — no atomics, no privatized grids, and bitwise-identical results at
// any GOMAXPROCS. Workers reject particles whose p-plane support misses
// their slab with a cheap bspline.Base test before computing any weights.
//
//tme:noalloc
func (m *Mesher) AssignTo(g *grid.G, pos []vec.V, q []float64) {
	sp := m.o.Start(obs.StageAssign)
	nz := m.N[2]
	if par.WorkersGrain(nz, 1) == 1 {
		m.assignSlab(g, pos, q, 0, nz)
		sp.Stop()
		return
	}
	par.ForRangeGrain(nz, 1, func(zlo, zhi int) {
		m.assignSlab(g, pos, q, zlo, zhi)
	})
	sp.Stop()
}

// assignSlab scatters every particle whose support touches grid planes
// [zlo, zhi), writing only those planes.
//
//tme:noalloc
func (m *Mesher) assignSlab(g *grid.G, pos []vec.V, q []float64, zlo, zhi int) {
	p := m.P
	nx, ny, nz := m.N[0], m.N[1], m.N[2]
	full := zlo == 0 && zhi == nz
	var wx, wy, wz, d [MaxOrder]float64
	for i, r := range pos {
		qi := q[i]
		if qi == 0 {
			continue
		}
		uz := r[2] * m.invH[2]
		mz := bspline.Base(p, uz)
		if !full {
			hit := false
			for c := 0; c < p; c++ {
				if iz := wrap(mz+c, nz); iz >= zlo && iz < zhi {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		ux := r[0] * m.invH[0]
		uy := r[1] * m.invH[1]
		mx := bspline.Weights(p, ux, wx[:p], d[:p])
		my := bspline.Weights(p, uy, wy[:p], d[:p])
		bspline.Weights(p, uz, wz[:p], d[:p])
		for c := 0; c < p; c++ {
			iz := wrap(mz+c, nz)
			if iz < zlo || iz >= zhi {
				continue
			}
			qz := qi * wz[c]
			for b := 0; b < p; b++ {
				iy := wrap(my+b, ny)
				qyz := qz * wy[b]
				row := g.Data[nx*(iy+ny*iz) : nx*(iy+ny*iz)+nx]
				for a := 0; a < p; a++ {
					row[wrap(mx+a, nx)] += qyz * wx[a]
				}
			}
		}
	}
}

// energyChunk is the fixed particle-chunk size of the Interpolate energy
// reduction. Chunk boundaries depend only on the particle count — never on
// GOMAXPROCS — so the summation order (and hence the energy, bitwise) is
// identical at any worker count.
const energyChunk = 256

// partialPool recycles the per-call chunk-partial slices.
var partialPool = sync.Pool{New: func() interface{} { return new([]float64) }}

// Interpolate gathers the per-atom electrostatic potentials φ_i from the
// grid potential phi (Eq. (15)) and accumulates forces F_i = −q_i ∇φ(r_i)
// (Eq. (16)–(17)) into f. It returns the interaction energy
// E = ½ Σ q_i φ_i (Eq. (14)).
//
//tme:noalloc
func (m *Mesher) Interpolate(phi *grid.G, pos []vec.V, q []float64, f []vec.V) float64 {
	sp := m.o.Start(obs.StageInterp)
	nchunks := (len(pos) + energyChunk - 1) / energyChunk
	pp := partialPool.Get().(*[]float64)
	if cap(*pp) < nchunks {
		*pp = make([]float64, nchunks) //tmevet:ignore noalloc -- grow-once: reused via partialPool in steady state
	}
	partial := (*pp)[:nchunks]
	if par.WorkersGrain(nchunks, 1) == 1 {
		m.interpolateChunks(phi, pos, q, f, partial, 0, nchunks)
	} else {
		par.ForRangeGrain(nchunks, 1, func(clo, chi int) {
			m.interpolateChunks(phi, pos, q, f, partial, clo, chi)
		})
	}
	var energy float64
	for _, e := range partial {
		energy += e
	}
	partialPool.Put(pp)
	sp.Stop()
	return energy
}

// interpolateChunks evaluates the fixed-size particle chunks [clo, chi),
// storing each chunk's energy in partial.
//
//tme:noalloc
func (m *Mesher) interpolateChunks(phi *grid.G, pos []vec.V, q []float64, f []vec.V, partial []float64, clo, chi int) {
	for ci := clo; ci < chi; ci++ {
		lo := ci * energyChunk
		hi := lo + energyChunk
		if hi > len(pos) {
			hi = len(pos)
		}
		partial[ci] = m.interpolateRange(phi, pos, q, f, lo, hi)
	}
}

// interpolateRange is the serial gather kernel over particles [lo, hi).
//
//tme:noalloc
func (m *Mesher) interpolateRange(phi *grid.G, pos []vec.V, q []float64, f []vec.V, lo, hi int) float64 {
	p := m.P
	var wx, wy, wz, dx, dy, dz [MaxOrder]float64
	nx, ny, nz := m.N[0], m.N[1], m.N[2]
	var energy float64
	for i := lo; i < hi; i++ {
		r := pos[i]
		qi := q[i]
		if qi == 0 {
			continue
		}
		ux := r[0] * m.invH[0]
		uy := r[1] * m.invH[1]
		uz := r[2] * m.invH[2]
		mx := bspline.Weights(p, ux, wx[:p], dx[:p])
		my := bspline.Weights(p, uy, wy[:p], dy[:p])
		mz := bspline.Weights(p, uz, wz[:p], dz[:p])
		var pot, gx, gy, gz float64
		for c := 0; c < p; c++ {
			iz := wrap(mz+c, nz)
			for b := 0; b < p; b++ {
				iy := wrap(my+b, ny)
				row := phi.Data[nx*(iy+ny*iz) : nx*(iy+ny*iz)+nx]
				wyz := wy[b] * wz[c]
				dyz := dy[b] * wz[c]
				wdz := wy[b] * dz[c]
				for a := 0; a < p; a++ {
					v := row[wrap(mx+a, nx)]
					pot += v * wx[a] * wyz
					gx += v * dx[a] * wyz
					gy += v * wx[a] * dyz
					gz += v * wx[a] * wdz
				}
			}
		}
		energy += 0.5 * qi * pot
		if f != nil {
			// ∇φ picks up 1/h per axis from d/dr = (1/h) d/du.
			f[i][0] -= qi * gx * m.invH[0]
			f[i][1] -= qi * gy * m.invH[1]
			f[i][2] -= qi * gz * m.invH[2]
		}
	}
	return energy
}

// PotentialAt interpolates the grid potential at a single position
// (used by tests and diagnostics).
func (m *Mesher) PotentialAt(phi *grid.G, r vec.V) float64 {
	p := m.P
	var wx, wy, wz, d [MaxOrder]float64
	mx := bspline.Weights(p, r[0]*m.invH[0], wx[:p], d[:p])
	my := bspline.Weights(p, r[1]*m.invH[1], wy[:p], d[:p])
	mz := bspline.Weights(p, r[2]*m.invH[2], wz[:p], d[:p])
	var pot float64
	for c := 0; c < p; c++ {
		for b := 0; b < p; b++ {
			for a := 0; a < p; a++ {
				pot += phi.At(mx+a, my+b, mz+c) * wx[a] * wy[b] * wz[c]
			}
		}
	}
	return pot
}

func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}
