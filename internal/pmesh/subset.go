// Plane-subset charge assignment and back interpolation for the
// rank-decomposed run mode (internal/dist, internal/rank).
//
// A rank owns the contiguous, non-wrapping plane block [zlo, zlo+own) of
// the finest mesh. AssignPlanes scatters a rank's atom window onto that
// block; InterpolatePlanes gathers potentials for the rank's interpolation-
// owned atoms from an extended block that includes the upper halo planes.
// Both kernels reuse the exact per-atom arithmetic of assignSlab and
// interpolateRange — same hit test, same weight evaluation, same scatter and
// gather expressions in the same order — so the per-plane grid values and
// the per-atom energies/forces are bitwise equal to a full-grid AssignTo /
// Interpolate as long as the caller feeds atoms in ascending global index
// order (the serial particle order).

package pmesh

import (
	"tme4a/internal/bspline"
	"tme4a/internal/grid"
	"tme4a/internal/vec"
)

// EnergyChunk is the fixed particle-chunk size of the Interpolate energy
// reduction, exported so distributed replays fold per-atom energy terms in
// the identical order.
const EnergyChunk = energyChunk

// ReplayEnergy reconstructs Interpolate's energy reduction from per-atom
// terms: each fixed EnergyChunk-atom chunk accumulates its members' terms
// in ascending atom order (q==0 atoms skipped, as interpolateRange skips
// them), then the chunk partials fold in ascending chunk order — exactly
// Interpolate's two-stage sum, so the result is bitwise equal when
// eterm[i] came from InterpolatePlanes.
func ReplayEnergy(eterm, q []float64) float64 {
	var energy float64
	n := len(q)
	for lo := 0; lo < n; lo += energyChunk {
		hi := lo + energyChunk
		if hi > n {
			hi = n
		}
		var pc float64
		for i := lo; i < hi; i++ {
			if q[i] == 0 {
				continue
			}
			pc += eterm[i]
		}
		energy += pc
	}
	return energy
}

// BasePlane returns the wrapped z base plane of a position: the first of
// the P consecutive (wrapped) mesh planes its spline support touches.
// Interpolation ownership in the rank engine is "base plane ∈ my block".
func (m *Mesher) BasePlane(r vec.V) int {
	return wrap(bspline.Base(m.P, r[2]*m.invH[2]), m.N[2])
}

// SupportHits reports whether the spline support of a position touches any
// global plane in [zlo, zhi) (zhi ≤ N[2], non-wrapping block). It is the
// same hit test assignSlab applies, so a sender using it ships exactly the
// atoms the receiving rank's AssignPlanes will accept.
//
//tme:noalloc
func (m *Mesher) SupportHits(r vec.V, zlo, zhi int) bool {
	nz := m.N[2]
	mz := bspline.Base(m.P, r[2]*m.invH[2])
	for c := 0; c < m.P; c++ {
		if iz := wrap(mz+c, nz); iz >= zlo && iz < zhi {
			return true
		}
	}
	return false
}

// AssignPlanes scatters the charges of the atoms listed in idx (ascending
// global index) onto sub, which holds the global mesh planes
// [zlo, zlo+sub.N[2]). Atoms whose support misses the block are skipped by
// the same hit test as assignSlab. The caller zeroes sub.
//
//tme:noalloc
func (m *Mesher) AssignPlanes(sub *grid.G, zlo int, idx []int32, pos []vec.V, q []float64) {
	p := m.P
	nx, ny, nz := m.N[0], m.N[1], m.N[2]
	zhi := zlo + sub.N[2]
	var wx, wy, wz, d [MaxOrder]float64
	for _, i := range idx {
		r := pos[i]
		qi := q[i]
		if qi == 0 {
			continue
		}
		uz := r[2] * m.invH[2]
		mz := bspline.Base(p, uz)
		hit := false
		for c := 0; c < p; c++ {
			if iz := wrap(mz+c, nz); iz >= zlo && iz < zhi {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		ux := r[0] * m.invH[0]
		uy := r[1] * m.invH[1]
		mx := bspline.Weights(p, ux, wx[:p], d[:p])
		my := bspline.Weights(p, uy, wy[:p], d[:p])
		bspline.Weights(p, uz, wz[:p], d[:p])
		for c := 0; c < p; c++ {
			iz := wrap(mz+c, nz)
			if iz < zlo || iz >= zhi {
				continue
			}
			lz := iz - zlo
			qz := qi * wz[c]
			for b := 0; b < p; b++ {
				iy := wrap(my+b, ny)
				qyz := qz * wy[b]
				row := sub.Data[nx*(iy+ny*lz) : nx*(iy+ny*lz)+nx]
				for a := 0; a < p; a++ {
					row[wrap(mx+a, nx)] += qyz * wx[a]
				}
			}
		}
	}
}

// InterpolatePlanes gathers potentials for the atoms listed in idx — whose
// base plane must lie in [zlo, zlo+own) — from ext, which holds the global
// potential planes [zlo, zlo+ext.N[2]) (own block plus P−1 upper halo
// planes, wrapped). It writes the per-atom energy term ½·q_i·φ_i into
// eterm[i] and accumulates forces into f[i] (both indexed by global atom
// index); the root replays the serial 256-atom-chunk fold over eterm to
// reconstruct Interpolate's return value bitwise.
//
//tme:noalloc
func (m *Mesher) InterpolatePlanes(ext *grid.G, zlo int, idx []int32, pos []vec.V, q []float64, eterm []float64, f []vec.V) {
	p := m.P
	var wx, wy, wz, dx, dy, dz [MaxOrder]float64
	nx, ny, nz := m.N[0], m.N[1], m.N[2]
	enz := ext.N[2]
	for _, i := range idx {
		r := pos[i]
		qi := q[i]
		if qi == 0 {
			continue
		}
		ux := r[0] * m.invH[0]
		uy := r[1] * m.invH[1]
		uz := r[2] * m.invH[2]
		mx := bspline.Weights(p, ux, wx[:p], dx[:p])
		my := bspline.Weights(p, uy, wy[:p], dy[:p])
		mz := bspline.Weights(p, uz, wz[:p], dz[:p])
		bz := wrap(mz, nz)
		var pot, gx, gy, gz float64
		for c := 0; c < p; c++ {
			lz := bz + c - zlo
			if lz < 0 || lz >= enz {
				panic("pmesh: InterpolatePlanes atom outside ext window")
			}
			for b := 0; b < p; b++ {
				iy := wrap(my+b, ny)
				row := ext.Data[nx*(iy+ny*lz) : nx*(iy+ny*lz)+nx]
				wyz := wy[b] * wz[c]
				dyz := dy[b] * wz[c]
				wdz := wy[b] * dz[c]
				for a := 0; a < p; a++ {
					v := row[wrap(mx+a, nx)]
					pot += v * wx[a] * wyz
					gx += v * dx[a] * wyz
					gy += v * wx[a] * dyz
					gz += v * wx[a] * wdz
				}
			}
		}
		eterm[i] = 0.5 * qi * pot
		if f != nil {
			// ∇φ picks up 1/h per axis from d/dr = (1/h) d/du.
			f[i][0] -= qi * gx * m.invH[0]
			f[i][1] -= qi * gy * m.invH[1]
			f[i][2] -= qi * gz * m.invH[2]
		}
	}
}
