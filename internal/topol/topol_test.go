package topol

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExclusionsBasic(t *testing.T) {
	e := NewExclusions(5)
	e.Add(1, 3)
	e.Add(3, 1) // duplicate, reversed
	e.Add(0, 4)
	if !e.Excluded(1, 3) || !e.Excluded(3, 1) {
		t.Error("pair (1,3) should be excluded symmetrically")
	}
	if e.Excluded(1, 2) {
		t.Error("pair (1,2) should not be excluded")
	}
	if len(e.Pairs()) != 2 {
		t.Errorf("expected 2 unique pairs, got %d", len(e.Pairs()))
	}
	e.Add(2, 2) // self: ignored
	if len(e.Pairs()) != 2 {
		t.Error("self-pair should be ignored")
	}
}

func TestAddGroupExcludesAllPairs(t *testing.T) {
	e := NewExclusions(6)
	e.AddGroup([]int{1, 2, 4})
	want := [][2]int{{1, 2}, {1, 4}, {2, 4}}
	for _, p := range want {
		if !e.Excluded(p[0], p[1]) {
			t.Errorf("pair %v not excluded", p)
		}
	}
	if len(e.Pairs()) != 3 {
		t.Errorf("expected 3 pairs, got %d", len(e.Pairs()))
	}
}

// TestExclusionsSymmetryProperty: Excluded(i,j) == Excluded(j,i) for random
// addition sequences, and Pairs() always has I < J with no duplicates.
func TestExclusionsSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		e := NewExclusions(n)
		for k := 0; k < 40; k++ {
			e.Add(rng.Intn(n), rng.Intn(n))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if e.Excluded(i, j) != e.Excluded(j, i) {
					return false
				}
			}
		}
		seen := map[[2]int32]bool{}
		for _, p := range e.Pairs() {
			if p.I >= p.J {
				return false
			}
			key := [2]int32{p.I, p.J}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNilExclusions(t *testing.T) {
	var e *Exclusions
	if e.Excluded(0, 1) {
		t.Error("nil exclusions should exclude nothing")
	}
	if e.Pairs() != nil || e.Neighbors(0) != nil {
		t.Error("nil exclusions should return nil slices")
	}
}

func TestNeighborsSorted(t *testing.T) {
	e := NewExclusions(10)
	for _, j := range []int{7, 2, 9, 4} {
		e.Add(5, j)
	}
	nb := e.Neighbors(5)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("neighbours not sorted: %v", nb)
		}
	}
}
