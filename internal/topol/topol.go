// Package topol holds minimal molecular topology shared by the force
// modules: nonbonded exclusion lists and molecule groupings.
package topol

import "sort"

// Pair is an unordered atom pair stored with I < J.
type Pair struct{ I, J int32 }

// Exclusions records which atom pairs are excluded from nonbonded
// interactions (typically atoms connected by one or two bonds, or all
// intra-molecular pairs of a rigid water).
type Exclusions struct {
	adj   [][]int32 // symmetric, sorted neighbour lists
	pairs []Pair    // unique pairs, I < J
}

// NewExclusions returns an empty exclusion set for n atoms.
func NewExclusions(n int) *Exclusions {
	return &Exclusions{adj: make([][]int32, n)}
}

// NAtoms returns the number of atoms the set was built for.
func (e *Exclusions) NAtoms() int { return len(e.adj) }

// Add excludes the pair (i, j). Duplicate additions are ignored.
func (e *Exclusions) Add(i, j int) {
	if i == j {
		return
	}
	if i > j {
		i, j = j, i
	}
	if e.Excluded(i, j) {
		return
	}
	e.adj[i] = insertSorted(e.adj[i], int32(j))
	e.adj[j] = insertSorted(e.adj[j], int32(i))
	e.pairs = append(e.pairs, Pair{int32(i), int32(j)})
}

// AddGroup excludes every pair within the atom index group (e.g. the three
// atoms of one water molecule).
func (e *Exclusions) AddGroup(idx []int) {
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			e.Add(idx[a], idx[b])
		}
	}
}

// Excluded reports whether the pair (i, j) is excluded.
func (e *Exclusions) Excluded(i, j int) bool {
	if e == nil {
		return false
	}
	l := e.adj[i]
	k := sort.Search(len(l), func(k int) bool { return l[k] >= int32(j) })
	return k < len(l) && l[k] == int32(j)
}

// Pairs returns all excluded pairs with I < J. The caller must not modify
// the returned slice.
func (e *Exclusions) Pairs() []Pair {
	if e == nil {
		return nil
	}
	return e.pairs
}

// Neighbors returns the sorted excluded partners of atom i.
func (e *Exclusions) Neighbors(i int) []int32 {
	if e == nil {
		return nil
	}
	return e.adj[i]
}

func insertSorted(l []int32, v int32) []int32 {
	k := sort.Search(len(l), func(k int) bool { return l[k] >= v })
	l = append(l, 0)
	copy(l[k+1:], l[k:])
	l[k] = v
	return l
}
