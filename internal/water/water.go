// Package water builds TIP3P water systems: lattice placement with random
// orientations, contact rejection, and optional thermal equilibration with
// the md engine. It substitutes the GROMACS-prepared water boxes of the
// paper's Table 1 / Fig. 4 experiments (see DESIGN.md).
package water

import (
	"math"
	"math/rand"

	"tme4a/internal/constraint"
	"tme4a/internal/md"
	"tme4a/internal/spme"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// Model returns the TIP3P rigid geometry used for SETTLE.
func Model() *constraint.Water {
	return constraint.NewWater(units.TIP3PROH, units.TIP3PAngleHOH, units.MassO, units.MassH)
}

// Build places nx·ny·nz TIP3P molecules on a simple cubic lattice in box
// with random orientations (deterministic for a given seed) and returns an
// md.System with charges, LJ parameters, exclusions and SETTLE topology
// filled in. Orientations are re-drawn up to 20 times per molecule to keep
// inter-molecular hydrogen contacts above 0.13 nm.
func Build(nx, ny, nz int, box vec.Box, seed int64) *md.System {
	nmol := nx * ny * nz
	sys := md.NewSystem(3*nmol, box)
	sys.WaterModel = Model()
	rng := rand.New(rand.NewSource(seed))

	w := sys.WaterModel
	// Canonical molecule about its COM (matching constraint geometry).
	h := units.TIP3PROH * math.Cos(units.TIP3PAngleHOH/2)
	x := units.TIP3PROH * math.Sin(units.TIP3PAngleHOH/2)
	mTot := units.MassO + 2*units.MassH
	yO := 2 * units.MassH * h / mTot
	canon := [3]vec.V{
		{0, yO, 0},      // O
		{-x, yO - h, 0}, // H1
		{x, yO - h, 0},  // H2
	}
	_ = w

	spacing := vec.V{box.L[0] / float64(nx), box.L[1] / float64(ny), box.L[2] / float64(nz)}
	minContact2 := 0.13 * 0.13

	placed := make([]vec.V, 0, 3*nmol)
	mol := 0
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				center := vec.V{
					(float64(ix) + 0.5) * spacing[0],
					(float64(iy) + 0.5) * spacing[1],
					(float64(iz) + 0.5) * spacing[2],
				}
				var atoms [3]vec.V
				for try := 0; ; try++ {
					rot := randomRotation(rng)
					for k := 0; k < 3; k++ {
						atoms[k] = rot(canon[k]).Add(center)
					}
					if try >= 20 || !tooClose(box, placed, atoms[:], minContact2, ix, iy, nx) {
						break
					}
				}
				base := 3 * mol
				for k := 0; k < 3; k++ {
					sys.Pos[base+k] = atoms[k]
					placed = append(placed, atoms[k])
				}
				sys.Mass[base] = units.MassO
				sys.Mass[base+1] = units.MassH
				sys.Mass[base+2] = units.MassH
				sys.Q[base] = units.TIP3PQO
				sys.Q[base+1] = units.TIP3PQH
				sys.Q[base+2] = units.TIP3PQH
				sys.LJ.Sigma[base] = units.TIP3PSigma
				sys.LJ.Eps[base] = units.TIP3PEpsilon
				sys.Excl.AddGroup([]int{base, base + 1, base + 2})
				sys.RigidWaters = append(sys.RigidWaters, [3]int{base, base + 1, base + 2})
				mol++
			}
		}
	}
	return sys
}

// tooClose checks the trial molecule's atoms against recently placed atoms
// (the previous lattice row suffices given the lattice spacing).
func tooClose(box vec.Box, placed []vec.V, atoms []vec.V, min2 float64, ix, iy, nx int) bool {
	// Look back over up to two lattice rows of atoms.
	lookback := 3 * (nx + 2)
	start := len(placed) - lookback
	if start < 0 {
		start = 0
	}
	for _, a := range atoms {
		for _, p := range placed[start:] {
			if box.MinImage(a.Sub(p)).Norm2() < min2 {
				return true
			}
		}
	}
	return false
}

func randomRotation(rng *rand.Rand) func(vec.V) vec.V {
	var q [4]float64
	var n float64
	for i := range q {
		q[i] = rng.NormFloat64()
		n += q[i] * q[i]
	}
	n = math.Sqrt(n)
	for i := range q {
		q[i] /= n
	}
	w, x, y, z := q[0], q[1], q[2], q[3]
	return func(v vec.V) vec.V {
		return vec.V{
			(1-2*(y*y+z*z))*v[0] + 2*(x*y-w*z)*v[1] + 2*(x*z+w*y)*v[2],
			2*(x*y+w*z)*v[0] + (1-2*(x*x+z*z))*v[1] + 2*(y*z-w*x)*v[2],
			2*(x*z-w*y)*v[0] + 2*(y*z+w*x)*v[1] + (1-2*(x*x+y*y))*v[2],
		}
	}
}

// CubicBoxFor returns the cubic box edge that gives nmol TIP3P molecules
// the ambient liquid density.
func CubicBoxFor(nmol int) vec.Box {
	edge := math.Cbrt(float64(nmol) / units.TIP3PDensity)
	return vec.Cubic(edge)
}

// Equilibrate runs steps of thermostatted MD with short-range-only
// electrostatics (erfc-screened at the given cutoff) to thermalise a
// freshly built lattice. It is deliberately cheap: mesh electrostatics are
// unnecessary for decorrelating orientations.
func Equilibrate(sys *md.System, steps int, dt, temperature, rc float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	sys.InitVelocities(temperature, rng)
	alpha := spme.AlphaFromRTol(rc, 1e-4)
	integ := &md.Integrator{
		FF:         &md.ForceField{Alpha: alpha, Rc: rc},
		Dt:         dt,
		Thermostat: &md.Thermostat{T: temperature, Tau: 0.1},
	}
	integ.Run(sys, steps, nil)
	sys.RemoveCOMMotion()
}
