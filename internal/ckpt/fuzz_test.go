package ckpt

import (
	"bytes"
	"testing"
)

// FuzzDecodeCheckpoint asserts the container decoder is total: arbitrary
// bytes either decode to a validated checkpoint or return an error —
// never a panic, never an unbounded allocation. Seeds cover the
// interesting prefixes: a fully valid file, truncations at each layer
// boundary, and targeted corruptions.
func FuzzDecodeCheckpoint(f *testing.F) {
	valid, err := (&Checkpoint{
		ConfigHash: 7,
		Snap:       testSnap(42, 3, 9),
		ObsNames:   []string{"ckpt_writes"},
		ObsVals:    []int64{1},
	}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid)
	f.Add(valid[:headerSize])         // header only
	f.Add(valid[:len(valid)-crcSize]) // CRC stripped
	f.Add(valid[:len(valid)/2])       // torn mid-payload
	f.Add(append(valid, 0xFF))        // trailing garbage
	corrupted := bytes.Clone(valid)
	corrupted[len(corrupted)/2] ^= 0x01
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		if c.Snap == nil {
			t.Fatal("Decode returned nil snapshot without error")
		}
		if err := c.Snap.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid snapshot: %v", err)
		}
		// Anything the decoder accepts must survive a re-encode (gob
		// tolerates non-canonical input streams, so byte identity is only
		// guaranteed — and separately tested — for encoder-produced files).
		if _, err := c.Encode(); err != nil {
			t.Fatalf("re-encode of accepted checkpoint failed: %v", err)
		}
	})
}
