// Package ckpt is the crash-consistent checkpoint/restart subsystem: it
// persists the complete resume state of an MD run (md.Snapshot with its
// resume extension, plus obs counters and a run-configuration hash) as
// self-describing, CRC-guarded, byte-deterministic files written with the
// temp-file + fsync + rename + dir-fsync protocol, keeps the last K under
// a retention policy, and recovers the newest valid checkpoint after any
// interruption — including torn or short writes, failed fsyncs and
// crashes at arbitrary syscalls, which the FaultFS/MemFS seams make
// directly testable. See DESIGN.md §7.5 for the contracts.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"tme4a/internal/md"
	"tme4a/internal/obs"
)

// File layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "TMECKPT1" (version is part of the magic)
//	8       8     payload length N
//	16      N     payload: gob(fileWire)
//	16+N    4     CRC-32C (Castagnoli) over bytes [0, 16+N)
//
// The payload is gob of fileWire, whose md.Snapshot field serializes
// through the byte-deterministic snapshotWire form, so identical state
// always produces identical files.
const (
	magic      = "TMECKPT1"
	headerSize = len(magic) + 8
	crcSize    = 4
	// maxPayload bounds the declared payload length before any
	// allocation, so a corrupt header cannot ask the decoder to allocate
	// unbounded memory.
	maxPayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNoCheckpoint is returned by LoadLatest when the directory holds no
// checkpoint at all (as opposed to holding only invalid ones, which is an
// ordinary error naming each rejection).
var ErrNoCheckpoint = errors.New("ckpt: no checkpoint found")

// Checkpoint is one captured run state.
type Checkpoint struct {
	// ConfigHash fingerprints the run configuration (ConfigHash helper);
	// resuming under a different configuration is refused.
	ConfigHash uint64
	// Snap is the complete resume state (md.Integrator.CaptureResume).
	Snap *md.Snapshot
	// ObsNames/ObsVals carry the cumulative obs counter values by name,
	// so a resumed run's counters continue instead of restarting and
	// unknown counters from another build are dropped, not misread.
	ObsNames []string
	ObsVals  []int64
}

// Step returns the number of completed steps the checkpoint captures.
func (c *Checkpoint) Step() int64 { return c.Snap.Step }

// RestoreObs sets the recorder's counters to the checkpointed values;
// names the current build does not know are ignored.
func (c *Checkpoint) RestoreObs(r *obs.Recorder) {
	if r == nil {
		return
	}
	for i, name := range c.ObsNames {
		if ctr, ok := obs.CounterFromJSONName(name); ok {
			r.SetCounter(ctr, c.ObsVals[i])
		}
	}
}

// fileWire is the gob payload of a checkpoint file.
type fileWire struct {
	ConfigHash uint64
	Snap       *md.Snapshot
	ObsNames   []string
	ObsVals    []int64
}

// Encode renders the checkpoint as a byte-deterministic file image
// (same state → same bytes).
func (c *Checkpoint) Encode() ([]byte, error) {
	if c.Snap == nil {
		return nil, errors.New("ckpt: nil snapshot")
	}
	if len(c.ObsNames) != len(c.ObsVals) {
		return nil, fmt.Errorf("ckpt: %d counter names, %d values", len(c.ObsNames), len(c.ObsVals))
	}
	var payload bytes.Buffer
	w := fileWire{ConfigHash: c.ConfigHash, Snap: c.Snap, ObsNames: c.ObsNames, ObsVals: c.ObsVals}
	if err := gob.NewEncoder(&payload).Encode(&w); err != nil {
		return nil, fmt.Errorf("ckpt: encode: %w", err)
	}
	buf := make([]byte, 0, headerSize+payload.Len()+crcSize)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(payload.Len()))
	buf = append(buf, payload.Bytes()...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf, nil
}

// Decode parses and fully validates a checkpoint file image: magic,
// declared length, CRC, payload decode, and snapshot sanity (lengths,
// box, finite values). Arbitrary or truncated bytes produce a precise
// error, never a panic or an unbounded allocation.
func Decode(data []byte) (*Checkpoint, error) {
	if len(data) < headerSize+crcSize {
		return nil, fmt.Errorf("ckpt: file too small (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", data[:len(magic)])
	}
	n := binary.LittleEndian.Uint64(data[len(magic):headerSize])
	if n > maxPayload {
		return nil, fmt.Errorf("ckpt: declared payload %d exceeds limit", n)
	}
	if int(n) != len(data)-headerSize-crcSize {
		return nil, fmt.Errorf("ckpt: truncated or padded: header declares %d payload bytes, file carries %d",
			n, len(data)-headerSize-crcSize)
	}
	body := data[:len(data)-crcSize]
	want := binary.LittleEndian.Uint32(data[len(data)-crcSize:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("ckpt: CRC mismatch (file %08x, computed %08x): corrupt checkpoint", want, got)
	}
	var w fileWire
	if err := gob.NewDecoder(bytes.NewReader(body[headerSize:])).Decode(&w); err != nil {
		return nil, fmt.Errorf("ckpt: payload decode: %w", err)
	}
	if w.Snap == nil {
		return nil, errors.New("ckpt: payload carries no snapshot")
	}
	if len(w.ObsNames) != len(w.ObsVals) {
		return nil, fmt.Errorf("ckpt: corrupt counters: %d names, %d values", len(w.ObsNames), len(w.ObsVals))
	}
	if err := w.Snap.Validate(); err != nil {
		return nil, fmt.Errorf("ckpt: invalid snapshot: %w", err)
	}
	return &Checkpoint{ConfigHash: w.ConfigHash, Snap: w.Snap, ObsNames: w.ObsNames, ObsVals: w.ObsVals}, nil
}

// ConfigHash returns a stable FNV-1a fingerprint of a canonical run-
// configuration string. Callers build the string from every parameter
// that shapes the trajectory (system, seeds, cutoffs, method, dt); the
// store refuses to resume a checkpoint whose hash differs.
func ConfigHash(canonical string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(canonical)) //tmevet:ignore errdrop -- hash.Hash Write never errors (fnv)
	return h.Sum64()
}

// Entry describes one checkpoint file known to a store.
type Entry struct {
	Name string // base name, ckpt-<step>.tme
	Step int64
	Size int64
	CRC  uint32 // the file's trailing CRC-32C
}

const (
	filePrefix   = "ckpt-"
	fileSuffix   = ".tme"
	tmpSuffix    = ".tmp"
	manifestName = "MANIFEST"
	manifestHdr  = "tme-ckpt-manifest v1"
)

func FileName(step int64) string {
	return fmt.Sprintf("%s%012d%s", filePrefix, step, fileSuffix)
}

// stepFromName parses the step out of a checkpoint base name.
func stepFromName(name string) (int64, bool) {
	rest, ok := strings.CutPrefix(name, filePrefix)
	if !ok {
		return 0, false
	}
	digits, ok := strings.CutSuffix(rest, fileSuffix)
	if !ok || digits == "" {
		return 0, false
	}
	step, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || step < 0 {
		return 0, false
	}
	return step, true
}

// Store writes and recovers checkpoints in one directory.
type Store struct {
	dir  string
	keep int
	fs   FS
	hash uint64
	rec  *obs.Recorder

	entries []Entry // known durable checkpoints, ascending step
}

// Open prepares a checkpoint store in dir, retaining the newest keep
// checkpoints (keep <= 0 means 3). configHash guards against resuming
// under a different run configuration (0 disables the guard). fsys nil
// means the real filesystem.
func Open(dir string, keep int, configHash uint64, fsys FS) (*Store, error) {
	if fsys == nil {
		fsys = OS()
	}
	if keep <= 0 {
		keep = 3
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("ckpt: create %s: %w", dir, err)
	}
	s := &Store{dir: dir, keep: keep, fs: fsys, hash: configHash}
	// Discover pre-existing checkpoints so retention keeps working across
	// process restarts. Unreadable files are left alone here; LoadLatest
	// judges validity.
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: scan %s: %w", dir, err)
	}
	for _, name := range names {
		if step, ok := stepFromName(name); ok {
			s.entries = append(s.entries, Entry{Name: name, Step: step})
		}
	}
	return s, nil
}

// SetObs attaches a stage recorder: Save runs under the checkpoint-write
// span, counts durable writes/bytes/failures, and embeds the cumulative
// counter values into each checkpoint.
func (s *Store) SetObs(r *obs.Recorder) { s.rec = r }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Entries returns the checkpoints the store believes exist, ascending by
// step.
func (s *Store) Entries() []Entry { return append([]Entry(nil), s.entries...) }

// Save persists snap as the checkpoint for snap.Step using the atomic
// protocol: write ckpt-<step>.tme.tmp, fsync it, close, rename over the
// final name, fsync the directory; then rewrite the manifest the same way
// and prune beyond the retention limit. A failure at any point leaves
// every previously durable checkpoint untouched.
func (s *Store) Save(snap *md.Snapshot) error {
	sp := s.rec.Start(obs.StageCheckpoint)
	defer sp.Stop()
	err := s.save(snap)
	if err != nil {
		s.rec.Add(obs.CounterCkptFailures, 1)
	}
	return err
}

func (s *Store) save(snap *md.Snapshot) error {
	c := &Checkpoint{ConfigHash: s.hash, Snap: snap}
	if s.rec.Enabled() {
		vals := s.rec.CounterValues()
		c.ObsNames = make([]string, len(vals))
		for i := range vals {
			c.ObsNames[i] = obs.Counter(i).String()
		}
		c.ObsVals = vals
	}
	data, err := c.Encode()
	if err != nil {
		return err
	}
	name := FileName(snap.Step)
	if err := s.writeAtomic(name, data); err != nil {
		return fmt.Errorf("ckpt: write %s: %w", name, err)
	}
	s.rec.Add(obs.CounterCkptWrites, 1)
	s.rec.Add(obs.CounterCkptBytes, int64(len(data)))

	// Update the in-memory ledger (replacing any same-step entry), trim
	// it to the retention limit, persist the manifest, then remove the
	// pruned files. Ordering matters: the manifest stops naming a file
	// before the file disappears, so a crash anywhere in between leaves
	// either an unlisted-but-valid file (recovered by the directory scan)
	// or a listed-but-missing one (skipped with a precise reason).
	kept := s.entries[:0]
	for _, e := range s.entries {
		if e.Name != name {
			kept = append(kept, e)
		}
	}
	s.entries = append(kept, Entry{
		Name: name, Step: snap.Step, Size: int64(len(data)),
		CRC: binary.LittleEndian.Uint32(data[len(data)-crcSize:]),
	})
	sort.Slice(s.entries, func(i, j int) bool { return s.entries[i].Step < s.entries[j].Step })
	var pruned []Entry
	if excess := len(s.entries) - s.keep; excess > 0 {
		pruned = append(pruned, s.entries[:excess]...)
		s.entries = append([]Entry(nil), s.entries[excess:]...)
	}
	if err := s.writeManifest(); err != nil {
		return fmt.Errorf("ckpt: manifest: %w", err)
	}
	for _, e := range pruned {
		if err := s.fs.Remove(filepath.Join(s.dir, e.Name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("ckpt: prune %s: %w", e.Name, err)
		}
	}
	return nil
}

// writeAtomic writes data to dir/name via temp + fsync + rename +
// dir-fsync. On failure the temp file is removed best-effort.
func (s *Store) writeAtomic(name string, data []byte) error {
	final := filepath.Join(s.dir, name)
	tmp := final + tmpSuffix
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()        //tmevet:ignore errdrop -- already failing; the first error wins
		s.fs.Remove(tmp) //tmevet:ignore errdrop -- best-effort temp cleanup on the failure path
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.fs.Remove(tmp) //tmevet:ignore errdrop -- best-effort temp cleanup on the failure path
		return err
	}
	return s.fs.SyncDir(s.dir)
}

// writeManifest persists the entry ledger with the same atomic protocol
// as the checkpoints themselves. The manifest is a discovery aid: loaders
// cross-check it against the directory and survive it being stale,
// missing or torn.
func (s *Store) writeManifest() error {
	var b strings.Builder
	b.WriteString(manifestHdr) //tmevet:ignore errdrop -- strings.Builder never errors
	b.WriteByte('\n')          //tmevet:ignore errdrop -- strings.Builder never errors
	for _, e := range s.entries {
		fmt.Fprintf(&b, "%s step=%d size=%d crc=%08x\n", e.Name, e.Step, e.Size, e.CRC) //tmevet:ignore errdrop -- strings.Builder never errors
	}
	return s.writeAtomic(manifestName, []byte(b.String()))
}

// parseManifest returns the entries of a manifest image, skipping
// malformed lines (a torn manifest must not take recovery down with it).
func parseManifest(data []byte) []Entry {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != manifestHdr {
		return nil
	}
	var entries []Entry
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != 4 {
			continue
		}
		step, ok := stepFromName(fields[0])
		if !ok {
			continue
		}
		e := Entry{Name: fields[0], Step: step}
		if v, ok := strings.CutPrefix(fields[2], "size="); ok {
			e.Size, _ = strconv.ParseInt(v, 10, 64) //tmevet:ignore errdrop -- zero on malformed; the directory scan is authoritative
		}
		if v, ok := strings.CutPrefix(fields[3], "crc="); ok {
			crc, _ := strconv.ParseUint(v, 16, 32) //tmevet:ignore errdrop -- zero on malformed; a bad CRC just fails verification
			e.CRC = uint32(crc)
		}
		entries = append(entries, e)
	}
	return entries
}

// LoadLatest recovers the newest valid checkpoint: it merges the manifest
// with a directory scan (either alone survives loss of the other),
// validates candidates newest-first — CRC, structure, snapshot sanity,
// configuration hash — and returns the first that passes. Invalid
// candidates are skipped with their reasons collected; if nothing
// survives, the error says precisely why each candidate was rejected, or
// ErrNoCheckpoint when the directory holds none at all.
func (s *Store) LoadLatest() (*Checkpoint, error) {
	candidates := make(map[string]bool)
	if names, err := s.fs.ReadDir(s.dir); err == nil {
		for _, name := range names {
			if _, ok := stepFromName(name); ok {
				candidates[name] = true
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("ckpt: scan %s: %w", s.dir, err)
	}
	if data, err := s.fs.ReadFile(filepath.Join(s.dir, manifestName)); err == nil {
		for _, e := range parseManifest(data) {
			candidates[e.Name] = true
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, s.dir)
	}
	names := make([]string, 0, len(candidates))
	for name := range candidates {
		names = append(names, name)
	}
	// Newest first: steps are zero-padded in names, so reverse
	// lexicographic order is descending step order.
	sort.Sort(sort.Reverse(sort.StringSlice(names)))

	var reasons []string
	for _, name := range names {
		data, err := s.fs.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			reasons = append(reasons, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		c, err := Decode(data)
		if err != nil {
			reasons = append(reasons, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		if s.hash != 0 && c.ConfigHash != 0 && c.ConfigHash != s.hash {
			return nil, fmt.Errorf("ckpt: %s was written under a different run configuration (hash %016x, want %016x)",
				name, c.ConfigHash, s.hash)
		}
		return c, nil
	}
	return nil, fmt.Errorf("ckpt: no valid checkpoint in %s: %s", s.dir, strings.Join(reasons, "; "))
}
