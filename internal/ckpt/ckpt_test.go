package ckpt

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tme4a/internal/md"
	"tme4a/internal/obs"
	"tme4a/internal/vec"
)

// testSnap builds a synthetic but fully-populated resume snapshot.
func testSnap(step int64, n int, seed int64) *md.Snapshot {
	rng := rand.New(rand.NewSource(seed))
	rv := func() vec.V { return vec.V{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()} }
	snap := &md.Snapshot{
		Box:  vec.NewBox(2.5, 2.5, 2.5),
		Step: step,
		Meta: map[string]int64{"side": 3, "seed": seed},
	}
	for i := 0; i < n; i++ {
		snap.Pos = append(snap.Pos, rv())
		snap.Vel = append(snap.Vel, rv())
		snap.Frc = append(snap.Frc, rv())
		snap.VerletRef = append(snap.VerletRef, rv())
		snap.MeshForces = append(snap.MeshForces, rv())
	}
	snap.LastE = md.Energies{CoulShort: -1, CoulLong: -2, LJ: 0.5, Kinetic: 3}
	snap.MeshEnergy = -7.25
	snap.MeshExcl = 0.125
	snap.HasMesh = true
	return snap
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := &Checkpoint{
		ConfigHash: ConfigHash("method=spme rc=1.0"),
		Snap:       testSnap(500, 12, 1),
		ObsNames:   []string{"mesh_solves", "verlet_rebuilds"},
		ObsVals:    []int64{500, 41},
	}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

// TestEncodeIsByteDeterministic: same state → same bytes, including after
// a decode round trip (the determinism property of md.Snapshot extended
// to the checkpoint container).
func TestEncodeIsByteDeterministic(t *testing.T) {
	for _, name := range []string{"tiny", "empty-meta", "resume-state", "large"} {
		t.Run(name, func(t *testing.T) {
			seed := int64(ConfigHash(name) % 1000)
			c := &Checkpoint{ConfigHash: ConfigHash(name), Snap: testSnap(seed, int(seed%97)+1, seed)}
			if name == "empty-meta" {
				c.Snap.Meta = nil
			}
			a, err := c.Encode()
			if err != nil {
				t.Fatal(err)
			}
			b, err := c.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatal("two encodings of identical state differ")
			}
			dec, err := Decode(a)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := dec.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, rt) {
				t.Fatal("decode → re-encode changed the bytes")
			}
		})
	}
}

func TestDecodeRejections(t *testing.T) {
	valid, err := (&Checkpoint{Snap: testSnap(7, 4, 2)}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	corruptPayload := append([]byte(nil), valid...)
	corruptPayload[headerSize+3] ^= 0xff // payload byte flip → CRC catches it
	badLen := append([]byte(nil), valid...)
	badLen[len(magic)] ^= 0x01 // declared length no longer matches
	nan := testSnap(7, 4, 2)
	nan.Vel[2][1] = nanFloat()
	nanBytes := mustEncode(t, &Checkpoint{Snap: nan})

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "too small"},
		{"short", valid[:10], "too small"},
		{"bad magic", append([]byte("NOTACKPT"), valid[8:]...), "bad magic"},
		{"truncated", valid[:len(valid)-9], "truncated"},
		{"declared length mismatch", badLen, "truncated or padded"},
		{"payload corruption", corruptPayload, "CRC mismatch"},
		{"crc field corruption", flipLast(valid), "CRC mismatch"},
		{"nan smuggled in velocities", nanBytes, "not finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if err == nil {
				t.Fatal("decode accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// mustEncode encodes without the Validate gate that Decode applies, by
// building the file image the same way Encode does. Encode itself does
// not validate (capture of live state is trusted); Decode must.
func mustEncode(t *testing.T, c *Checkpoint) []byte {
	t.Helper()
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func nanFloat() float64 {
	zero := 0.0
	return zero / zero
}

func flipLast(data []byte) []byte {
	out := append([]byte(nil), data...)
	out[len(out)-1] ^= 0xff
	return out
}

func TestStoreSaveLoadAndRetention(t *testing.T) {
	fs := NewMemFS()
	st, err := Open("ck", 3, 99, fs)
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(100); step <= 600; step += 100 {
		if err := st.Save(testSnap(step, 6, step)); err != nil {
			t.Fatalf("save %d: %v", step, err)
		}
	}
	ents := st.Entries()
	if len(ents) != 3 || ents[0].Step != 400 || ents[2].Step != 600 {
		t.Fatalf("retention kept %+v, want steps 400..600", ents)
	}
	names, err := fs.ReadDir("ck")
	if err != nil {
		t.Fatal(err)
	}
	var ckpts []string
	for _, n := range names {
		if strings.HasSuffix(n, fileSuffix) {
			ckpts = append(ckpts, n)
		}
	}
	if len(ckpts) != 3 {
		t.Fatalf("directory holds %v, want 3 checkpoints", names)
	}
	c, err := st.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if c.Step() != 600 {
		t.Fatalf("loaded step %d, want 600", c.Step())
	}
	if !reflect.DeepEqual(c.Snap, testSnap(600, 6, 600)) {
		t.Fatal("loaded snapshot differs from saved state")
	}

	// A second store over the same directory discovers the files and
	// keeps pruning correctly.
	st2, err := Open("ck", 3, 99, fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Save(testSnap(700, 6, 700)); err != nil {
		t.Fatal(err)
	}
	ents = st2.Entries()
	if len(ents) != 3 || ents[0].Step != 500 || ents[2].Step != 700 {
		t.Fatalf("post-restart retention kept %+v, want steps 500..700", ents)
	}
}

func TestStoreSameStateSameBytes(t *testing.T) {
	write := func() []byte {
		fs := NewMemFS()
		st, err := Open("ck", 3, 1, fs)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Save(testSnap(250, 9, 4)); err != nil {
			t.Fatal(err)
		}
		data, err := fs.ReadFile(filepath.Join("ck", FileName(250)))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(write(), write()) {
		t.Fatal("two saves of identical state produced different files")
	}
}

func TestConfigHashGuard(t *testing.T) {
	fs := NewMemFS()
	st, err := Open("ck", 3, ConfigHash("rc=1.0"), fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnap(100, 4, 1)); err != nil {
		t.Fatal(err)
	}
	st2, err := Open("ck", 3, ConfigHash("rc=1.2"), fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.LoadLatest(); err == nil || !strings.Contains(err.Error(), "different run configuration") {
		t.Fatalf("config mismatch not refused: %v", err)
	}
	// Hash 0 disables the guard on either side.
	st3, err := Open("ck", 3, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st3.LoadLatest(); err != nil {
		t.Fatalf("guard disabled but load failed: %v", err)
	}
}

func TestObsCountersTravel(t *testing.T) {
	clock := int64(0)
	rec := obs.NewWithClock(func() int64 { clock += 10; return clock })
	rec.Add(obs.CounterMeshSolves, 123)
	rec.Add(obs.CounterVerletRebuilds, 7)

	fs := NewMemFS()
	st, err := Open("ck", 3, 1, fs)
	if err != nil {
		t.Fatal(err)
	}
	st.SetObs(rec)
	if err := st.Save(testSnap(100, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if got := rec.CounterValue(obs.CounterCkptWrites); got != 1 {
		t.Errorf("ckpt_writes = %d, want 1", got)
	}
	if got := rec.CounterValue(obs.CounterCkptBytes); got <= 0 {
		t.Errorf("ckpt_bytes = %d, want > 0", got)
	}
	if got := rec.StageCount(obs.StageCheckpoint); got != 1 {
		t.Errorf("checkpoint spans = %d, want 1", got)
	}

	c, err := st.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	rec2 := obs.NewWithClock(func() int64 { return 0 })
	c.RestoreObs(rec2)
	if got := rec2.CounterValue(obs.CounterMeshSolves); got != 123 {
		t.Errorf("restored mesh_solves = %d, want 123", got)
	}
	if got := rec2.CounterValue(obs.CounterVerletRebuilds); got != 7 {
		t.Errorf("restored verlet_rebuilds = %d, want 7", got)
	}
	// Unknown counter names are dropped, not misattributed.
	c.ObsNames = append(c.ObsNames, "from_the_future")
	c.ObsVals = append(c.ObsVals, 1e6)
	c.RestoreObs(rec2)
	if got := rec2.CounterValue(obs.CounterMeshSolves); got != 123 {
		t.Errorf("unknown counter restore disturbed mesh_solves: %d", got)
	}
}

func TestLoadLatestEmptyDir(t *testing.T) {
	fs := NewMemFS()
	st, err := Open("ck", 3, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: got %v, want ErrNoCheckpoint", err)
	}
}

func TestManifestParsingTolerance(t *testing.T) {
	cases := []struct {
		name string
		data string
		want int
	}{
		{"valid", manifestHdr + "\nckpt-000000000100.tme step=100 size=10 crc=0000abcd\n", 1},
		{"wrong header", "something else\nckpt-000000000100.tme step=100 size=10 crc=0000abcd\n", 0},
		{"torn line", manifestHdr + "\nckpt-000000000100.tme step=100 size=10 crc=0000abcd\nckpt-0000002", 1},
		{"junk lines skipped", manifestHdr + "\n\ngarbage here\nckpt-000000000200.tme step=200 size=5 crc=00000001\n", 1},
		{"empty", "", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseManifest([]byte(tc.data)); len(got) != tc.want {
				t.Fatalf("parsed %d entries, want %d: %+v", len(got), tc.want, got)
			}
		})
	}
}

func TestStepFromName(t *testing.T) {
	cases := []struct {
		name string
		step int64
		ok   bool
	}{
		{"ckpt-000000000500.tme", 500, true},
		{"ckpt-000000000500.tme.tmp", 0, false},
		{"MANIFEST", 0, false},
		{"ckpt-.tme", 0, false},
		{"ckpt-xx.tme", 0, false},
		{"ckpt-1.tme", 1, true},
	}
	for _, tc := range cases {
		step, ok := stepFromName(tc.name)
		if step != tc.step || ok != tc.ok {
			t.Errorf("stepFromName(%q) = %d,%v want %d,%v", tc.name, step, ok, tc.step, tc.ok)
		}
	}
}

// TestOSFSRoundTrip exercises the real-filesystem implementation once so
// the osFS code paths (including SyncDir) are covered on the platform CI
// runs on.
func TestOSFSRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := Open(dir, 2, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(10); step <= 40; step += 10 {
		if err := st.Save(testSnap(step, 5, step)); err != nil {
			t.Fatalf("save %d: %v", step, err)
		}
	}
	c, err := st.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if c.Step() != 40 {
		t.Fatalf("loaded step %d, want 40", c.Step())
	}
	if len(st.Entries()) != 2 {
		t.Fatalf("retention kept %d, want 2", len(st.Entries()))
	}
	if st.Dir() != dir {
		t.Fatalf("Dir() = %q", st.Dir())
	}
}
