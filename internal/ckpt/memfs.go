package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS that models POSIX durability semantics so
// tests can simulate power loss at any point: a file's content becomes
// durable only at Sync, and a name→file binding (create, rename, remove)
// becomes durable only at SyncDir. Crash discards everything volatile,
// leaving exactly the state a real disk would present after the machine
// dies — which is the state the recovery path must handle.
type MemFS struct {
	mu      sync.Mutex
	nextID  int
	inodes  map[int]*memInode
	live    map[string]int // current namespace (what readers see)
	durable map[string]int // crash-surviving namespace (as of last SyncDir)
	dirs    map[string]bool
}

type memInode struct {
	live    []byte // current content, visible to readers immediately
	durable []byte // content as of the last Sync; what a crash preserves
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		inodes:  make(map[int]*memInode),
		live:    make(map[string]int),
		durable: make(map[string]int),
		dirs:    make(map[string]bool),
	}
}

// Crash simulates power loss: every file reverts to its last-synced
// content and the namespace reverts to its last SyncDir state. The
// filesystem stays usable afterwards, now presenting the post-reboot
// view.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live = make(map[string]int, len(m.durable))
	for name, id := range m.durable {
		m.live[name] = id
	}
	for _, ino := range m.inodes {
		ino.live = append([]byte(nil), ino.durable...)
	}
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[filepath.Clean(dir)] = true
	return nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	ino := &memInode{}
	m.nextID++
	id := m.nextID
	m.inodes[id] = ino
	m.live[name] = id
	return &memFile{fs: m, ino: ino}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	id, ok := m.live[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	m.live[newname] = id
	delete(m.live, oldname)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if _, ok := m.live[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.live, name)
	return nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	id, ok := m.live[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), m.inodes[id].live...), nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	if !m.dirs[dir] {
		return nil, &os.PathError{Op: "open", Path: dir, Err: os.ErrNotExist}
	}
	// Like os.ReadDir, list both child files and child directories. A
	// directory is a child if it was registered via MkdirAll or is implied
	// by a deeper live path.
	seen := make(map[string]bool)
	prefix := dir + string(filepath.Separator)
	for name := range m.live {
		if rest, ok := strings.CutPrefix(name, prefix); ok {
			child, _, _ := strings.Cut(rest, string(filepath.Separator))
			seen[child] = true
		}
	}
	for d := range m.dirs {
		if rest, ok := strings.CutPrefix(d, prefix); ok {
			child, _, _ := strings.Cut(rest, string(filepath.Separator))
			seen[child] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir makes the current namespace durable (the directory-entry half
// of the crash-consistency protocol). Like a real dir fsync it persists
// name bindings, not file contents.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[filepath.Clean(dir)] {
		return &os.PathError{Op: "sync", Path: dir, Err: os.ErrNotExist}
	}
	m.durable = make(map[string]int, len(m.live))
	for name, id := range m.live {
		m.durable[name] = id
	}
	return nil
}

// DumpDurable returns a deterministic description of the crash-surviving
// state, for test assertions.
func (m *MemFS) DumpDurable() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.durable))
	for name := range m.durable {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s %d\n", name, len(m.inodes[m.durable[name]].durable)) //tmevet:ignore errdrop -- strings.Builder never errors
	}
	return b.String()
}

type memFile struct {
	fs     *MemFS
	ino    *memInode
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	f.ino.live = append(f.ino.live, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.ino.durable = append([]byte(nil), f.ino.live...)
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
