package ckpt

import (
	"errors"
	"strings"
	"sync"
)

// ErrInjected is the error returned by an op that a FaultFS rule failed.
var ErrInjected = errors.New("ckpt: injected fault")

// ErrCrashed is returned by every op after a FaultFS rule simulated a
// process/machine crash.
var ErrCrashed = errors.New("ckpt: simulated crash")

// Op names one filesystem operation class for fault matching.
type Op uint8

const (
	OpAny Op = iota // matches every operation
	OpMkdir
	OpCreate
	OpWrite
	OpSync // file fsync
	OpClose
	OpRename
	OpRemove
	OpReadFile
	OpReadDir
	OpSyncDir
)

// Mode is what happens when a rule fires.
type Mode uint8

const (
	// ModeErr fails the operation with ErrInjected; the process keeps
	// running (transient I/O error, e.g. a failed fsync).
	ModeErr Mode = iota
	// ModeCrash aborts before the operation takes effect and kills the
	// "process": every subsequent op returns ErrCrashed. If the inner FS
	// models durability (MemFS), its volatile state is discarded.
	ModeCrash
	// ModeTorn applies to writes: half the buffer reaches the file (and
	// is forced durable, modeling a page that hit the platter), then the
	// process crashes — the canonical torn write.
	ModeTorn
	// ModeShort applies to writes: half the buffer is written and the op
	// reports a short-write error.
	ModeShort
)

// Rule arms one fault: the Nth operation (1-based, default 1) of class Op
// whose file name contains Match (empty matches any) fails with Mode.
type Rule struct {
	Op    Op
	Match string
	Nth   int
	Mode  Mode
}

// crasher is implemented by inner filesystems that can model power loss.
type crasher interface{ Crash() }

// FaultFS wraps an FS and fails scripted operations: torn writes, short
// writes, fsync errors and crash-at-any-syscall. Each rule fires at most
// once; unmatched operations pass through to the inner FS.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	rules   []Rule
	hits    []int
	fired   []bool
	crashed bool
}

// NewFaultFS wraps inner with the given fault rules.
func NewFaultFS(inner FS, rules ...Rule) *FaultFS {
	return &FaultFS{
		inner: inner,
		rules: rules,
		hits:  make([]int, len(rules)),
		fired: make([]bool, len(rules)),
	}
}

// Crashed reports whether a crash rule has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// check advances the fault script for one (op, name) event and returns
// the firing mode, if any. A returned error means the op must not reach
// the inner FS at all.
func (f *FaultFS) check(op Op, name string) (Mode, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, false, ErrCrashed
	}
	for i := range f.rules {
		r := &f.rules[i]
		if f.fired[i] {
			continue
		}
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Match != "" && !strings.Contains(name, r.Match) {
			continue
		}
		f.hits[i]++
		nth := r.Nth
		if nth <= 0 {
			nth = 1
		}
		if f.hits[i] != nth {
			continue
		}
		f.fired[i] = true
		if r.Mode == ModeCrash {
			f.crashLocked()
			return ModeCrash, true, ErrCrashed
		}
		return r.Mode, true, nil
	}
	return 0, false, nil
}

func (f *FaultFS) crashLocked() {
	f.crashed = true
	if c, ok := f.inner.(crasher); ok {
		c.Crash()
	}
}

// crash is called by faultFile after a torn write completed its partial
// durable flush.
func (f *FaultFS) crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashLocked()
}

func (f *FaultFS) MkdirAll(dir string) error {
	if _, fired, err := f.check(OpMkdir, dir); err != nil {
		return err
	} else if fired {
		return ErrInjected
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) Create(name string) (File, error) {
	if _, fired, err := f.check(OpCreate, name); err != nil {
		return nil, err
	} else if fired {
		return nil, ErrInjected
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if _, fired, err := f.check(OpRename, oldname); err != nil {
		return err
	} else if fired {
		return ErrInjected
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if _, fired, err := f.check(OpRemove, name); err != nil {
		return err
	} else if fired {
		return ErrInjected
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if _, fired, err := f.check(OpReadFile, name); err != nil {
		return nil, err
	} else if fired {
		return nil, ErrInjected
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if _, fired, err := f.check(OpReadDir, dir); err != nil {
		return nil, err
	} else if fired {
		return nil, ErrInjected
	}
	return f.inner.ReadDir(dir)
}

func (f *FaultFS) SyncDir(dir string) error {
	if _, fired, err := f.check(OpSyncDir, dir); err != nil {
		return err
	} else if fired {
		return ErrInjected
	}
	return f.inner.SyncDir(dir)
}

type faultFile struct {
	fs    *FaultFS
	name  string
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	mode, fired, err := ff.fs.check(OpWrite, ff.name)
	if err != nil {
		return 0, err
	}
	if !fired {
		return ff.inner.Write(p)
	}
	switch mode {
	case ModeTorn:
		// Half the buffer reaches the file and is forced durable — the
		// page that made it to the platter — then the machine dies.
		n, _ := ff.inner.Write(p[:len(p)/2]) //tmevet:ignore errdrop -- deliberate torn-write simulation; the injected ErrCrashed is the result
		ff.inner.Sync()                      //tmevet:ignore errdrop -- best effort mid-crash; the machine dies next
		ff.fs.crash()
		return n, ErrCrashed
	case ModeShort:
		n, _ := ff.inner.Write(p[:len(p)/2]) //tmevet:ignore errdrop -- deliberate short-write simulation; ErrInjected is the result
		return n, ErrInjected
	default: // ModeErr
		return 0, ErrInjected
	}
}

func (ff *faultFile) Sync() error {
	if _, fired, err := ff.fs.check(OpSync, ff.name); err != nil {
		return err
	} else if fired {
		return ErrInjected
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	if _, fired, err := ff.fs.check(OpClose, ff.name); err != nil {
		return err
	} else if fired {
		return ErrInjected
	}
	return ff.inner.Close()
}
