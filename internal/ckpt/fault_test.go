package ckpt

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// seedStore writes valid checkpoints at the given steps into fs/dir;
// the saves must succeed. Save ends with SyncDir, so on a MemFS the
// seeded state is already durable when this returns.
func seedStore(t *testing.T, fs FS, dir string, steps ...int64) {
	t.Helper()
	st, err := Open(dir, 10, 42, fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range steps {
		if err := st.Save(testSnap(step, 5, step)); err != nil {
			t.Fatalf("seed save %d: %v", step, err)
		}
	}
}

// corruptFile flips one payload byte of a durable file in place,
// bypassing the store (a bit-rot / partial-overwrite simulation).
func corruptFile(t *testing.T, fs FS, path string) {
	t.Helper()
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(filepath.Dir(path)); err != nil {
		t.Fatal(err)
	}
}

// TestFaultMatrix drives every recovery branch: for each injected fault
// the interrupted Save must report an error (or the crash must abandon
// the process), and recovery over the durable state must land on the
// newest valid checkpoint — or, where nothing valid exists, on the
// precise error for that situation.
func TestFaultMatrix(t *testing.T) {
	const dir = "ck"
	newest := FileName(300) // the save the fault interrupts
	cases := []struct {
		name string
		// rules applied while saving step 300 on top of durable 100, 200
		rules []Rule
		// direct corruption applied after the (possibly failed) save
		corrupt bool
		// wantStep is the step recovery must land on
		wantStep int64
		// wantSaveErr: the interrupted Save must return an error
		wantSaveErr bool
	}{
		{
			name:        "torn write on checkpoint temp",
			rules:       []Rule{{Op: OpWrite, Match: newest, Mode: ModeTorn}},
			wantStep:    200,
			wantSaveErr: true,
		},
		{
			name:        "short write on checkpoint temp",
			rules:       []Rule{{Op: OpWrite, Match: newest, Mode: ModeShort}},
			wantStep:    200,
			wantSaveErr: true,
		},
		{
			name:        "fsync failure on checkpoint temp",
			rules:       []Rule{{Op: OpSync, Match: newest, Mode: ModeErr}},
			wantStep:    200,
			wantSaveErr: true,
		},
		{
			name:        "create failure on checkpoint temp",
			rules:       []Rule{{Op: OpCreate, Match: newest, Mode: ModeErr}},
			wantStep:    200,
			wantSaveErr: true,
		},
		{
			name:        "crash after temp fully written, before rename",
			rules:       []Rule{{Op: OpRename, Match: newest, Mode: ModeCrash}},
			wantStep:    200,
			wantSaveErr: true,
		},
		{
			name:        "crash after rename, before dir fsync",
			rules:       []Rule{{Op: OpSyncDir, Match: dir, Mode: ModeCrash}},
			wantStep:    200,
			wantSaveErr: true,
		},
		{
			name:        "crash after checkpoint durable, before manifest update",
			rules:       []Rule{{Op: OpCreate, Match: manifestName, Mode: ModeCrash}},
			wantStep:    300, // unlisted-but-valid file found by the dir scan
			wantSaveErr: true,
		},
		{
			name:        "manifest fsync failure",
			rules:       []Rule{{Op: OpSync, Match: manifestName, Mode: ModeErr}},
			wantStep:    300,
			wantSaveErr: true,
		},
		{
			name:     "corrupt CRC on the newest checkpoint",
			corrupt:  true,
			wantStep: 200,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mem := NewMemFS()
			seedStore(t, mem, dir, 100, 200)

			ffs := NewFaultFS(mem, tc.rules...)
			st, err := Open(dir, 10, 42, ffs)
			if err != nil {
				t.Fatal(err)
			}
			saveErr := st.Save(testSnap(300, 5, 300))
			if tc.wantSaveErr && saveErr == nil {
				t.Fatal("fault injected but Save succeeded")
			}
			if !tc.wantSaveErr && saveErr != nil {
				t.Fatalf("save: %v", saveErr)
			}
			if ffs.Crashed() {
				mem.Crash() // already done by FaultFS, but idempotent and explicit
			}
			if tc.corrupt {
				corruptFile(t, mem, filepath.Join(dir, FileName(300)))
			}

			// Recovery runs on the durable state with a clean filesystem,
			// exactly like a restarted process.
			rst, err := Open(dir, 10, 42, mem)
			if err != nil {
				t.Fatal(err)
			}
			c, err := rst.LoadLatest()
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			if c.Step() != tc.wantStep {
				t.Fatalf("recovered step %d, want %d", c.Step(), tc.wantStep)
			}
		})
	}
}

// TestRecoveryErrorsArePrecise covers the no-valid-checkpoint endgames:
// an empty directory is ErrNoCheckpoint, a directory with only corrupt
// files names every rejected candidate and its reason, and a manifest
// pointing at a missing file reports exactly that.
func TestRecoveryErrorsArePrecise(t *testing.T) {
	const dir = "ck"
	t.Run("only corrupt checkpoints", func(t *testing.T) {
		mem := NewMemFS()
		seedStore(t, mem, dir, 100, 200)
		corruptFile(t, mem, filepath.Join(dir, FileName(100)))
		corruptFile(t, mem, filepath.Join(dir, FileName(200)))
		st, err := Open(dir, 10, 42, mem)
		if err != nil {
			t.Fatal(err)
		}
		_, err = st.LoadLatest()
		if err == nil || errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("want corruption error, got %v", err)
		}
		for _, want := range []string{FileName(100), FileName(200), "CRC mismatch"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		}
	})
	t.Run("manifest lists a missing file", func(t *testing.T) {
		mem := NewMemFS()
		if err := mem.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		man := manifestHdr + "\n" + FileName(900) + " step=900 size=1 crc=00000000\n"
		f, err := mem.Create(filepath.Join(dir, manifestName))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(man)); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, 10, 0, mem)
		if err != nil {
			t.Fatal(err)
		}
		_, err = st.LoadLatest()
		if err == nil || !strings.Contains(err.Error(), FileName(900)) {
			t.Fatalf("want missing-file reason naming %s, got %v", FileName(900), err)
		}
	})
	t.Run("temp files are never candidates", func(t *testing.T) {
		mem := NewMemFS()
		seedStore(t, mem, dir, 100)
		// A stale temp from a dead writer must be invisible to recovery.
		f, err := mem.Create(filepath.Join(dir, FileName(500)+tmpSuffix))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("partial")); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, 10, 42, mem)
		if err != nil {
			t.Fatal(err)
		}
		c, err := st.LoadLatest()
		if err != nil {
			t.Fatal(err)
		}
		if c.Step() != 100 {
			t.Fatalf("recovered %d, want 100", c.Step())
		}
	})
}

// TestCrashAtEverySyscall is the crash-consistency sweep: a save of step
// 200 (on top of a durable step-100 checkpoint) is killed at its 1st,
// 2nd, 3rd … filesystem operation in turn, and after every single crash
// point recovery must succeed and land on step 100 or step 200 — never an
// error, never a torn in-between.
func TestCrashAtEverySyscall(t *testing.T) {
	const dir = "ck"
	for k := 1; ; k++ {
		mem := NewMemFS()
		seedStore(t, mem, dir, 100)

		ffs := NewFaultFS(mem, Rule{Op: OpAny, Nth: k, Mode: ModeCrash})
		st, err := Open(dir, 10, 42, ffs)
		if err != nil {
			// Crash during Open's own scan: recovery below must still work.
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("k=%d: open: %v", k, err)
			}
		} else if err := st.Save(testSnap(200, 5, 200)); err != nil {
			if !errors.Is(err, ErrCrashed) && !ffs.Crashed() {
				t.Fatalf("k=%d: save failed without the injected crash: %v", k, err)
			}
		}

		rst, err := Open(dir, 10, 42, mem)
		if err != nil {
			t.Fatalf("k=%d: recovery open: %v", k, err)
		}
		c, err := rst.LoadLatest()
		if err != nil {
			t.Fatalf("k=%d: recovery failed: %v\ndurable state:\n%s", k, err, mem.DumpDurable())
		}
		if got := c.Step(); got != 100 && got != 200 {
			t.Fatalf("k=%d: recovered step %d, want 100 or 200", k, got)
		}

		if !ffs.Crashed() {
			// The save ran to completion before the k-th op: the sweep has
			// covered every syscall. Sanity-check the final state and stop.
			if c.Step() != 200 {
				t.Fatalf("uninterrupted save, but recovered step %d", c.Step())
			}
			if k < 8 {
				t.Fatalf("sweep ended after only %d ops; protocol shrank suspiciously", k)
			}
			return
		}
	}
}

// TestShortWriteLeavesNoCandidate: a short write must not leave a file
// recovery could mistake for a checkpoint (the temp is cleaned up on the
// error path, and even if the cleanup crashed, the .tmp name is filtered).
func TestShortWriteLeavesNoCandidate(t *testing.T) {
	const dir = "ck"
	mem := NewMemFS()
	ffs := NewFaultFS(mem, Rule{Op: OpWrite, Match: FileName(100), Mode: ModeShort})
	st, err := Open(dir, 10, 42, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnap(100, 5, 100)); err == nil {
		t.Fatal("short write but Save succeeded")
	}
	rst, err := Open(dir, 10, 42, mem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rst.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}
