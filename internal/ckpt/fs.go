package ckpt

import (
	"io"
	"os"
	"path/filepath"
)

// File is the writable handle surface the checkpoint writer needs: byte
// writes, durability (fsync) and close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the seam over every file operation the checkpoint store performs.
// The store never touches the os package directly, so a fault-injecting
// implementation (FaultFS) can fail, shorten or tear any individual
// syscall and a durability-modeling one (MemFS) can simulate power loss —
// making crash recovery testable instead of hoped-for.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the sorted base names of dir's entries.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making renames durable.
	SyncDir(dir string) error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil // os.ReadDir sorts by name
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
