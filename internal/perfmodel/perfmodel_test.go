package perfmodel

import (
	"testing"
)

// TestCostTableMatchesSecIIIC checks the paper's Sec. III.C conclusion:
// at the MDGRAPE-4A operating points (g_c = 8, M = 4, N_x/P_x ∈ {4, 8})
// both the computational and the communication costs of TME are lower
// than B-spline MSM's.
func TestCostTableMatchesSecIIIC(t *testing.T) {
	rows := CostTable(8, 4)
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.CompRatio <= 1 {
			t.Errorf("γ=%.1f: TME compute not cheaper (ratio %.2f)", r.Gamma, r.CompRatio)
		}
		if r.CommRatio <= 1 {
			t.Errorf("γ=%.1f: TME communication not cheaper (ratio %.2f)", r.Gamma, r.CommRatio)
		}
	}
	// Exact formula spot checks: (2·8+1)³ = 4913 taps vs 3·17·4 = 204.
	if got := CompCostMSM(8, 4); got != 4913*64 {
		t.Errorf("CompCostMSM = %g", got)
	}
	if got := CompCostTME(8, 4, 4); got != 3*17*64*4 {
		t.Errorf("CompCostTME = %g", got)
	}
	// Communication formulas at γ = 0.5: (8+6+1.5)·512 and (2+16)·0.25·512.
	if got := CommCostMSM(8, 0.5); got != 15.5*512 {
		t.Errorf("CommCostMSM = %g", got)
	}
	if got := CommCostTME(8, 4, 0.5); got != 18*0.25*512 {
		t.Errorf("CommCostTME = %g", got)
	}
	// Pin every cell of the Sec. III.C table so a scoring refactor that
	// perturbs the cost model shows up as an explicit diff here.
	want := []CostRow{
		{Gamma: 0.5, NxPx: 4, CompMSM: 314432, CompTME: 13056,
			CommMSM: 7936, CommTME: 2304, CompRatio: 314432.0 / 13056, CommRatio: 7936.0 / 2304},
		{Gamma: 1, NxPx: 8, CompMSM: 2515456, CompTME: 104448,
			CommMSM: 13312, CommTME: 9216, CompRatio: 2515456.0 / 104448, CommRatio: 13312.0 / 9216},
	}
	for i, r := range rows {
		if r != want[i] {
			t.Errorf("CostTable row %d = %+v, want %+v", i, r, want[i])
		}
	}
}

// TestBreakdownRows checks that the per-stage rows the tuner scores with
// sum to exactly the aggregate times (bit-identical association order)
// and carry the expected stage structure per method.
func TestBreakdownRows(t *testing.T) {
	s := DefaultScaling()
	for _, p := range []int{8, 64, 512, 4096} {
		for _, tc := range []struct {
			b      Breakdown
			total  float64
			stages []string
		}{
			{s.PMEBreakdown(p), s.PMETime(p), []string{"fft", "transpose"}},
			{s.MSMBreakdown(p), s.MSMTime(p), []string{"conv", "halo"}},
			{s.TMEBreakdown(p), s.TMETime(p), []string{"conv", "halo", "top"}},
		} {
			if got := tc.b.Total(); got != tc.total {
				t.Errorf("p=%d %s: Breakdown.Total %g != aggregate %g", p, tc.b.Method, got, tc.total)
			}
			if len(tc.b.Stages) != len(tc.stages) {
				t.Fatalf("p=%d %s: %d stages, want %d", p, tc.b.Method, len(tc.b.Stages), len(tc.stages))
			}
			var sum float64
			for i, st := range tc.b.Stages {
				if st.Stage != tc.stages[i] {
					t.Errorf("p=%d %s: stage %d is %q, want %q", p, tc.b.Method, i, st.Stage, tc.stages[i])
				}
				if st.Units <= 0 || st.Time <= 0 {
					t.Errorf("p=%d %s/%s: non-positive row %+v", p, tc.b.Method, st.Stage, st)
				}
				sum += st.Time
				if got := tc.b.StageTime(st.Stage); got != st.Time {
					t.Errorf("p=%d %s: StageTime(%q) = %g, want %g", p, tc.b.Method, st.Stage, got, st.Time)
				}
			}
			if tc.b.StageTime("no-such-stage") != 0 {
				t.Errorf("p=%d %s: StageTime of unknown stage not 0", p, tc.b.Method)
			}
		}
	}
}

// TestScalingCrossover reproduces the cited strong-scaling behaviour:
// PME wins at small core counts, the multilevel methods win at large
// counts, with the crossover in the hundreds of cores.
func TestScalingCrossover(t *testing.T) {
	s := DefaultScaling()
	// Small p: PME faster (its compute parallelizes; halo terms dominate
	// the multilevel methods' fixed overheads).
	if !(s.PMETime(8) < s.MSMTime(8)) {
		t.Errorf("at p=8 PME (%.0f) should beat MSM (%.0f)", s.PMETime(8), s.MSMTime(8))
	}
	// Large p: both multilevel methods beat PME.
	if !(s.MSMTime(4096) < s.PMETime(4096)) {
		t.Errorf("at p=4096 MSM (%.0f) should beat PME (%.0f)", s.MSMTime(4096), s.PMETime(4096))
	}
	if !(s.TMETime(4096) < s.PMETime(4096)) {
		t.Errorf("at p=4096 TME (%.0f) should beat PME (%.0f)", s.TMETime(4096), s.PMETime(4096))
	}
	// Crossover between 64 and 2048 cores (Hardy et al. report ~512).
	var crossover int
	for p := 8; p <= 8192; p *= 2 {
		if s.MSMTime(p) < s.PMETime(p) {
			crossover = p
			break
		}
	}
	if crossover == 0 || crossover < 64 || crossover > 2048 {
		t.Errorf("MSM/PME crossover at p=%d, expected within [64, 2048]", crossover)
	}
	// TME is never slower than MSM at the operating parameters.
	for p := 8; p <= 8192; p *= 2 {
		if s.TMETime(p) > s.MSMTime(p) {
			t.Errorf("p=%d: TME (%.0f) slower than MSM (%.0f)", p, s.TMETime(p), s.MSMTime(p))
		}
	}
}

func TestLiteratureRows(t *testing.T) {
	rows := LiteratureRows()
	if len(rows) != 4 {
		t.Fatalf("expected 4 literature rows, got %d", len(rows))
	}
	// Ordering of machines by throughput must match Table 2.
	for i := 1; i < len(rows); i++ {
		if rows[i].PerfUsPerDay <= rows[i-1].PerfUsPerDay {
			t.Errorf("rows not in increasing throughput order: %v", rows)
		}
	}
	for _, r := range rows {
		if !r.FromLiterature {
			t.Errorf("row %q should be marked literature", r.System)
		}
	}
}
