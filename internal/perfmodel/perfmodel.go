// Package perfmodel implements the paper's analytic cost models:
//
//   - the Sec. III.C computation and communication cost estimates for the
//     level-1 grid kernel convolution of B-spline MSM versus TME;
//
//   - a latency/bandwidth strong-scaling model for PME (axis all-to-all
//     FFT transposes) versus range-limited multilevel methods, reproducing
//     the crossover behaviour the paper cites (Hardy et al. Fig. 10: MSM
//     overtakes PME near 512 cores for a ~92k-atom system);
//
//   - the literature rows of Table 2 (CPU/GPU clusters, Anton 1/2), whose
//     values the paper itself takes from prior publications [28, 35]; the
//     MDGRAPE-4A row is produced by the machine simulator.
package perfmodel

import "math"

// CompCostMSM returns the per-node computational cost (MACs) of the
// B-spline MSM level-1 convolution: (2g_c+1)³ taps per output point over
// (N_x/P_x)³ local points (paper Sec. III.C).
func CompCostMSM(gc, nxpx int) float64 {
	t := float64(2*gc + 1)
	n := float64(nxpx)
	return t * t * t * n * n * n
}

// CompCostTME returns the per-node computational cost (MACs) of the TME
// separable convolution: (2g_c+1) taps per axis pass, three passes, M
// Gaussian terms (paper Sec. III.C quotes the per-axis form
// (2g_c+1)(N_x/P_x)³M; the full separable sweep is 3× that).
func CompCostTME(gc, nxpx, m int) float64 {
	t := float64(2*gc + 1)
	n := float64(nxpx)
	return 3 * t * n * n * n * float64(m)
}

// CommCostMSM returns the communication volume estimate (grid points) of
// the MSM level-1 convolution: (8+12γ+6γ²)·g_c³ with γ = (N_x/P_x)/g_c —
// the halo of the direct 3D convolution (paper Sec. III.C).
func CommCostMSM(gc int, gamma float64) float64 {
	g := float64(gc)
	return (8 + 12*gamma + 6*gamma*gamma) * g * g * g
}

// CommCostTME returns the communication volume estimate (grid points) of
// the TME separable convolution: (2+4M)·γ²·g_c³ (paper Sec. III.C).
func CommCostTME(gc, m int, gamma float64) float64 {
	g := float64(gc)
	return (2 + 4*float64(m)) * gamma * gamma * g * g * g
}

// CostRow is one line of the Sec. III.C comparison.
type CostRow struct {
	Gamma                float64
	NxPx                 int
	CompMSM, CompTME     float64
	CommMSM, CommTME     float64
	CompRatio, CommRatio float64 // MSM / TME
}

// CostTable evaluates the Sec. III.C comparison at the MDGRAPE-4A
// operating points: g_c = 8, M = 4, N_x/P_x ∈ {4, 8} (γ ∈ {0.5, 1}).
func CostTable(gc, m int) []CostRow {
	var rows []CostRow
	for _, nxpx := range []int{4, 8} {
		gamma := float64(nxpx) / float64(gc)
		r := CostRow{
			Gamma:   gamma,
			NxPx:    nxpx,
			CompMSM: CompCostMSM(gc, nxpx),
			CompTME: CompCostTME(gc, nxpx, m),
			CommMSM: CommCostMSM(gc, gamma),
			CommTME: CommCostTME(gc, m, gamma),
		}
		r.CompRatio = r.CompMSM / r.CompTME
		r.CommRatio = r.CommMSM / r.CommTME
		rows = append(rows, r)
	}
	return rows
}

// StageCost is one row of a per-stage cost estimate: the model's raw unit
// count for the stage (MACs, grid points moved, or weighted messages) and
// its weighted time contribution. The auto-tuner (internal/tune) scores
// candidate plans from these rows rather than from aggregate totals, so a
// scoring change is attributable to a single pipeline stage.
type StageCost struct {
	Stage string  // stage identifier, e.g. "fft", "conv", "halo", "top"
	Units float64 // raw model units (MACs / grid points / messages)
	Time  float64 // weighted time contribution (model time units)
}

// Breakdown is a method's per-stage cost estimate. Stage order is fixed
// per method (compute stages first, then communication), so summation
// order — and hence the float64 total — is deterministic.
type Breakdown struct {
	Method string
	Stages []StageCost
}

// Total sums the stage contributions in row order.
func (b Breakdown) Total() float64 {
	var t float64
	for _, s := range b.Stages {
		t += s.Time
	}
	return t
}

// StageTime returns the named stage's weighted contribution (0 when the
// method has no such stage).
func (b Breakdown) StageTime(stage string) float64 {
	for _, s := range b.Stages {
		if s.Stage == stage {
			return s.Time
		}
	}
	return 0
}

// ScalingParams configures the strong-scaling model. Times are arbitrary
// units; defaults are tuned so the PME/MSM crossover lands near 512 cores
// for a 92k-atom (64³ grid) system, matching Hardy et al. Fig. 10 as cited
// by the paper.
type ScalingParams struct {
	GridN     int     // global grid points per axis
	FlopTime  float64 // time per grid MAC / FFT butterfly
	Latency   float64 // per-message latency
	Bandwidth float64 // time per grid point moved
	Gc        int
	M         int
}

// DefaultScaling returns parameters for the ApoA1-like comparison.
func DefaultScaling() ScalingParams {
	return ScalingParams{
		GridN:     64,
		FlopTime:  1,
		Latency:   3000,
		Bandwidth: 2,
		Gc:        8,
		M:         4,
	}
}

// PMEBreakdown models the long-range cost of SPME on p processors as
// per-stage rows: local FFT work plus two all-to-all transpose phases
// whose message count grows with p (the strong-scaling killer the paper
// targets).
func (s ScalingParams) PMEBreakdown(p int) Breakdown {
	n3 := float64(s.GridN * s.GridN * s.GridN)
	log2n := 0.0
	for n := s.GridN; n > 1; n >>= 1 {
		log2n++
	}
	fftUnits := 5 * 3 * n3 * log2n / float64(p)
	// Two transposes: each rank sends p−1 messages of n³/p² points.
	transposeUnits := 2 * (float64(p-1)*0.08 + 2*n3/float64(p))
	return Breakdown{Method: "spme", Stages: []StageCost{
		{Stage: "fft", Units: fftUnits, Time: fftUnits * s.FlopTime},
		{Stage: "transpose", Units: transposeUnits,
			Time: 2 * (s.Latency*float64(p-1)*0.08 + s.Bandwidth*2*n3/float64(p))},
	}}
}

// PMETime is the total of PMEBreakdown.
func (s ScalingParams) PMETime(p int) float64 { return s.PMEBreakdown(p).Total() }

// MSMBreakdown models B-spline MSM on p processors: direct 3D convolution
// over the local grid plus a fixed 26-neighbour halo exchange.
func (s ScalingParams) MSMBreakdown(p int) Breakdown {
	n3 := float64(s.GridN * s.GridN * s.GridN)
	local := n3 / float64(p)
	taps := float64(2*s.Gc + 1)
	convUnits := taps * taps * taps * local
	nxpx := float64(s.GridN) / math.Cbrt(float64(p))
	gamma := nxpx / float64(s.Gc)
	haloUnits := CommCostMSM(s.Gc, gamma)
	return Breakdown{Method: "msm", Stages: []StageCost{
		{Stage: "conv", Units: convUnits, Time: convUnits * s.FlopTime},
		{Stage: "halo", Units: haloUnits, Time: s.Latency*26*0.08 + s.Bandwidth*haloUnits},
	}}
}

// MSMTime is the total of MSMBreakdown.
func (s ScalingParams) MSMTime(p int) float64 { return s.MSMBreakdown(p).Total() }

// TMEBreakdown models the TME on p processors: separable convolutions
// plus the axis-wise neighbour exchange and a small constant top-level
// roundtrip (octree + 16³ FFT).
func (s ScalingParams) TMEBreakdown(p int) Breakdown {
	n3 := float64(s.GridN * s.GridN * s.GridN)
	local := n3 / float64(p)
	convUnits := 3 * float64(2*s.Gc+1) * float64(s.M) * local
	nxpx := float64(s.GridN) / math.Cbrt(float64(p))
	gamma := nxpx / float64(s.Gc)
	haloUnits := CommCostTME(s.Gc, s.M, gamma)
	return Breakdown{Method: "tme", Stages: []StageCost{
		{Stage: "conv", Units: convUnits, Time: convUnits * s.FlopTime},
		{Stage: "halo", Units: haloUnits, Time: s.Latency*6*0.08 + s.Bandwidth*haloUnits},
		{Stage: "top", Units: 1, Time: 2000},
	}}
}

// TMETime is the total of TMEBreakdown.
func (s ScalingParams) TMETime(p int) float64 { return s.TMEBreakdown(p).Total() }

// Table2Row is one line of the paper's Table 2.
type Table2Row struct {
	System         string
	Method         string
	PerfUsPerDay   float64
	StepUs         float64
	LongRangeUs    float64
	FromLiterature bool
}

// LiteratureRows returns the published rows of Table 2 (values from
// [28, 35] as quoted by the paper); the MDGRAPE-4A row is measured from
// the machine simulator and appended by the benchmark harness.
func LiteratureRows() []Table2Row {
	return []Table2Row{
		{System: "CPU cluster (64 nodes)", Method: "SPME", PerfUsPerDay: 0.25, StepUs: 800, LongRangeUs: 500, FromLiterature: true},
		{System: "GPU cluster (64 GPUs)", Method: "SPME", PerfUsPerDay: 0.3, StepUs: 700, LongRangeUs: 500, FromLiterature: true},
		{System: "Anton 1 (512 nodes)", Method: "k-GSE", PerfUsPerDay: 10, StepUs: 20, LongRangeUs: 20, FromLiterature: true},
		{System: "Anton 2 (512 nodes)", Method: "u-series", PerfUsPerDay: 70, StepUs: 3, LongRangeUs: 3, FromLiterature: true},
	}
}
