// Package perfmodel implements the paper's analytic cost models:
//
//   - the Sec. III.C computation and communication cost estimates for the
//     level-1 grid kernel convolution of B-spline MSM versus TME;
//
//   - a latency/bandwidth strong-scaling model for PME (axis all-to-all
//     FFT transposes) versus range-limited multilevel methods, reproducing
//     the crossover behaviour the paper cites (Hardy et al. Fig. 10: MSM
//     overtakes PME near 512 cores for a ~92k-atom system);
//
//   - the literature rows of Table 2 (CPU/GPU clusters, Anton 1/2), whose
//     values the paper itself takes from prior publications [28, 35]; the
//     MDGRAPE-4A row is produced by the machine simulator.
package perfmodel

import "math"

// CompCostMSM returns the per-node computational cost (MACs) of the
// B-spline MSM level-1 convolution: (2g_c+1)³ taps per output point over
// (N_x/P_x)³ local points (paper Sec. III.C).
func CompCostMSM(gc, nxpx int) float64 {
	t := float64(2*gc + 1)
	n := float64(nxpx)
	return t * t * t * n * n * n
}

// CompCostTME returns the per-node computational cost (MACs) of the TME
// separable convolution: (2g_c+1) taps per axis pass, three passes, M
// Gaussian terms (paper Sec. III.C quotes the per-axis form
// (2g_c+1)(N_x/P_x)³M; the full separable sweep is 3× that).
func CompCostTME(gc, nxpx, m int) float64 {
	t := float64(2*gc + 1)
	n := float64(nxpx)
	return 3 * t * n * n * n * float64(m)
}

// CommCostMSM returns the communication volume estimate (grid points) of
// the MSM level-1 convolution: (8+12γ+6γ²)·g_c³ with γ = (N_x/P_x)/g_c —
// the halo of the direct 3D convolution (paper Sec. III.C).
func CommCostMSM(gc int, gamma float64) float64 {
	g := float64(gc)
	return (8 + 12*gamma + 6*gamma*gamma) * g * g * g
}

// CommCostTME returns the communication volume estimate (grid points) of
// the TME separable convolution: (2+4M)·γ²·g_c³ (paper Sec. III.C).
func CommCostTME(gc, m int, gamma float64) float64 {
	g := float64(gc)
	return (2 + 4*float64(m)) * gamma * gamma * g * g * g
}

// CostRow is one line of the Sec. III.C comparison.
type CostRow struct {
	Gamma                float64
	NxPx                 int
	CompMSM, CompTME     float64
	CommMSM, CommTME     float64
	CompRatio, CommRatio float64 // MSM / TME
}

// CostTable evaluates the Sec. III.C comparison at the MDGRAPE-4A
// operating points: g_c = 8, M = 4, N_x/P_x ∈ {4, 8} (γ ∈ {0.5, 1}).
func CostTable(gc, m int) []CostRow {
	var rows []CostRow
	for _, nxpx := range []int{4, 8} {
		gamma := float64(nxpx) / float64(gc)
		r := CostRow{
			Gamma:   gamma,
			NxPx:    nxpx,
			CompMSM: CompCostMSM(gc, nxpx),
			CompTME: CompCostTME(gc, nxpx, m),
			CommMSM: CommCostMSM(gc, gamma),
			CommTME: CommCostTME(gc, m, gamma),
		}
		r.CompRatio = r.CompMSM / r.CompTME
		r.CommRatio = r.CommMSM / r.CommTME
		rows = append(rows, r)
	}
	return rows
}

// ScalingParams configures the strong-scaling model. Times are arbitrary
// units; defaults are tuned so the PME/MSM crossover lands near 512 cores
// for a 92k-atom (64³ grid) system, matching Hardy et al. Fig. 10 as cited
// by the paper.
type ScalingParams struct {
	GridN     int     // global grid points per axis
	FlopTime  float64 // time per grid MAC / FFT butterfly
	Latency   float64 // per-message latency
	Bandwidth float64 // time per grid point moved
	Gc        int
	M         int
}

// DefaultScaling returns parameters for the ApoA1-like comparison.
func DefaultScaling() ScalingParams {
	return ScalingParams{
		GridN:     64,
		FlopTime:  1,
		Latency:   3000,
		Bandwidth: 2,
		Gc:        8,
		M:         4,
	}
}

// PMETime models the long-range time of SPME on p processors: local FFT
// work plus two all-to-all transpose phases whose message count grows
// with p (the strong-scaling killer the paper targets).
func (s ScalingParams) PMETime(p int) float64 {
	n3 := float64(s.GridN * s.GridN * s.GridN)
	log2n := 0.0
	for n := s.GridN; n > 1; n >>= 1 {
		log2n++
	}
	comp := 5 * 3 * n3 * log2n / float64(p) * s.FlopTime
	// Two transposes: each rank sends p−1 messages of n³/p² points.
	comm := 2 * (s.Latency*float64(p-1)*0.08 + s.Bandwidth*2*n3/float64(p))
	return comp + comm
}

// MSMTime models B-spline MSM on p processors: direct 3D convolution over
// the local grid plus a fixed 26-neighbour halo exchange.
func (s ScalingParams) MSMTime(p int) float64 {
	n3 := float64(s.GridN * s.GridN * s.GridN)
	local := n3 / float64(p)
	taps := float64(2*s.Gc + 1)
	comp := taps * taps * taps * local * s.FlopTime
	nxpx := float64(s.GridN) / cbrt(float64(p))
	gamma := nxpx / float64(s.Gc)
	comm := s.Latency*26*0.08 + s.Bandwidth*CommCostMSM(s.Gc, gamma)
	return comp + comm
}

// TMETime models the TME on p processors: separable convolutions plus the
// axis-wise neighbour exchange (and a small constant top-level term).
func (s ScalingParams) TMETime(p int) float64 {
	n3 := float64(s.GridN * s.GridN * s.GridN)
	local := n3 / float64(p)
	comp := 3 * float64(2*s.Gc+1) * float64(s.M) * local * s.FlopTime
	nxpx := float64(s.GridN) / cbrt(float64(p))
	gamma := nxpx / float64(s.Gc)
	comm := s.Latency*6*0.08 + s.Bandwidth*CommCostTME(s.Gc, s.M, gamma)
	top := 2000.0 // fixed top-level roundtrip (octree + 16³ FFT)
	return comp + comm + top
}

func cbrt(x float64) float64 { return math.Cbrt(x) }

// Table2Row is one line of the paper's Table 2.
type Table2Row struct {
	System         string
	Method         string
	PerfUsPerDay   float64
	StepUs         float64
	LongRangeUs    float64
	FromLiterature bool
}

// LiteratureRows returns the published rows of Table 2 (values from
// [28, 35] as quoted by the paper); the MDGRAPE-4A row is measured from
// the machine simulator and appended by the benchmark harness.
func LiteratureRows() []Table2Row {
	return []Table2Row{
		{System: "CPU cluster (64 nodes)", Method: "SPME", PerfUsPerDay: 0.25, StepUs: 800, LongRangeUs: 500, FromLiterature: true},
		{System: "GPU cluster (64 GPUs)", Method: "SPME", PerfUsPerDay: 0.3, StepUs: 700, LongRangeUs: 500, FromLiterature: true},
		{System: "Anton 1 (512 nodes)", Method: "k-GSE", PerfUsPerDay: 10, StepUs: 20, LongRangeUs: 20, FromLiterature: true},
		{System: "Anton 2 (512 nodes)", Method: "u-series", PerfUsPerDay: 70, StepUs: 3, LongRangeUs: 3, FromLiterature: true},
	}
}
