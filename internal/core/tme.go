// Package core implements the paper's primary contribution: the
// tensor-structured multilevel Ewald summation method (TME).
//
// TME splits the Coulomb potential (paper Eq. (4)) as
//
//	1/r = erfc(αr)/r + Σ_{l=1..L} g_{α,l}(r) + erf(α r/2^L)/r
//
// where the middle-range shells g_{α,l}(r) = [erf(αr/2^{l−1}) − erf(αr/2^l)]/r
// are approximated by M-term Gaussian sums via Gauss–Legendre quadrature
// (Eq. (6)–(7)) and represented on level-l grids with per-axis 1D B-spline
// kernels (Eq. (8)–(11)), so their 3D convolutions become separable — the
// tensor structure that maps onto the MDGRAPE-4A GCU and its 3D torus.
// The top-level term is solved by SPME with α/2^L on the N/2^L grid (the
// computation of the root FPGA), and levels are connected by the exact
// two-scale restriction/prolongation of even-order B-splines.
package core

import (
	"fmt"
	"math"

	"tme4a/internal/bspline"
	"tme4a/internal/ewald"
	"tme4a/internal/grid"
	"tme4a/internal/pmesh"
	"tme4a/internal/quad"
	"tme4a/internal/spme"
	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// Params configures a TME solver. The paper's hardware operating point is
// Order = 6, N = 32³ or 64³, Levels = 1 or 2, Gc ∈ {8, 12}, M ≤ 4.
type Params struct {
	Alpha  float64 // Ewald splitting parameter (nm⁻¹)
	Rc     float64 // short-range cutoff (nm)
	Order  int     // B-spline order p (even)
	N      [3]int  // finest grid dimensions (each divisible by 2^Levels)
	Levels int     // number of middle-range levels L ≥ 1
	M      int     // Gaussians per middle-range shell
	Gc     int     // grid-kernel cutoff g_c (1D kernels span |m| ≤ g_c)
}

// Solver holds the precomputed kernels and meshers for a fixed box.
type Solver struct {
	Prm    Params
	Box    vec.Box
	Mesher *pmesh.Mesher // finest-grid charge assignment / back interpolation

	j    []float64      // two-scale coefficients
	kern [][3][]float64 // kern[ν][axis]: 1D kernels K^{ν,j}, length 2·Gc+1
	top  *spme.Solver   // top-level SPME (α/2^L on N/2^L)
}

// New validates parameters and precomputes all kernels.
func New(prm Params, box vec.Box) *Solver {
	if prm.Levels < 1 {
		panic("core: TME needs at least one middle level")
	}
	if prm.M < 1 {
		panic("core: TME needs at least one Gaussian per shell")
	}
	if prm.Order%2 != 0 || prm.Order < 2 {
		panic(fmt.Sprintf("core: order must be even and >= 2, got %d", prm.Order))
	}
	var topN [3]int
	for jx := 0; jx < 3; jx++ {
		d := prm.N[jx] >> prm.Levels
		if d<<prm.Levels != prm.N[jx] {
			panic(fmt.Sprintf("core: grid dim %d not divisible by 2^%d", prm.N[jx], prm.Levels))
		}
		topN[jx] = d
	}
	s := &Solver{
		Prm:    prm,
		Box:    box,
		Mesher: pmesh.NewMesher(prm.Order, prm.N, box),
		j:      bspline.TwoScale(prm.Order),
	}
	// Gaussian-sum nodes and weights (Eq. (7)).
	nodes, weights := quad.GaussLegendre(prm.M)
	h := s.Mesher.H()
	s.kern = make([][3][]float64, prm.M)
	for v := 0; v < prm.M; v++ {
		alphaV := (3 - nodes[v]) / 4 * prm.Alpha
		cV := prm.Alpha * weights[v] / (2 * math.Sqrt(math.Pi))
		c3 := math.Cbrt(cV)
		for axis := 0; axis < 3; axis++ {
			k := bspline.GridKernel(prm.Order, alphaV*h[axis], prm.Gc)
			for i := range k {
				k[i] *= c3
			}
			s.kern[v][axis] = k
		}
	}
	// Top level: SPME with α/2^L on the restricted grid.
	s.top = spme.New(spme.Params{
		Alpha: prm.Alpha / math.Pow(2, float64(prm.Levels)),
		Rc:    prm.Rc,
		Order: prm.Order,
		N:     topN,
	}, box)
	return s
}

// TopSolver exposes the top-level SPME solver (used by the hardware model
// and diagnostics).
func (s *Solver) TopSolver() *spme.Solver { return s.top }

// Kernels returns the per-Gaussian 1D grid kernels (read-only).
func (s *Solver) Kernels() [][3][]float64 { return s.kern }

// TwoScale returns the restriction/prolongation coefficients (read-only).
func (s *Solver) TwoScale() []float64 { return s.j }

// levelConv applies the separable middle-range convolution of level l
// (1-based) to the level-l charge grid, returning the level-l potential
// contribution in kJ mol⁻¹ e⁻¹ (paper Eq. (9)–(11) with the 1/2^{l−1}
// prefactor and Coulomb conversion folded in).
func (s *Solver) levelConv(q *grid.G, l int) *grid.G {
	scale := units.Coulomb / math.Pow(2, float64(l-1))
	var phi *grid.G
	for v := 0; v < s.Prm.M; v++ {
		c := grid.ConvSeparable(q, s.kern[v][0], s.kern[v][1], s.kern[v][2])
		if phi == nil {
			phi = c
		} else {
			phi.AddGrid(c)
		}
	}
	phi.Scale(scale)
	return phi
}

// MeshPotential runs the full grid pipeline — charge assignment,
// restrictions, per-level separable convolutions, top-level SPME,
// prolongations — and returns the finest-grid potential.
// It is exposed separately so the hardware simulator can compare its
// fixed-point datapath against this double-precision reference stage by
// stage.
func (s *Solver) MeshPotential(pos []vec.V, q []float64) *grid.G {
	qg := s.Mesher.Assign(pos, q)
	return s.meshPotentialFromCharges(qg)
}

func (s *Solver) meshPotentialFromCharges(qg *grid.G) *grid.G {
	L := s.Prm.Levels
	// Downward pass: restrict charges level by level.
	charges := make([]*grid.G, L+2) // 1-based levels; [L+1] is the top grid
	charges[1] = qg
	for l := 1; l <= L; l++ {
		charges[l+1] = grid.Restrict(charges[l], s.j)
	}
	// Top-level SPME convolution (the TMENW/root-FPGA computation).
	phi := s.top.PotentialGrid(charges[L+1])
	// Upward pass: prolong and add each level's separable convolution.
	for l := L; l >= 1; l-- {
		up := grid.Prolong(phi, s.j)
		up.AddGrid(s.levelConv(charges[l], l))
		phi = up
	}
	return phi
}

// LongRange computes the mesh (long-range) part of the Coulomb energy plus
// the Ewald self energy, accumulating forces into f (may be nil).
func (s *Solver) LongRange(pos []vec.V, q []float64, f []vec.V) float64 {
	phi := s.MeshPotential(pos, q)
	e := s.Mesher.Interpolate(phi, pos, q, f)
	return e + ewald.SelfEnergy(q, s.Prm.Alpha)
}

// Coulomb computes the full TME Coulomb energy — short-range erfc + mesh +
// self + exclusion corrections — accumulating forces into f (may be nil).
func (s *Solver) Coulomb(pos []vec.V, q []float64, excl *topol.Exclusions, f []vec.V) float64 {
	e := ewald.RealSpace(s.Box, pos, q, s.Prm.Alpha, s.Prm.Rc, excl, f)
	e += s.LongRange(pos, q, f)
	e += ewald.ExclusionCorrection(s.Box, pos, q, s.Prm.Alpha, excl, f)
	return e
}

// ShellExact evaluates the middle-range shell g_{α,l}(r) =
// [erf(αr/2^{l−1}) − erf(αr/2^l)]/r (paper Eq. (5)); at r = 0 it returns the
// finite limit α/(2^{l−1}√π)·(2 − 1) = α/(2^{l−1}√π).
func ShellExact(alpha float64, l int, r float64) float64 {
	scale := math.Pow(2, float64(l-1))
	a := alpha / scale
	if r == 0 {
		return a / math.Sqrt(math.Pi)
	}
	return (math.Erf(a*r) - math.Erf(a*r/2)) / r
}

// ShellApprox evaluates the M-term Gaussian-sum approximation of
// g_{α,l}(r) (paper Eq. (6)–(7)).
func ShellApprox(alpha float64, l, m int, r float64) float64 {
	nodes, weights := quad.GaussLegendre(m)
	scale := math.Pow(2, float64(l-1))
	var s float64
	for v := 0; v < m; v++ {
		av := (3 - nodes[v]) / 4 * alpha
		cv := alpha * weights[v] / (2 * math.Sqrt(math.Pi))
		x := av * r / scale
		s += cv * math.Exp(-x*x)
	}
	return s / scale
}
