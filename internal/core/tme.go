// Package core implements the paper's primary contribution: the
// tensor-structured multilevel Ewald summation method (TME).
//
// TME splits the Coulomb potential (paper Eq. (4)) as
//
//	1/r = erfc(αr)/r + Σ_{l=1..L} g_{α,l}(r) + erf(α r/2^L)/r
//
// where the middle-range shells g_{α,l}(r) = [erf(αr/2^{l−1}) − erf(αr/2^l)]/r
// are approximated by M-term Gaussian sums via Gauss–Legendre quadrature
// (Eq. (6)–(7)) and represented on level-l grids with per-axis 1D B-spline
// kernels (Eq. (8)–(11)), so their 3D convolutions become separable — the
// tensor structure that maps onto the MDGRAPE-4A GCU and its 3D torus.
// The top-level term is solved by SPME with α/2^L on the N/2^L grid (the
// computation of the root FPGA), and levels are connected by the exact
// two-scale restriction/prolongation of even-order B-splines.
package core

import (
	"fmt"
	"math"
	"sync"

	"tme4a/internal/bspline"
	"tme4a/internal/ewald"
	"tme4a/internal/grid"
	"tme4a/internal/obs"
	"tme4a/internal/pmesh"
	"tme4a/internal/quad"
	"tme4a/internal/spme"
	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// KernelFamily selects the separable Gaussian-sum decomposition of the
// middle-range shells (the nodes and weights of Eq. (6)): every family
// yields M Gaussians per shell and therefore the identical grid pipeline
// and cost; only the kernel tables differ.
type KernelFamily string

const (
	// KernelGauss is the paper's Gauss–Legendre rule (Eq. (7)): nodes on
	// the width octave [α/2, α], weights by integration exactness. The
	// zero value of KernelFamily selects it.
	KernelGauss KernelFamily = "gauss"
	// KernelUSeries is the u-series family (Predescu et al.): widths in
	// geometric progression inside the same octave, weights from a
	// force-norm least-squares fit (see quad.USeries). Better force
	// accuracy per term for M ≤ 3; tabulated up to M = quad.USeriesMaxM.
	KernelUSeries KernelFamily = "useries"
)

// orDefault maps the zero value onto the paper's Gauss–Legendre family.
func (f KernelFamily) orDefault() KernelFamily {
	if f == "" {
		return KernelGauss
	}
	return f
}

// Params configures a TME solver. The paper's hardware operating point is
// Order = 6, N = 32³ or 64³, Levels = 1 or 2, Gc ∈ {8, 12}, M ≤ 4.
type Params struct {
	Alpha  float64      // Ewald splitting parameter (nm⁻¹)
	Rc     float64      // short-range cutoff (nm)
	Order  int          // B-spline order p (even)
	N      [3]int       // finest grid dimensions (each divisible by 2^Levels)
	Levels int          // number of middle-range levels L ≥ 1
	M      int          // Gaussians per middle-range shell
	Gc     int          // grid-kernel cutoff g_c (1D kernels span |m| ≤ g_c)
	Kernel KernelFamily // middle-range decomposition ("" = KernelGauss)
}

// Validate reports the first invalid parameter as an error. New panics on
// the same conditions; the solver registry surfaces them as errors so a
// CLI can reject a bad -method/-kernel/-grid combination with a usage
// message instead of a stack trace.
func (p Params) Validate() error {
	if !(p.Alpha > 0) {
		return fmt.Errorf("core: Alpha must be positive, got %g", p.Alpha)
	}
	if !(p.Rc > 0) {
		return fmt.Errorf("core: Rc must be positive, got %g", p.Rc)
	}
	if p.Order%2 != 0 || p.Order < 2 || p.Order > pmesh.MaxOrder {
		return fmt.Errorf("core: order must be even and in [2, %d], got %d", pmesh.MaxOrder, p.Order)
	}
	if p.Levels < 1 {
		return fmt.Errorf("core: TME needs at least one middle level, got %d", p.Levels)
	}
	if p.M < 1 {
		return fmt.Errorf("core: TME needs at least one Gaussian per shell, got %d", p.M)
	}
	if p.Gc < 1 {
		return fmt.Errorf("core: grid-kernel cutoff must be >= 1, got %d", p.Gc)
	}
	switch p.Kernel.orDefault() {
	case KernelGauss:
	case KernelUSeries:
		if p.M > quad.USeriesMaxM {
			return fmt.Errorf("core: u-series kernels are tabulated for M <= %d, got M=%d", quad.USeriesMaxM, p.M)
		}
	default:
		return fmt.Errorf("core: unknown kernel family %q (kernels: %s, %s)", p.Kernel, KernelGauss, KernelUSeries)
	}
	for jx := 0; jx < 3; jx++ {
		d := p.N[jx] >> p.Levels
		if d<<p.Levels != p.N[jx] || d < 1 {
			return fmt.Errorf("core: grid dim %d not divisible by 2^%d", p.N[jx], p.Levels)
		}
		if p.N[jx] < p.Order {
			return fmt.Errorf("core: grid dim %d smaller than spline order %d", p.N[jx], p.Order)
		}
		if d&(d-1) != 0 {
			return fmt.Errorf("core: top-level grid dim %d (= %d/2^%d) is not a power of two", d, p.N[jx], p.Levels)
		}
		if d < p.Order {
			return fmt.Errorf("core: top-level grid dim %d (= %d/2^%d) smaller than spline order %d", d, p.N[jx], p.Levels, p.Order)
		}
	}
	return nil
}

// Solver holds the precomputed kernels and meshers for a fixed box.
type Solver struct {
	Prm    Params
	Box    vec.Box
	Mesher *pmesh.Mesher // finest-grid charge assignment / back interpolation

	j    []float64      // two-scale coefficients
	kern [][3][]float64 // kern[ν][axis]: 1D kernels K^{ν,j}, length 2·Gc+1
	top  *spme.Solver   // top-level SPME (α/2^L on N/2^L)

	// kernZ[l-1][ν] is kern[ν][2] with the level-l prefactor
	// Coulomb/2^{l-1} folded in, so levelConvAccum needs no post-scaling
	// pass over the grid.
	kernZ [][][]float64

	pool *grid.Pool // recycled level grids and convolution scratch

	// o, when non-nil, times the restriction, per-level convolution and
	// prolongation stages of the mesh pipeline.
	o *obs.Recorder

	// mu guards the reused per-level grid table of the mesh pipeline.
	mu      sync.Mutex
	charges []*grid.G
}

// SetObs attaches a stage recorder to the solver, its mesher, grid pool
// and top-level SPME solver (nil detaches). Not safe to call concurrently
// with solves.
func (s *Solver) SetObs(r *obs.Recorder) {
	s.o = r
	s.Mesher.SetObs(r)
	s.pool.SetObs(r)
	s.top.SetObs(r)
}

// shellQuad returns the normalized Gaussian-sum decomposition of the
// middle-range shell for the chosen family: g_{α,1}(r) ≈
// α·Σ_v c_v·exp(−(τ_v·α·r)²). For KernelGauss these are the Eq. (7)
// Gauss–Legendre nodes mapped onto the width octave; for KernelUSeries
// they come from quad.USeries.
func shellQuad(family KernelFamily, m int) (tau, c []float64) {
	switch family.orDefault() {
	case KernelUSeries:
		return quad.USeries(m)
	case KernelGauss:
		nodes, weights := quad.GaussLegendre(m)
		tau = make([]float64, m)
		c = make([]float64, m)
		for v := 0; v < m; v++ {
			tau[v] = (3 - nodes[v]) / 4
			c[v] = weights[v] / (2 * math.Sqrt(math.Pi))
		}
		return tau, c
	default:
		panic(fmt.Sprintf("core: unknown kernel family %q", family))
	}
}

// New validates parameters and precomputes all kernels. It panics on
// invalid parameters; use Params.Validate (or the solver registry) to get
// the same conditions as errors.
func New(prm Params, box vec.Box) *Solver {
	if err := prm.Validate(); err != nil {
		panic(err.Error())
	}
	var topN [3]int
	for jx := 0; jx < 3; jx++ {
		topN[jx] = prm.N[jx] >> prm.Levels
	}
	s := &Solver{
		Prm:    prm,
		Box:    box,
		Mesher: pmesh.NewMesher(prm.Order, prm.N, box),
		j:      bspline.TwoScale(prm.Order),
	}
	// Gaussian-sum nodes and weights: Eq. (7) Gauss–Legendre by default,
	// or the u-series family when selected.
	tau, cv := shellQuad(prm.Kernel, prm.M)
	h := s.Mesher.H()
	s.kern = make([][3][]float64, prm.M)
	for v := 0; v < prm.M; v++ {
		alphaV := tau[v] * prm.Alpha
		cV := cv[v] * prm.Alpha
		c3 := math.Cbrt(cV)
		for axis := 0; axis < 3; axis++ {
			k := bspline.GridKernel(prm.Order, alphaV*h[axis], prm.Gc)
			for i := range k {
				k[i] *= c3
			}
			s.kern[v][axis] = k
		}
	}
	// Per-level z-kernels with the 1/2^{l-1} prefactor and the Coulomb
	// conversion folded in (see levelConvAccum).
	s.kernZ = make([][][]float64, prm.Levels)
	for l := 1; l <= prm.Levels; l++ {
		scale := units.Coulomb / math.Pow(2, float64(l-1))
		s.kernZ[l-1] = make([][]float64, prm.M)
		for v := 0; v < prm.M; v++ {
			kz := make([]float64, len(s.kern[v][2]))
			for i, k := range s.kern[v][2] {
				kz[i] = k * scale
			}
			s.kernZ[l-1][v] = kz
		}
	}
	s.pool = grid.NewPool()
	s.charges = make([]*grid.G, prm.Levels+2)
	// Top level: SPME with α/2^L on the restricted grid.
	s.top = spme.New(spme.Params{
		Alpha: prm.Alpha / math.Pow(2, float64(prm.Levels)),
		Rc:    prm.Rc,
		Order: prm.Order,
		N:     topN,
	}, box)
	return s
}

// Describe returns a one-line description of the configured method.
func (s *Solver) Describe() string {
	return fmt.Sprintf("tme: alpha=%g rc=%g order=%d grid=%dx%dx%d levels=%d M=%d gc=%d kernel=%s",
		s.Prm.Alpha, s.Prm.Rc, s.Prm.Order, s.Prm.N[0], s.Prm.N[1], s.Prm.N[2],
		s.Prm.Levels, s.Prm.M, s.Prm.Gc, s.Prm.Kernel.orDefault())
}

// TopSolver exposes the top-level SPME solver (used by the hardware model
// and diagnostics).
func (s *Solver) TopSolver() *spme.Solver { return s.top }

// Kernels returns the per-Gaussian 1D grid kernels (read-only).
func (s *Solver) Kernels() [][3][]float64 { return s.kern }

// TwoScale returns the restriction/prolongation coefficients (read-only).
func (s *Solver) TwoScale() []float64 { return s.j }

// LevelZKernels returns the per-level z-axis kernels with the level
// prefactor and Coulomb conversion folded in: LevelZKernels()[l-1][ν] is
// the z kernel levelConvAccum uses at level l (read-only). Slab-decomposed
// pipelines (internal/dist, internal/rank) need them to reproduce the level
// convolutions bitwise.
func (s *Solver) LevelZKernels() [][][]float64 { return s.kernZ }

// levelConvAccum accumulates the separable middle-range convolution of
// level l (1-based) of the level-l charge grid q into dst, in
// kJ mol⁻¹ e⁻¹ (paper Eq. (9)–(11)): dst += Σ_ν K^{ν,x}∗K^{ν,y}∗K̃^{ν,z}∗q,
// where K̃^{ν,z} carries the 1/2^{l−1} prefactor and Coulomb conversion.
// t1 and t2 are convolution scratch of the same shape as q.
func (s *Solver) levelConvAccum(dst, q *grid.G, l int, t1, t2 *grid.G) {
	for v := 0; v < s.Prm.M; v++ {
		grid.ConvSeparableAccum(dst, q, s.kern[v][0], s.kern[v][1], s.kernZ[l-1][v], t1, t2)
	}
}

// MeshPotential runs the full grid pipeline — charge assignment,
// restrictions, per-level separable convolutions, top-level SPME,
// prolongations — and returns the finest-grid potential.
// It is exposed separately so the hardware simulator can compare its
// fixed-point datapath against this double-precision reference stage by
// stage.
//
// The returned grid is drawn from the solver's internal pool and is owned
// by the caller; LongRange recycles it, external callers may simply let it
// be garbage collected.
func (s *Solver) MeshPotential(pos []vec.V, q []float64) *grid.G {
	qg := s.pool.Get(s.Prm.N)
	qg.Zero()
	s.Mesher.AssignTo(qg, pos, q)
	phi := s.meshPotentialFromCharges(qg)
	s.pool.Put(qg)
	return phi
}

func (s *Solver) meshPotentialFromCharges(qg *grid.G) *grid.G {
	s.mu.Lock()
	defer s.mu.Unlock()
	L := s.Prm.Levels
	// Downward pass: restrict charges level by level. charges is 1-based;
	// [L+1] is the top grid. Entry 1 aliases the caller's grid and is
	// never recycled.
	charges := s.charges
	charges[1] = qg
	spDown := s.o.Start(obs.StageRestrict)
	for l := 1; l <= L; l++ {
		n := charges[l].N
		charges[l+1] = s.pool.Get([3]int{n[0] / 2, n[1] / 2, n[2] / 2})
		grid.RestrictInto(charges[l+1], charges[l], s.j, s.pool)
	}
	spDown.Stop()
	// Top-level SPME convolution (the TMENW/root-FPGA computation).
	phi := s.pool.Get(charges[L+1].N)
	s.top.PotentialGridInto(phi, charges[L+1])
	s.pool.Put(charges[L+1])
	charges[L+1] = nil
	// Upward pass: prolong and accumulate each level's separable
	// convolution, recycling every intermediate grid.
	for l := L; l >= 1; l-- {
		up := s.pool.Get(charges[l].N)
		spUp := s.o.Start(obs.StageProlong)
		grid.ProlongInto(up, phi, s.j, s.pool)
		spUp.Stop()
		s.pool.Put(phi)
		t1 := s.pool.Get(charges[l].N)
		t2 := s.pool.Get(charges[l].N)
		spConv := s.o.Start(obs.StageConv)
		s.levelConvAccum(up, charges[l], l, t1, t2)
		spConv.Stop()
		s.pool.Put(t1)
		s.pool.Put(t2)
		if l > 1 {
			s.pool.Put(charges[l])
		}
		charges[l] = nil
		phi = up
	}
	return phi
}

// LongRange computes the mesh (long-range) part of the Coulomb energy plus
// the Ewald self energy, accumulating forces into f (may be nil).
func (s *Solver) LongRange(pos []vec.V, q []float64, f []vec.V) float64 {
	phi := s.MeshPotential(pos, q)
	e := s.Mesher.Interpolate(phi, pos, q, f)
	s.pool.Put(phi)
	return e + ewald.SelfEnergy(q, s.Prm.Alpha)
}

// Coulomb computes the full TME Coulomb energy — short-range erfc + mesh +
// self + exclusion corrections — accumulating forces into f (may be nil).
func (s *Solver) Coulomb(pos []vec.V, q []float64, excl *topol.Exclusions, f []vec.V) float64 {
	e := ewald.RealSpace(s.Box, pos, q, s.Prm.Alpha, s.Prm.Rc, excl, f)
	e += s.LongRange(pos, q, f)
	e += ewald.ExclusionCorrection(s.Box, pos, q, s.Prm.Alpha, excl, f)
	return e
}

// ShellExact evaluates the middle-range shell g_{α,l}(r) =
// [erf(αr/2^{l−1}) − erf(αr/2^l)]/r (paper Eq. (5)); at r = 0 it returns the
// finite limit α/(2^{l−1}√π)·(2 − 1) = α/(2^{l−1}√π).
func ShellExact(alpha float64, l int, r float64) float64 {
	scale := math.Pow(2, float64(l-1))
	a := alpha / scale
	if r == 0 {
		return a / math.Sqrt(math.Pi)
	}
	return (math.Erf(a*r) - math.Erf(a*r/2)) / r
}

// ShellApprox evaluates the M-term Gauss–Legendre approximation of
// g_{α,l}(r) (paper Eq. (6)–(7)).
func ShellApprox(alpha float64, l, m int, r float64) float64 {
	return ShellApproxFamily(alpha, l, m, KernelGauss, r)
}

// ShellApproxFamily evaluates the M-term Gaussian-sum approximation of
// g_{α,l}(r) for the chosen kernel family. The level-l shell reuses the
// level-1 decomposition through the self-similarity g_{α,l}(r) =
// g_{α/2^{l−1},1}(r) — both families keep their widths inside the rescaled
// octave, so one table serves every level.
func ShellApproxFamily(alpha float64, l, m int, family KernelFamily, r float64) float64 {
	tau, c := shellQuad(family, m)
	scale := math.Pow(2, float64(l-1))
	var s float64
	for v := 0; v < m; v++ {
		x := tau[v] * alpha * r / scale
		s += alpha * c[v] * math.Exp(-x*x)
	}
	return s / scale
}
