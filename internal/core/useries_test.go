package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"tme4a/internal/ewald"
	"tme4a/internal/vec"
)

// TestUSeriesShellPointwiseTable tabulates, per M, the worst pointwise
// deviation of both kernel families from the exact middle-range shell over
// its support, normalized by the r = 0 shell value. It pins (a) that the
// u-series error decreases monotonically with M, and (b) the
// self-similarity contract: at level 2 the normalized error is identical
// to level 1 (one table serves every level).
func TestUSeriesShellPointwiseTable(t *testing.T) {
	const alpha = 2.7449
	g0 := ShellExact(alpha, 1, 0)
	maxErr := func(family KernelFamily, l, m int) float64 {
		scale := math.Pow(2, float64(l-1))
		var worst float64
		for i := 1; i <= 2000; i++ {
			r := float64(i) * 0.002 * scale // shell support ~[0, 4/α·2^{l−1}]
			d := math.Abs(ShellApproxFamily(alpha, l, m, family, r) - ShellExact(alpha, l, r))
			if d *= scale / g0; d > worst {
				worst = d
			}
		}
		return worst
	}
	prev := math.Inf(1)
	for m := 1; m <= 4; m++ {
		u := maxErr(KernelUSeries, 1, m)
		g := maxErr(KernelGauss, 1, m)
		t.Logf("M=%d: max |Δg|/g(0): useries %.3e  gauss-legendre %.3e", m, u, g)
		if u >= prev {
			t.Errorf("M=%d: u-series pointwise error %g did not improve on M=%d (%g)", m, u, m-1, prev)
		}
		prev = u
		u2 := maxErr(KernelUSeries, 2, m)
		if rel := math.Abs(u2-u) / u; rel > 1e-6 {
			t.Errorf("M=%d: level-2 normalized error %g differs from level-1 %g (self-similarity broken)", m, u2, u)
		}
	}
	if prev > 2e-3 {
		t.Errorf("M=4 u-series pointwise error %g above 2e-3", prev)
	}
}

// TestUSeriesForceAccuracyVsReference runs the full u-series TME pipeline
// against the well-converged Ewald reference and checks the acceptance
// claim of this PR at the Table-1 operating point (rc = 1.0, gc = 8): the
// u-series family reaches a force RMS error no worse than the M = 3
// Gauss–Legendre solver at the same M — and already at M = 2 beats
// Gauss–Legendre at M = 3.
func TestUSeriesForceAccuracyVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 64, box)
	_, fRef := ewald.Reference(box, pos, q, nil, 1e-12)
	solve := func(m int, family KernelFamily) float64 {
		prm := paperLikeParams(1.0, m, 8, 1)
		prm.Kernel = family
		s := New(prm, box)
		f := make([]vec.V, len(pos))
		s.Coulomb(pos, q, nil, f)
		return relForceError(f, fRef)
	}
	gl3 := solve(3, KernelGauss)
	for m := 2; m <= 3; m++ {
		u := solve(m, KernelUSeries)
		t.Logf("useries M=%d force error %.3e vs gauss-legendre M=3 %.3e", m, u, gl3)
		if u > gl3*1.02 {
			t.Errorf("useries M=%d force error %g worse than gauss-legendre M=3 %g", m, u, gl3)
		}
	}
}

// TestUSeriesSerialParallelBitwise: the u-series path inherits the
// determinism contract — LongRange energy and forces are bitwise identical
// at any GOMAXPROCS.
func TestUSeriesSerialParallelBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 128, box)
	prm := paperLikeParams(1.0, 2, 8, 2)
	prm.N = [3]int{32, 32, 32}
	prm.Kernel = KernelUSeries

	run := func(procs int) (float64, []vec.V) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		s := New(prm, box)
		f := make([]vec.V, len(pos))
		e := s.LongRange(pos, q, f)
		return e, f
	}
	eRef, fRef := run(1)
	for _, procs := range []int{4} {
		e, f := run(procs)
		if e != eRef {
			t.Errorf("GOMAXPROCS=%d: energy %v != serial %v", procs, e, eRef)
		}
		for i := range f {
			if f[i] != fRef[i] {
				t.Errorf("GOMAXPROCS=%d: force %d differs bitwise", procs, i)
				break
			}
		}
	}
}
