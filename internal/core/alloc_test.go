package core

import (
	"math/rand"
	"runtime"
	"testing"

	"tme4a/internal/vec"
)

// TestLongRangeSteadyStateAllocs pins the tentpole zero-allocation claim:
// after warmup, a full TME long-range solve (assign → level convolutions →
// restrict/prolong → SPME top → interpolate) reuses pooled grids and scratch
// and allocates at most a handful of objects per step at GOMAXPROCS=1.
func TestLongRangeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(31))
	box := vec.Box{L: vec.V{4, 4, 4}}
	pos, q := neutralRandomSystem(rng, 200, box)
	f := make([]vec.V, len(pos))
	s := New(paperLikeParams(1.0, 2, 8, 1), box)

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	// Warm the grid pool and all sync.Pool scratch.
	for i := 0; i < 3; i++ {
		s.LongRange(pos, q, f)
	}
	allocs := testing.AllocsPerRun(10, func() {
		s.LongRange(pos, q, f)
	})
	// Allow a small budget for runtime incidentals (sync.Pool repopulation
	// after a GC during the measured runs); the pre-refactor pipeline
	// allocated dozens of grids (hundreds of KB) per step.
	if allocs > 4 {
		t.Errorf("LongRange allocates %.1f objects per step in steady state, want ~0", allocs)
	}
}
