package core

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/ewald"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
)

// TestAnisotropicBoxAndGrid: the paper's benchmark box is rectangular
// (9.7 × 8.3 × 10.6 nm); the per-axis kernels K^{ν,j} must handle
// different grid spacings h_j.
func TestAnisotropicBoxAndGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	box := vec.NewBox(4.0, 3.0, 5.0)
	n := 48
	pos := make([]vec.V, n)
	q := make([]float64, n)
	var qt float64
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
		q[i] = rng.NormFloat64()
		qt += q[i]
	}
	for i := range q {
		q[i] -= qt / float64(n)
	}
	_, fRef := ewald.Reference(box, pos, q, nil, 1e-12)
	s := New(Params{
		Alpha: spme.AlphaFromRTol(1.2, 1e-4), Rc: 1.2, Order: 6,
		N: [3]int{16, 16, 32}, Levels: 1, M: 4, Gc: 8,
	}, box)
	f := make([]vec.V, n)
	s.Coulomb(pos, q, nil, f)
	if err := relForceError(f, fRef); err > 5e-3 {
		t.Errorf("anisotropic relative force error %g", err)
	}
}

// TestOrder4Spline: the method is defined for any even order; p = 4 is
// the other common choice (the hardware fixes p = 6, the software layer
// does not).
func TestOrder4Spline(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 48, box)
	_, fRef := ewald.Reference(box, pos, q, nil, 1e-12)
	s := New(Params{
		Alpha: spme.AlphaFromRTol(1.2, 1e-4), Rc: 1.2, Order: 4,
		N: [3]int{16, 16, 16}, Levels: 1, M: 4, Gc: 8,
	}, box)
	f := make([]vec.V, len(pos))
	s.Coulomb(pos, q, nil, f)
	err := relForceError(f, fRef)
	t.Logf("p=4 relative force error %.3e", err)
	// p = 4 on the same grid is substantially less accurate than p = 6 but
	// must still be a working method.
	if err > 3e-2 {
		t.Errorf("p=4 relative force error %g", err)
	}
}

// TestGcTruncationTrend reproduces the Table 1 g_c observation: at the
// largest cutoff (smallest α, widest Gaussians) g_c = 4 is insufficient
// while g_c = 8 and 12 agree.
func TestGcTruncationTrend(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 96, box)
	_, fRef := ewald.Reference(box, pos, q, nil, 1e-12)
	errAt := func(gc int) float64 {
		s := New(Params{
			Alpha: spme.AlphaFromRTol(1.5, 1e-4), Rc: 1.5, Order: 6,
			N: [3]int{16, 16, 16}, Levels: 1, M: 4, Gc: gc,
		}, box)
		f := make([]vec.V, len(pos))
		s.Coulomb(pos, q, nil, f)
		return relForceError(f, fRef)
	}
	e4, e8, e12 := errAt(4), errAt(8), errAt(12)
	t.Logf("rc=1.5: gc=4 %.3e, gc=8 %.3e, gc=12 %.3e", e4, e8, e12)
	if e4 <= 1.5*e8 {
		t.Errorf("gc=4 (%g) should be clearly worse than gc=8 (%g) at rc=1.5", e4, e8)
	}
	if math.Abs(e8-e12) > 0.3*e8 {
		t.Errorf("gc=8 (%g) and gc=12 (%g) should agree", e8, e12)
	}
}

// TestEnergyOffsetShrinksWithM is the Fig. 4 offset mechanism at the
// force-field level: the M = 1 mesh energy is offset from the converged
// value, and the offset shrinks rapidly with M.
func TestEnergyOffsetShrinksWithM(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 96, box)
	energies := map[int]float64{}
	for _, m := range []int{1, 2, 3, 8} {
		s := New(paperLikeParams(1.25, m, 8, 1), box)
		energies[m] = s.LongRange(pos, q, nil)
	}
	ref := energies[8]
	off1 := math.Abs(energies[1] - ref)
	off2 := math.Abs(energies[2] - ref)
	off3 := math.Abs(energies[3] - ref)
	t.Logf("offsets vs M=8: M1 %.3f, M2 %.4f, M3 %.5f kJ/mol", off1, off2, off3)
	if !(off1 > off2 && off2 > off3) {
		t.Errorf("energy offset not shrinking with M: %g %g %g", off1, off2, off3)
	}
	if off1 == 0 {
		t.Error("M=1 offset unexpectedly zero")
	}
}

// TestSolverAccessors covers the read-only accessors the hardware pipeline
// depends on.
func TestSolverAccessors(t *testing.T) {
	box := vec.Cubic(4)
	s := New(paperLikeParams(1.2, 3, 8, 1), box)
	if got := len(s.Kernels()); got != 3 {
		t.Errorf("Kernels() returned %d Gaussians, want 3", got)
	}
	for _, kv := range s.Kernels() {
		for axis := 0; axis < 3; axis++ {
			if len(kv[axis]) != 2*8+1 {
				t.Fatalf("kernel length %d, want 17", len(kv[axis]))
			}
		}
	}
	if got := len(s.TwoScale()); got != 7 {
		t.Errorf("TwoScale() length %d, want 7", got)
	}
	if s.TopSolver() == nil {
		t.Error("TopSolver() nil")
	}
	if s.TopSolver().Prm.N != [3]int{8, 8, 8} {
		t.Errorf("top grid %v, want 8³", s.TopSolver().Prm.N)
	}
}

// TestInvalidParamsPanic documents the constructor contract.
func TestInvalidParamsPanic(t *testing.T) {
	box := vec.Cubic(4)
	cases := []Params{
		{Alpha: 2, Rc: 1, Order: 6, N: [3]int{16, 16, 16}, Levels: 0, M: 4, Gc: 8}, // no levels
		{Alpha: 2, Rc: 1, Order: 6, N: [3]int{16, 16, 16}, Levels: 1, M: 0, Gc: 8}, // no Gaussians
		{Alpha: 2, Rc: 1, Order: 5, N: [3]int{16, 16, 16}, Levels: 1, M: 4, Gc: 8}, // odd order
		{Alpha: 2, Rc: 1, Order: 6, N: [3]int{18, 18, 18}, Levels: 1, M: 4, Gc: 8}, // not divisible
	}
	for i, prm := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(prm, box)
		}()
	}
}
