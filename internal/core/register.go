package core

import (
	"tme4a/internal/solver"
	"tme4a/internal/vec"
)

// init registers TME under "tme" so importing this package for effect is
// enough to select it by name through the solver registry.
func init() {
	solver.Register("tme",
		"tensor-structured multilevel Ewald (the paper's method): separable Gaussian-sum or u-series middle-range kernels over a level hierarchy, SPME top solve",
		func(cfg solver.Config, box vec.Box) (solver.Solver, error) {
			prm := Params{
				Alpha:  cfg.Alpha,
				Rc:     cfg.Rc,
				Order:  cfg.Order,
				N:      cfg.N,
				Levels: cfg.Levels,
				M:      cfg.M,
				Gc:     cfg.Gc,
				Kernel: KernelFamily(cfg.Kernel),
			}
			if err := prm.Validate(); err != nil {
				return nil, err
			}
			return New(prm, box), nil
		})
}
