package core

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/ewald"
	"tme4a/internal/spme"
	"tme4a/internal/topol"
	"tme4a/internal/vec"
)

func neutralRandomSystem(rng *rand.Rand, n int, box vec.Box) ([]vec.V, []float64) {
	pos := make([]vec.V, n)
	q := make([]float64, n)
	var qt float64
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
		q[i] = rng.NormFloat64()
		qt += q[i]
	}
	for i := range q {
		q[i] -= qt / float64(n)
	}
	return pos, q
}

func relForceError(f, ref []vec.V) float64 {
	var num, den float64
	for i := range f {
		num += f[i].Sub(ref[i]).Norm2()
		den += ref[i].Norm2()
	}
	return math.Sqrt(num / den)
}

// paperLikeParams mirrors the paper's dimensionless operating point on a
// 4 nm box: h = 0.25 nm (vs 0.3116 nm), erfc(α·rc) = 1e-4, p = 6.
func paperLikeParams(rc float64, m, gc, levels int) Params {
	return Params{
		Alpha:  spme.AlphaFromRTol(rc, 1e-4),
		Rc:     rc,
		Order:  6,
		N:      [3]int{16, 16, 16},
		Levels: levels,
		M:      m,
		Gc:     gc,
	}
}

func TestTMEMatchesEwaldReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 64, box)
	_, fRef := ewald.Reference(box, pos, q, nil, 1e-12)

	s := New(paperLikeParams(1.2, 4, 8, 1), box)
	f := make([]vec.V, len(pos))
	s.Coulomb(pos, q, nil, f)
	err := relForceError(f, fRef)
	// Paper Table 1 at the comparable operating point (rc = 1.25 nm,
	// M ≥ 3, gc = 8) reports ~1.4e-4; allow headroom for the random
	// configuration and coarser system.
	// Sparse random-gas configurations have a small Σ|F_ref|² denominator,
	// so the relative error is ~10× the dense-water Table 1 values; the
	// water-box experiment (cmd/tmebench -exp table1) is the quantitative
	// comparison. Here we bound the same-parameter consistency.
	if err > 3e-3 {
		t.Errorf("relative force error %g, want < 3e-3", err)
	}
	t.Logf("TME M=4 gc=8 relative force error: %.3e", err)
}

// TestTMEAccuracyComparableToSPME is the paper's central accuracy claim
// (Table 1): at matched α, rc, p, N the TME error converges to the SPME
// error as M and gc grow.
func TestTMEAccuracyComparableToSPME(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 96, box)
	_, fRef := ewald.Reference(box, pos, q, nil, 1e-12)

	rc := 1.2
	sp := spme.New(spme.Params{Alpha: spme.AlphaFromRTol(rc, 1e-4), Rc: rc, Order: 6, N: [3]int{16, 16, 16}}, box)
	fs := make([]vec.V, len(pos))
	sp.Coulomb(pos, q, nil, fs)
	errSPME := relForceError(fs, fRef)

	s := New(paperLikeParams(rc, 4, 8, 1), box)
	ft := make([]vec.V, len(pos))
	s.Coulomb(pos, q, nil, ft)
	errTME := relForceError(ft, fRef)

	t.Logf("SPME err=%.3e TME err=%.3e", errSPME, errTME)
	if errTME > 3*errSPME {
		t.Errorf("TME error %g not comparable to SPME error %g", errTME, errSPME)
	}
}

// TestErrorConvergesInM reproduces the Table 1 trend: M = 1 is worst and
// the error stops improving by M ≈ 3–4.
func TestErrorConvergesInM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 96, box)
	_, fRef := ewald.Reference(box, pos, q, nil, 1e-12)
	var errs []float64
	for m := 1; m <= 4; m++ {
		s := New(paperLikeParams(1.2, m, 8, 1), box)
		f := make([]vec.V, len(pos))
		s.Coulomb(pos, q, nil, f)
		errs = append(errs, relForceError(f, fRef))
	}
	t.Logf("errors M=1..4: %.3e %.3e %.3e %.3e", errs[0], errs[1], errs[2], errs[3])
	if errs[0] <= errs[2] {
		t.Errorf("M=1 error %g should exceed M=3 error %g", errs[0], errs[2])
	}
	if math.Abs(errs[3]-errs[2]) > 0.5*errs[2] {
		t.Errorf("M=3 (%g) and M=4 (%g) should be nearly converged", errs[2], errs[3])
	}
}

// TestLongRangeForceGradient checks the mesh force against finite
// differences of the mesh energy.
func TestLongRangeForceGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 12, box)
	s := New(paperLikeParams(1.2, 2, 8, 1), box)
	f := make([]vec.V, len(pos))
	s.LongRange(pos, q, f)
	const h = 2e-6
	for _, i := range []int{0, 6, 11} {
		for axis := 0; axis < 3; axis++ {
			p0 := pos[i]
			pos[i][axis] = p0[axis] + h
			ep := s.LongRange(pos, q, nil)
			pos[i][axis] = p0[axis] - h
			em := s.LongRange(pos, q, nil)
			pos[i] = p0
			fd := -(ep - em) / (2 * h)
			if math.Abs(f[i][axis]-fd) > 1e-4*math.Max(1, math.Abs(fd)) {
				t.Errorf("atom %d axis %d: F %.8f vs −dE/dx %.8f", i, axis, f[i][axis], fd)
			}
		}
	}
}

// TestTwoLevelTME exercises L = 2 (the 64³ configuration of Sec. VI.A,
// scaled down) and checks it against the reference.
func TestTwoLevelTME(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	box := vec.Cubic(8)
	pos, q := neutralRandomSystem(rng, 64, box)
	_, fRef := ewald.Reference(box, pos, q, nil, 1e-12)
	prm := Params{
		Alpha:  spme.AlphaFromRTol(1.2, 1e-4),
		Rc:     1.2,
		Order:  6,
		N:      [3]int{32, 32, 32},
		Levels: 2,
		M:      4,
		Gc:     8,
	}
	s := New(prm, box)
	f := make([]vec.V, len(pos))
	s.Coulomb(pos, q, nil, f)
	err := relForceError(f, fRef)
	t.Logf("L=2 relative force error: %.3e", err)
	if err > 8e-3 {
		t.Errorf("L=2 relative force error %g, want < 8e-3", err)
	}
}

// TestTMEWithExclusions verifies the exclusion pathway matches reference.
func TestTMEWithExclusions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 30, box)
	excl := topol.NewExclusions(len(pos))
	for g := 0; g+2 < len(pos); g += 3 {
		excl.AddGroup([]int{g, g + 1, g + 2})
	}
	_, fRef := ewald.Reference(box, pos, q, excl, 1e-12)
	s := New(paperLikeParams(1.2, 4, 8, 1), box)
	f := make([]vec.V, len(pos))
	s.Coulomb(pos, q, excl, f)
	if err := relForceError(f, fRef); err > 8e-3 {
		t.Errorf("relative force error with exclusions %g", err)
	}
}

// TestShellIdentities checks Eq. (4)–(5): the shells telescope back to the
// full long-range kernel, and the self-similarity g_{α,l}(r) =
// g_{α,1}(r/2^{l−1})/2^{l−1} holds.
func TestShellIdentities(t *testing.T) {
	alpha := 2.4
	for _, r := range []float64{0.1, 0.5, 1.0, 2.3} {
		lsum := 0.0
		L := 3
		for l := 1; l <= L; l++ {
			lsum += ShellExact(alpha, l, r)
		}
		top := math.Erf(alpha/math.Pow(2, float64(L))*r) / r
		want := math.Erf(alpha*r) / r
		if math.Abs(lsum+top-want) > 1e-14 {
			t.Errorf("r=%g: telescoping violated: %g vs %g", r, lsum+top, want)
		}
		for l := 2; l <= 4; l++ {
			scale := math.Pow(2, float64(l-1))
			a := ShellExact(alpha, l, r)
			b := ShellExact(alpha, 1, r/scale) / scale
			if math.Abs(a-b) > 1e-14 {
				t.Errorf("r=%g l=%d: self-similarity violated: %g vs %g", r, l, a, b)
			}
		}
	}
}

// TestShellApproxConvergence reproduces Fig. 3: the Gaussian-sum
// approximation error decreases rapidly with M.
func TestShellApproxConvergence(t *testing.T) {
	alpha := 2.751064
	g0 := ShellExact(alpha, 1, 0)
	var prevMax float64 = math.Inf(1)
	for m := 1; m <= 4; m++ {
		var maxErr float64
		for i := 0; i <= 200; i++ {
			r := float64(i) * 0.02 // αr up to ~11
			e := math.Abs(ShellApprox(alpha, 1, m, r)-ShellExact(alpha, 1, r)) / g0
			if e > maxErr {
				maxErr = e
			}
		}
		if maxErr >= prevMax {
			t.Errorf("M=%d: max error %g did not decrease (prev %g)", m, maxErr, prevMax)
		}
		prevMax = maxErr
	}
	// Paper Fig. 3(b): by M = 4 the relative error is far below 1e-4.
	if prevMax > 1e-4 {
		t.Errorf("M=4 max relative error %g, want < 1e-4", prevMax)
	}
}

func BenchmarkTMELongRange(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 1000, box)
	s := New(paperLikeParams(1.2, 4, 8, 1), box)
	f := make([]vec.V, len(pos))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LongRange(pos, q, f)
	}
}
