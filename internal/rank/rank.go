// Package rank runs the MD engine in a rank-decomposed mode: R worker
// goroutines ("ranks"), each owning a contiguous block of cell-list
// z layers for the short-range term and the matching z-plane block of
// every TME level grid (internal/dist) for the long-range term,
// communicate exclusively over typed message channels — position halos,
// deferred Newton reaction forces, computed-force returns, packed grid
// sleeves, top-grid gather/scatter — laid out like the MDGRAPE-4A torus
// traffic the paper describes. A full Engine.Step over R ranks is bitwise
// identical to the single-process md.Integrator.Step at any rank count
// and any GOMAXPROCS.
//
// # Determinism
//
// Every reduction that crosses ranks is replayed in a fixed serial order
// on fixed operand sets:
//
//   - short-range forces follow nonbond.ComputeSlabRange's owner-pass +
//     deferred phases, with the one cross-rank deferred list applied in
//     the serial applyDeferred position;
//   - mesh grids use the internal/dist halo tables, whose z kernels
//     reproduce the serial per-element arithmetic exactly;
//   - energies travel as per-slab/per-atom partial terms and are folded
//     by the engine in the serial chunk orders (nonbond slab order,
//     pmesh.ReplayEnergy, ewald.ReplayExclusionEnergy).
//
// Message delivery order cannot perturb any of this: each ordered rank
// pair has one channel carrying a fixed per-step schedule of messages
// (see protocol.go), so every receive is matched to one deterministic
// send regardless of goroutine interleaving.
//
// # Liveness
//
// Channel capacities equal the full per-step schedule, so sends never
// block and a deadlock can only be a missing message. A worker panic
// aborts all ranks and surfaces as one joined step error; an optional
// watchdog (Config.StepTimeout) converts a lost or mis-sized exchange
// into a diagnosable error instead of a hang.
package rank

import "time"

// Config parameterizes the rank engine.
type Config struct {
	// Ranks is the number of worker goroutines R. Each owns ~ns/R cell
	// layers (ns = cell-list z layers) and, in mesh mode, nz/R planes of
	// every level grid; R must satisfy 1 ≤ R ≤ ns and divide every
	// level's plane count.
	Ranks int

	// StepTimeout, when positive, arms a per-step watchdog: a step that
	// does not complete in time aborts all ranks and returns a deadlock
	// diagnosis. Zero (the default) disables the timer, which keeps the
	// step path allocation-free.
	StepTimeout time.Duration
}
