// Channel protocol of the rank engine. Each ordered pair of ranks (a, b)
// owns one channel whose per-step message schedule is fixed at
// construction time (linkSchedule): position halo, then (for b = a+1 mod
// R) the deferred reaction-force list, the computed short-force return,
// and in mesh mode the grid sleeves of every halo exchange in pipeline
// order, the top-grid gather/scatter legs, and the mesh-force return.
// The channel capacity equals the schedule length, so a sender never
// blocks; packets live in a per-link ring indexed by the schedule, which
// the engine's per-step barrier makes safe to reuse (every packet sent in
// step s is received and fully consumed before step s+1 starts).
package rank

import (
	"tme4a/internal/dist"
	"tme4a/internal/nonbond"
	"tme4a/internal/vec"
)

// Message kinds, in the order they appear within a step's schedule.
const (
	kindPos    uint8 = iota // position halo: atoms the receiver's windows need
	kindDef                 // deferred Newton reaction forces for slab s1 (to rank+1 only)
	kindShort               // computed short-range forces returned to owners
	kindGrid                // packed halo sleeve of one dist exchange
	kindTopQ                // top-grid charge block gathered to rank 0
	kindTopPhi              // top-grid potential block scattered from rank 0
	kindMesh                // interpolated mesh forces returned to owners
)

// packet is one protocol message. idx/v carry (atom, vector) pairs for
// kindPos/kindShort/kindMesh; fl carries floats for kindGrid (exact
// sleeve size) and kindTopQ/kindTopPhi (slice headers into the sender's
// grids — zero copy, safe under the per-step barrier); def carries the
// deferred list header for kindDef.
type packet struct {
	kind uint8
	n    int
	idx  []int32
	v    []vec.V
	fl   []float64
	def  []nonbond.Deferred
}

// slotSpec describes one schedule position of a link.
type slotSpec struct {
	kind uint8
	fl   int // exact float payload length for kindGrid
}

// link is the channel plus packet ring of one ordered rank pair.
type link struct {
	ch    chan *packet
	slots []*packet
	// cur is the sender's schedule cursor, reset at the top of each round.
	cur int //tme:owner worker.run
}

// linkSchedule enumerates the fixed per-step message schedule of link
// a→b. Workers do not consult it at run time — their phase order emits
// exactly this sequence — but the packet ring is allocated from it and
// every send asserts its slot's kind, so a phase-order drift fails loudly
// instead of corrupting an exchange.
func linkSchedule(pl *dist.Plan, r, a, b int) []slotSpec {
	var s []slotSpec
	s = append(s, slotSpec{kind: kindPos})
	if b == (a+1)%r {
		s = append(s, slotSpec{kind: kindDef})
	}
	s = append(s, slotSpec{kind: kindShort})
	if pl != nil {
		L := pl.D.Levels
		for k := 0; k < L; k++ {
			if n := pl.Restrict[k].PackSize(a, b); n > 0 {
				s = append(s, slotSpec{kind: kindGrid, fl: n})
			}
		}
		if b == 0 && a != 0 {
			s = append(s, slotSpec{kind: kindTopQ})
		}
		if a == 0 && b != 0 {
			s = append(s, slotSpec{kind: kindTopPhi})
		}
		for k := L - 1; k >= 0; k-- {
			if n := pl.Prolong[k].PackSize(a, b); n > 0 {
				s = append(s, slotSpec{kind: kindGrid, fl: n})
			}
			for v := 0; v < pl.TME.Prm.M; v++ {
				if n := pl.Conv[k].PackSize(a, b); n > 0 {
					s = append(s, slotSpec{kind: kindGrid, fl: n})
				}
			}
		}
		if n := pl.Interp.PackSize(a, b); n > 0 {
			s = append(s, slotSpec{kind: kindGrid, fl: n})
		}
		s = append(s, slotSpec{kind: kindMesh})
	}
	return s
}

// newLink allocates the channel and packet ring for one schedule.
// Atom-list packets get full-capacity backing arrays so steady-state
// rounds never grow them.
func newLink(specs []slotSpec, natoms int) *link {
	lk := &link{ch: make(chan *packet, len(specs)), slots: make([]*packet, len(specs))}
	for i, sp := range specs {
		p := &packet{kind: sp.kind}
		switch sp.kind {
		case kindPos, kindShort, kindMesh:
			p.idx = make([]int32, 0, natoms)
			p.v = make([]vec.V, 0, natoms)
		case kindGrid:
			p.fl = make([]float64, sp.fl)
		}
		lk.slots[i] = p
	}
	return lk
}

// packetBytes is the modeled wire size of a packet: 4-byte atom indices,
// 24-byte vectors, 8-byte floats, 28-byte deferred entries.
func packetBytes(p *packet) int64 {
	switch p.kind {
	case kindDef:
		return int64(len(p.def)) * 28
	case kindGrid, kindTopQ, kindTopPhi:
		return int64(len(p.fl)) * 8
	default:
		return int64(len(p.idx)) * 28
	}
}
