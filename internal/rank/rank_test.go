package rank

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"tme4a/internal/core"
	"tme4a/internal/md"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

// testFF describes one equivalence scenario: a water box with either the
// TME mesh term or plain cutoff electrostatics.
type testFF struct {
	side int
	rc   float64
	mesh bool
}

// buildSystem prepares an equilibrated water box; the same seed sequence
// always yields the same system, so reference and rank runs can each get
// a pristine, bitwise-identical copy.
func buildSystem(tf testFF) *md.System {
	box := water.CubicBoxFor(tf.side * tf.side * tf.side)
	sys := water.Build(tf.side, tf.side, tf.side, box, 23)
	water.Equilibrate(sys, 100, 0.001, 300, tf.rc, 24)
	sys.InitVelocities(300, rand.New(rand.NewSource(25)))
	return sys
}

// newForceField builds a fresh force field for the scenario. The mesh
// solver carries per-run scratch, so reference and rank runs need their
// own instance.
func newForceField(tf testFF, box vec.Box) *md.ForceField {
	alpha := spme.AlphaFromRTol(tf.rc, 1e-4)
	ff := &md.ForceField{Alpha: alpha, Rc: tf.rc}
	if tf.mesh {
		prm := core.Params{
			Alpha:  alpha,
			Rc:     tf.rc,
			Order:  4,
			N:      [3]int{32, 32, 32},
			Levels: 1,
			M:      2,
			Gc:     4,
		}
		ff.Mesh = core.New(prm, box)
	}
	return ff
}

// checkpoint is one observation of the trajectory: the position/velocity
// hash plus the full energy breakdown, all compared bitwise.
type checkpoint struct {
	hash uint64
	e    md.Energies
}

// serialTrajectory advances the reference integrator, recording a
// checkpoint every `every` steps.
func serialTrajectory(t *testing.T, tf testFF, steps, every int) []checkpoint {
	t.Helper()
	sys := buildSystem(tf)
	in := &md.Integrator{FF: newForceField(tf, sys.Box), Dt: 0.001}
	var cps []checkpoint
	for s := 1; s <= steps; s++ {
		e := in.Step(sys)
		if s%every == 0 {
			cps = append(cps, checkpoint{hash: md.StateHash(sys), e: e})
		}
	}
	return cps
}

// rankTrajectory advances the rank engine at rank count r, recording the
// same checkpoints.
func rankTrajectory(t *testing.T, tf testFF, r, steps, every int) []checkpoint {
	t.Helper()
	sys := buildSystem(tf)
	eng, err := New(Config{Ranks: r}, sys, newForceField(tf, sys.Box), 0.001)
	if err != nil {
		t.Fatalf("New(R=%d): %v", r, err)
	}
	defer eng.Close()
	var cps []checkpoint
	for s := 1; s <= steps; s++ {
		e, err := eng.Step()
		if err != nil {
			t.Fatalf("R=%d step %d: %v", r, s, err)
		}
		if s%every == 0 {
			cps = append(cps, checkpoint{hash: md.StateHash(sys), e: e})
		}
	}
	if r > 1 && eng.CommBytes() == 0 {
		t.Error("CommBytes() == 0 for a multi-rank run")
	}
	if r == 1 && eng.CommBytes() != 0 {
		t.Errorf("CommBytes() = %d for a single-rank run", eng.CommBytes())
	}
	return cps
}

// requireEqual compares two checkpoint sequences bitwise, energy field by
// energy field.
func requireEqual(t *testing.T, label string, ref, got []checkpoint, every int) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d checkpoints, want %d", label, len(got), len(ref))
	}
	for k := range ref {
		step := (k + 1) * every
		if got[k].hash != ref[k].hash {
			t.Fatalf("%s: state hash diverged at step %d: %016x != %016x", label, step, got[k].hash, ref[k].hash)
		}
		fields := []struct {
			name     string
			ref, got float64
		}{
			{"CoulShort", ref[k].e.CoulShort, got[k].e.CoulShort},
			{"CoulLong", ref[k].e.CoulLong, got[k].e.CoulLong},
			{"CoulExcl", ref[k].e.CoulExcl, got[k].e.CoulExcl},
			{"LJ", ref[k].e.LJ, got[k].e.LJ},
			{"Bonded", ref[k].e.Bonded, got[k].e.Bonded},
			{"Kinetic", ref[k].e.Kinetic, got[k].e.Kinetic},
		}
		for _, f := range fields {
			if math.Float64bits(f.ref) != math.Float64bits(f.got) {
				t.Fatalf("%s: %s diverged at step %d: %x != %x (Δ=%g)",
					label, f.name, step, math.Float64bits(f.got), math.Float64bits(f.ref), f.got-f.ref)
			}
		}
	}
}

// TestEquivalenceMatrix is the headline claim: a 200-step NVE water-box
// trajectory under the rank engine is bitwise identical to the serial
// integrator — state hash and every energy field — at every 20-step
// checkpoint, for rank counts {1, 2, 4, 8} crossed with GOMAXPROCS
// {1, 4}, in both TME-mesh and cutoff electrostatics. -short trims to 40
// steps and ranks {1, 2, 4}.
func TestEquivalenceMatrix(t *testing.T) {
	steps, every := 200, 20
	ranks := []int{1, 2, 4, 8}
	if testing.Short() {
		steps, every = 40, 20
		ranks = []int{1, 2, 4}
	}
	for _, tf := range []testFF{
		{side: 6, rc: 0.23, mesh: true},
		{side: 6, rc: 0.23, mesh: false},
	} {
		mode := "cutoff"
		if tf.mesh {
			mode = "tme"
		}
		ref := serialTrajectory(t, tf, steps, every)
		for _, r := range ranks {
			for _, procs := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/R%d/P%d", mode, r, procs), func(t *testing.T) {
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					got := rankTrajectory(t, tf, r, steps, every)
					requireEqual(t, t.Name(), ref, got, every)
				})
			}
		}
	}
}

// TestCommMatrixShape: the traffic matrix is R×R with an empty diagonal,
// and multi-rank mesh runs move grid sleeves on every adjacent pair.
func TestCommMatrixShape(t *testing.T) {
	tf := testFF{side: 6, rc: 0.23, mesh: true}
	sys := buildSystem(tf)
	eng, err := New(Config{Ranks: 4}, sys, newForceField(tf, sys.Box), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for s := 0; s < 3; s++ {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	m := eng.CommMatrix()
	if len(m) != 4 {
		t.Fatalf("matrix has %d rows, want 4", len(m))
	}
	for a := range m {
		if len(m[a]) != 4 {
			t.Fatalf("row %d has %d entries, want 4", a, len(m[a]))
		}
		if m[a][a] != 0 {
			t.Errorf("diagonal entry [%d][%d] = %d, want 0", a, a, m[a][a])
		}
		b := (a + 1) % 4
		if m[a][b] == 0 {
			t.Errorf("adjacent pair %d->%d moved no bytes", a, b)
		}
	}
}
