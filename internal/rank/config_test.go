package rank

import (
	"strings"
	"testing"

	"tme4a/internal/bonded"
	"tme4a/internal/core"
	"tme4a/internal/md"
	"tme4a/internal/vec"
)

// fakeMesh is a MeshSolver that is not the TME solver.
type fakeMesh struct{}

func (fakeMesh) LongRange(pos []vec.V, q []float64, f []vec.V) float64 { return 0 }

// TestNewRejects exercises every construction-time validation: the rank
// engine must refuse configurations it cannot decompose bitwise rather
// than silently diverge.
func TestNewRejects(t *testing.T) {
	tf := testFF{side: 6, rc: 0.23, mesh: true}
	sys := buildSystem(tf)
	cases := []struct {
		name string
		cfg  Config
		ff   func() *md.ForceField
		want string
	}{
		{
			name: "zero ranks",
			cfg:  Config{Ranks: 0},
			ff:   func() *md.ForceField { return newForceField(tf, sys.Box) },
			want: "rank count",
		},
		{
			name: "verlet skin",
			cfg:  Config{Ranks: 2},
			ff: func() *md.ForceField {
				ff := newForceField(tf, sys.Box)
				ff.Skin = 0.05
				return ff
			},
			want: "skin",
		},
		{
			name: "bonded terms",
			cfg:  Config{Ranks: 2},
			ff: func() *md.ForceField {
				ff := newForceField(tf, sys.Box)
				ff.Bonded = &bonded.FF{}
				return ff
			},
			want: "bonded",
		},
		{
			name: "non-TME mesh",
			cfg:  Config{Ranks: 2},
			ff: func() *md.ForceField {
				ff := newForceField(tf, sys.Box)
				ff.Mesh = fakeMesh{}
				return ff
			},
			want: "not rank-decomposable",
		},
		{
			name: "mesh box mismatch",
			cfg:  Config{Ranks: 2},
			ff: func() *md.ForceField {
				ff := newForceField(tf, sys.Box)
				other := vec.Box{L: vec.V{9, 9, 9}}
				prm := ff.Mesh.(*core.Solver).Prm
				ff.Mesh = core.New(prm, other)
				return ff
			},
			want: "does not match system box",
		},
		{
			name: "direct mode",
			cfg:  Config{Ranks: 2},
			ff: func() *md.ForceField {
				ff := newForceField(tf, sys.Box)
				ff.Mesh = nil
				ff.Rc = sys.Box.L[0] / 2.5 // fewer than 3 cells per axis
				return ff
			},
			want: "direct mode",
		},
		{
			name: "more ranks than layers",
			cfg:  Config{Ranks: 64},
			ff:   func() *md.ForceField { return newForceField(tf, sys.Box) },
			want: "need ranks <= layers",
		},
		{
			name: "indivisible mesh planes",
			cfg:  Config{Ranks: 3},
			ff:   func() *md.ForceField { return newForceField(tf, sys.Box) },
			want: "divisible",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := New(tc.cfg, sys, tc.ff(), 0.001)
			if err == nil {
				eng.Close()
				t.Fatalf("New accepted %s", tc.name)
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.want)) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
