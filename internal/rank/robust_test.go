package rank

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// newTestEngine builds a small cutoff-mode engine for protocol-fault
// injection. The caller owns Close.
func newTestEngine(t *testing.T, r int, timeout time.Duration) *Engine {
	t.Helper()
	tf := testFF{side: 6, rc: 0.23, mesh: false}
	sys := buildSystem(tf)
	eng, err := New(Config{Ranks: r, StepTimeout: timeout}, sys, newForceField(tf, sys.Box), 0.001)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng
}

// TestRankPanicFailsStep: a panic on one rank mid-step must surface as a
// joined error naming that rank, abort the peers cleanly (no deadlock,
// no goroutine leak), and leave the engine permanently broken.
func TestRankPanicFailsStep(t *testing.T) {
	before := runtime.NumGoroutine()
	eng := newTestEngine(t, 4, 0)
	// The boot round is step 1; the first Step's integration round is
	// step 2. Blow up rank 2 there, after the peers are mid-exchange.
	eng.workers[2].testPanic = func(step int) {
		if step == 2 {
			panic("injected fault")
		}
	}
	_, err := eng.Step()
	if err == nil {
		t.Fatal("Step succeeded despite an injected rank panic")
	}
	for _, want := range []string{"rank 2", "panic", "injected fault"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	// Aborted peers must not leak into the report as failures.
	if strings.Contains(err.Error(), "aborted by peer") {
		t.Errorf("error %q leaks the peer-abort sentinel", err)
	}
	// The engine is sticky-broken: later steps return the same error.
	if _, err2 := eng.Step(); err2 == nil || err2.Error() != err.Error() {
		t.Errorf("second Step after failure: %v, want the original %v", err2, err)
	}
	eng.Close()
	waitGoroutines(t, before)
}

// TestWatchdogDetectsDeadlock: dropping a scheduled message starves the
// receiver; the watchdog must convert the hang into a diagnosis and
// unwind every rank. The dropped message is the last one rank 0 sends
// rank 1 in a cutoff step (the short-force return) — dropping an
// earlier one would shift the schedule and trip the louder kind-drift
// assertion instead (see TestDroppedMessageTripsKindAssert).
func TestWatchdogDetectsDeadlock(t *testing.T) {
	before := runtime.NumGoroutine()
	eng := newTestEngine(t, 2, 2*time.Second)
	eng.workers[0].testDrop = func(dst int, kind uint8) bool {
		return dst == 1 && kind == kindShort
	}
	_, err := eng.Step()
	if err == nil {
		t.Fatal("Step succeeded despite a dropped protocol message")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error %q does not diagnose a deadlock", err)
	}
	if _, err2 := eng.Step(); err2 == nil {
		t.Error("engine not broken after a watchdog trip")
	}
	eng.Close()
	waitGoroutines(t, before)
}

// TestDroppedMessageTripsKindAssert: losing a mid-schedule message
// shifts every later packet into the wrong slot; the receiver's kind
// assertion must catch the drift immediately instead of consuming a
// mismatched payload.
func TestDroppedMessageTripsKindAssert(t *testing.T) {
	before := runtime.NumGoroutine()
	eng := newTestEngine(t, 2, 2*time.Second)
	eng.workers[0].testDrop = func(dst int, kind uint8) bool {
		return dst == 1 && kind == kindPos
	}
	_, err := eng.Step()
	if err == nil {
		t.Fatal("Step succeeded despite a dropped protocol message")
	}
	if !strings.Contains(err.Error(), "protocol drift") {
		t.Errorf("error %q does not flag protocol drift", err)
	}
	eng.Close()
	waitGoroutines(t, before)
}

// TestCloseIsIdempotent: Close twice is safe, and stepping a closed
// engine reports it.
func TestCloseIsIdempotent(t *testing.T) {
	before := runtime.NumGoroutine()
	eng := newTestEngine(t, 2, 0)
	if _, err := eng.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	eng.Close()
	eng.Close()
	if _, err := eng.Step(); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Step after Close: %v, want a closed-engine error", err)
	}
	waitGoroutines(t, before)
}

// waitGoroutines asserts the goroutine count returns to the baseline
// (small grace loop: exiting goroutines deschedule asynchronously).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := 100
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= want {
			return
		}
		if i >= deadline {
			t.Fatalf("%d goroutines still running, want <= %d: rank workers leaked", runtime.NumGoroutine(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
