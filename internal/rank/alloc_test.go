package rank

import (
	"runtime"
	"testing"
)

// TestStepZeroAlloc is the steady-state allocation gate: after the boot
// round and one warm-up step (which grow the reusable packet/scratch
// arrays to their working set), a full rank step — integration, halo
// exchanges, short-range, the whole mesh pipeline, and the engine-side
// fold — must allocate nothing.
func TestStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for _, tf := range []testFF{
		{side: 6, rc: 0.23, mesh: true},
		{side: 6, rc: 0.23, mesh: false},
	} {
		mode := "cutoff"
		if tf.mesh {
			mode = "tme"
		}
		t.Run(mode, func(t *testing.T) {
			sys := buildSystem(tf)
			eng, err := New(Config{Ranks: 4}, sys, newForceField(tf, sys.Box), 0.001)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			for s := 0; s < 2; s++ {
				if _, err := eng.Step(); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(5, func() {
				if _, err := eng.Step(); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("steady-state Step allocates %.1f times per call, want 0", avg)
			}
		})
	}
}
