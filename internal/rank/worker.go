// Per-rank worker goroutine. Each worker replays the serial step on its
// owned atoms and planes: integration phases on owned atoms only, the
// short-range term over its slab range, the mesh pipeline over its plane
// block, exclusion corrections on owned atoms — every per-atom and
// per-element float sequence identical to the single-process engine's, so
// the merged trajectory is bitwise equal at any rank count.
package rank

import (
	"fmt"
	"math"

	"tme4a/internal/celllist"
	"tme4a/internal/constraint"
	"tme4a/internal/dist"
	"tme4a/internal/ewald"
	"tme4a/internal/grid"
	"tme4a/internal/nonbond"
	"tme4a/internal/obs"
	"tme4a/internal/pmesh"
	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// Round commands sent from the engine to the workers.
const (
	// cmdBoot evaluates forces at the current positions without
	// integrating — the serial integrator's bootstrap Compute.
	cmdBoot uint8 = iota
	// cmdStep runs a full velocity-Verlet step.
	cmdStep
)

// errAborted marks a rank that was interrupted by the shared abort
// signal rather than failing itself; the engine filters it out of the
// joined step error.
var errAborted = fmt.Errorf("aborted by peer failure")

// abortSignal is panicked out of a blocked receive when the shared abort
// channel closes; round's recover translates it to errAborted.
type abortSignal struct{}

// shared is the state common to all workers: immutable topology, the
// decomposition tables, the link matrix and the abort latch. Built once
// by the engine; workers only read it (abortAll's latch excepted).
type shared struct {
	n     int
	r     int
	dt    float64
	alpha float64
	rc    float64
	box   vec.Box
	q     []float64
	mass  []float64
	lj    *nonbond.LJ
	excl  *topol.Exclusions

	waters [][3]int
	wm     *constraint.Water

	// Slab ownership: ns cell layers split into contiguous blocks,
	// slabLo[r] .. slabLo[r+1] (slabLo has r+1 entries, last = ns).
	owner       []int32 // owning rank per atom (whole molecules)
	slabLo      []int
	ns          int
	ownedIdx    [][]int32 // owned atoms per rank, ascending
	ownedWaters [][]int32 // owned water indices per rank, ascending

	// Mesh mode only (nil/zero in cutoff mode).
	plan    *dist.Plan
	mesher  *pmesh.Mesher
	onz0    int     // finest-grid planes per rank
	exclOff []int32 // len n+1: flat exclusion-term offsets per atom

	links [][]*link // links[a][b] carries a→b traffic; nil on a==b or R==1

	abort     chan struct{}
	abortOnce func()
}

// inCellWindow reports whether cell layer lay falls in rank dst's
// short-range window: its owned slabs plus the one layer above (the
// half-stencil partner of its top slab). At R = 1 the window is the
// whole ring.
func (sh *shared) inCellWindow(dst, lay int) bool {
	s0 := sh.slabLo[dst]
	span := sh.slabLo[dst+1] - s0
	return (lay-s0+sh.ns)%sh.ns <= span
}

// worker is one rank's execution state. The fields marked with owners
// are touched only by the worker goroutine between the engine's round
// barriers; the engine reads them (and writes o and the test hooks) only
// while the worker is parked between rounds.
type worker struct {
	sh    *shared
	rank  int
	cmds  chan uint8
	resCh chan *result

	out []*link // out[dst]: this rank's sends to dst
	in  []*link // in[src]: receives from src

	cl   *celllist.List
	sc   *nonbond.SlabScratch
	mesh *dist.Mesh // nil in cutoff mode

	// Rank 0's full top grids for the gathered SPME solve (mesh mode).
	topQ, topPhi *grid.G

	// o records rank 0's stage spans; the engine sets it between rounds.
	o *obs.Recorder

	// Test hooks, set by in-package tests between rounds: testDrop
	// suppresses matching sends (protocol-loss injection), testPanic runs
	// at the top of each round.
	testDrop  func(dst int, kind uint8) bool
	testPanic func(step int)

	step      int       //tme:owner worker.run
	pos       []vec.V   //tme:owner worker.run
	vel       []vec.V   //tme:owner worker.run
	frc       []vec.V   //tme:owner worker.run
	stamp     []int32   //tme:owner worker.run
	shortF    []vec.V   //tme:owner worker.run
	meshF     []vec.V   //tme:owner worker.run
	etermFull []float64 //tme:owner worker.run
	old       []vec.V   //tme:owner worker.run
	cellIdx   []int32   //tme:owner worker.run
	assignIdx []int32   //tme:owner worker.run
	interpIdx []int32   //tme:owner worker.run
	pairBytes []int64   //tme:owner worker.run

	res *result
}

// result is a rank's per-round report. pos, vel and eterm share backing
// arrays with the worker's full-length state; the engine reads them only
// between rounds, under the result-channel happens-before edge.
//
//tme:owner worker.run
type result struct {
	rank      int
	err       error
	part      []nonbond.SlabPartial // owned slabs' energy partials
	pos, vel  []vec.V               // full-length; valid at owned indices
	interpIdx []int32               // atoms this rank interpolated
	eterm     []float64             // full-length per-atom energy terms
	exclTerm  []float64             // flat exclusion terms, owned atoms
}

// newWorker builds rank r's state. Every worker-owned field is
// initialized here, in the composite literals, and never reassigned from
// outside the worker goroutine.
func newWorker(sh *shared, r int, cmds chan uint8, resCh chan *result, pos0, vel0 []vec.V) *worker {
	n := sh.n
	pos := make([]vec.V, n)
	copy(pos, pos0)
	vel := make([]vec.V, n)
	copy(vel, vel0)
	span := sh.slabLo[r+1] - sh.slabLo[r]
	var mesh *dist.Mesh
	var topQ, topPhi *grid.G
	var assignIdx, interpIdx []int32
	var etermFull []float64
	var meshF []vec.V
	exclN := 0
	if sh.plan != nil {
		mesh = sh.plan.NewMesh(r)
		if r == 0 {
			tn := sh.plan.TopN()
			topQ = grid.New(tn[0], tn[1], tn[2])
			topPhi = grid.New(tn[0], tn[1], tn[2])
		}
		assignIdx = make([]int32, 0, n)
		interpIdx = make([]int32, 0, n)
		etermFull = make([]float64, n)
		meshF = make([]vec.V, n)
		for _, i := range sh.ownedIdx[r] {
			exclN += int(sh.exclOff[i+1] - sh.exclOff[i])
		}
	}
	var out, in []*link
	if sh.r > 1 {
		out = make([]*link, sh.r)
		in = make([]*link, sh.r)
		for p := 0; p < sh.r; p++ {
			if p == r {
				continue
			}
			out[p] = sh.links[r][p]
			in[p] = sh.links[p][r]
		}
	}
	return &worker{
		sh:        sh,
		rank:      r,
		cmds:      cmds,
		resCh:     resCh,
		out:       out,
		in:        in,
		cl:        celllist.New(sh.box, sh.rc),
		sc:        &nonbond.SlabScratch{},
		mesh:      mesh,
		topQ:      topQ,
		topPhi:    topPhi,
		pos:       pos,
		vel:       vel,
		frc:       make([]vec.V, n),
		stamp:     make([]int32, n),
		shortF:    make([]vec.V, n),
		meshF:     meshF,
		etermFull: etermFull,
		old:       make([]vec.V, 3*len(sh.ownedWaters[r])),
		cellIdx:   make([]int32, 0, n),
		assignIdx: assignIdx,
		interpIdx: interpIdx,
		pairBytes: make([]int64, sh.r),
		res: &result{
			rank:     r,
			part:     make([]nonbond.SlabPartial, span),
			pos:      pos,
			vel:      vel,
			eterm:    etermFull,
			exclTerm: make([]float64, exclN),
		},
	}
}

// run is the worker goroutine: one round per engine command, one result
// per round. Exits when the engine closes the command channel.
func (w *worker) run() {
	for cmd := range w.cmds {
		w.res.err = w.round(cmd)
		w.resCh <- w.res
	}
}

// round executes one boot or step round. A peer-abort surfaces as
// errAborted; any other panic trips the shared abort (so peers blocked
// on this rank's messages unwind too) and is reported with the rank id.
func (w *worker) round(cmd uint8) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				err = fmt.Errorf("rank %d: %w", w.rank, errAborted)
				return
			}
			w.sh.abortAll()
			err = fmt.Errorf("rank %d: panic: %v", w.rank, r)
		}
	}()
	w.step++
	if w.testPanic != nil {
		w.testPanic(w.step)
	}
	for _, lk := range w.out {
		if lk != nil {
			lk.cur = 0
		}
	}
	if cmd == cmdStep {
		sp := w.o.Start(obs.StageStep)
		w.integratePhase1()
		w.forceRound()
		w.integratePhase3()
		sp.Stop()
	} else {
		w.forceRound()
	}
	if w.sh.plan != nil {
		w.res.interpIdx = w.interpIdx
	}
	return nil
}

// forceRound evaluates all force terms at the current positions,
// leaving frc[i] for every owned atom i equal to the serial engine's
// merged force — the body of ForceField.Compute.
func (w *worker) forceRound() {
	w.exchangePositions()
	w.buildWindows()
	w.shortRange()
	if w.sh.plan != nil {
		w.meshRound()
		w.exclusionRound()
		w.mergeMesh()
	}
}

// integratePhase1 is the serial step's first half: half-kick, reference
// capture, drift, SETTLE — restricted to owned atoms and waters, whose
// per-atom arithmetic is independent, so values match the serial sweep.
func (w *worker) integratePhase1() {
	sh := w.sh
	dt := sh.dt
	owned := sh.ownedIdx[w.rank]
	sp := w.o.Start(obs.StageIntegrate)
	for _, i := range owned {
		w.vel[i] = w.vel[i].Add(w.frc[i].Scale(0.5 * dt / sh.mass[i]))
	}
	waters := sh.ownedWaters[w.rank]
	if sh.wm != nil && len(waters) > 0 {
		for k, wi := range waters {
			t := sh.waters[wi]
			w.old[3*k] = w.pos[t[0]]
			w.old[3*k+1] = w.pos[t[1]]
			w.old[3*k+2] = w.pos[t[2]]
		}
	}
	for _, i := range owned {
		w.pos[i] = w.pos[i].Add(w.vel[i].Scale(dt))
	}
	sp.Stop()
	if sh.wm != nil {
		sp = w.o.Start(obs.StageConstraint)
		for k, wi := range waters {
			t := sh.waters[wi]
			a0, b0, c0 := w.old[3*k], w.old[3*k+1], w.old[3*k+2]
			a, b, c := sh.wm.Settle(a0, b0, c0, w.pos[t[0]], w.pos[t[1]], w.pos[t[2]])
			w.vel[t[0]] = a.Sub(a0).Scale(1 / dt)
			w.vel[t[1]] = b.Sub(b0).Scale(1 / dt)
			w.vel[t[2]] = c.Sub(c0).Scale(1 / dt)
			w.pos[t[0]], w.pos[t[1]], w.pos[t[2]] = a, b, c
		}
		sp.Stop()
	}
}

// integratePhase3 is the second half-kick plus the velocity half of
// SETTLE, on owned atoms and waters.
func (w *worker) integratePhase3() {
	sh := w.sh
	dt := sh.dt
	sp := w.o.Start(obs.StageIntegrate)
	for _, i := range sh.ownedIdx[w.rank] {
		w.vel[i] = w.vel[i].Add(w.frc[i].Scale(0.5 * dt / sh.mass[i]))
	}
	sp.Stop()
	sp = w.o.Start(obs.StageConstraint)
	if sh.wm != nil {
		for _, wi := range sh.ownedWaters[w.rank] {
			t := sh.waters[wi]
			sh.wm.SettleVelocities(
				w.pos[t[0]], w.pos[t[1]], w.pos[t[2]],
				&w.vel[t[0]], &w.vel[t[1]], &w.vel[t[2]])
		}
	}
	sp.Stop()
}

// needs reports whether rank dst's windows require atom i's current
// position: its short-range cell window, its assignment support or its
// interpolation base plane. The receiver re-tests the same predicates on
// delivered atoms, so the sets provably match.
func (w *worker) needs(dst, i int) bool {
	sh := w.sh
	if sh.inCellWindow(dst, w.cl.Layer(w.pos[i])) {
		return true
	}
	if sh.plan != nil {
		zlo, zhi := dst*sh.onz0, (dst+1)*sh.onz0
		if sh.mesher.SupportHits(w.pos[i], zlo, zhi) {
			return true
		}
		if b := sh.mesher.BasePlane(w.pos[i]); b >= zlo && b < zhi {
			return true
		}
	}
	return false
}

// exchangePositions stamps the rank's owned atoms current and ships each
// peer the owned positions its windows need, then installs received
// positions (stamping them current).
func (w *worker) exchangePositions() {
	sh := w.sh
	st := int32(w.step)
	owned := sh.ownedIdx[w.rank]
	for _, i := range owned {
		w.stamp[i] = st
	}
	if sh.r == 1 {
		return
	}
	for dst := 0; dst < sh.r; dst++ {
		if dst == w.rank {
			continue
		}
		p := w.slot(dst, kindPos)
		p.idx = p.idx[:0]
		p.v = p.v[:0]
		for _, i := range owned {
			if w.needs(dst, int(i)) {
				p.idx = append(p.idx, i)
				p.v = append(p.v, w.pos[i])
			}
		}
		w.send(dst, p)
	}
	for src := 0; src < sh.r; src++ {
		if src == w.rank {
			continue
		}
		p := w.recv(src, kindPos)
		for k, i := range p.idx {
			w.pos[i] = p.v[k]
			w.stamp[i] = st
		}
	}
}

// buildWindows scans all current-step atoms in ascending global index —
// the serial particle order — into the rank's cell, assignment and
// interpolation lists.
func (w *worker) buildWindows() {
	sh := w.sh
	st := int32(w.step)
	w.cellIdx = w.cellIdx[:0]
	meshMode := sh.plan != nil
	if meshMode {
		w.assignIdx = w.assignIdx[:0]
		w.interpIdx = w.interpIdx[:0]
	}
	zlo, zhi := w.rank*sh.onz0, (w.rank+1)*sh.onz0
	for i := 0; i < sh.n; i++ {
		if w.stamp[i] != st {
			continue
		}
		if sh.inCellWindow(w.rank, w.cl.Layer(w.pos[i])) {
			w.cellIdx = append(w.cellIdx, int32(i))
		}
		if !meshMode {
			continue
		}
		if sh.mesher.SupportHits(w.pos[i], zlo, zhi) {
			w.assignIdx = append(w.assignIdx, int32(i))
		}
		if b := sh.mesher.BasePlane(w.pos[i]); b >= zlo && b < zhi {
			w.interpIdx = append(w.interpIdx, int32(i))
		}
	}
}

// inRange reports whether cell layer lay is one of this rank's owned
// slabs (blocks never wrap, so a plain comparison suffices).
func (w *worker) inRange(lay int) bool {
	return lay >= w.sh.slabLo[w.rank] && lay < w.sh.slabLo[w.rank+1]
}

// shortRange evaluates the rank's slab range, completes the deferred
// reaction-force ring exchange, and routes each window atom's finished
// short force to its owner. Every atom's force is computed entirely by
// the single rank whose slab range holds its layer, so the owner
// installs one value per atom — no cross-rank summation to order.
func (w *worker) shortRange() {
	sh := w.sh
	sp := w.o.Start(obs.StageShortRange)
	for _, i := range w.cellIdx {
		w.shortF[i] = vec.V{}
	}
	spn := w.o.Start(obs.StageNeighbor)
	w.cl.RebuildSubset(w.pos, w.cellIdx)
	spn.Stop()
	s0, s1 := sh.slabLo[w.rank], sh.slabLo[w.rank+1]
	def := nonbond.ComputeSlabRange(w.cl, w.pos, sh.q, sh.lj, sh.alpha, sh.excl,
		w.shortF, w.res.part, w.sc, s0, s1)
	if sh.r == 1 {
		nonbond.ApplyDeferred(w.shortF, def)
	} else {
		nxt := (w.rank + 1) % sh.r
		p := w.slot(nxt, kindDef)
		p.def = def
		w.send(nxt, p)
		pd := w.recv((w.rank-1+sh.r)%sh.r, kindDef)
		nonbond.ApplyDeferred(w.shortF, pd.def)
		for dst := 0; dst < sh.r; dst++ {
			if dst == w.rank {
				continue
			}
			ps := w.slot(dst, kindShort)
			ps.idx = ps.idx[:0]
			ps.v = ps.v[:0]
			for _, i := range w.cellIdx {
				if sh.owner[i] == int32(dst) && w.inRange(w.cl.Layer(w.pos[i])) {
					ps.idx = append(ps.idx, i)
					ps.v = append(ps.v, w.shortF[i])
				}
			}
			w.send(dst, ps)
		}
	}
	for _, i := range sh.ownedIdx[w.rank] {
		if w.inRange(w.cl.Layer(w.pos[i])) {
			w.frc[i] = w.shortF[i]
		}
	}
	if sh.r > 1 {
		for src := 0; src < sh.r; src++ {
			if src == w.rank {
				continue
			}
			p := w.recv(src, kindShort)
			for k, i := range p.idx {
				w.frc[i] = p.v[k]
			}
		}
	}
	sp.Stop()
}

// gridExchange runs one halo exchange: pack and send the sleeves this
// rank owes (ascending destination), unpack received sleeves (ascending
// source — slot-disjoint, so order is cosmetic), then fill own planes.
func (w *worker) gridExchange(h *dist.Halo, src, ext *grid.G) {
	sh := w.sh
	for dst := 0; dst < sh.r; dst++ {
		if dst == w.rank || h.PackSize(w.rank, dst) == 0 {
			continue
		}
		p := w.slot(dst, kindGrid)
		p.n = h.Pack(w.rank, dst, src.Data, p.fl)
		w.send(dst, p)
	}
	for s := 0; s < sh.r; s++ {
		if s == w.rank || h.PackSize(s, w.rank) == 0 {
			continue
		}
		p := w.recv(s, kindGrid)
		if p.n != h.PackSize(s, w.rank) {
			panic(fmt.Sprintf("rank %d: mis-sized sleeve from %d: %d floats, want %d",
				w.rank, s, p.n, h.PackSize(s, w.rank)))
		}
		h.Unpack(w.rank, s, p.fl[:p.n], ext.Data)
	}
	h.FillOwn(w.rank, src.Data, ext.Data)
}

// topSolve gathers the top-level charge blocks to rank 0, runs the SPME
// top solver there, and scatters the potential blocks back. The block
// copies are plane-major and contiguous, exactly the sequential
// solver's gather/scatter.
func (w *worker) topSolve() {
	sh := w.sh
	pl := sh.plan
	L := pl.D.Levels
	tn := pl.TopN()
	blk := pl.D.Onz(L) * tn[0] * tn[1]
	m := w.mesh
	if w.rank != 0 {
		p := w.slot(0, kindTopQ)
		p.fl = m.Q[L].Data
		w.send(0, p)
		pr := w.recv(0, kindTopPhi)
		copy(m.Phi[L].Data, pr.fl)
		return
	}
	copy(w.topQ.Data[:blk], m.Q[L].Data)
	for a := 1; a < sh.r; a++ {
		p := w.recv(a, kindTopQ)
		copy(w.topQ.Data[a*blk:(a+1)*blk], p.fl)
	}
	pl.TME.TopSolver().PotentialGridInto(w.topPhi, w.topQ)
	copy(m.Phi[L].Data, w.topPhi.Data[:blk])
	for a := 1; a < sh.r; a++ {
		p := w.slot(a, kindTopPhi)
		p.fl = w.topPhi.Data[a*blk : (a+1)*blk]
		w.send(a, p)
	}
}

// meshRound runs the rank's block of the TME pipeline — the stage
// sequence of dist.Solver.LongRange with channel-borne exchanges — then
// routes interpolated mesh forces to their owners.
func (w *worker) meshRound() {
	sh := w.sh
	pl := sh.plan
	m := w.mesh
	sp := w.o.Start(obs.StageMesh)
	spa := w.o.Start(obs.StageAssign)
	m.AssignOwn(w.assignIdx, w.pos, sh.q)
	spa.Stop()
	spr := w.o.Start(obs.StageRestrict)
	for k := 0; k < pl.D.Levels; k++ {
		w.gridExchange(pl.Restrict[k], m.RestrictXY(k), m.RestrictExt(k))
		m.RestrictZ(k)
	}
	spr.Stop()
	spt := w.o.Start(obs.StageTopSPME)
	w.topSolve()
	spt.Stop()
	for k := pl.D.Levels - 1; k >= 0; k-- {
		spp := w.o.Start(obs.StageProlong)
		w.gridExchange(pl.Prolong[k], m.ProlongXY(k), m.ProlongExt(k))
		m.ProlongZ(k)
		spp.Stop()
		spc := w.o.Start(obs.StageConv)
		for v := 0; v < pl.TME.Prm.M; v++ {
			w.gridExchange(pl.Conv[k], m.ConvXY(k, v), m.ConvExt(k))
			m.ConvZAccum(k, v)
		}
		spc.Stop()
	}
	spi := w.o.Start(obs.StageInterp)
	w.gridExchange(pl.Interp, m.Phi[0], m.InterpExt())
	for _, i := range w.interpIdx {
		w.meshF[i] = vec.V{}
	}
	m.Interp(w.interpIdx, w.pos, sh.q, w.etermFull, w.meshF)
	spi.Stop()
	if sh.r > 1 {
		for dst := 0; dst < sh.r; dst++ {
			if dst == w.rank {
				continue
			}
			p := w.slot(dst, kindMesh)
			p.idx = p.idx[:0]
			p.v = p.v[:0]
			for _, i := range w.interpIdx {
				if sh.owner[i] == int32(dst) {
					p.idx = append(p.idx, i)
					p.v = append(p.v, w.meshF[i])
				}
			}
			w.send(dst, p)
		}
		for src := 0; src < sh.r; src++ {
			if src == w.rank {
				continue
			}
			p := w.recv(src, kindMesh)
			for k, i := range p.idx {
				w.meshF[i] = p.v[k]
			}
		}
	}
	sp.Stop()
}

// exclusionRound evaluates the Ewald exclusion correction gathered onto
// the rank's owned atoms — the exact per-pair arithmetic and per-atom
// accumulation of ewald.ExclusionCorrection, with per-pair energy terms
// recorded flat (zero for charge-skipped pairs, preserving offsets) for
// the engine's chunk-order replay. Excluded partners are intra-molecular
// and molecules are co-owned, so every pos[j] read is current.
func (w *worker) exclusionRound() {
	sh := w.sh
	if sh.excl == nil {
		return
	}
	alpha := sh.alpha
	terms := w.res.exclTerm
	cur := 0
	for _, i32 := range sh.ownedIdx[w.rank] {
		i := int(i32)
		if int(sh.exclOff[i+1]-sh.exclOff[i]) == 0 {
			continue
		}
		qi := sh.q[i]
		ri := w.pos[i]
		for _, j32 := range sh.excl.Neighbors(i) {
			j := int(j32)
			qq := qi * sh.q[j]
			if qq == 0 {
				terms[cur] = 0
				cur++
				continue
			}
			d := sh.box.MinImage(ri.Sub(w.pos[j]))
			r2 := d.Norm2()
			r := math.Sqrt(r2)
			e := math.Erf(alpha*r) / r
			terms[cur] = 0.5 * qq * e
			cur++
			fr := qq * (alpha*ewald.TwoOverSqrtPi*math.Exp(-alpha*alpha*r2) - e) / r2 * units.Coulomb
			w.meshF[i] = w.meshF[i].Add(d.Scale(fr))
		}
	}
}

// mergeMesh folds the finished mesh force into each owned atom's total,
// the serial per-atom merge order (short-range + mesh).
func (w *worker) mergeMesh() {
	sp := w.o.Start(obs.StageMerge)
	for _, i := range w.sh.ownedIdx[w.rank] {
		w.frc[i] = w.frc[i].Add(w.meshF[i])
	}
	sp.Stop()
}

// slot returns the next scheduled packet of the link to dst, asserting
// its kind. The cursor advances even when the send is later dropped by a
// test hook, keeping the rest of the schedule aligned.
func (w *worker) slot(dst int, kind uint8) *packet {
	lk := w.out[dst]
	p := lk.slots[lk.cur]
	lk.cur++
	if p.kind != kind {
		panic(fmt.Sprintf("rank %d: protocol drift: slot %d of link to %d holds kind %d, want %d",
			w.rank, lk.cur-1, dst, p.kind, kind))
	}
	return p
}

// send delivers a scheduled packet; the channel has full-schedule
// capacity, so this never blocks.
func (w *worker) send(dst int, p *packet) {
	if w.testDrop != nil && w.testDrop(dst, p.kind) {
		return
	}
	w.pairBytes[dst] += packetBytes(p)
	w.out[dst].ch <- p
}

// recv blocks for the next packet from src, asserting its scheduled
// kind; a shared abort unwinds the round instead.
func (w *worker) recv(src int, kind uint8) *packet {
	select {
	case p := <-w.in[src].ch:
		if p.kind != kind {
			panic(fmt.Sprintf("rank %d: protocol drift: packet from %d is kind %d, want %d",
				w.rank, src, p.kind, kind))
		}
		return p
	case <-w.sh.abort:
		panic(abortSignal{})
	}
}

// abortAll trips the shared abort latch, unblocking every rank's
// receives.
func (sh *shared) abortAll() { sh.abortOnce() }
