// Engine: owns the worker goroutines, drives boot/step rounds over the
// command and result channels, and folds the per-rank partials into the
// serial energy breakdown and system state.
package rank

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tme4a/internal/celllist"
	"tme4a/internal/core"
	"tme4a/internal/dist"
	"tme4a/internal/ewald"
	"tme4a/internal/md"
	"tme4a/internal/nonbond"
	"tme4a/internal/obs"
	"tme4a/internal/pmesh"
)

// Engine steps a system with R rank workers, bitwise identical to
// md.Integrator.Step on the same force field. Not safe for concurrent
// use: Step, Close and the accessors must be called from one goroutine.
type Engine struct {
	cfg Config
	sys *md.System
	sh  *shared

	workers []*worker
	cmds    []chan uint8
	resCh   chan *result
	wg      sync.WaitGroup
	last    []*result

	selfE    float64
	partAll  []nonbond.SlabPartial
	eterm    []float64
	exclTerm []float64

	booted bool
	closed bool
	broken error
}

// New validates that the force field is rank-decomposable and builds the
// engine: slab and plane ownership, the link matrix, one worker per
// rank. The system's positions and velocities at call time seed every
// worker; after that, sys is only written by Step's fold.
func New(cfg Config, sys *md.System, ff *md.ForceField, dt float64) (*Engine, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("rank: rank count %d < 1", cfg.Ranks)
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if ff.Skin != 0 {
		return nil, fmt.Errorf("rank: buffered Verlet lists (skin %g) are not rank-decomposable; use the unbuffered cell path", ff.Skin)
	}
	if ff.Bonded != nil {
		return nil, fmt.Errorf("rank: bonded terms are not supported in rank mode")
	}
	var tme *core.Solver
	if ff.Mesh != nil {
		t, ok := ff.Mesh.(*core.Solver)
		if !ok {
			return nil, fmt.Errorf("rank: mesh solver %T is not rank-decomposable (need the TME solver)", ff.Mesh)
		}
		if t.Box.L != sys.Box.L {
			return nil, fmt.Errorf("rank: mesh solver box %v does not match system box %v", t.Box.L, sys.Box.L)
		}
		tme = t
	}
	probe := celllist.New(sys.Box, ff.Rc)
	if probe.Direct() {
		return nil, fmt.Errorf("rank: box %v with cutoff %g has no cell decomposition (direct mode)", sys.Box.L, ff.Rc)
	}
	ns := probe.Slabs()
	r := cfg.Ranks
	if r > ns {
		return nil, fmt.Errorf("rank: %d ranks over %d cell layers; need ranks <= layers", r, ns)
	}
	n := sys.N()

	sh := &shared{
		n:      n,
		r:      r,
		dt:     dt,
		alpha:  ff.Alpha,
		rc:     ff.Rc,
		box:    sys.Box,
		q:      sys.Q,
		mass:   sys.Mass,
		lj:     sys.LJ,
		excl:   sys.Excl,
		waters: sys.RigidWaters,
		wm:     sys.WaterModel,
		ns:     ns,
		abort:  make(chan struct{}),
	}
	var once sync.Once
	ab := sh.abort
	sh.abortOnce = func() { once.Do(func() { close(ab) }) }
	sh.slabLo = make([]int, r+1)
	for a := 0; a <= r; a++ {
		sh.slabLo[a] = a * ns / r
	}

	if tme != nil {
		plan, err := dist.NewPlan(tme, r)
		if err != nil {
			return nil, err
		}
		sh.plan = plan
		sh.mesher = plan.Mesher
		sh.onz0 = plan.D.Onz(0)
	}

	if err := buildOwnership(sh, sys, probe); err != nil {
		return nil, err
	}
	buildExclOffsets(sh)

	if r > 1 {
		sh.links = make([][]*link, r)
		for a := 0; a < r; a++ {
			sh.links[a] = make([]*link, r)
			for b := 0; b < r; b++ {
				if a == b {
					continue
				}
				sh.links[a][b] = newLink(linkSchedule(sh.plan, r, a, b), n)
			}
		}
	}

	e := &Engine{
		cfg:     cfg,
		sys:     sys,
		sh:      sh,
		workers: make([]*worker, r),
		cmds:    make([]chan uint8, r),
		resCh:   make(chan *result, r),
		last:    make([]*result, r),
		partAll: make([]nonbond.SlabPartial, ns),
	}
	if tme != nil {
		e.selfE = ewald.SelfEnergy(sys.Q, tme.Prm.Alpha)
		e.eterm = make([]float64, n)
		e.exclTerm = make([]float64, sh.exclOff[n])
	}
	for a := 0; a < r; a++ {
		e.cmds[a] = make(chan uint8, 1)
		e.workers[a] = newWorker(sh, a, e.cmds[a], e.resCh, sys.Pos, sys.Vel)
	}
	for _, w := range e.workers {
		e.wg.Add(1)
		go func(w *worker) {
			defer e.wg.Done()
			w.run()
		}(w)
	}
	return e, nil
}

// buildOwnership assigns every atom to the rank owning its initial cell
// layer, whole molecules at a time (a rigid water follows its oxygen),
// and materializes the per-rank atom and water lists in ascending order.
// In mesh mode it also checks exclusion partners are co-owned, which the
// exclusion round's position reads rely on.
func buildOwnership(sh *shared, sys *md.System, probe *celllist.List) error {
	n := sh.n
	sh.owner = make([]int32, n)
	for i := range sh.owner {
		sh.owner[i] = -1
	}
	layerOwner := func(lay int) int32 {
		for a := 0; a < sh.r; a++ {
			if lay < sh.slabLo[a+1] {
				return int32(a)
			}
		}
		return int32(sh.r - 1)
	}
	for _, t := range sh.waters {
		o := layerOwner(probe.Layer(sys.Pos[t[0]]))
		for _, i := range t {
			if sh.owner[i] >= 0 && sh.owner[i] != o {
				return fmt.Errorf("rank: atom %d belongs to two molecules with different owners", i)
			}
			sh.owner[i] = o
		}
	}
	for i := 0; i < n; i++ {
		if sh.owner[i] < 0 {
			sh.owner[i] = layerOwner(probe.Layer(sys.Pos[i]))
		}
	}
	if sh.plan != nil && sh.excl != nil {
		na := sh.excl.NAtoms()
		if na > n {
			na = n
		}
		for i := 0; i < na; i++ {
			for _, j := range sh.excl.Neighbors(i) {
				if sh.owner[j] != sh.owner[i] {
					return fmt.Errorf("rank: excluded pair (%d, %d) spans ranks %d and %d; exclusions must be intra-molecular",
						i, j, sh.owner[i], sh.owner[j])
				}
			}
		}
	}
	sh.ownedIdx = make([][]int32, sh.r)
	sh.ownedWaters = make([][]int32, sh.r)
	for i := 0; i < n; i++ {
		o := sh.owner[i]
		sh.ownedIdx[o] = append(sh.ownedIdx[o], int32(i))
	}
	for wi, t := range sh.waters {
		o := sh.owner[t[0]]
		sh.ownedWaters[o] = append(sh.ownedWaters[o], int32(wi))
	}
	return nil
}

// buildExclOffsets lays out the flat per-atom exclusion-term offsets
// (mesh mode): exclOff[i+1]−exclOff[i] slots for atom i's neighbor list,
// zero beyond the exclusion table.
func buildExclOffsets(sh *shared) {
	if sh.plan == nil {
		return
	}
	sh.exclOff = make([]int32, sh.n+1)
	if sh.excl == nil {
		return
	}
	na := sh.excl.NAtoms()
	if na > sh.n {
		na = sh.n
	}
	for i := 0; i < sh.n; i++ {
		c := 0
		if i < na {
			c = len(sh.excl.Neighbors(i))
		}
		sh.exclOff[i+1] = sh.exclOff[i] + int32(c)
	}
}

// Step advances the system one time step and returns the energies at the
// new positions, bitwise those of md.Integrator.Step. The first call
// runs a boot round (the serial bootstrap force evaluation) first. Any
// rank failure or watchdog timeout breaks the engine permanently.
func (e *Engine) Step() (md.Energies, error) {
	if e.broken != nil {
		return md.Energies{}, e.broken
	}
	if e.closed {
		return md.Energies{}, fmt.Errorf("rank: engine closed")
	}
	if !e.booted {
		if err := e.round(cmdBoot); err != nil {
			return md.Energies{}, err
		}
		e.booted = true
	}
	if err := e.round(cmdStep); err != nil {
		return md.Energies{}, err
	}
	return e.fold(), nil
}

// round broadcasts one command and collects all R results. On a rank
// error it trips the abort latch so blocked peers unwind, then keeps
// collecting — the abort guarantees every rank responds. The watchdog
// timer (Config.StepTimeout > 0 only, keeping the default path
// allocation-free) turns a lost or mis-sized message into a diagnosis
// instead of a hang.
func (e *Engine) round(cmd uint8) error {
	for a := 0; a < e.sh.r; a++ {
		e.cmds[a] <- cmd
	}
	var timeout <-chan time.Time
	if e.cfg.StepTimeout > 0 {
		timer := time.NewTimer(e.cfg.StepTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	timedOut := false
	for got := 0; got < e.sh.r; {
		select {
		case res := <-e.resCh:
			e.last[res.rank] = res
			got++
			if res.err != nil && !errors.Is(res.err, errAborted) {
				e.sh.abortAll()
			}
		case <-timeout:
			timeout = nil
			timedOut = true
			e.sh.abortAll()
		}
	}
	var errs []error
	for a := 0; a < e.sh.r; a++ {
		if err := e.last[a].err; err != nil && !errors.Is(err, errAborted) {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		e.broken = errors.Join(errs...)
		return e.broken
	}
	if timedOut {
		e.broken = fmt.Errorf("rank: step exceeded %v: ranks deadlocked (mis-sized exchange or lost message?)", e.cfg.StepTimeout)
		return e.broken
	}
	return nil
}

// fold merges the rank results into sys and the serial energy breakdown:
// slab partials in ascending slab order, mesh and exclusion energy terms
// through the serial chunk-order replays, positions and velocities from
// each atom's owner. sys.Frc is not maintained — forces live in the
// workers.
func (e *Engine) fold() md.Energies {
	sh := e.sh
	var en md.Energies
	for a := 0; a < sh.r; a++ {
		res := e.last[a]
		copy(e.partAll[sh.slabLo[a]:sh.slabLo[a+1]], res.part)
		for _, i := range sh.ownedIdx[a] {
			e.sys.Pos[i] = res.pos[i]
			e.sys.Vel[i] = res.vel[i]
		}
	}
	for s := 0; s < sh.ns; s++ {
		en.CoulShort += e.partAll[s].ECoul
		en.LJ += e.partAll[s].ELJ
	}
	if sh.plan != nil {
		for a := 0; a < sh.r; a++ {
			res := e.last[a]
			for _, i := range res.interpIdx {
				e.eterm[i] = res.eterm[i]
			}
		}
		en.CoulLong = pmesh.ReplayEnergy(e.eterm, sh.q) + e.selfE
		for a := 0; a < sh.r; a++ {
			res := e.last[a]
			cur := 0
			for _, i := range sh.ownedIdx[a] {
				c := int(sh.exclOff[i+1] - sh.exclOff[i])
				if c == 0 {
					continue
				}
				copy(e.exclTerm[sh.exclOff[i]:sh.exclOff[i+1]], res.exclTerm[cur:cur+c])
				cur += c
			}
		}
		en.CoulExcl = ewald.ReplayExclusionEnergy(e.exclTerm, sh.exclOff, sh.q)
	}
	en.Kinetic = e.sys.KineticEnergy()
	return en
}

// SetObs attaches a stage recorder to rank 0's worker (nil detaches).
// Call it only between steps.
func (e *Engine) SetObs(rec *obs.Recorder) { e.workers[0].o = rec }

// Ranks returns the configured rank count.
func (e *Engine) Ranks() int { return e.sh.r }

// CommBytes returns the total modeled protocol traffic (bytes) since the
// engine was built, summed over all ordered rank pairs.
func (e *Engine) CommBytes() int64 {
	var t int64
	for _, w := range e.workers {
		for _, b := range w.pairBytes {
			t += b
		}
	}
	return t
}

// CommMatrix returns a copy of the per-pair traffic matrix:
// entry [a][b] is the bytes rank a has sent rank b.
func (e *Engine) CommMatrix() [][]int64 {
	m := make([][]int64, len(e.workers))
	for a, w := range e.workers {
		m[a] = append([]int64(nil), w.pairBytes...)
	}
	return m
}

// Close shuts the workers down and waits for them to exit. Safe after a
// broken step (workers park between rounds regardless of errors);
// idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, c := range e.cmds {
		close(c)
	}
	e.wg.Wait()
}
