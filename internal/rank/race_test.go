//go:build race

package rank

// raceEnabled disables the allocation-count gate under the race
// detector, whose channel instrumentation allocates.
const raceEnabled = true
