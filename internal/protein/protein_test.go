package protein

import (
	"math"
	"testing"

	"tme4a/internal/vec"
)

func TestPaperTargetCounts(t *testing.T) {
	ps := Build(PaperTarget())
	if ps.N() != 80540 {
		t.Fatalf("total atoms %d, want 80540", ps.N())
	}
	if ps.ProteinAtoms != 480*16 {
		t.Errorf("protein atoms %d, want %d", ps.ProteinAtoms, 480*16)
	}
	if ps.ProteinAtoms+ps.Ions+3*ps.Waters != ps.N() {
		t.Errorf("component counts inconsistent: %d + %d + 3·%d != %d",
			ps.ProteinAtoms, ps.Ions, ps.Waters, ps.N())
	}
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNeutrality(t *testing.T) {
	ps := Build(PaperTarget())
	var q float64
	for _, qi := range ps.Q {
		q += qi
	}
	if math.Abs(q) > 1e-9 {
		t.Errorf("net charge %g e, want 0 (protein + counter-ions)", q)
	}
}

func TestBondedTopologySizes(t *testing.T) {
	ps := Build(PaperTarget())
	n := ps.ProteinAtoms
	if len(ps.Bonded.Bonds) != n-1 {
		t.Errorf("bonds %d, want %d", len(ps.Bonded.Bonds), n-1)
	}
	if len(ps.Bonded.Angles) != n-2 {
		t.Errorf("angles %d, want %d", len(ps.Bonded.Angles), n-2)
	}
	if len(ps.Bonded.Dihedrals) != n-3 {
		t.Errorf("dihedrals %d, want %d", len(ps.Bonded.Dihedrals), n-3)
	}
}

func TestChainGeometry(t *testing.T) {
	ps := Build(PaperTarget())
	// Consecutive chain atoms sit at the bond length.
	for i := 1; i < ps.ProteinAtoms; i++ {
		d := ps.Pos[i].Sub(ps.Pos[i-1]).Norm()
		if math.Abs(d-0.15) > 1e-9 {
			t.Fatalf("bond %d length %g, want 0.15", i, d)
		}
	}
}

func TestProteinDensityNearLiquid(t *testing.T) {
	// The density cap must keep the globule near liquid atom density so
	// the machine workload's load imbalance is realistic.
	p := PaperTarget()
	ps := Build(p)
	center := vec.V{p.Box.L[0] / 2, p.Box.L[1] / 2, p.Box.L[2] / 2}
	// Count protein atoms within a 1.5 nm core sphere.
	const coreR = 1.5
	n := 0
	for i := 0; i < ps.ProteinAtoms; i++ {
		if ps.Pos[i].Sub(center).Norm() < coreR {
			n++
		}
	}
	density := float64(n) / (4.0 / 3.0 * math.Pi * coreR * coreR * coreR)
	if density > 250 {
		t.Errorf("core protein density %.0f atoms/nm³ — too clumped (liquid ≈ 100)", density)
	}
	if density < 20 {
		t.Errorf("core protein density %.0f atoms/nm³ — too sparse", density)
	}
}

func TestWatersOutsideProteinCells(t *testing.T) {
	ps := Build(PaperTarget())
	// No water oxygen should sit closer than ~0.15 nm to a protein atom
	// (they were placed on unoccupied cells). Spot check against a sample
	// of protein atoms using a coarse cell structure would be O(N²); we
	// check a random subset instead.
	step := 97
	minD := math.Inf(1)
	for wi := 0; wi < len(ps.RigidWaters); wi += step {
		o := ps.Pos[ps.RigidWaters[wi][0]]
		for pi := 0; pi < ps.ProteinAtoms; pi += 13 {
			d := ps.Box.MinImage(o.Sub(ps.Pos[pi])).Norm()
			if d < minD {
				minD = d
			}
		}
	}
	if minD < 0.05 {
		t.Errorf("water oxygen %g nm from protein atom — overlapping placement", minD)
	}
}

func TestDeterminism(t *testing.T) {
	a := Build(PaperTarget())
	b := Build(PaperTarget())
	if a.N() != b.N() {
		t.Fatal("nondeterministic atom count")
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("nondeterministic position at %d", i)
		}
	}
}
