// Package protein builds synthetic protein–water–ion systems that stand in
// for the paper's benchmark target (a 480-residue, 7,775-atom protein with
// ions and solvent, 80,540 atoms total in a 9.7 × 8.3 × 10.6 nm box).
//
// The generator produces a compact self-avoiding chain with realistic term
// counts (bonds, angles, dihedrals per residue), neutralizing ions, and a
// TIP3P solvent fill. Timing experiments depend only on atom counts,
// spatial distribution and topology sizes — not on biochemical detail —
// which is why this substitution preserves the Fig. 9/10 behaviour
// (see DESIGN.md).
package protein

import (
	"math"
	"math/rand"

	"tme4a/internal/bonded"
	"tme4a/internal/md"
	"tme4a/internal/units"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

// Params configures the generator.
type Params struct {
	Residues    int     // chain length (480 in the paper's target)
	AtomsPerRes int     // atoms per residue (~16 → 7,680 + termini)
	TotalAtoms  int     // final atom count including water and ions
	Box         vec.Box // periodic box
	GlobuleR    float64 // protein globule radius (nm)
	Seed        int64
}

// PaperTarget returns the Fig. 9 workload parameters: 480 residues,
// 80,540 atoms, 9.7 × 8.3 × 10.6 nm box.
func PaperTarget() Params {
	return Params{
		Residues:    480,
		AtomsPerRes: 16,
		TotalAtoms:  80540,
		Box:         vec.NewBox(9.7, 8.3, 10.6),
		GlobuleR:    3.0,
		Seed:        2021,
	}
}

// System is a built protein+solvent system with its bonded topology.
type System struct {
	*md.System
	Bonded       *bonded.FF
	ProteinAtoms int
	Ions         int
	Waters       int
}

// Build generates the system. The protein occupies a compact globule at
// the box centre; water fills the rest at liquid density; a handful of
// ions neutralize the protein charge.
func Build(p Params) *System {
	rng := rand.New(rand.NewSource(p.Seed))
	nProt := p.Residues * p.AtomsPerRes
	if nProt > p.TotalAtoms {
		panic("protein: protein larger than total")
	}

	// Chain positions: a density-limited random walk confined to the
	// globule. Without the occupancy cap a plain random walk piles up at
	// the centre far above liquid density, which would distort the
	// load-balance behaviour the timing experiments measure.
	center := vec.V{p.Box.L[0] / 2, p.Box.L[1] / 2, p.Box.L[2] / 2}
	pos := make([]vec.V, 0, p.TotalAtoms)
	cur := center
	const bondLen = 0.15
	density := newOccupancy(p.Box, 0.35)
	crowd := map[int]int{}
	// ≈ liquid density in a 0.35 nm cell is ~4 atoms.
	const cellCap = 4
	for i := 0; i < nProt; i++ {
		best := cur
		bestScore := 1 << 30
		for try := 0; try < 80; try++ {
			dir := vec.V{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			// Bias the walk back toward the centre only near the surface;
			// inside, crowd-minimizing diffusion spreads the chain evenly.
			if toCenter := center.Sub(cur); toCenter.Norm() > 0.85*p.GlobuleR {
				dir = dir.Add(toCenter.Normalize().Scale(1.2))
			}
			next := cur.Add(dir.Normalize().Scale(bondLen))
			score := crowd[density.idx(next)]
			if next.Sub(center).Norm() >= p.GlobuleR {
				score += cellCap // outside the globule: heavy penalty
			}
			if score < bestScore {
				best, bestScore = next, score
			}
			if score == 0 {
				break
			}
		}
		cur = best
		crowd[density.idx(cur)]++
		pos = append(pos, cur)
	}

	// Ion count: start from a typical protein net charge of −21 e and add
	// counter-ions until the remaining atom budget is divisible into
	// 3-atom waters; the protein net charge is then set to −nIons so the
	// whole system is neutral.
	nIons := 21
	for (p.TotalAtoms-nProt-nIons)%3 != 0 {
		nIons++
	}
	nWater := (p.TotalAtoms - nProt - nIons) / 3

	// Protein charges: alternating partial charges summing to −nIons.
	netCharge := -nIons
	charges := make([]float64, nProt)
	for i := range charges {
		switch i % 4 {
		case 0:
			charges[i] = 0.4
		case 1:
			charges[i] = -0.4
		case 2:
			charges[i] = 0.25
		default:
			charges[i] = -0.25
		}
	}
	for i := 0; i < -netCharge*2; i++ { // shift some charges to reach −21 e
		charges[i*7%nProt] -= 0.5 / 2 * 1 // −0.25 each over 42 atoms
	}
	// Exact adjustment on the last atom.
	var sum float64
	for _, c := range charges {
		sum += c
	}
	charges[nProt-1] += float64(netCharge) - sum

	total := nProt + nIons + 3*nWater
	sys := md.NewSystem(total, p.Box)
	sys.WaterModel = water.Model()
	copy(sys.Pos, pos)

	ff := &bonded.FF{}
	for i := 0; i < nProt; i++ {
		sys.Mass[i] = 12.011
		sys.Q[i] = charges[i]
		sys.LJ.Sigma[i] = 0.33
		sys.LJ.Eps[i] = 0.40
		if i > 0 {
			ff.Bonds = append(ff.Bonds, bonded.Bond{I: int32(i - 1), J: int32(i), R0: bondLen, K: 25000})
			sys.Excl.Add(i-1, i)
		}
		if i > 1 {
			ff.Angles = append(ff.Angles, bonded.Angle{I: int32(i - 2), J: int32(i - 1), K: int32(i), Theta0: 1.92, KTheta: 450})
			sys.Excl.Add(i-2, i)
		}
		if i > 2 {
			ff.Dihedrals = append(ff.Dihedrals, bonded.Dihedral{I: int32(i - 3), J: int32(i - 2), K: int32(i - 1), L: int32(i), Phase: 0, KPhi: 4, Mult: 3})
		}
	}

	// Occupancy hash for solvent placement.
	occ := newOccupancy(p.Box, 0.35)
	for i := 0; i < nProt; i++ {
		occ.mark(sys.Pos[i])
	}

	// Ions on random free sites.
	idx := nProt
	for k := 0; k < nIons; k++ {
		r := freeSite(rng, p.Box, occ)
		sys.Pos[idx] = r
		sys.Mass[idx] = 22.99 // sodium
		sys.Q[idx] = 1
		sys.LJ.Sigma[idx] = 0.233
		sys.LJ.Eps[idx] = 0.36
		occ.mark(r)
		idx++
	}

	// Water on a lattice skipping occupied cells.
	nl := int(math.Ceil(math.Cbrt(float64(nWater) * 1.3)))
	spacing := vec.V{p.Box.L[0] / float64(nl), p.Box.L[1] / float64(nl), p.Box.L[2] / float64(nl)}
	placed := 0
	for iz := 0; iz < nl && placed < nWater; iz++ {
		for iy := 0; iy < nl && placed < nWater; iy++ {
			for ix := 0; ix < nl && placed < nWater; ix++ {
				c := vec.V{
					(float64(ix) + 0.5) * spacing[0],
					(float64(iy) + 0.5) * spacing[1],
					(float64(iz) + 0.5) * spacing[2],
				}
				if occ.occupied(c) {
					continue
				}
				placeWater(sys, idx, c, rng)
				occ.mark(c)
				idx += 3
				placed++
			}
		}
	}
	if placed < nWater {
		// Fallback: allow placement in occupied cells (dense systems).
		for placed < nWater {
			c := vec.V{rng.Float64() * p.Box.L[0], rng.Float64() * p.Box.L[1], rng.Float64() * p.Box.L[2]}
			placeWater(sys, idx, c, rng)
			idx += 3
			placed++
		}
	}

	return &System{
		System:       sys,
		Bonded:       ff,
		ProteinAtoms: nProt,
		Ions:         nIons,
		Waters:       nWater,
	}
}

func placeWater(sys *md.System, base int, center vec.V, rng *rand.Rand) {
	h := units.TIP3PROH * math.Cos(units.TIP3PAngleHOH/2)
	x := units.TIP3PROH * math.Sin(units.TIP3PAngleHOH/2)
	mTot := units.MassO + 2*units.MassH
	yO := 2 * units.MassH * h / mTot
	canon := [3]vec.V{{0, yO, 0}, {-x, yO - h, 0}, {x, yO - h, 0}}
	rot := randomRotation(rng)
	for k := 0; k < 3; k++ {
		sys.Pos[base+k] = rot(canon[k]).Add(center)
	}
	sys.Mass[base] = units.MassO
	sys.Mass[base+1] = units.MassH
	sys.Mass[base+2] = units.MassH
	sys.Q[base] = units.TIP3PQO
	sys.Q[base+1] = units.TIP3PQH
	sys.Q[base+2] = units.TIP3PQH
	sys.LJ.Sigma[base] = units.TIP3PSigma
	sys.LJ.Eps[base] = units.TIP3PEpsilon
	sys.Excl.AddGroup([]int{base, base + 1, base + 2})
	sys.RigidWaters = append(sys.RigidWaters, [3]int{base, base + 1, base + 2})
}

type occupancy struct {
	box  vec.Box
	cell float64
	n    [3]int
	set  map[int]bool
}

func newOccupancy(box vec.Box, cell float64) *occupancy {
	o := &occupancy{box: box, cell: cell, set: map[int]bool{}}
	for k := 0; k < 3; k++ {
		o.n[k] = int(box.L[k] / cell)
		if o.n[k] < 1 {
			o.n[k] = 1
		}
	}
	return o
}

func (o *occupancy) idx(r vec.V) int {
	r = o.box.Wrap(r)
	var c [3]int
	for k := 0; k < 3; k++ {
		c[k] = int(r[k] / o.box.L[k] * float64(o.n[k]))
		if c[k] >= o.n[k] {
			c[k] = o.n[k] - 1
		}
	}
	return c[0] + o.n[0]*(c[1]+o.n[1]*c[2])
}

func (o *occupancy) mark(r vec.V)          { o.set[o.idx(r)] = true }
func (o *occupancy) occupied(r vec.V) bool { return o.set[o.idx(r)] }

func freeSite(rng *rand.Rand, box vec.Box, occ *occupancy) vec.V {
	for {
		r := vec.V{rng.Float64() * box.L[0], rng.Float64() * box.L[1], rng.Float64() * box.L[2]}
		if !occ.occupied(r) {
			return r
		}
	}
}

func randomRotation(rng *rand.Rand) func(vec.V) vec.V {
	var q [4]float64
	var n float64
	for i := range q {
		q[i] = rng.NormFloat64()
		n += q[i] * q[i]
	}
	n = math.Sqrt(n)
	for i := range q {
		q[i] /= n
	}
	w, x, y, z := q[0], q[1], q[2], q[3]
	return func(v vec.V) vec.V {
		return vec.V{
			(1-2*(y*y+z*z))*v[0] + 2*(x*y-w*z)*v[1] + 2*(x*z+w*y)*v[2],
			2*(x*y+w*z)*v[0] + (1-2*(x*x+z*z))*v[1] + 2*(y*z-w*x)*v[2],
			2*(x*z-w*y)*v[0] + 2*(y*z+w*x)*v[1] + (1-2*(x*x+y*y))*v[2],
		}
	}
}
