package spme

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/ewald"
	"tme4a/internal/topol"
	"tme4a/internal/vec"
)

func neutralRandomSystem(rng *rand.Rand, n int, box vec.Box) ([]vec.V, []float64) {
	pos := make([]vec.V, n)
	q := make([]float64, n)
	var qt float64
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
		q[i] = rng.NormFloat64()
		qt += q[i]
	}
	for i := range q {
		q[i] -= qt / float64(n)
	}
	return pos, q
}

// relForceError is the paper's error metric:
// sqrt(Σ|F−F_ref|² / Σ|F_ref|²).
func relForceError(f, ref []vec.V) float64 {
	var num, den float64
	for i := range f {
		num += f[i].Sub(ref[i]).Norm2()
		den += ref[i].Norm2()
	}
	return math.Sqrt(num / den)
}

func TestAlphaFromRTol(t *testing.T) {
	for _, rc := range []float64{1.0, 1.25, 1.5} {
		a := AlphaFromRTol(rc, 1e-4)
		if math.Abs(math.Erfc(a*rc)-1e-4) > 1e-9 {
			t.Errorf("rc=%g: erfc(α·rc) = %g", rc, math.Erfc(a*rc))
		}
		// The paper quotes α·rc ≈ 2.751064 for ewald-rtol = 1e-4.
		if math.Abs(a*rc-2.751064) > 1e-5 {
			t.Errorf("rc=%g: α·rc = %.6f, want 2.751064", rc, a*rc)
		}
	}
}

func TestSPMEMatchesEwaldReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 64, box)
	eRef, fRef := ewald.Reference(box, pos, q, nil, 1e-12)

	s := New(Params{Alpha: AlphaFromRTol(1.2, 1e-4), Rc: 1.2, Order: 6, N: [3]int{32, 32, 32}}, box)
	f := make([]vec.V, len(pos))
	e := s.Coulomb(pos, q, nil, f)

	// erfc(α·rc) = 1e-4 sets the truncation floor; a few 1e-4 relative
	// force error is the expected operating point (paper Table 1).
	if err := relForceError(f, fRef); err > 4e-4 {
		t.Errorf("relative force error %g, want < 4e-4", err)
	}
	if math.Abs(e-eRef) > 2e-4*math.Abs(eRef) {
		t.Errorf("energy %.8f, reference %.8f", e, eRef)
	}
}

func TestSPMEWithExclusionsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 30, box)
	excl := topol.NewExclusions(len(pos))
	for g := 0; g+2 < len(pos); g += 3 {
		excl.AddGroup([]int{g, g + 1, g + 2})
	}
	eRef, fRef := ewald.Reference(box, pos, q, excl, 1e-12)
	s := New(Params{Alpha: AlphaFromRTol(1.2, 1e-4), Rc: 1.2, Order: 6, N: [3]int{32, 32, 32}}, box)
	f := make([]vec.V, len(pos))
	e := s.Coulomb(pos, q, excl, f)
	if err := relForceError(f, fRef); err > 5e-4 {
		t.Errorf("relative force error %g, want < 5e-4", err)
	}
	if math.Abs(e-eRef) > 5e-4*math.Abs(eRef) {
		t.Errorf("energy %.8f, reference %.8f", e, eRef)
	}
}

// TestErrorDecreasesWithGrid: refining the mesh at fixed α must reduce the
// force error (until real-space truncation dominates).
func TestErrorDecreasesWithGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 48, box)
	_, fRef := ewald.Reference(box, pos, q, nil, 1e-12)
	var prev float64 = math.Inf(1)
	for _, n := range []int{16, 32} {
		s := New(Params{Alpha: AlphaFromRTol(1.4, 1e-5), Rc: 1.4, Order: 6, N: [3]int{n, n, n}}, box)
		f := make([]vec.V, len(pos))
		s.Coulomb(pos, q, nil, f)
		err := relForceError(f, fRef)
		if err >= prev {
			t.Errorf("N=%d: error %g did not decrease (prev %g)", n, err, prev)
		}
		prev = err
	}
}

// TestRecipForceGradient checks the mesh force against finite differences
// of the mesh energy.
func TestRecipForceGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	box := vec.Cubic(3)
	pos, q := neutralRandomSystem(rng, 10, box)
	s := New(Params{Alpha: 2.2, Rc: 1.2, Order: 6, N: [3]int{16, 16, 16}}, box)
	f := make([]vec.V, len(pos))
	s.Recip(pos, q, f)
	const h = 2e-6
	for _, i := range []int{0, 4, 9} {
		for axis := 0; axis < 3; axis++ {
			p0 := pos[i]
			pos[i][axis] = p0[axis] + h
			ep := s.Recip(pos, q, nil)
			pos[i][axis] = p0[axis] - h
			em := s.Recip(pos, q, nil)
			pos[i] = p0
			fd := -(ep - em) / (2 * h)
			if math.Abs(f[i][axis]-fd) > 1e-4*math.Max(1, math.Abs(fd)) {
				t.Errorf("atom %d axis %d: F %.8f vs −dE/dx %.8f", i, axis, f[i][axis], fd)
			}
		}
	}
}

// TestPotentialGridLinearity: the mesh solve is a linear operator.
func TestPotentialGridLinearity(t *testing.T) {
	box := vec.Cubic(3)
	s := New(Params{Alpha: 2.0, Rc: 1.0, Order: 4, N: [3]int{8, 8, 8}}, box)
	rng := rand.New(rand.NewSource(5))
	a := s.Mesher.Assign([]vec.V{{1, 1, 1}}, []float64{1})
	b := s.Mesher.Assign([]vec.V{{2, 0.5, 1.7}}, []float64{-1})
	sum := a.Clone()
	sum.AddGrid(b)
	pa := s.PotentialGrid(a)
	pb := s.PotentialGrid(b)
	ps := s.PotentialGrid(sum)
	for i := range ps.Data {
		if math.Abs(ps.Data[i]-(pa.Data[i]+pb.Data[i])) > 1e-9 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
	_ = rng
}

// TestDCModeRemoved: a lone charge's grid potential has zero mean
// (tinfoil boundary condition).
func TestDCModeRemoved(t *testing.T) {
	box := vec.Cubic(3)
	s := New(Params{Alpha: 2.0, Rc: 1.0, Order: 6, N: [3]int{16, 16, 16}}, box)
	qg := s.Mesher.Assign([]vec.V{{1.5, 1.5, 1.5}}, []float64{1})
	phi := s.PotentialGrid(qg)
	if math.Abs(phi.Sum()) > 1e-8 {
		t.Errorf("grid potential mean %g, want 0", phi.Sum()/float64(phi.Len()))
	}
}

func BenchmarkSPMERecip32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 1000, box)
	s := New(Params{Alpha: 2.3, Rc: 1.2, Order: 6, N: [3]int{32, 32, 32}}, box)
	f := make([]vec.V, len(pos))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Recip(pos, q, f)
	}
}
