package spme

import (
	"tme4a/internal/solver"
	"tme4a/internal/vec"
)

// init registers SPME under "spme". The registry subset ignores the TME
// fields of the shared config (Levels, M, Gc, Kernel).
func init() {
	solver.Register("spme",
		"smooth particle-mesh Ewald: B-spline charge assignment, single FFT grid solve",
		func(cfg solver.Config, box vec.Box) (solver.Solver, error) {
			prm := Params{Alpha: cfg.Alpha, Rc: cfg.Rc, Order: cfg.Order, N: cfg.N}
			if err := prm.Validate(); err != nil {
				return nil, err
			}
			return New(prm, box), nil
		})
}
