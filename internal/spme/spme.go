// Package spme implements the smooth particle mesh Ewald method (Essmann et
// al. 1995): B-spline charge assignment, 3D FFT, multiplication by the
// lattice Green function, inverse FFT, and B-spline back interpolation of
// energies and forces.
//
// SPME serves two roles in this repository: it is the accuracy and
// performance baseline of Table 1, and — run with α/2^L on the N/2^L grid —
// it is the top-level convolution of the TME method (the computation the
// MDGRAPE-4A root FPGA performs; see internal/hw/fpgafft).
package spme

import (
	"fmt"
	"math"
	"sync"

	"tme4a/internal/bspline"
	"tme4a/internal/ewald"
	"tme4a/internal/fft"
	"tme4a/internal/grid"
	"tme4a/internal/obs"
	"tme4a/internal/pmesh"
	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// Params configures an SPME solver.
type Params struct {
	Alpha float64 // Ewald splitting parameter (nm⁻¹)
	Rc    float64 // real-space cutoff (nm)
	Order int     // B-spline interpolation order p (even; the paper uses 6)
	N     [3]int  // grid dimensions (powers of two)
}

// Validate reports the first invalid parameter as an error. New panics on
// the same conditions; the solver registry surfaces them as errors.
func (p Params) Validate() error {
	if !(p.Alpha > 0) {
		return fmt.Errorf("spme: Alpha must be positive, got %g", p.Alpha)
	}
	if !(p.Rc > 0) {
		return fmt.Errorf("spme: Rc must be positive, got %g", p.Rc)
	}
	if p.Order%2 != 0 || p.Order < 2 || p.Order > pmesh.MaxOrder {
		return fmt.Errorf("spme: order must be even and in [2, %d], got %d", pmesh.MaxOrder, p.Order)
	}
	for jx := 0; jx < 3; jx++ {
		n := p.N[jx]
		if n < p.Order {
			return fmt.Errorf("spme: grid dim %d smaller than spline order %d", n, p.Order)
		}
		if n&(n-1) != 0 {
			return fmt.Errorf("spme: grid dim %d is not a power of two (required by the real FFT plan)", n)
		}
	}
	return nil
}

// AlphaFromRTol returns the splitting parameter α satisfying
// erfc(α·rc) = rtol, the convention of GROMACS' ewald-rtol input
// (the paper uses rtol = 1e-4).
func AlphaFromRTol(rc, rtol float64) float64 {
	// Bisection on the monotone erfc.
	lo, hi := 0.0, 100.0/rc
	for iter := 0; iter < 200; iter++ {
		mid := 0.5 * (lo + hi)
		if math.Erfc(mid*rc) > rtol {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// Solver holds the precomputed tables for a fixed box and parameter set.
type Solver struct {
	Prm    Params
	Box    vec.Box
	Mesher *pmesh.Mesher

	plan  *fft.RealPlan3
	green []float64 // lattice Green function over the grid, DC term 0

	pool *grid.Pool // recycled charge/potential grids (zero steady-state allocs)

	// o, when non-nil, times the reciprocal solve as the top-SPME stage
	// (this covers both standalone SPME and the TME top-level convolution).
	o *obs.Recorder

	// specMu guards the reused half-spectrum scratch of PotentialGridInto.
	specMu sync.Mutex
	spec   []complex128
}

// SetObs attaches a stage recorder to the solver and its mesher, FFT plan
// and grid pool (nil detaches). Not safe to call concurrently with solves.
func (s *Solver) SetObs(r *obs.Recorder) {
	s.o = r
	s.Mesher.SetObs(r)
	s.plan.SetObs(r)
	s.pool.SetObs(r)
}

// New precomputes an SPME solver for the box. It panics on invalid
// parameters; use Params.Validate (or the solver registry) to get the same
// conditions as errors.
func New(prm Params, box vec.Box) *Solver {
	if err := prm.Validate(); err != nil {
		panic(err.Error())
	}
	s := &Solver{
		Prm:    prm,
		Box:    box,
		Mesher: pmesh.NewMesher(prm.Order, prm.N, box),
		plan:   fft.NewRealPlan3(prm.N[0], prm.N[1], prm.N[2]),
		pool:   grid.NewPool(),
	}
	s.green = latticeGreen(prm, box)
	s.spec = make([]complex128, s.plan.SpectrumLen())
	return s
}

// latticeGreen builds the SPME lattice Green function (Deserno & Holm
// Eq. 28) including the squared Euler-spline factors |b|² of both the
// charge-assignment and back-interpolation B-splines:
//
//	G̃(m) = (1/πV)·exp(−π²s̃²/α²)/s̃² · |b_x(m_x)|²|b_y(m_y)|²|b_z(m_z)|²
//
// with s̃_j the minimum-image frequency m̃_j/L_j. Multiplying Q̂ by G̃ and
// inverse-transforming yields the grid potential; E = ½ΣQΦ then reproduces
// the standard SPME reciprocal energy.
func latticeGreen(prm Params, box vec.Box) []float64 {
	nx, ny, nz := prm.N[0], prm.N[1], prm.N[2]
	bx := bspline.EulerFactorsSq(prm.Order, nx)
	by := bspline.EulerFactorsSq(prm.Order, ny)
	bz := bspline.EulerFactorsSq(prm.Order, nz)
	vol := box.Volume()
	// The ½ΣQΦ energy with a normalised inverse FFT carries 1/N³ relative
	// to Essmann's (1/2πV)Σ A·B·|Q̂|², so the Green function absorbs N³.
	ntot := float64(nx * ny * nz)
	g := make([]float64, nx*ny*nz)
	for mz := 0; mz < nz; mz++ {
		sz := freq(mz, nz) / box.L[2]
		for my := 0; my < ny; my++ {
			sy := freq(my, ny) / box.L[1]
			for mx := 0; mx < nx; mx++ {
				if mx == 0 && my == 0 && mz == 0 {
					continue // tinfoil boundary: DC mode dropped
				}
				sx := freq(mx, nx) / box.L[0]
				s2 := sx*sx + sy*sy + sz*sz
				v := math.Exp(-math.Pi*math.Pi*s2/(prm.Alpha*prm.Alpha)) / (math.Pi * vol * s2)
				// The Coulomb conversion factor is folded into the Green
				// function so grid potentials are in kJ mol⁻¹ e⁻¹ and
				// back-interpolated forces need no further scaling.
				g[mx+nx*(my+ny*mz)] = v * bx[mx] * by[my] * bz[mz] * units.Coulomb * ntot
			}
		}
	}
	return g
}

func freq(m, n int) float64 {
	if m <= n/2 {
		return float64(m)
	}
	return float64(m - n)
}

// Describe returns a one-line description of the configured method.
func (s *Solver) Describe() string {
	return fmt.Sprintf("spme: alpha=%g rc=%g order=%d grid=%dx%dx%d",
		s.Prm.Alpha, s.Prm.Rc, s.Prm.Order, s.Prm.N[0], s.Prm.N[1], s.Prm.N[2])
}

// Green returns the precomputed lattice Green function over the grid
// (read-only; used by the FPGA FFT hardware model to load its coefficient
// memory).
func (s *Solver) Green() []float64 { return s.green }

// PotentialGrid applies the reciprocal-space solve to a charge grid:
// Φ = IFFT(G̃ · FFT(Q)). Both the charges and the Green function are real,
// so only the non-redundant half spectrum is transformed. The input grid
// is not modified. Steady-state callers should prefer PotentialGridInto.
func (s *Solver) PotentialGrid(q *grid.G) *grid.G {
	phi := grid.New(s.Prm.N[0], s.Prm.N[1], s.Prm.N[2])
	s.PotentialGridInto(phi, q)
	return phi
}

// PotentialGridInto is PotentialGrid writing into an existing grid,
// reusing the solver's half-spectrum scratch so repeated solves allocate
// nothing. phi must not alias q.
func (s *Solver) PotentialGridInto(phi, q *grid.G) {
	nx, ny, nz := s.Prm.N[0], s.Prm.N[1], s.Prm.N[2]
	if q.N != s.Prm.N {
		panic("spme: charge grid shape mismatch")
	}
	if phi.N != s.Prm.N {
		panic("spme: potential grid shape mismatch")
	}
	sp := s.o.Start(obs.StageTopSPME)
	defer sp.Stop()
	s.specMu.Lock()
	defer s.specMu.Unlock()
	spec := s.spec
	s.plan.Forward(q.Data, spec)
	hx := s.plan.Hx
	for kz := 0; kz < nz; kz++ {
		for ky := 0; ky < ny; ky++ {
			for kx := 0; kx < hx; kx++ {
				spec[kx+hx*(ky+ny*kz)] *= complex(s.green[kx+nx*(ky+ny*kz)], 0)
			}
		}
	}
	s.plan.Inverse(spec, phi.Data)
}

// Recip computes the reciprocal (mesh) part of the SPME energy in kJ/mol,
// accumulating forces into f (may be nil). It spreads charges, solves on
// the mesh, and back-interpolates. All grids come from the solver's pool,
// so repeated calls allocate nothing.
func (s *Solver) Recip(pos []vec.V, q []float64, f []vec.V) float64 {
	qg := s.pool.Get(s.Prm.N)
	qg.Zero()
	s.Mesher.AssignTo(qg, pos, q)
	phi := s.pool.Get(s.Prm.N)
	s.PotentialGridInto(phi, qg)
	s.pool.Put(qg)
	e := s.Mesher.Interpolate(phi, pos, q, f)
	s.pool.Put(phi)
	return e
}

// Coulomb computes the full SPME Coulomb energy — real space + reciprocal +
// self + exclusion corrections — accumulating forces into f (may be nil).
func (s *Solver) Coulomb(pos []vec.V, q []float64, excl *topol.Exclusions, f []vec.V) float64 {
	e := ewald.RealSpace(s.Box, pos, q, s.Prm.Alpha, s.Prm.Rc, excl, f)
	e += s.Recip(pos, q, f)
	e += ewald.SelfEnergy(q, s.Prm.Alpha)
	e += ewald.ExclusionCorrection(s.Box, pos, q, s.Prm.Alpha, excl, f)
	return e
}

// LongRange computes only the mesh part plus self energy (the portion the
// MDGRAPE-4A long-range units would handle), accumulating forces into f.
func (s *Solver) LongRange(pos []vec.V, q []float64, f []vec.V) float64 {
	return s.Recip(pos, q, f) + ewald.SelfEnergy(q, s.Prm.Alpha)
}
