// Package gcu models the MDGRAPE-4A grid convolution unit: the module
// embedded in the network interface that performs range-limited separable
// convolutions, restrictions and prolongations on 4×4×4 grid blocks
// (paper Sec. IV.B).
//
// Functional face: 1D periodic convolutions over 32-bit fixed-point grid
// data with 24-bit fixed-point kernel coefficients and a shiftable output
// binary point, plus exact fixed-point two-scale restriction/prolongation
// (the J coefficients are multiples of 2^{1−p}, hence exactly
// representable in the coefficient registers).
//
// Cycle face: four convolution units of four grids each (16 points/cycle
// peak) throttled to 12 points/cycle by the network-buffer feed rate; the
// unit runs at the 0.6 GHz SoC clock. Supported local grids are one or
// eight 4×4×4 blocks per node (global 32³ or 64³), g_c ∈ {8, 12}.
package gcu

import (
	"tme4a/internal/fixpoint"
)

// BlockSide is the edge of the GCU's basic data unit (4×4×4 mesh points).
const BlockSide = 4

// PointsPerCycle is the sustained convolution throughput (feed-rate
// limited; the peak is 16).
const PointsPerCycle = 12

// Kernel is a 1D convolution kernel quantized to the GCU coefficient
// register format (24-bit fraction).
type Kernel struct {
	Coefs []int32 // length 2·gc+1
	Fmt   fixpoint.Format
}

// QuantizeKernel converts a float kernel (indexed [m+gc]) to the register
// format.
func QuantizeKernel(k []float64, f fixpoint.Format) Kernel {
	q := make([]int32, len(k))
	for i, v := range k {
		q[i] = f.Quantize(v)
	}
	return Kernel{Coefs: q, Fmt: f}
}

// ConvAxis performs the periodic fixed-point 1D convolution of src along
// axis, accumulating 64-bit products and requantizing once per output
// point:
//
//	dst[n] = Σ_{|m| ≤ gc} K[m]·src[n−m]  (paper Eq. (18), applied per axis)
//
// The output binary point follows dst.Fmt — the GCU's shiftable binary
// point, used to avoid overflow as magnitudes grow through the axis
// passes. dst must have the same shape as src and may not alias it.
func ConvAxis(dst, src *fixpoint.Grid32, axis int, k Kernel) {
	if dst.N != src.N {
		panic("gcu: ConvAxis shape mismatch")
	}
	if src.Fmt.Frac+k.Fmt.Frac < dst.Fmt.Frac {
		panic("gcu: ConvAxis output format finer than the accumulator")
	}
	shift := src.Fmt.Frac + k.Fmt.Frac - dst.Fmt.Frac
	gc := len(k.Coefs) / 2
	n := src.N[axis]
	nx, ny := src.N[0], src.N[1]
	stride := [3]int{1, nx, nx * ny}[axis]
	var outer [2]int
	switch axis {
	case 0:
		outer = [2]int{ny, src.N[2]}
	case 1:
		outer = [2]int{nx, src.N[2]}
	default:
		outer = [2]int{nx, ny}
	}
	obase := func(a, b int) int {
		switch axis {
		case 0:
			return nx * (a + ny*b)
		case 1:
			return a + nx*ny*b
		default:
			return a + nx*b
		}
	}
	line := make([]int32, n)
	for b := 0; b < outer[1]; b++ {
		for a := 0; a < outer[0]; a++ {
			base := obase(a, b)
			for i := 0; i < n; i++ {
				line[i] = src.Data[base+i*stride]
			}
			for i := 0; i < n; i++ {
				var acc int64
				for m := -gc; m <= gc; m++ {
					j := i - m
					j %= n
					if j < 0 {
						j += n
					}
					acc += int64(k.Coefs[m+gc]) * int64(line[j])
				}
				dst.Data[base+i*stride] = requant(acc, shift)
			}
		}
	}
}

// ConvSeparable applies kx, ky, kz along the three axes, returning a new
// grid in the same format as src.
func ConvSeparable(src *fixpoint.Grid32, kx, ky, kz Kernel) *fixpoint.Grid32 {
	t1 := fixpoint.NewGrid32(src.N[0], src.N[1], src.N[2], src.Fmt)
	t2 := fixpoint.NewGrid32(src.N[0], src.N[1], src.N[2], src.Fmt)
	ConvAxis(t1, src, 0, kx)
	ConvAxis(t2, t1, 1, ky)
	ConvAxis(t1, t2, 2, kz)
	return t1
}

// Restrict applies the fixed-point two-scale restriction along all axes;
// the J coefficients (multiples of 2^{1−p}) are exact in the register
// format, so the only rounding is the final requantization per point.
func Restrict(src *fixpoint.Grid32, j Kernel) *fixpoint.Grid32 {
	cur := src
	for axis := 0; axis < 3; axis++ {
		cur = restrictAxis(cur, axis, j)
	}
	return cur
}

func restrictAxis(src *fixpoint.Grid32, axis int, j Kernel) *fixpoint.Grid32 {
	half := len(j.Coefs) / 2
	n := src.N[axis]
	dn := src.N
	dn[axis] = n / 2
	dst := fixpoint.NewGrid32(dn[0], dn[1], dn[2], src.Fmt)
	forEach(src, dst, axis, func(get func(int) int32, set func(int, int32)) {
		for i := 0; i < n/2; i++ {
			var acc int64
			for m := -half; m <= half; m++ {
				idx := (2*i + m) % n
				if idx < 0 {
					idx += n
				}
				acc += int64(j.Coefs[m+half]) * int64(get(idx))
			}
			set(i, requant(acc, j.Fmt.Frac))
		}
	})
	return dst
}

// Prolong applies the fixed-point two-scale prolongation along all axes.
func Prolong(src *fixpoint.Grid32, j Kernel) *fixpoint.Grid32 {
	cur := src
	for axis := 0; axis < 3; axis++ {
		cur = prolongAxis(cur, axis, j)
	}
	return cur
}

func prolongAxis(src *fixpoint.Grid32, axis int, j Kernel) *fixpoint.Grid32 {
	half := len(j.Coefs) / 2
	n := src.N[axis]
	dn := src.N
	dn[axis] = n * 2
	dst := fixpoint.NewGrid32(dn[0], dn[1], dn[2], src.Fmt)
	forEach(src, dst, axis, func(get func(int) int32, set func(int, int32)) {
		for i := 0; i < 2*n; i++ {
			var acc int64
			// dst[i] = Σ_m J[i−2n']·src[n']; i−2n' = m ∈ [−half, half].
			for m := -half; m <= half; m++ {
				num := i - m
				if num&1 != 0 {
					continue // m must match the parity of i
				}
				np := (num / 2) % n
				if np < 0 {
					np += n
				}
				acc += int64(j.Coefs[m+half]) * int64(get(np))
			}
			set(i, requant(acc, j.Fmt.Frac))
		}
	})
	return dst
}

// forEach iterates all lines along axis, giving the body accessors for the
// source line (length src.N[axis]) and the destination line (whose length
// may differ along the axis).
func forEach(src, dst *fixpoint.Grid32, axis int, body func(get func(int) int32, set func(int, int32))) {
	sStride := [3]int{1, src.N[0], src.N[0] * src.N[1]}[axis]
	dStride := [3]int{1, dst.N[0], dst.N[0] * dst.N[1]}[axis]
	var outer [2]int
	switch axis {
	case 0:
		outer = [2]int{src.N[1], src.N[2]}
	case 1:
		outer = [2]int{src.N[0], src.N[2]}
	default:
		outer = [2]int{src.N[0], src.N[1]}
	}
	base := func(g *fixpoint.Grid32, a, b int) int {
		switch axis {
		case 0:
			return g.N[0] * (a + g.N[1]*b)
		case 1:
			return a + g.N[0]*g.N[1]*b
		default:
			return a + g.N[0]*b
		}
	}
	for b := 0; b < outer[1]; b++ {
		for a := 0; a < outer[0]; a++ {
			sb := base(src, a, b)
			db := base(dst, a, b)
			body(
				func(i int) int32 { return src.Data[sb+i*sStride] },
				func(i int, v int32) { dst.Data[db+i*dStride] = v },
			)
		}
	}
}

// requant shifts a 64-bit accumulator down by frac bits with round to
// nearest and saturation to 32 bits (the GCU's output binary-point shift).
func requant(acc int64, frac uint) int32 {
	if frac > 0 {
		half := int64(1) << (frac - 1)
		if acc >= 0 {
			acc = (acc + half) >> frac
		} else {
			acc = -((-acc + half) >> frac)
		}
	}
	if acc > 2147483647 {
		return 2147483647
	}
	if acc < -2147483648 {
		return -2147483648
	}
	return int32(acc)
}

// ConvCycles returns the GCU cycles to convolve a node's local grid:
// localPoints outputs × taps MACs per axis × 3 axes × m Gaussians at the
// sustained 12 MAC-lanes... the unit evaluates 12 grid points per cycle,
// each absorbing one incoming-block tap, so total MACs / 12.
func ConvCycles(localPoints, taps, m int) int {
	macs := localPoints * taps * 3 * m
	return (macs + PointsPerCycle - 1) / PointsPerCycle
}

// RestrictCycles returns cycles for the two-scale restriction of a local
// grid (output points × (p+1) taps × 3 axes / 12).
func RestrictCycles(localPoints, p int) int {
	outs := localPoints / 8 // downsampled by 2 per axis
	macs := outs * (p + 1) * 3
	c := (macs + PointsPerCycle - 1) / PointsPerCycle
	if c < 1 {
		c = 1
	}
	return c
}

// ProlongCycles returns cycles for the prolongation onto a local grid.
func ProlongCycles(localPoints, p int) int {
	macs := localPoints * (p + 1) * 3 / 2 // half the taps hit odd parity
	c := (macs + PointsPerCycle - 1) / PointsPerCycle
	if c < 1 {
		c = 1
	}
	return c
}
