package gcu

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/bspline"
	"tme4a/internal/fixpoint"
	"tme4a/internal/grid"
)

var coefFmt = fixpoint.Format{Frac: 24}

func randomFixedGrid(rng *rand.Rand, n int, f fixpoint.Format) (*fixpoint.Grid32, *grid.G) {
	fg := fixpoint.NewGrid32(n, n, n, f)
	gg := grid.New(n, n, n)
	for i := range gg.Data {
		v := rng.NormFloat64()
		gg.Data[i] = f.Value(f.Quantize(v)) // use the quantized value as truth
		fg.Data[i] = f.Quantize(v)
	}
	return fg, gg
}

func TestConvAxisMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gridFmt := fixpoint.Format{Frac: 20}
	fg, gg := randomFixedGrid(rng, 8, gridFmt)
	kf := make([]float64, 9)
	for i := range kf {
		kf[i] = rng.NormFloat64() * 0.3
	}
	k := QuantizeKernel(kf, coefFmt)
	// Use the quantized kernel values as the float reference.
	for i := range kf {
		kf[i] = coefFmt.Value(k.Coefs[i])
	}
	for axis := 0; axis < 3; axis++ {
		dst := fixpoint.NewGrid32(8, 8, 8, gridFmt)
		ConvAxis(dst, fg, axis, k)
		want := grid.New(8, 8, 8)
		grid.ConvAxis(want, gg, axis, kf)
		for i := range want.Data {
			got := gridFmt.Value(dst.Data[i])
			if math.Abs(got-want.Data[i]) > 2*gridFmt.Resolution() {
				t.Fatalf("axis %d idx %d: %g vs %g", axis, i, got, want.Data[i])
			}
		}
	}
}

func TestConvSeparableMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gridFmt := fixpoint.Format{Frac: 18}
	fg, gg := randomFixedGrid(rng, 8, gridFmt)
	kf := make([]float64, 7)
	for i := range kf {
		kf[i] = rng.NormFloat64() * 0.2
	}
	k := QuantizeKernel(kf, coefFmt)
	for i := range kf {
		kf[i] = coefFmt.Value(k.Coefs[i])
	}
	got := ConvSeparable(fg, k, k, k)
	want := grid.ConvSeparable(gg, kf, kf, kf)
	var maxErr, maxAbs float64
	for i := range want.Data {
		g := gridFmt.Value(got.Data[i])
		if e := math.Abs(g - want.Data[i]); e > maxErr {
			maxErr = e
		}
		if a := math.Abs(want.Data[i]); a > maxAbs {
			maxAbs = a
		}
	}
	// Three requantizations accumulate a few ULPs of the grid format.
	if maxErr > 20*gridFmt.Resolution() {
		t.Errorf("max error %g vs resolution %g", maxErr, gridFmt.Resolution())
	}
	if maxAbs == 0 {
		t.Fatal("degenerate test data")
	}
}

// TestRestrictExactForExactJ: the two-scale coefficients are multiples of
// 2^{1−p}, so fixed-point restriction introduces only the single output
// rounding; with grid data on coarse binary values it is exact.
func TestRestrictExactForExactJ(t *testing.T) {
	j := QuantizeKernel(bspline.TwoScale(6), coefFmt)
	// J entries must quantize exactly.
	J := bspline.TwoScale(6)
	for i, v := range J {
		if coefFmt.Value(j.Coefs[i]) != v {
			t.Fatalf("J[%d] not exact in Q24: %g vs %g", i, coefFmt.Value(j.Coefs[i]), v)
		}
	}
	gridFmt := fixpoint.Format{Frac: 20}
	rng := rand.New(rand.NewSource(3))
	fg := fixpoint.NewGrid32(8, 8, 8, gridFmt)
	gg := grid.New(8, 8, 8)
	for i := range gg.Data {
		// Multiples of 2^-5: after three axis passes the values are
		// multiples of 2^-20, still exact in the Q20 grid format.
		v := float64(rng.Intn(64)-32) / 32
		gg.Data[i] = v
		fg.Data[i] = gridFmt.Quantize(v)
	}
	got := Restrict(fg, j)
	want := grid.Restrict(gg, J)
	for i := range want.Data {
		if g := gridFmt.Value(got.Data[i]); math.Abs(g-want.Data[i]) > 1e-12 {
			t.Fatalf("idx %d: %g vs %g", i, g, want.Data[i])
		}
	}
	if got.N != [3]int{4, 4, 4} {
		t.Errorf("restricted shape %v", got.N)
	}
}

func TestProlongMatchesFloat(t *testing.T) {
	j := QuantizeKernel(bspline.TwoScale(6), coefFmt)
	J := bspline.TwoScale(6)
	gridFmt := fixpoint.Format{Frac: 20}
	rng := rand.New(rand.NewSource(4))
	fg, gg := randomFixedGrid(rng, 4, gridFmt)
	got := Prolong(fg, j)
	want := grid.Prolong(gg, J)
	if got.N != [3]int{8, 8, 8} {
		t.Fatalf("prolonged shape %v", got.N)
	}
	for i := range want.Data {
		if g := gridFmt.Value(got.Data[i]); math.Abs(g-want.Data[i]) > 10*gridFmt.Resolution() {
			t.Fatalf("idx %d: %g vs %g", i, g, want.Data[i])
		}
	}
}

func TestCycleModels(t *testing.T) {
	// 4³ local grid, g_c = 8 (17 taps), M = 4: 13,056 MACs → 1,088 cycles,
	// 1.81 µs at 0.6 GHz — the basis of the paper's 6 µs GCU phase after
	// network and synchronization overheads.
	c := ConvCycles(64, 17, 4)
	if c != 1088 {
		t.Errorf("ConvCycles = %d, want 1088", c)
	}
	if r := RestrictCycles(64, 6); r < 1 || r > 50 {
		t.Errorf("RestrictCycles = %d out of plausible range", r)
	}
	if p := ProlongCycles(64, 6); p < 1 || p > 120 {
		t.Errorf("ProlongCycles = %d out of plausible range", p)
	}
}
