// Package event provides the discrete-event simulation core used by the
// MDGRAPE-4A machine model: a time-ordered event queue, sequential
// resources with queuing, and busy-interval tracking that renders the
// paper's Fig. 9/10-style time charts.
//
// Simulated time is in nanoseconds (float64), matching the 10 ns
// measurement resolution the paper reports for CGP status transitions.
package event

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Sim is a discrete-event simulator.
type Sim struct {
	now   float64
	queue eventHeap
	seq   int64 // tie-breaker for deterministic ordering
	Chart *Chart
}

// NewSim returns a simulator at time zero with an empty chart.
func NewSim() *Sim {
	return &Sim{Chart: &Chart{}}
}

// Now returns the current simulation time (ns).
func (s *Sim) Now() float64 { return s.now }

// At schedules fn to run at absolute time t (clamped to now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	heap.Push(&s.queue, &event{t: t, seq: s.seq, fn: fn})
	s.seq++
}

// After schedules fn to run delay ns from now.
func (s *Sim) After(delay float64, fn func()) { s.At(s.now+delay, fn) }

// Run processes events until the queue is empty and returns the final time.
func (s *Sim) Run() float64 {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.t
		ev.fn()
	}
	return s.now
}

type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Resource models a unit that serves one request at a time (a pipeline, a
// network link, a GP core). Acquire returns the time the request actually
// starts given the earliest time it could start.
type Resource struct {
	nextFree float64
}

// Acquire reserves the resource for duration starting no earlier than at;
// it returns the actual start time.
func (r *Resource) Acquire(at, duration float64) (start float64) {
	if at > r.nextFree {
		start = at
	} else {
		start = r.nextFree
	}
	r.nextFree = start + duration
	return start
}

// NextFree returns the time the resource becomes idle.
func (r *Resource) NextFree() float64 { return r.nextFree }

// Interval is one busy span of one module on one node.
type Interval struct {
	Module string
	Node   int // −1 for machine-global modules (e.g. the root FPGA)
	Start  float64
	End    float64
}

// Chart collects busy intervals for rendering time charts.
type Chart struct {
	Intervals []Interval
}

// Add records a busy interval.
func (c *Chart) Add(module string, node int, start, end float64) {
	c.Intervals = append(c.Intervals, Interval{Module: module, Node: node, Start: start, End: end})
}

// ModuleSpan returns the earliest start and latest end over all intervals
// of the module (ok reports whether any were recorded).
func (c *Chart) ModuleSpan(module string) (start, end float64, ok bool) {
	for _, iv := range c.Intervals {
		if iv.Module != module {
			continue
		}
		if !ok || iv.Start < start {
			start = iv.Start
		}
		if !ok || iv.End > end {
			end = iv.End
		}
		ok = true
	}
	return start, end, ok
}

// ModuleBusy returns the summed busy time of the module across nodes.
func (c *Chart) ModuleBusy(module string) float64 {
	var t float64
	for _, iv := range c.Intervals {
		if iv.Module == module {
			t += iv.End - iv.Start
		}
	}
	return t
}

// Modules returns the distinct module names in first-appearance order.
func (c *Chart) Modules() []string {
	seen := map[string]bool{}
	var out []string
	for _, iv := range c.Intervals {
		if !seen[iv.Module] {
			seen[iv.Module] = true
			out = append(out, iv.Module)
		}
	}
	return out
}

// Render draws an ASCII Gantt chart (one row per module, aggregated over
// nodes) spanning [0, end] with the given number of columns — the textual
// analogue of the paper's Fig. 9.
func (c *Chart) Render(width int) string {
	_, end := c.Bounds()
	if end <= 0 || width < 10 {
		return ""
	}
	var b strings.Builder
	mods := c.Modules()
	longest := 0
	for _, m := range mods {
		if len(m) > longest {
			longest = len(m)
		}
	}
	for _, m := range mods {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, iv := range c.Intervals {
			if iv.Module != m {
				continue
			}
			lo := int(iv.Start / end * float64(width-1))
			hi := int(iv.End / end * float64(width-1))
			for i := lo; i <= hi && i < width; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", longest, m, string(row))
	}
	fmt.Fprintf(&b, "%-*s  0%*s\n", longest, "", width-1, fmt.Sprintf("%.1f us", end/1000))
	return b.String()
}

// Bounds returns the earliest start and latest end over all intervals.
func (c *Chart) Bounds() (start, end float64) {
	for i, iv := range c.Intervals {
		if i == 0 || iv.Start < start {
			start = iv.Start
		}
		if iv.End > end {
			end = iv.End
		}
	}
	return start, end
}

// SortedByStart returns a copy of the intervals ordered by start time.
func (c *Chart) SortedByStart() []Interval {
	out := append([]Interval(nil), c.Intervals...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
