package event

import (
	"math"
	"strings"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	end := s.Run()
	if end != 30 {
		t.Errorf("final time %g", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order %v", order)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(7, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim()
	var times []float64
	s.At(5, func() {
		times = append(times, s.Now())
		s.After(10, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 5 || times[1] != 15 {
		t.Errorf("times %v", times)
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	s := NewSim()
	var got float64 = -1
	s.At(10, func() {
		s.At(3, func() { got = s.Now() }) // in the past: clamp to now
	})
	s.Run()
	if got != 10 {
		t.Errorf("clamped event ran at %g, want 10", got)
	}
}

func TestResourceQueueing(t *testing.T) {
	var r Resource
	s1 := r.Acquire(0, 100)
	s2 := r.Acquire(10, 50)
	s3 := r.Acquire(500, 20)
	if s1 != 0 || s2 != 100 || s3 != 500 {
		t.Errorf("starts %g %g %g", s1, s2, s3)
	}
	if r.NextFree() != 520 {
		t.Errorf("next free %g", r.NextFree())
	}
}

func TestChartSpansAndBusy(t *testing.T) {
	c := &Chart{}
	c.Add("LRU", 0, 100, 200)
	c.Add("LRU", 1, 150, 260)
	c.Add("GCU", 0, 300, 400)
	start, end, ok := c.ModuleSpan("LRU")
	if !ok || start != 100 || end != 260 {
		t.Errorf("span %g %g %v", start, end, ok)
	}
	if busy := c.ModuleBusy("LRU"); math.Abs(busy-210) > 1e-12 {
		t.Errorf("busy %g", busy)
	}
	if _, _, ok := c.ModuleSpan("NONE"); ok {
		t.Error("span of missing module should report !ok")
	}
	mods := c.Modules()
	if len(mods) != 2 || mods[0] != "LRU" || mods[1] != "GCU" {
		t.Errorf("modules %v", mods)
	}
}

func TestChartRender(t *testing.T) {
	c := &Chart{}
	c.Add("NB", 0, 0, 1000)
	c.Add("GP", 0, 1000, 2000)
	out := c.Render(40)
	if !strings.Contains(out, "NB") || !strings.Contains(out, "GP") || !strings.Contains(out, "#") {
		t.Errorf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("expected 3 lines, got %d", len(lines))
	}
}
