// Package lru models the MDGRAPE-4A long-range unit (LRU): the dedicated
// hardware for B-spline charge assignment (CA) and back interpolation (BI)
// at interpolation order p = 6 (paper Sec. IV.A).
//
// The package has two faces:
//
//   - a functional datapath that reproduces the hardware arithmetic —
//     piecewise-polynomial B-spline evaluation quantized to a 24-bit
//     fractional fixed point, 32-bit tensor-product accumulation into grid
//     memory with accumulate-on-write, 32-bit force accumulation and 64-bit
//     potential accumulation — so the numeric effect of fixed point can be
//     measured against the float64 pmesh reference;
//
//   - a cycle model: each atom occupies the 36-cycle tensor stage, the two
//     LRUs per SoC split the grid along z, and the units run at the SoC
//     clock (0.6 GHz).
package lru

import (
	"tme4a/internal/bspline"
	"tme4a/internal/fixpoint"
	"tme4a/internal/vec"
)

// Order is the interpolation order fixed in the hardware.
const Order = 6

// CyclesPerAtom is the maximum tensor-stage occupancy per atom (36 cycles:
// 6² grid lines, 6 grids in parallel).
const CyclesPerAtom = 36

// UnitsPerSoC is the number of LRUs per chip (upper/lower z halves).
const UnitsPerSoC = 2

// Datapath carries the fixed-point formats of one configuration.
type Datapath struct {
	Coef  fixpoint.Format // B-spline coefficient format (Q24 in hardware)
	Grid  fixpoint.Format // grid charge format
	Pot   fixpoint.Format // grid potential format
	Force fixpoint.Format // force accumulation format (tunable binary point)
}

// DefaultDatapath returns the production formats: 24-bit fractional
// coefficients, charges in Q7.24 (|q| ≤ 127 e), potentials and forces with
// binary points tuned for biomolecular magnitudes.
func DefaultDatapath() Datapath {
	return Datapath{
		Coef:  fixpoint.Format{Frac: 24},
		Grid:  fixpoint.Format{Frac: 24},
		Pot:   fixpoint.Format{Frac: 14}, // range ±131072 kJ mol⁻¹ e⁻¹
		Force: fixpoint.Format{Frac: 14},
	}
}

// ChargeAssign spreads charges into a fixed-point grid over box geometry
// given by invH (grid points per nm per axis), reproducing Eq. (12) in the
// LRU's arithmetic. Positions are in nm; the grid uses dp.Grid format.
func ChargeAssign(dp Datapath, n [3]int, invH [3]float64, pos []vec.V, q []float64) *fixpoint.Grid32 {
	g := fixpoint.NewGrid32(n[0], n[1], n[2], dp.Grid)
	var wx, wy, wz, d [Order]float64
	for i, r := range pos {
		if q[i] == 0 {
			continue
		}
		mx := bspline.Weights(Order, r[0]*invH[0], wx[:], d[:])
		my := bspline.Weights(Order, r[1]*invH[1], wy[:], d[:])
		mz := bspline.Weights(Order, r[2]*invH[2], wz[:], d[:])
		// Quantize the per-axis polynomial outputs (24-bit fraction).
		var qx, qy, qz [Order]int32
		for k := 0; k < Order; k++ {
			qx[k] = dp.Coef.Quantize(wx[k])
			qy[k] = dp.Coef.Quantize(wy[k])
			qz[k] = dp.Coef.Quantize(wz[k])
		}
		qi := dp.Coef.Quantize(q[i])
		for c := 0; c < Order; c++ {
			qzc := fixpoint.MulShift(qi, qz[c], dp.Coef.Frac)
			for b := 0; b < Order; b++ {
				qyz := fixpoint.MulShift(qzc, qy[b], dp.Coef.Frac)
				for a := 0; a < Order; a++ {
					// Product in coefficient format; rescale to grid format.
					v := fixpoint.MulShift(qyz, qx[a], dp.Coef.Frac)
					v = rescale(v, dp.Coef, dp.Grid)
					g.AccumAt(mx+a, my+b, mz+c, v)
				}
			}
		}
	}
	return g
}

// Interpolate gathers per-atom potentials and forces from a fixed-point
// potential grid (Eq. (13)–(17)) using the LRU's 32-bit force accumulation
// and 64-bit total-potential accumulation. Forces are accumulated into f in
// kJ mol⁻¹ nm⁻¹; the return value is E = ½Σq_iφ_i in kJ/mol.
func Interpolate(dp Datapath, phi *fixpoint.Grid32, invH [3]float64, pos []vec.V, q []float64, f []vec.V) float64 {
	var wx, wy, wz, dx, dy, dz [Order]float64
	total := fixpoint.Acc64{Fmt: dp.Pot}
	for i, r := range pos {
		if q[i] == 0 {
			continue
		}
		mx := bspline.Weights(Order, r[0]*invH[0], wx[:], dx[:])
		my := bspline.Weights(Order, r[1]*invH[1], wy[:], dy[:])
		mz := bspline.Weights(Order, r[2]*invH[2], wz[:], dz[:])
		var qx, qy, qz, qdx, qdy, qdz [Order]int32
		for k := 0; k < Order; k++ {
			qx[k] = dp.Coef.Quantize(wx[k])
			qy[k] = dp.Coef.Quantize(wy[k])
			qz[k] = dp.Coef.Quantize(wz[k])
			qdx[k] = dp.Coef.Quantize(dx[k])
			qdy[k] = dp.Coef.Quantize(dy[k])
			qdz[k] = dp.Coef.Quantize(dz[k])
		}
		// 64-bit accumulation of the per-atom convolutions, then one
		// requantization — mirrors the tensor multiplier's accumulators.
		var pot, gx, gy, gz int64
		for c := 0; c < Order; c++ {
			for b := 0; b < Order; b++ {
				wyz := fixpoint.MulShift(qy[b], qz[c], dp.Coef.Frac)
				dyz := fixpoint.MulShift(qdy[b], qz[c], dp.Coef.Frac)
				wdz := fixpoint.MulShift(qy[b], qdz[c], dp.Coef.Frac)
				for a := 0; a < Order; a++ {
					v := int64(phi.Data[phi.Idx(mx+a, my+b, mz+c)])
					pot += v * int64(fixpoint.MulShift(qx[a], wyz, dp.Coef.Frac))
					gx += v * int64(fixpoint.MulShift(qdx[a], wyz, dp.Coef.Frac))
					gy += v * int64(fixpoint.MulShift(qx[a], dyz, dp.Coef.Frac))
					gz += v * int64(fixpoint.MulShift(qx[a], wdz, dp.Coef.Frac))
				}
			}
		}
		// pot/g* are in (Pot fmt)×(Coef fmt) — shift back to Pot fmt.
		potV := float64(pot>>dp.Coef.Frac) / dp.Pot.Scale()
		phiI := potV
		total.Add(dp.Pot.Quantize(0.5 * q[i] * phiI))
		if f != nil {
			gxv := float64(gx>>dp.Coef.Frac) / dp.Pot.Scale()
			gyv := float64(gy>>dp.Coef.Frac) / dp.Pot.Scale()
			gzv := float64(gz>>dp.Coef.Frac) / dp.Pot.Scale()
			f[i][0] -= dp.Force.Value(dp.Force.Quantize(q[i] * gxv * invH[0]))
			f[i][1] -= dp.Force.Value(dp.Force.Quantize(q[i] * gyv * invH[1]))
			f[i][2] -= dp.Force.Value(dp.Force.Quantize(q[i] * gzv * invH[2]))
		}
	}
	return total.Value()
}

// rescale converts a fixed-point value between formats.
func rescale(v int32, from, to fixpoint.Format) int32 {
	if from.Frac == to.Frac {
		return v
	}
	if from.Frac > to.Frac {
		return v >> (from.Frac - to.Frac)
	}
	return v << (to.Frac - from.Frac)
}

// Cycles returns the tensor-stage cycles to process natoms on one SoC
// (two LRUs splitting the load).
func Cycles(natoms int) int {
	perUnit := (natoms + UnitsPerSoC - 1) / UnitsPerSoC
	return perUnit * CyclesPerAtom
}

// TimeNs returns the wall time of one CA or BI pass over natoms on one SoC
// at the given clock (GHz).
func TimeNs(natoms int, clockGHz float64) float64 {
	return float64(Cycles(natoms)) / clockGHz
}
