package lru

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/fixpoint"
	"tme4a/internal/grid"
	"tme4a/internal/pmesh"
	"tme4a/internal/vec"
)

func randomSystem(rng *rand.Rand, n int, box vec.Box) ([]vec.V, []float64) {
	pos := make([]vec.V, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
		q[i] = rng.NormFloat64() * 0.8
	}
	return pos, q
}

// TestChargeAssignMatchesFloat: the fixed-point LRU charge assignment must
// agree with the double-precision pmesh reference to quantization accuracy.
func TestChargeAssignMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(5)
	n := [3]int{16, 16, 16}
	pos, q := randomSystem(rng, 100, box)
	dp := DefaultDatapath()
	invH := [3]float64{16 / box.L[0], 16 / box.L[1], 16 / box.L[2]}

	fg := ChargeAssign(dp, n, invH, pos, q)
	m := pmesh.NewMesher(Order, n, box)
	want := m.Assign(pos, q)

	var maxErr float64
	for i := range want.Data {
		if e := math.Abs(dp.Grid.Value(fg.Data[i]) - want.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	// Each grid point accumulates ≲100 quantized contributions; the error
	// stays within a few hundred ULPs of Q24.
	if maxErr > 500*dp.Grid.Resolution() {
		t.Errorf("max CA error %g vs Q24 resolution %g", maxErr, dp.Grid.Resolution())
	}
	if maxErr == 0 {
		t.Error("suspiciously exact — fixed-point path probably not exercised")
	}
}

// TestInterpolateMatchesFloat: fixed-point BI forces/energy vs pmesh.
func TestInterpolateMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	box := vec.Cubic(5)
	n := [3]int{16, 16, 16}
	pos, q := randomSystem(rng, 60, box)
	dp := DefaultDatapath()
	invH := [3]float64{16 / box.L[0], 16 / box.L[1], 16 / box.L[2]}

	// A synthetic potential grid with physically plausible magnitudes.
	phiF := grid.New(16, 16, 16)
	for i := range phiF.Data {
		phiF.Data[i] = rng.NormFloat64() * 50
	}
	phiQ := fixpoint.NewGrid32(16, 16, 16, dp.Pot)
	phiQ.QuantizeInto(phiF.Data)
	// Use the quantized grid as the float reference input so the comparison
	// isolates the datapath arithmetic.
	for i := range phiF.Data {
		phiF.Data[i] = dp.Pot.Value(phiQ.Data[i])
	}

	m := pmesh.NewMesher(Order, n, box)
	fWant := make([]vec.V, len(pos))
	eWant := m.Interpolate(phiF, pos, q, fWant)

	fGot := make([]vec.V, len(pos))
	eGot := Interpolate(dp, phiQ, invH, pos, q, fGot)

	var fScale float64
	for _, f := range fWant {
		fScale = math.Max(fScale, f.Norm())
	}
	for i := range fWant {
		if d := fGot[i].Sub(fWant[i]).Norm(); d > 1e-4*fScale+1e-3 {
			t.Fatalf("atom %d: force %v vs %v", i, fGot[i], fWant[i])
		}
	}
	if math.Abs(eGot-eWant) > 1e-4*math.Abs(eWant)+1e-3 {
		t.Errorf("energy %g vs %g", eGot, eWant)
	}
}

func TestChargeConservationFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	box := vec.Cubic(4)
	pos, q := randomSystem(rng, 50, box)
	dp := DefaultDatapath()
	fg := ChargeAssign(dp, [3]int{16, 16, 16}, [3]float64{4, 4, 4}, pos, q)
	var total float64
	for _, v := range fg.Data {
		total += dp.Grid.Value(v)
	}
	var want float64
	for _, qi := range q {
		want += qi
	}
	// Quantized weights per atom sum to 1 within 216 ULPs.
	if math.Abs(total-want) > float64(len(pos))*300*dp.Grid.Resolution() {
		t.Errorf("total grid charge %g, want %g", total, want)
	}
}

func TestCycleModel(t *testing.T) {
	// 157 atoms split over 2 LRUs at 36 cycles each: 2,844 cycles
	// → 4.74 µs at 0.6 GHz per pass, ~9.5 µs CA+BI (paper: ~10 µs).
	if c := Cycles(157); c != 79*36 {
		t.Errorf("Cycles(157) = %d, want %d", c, 79*36)
	}
	tot := 2 * TimeNs(157, 0.6)
	if tot < 8000 || tot > 11000 {
		t.Errorf("CA+BI time %.0f ns, paper reports ~10 µs", tot)
	}
}
