package fpgafft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"tme4a/internal/fixpoint"
	"tme4a/internal/grid"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
)

func testUnit() (*Unit, *spme.Solver) {
	box := vec.Cubic(9.97270)
	s := spme.New(spme.Params{
		Alpha: spme.AlphaFromRTol(1.2, 1e-4) / 2, // top level α/2
		Rc:    1.2,
		Order: 6,
		N:     [3]int{16, 16, 16},
	}, box)
	return New(s.Green()), s
}

func TestCFFT16MatchesNaiveDFT(t *testing.T) {
	u, _ := testUnit()
	rng := rand.New(rand.NewSource(1))
	var x [Side]complex64
	for i := range x {
		x[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	want := make([]complex128, Side)
	for k := 0; k < Side; k++ {
		for n := 0; n < Side; n++ {
			theta := -2 * math.Pi * float64(k*n) / Side
			want[k] += complex128(x[n]) * cmplx.Exp(complex(0, theta))
		}
	}
	got := x
	u.cfft16(&got, false)
	for k := 0; k < Side; k++ {
		if cmplx.Abs(complex128(got[k])-want[k]) > 1e-4 {
			t.Fatalf("k=%d: got %v want %v", k, got[k], want[k])
		}
	}
}

func TestCFFT16RoundTrip(t *testing.T) {
	u, _ := testUnit()
	rng := rand.New(rand.NewSource(2))
	var x, orig [Side]complex64
	for i := range x {
		x[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
		orig[i] = x[i]
	}
	u.cfft16(&x, false)
	u.cfft16(&x, true)
	for i := range x {
		if cmplx.Abs(complex128(x[i]-orig[i])) > 1e-5 {
			t.Fatalf("roundtrip mismatch at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

// TestSolveMatchesDoublePrecisionSPME: the float32 FPGA solve must match
// the float64 software solve to single-precision accuracy.
func TestSolveMatchesDoublePrecisionSPME(t *testing.T) {
	u, s := testUnit()
	rng := rand.New(rand.NewSource(3))
	q := grid.New(16, 16, 16)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64() * 0.5
	}
	want := s.PotentialGrid(q)
	got := u.Solve(q.Data)
	var maxAbs float64
	for _, v := range want.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	for i := range got {
		if math.Abs(got[i]-want.Data[i]) > 1e-5*maxAbs {
			t.Fatalf("idx %d: fpga %g vs spme %g (scale %g)", i, got[i], want.Data[i], maxAbs)
		}
	}
}

func TestSolveFixedQuantizes(t *testing.T) {
	u, _ := testUnit()
	rng := rand.New(rand.NewSource(4))
	inFmt := fixpoint.Format{Frac: 24}
	outFmt := fixpoint.Format{Frac: 14}
	q := fixpoint.NewGrid32(16, 16, 16, inFmt)
	data := make([]float64, 16*16*16)
	for i := range data {
		data[i] = rng.NormFloat64() * 0.3
	}
	q.QuantizeInto(data)
	phi := u.SolveFixed(q, outFmt)
	want := u.Solve(q.Float())
	for i := range want {
		if math.Abs(outFmt.Value(phi.Data[i])-want[i]) > outFmt.Resolution() {
			t.Fatalf("idx %d: %g vs %g", i, outFmt.Value(phi.Data[i]), want[i])
		}
	}
}

func TestSolveTime(t *testing.T) {
	if got := SolveTimeNs(); math.Abs(got-2112) > 1e-9 {
		t.Errorf("solve time %g ns, want 2112 (330 cycles @ 156.25 MHz)", got)
	}
}

func BenchmarkSolve16(b *testing.B) {
	u, _ := testUnit()
	rng := rand.New(rand.NewSource(1))
	q := make([]float64, Side*Side*Side)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Solve(q)
	}
}
