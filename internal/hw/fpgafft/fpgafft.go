// Package fpgafft models the top-level convolution hardware on the TMENW
// root FPGA (paper Sec. IV.C): a 16×16×16 3D-FFT-based SPME solve built
// from four CFFT16 units (radix-4, 16-point complex FFTs in single
// precision), post/preprocess units that multiply the lattice Green
// function, and an "orthogonal memory" providing transposed access between
// the axis passes.
//
// Functional face: the full solve in float32 (complex64), with the radix-4
// CFFT16 dataflow implemented explicitly.
//
// Cycle face: 330 cycles at 156.25 MHz = 2.112 µs per solve, independent of
// content (the pipeline is fully unrolled in hardware).
package fpgafft

import (
	"fmt"
	"math"

	"tme4a/internal/fixpoint"
)

// Side is the grid edge handled by the hardware.
const Side = 16

// Cycles and ClockMHz give the published timing: 330 cycles at 156.25 MHz.
const (
	Cycles   = 330
	ClockMHz = 156.25
)

// SolveTimeNs returns the fixed solve latency (2112 ns).
func SolveTimeNs() float64 { return Cycles / (ClockMHz / 1e3) }

// Unit is the top-level grid-potential solver with its Green-function
// coefficient memory loaded.
type Unit struct {
	green []float32 // 16³ lattice Green function
	// twiddle factors for the radix-4 CFFT16.
	tw [Side]complex64
}

// New loads the coefficient memory from a float64 Green function of a
// 16³ SPME solver (see spme.Solver.Green).
func New(green []float64) *Unit {
	if len(green) != Side*Side*Side {
		panic(fmt.Sprintf("fpgafft: green function has %d points, want %d", len(green), Side*Side*Side))
	}
	u := &Unit{green: make([]float32, len(green))}
	for i, v := range green {
		u.green[i] = float32(v)
	}
	for k := 0; k < Side; k++ {
		theta := -2 * math.Pi * float64(k) / Side
		u.tw[k] = complex(float32(math.Cos(theta)), float32(math.Sin(theta)))
	}
	return u
}

// cfft16 performs an in-place 16-point complex FFT in single precision
// using two radix-4 stages — the CFFT16 flash unit's dataflow (144 FP
// adders + 16 FP multiply-adders evaluate this combinationally).
func (u *Unit) cfft16(x *[Side]complex64, inverse bool) {
	tw := u.tw
	conj := func(c complex64) complex64 { return complex(real(c), -imag(c)) }
	w := func(k int) complex64 {
		c := tw[k%Side]
		if inverse {
			return conj(c)
		}
		return c
	}
	// Stage 1: radix-4 butterflies over stride 4, DIF.
	var j complex64 = complex(0, -1)
	if inverse {
		j = complex(0, 1)
	}
	var s1 [Side]complex64
	for n := 0; n < 4; n++ {
		a, b, c, d := x[n], x[n+4], x[n+8], x[n+12]
		t0 := a + c
		t1 := a - c
		t2 := b + d
		t3 := (b - d) * j
		s1[n] = t0 + t2
		s1[n+4] = (t1 + t3) * w(n)
		s1[n+8] = (t0 - t2) * w(2*n)
		s1[n+12] = (t1 - t3) * w(3*n)
	}
	// Stage 2: radix-4 butterflies within each group of 4, then digit-
	// reversed output ordering.
	var out [Side]complex64
	for g := 0; g < 4; g++ {
		a, b, c, d := s1[4*g], s1[4*g+1], s1[4*g+2], s1[4*g+3]
		t0 := a + c
		t1 := a - c
		t2 := b + d
		t3 := (b - d) * j
		out[g] = t0 + t2
		out[g+4] = t1 + t3
		out[g+8] = t0 - t2
		out[g+12] = t1 - t3
	}
	*x = out
	if inverse {
		for i := range x {
			x[i] /= Side
		}
	}
}

// Solve computes the top-level grid potentials from the top-level grid
// charges: Φ = IFFT(G̃·FFT(Q)), all in single precision. Input and output
// are float64 slices of 16³ values (x-fastest layout); the conversion
// mirrors the fixed→float and float→fixed conversions the hardware
// performs at the leaf interface.
func (u *Unit) Solve(q []float64) []float64 {
	if len(q) != Side*Side*Side {
		panic("fpgafft: charge grid size mismatch")
	}
	data := make([]complex64, Side*Side*Side)
	for i, v := range q {
		data[i] = complex(float32(v), 0)
	}
	u.transform3(data, false)
	for i := range data {
		data[i] *= complex(u.green[i], 0)
	}
	u.transform3(data, true)
	out := make([]float64, len(data))
	for i, v := range data {
		out[i] = float64(real(v))
	}
	return out
}

// SolveFixed is Solve with fixed-point input/output conversion at the given
// format — the path actually taken in hardware (grid data arrives from the
// SoCs in 32-bit fixed point).
func (u *Unit) SolveFixed(q *fixpoint.Grid32, outFmt fixpoint.Format) *fixpoint.Grid32 {
	if q.N != [3]int{Side, Side, Side} {
		panic("fpgafft: fixed grid size mismatch")
	}
	phi := u.Solve(q.Float())
	out := fixpoint.NewGrid32(Side, Side, Side, outFmt)
	out.QuantizeInto(phi)
	return out
}

// transform3 runs 1D CFFT16 passes along x, y, z (the orthogonal memory
// provides the transposed access pattern between passes).
func (u *Unit) transform3(data []complex64, inverse bool) {
	var line [Side]complex64
	// x lines.
	for z := 0; z < Side; z++ {
		for y := 0; y < Side; y++ {
			base := Side * (y + Side*z)
			copy(line[:], data[base:base+Side])
			u.cfft16(&line, inverse)
			copy(data[base:base+Side], line[:])
		}
	}
	// y lines.
	for z := 0; z < Side; z++ {
		for x := 0; x < Side; x++ {
			base := x + Side*Side*z
			for y := 0; y < Side; y++ {
				line[y] = data[base+Side*y]
			}
			u.cfft16(&line, inverse)
			for y := 0; y < Side; y++ {
				data[base+Side*y] = line[y]
			}
		}
	}
	// z lines.
	for y := 0; y < Side; y++ {
		for x := 0; x < Side; x++ {
			base := x + Side*y
			for z := 0; z < Side; z++ {
				line[z] = data[base+Side*Side*z]
			}
			u.cfft16(&line, inverse)
			for z := 0; z < Side; z++ {
				data[base+Side*Side*z] = line[z]
			}
		}
	}
}
