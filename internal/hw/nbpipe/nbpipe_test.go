package nbpipe

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/nonbond"
	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

func TestTableAccuracy(t *testing.T) {
	// Segmented quadratic interpolation of smooth radial kernels reaches
	// ~1e-6 relative accuracy with 256 entries/octave — the hardware's
	// design point for "indistinguishable from analytic" forces.
	f := func(r2 float64) float64 { r := math.Sqrt(r2); return math.Erfc(2.3*r) / r }
	tab := NewTable(f, 1e-4, 2.25, 256)
	rng := rand.New(rand.NewSource(1))
	var maxRel float64
	for i := 0; i < 20000; i++ {
		r2 := 1e-4 + rng.Float64()*(2.2499-1e-4)
		got := tab.Eval(r2)
		want := f(r2)
		if rel := math.Abs(got-want) / math.Abs(want); rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 1e-6 {
		t.Errorf("max relative table error %g, want < 1e-6", maxRel)
	}
}

func TestTableResolutionTradeoff(t *testing.T) {
	// Halving the resolution must increase the error by ~8× (h³ scaling of
	// quadratic interpolation).
	f := func(r2 float64) float64 { return 1 / (r2 * r2 * r2) }
	errAt := func(perSeg int) float64 {
		tab := NewTable(f, 0.01, 2.25, perSeg)
		var m float64
		for i := 1; i < 4000; i++ {
			r2 := 0.011 + float64(i)*0.0005
			if rel := math.Abs(tab.Eval(r2)-f(r2)) / f(r2); rel > m {
				m = rel
			}
		}
		return m
	}
	e64, e128 := errAt(64), errAt(128)
	ratio := e64 / e128
	if ratio < 4 || ratio > 16 {
		t.Errorf("resolution scaling %0.1f×, expected ~8× (errors %g, %g)", ratio, e64, e128)
	}
}

func TestOutOfRangeFallsBack(t *testing.T) {
	f := func(r2 float64) float64 { return r2 }
	tab := NewTable(f, 0.01, 1, 16)
	if got := tab.Eval(5); got != 5 {
		t.Errorf("out-of-range eval %g, want analytic 5", got)
	}
	if got := tab.Eval(1e-6); got != 1e-6 {
		t.Errorf("below-range eval %g, want analytic", got)
	}
}

// TestPipelineMatchesAnalyticShortRange runs the full short-range force
// computation through the table datapath and compares against the
// analytic nonbond module on a water box.
func TestPipelineMatchesAnalyticShortRange(t *testing.T) {
	box := water.CubicBoxFor(216)
	sys := water.Build(6, 6, 6, box, 5)
	alpha, rc := 2.75, 1.0
	pipe := NewPipeline(alpha, rc, 256)

	fAnalytic := make([]vec.V, sys.N())
	res := nonbond.Compute(sys.Box, sys.Pos, sys.Q, sys.LJ, alpha, rc, sys.Excl, fAnalytic)

	fTable := make([]vec.V, sys.N())
	eTable := computeWithPipeline(pipe, sys.Box, sys.Pos, sys.Q, sys.LJ, rc, sys.Excl, fTable)

	var num, den float64
	for i := range fAnalytic {
		num += fTable[i].Sub(fAnalytic[i]).Norm2()
		den += fAnalytic[i].Norm2()
	}
	relF := math.Sqrt(num / den)
	if relF > 1e-5 {
		t.Errorf("table-pipeline force error %g vs analytic", relF)
	}
	eAnalytic := res.ECoul + res.ELJ
	if math.Abs(eTable-eAnalytic) > 1e-5*math.Abs(eAnalytic) {
		t.Errorf("table-pipeline energy %g vs analytic %g", eTable, eAnalytic)
	}
}

// computeWithPipeline is a reference short-range driver over the table
// datapath (the machine model charges its cycles via TimeNs).
func computeWithPipeline(p *Pipeline, box vec.Box, pos []vec.V, q []float64, lj *nonbond.LJ, rc float64, excl *topol.Exclusions, f []vec.V) float64 {
	var energy float64
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			if excl.Excluded(i, j) {
				continue
			}
			d := box.MinImage(pos[i].Sub(pos[j]))
			r2 := d.Norm2()
			if r2 > rc*rc {
				continue
			}
			var sigma2, eps float64
			if lj.Eps[i] != 0 && lj.Eps[j] != 0 {
				s := 0.5 * (lj.Sigma[i] + lj.Sigma[j])
				sigma2 = s * s
				eps = math.Sqrt(lj.Eps[i] * lj.Eps[j])
			}
			fr, e := p.PairForce(r2, q[i]*q[j]*units.Coulomb, sigma2, eps)
			// The Coulomb table returns per-unit-charge-product values; the
			// conversion factor rides on qq above, LJ is already absolute.
			energy += e
			fv := d.Scale(fr)
			f[i] = f[i].Add(fv)
			f[j] = f[j].Sub(fv)
		}
	}
	return energy
}

func TestCycleModel(t *testing.T) {
	// 57,000 pairs/node (the paper's 80k-atom workload): 891 cycles
	// ≈ 1.1 µs — far below the GP bonded phase, which is why the paper's
	// bottleneck analysis points at the GP cores.
	if c := CyclesForPairs(57000); c != (57000+63)/64 {
		t.Errorf("cycles %d", c)
	}
	if ns := TimeNs(57000); ns < 1000 || ns > 1300 {
		t.Errorf("57k pairs take %.0f ns, expected ~1.1 µs", ns)
	}
}

func BenchmarkTableEval(b *testing.B) {
	f := func(r2 float64) float64 { r := math.Sqrt(r2); return math.Erfc(2.3*r) / r }
	tab := NewTable(f, 1e-4, 2.25, 256)
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab.Eval(0.5 + float64(i%100)*0.01)
		}
	})
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f(0.5 + float64(i%100)*0.01)
		}
	})
}
