// Package nbpipe models the MDGRAPE-4A nonbond pipelines: 64 dedicated
// units per SoC evaluating one pair interaction per cycle at 0.8 GHz
// (paper Sec. II).
//
// Like the GRAPE family before it, the pipeline evaluates the radial force
// and energy functions by segmented table lookup with polynomial
// interpolation in r² (avoiding the square root and transcendentals in
// hardware). This package implements that datapath functionally — tables
// for the erfc-screened Coulomb and Lennard-Jones kernels, quadratic
// interpolation in log-segmented r² — and provides the cycle model. Tests
// quantify the table-accuracy against the analytic kernels, the same
// trade the hardware designers made.
package nbpipe

import (
	"math"
)

// Table is a segmented interpolation table for a radial function f(r²),
// covering [r2min, r2max] with log₂-spaced segments of n entries each and
// quadratic interpolation — the classic GRAPE/MDGRAPE function-evaluator
// layout.
type Table struct {
	r2min, r2max float64
	segBase      int // exponent of the first segment
	perSeg       int
	// coef[k] holds (c0, c1, c2) for entry k: f ≈ c0 + c1·t + c2·t²,
	// t ∈ [0,1) the position within the entry.
	coef [][3]float64
	f    func(r2 float64) float64
}

// NewTable builds a table for f over [r2min, r2max] with perSeg entries in
// each binary octave of r².
func NewTable(f func(r2 float64) float64, r2min, r2max float64, perSeg int) *Table {
	if r2min <= 0 || r2max <= r2min {
		panic("nbpipe: invalid table range")
	}
	t := &Table{r2min: r2min, r2max: r2max, perSeg: perSeg, f: f}
	t.segBase = int(math.Floor(math.Log2(r2min)))
	segTop := int(math.Ceil(math.Log2(r2max)))
	nseg := segTop - t.segBase
	t.coef = make([][3]float64, nseg*perSeg)
	for s := 0; s < nseg; s++ {
		lo := math.Pow(2, float64(t.segBase+s))
		width := lo / float64(perSeg) // entry width within the octave
		for e := 0; e < perSeg; e++ {
			x0 := lo + float64(e)*width
			// Fit the quadratic through f at t = 0, ½, 1.
			f0 := f(x0)
			fh := f(x0 + width/2)
			f1 := f(x0 + width)
			c0 := f0
			c1 := -3*f0 + 4*fh - f1
			c2 := 2*f0 - 4*fh + 2*f1
			t.coef[s*perSeg+e] = [3]float64{c0, c1, c2}
		}
	}
	return t
}

// Eval evaluates the table at r². Out-of-range arguments fall back to the
// analytic function (the pipeline raises a flag and the GP handles them;
// they are rare in practice).
func (t *Table) Eval(r2 float64) float64 {
	if r2 < t.r2min || r2 >= t.r2max {
		return t.f(r2)
	}
	exp := int(math.Floor(math.Log2(r2)))
	s := exp - t.segBase
	lo := math.Pow(2, float64(exp))
	width := lo / float64(t.perSeg)
	pos := (r2 - lo) / width
	e := int(pos)
	if e >= t.perSeg {
		e = t.perSeg - 1
	}
	tt := pos - float64(e)
	c := t.coef[s*t.perSeg+e]
	return c[0] + tt*(c[1]+tt*c[2])
}

// Entries returns the total number of table entries (hardware memory
// footprint: entries × 3 coefficients).
func (t *Table) Entries() int { return len(t.coef) }

// Pipeline is a functional model of one SoC's nonbond pipeline array with
// its loaded function tables.
type Pipeline struct {
	// CoulF(r²) = erfc(αr)/r³ + (2α/√π)e^{−α²r²}/r², the radial Coulomb
	// force factor such that F = q_i q_j · CoulF · d⃗.
	CoulF *Table
	// CoulE(r²) = erfc(αr)/r.
	CoulE *Table
	// LJF6(r²) = 1/r⁸ and LJF12(r²) = 1/r¹⁴ force factors; energies use
	// LJE6 = 1/r⁶, LJE12 = 1/r¹².
	LJF6, LJF12, LJE6, LJE12 *Table

	Alpha float64
	Rc    float64
}

// PipesPerSoC and ClockGHz are the hardware constants.
const (
	PipesPerSoC = 64
	ClockGHz    = 0.8
)

// NewPipeline loads tables for the given Ewald splitting parameter and
// cutoff. perSeg controls table resolution (the accuracy/memory trade).
func NewPipeline(alpha, rc float64, perSeg int) *Pipeline {
	twoOverSqrtPi := 2 / math.Sqrt(math.Pi)
	r2min := 1e-4 // 0.01 nm — below any physical contact
	r2max := rc * rc * 1.0001
	return &Pipeline{
		Alpha: alpha,
		Rc:    rc,
		CoulF: NewTable(func(r2 float64) float64 {
			r := math.Sqrt(r2)
			return math.Erfc(alpha*r)/(r2*r) + alpha*twoOverSqrtPi*math.Exp(-alpha*alpha*r2)/r2
		}, r2min, r2max, perSeg),
		CoulE: NewTable(func(r2 float64) float64 {
			r := math.Sqrt(r2)
			return math.Erfc(alpha*r) / r
		}, r2min, r2max, perSeg),
		LJF6:  NewTable(func(r2 float64) float64 { return 1 / (r2 * r2 * r2 * r2) }, r2min, r2max, perSeg),
		LJF12: NewTable(func(r2 float64) float64 { p := r2 * r2 * r2; return 1 / (p * p * r2) }, r2min, r2max, perSeg),
		LJE6:  NewTable(func(r2 float64) float64 { return 1 / (r2 * r2 * r2) }, r2min, r2max, perSeg),
		LJE12: NewTable(func(r2 float64) float64 { p := r2 * r2 * r2; return 1 / (p * p) }, r2min, r2max, perSeg),
	}
}

// PairForce returns the radial force factor and energy of one pair through
// the table datapath: F⃗ = fr·d⃗ for charges qi, qj and Lorentz–Berthelot
// LJ parameters (eps = 0 disables LJ).
func (p *Pipeline) PairForce(r2, qq, sigma2, eps float64) (fr, energy float64) {
	if qq != 0 {
		e := qq * p.CoulE.Eval(r2)
		fr += qq * p.CoulF.Eval(r2)
		energy += e
	}
	if eps != 0 {
		s6 := sigma2 * sigma2 * sigma2
		s12 := s6 * s6
		energy += 4 * eps * (s12*p.LJE12.Eval(r2) - s6*p.LJE6.Eval(r2))
		fr += 24 * eps * (2*s12*p.LJF12.Eval(r2) - s6*p.LJF6.Eval(r2))
	}
	return fr, energy
}

// CyclesForPairs returns the pipeline-array cycles to evaluate n pair
// interactions on one SoC (one pair per pipeline per cycle).
//
// The hardware keeps its 64 pipelines busy by giving each a disjoint
// spatial region of the cell decomposition, with cross-boundary pair
// forces accumulated in a separate reduction phase. The software engine
// mirrors this exactly: celllist.ForEachPairInSlab partitions cells into
// worker-owned z-slabs, and nonbond defers cross-slab reaction forces to
// a second pass applied in fixed slab order — so the cycle count modeled
// here and the software's parallel decomposition count the same pairs in
// the same partitioning scheme.
func CyclesForPairs(n int) int {
	return (n + PipesPerSoC - 1) / PipesPerSoC
}

// TimeNs returns the wall time for n pair evaluations on one SoC.
func TimeNs(n int) float64 {
	return float64(CyclesForPairs(n)) / ClockGHz
}
