package octree

import "testing"

func TestTopology(t *testing.T) {
	c := MDGRAPE4A(0)
	if c.NSoCs() != 512 {
		t.Errorf("SoC count %d, want 512", c.NSoCs())
	}
	if c.Boards/c.BoardsPerLeaf != c.Leaves {
		t.Errorf("leaf fan-in inconsistent: %d boards / %d per leaf != %d leaves",
			c.Boards, c.BoardsPerLeaf, c.Leaves)
	}
}

func TestGatherScalesWithPayload(t *testing.T) {
	c := MDGRAPE4A(0)
	small := c.GatherTimeNs(32)
	big := c.GatherTimeNs(3200)
	if big <= small {
		t.Errorf("gather time did not grow with payload: %g vs %g", small, big)
	}
	// The dominant term is the root ingress: 512·bytes/5 ns.
	rootIngress := 512.0 * 3200 / 5
	if big < rootIngress {
		t.Errorf("gather %g ns below root serialization bound %g ns", big, rootIngress)
	}
}

func TestRoundTripWithinPaperBound(t *testing.T) {
	// With the production calibration (~1.2 µs/stage software+protocol
	// overhead) the 16³ top-level roundtrip must be below the measured
	// "less than 20 µs" and above the raw-hardware floor.
	c := MDGRAPE4A(1200)
	bytesPerSoC := 32.0 // 4096 points × 4 B / 512 SoCs
	rt := c.RoundTripNs(bytesPerSoC, 2112)
	if rt >= 20000 {
		t.Errorf("roundtrip %.0f ns, paper reports < 20 µs", rt)
	}
	if rt < 5000 {
		t.Errorf("roundtrip %.0f ns implausibly fast", rt)
	}
}

func TestZeroOverheadFloor(t *testing.T) {
	c := MDGRAPE4A(0)
	rt := c.RoundTripNs(32, 2112)
	// Raw hardware floor ≈ 11.1 µs: dominated by the root's ingress
	// serialization (512 SoCs × 32 B at 5 B/ns each way) plus the FFT.
	if rt > 12000 || rt < 9000 {
		t.Errorf("raw floor %g ns outside expected 9–12 µs", rt)
	}
}
