// Package octree models the TME top-level network (TMENW) of MDGRAPE-4A
// (paper Sec. IV.C and Fig. 7): the tree that gathers top-level grid
// charges from all 512 SoCs to the root FPGA and scatters the grid
// potentials back.
//
// Topology: 8 SoCs → IO FPGA → control FPGA per board (64 boards);
// 8 boards → leaf FPGA (8 leaves); 8 leaves → root FPGA. The optical links
// run 4 lanes of 10.3125 Gbps, i.e. 40 Gbps (5 bytes/ns) after 64B66B
// decoding.
//
// The per-stage software/protocol overhead is a calibrated parameter: the
// paper reports the measured roundtrip "less than 20 µs" and attributes
// the gap from raw link numbers to transfer protocol latency and CGP
// software management; the default calibration reproduces that measurement
// (see internal/hw/machine/calibration.go).
package octree

// Config describes the TMENW geometry and link characteristics.
type Config struct {
	SoCsPerBoard  int
	Boards        int
	BoardsPerLeaf int
	Leaves        int
	LinkBandwidth float64 // bytes/ns (5 = 40 Gbps)
	StageLatency  float64 // ns: hardware forwarding latency per stage
	StageOverhead float64 // ns: calibrated protocol/software overhead per stage
	GatherStages  int     // SoC→control, control→leaf, leaf→root
}

// MDGRAPE4A returns the production TMENW configuration with the published
// hardware constants; StageOverhead is the calibrated term.
func MDGRAPE4A(stageOverheadNs float64) Config {
	return Config{
		SoCsPerBoard:  8,
		Boards:        64,
		BoardsPerLeaf: 8,
		Leaves:        8,
		LinkBandwidth: 5.0,
		StageLatency:  250,
		StageOverhead: stageOverheadNs,
		GatherStages:  3,
	}
}

// NSoCs returns the total SoC count served by the tree.
func (c Config) NSoCs() int { return c.SoCsPerBoard * c.Boards }

// GatherTimeNs returns the time to gather bytesPerSoC from every SoC to
// the root. Links at the same stage run in parallel; within a stage the
// children of one parent serialize on the parent's ingress. With
// GatherStages == 2 the model evaluates the paper's Sec. VI.B proposal of
// connecting SoCs directly to the leaf FPGAs (dropping the board-level
// control-FPGA hop).
func (c Config) GatherTimeNs(bytesPerSoC float64) float64 {
	perBoard := float64(c.SoCsPerBoard) * bytesPerSoC
	// Leaf ingress absorbs all its boards' data over parallel links.
	t2 := c.StageLatency + c.StageOverhead + float64(c.BoardsPerLeaf)*perBoard/c.LinkBandwidth
	// Root ingress absorbs all leaf data.
	perLeaf := float64(c.BoardsPerLeaf) * perBoard
	t3 := c.StageLatency + c.StageOverhead + float64(c.Leaves)*perLeaf/c.LinkBandwidth
	if c.GatherStages <= 2 {
		return t2 + t3
	}
	// Stage 1: 8 SoCs serialize into the board's control FPGA.
	t1 := c.StageLatency + c.StageOverhead + float64(c.SoCsPerBoard)*bytesPerSoC/c.LinkBandwidth
	return t1 + t2 + t3
}

// ScatterTimeNs returns the time to broadcast bytesPerSoC back down the
// tree (symmetric to gather).
func (c Config) ScatterTimeNs(bytesPerSoC float64) float64 {
	return c.GatherTimeNs(bytesPerSoC)
}

// RoundTripNs returns gather + compute + scatter for one top-level solve.
func (c Config) RoundTripNs(bytesPerSoC, computeNs float64) float64 {
	return c.GatherTimeNs(bytesPerSoC) + computeNs + c.ScatterTimeNs(bytesPerSoC)
}
