package machine

import (
	"math"
	"sort"

	"tme4a/internal/core"
	"tme4a/internal/hw/gcu"
	"tme4a/internal/hw/lru"
	"tme4a/internal/hw/torus"
)

// EventLRReport is the outcome of the event-level long-range simulation:
// per-node completion times of the GCU chain, exposing the load-imbalance
// waiting that the paper observes ("the apparent duration of the GCU
// activities includes the waiting for data from the other nodes").
type EventLRReport struct {
	CAEndNs       []float64 // per node
	RestrictEndNs []float64
	ConvEndNs     []float64
	// Summary statistics of the convolution completion (ns).
	ConvMean, ConvP50, ConvMax float64
	// StragglerNs is the max−mean completion gap: the imbalance wait the
	// barrier model's calibrated slack stands for.
	StragglerNs float64
}

// EventLongRange simulates the start of the long-range chain — per-node
// LRU charge assignment, contention-aware sleeve exchange on the torus,
// GCU restriction and the axis-wise level-1 convolution with explicit
// block messages — tracking every node individually instead of the
// barrier abstraction of SimulateStep. It quantifies how much of the GCU
// phase is straggler waiting versus compute.
func (cfg Config) EventLongRange(w *Workload, prm core.Params) *EventLRReport {
	n := cfg.Torus.NNodes()
	rep := &EventLRReport{
		CAEndNs:       make([]float64, n),
		RestrictEndNs: make([]float64, n),
		ConvEndNs:     make([]float64, n),
	}
	nw := torus.NewNetwork(cfg.Torus)
	localSide := prm.N[0] / cfg.Torus.Size[0]
	localPoints := localSide * localSide * localSide

	// Phase A: per-node charge assignment on the two LRUs.
	for i := 0; i < n; i++ {
		rep.CAEndNs[i] = lru.TimeNs(w.Atoms[i], cfg.ClockGHz) +
			float64(localPoints)*cfg.Cal.GridXferNsPerPoint
	}

	// Phase B: sleeve exchange — each node sends its boundary grid data to
	// the six face neighbours; restriction needs all inbound sleeves.
	sleevePoints := (localSide+8)*(localSide+8)*(localSide+8) - localPoints
	sleeveBytes := float64(sleevePoints*4) / 6
	arrivals := make([]float64, n)
	for i := 0; i < n; i++ {
		src := cfg.Torus.CoordOf(i)
		for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
			dst := torus.Coord{
				X: wrapi(src.X+d[0], cfg.Torus.Size[0]),
				Y: wrapi(src.Y+d[1], cfg.Torus.Size[1]),
				Z: wrapi(src.Z+d[2], cfg.Torus.Size[2]),
			}
			at := nw.Send(src, dst, sleeveBytes, rep.CAEndNs[i])
			j := cfg.Torus.NodeID(dst)
			if at > arrivals[j] {
				arrivals[j] = at
			}
		}
	}

	// Phase C: restriction once own CA and all sleeves are in.
	restrictNs := float64(gcu.RestrictCycles(localPoints, prm.Order)) / cfg.ClockGHz
	for i := 0; i < n; i++ {
		start := math.Max(rep.CAEndNs[i], arrivals[i])
		rep.RestrictEndNs[i] = start + restrictNs
	}

	// Phase D: level-1 convolution, axis by axis. Along each axis a node
	// needs blocks from neighbours within ±g_c grid points; it convolves
	// once all inbound blocks of that axis have arrived.
	cur := append([]float64(nil), rep.RestrictEndNs...)
	taps := 2*prm.Gc + 1
	axisCompute := float64(gcu.ConvCycles(localPoints, taps, prm.M)) / cfg.ClockGHz / 3
	reach := (prm.Gc + localSide - 1) / localSide // node hops per direction
	blockBytes := 256.0
	blocksPerFace := (localSide / 4) * (localSide / 4) * (prm.Gc / 4)
	for axis := 0; axis < 3; axis++ {
		inReady := append([]float64(nil), cur...)
		nw.Reset()
		for i := 0; i < n; i++ {
			src := cfg.Torus.CoordOf(i)
			for dir := -reach; dir <= reach; dir++ {
				if dir == 0 {
					continue
				}
				var dst torus.Coord
				switch axis {
				case 0:
					dst = torus.Coord{X: wrapi(src.X+dir, cfg.Torus.Size[0]), Y: src.Y, Z: src.Z}
				case 1:
					dst = torus.Coord{X: src.X, Y: wrapi(src.Y+dir, cfg.Torus.Size[1]), Z: src.Z}
				default:
					dst = torus.Coord{X: src.X, Y: src.Y, Z: wrapi(src.Z+dir, cfg.Torus.Size[2])}
				}
				at := nw.Send(src, dst, blockBytes*float64(blocksPerFace), cur[i])
				j := cfg.Torus.NodeID(dst)
				if at > inReady[j] {
					inReady[j] = at
				}
			}
		}
		for i := 0; i < n; i++ {
			cur[i] = inReady[i] + axisCompute
		}
	}
	copy(rep.ConvEndNs, cur)

	// Summary statistics.
	sorted := append([]float64(nil), cur...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	rep.ConvMean = sum / float64(n)
	rep.ConvP50 = sorted[n/2]
	rep.ConvMax = sorted[n-1]
	rep.StragglerNs = rep.ConvMax - rep.ConvMean
	return rep
}

func wrapi(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}
