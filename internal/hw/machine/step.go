package machine

import (
	"math"

	"tme4a/internal/core"
	"tme4a/internal/hw/event"
	"tme4a/internal/hw/gcu"
	"tme4a/internal/hw/lru"
)

// LongRangePhases is the Fig. 10 breakdown of the long-range (TME) part,
// all in ns.
type LongRangePhases struct {
	CA       float64 // charge assignment (LRU) + grid charge transfer
	SleeveNW float64 // sleeve grid exchange on the torus
	Restrict float64 // GCU restrictions (all levels)
	Conv     float64 // GCU level convolutions (all levels), incl. block NW
	TMENW    float64 // top-level roundtrip (gather + FFT + scatter)
	Prolong  float64 // GCU prolongations
	BI       float64 // back interpolation (LRU) + force accumulation
	CGPGaps  float64 // inter-phase CGP orchestration time
	Total    float64 // end-to-end long-range latency
	GCUBusy  float64 // total GCU occupancy (drives NW interference)
}

// StepReport is the outcome of simulating one MD step.
type StepReport struct {
	Chart       *event.Chart
	StepNs      float64
	LR          LongRangePhases
	Integrate1  float64
	CoordHalo   float64
	Nonbond     float64
	Bonded      float64
	ForceReduce float64
	Integrate2  float64
}

// PerformanceNsPerDay returns simulated throughput in ns of simulated time
// per wall-clock day for a time step of dtFs femtoseconds.
func (r *StepReport) PerformanceNsPerDay(dtFs float64) float64 {
	stepsPerDay := 86400e9 / r.StepNs
	return stepsPerDay * dtFs * 1e-6
}

// SimulateStep runs the timing model of a single MD time step for the
// given workload and TME configuration. The model is phase-barriered, as
// the production software operates (paper Sec. V.A: "some parts of the
// calculations used resources exclusively"), with the long-range chain
// overlapping the nonbond/bonded force phase and GCU activity excluding
// other network traffic — which is what makes enabling long-range
// electrostatics cost ~10 µs rather than its full ~50 µs latency.
func (cfg Config) SimulateStep(w *Workload, prm core.Params, withLongRange bool) *StepReport {
	cal := cfg.Cal
	chart := &event.Chart{}
	rep := &StepReport{Chart: chart}

	worstAtoms := maxInt(w.Atoms)
	worstWaters := maxInt(w.Waters)
	worstBonded := maxInt(w.BondedTerms)
	worstPairs := maxFloat(w.Pairs)
	worstImport := maxFloat(w.ImportAtoms)
	meanAtoms := w.TotalAtoms / w.NNodes

	// --- Phase 1: integrate (half-kick + drift + constraints) on GP. ---
	t := 0.0
	rep.Integrate1 = float64(worstAtoms)*cal.GPIntegrateNsPerAtom +
		float64(worstWaters)*cal.GPConstraintNsPerWater
	chart.Add("GP integrate", -1, t, t+rep.Integrate1)
	t += rep.Integrate1

	// --- Coordinate halo exchange. ---
	haloBytes := worstImport * cal.HaloBytesPerAtom / 6 // per link
	rep.CoordHalo = 2*cfg.Torus.HopLatency + haloBytes/cfg.Torus.Bandwidth
	chart.Add("NW coords", -1, t, t+rep.CoordHalo)
	t += rep.CoordHalo

	// --- Force phase: nonbond pipelines ∥ GP bonded ∥ long-range chain. ---
	tF := t
	rep.Nonbond = worstPairs * cal.PairListFactor / float64(cfg.NPipes) / cfg.PPGHz
	chart.Add("NB pipeline", -1, tF, tF+rep.Nonbond)
	rep.Bonded = float64(worstBonded) * cal.GPBondedNsPerTerm
	chart.Add("GP bonded", -1, tF, tF+rep.Bonded)

	var lrEnd float64
	if withLongRange {
		rep.LR = cfg.longRange(chart, tF, meanAtoms, prm)
		lrEnd = tF + rep.LR.Total
	}

	tForceEnd := tF + math.Max(rep.Nonbond, rep.Bonded)
	if lrEnd > tForceEnd {
		tForceEnd = lrEnd
	}

	// --- Force reduction (halo forces back over NW). GCU operations are
	// exclusive to other NW activities, so the long-range GCU occupancy
	// delays the force return — the source of the paper's ~10 µs (~5%)
	// cost of incorporating long-range electrostatics. ---
	rep.ForceReduce = 2*cfg.Torus.HopLatency + haloBytes/cfg.Torus.Bandwidth
	if withLongRange {
		rep.ForceReduce += rep.LR.GCUBusy
	}
	chart.Add("NW forces", -1, tForceEnd, tForceEnd+rep.ForceReduce)
	t = tForceEnd + rep.ForceReduce

	// --- Phase 3: second half-kick on GP. ---
	rep.Integrate2 = float64(worstAtoms)*cal.GPKickNsPerAtom +
		float64(worstWaters)*cal.GPConstraintNsPerWater*0.5
	chart.Add("GP integrate", -1, t, t+rep.Integrate2)
	t += rep.Integrate2

	rep.StepNs = t
	return rep
}

// longRange models the TME chain of Sec. V.B, returning the Fig. 10 phase
// breakdown. t0 is the force-phase start. LRU phases are sized from the
// mean per-node atom count: the LRU processes its own node's atoms, and
// straggler waiting surfaces in the GCU synchronization slack (paper:
// "the apparent duration of the GCU activities includes the waiting for
// data from the other nodes").
func (cfg Config) longRange(chart *event.Chart, t0 float64, meanAtoms int, prm core.Params) LongRangePhases {
	cal := cfg.Cal
	var lr LongRangePhases

	nodesAxis := cfg.Torus.Size[0]
	localSide := make([]int, prm.Levels+1) // level l → (N/2^{l-1})/8
	for l := 1; l <= prm.Levels; l++ {
		localSide[l] = (prm.N[0] >> uint(l-1)) / nodesAxis
	}
	localPts := func(l int) int { return localSide[l] * localSide[l] * localSide[l] }
	// GCU waiting scales with the per-node grid volume (more blocks in
	// flight → longer straggler tails); normalized to the 32³ operating
	// point (4³ = 64 local points).
	slackScale := func(l int) float64 { return float64(localPts(l)) / 64 }
	taps := 2*prm.Gc + 1
	gap := cal.CGPPhaseOverheadNs

	t := t0

	// (1) Charge assignment on the LRUs + grid charge transfer to GM.
	lr.CA = lru.TimeNs(meanAtoms, cfg.ClockGHz) + float64(localPts(1))*cal.GridXferNsPerPoint
	chart.Add("LRU", -1, t, t+lr.CA)
	t += lr.CA + gap

	// (2) Sleeve exchange: the (local+2·4)³ − local³ boundary grid points
	// move to/from neighbours.
	ls := localSide[1]
	sleevePoints := (ls+8)*(ls+8)*(ls+8) - ls*ls*ls
	sleeveBytes := float64(sleevePoints * 4)
	lr.SleeveNW = 2*cfg.Torus.HopLatency + sleeveBytes/6/cfg.Torus.Bandwidth
	chart.Add("NW grid", -1, t, t+lr.SleeveNW)
	t += lr.SleeveNW + gap

	// (3) Restrictions level by level down to the top grid.
	for l := 1; l <= prm.Levels; l++ {
		lr.Restrict += float64(gcu.RestrictCycles(localPts(l), prm.Order))/cfg.ClockGHz +
			cal.GCUSyncSlackNs*slackScale(l)
	}
	chart.Add("GCU restrict", -1, t, t+lr.Restrict)
	t += lr.Restrict + gap
	lr.GCUBusy += lr.Restrict

	// (4) TMENW roundtrip ∥ GCU level convolutions (Fig. 10: the TMENW is
	// initiated at the end of phase 1; the convolutions fill phase 2).
	topSide := prm.N[0] >> uint(prm.Levels)
	topBytesPerSoC := float64(topSide*topSide*topSide*4) / float64(cfg.Octree.NSoCs())
	lr.TMENW = cfg.Octree.RoundTripNs(topBytesPerSoC, cfg.TopSolveNs)
	chart.Add("TMENW", -1, t, t+lr.TMENW)

	// GCU throughput relative to the built machine's 12 points/cycle.
	gcuScale := float64(gcu.PointsPerCycle) / float64(cfg.GCUPointsCycle)
	for l := 1; l <= prm.Levels; l++ {
		compute := float64(gcu.ConvCycles(localPts(l), taps, prm.M)) / cfg.ClockGHz * gcuScale
		// Block exchange: convolution inputs arrive from ±g_c grid points
		// along each axis as 4×4×4 blocks of 256 B.
		blocksAxis := 2 * (prm.Gc / 4) * (localSide[l] / 4) * (localSide[l] / 4)
		hops := (prm.Gc + localSide[l] - 1) / localSide[l]
		nwT := float64(hops)*cfg.Torus.HopLatency + float64(blocksAxis)*256/cfg.Torus.Bandwidth
		lr.Conv += compute + 3*nwT + cal.GCUConvSlackNs*slackScale(l)
	}
	chart.Add("GCU conv", -1, t, t+lr.Conv)
	lr.GCUBusy += lr.Conv

	t += math.Max(lr.TMENW, lr.Conv) + gap

	// (5) Prolongations back up.
	for l := prm.Levels; l >= 1; l-- {
		lr.Prolong += float64(gcu.ProlongCycles(localPts(l), prm.Order))/cfg.ClockGHz +
			cal.GCUSyncSlackNs*slackScale(l)
	}
	chart.Add("GCU prolong", -1, t, t+lr.Prolong)
	lr.GCUBusy += lr.Prolong
	t += lr.Prolong + gap

	// (6) Back interpolation and force accumulation to global memory.
	lr.BI = lru.TimeNs(meanAtoms, cfg.ClockGHz) + float64(localPts(1))*cal.GridXferNsPerPoint
	chart.Add("LRU", -1, t, t+lr.BI)
	t += lr.BI + gap // trailing gap: CGP confirms the "end" message

	lr.CGPGaps = 6 * gap
	lr.Total = t - t0
	return lr
}
