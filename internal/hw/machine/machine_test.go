package machine

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/core"
	"tme4a/internal/protein"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
)

func paperWorkload(t testing.TB) (*Workload, Config) {
	t.Helper()
	cfg := MDGRAPE4A()
	ps := protein.Build(protein.PaperTarget())
	if ps.N() != 80540 {
		t.Fatalf("workload has %d atoms, want 80540", ps.N())
	}
	return cfg.Decompose(ps.System, ps.Bonded, 1.2), cfg
}

func paperTME() core.Params {
	return core.Params{
		Alpha: spme.AlphaFromRTol(1.2, 1e-4), Rc: 1.2, Order: 6,
		N: [3]int{32, 32, 32}, Levels: 1, M: 4, Gc: 8,
	}
}

// TestStepTimesMatchPaper reproduces the headline Sec. V measurements:
// 206 µs per step with long-range, 196 µs without, ≈10 µs (~5%) overhead.
func TestStepTimesMatchPaper(t *testing.T) {
	w, cfg := paperWorkload(t)
	with := cfg.SimulateStep(w, paperTME(), true)
	without := cfg.SimulateStep(w, paperTME(), false)

	if s := with.StepNs / 1e3; s < 195 || s > 215 {
		t.Errorf("step with LR = %.1f µs, paper reports 206 µs", s)
	}
	if s := without.StepNs / 1e3; s < 186 || s > 206 {
		t.Errorf("step without LR = %.1f µs, paper reports 196 µs", s)
	}
	delta := (with.StepNs - without.StepNs) / 1e3
	if delta < 5 || delta > 15 {
		t.Errorf("long-range overhead %.1f µs, paper reports ~10 µs", delta)
	}
	frac := delta * 1e3 / without.StepNs
	if frac > 0.08 {
		t.Errorf("overhead fraction %.1f%%, paper reports ~5%%", frac*100)
	}
}

// TestLongRangeBreakdownMatchesFig10 checks the Sec. V.B phase timings.
func TestLongRangeBreakdownMatchesFig10(t *testing.T) {
	w, cfg := paperWorkload(t)
	rep := cfg.SimulateStep(w, paperTME(), true)
	lr := rep.LR
	us := func(ns float64) float64 { return ns / 1e3 }

	if v := us(lr.Total); v < 42 || v > 58 {
		t.Errorf("LR total %.1f µs, paper reports ~50 µs", v)
	}
	if v := us(lr.CA + lr.BI); v < 8 || v > 16 {
		t.Errorf("CA+BI %.1f µs, paper reports ~10 µs", v)
	}
	if v := us(lr.Restrict); v < 0.8 || v > 2.5 {
		t.Errorf("restriction %.2f µs, paper reports 1.5 µs", v)
	}
	if v := us(lr.Conv); v < 4 || v > 8 {
		t.Errorf("convolution %.2f µs, paper reports 6 µs", v)
	}
	if v := us(lr.Prolong); v < 0.8 || v > 2.5 {
		t.Errorf("prolongation %.2f µs, paper reports 1.5 µs", v)
	}
	if v := us(lr.TMENW); v >= 20 {
		t.Errorf("TMENW roundtrip %.1f µs, paper reports < 20 µs", v)
	}
}

// TestThroughputMatchesPaper: ~1 µs/day at a 2.5 fs time step.
func TestThroughputMatchesPaper(t *testing.T) {
	w, cfg := paperWorkload(t)
	rep := cfg.SimulateStep(w, paperTME(), true)
	perf := rep.PerformanceNsPerDay(2.5) / 1e3 // µs/day
	if perf < 0.9 || perf > 1.25 {
		t.Errorf("throughput %.2f µs/day, paper reports ~1.0", perf)
	}
}

// TestGrid64Projection reproduces the Sec. VI.A estimate: a 64³ L=2 TME
// long-range phase of order 100–150 µs, dominated by GCU operations that
// grow ≈8× over the 32³ case.
func TestGrid64Projection(t *testing.T) {
	w, cfg := paperWorkload(t)
	prm64 := paperTME()
	prm64.N = [3]int{64, 64, 64}
	prm64.Levels = 2
	rep32 := cfg.SimulateStep(w, paperTME(), true)
	rep64 := cfg.SimulateStep(w, prm64, true)

	if v := rep64.LR.Total / 1e3; v < 90 || v > 170 {
		t.Errorf("64³ LR total %.1f µs, paper estimates ~150 µs", v)
	}
	gcu32 := rep32.LR.Restrict + rep32.LR.Conv + rep32.LR.Prolong
	gcu64 := rep64.LR.Restrict + rep64.LR.Conv + rep64.LR.Prolong
	ratio := gcu64 / gcu32
	if ratio < 5 || ratio > 11 {
		t.Errorf("GCU 64³/32³ ratio %.1f, paper estimates 8×", ratio)
	}
}

// TestChartContainsAllModules: the Fig. 9 chart must show every hardware
// module of the long-range chain.
func TestChartContainsAllModules(t *testing.T) {
	w, cfg := paperWorkload(t)
	rep := cfg.SimulateStep(w, paperTME(), true)
	mods := map[string]bool{}
	for _, m := range rep.Chart.Modules() {
		mods[m] = true
	}
	for _, want := range []string{"GP integrate", "NW coords", "NB pipeline", "GP bonded",
		"LRU", "NW grid", "GCU restrict", "TMENW", "GCU conv", "GCU prolong", "NW forces"} {
		if !mods[want] {
			t.Errorf("chart missing module %q (have %v)", want, rep.Chart.Modules())
		}
	}
	if rep.Chart.Render(80) == "" {
		t.Error("chart render empty")
	}
}

// TestFunctionalPipelineMatchesFloatTME: the hardware fixed-point
// long-range datapath must reproduce the double-precision TME forces to
// fixed-point accuracy.
func TestFunctionalPipelineMatchesFloatTME(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(9.9727) // paper's box → 32³ grid, 16³ top (FPGA size)
	n := 600
	pos := make([]vec.V, n)
	q := make([]float64, n)
	var qt float64
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
		q[i] = rng.NormFloat64() * 0.5
		qt += q[i]
	}
	for i := range q {
		q[i] -= qt / float64(n)
	}
	prm := core.Params{
		Alpha: spme.AlphaFromRTol(1.2, 1e-4), Rc: 1.2, Order: 6,
		N: [3]int{32, 32, 32}, Levels: 1, M: 4, Gc: 8,
	}
	tme := core.New(prm, box)
	pipe := NewPipeline(tme)

	fw := make([]vec.V, n)
	ew := tme.LongRange(pos, q, fw)
	fh := make([]vec.V, n)
	eh := pipe.LongRange(pos, q, fh)

	var num, den float64
	for i := range fw {
		num += fh[i].Sub(fw[i]).Norm2()
		den += fw[i].Norm2()
	}
	relErr := math.Sqrt(num / den)
	t.Logf("hw-vs-float relative force error %.3e, energy %0.4f vs %0.4f", relErr, eh, ew)
	if relErr > 2e-3 {
		t.Errorf("fixed-point pipeline force error %g too large", relErr)
	}
	if math.Abs(eh-ew) > 5e-3*math.Abs(ew)+1 {
		t.Errorf("fixed-point energy %g vs float %g", eh, ew)
	}
}

// TestWorkloadDecomposition sanity-checks the spatial decomposition.
func TestWorkloadDecomposition(t *testing.T) {
	w, cfg := paperWorkload(t)
	if w.NNodes != cfg.Torus.NNodes() {
		t.Fatalf("node count %d", w.NNodes)
	}
	var atoms, waters, terms int
	for i := 0; i < w.NNodes; i++ {
		atoms += w.Atoms[i]
		waters += w.Waters[i]
		terms += w.BondedTerms[i]
	}
	if atoms != 80540 {
		t.Errorf("decomposed atoms %d", atoms)
	}
	if waters == 0 || terms == 0 {
		t.Errorf("empty waters (%d) or bonded terms (%d)", waters, terms)
	}
	mean := float64(atoms) / float64(w.NNodes)
	if worst := float64(maxInt(w.Atoms)); worst > 4*mean {
		t.Errorf("implausible imbalance: worst %d vs mean %.0f", int(worst), mean)
	}
}

func BenchmarkSimulateStep(b *testing.B) {
	w, cfg := paperWorkload(b)
	prm := paperTME()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.SimulateStep(w, prm, true)
	}
}

// TestEventLevelLongRange cross-validates the barrier model: the
// event-level simulation (per-node LRU times, contention-aware sleeve and
// block messages, per-axis convolution dependencies) must land in the same
// regime as the calibrated barrier model's CA→conv segment, and must show
// real straggler waiting (the effect the calibrated GCU slack stands for).
func TestEventLevelLongRange(t *testing.T) {
	w, cfg := paperWorkload(t)
	prm := paperTME()
	ev := cfg.EventLongRange(w, prm)

	if ev.ConvMax <= ev.ConvMean || ev.StragglerNs <= 0 {
		t.Fatalf("no straggler spread: mean %.0f max %.0f", ev.ConvMean, ev.ConvMax)
	}
	// The barrier model's CA + sleeve + restriction + convolution segment.
	rep := cfg.SimulateStep(w, prm, true)
	barrier := rep.LR.CA + rep.LR.SleeveNW + rep.LR.Restrict + rep.LR.Conv
	ratio := ev.ConvMax / barrier
	t.Logf("event-level conv end: mean %.1f µs, p50 %.1f µs, max %.1f µs; straggler %.1f µs; barrier segment %.1f µs (ratio %.2f)",
		ev.ConvMean/1e3, ev.ConvP50/1e3, ev.ConvMax/1e3, ev.StragglerNs/1e3, barrier/1e3, ratio)
	if ratio < 0.3 || ratio > 2.5 {
		t.Errorf("event-level max %.1f µs inconsistent with barrier segment %.1f µs", ev.ConvMax/1e3, barrier/1e3)
	}
	// Per-node vectors populated and ordered sensibly.
	if len(ev.ConvEndNs) != w.NNodes {
		t.Fatalf("per-node results missing")
	}
	for i := range ev.ConvEndNs {
		if ev.ConvEndNs[i] < ev.RestrictEndNs[i] || ev.RestrictEndNs[i] < ev.CAEndNs[i] {
			t.Fatalf("node %d: phase ordering violated", i)
		}
	}
}
