package machine

import (
	"math"

	"tme4a/internal/bonded"
	"tme4a/internal/md"
	"tme4a/internal/vec"
)

// Workload summarizes the per-node work of one MD step after spatial
// decomposition onto the torus (each node owns a rectangular cell).
type Workload struct {
	NNodes      int
	Atoms       []int     // atoms homed on each node
	Waters      []int     // rigid waters homed on each node
	BondedTerms []int     // bonded terms assigned to each node
	Pairs       []float64 // estimated short-range pair evaluations per node
	ImportAtoms []float64 // estimated halo (import region) atoms per node
	TotalAtoms  int
	Box         vec.Box
}

// Decompose assigns the system's atoms to torus nodes and estimates the
// derived per-node quantities for a short-range cutoff rc.
func (cfg Config) Decompose(sys *md.System, ff *bonded.FF, rc float64) *Workload {
	n := cfg.Torus.NNodes()
	w := &Workload{
		NNodes:      n,
		Atoms:       make([]int, n),
		Waters:      make([]int, n),
		BondedTerms: make([]int, n),
		Pairs:       make([]float64, n),
		ImportAtoms: make([]float64, n),
		TotalAtoms:  sys.N(),
		Box:         sys.Box,
	}
	nodeOf := func(r vec.V) int {
		r = sys.Box.Wrap(r)
		var c [3]int
		for ax := 0; ax < 3; ax++ {
			c[ax] = int(r[ax] / sys.Box.L[ax] * float64(cfg.Torus.Size[ax]))
			if c[ax] >= cfg.Torus.Size[ax] {
				c[ax] = cfg.Torus.Size[ax] - 1
			}
		}
		return c[0] + cfg.Torus.Size[0]*(c[1]+cfg.Torus.Size[1]*c[2])
	}
	for i := range sys.Pos {
		w.Atoms[nodeOf(sys.Pos[i])]++
	}
	for _, trip := range sys.RigidWaters {
		w.Waters[nodeOf(sys.Pos[trip[0]])]++
	}
	if ff != nil {
		for _, b := range ff.Bonds {
			w.BondedTerms[nodeOf(sys.Pos[b.I])]++
		}
		for _, a := range ff.Angles {
			w.BondedTerms[nodeOf(sys.Pos[a.I])]++
		}
		for _, d := range ff.Dihedrals {
			w.BondedTerms[nodeOf(sys.Pos[d.I])]++
		}
	}
	// Pair and halo estimates from the mean density (adequate for timing:
	// liquid systems are near-uniform).
	density := float64(sys.N()) / sys.Box.Volume()
	halfShell := 0.5 * (4.0 / 3.0) * math.Pi * rc * rc * rc * density
	cell := vec.V{
		sys.Box.L[0] / float64(cfg.Torus.Size[0]),
		sys.Box.L[1] / float64(cfg.Torus.Size[1]),
		sys.Box.L[2] / float64(cfg.Torus.Size[2]),
	}
	importVol := (cell[0]+2*rc)*(cell[1]+2*rc)*(cell[2]+2*rc) - cell[0]*cell[1]*cell[2]
	for i := 0; i < n; i++ {
		w.Pairs[i] = float64(w.Atoms[i]) * halfShell
		w.ImportAtoms[i] = importVol * density
	}
	return w
}

// maxInt and maxFloat return the maxima of per-node arrays.
func maxInt(a []int) int {
	m := 0
	for _, v := range a {
		if v > m {
			m = v
		}
	}
	return m
}

func maxFloat(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if v > m {
			m = v
		}
	}
	return m
}
