// Package machine assembles the full MDGRAPE-4A model: 512 SoCs on an
// 8×8×8 torus with LRU, GCU, nonbond pipelines, GP cores and the TMENW
// octree, providing
//
//   - a timing simulation of one MD step that reproduces the paper's
//     Fig. 9/Fig. 10 time charts, the 196/206 µs step times, the ~50 µs
//     long-range phase breakdown, Table 2's MDGRAPE-4A row, and the
//     Sec. VI.A 64³ projection; and
//
//   - a functional long-range pipeline that computes real forces through
//     the hardware's fixed-point datapaths (LRU → GCU → FPGA FFT → GCU →
//     LRU), validated against the double-precision TME solver.
package machine

import (
	"tme4a/internal/hw/octree"
	"tme4a/internal/hw/torus"
)

// Config describes the machine. All hardware constants are from the paper;
// Calibration holds the software-overhead parameters (see calibration.go).
type Config struct {
	Torus    torus.Config
	Octree   octree.Config
	ClockGHz float64 // SoC clock (0.6 GHz)
	PPGHz    float64 // nonbond pipeline clock (0.8 GHz)
	NPipes   int     // nonbond pipelines per SoC (64)
	Cal      Calibration

	// What-if knobs for the Sec. VI.B design-space discussion; the
	// defaults model the built machine.
	TopSolveNs     float64 // root-FPGA 16³ solve latency (2112 ns built)
	GCUPointsCycle int     // GCU sustained grid points per cycle (12 built)
}

// Calibration holds the software/orchestration constants that the paper
// itself identifies as the measured bottlenecks (GP core efficiency, CGP
// phase management). They are fixed once against the published
// 80,540-atom measurements — 196 µs step without long-range, 206 µs with,
// ~50 µs long-range total with the Fig. 10 phase breakdown — and all other
// model outputs follow without retuning.
type Calibration struct {
	// GP-core software costs (the paper's stated bottleneck).
	GPIntegrateNsPerAtom   float64 // position/velocity update per atom
	GPKickNsPerAtom        float64 // second half-kick per atom
	GPConstraintNsPerWater float64 // SETTLE per water molecule
	GPBondedNsPerTerm      float64 // bonded term evaluation

	// CGP orchestration gap between long-range phases.
	CGPPhaseOverheadNs float64

	// GCU synchronization slack per restriction/prolongation phase at the
	// 32³ operating point (scales with local grid volume).
	GCUSyncSlackNs float64

	// GCU convolution-phase slack at the 32³ operating point: waiting for
	// neighbour blocks, dominated by load imbalance (paper Sec. V.B).
	GCUConvSlackNs float64

	// Grid charge/potential transfer cost between LRU grid memory and the
	// network, per local grid point (drives the paper's +10 µs CA/BI
	// estimate at 64³).
	GridXferNsPerPoint float64

	// TMENW per-stage protocol/software overhead (see octree package).
	OctreeStageOverheadNs float64

	// Nonbond pair-list inefficiency (cell-pair enumeration evaluates more
	// candidates than accepted pairs).
	PairListFactor float64

	// Halo (import region) traffic per imported atom, bytes (coordinates
	// out, forces back).
	HaloBytesPerAtom float64
}

// DefaultCalibration returns the constants fixed against the paper's
// measurements (see EXPERIMENTS.md for the fit).
func DefaultCalibration() Calibration {
	return Calibration{
		GPIntegrateNsPerAtom:   83,
		GPKickNsPerAtom:        60,
		GPConstraintNsPerWater: 257,
		GPBondedNsPerTerm:      151,
		CGPPhaseOverheadNs:     2500,
		GCUSyncSlackNs:         1300,
		GCUConvSlackNs:         2500,
		GridXferNsPerPoint:     25,
		OctreeStageOverheadNs:  1200,
		PairListFactor:         2.5,
		HaloBytesPerAtom:       16,
	}
}

// MDGRAPE4A returns the production machine configuration.
func MDGRAPE4A() Config {
	cal := DefaultCalibration()
	return Config{
		Torus:          torus.MDGRAPE4A(),
		Octree:         octree.MDGRAPE4A(cal.OctreeStageOverheadNs),
		ClockGHz:       0.6,
		PPGHz:          0.8,
		NPipes:         64,
		Cal:            cal,
		TopSolveNs:     2112, // 330 cycles @ 156.25 MHz (fpgafft)
		GCUPointsCycle: 12,
	}
}
