package machine

import (
	"math"

	"tme4a/internal/bspline"
	"tme4a/internal/core"
	"tme4a/internal/ewald"
	"tme4a/internal/fixpoint"
	"tme4a/internal/hw/fpgafft"
	"tme4a/internal/hw/gcu"
	"tme4a/internal/hw/lru"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// Pipeline is the functional long-range datapath of the machine: it
// executes the TME mesh computation through the hardware's numeric
// formats — LRU fixed-point charge assignment, GCU fixed-point separable
// convolutions/restrictions/prolongations, the float32 FPGA FFT top solve,
// and LRU fixed-point back interpolation.
type Pipeline struct {
	tme  *core.Solver
	dp   lru.Datapath
	invH [3]float64
	j    gcu.Kernel
	// kern[ν][axis]: GCU coefficient registers, with the cube root of the
	// Coulomb conversion folded per axis so convolution output is directly
	// in kJ mol⁻¹ e⁻¹.
	kern [][3]gcu.Kernel
	top  *fpgafft.Unit
}

// NewPipeline prepares the datapath for a configured TME solver. The top
// grid must be 16³ (the FPGA's fixed size).
func NewPipeline(tme *core.Solver) *Pipeline {
	prm := tme.Prm
	dp := lru.DefaultDatapath()
	h := tme.Mesher.H()
	p := &Pipeline{
		tme:  tme,
		dp:   dp,
		invH: [3]float64{1 / h[0], 1 / h[1], 1 / h[2]},
		j:    gcu.QuantizeKernel(bspline.TwoScale(prm.Order), dp.Coef),
		top:  fpgafft.New(tme.TopSolver().Green()),
	}
	keCbrt := math.Cbrt(units.Coulomb)
	for _, kv := range tme.Kernels() {
		var qk [3]gcu.Kernel
		for axis := 0; axis < 3; axis++ {
			scaled := make([]float64, len(kv[axis]))
			for i, v := range kv[axis] {
				scaled[i] = v * keCbrt
			}
			qk[axis] = gcu.QuantizeKernel(scaled, dp.Coef)
		}
		p.kern = append(p.kern, qk)
	}
	return p
}

// LongRange computes mesh + self energy through the hardware datapath,
// accumulating forces into f (may be nil). It mirrors
// core.Solver.LongRange but in the machine's arithmetic.
func (p *Pipeline) LongRange(pos []vec.V, q []float64, f []vec.V) float64 {
	prm := p.tme.Prm

	// (1) LRU charge assignment (Q·.24 charges).
	charge := lru.ChargeAssign(p.dp, prm.N, p.invH, pos, q)

	// (2) GCU restrictions down to the top grid.
	charges := make([]*fixpoint.Grid32, prm.Levels+2)
	charges[1] = charge
	for l := 1; l <= prm.Levels; l++ {
		charges[l+1] = gcu.Restrict(charges[l], p.j)
	}

	// (3) FPGA FFT top-level solve → potential in the Pot format.
	phi := p.top.SolveFixed(charges[prm.Levels+1], p.dp.Pot)

	// (4) Upward pass: prolong, add the level's separable convolution.
	for l := prm.Levels; l >= 1; l-- {
		up := gcu.Prolong(phi, p.j)
		conv := p.levelConv(charges[l], l)
		for i := range up.Data {
			up.Data[i] = fixpoint.SatAdd32(up.Data[i], conv.Data[i])
		}
		phi = up
	}

	// (5) LRU back interpolation.
	e := lru.Interpolate(p.dp, phi, p.invH, pos, q, f)
	return e + ewald.SelfEnergy(q, prm.Alpha)
}

// levelConv runs the GCU separable convolution of one level: the x pass
// stays in the charge format, the y pass shifts the binary point to the
// potential format (avoiding overflow as magnitudes grow), and the ν terms
// accumulate in grid memory. The 1/2^{l−1} level prefactor is the GCU's
// output binary-point shift.
func (p *Pipeline) levelConv(q *fixpoint.Grid32, l int) *fixpoint.Grid32 {
	n := q.N
	acc := fixpoint.NewGrid32(n[0], n[1], n[2], p.dp.Pot)
	t1 := fixpoint.NewGrid32(n[0], n[1], n[2], q.Fmt)
	t2 := fixpoint.NewGrid32(n[0], n[1], n[2], p.dp.Pot)
	t3 := fixpoint.NewGrid32(n[0], n[1], n[2], p.dp.Pot)
	for _, k := range p.kern {
		gcu.ConvAxis(t1, q, 0, k[0])
		gcu.ConvAxis(t2, t1, 1, k[1])
		gcu.ConvAxis(t3, t2, 2, k[2])
		shift := uint(l - 1)
		for i := range acc.Data {
			acc.Data[i] = fixpoint.SatAdd32(acc.Data[i], t3.Data[i]>>shift)
		}
	}
	return acc
}
