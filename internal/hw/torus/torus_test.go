package torus

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNodeIDRoundTrip(t *testing.T) {
	cfg := MDGRAPE4A()
	for id := 0; id < cfg.NNodes(); id++ {
		if got := cfg.NodeID(cfg.CoordOf(id)); got != id {
			t.Fatalf("id %d -> %v -> %d", id, cfg.CoordOf(id), got)
		}
	}
}

func TestHopDistanceProperties(t *testing.T) {
	cfg := MDGRAPE4A()
	rng := rand.New(rand.NewSource(1))
	randCoord := func() Coord {
		return Coord{rng.Intn(8), rng.Intn(8), rng.Intn(8)}
	}
	f := func(seed int64) bool {
		a, b := randCoord(), randCoord()
		d := cfg.HopDistance(a, b)
		// Symmetry, identity, torus bound (≤ 4 per axis in an 8-ring).
		return d == cfg.HopDistance(b, a) &&
			cfg.HopDistance(a, a) == 0 &&
			d <= 12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestHopDistanceWrapsShortWay(t *testing.T) {
	cfg := MDGRAPE4A()
	// 0 → 7 is one hop through the wraparound.
	if d := cfg.HopDistance(Coord{0, 0, 0}, Coord{7, 0, 0}); d != 1 {
		t.Errorf("wrap distance %d, want 1", d)
	}
	if d := cfg.HopDistance(Coord{0, 0, 0}, Coord{4, 0, 0}); d != 4 {
		t.Errorf("half-ring distance %d, want 4", d)
	}
}

func TestRouteLengthAndEndpoint(t *testing.T) {
	cfg := MDGRAPE4A()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		a := Coord{rng.Intn(8), rng.Intn(8), rng.Intn(8)}
		b := Coord{rng.Intn(8), rng.Intn(8), rng.Intn(8)}
		path := cfg.Route(a, b)
		if len(path) != cfg.HopDistance(a, b) {
			t.Fatalf("route %v->%v has %d hops, want %d", a, b, len(path), cfg.HopDistance(a, b))
		}
		if len(path) > 0 && path[len(path)-1] != b {
			t.Fatalf("route %v->%v ends at %v", a, b, path[len(path)-1])
		}
		// Each step moves exactly one hop.
		cur := a
		for _, nxt := range path {
			if cfg.HopDistance(cur, nxt) != 1 {
				t.Fatalf("non-unit step %v->%v", cur, nxt)
			}
			cur = nxt
		}
	}
}

func TestSendNeighborLatency(t *testing.T) {
	cfg := MDGRAPE4A()
	nw := NewNetwork(cfg)
	// 256-byte block to a neighbour: 200 ns + 256/7.2 ns.
	got := nw.Send(Coord{0, 0, 0}, Coord{1, 0, 0}, 256, 0)
	want := 200 + 256/7.2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("arrival %g, want %g", got, want)
	}
}

func TestSendMultiHopAccumulatesLatency(t *testing.T) {
	cfg := MDGRAPE4A()
	nw := NewNetwork(cfg)
	got := nw.Send(Coord{0, 0, 0}, Coord{2, 3, 0}, 64, 0)
	hops := 5.0
	want := hops * (200 + 64/7.2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("arrival %g, want %g", got, want)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	cfg := MDGRAPE4A()
	nw := NewNetwork(cfg)
	// Two messages leaving node 0 on the same +x link at t=0: second
	// serializes behind the first.
	a1 := nw.Send(Coord{0, 0, 0}, Coord{1, 0, 0}, 720, 0) // 100 ns serialization
	a2 := nw.Send(Coord{0, 0, 0}, Coord{1, 0, 0}, 720, 0)
	if a2 <= a1 {
		t.Errorf("no serialization: %g vs %g", a1, a2)
	}
	if math.Abs((a2-a1)-100) > 1e-9 {
		t.Errorf("serialization gap %g, want 100", a2-a1)
	}
	// Opposite-direction link is independent.
	b := nw.Send(Coord{0, 0, 0}, Coord{7, 0, 0}, 720, 0)
	if math.Abs(b-(200+100)) > 1e-9 {
		t.Errorf("−x link should be free: %g", b)
	}
}

func TestSendToSelf(t *testing.T) {
	nw := NewNetwork(MDGRAPE4A())
	if got := nw.Send(Coord{3, 3, 3}, Coord{3, 3, 3}, 1000, 42); got != 42 {
		t.Errorf("self send arrival %g", got)
	}
}

func TestReset(t *testing.T) {
	nw := NewNetwork(MDGRAPE4A())
	nw.Send(Coord{0, 0, 0}, Coord{1, 0, 0}, 1e6, 0)
	nw.Reset()
	got := nw.Send(Coord{0, 0, 0}, Coord{1, 0, 0}, 72, 0)
	if math.Abs(got-210) > 1e-9 {
		t.Errorf("after reset arrival %g, want 210", got)
	}
}
