// Package torus models the MDGRAPE-4A 3D-torus interconnect: an 8×8×8
// node array with six bidirectional links per node, dimension-ordered
// routing, 200 ns neighbour latency and 7.2 GB/s raw link bandwidth
// (paper Sec. II).
package torus

import "fmt"

// Coord is a node coordinate in the torus.
type Coord struct{ X, Y, Z int }

// Config describes the torus geometry and link characteristics.
type Config struct {
	Size       [3]int  // nodes per axis (8×8×8 for MDGRAPE-4A)
	HopLatency float64 // ns per hop (200 ns measured)
	Bandwidth  float64 // bytes/ns (7.2 GB/s = 7.2 bytes/ns)
}

// MDGRAPE4A returns the production machine's torus configuration.
func MDGRAPE4A() Config {
	return Config{Size: [3]int{8, 8, 8}, HopLatency: 200, Bandwidth: 7.2}
}

// Network tracks per-link occupancy for contention-aware send timing.
type Network struct {
	Cfg Config
	// nextFree[link] for the 6 directed links of each node:
	// link = node*6 + dir, dirs: +x,−x,+y,−y,+z,−z.
	nextFree []float64
}

// NewNetwork returns an idle network.
func NewNetwork(cfg Config) *Network {
	n := cfg.Size[0] * cfg.Size[1] * cfg.Size[2]
	return &Network{Cfg: cfg, nextFree: make([]float64, n*6)}
}

// NodeID flattens a coordinate.
func (c Config) NodeID(co Coord) int {
	return co.X + c.Size[0]*(co.Y+c.Size[1]*co.Z)
}

// CoordOf unflattens a node id.
func (c Config) CoordOf(id int) Coord {
	x := id % c.Size[0]
	y := (id / c.Size[0]) % c.Size[1]
	z := id / (c.Size[0] * c.Size[1])
	return Coord{x, y, z}
}

// NNodes returns the total node count.
func (c Config) NNodes() int { return c.Size[0] * c.Size[1] * c.Size[2] }

// axisSteps returns the signed minimal hop count along one axis.
func axisSteps(from, to, n int) int {
	d := (to - from) % n
	if d < 0 {
		d += n
	}
	if d > n/2 {
		d -= n
	}
	return d
}

// HopDistance returns the minimal torus hop count between nodes.
func (c Config) HopDistance(a, b Coord) int {
	h := 0
	for axis := 0; axis < 3; axis++ {
		var f, t int
		switch axis {
		case 0:
			f, t = a.X, b.X
		case 1:
			f, t = a.Y, b.Y
		default:
			f, t = a.Z, b.Z
		}
		d := axisSteps(f, t, c.Size[axis])
		if d < 0 {
			d = -d
		}
		h += d
	}
	return h
}

// Route returns the dimension-ordered (x, then y, then z) path from a to b
// as a sequence of coordinates, excluding a, including b.
func (c Config) Route(a, b Coord) []Coord {
	var path []Coord
	cur := a
	step := func(axis, dir int) {
		switch axis {
		case 0:
			cur.X = wrap(cur.X+dir, c.Size[0])
		case 1:
			cur.Y = wrap(cur.Y+dir, c.Size[1])
		default:
			cur.Z = wrap(cur.Z+dir, c.Size[2])
		}
		path = append(path, cur)
	}
	for axis := 0; axis < 3; axis++ {
		var f, t int
		switch axis {
		case 0:
			f, t = a.X, b.X
		case 1:
			f, t = a.Y, b.Y
		default:
			f, t = a.Z, b.Z
		}
		d := axisSteps(f, t, c.Size[axis])
		dir := 1
		if d < 0 {
			dir = -1
			d = -d
		}
		for s := 0; s < d; s++ {
			step(axis, dir)
		}
	}
	return path
}

// linkIndex returns the directed-link slot leaving node co toward the next
// hop along axis with direction dir (±1).
func (n *Network) linkIndex(co Coord, axis, dir int) int {
	id := n.Cfg.NodeID(co)
	slot := axis * 2
	if dir < 0 {
		slot++
	}
	return id*6 + slot
}

// Send models a store-and-forward message of the given size from a to b
// starting no earlier than at, reserving each directed link in turn.
// It returns the arrival time at b. Messages to self arrive immediately.
func (n *Network) Send(a, b Coord, bytes float64, at float64) float64 {
	if a == b {
		return at
	}
	ser := bytes / n.Cfg.Bandwidth
	cur := a
	t := at
	for axis := 0; axis < 3; axis++ {
		var f, tgt int
		switch axis {
		case 0:
			f, tgt = cur.X, b.X
		case 1:
			f, tgt = cur.Y, b.Y
		default:
			f, tgt = cur.Z, b.Z
		}
		d := axisSteps(f, tgt, n.Cfg.Size[axis])
		dir := 1
		if d < 0 {
			dir = -1
			d = -d
		}
		for s := 0; s < d; s++ {
			li := n.linkIndex(cur, axis, dir)
			start := t
			if n.nextFree[li] > start {
				start = n.nextFree[li]
			}
			n.nextFree[li] = start + ser
			t = start + n.Cfg.HopLatency + ser
			switch axis {
			case 0:
				cur.X = wrap(cur.X+dir, n.Cfg.Size[0])
			case 1:
				cur.Y = wrap(cur.Y+dir, n.Cfg.Size[1])
			default:
				cur.Z = wrap(cur.Z+dir, n.Cfg.Size[2])
			}
		}
	}
	return t
}

// Reset clears all link reservations.
func (n *Network) Reset() {
	for i := range n.nextFree {
		n.nextFree[i] = 0
	}
}

func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }
