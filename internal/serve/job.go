package serve

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"tme4a/internal/ckpt"
	"tme4a/internal/md"
	"tme4a/internal/obs"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"   // admitted, waiting for an active slot
	StateRunning  State = "running"  // holds an active slot, stepped in quanta
	StateDone     State = "done"     // completed its full step budget
	StateFailed   State = "failed"   // build, resume or durability error
	StateCanceled State = "canceled" // canceled by the client
)

// Terminal reports whether the state is final.
func (st State) Terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// EnergyPoint is one row of a job's streamed energy ledger.
type EnergyPoint struct {
	Step      int64   `json:"step"`
	Potential float64 `json:"potential"`
	Kinetic   float64 `json:"kinetic"`
	Total     float64 `json:"total"`
}

// Status is the externally visible snapshot of a job.
type Status struct {
	ID          string       `json:"id"`
	State       State        `json:"state"`
	Step        int          `json:"step"`
	Steps       int          `json:"steps"`
	Atoms       int          `json:"atoms,omitempty"`
	Error       string       `json:"error,omitempty"`
	ResumedFrom int64        `json:"resumed_from,omitempty"`
	FinalHash   string       `json:"final_hash,omitempty"`
	LastEnergy  *EnergyPoint `json:"last_energy,omitempty"`
	Spec        Spec         `json:"spec"`
}

// job is one admitted simulation. The engine fields (sys, integ, store)
// are owned exclusively by the scheduler goroutine; everything the API
// reads concurrently lives under mu or in atomics. The obs recorder is
// lock-free by construction, so /metrics never contends with stepping.
type job struct {
	id   string
	spec Spec
	rec  *obs.Recorder

	cancel atomic.Bool

	mu          sync.Mutex
	state       State
	step        int
	err         string
	resumedFrom int64
	finalHash   uint64
	atoms       int
	energies    []EnergyPoint // preallocated to full capacity at start

	// Engine state, scheduler-goroutine only (enforced by tmevet's
	// schedown check: only functions reachable from Scheduler.loop may
	// write these).
	sys     *md.System     //tme:owner Scheduler.loop
	integ   *md.Integrator //tme:owner Scheduler.loop
	store   *ckpt.Store    //tme:owner Scheduler.loop
	started bool           //tme:owner Scheduler.loop
}

// status snapshots the job under its lock.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, State: j.state, Step: j.step, Steps: j.spec.Steps,
		Atoms: j.atoms, Error: j.err, ResumedFrom: j.resumedFrom, Spec: j.spec,
	}
	if j.state == StateDone {
		st.FinalHash = fmt.Sprintf("%016x", j.finalHash)
	}
	if n := len(j.energies); n > 0 {
		e := j.energies[n-1]
		st.LastEnergy = &e
	}
	return st
}

// energiesFrom returns up to max ledger rows starting at index from, plus
// the index of the next unread row.
func (j *job) energiesFrom(from, max int) ([]EnergyPoint, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(j.energies) {
		return nil, len(j.energies)
	}
	rows := j.energies[from:]
	if max > 0 && len(rows) > max {
		rows = rows[:max]
	}
	out := append([]EnergyPoint(nil), rows...)
	return out, from + len(out)
}

// durableState is the terminal marker persisted next to a job's spec so a
// restarted daemon lists finished jobs instead of resurrecting them.
type durableState struct {
	State     State  `json:"state"`
	Step      int    `json:"step"`
	FinalHash string `json:"final_hash,omitempty"`
	Error     string `json:"error,omitempty"`
}

const (
	specFileName  = "spec.json"
	stateFileName = "state.json"
	jobsDirName   = "jobs"
)

// jobDir returns the job's durability directory under root.
func jobDir(root, id string) string { return filepath.Join(root, jobsDirName, id) }
