package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tme4a/internal/solver"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Scheduler) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(s))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts, s
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestHTTPLifecycle walks the full API: submit, status, list, metrics,
// energies, stream, stats — and checks the served result is bitwise equal
// to the direct run.
func TestHTTPLifecycle(t *testing.T) {
	ts, s := newTestServer(t, Config{})
	s.Start()

	resp, data := postJob(t, ts, `{"method":"cutoff","side":2,"steps":40,"equil":10,"seed":5}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+st.ID {
		t.Errorf("Location = %q", loc)
	}

	deadline := time.Now().Add(60 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %s step %d", st.State, st.Step)
		}
		time.Sleep(2 * time.Millisecond)
		getJSON(t, ts.URL+"/jobs/"+st.ID, &st)
	}
	if st.State != StateDone {
		t.Fatalf("state %s err %q", st.State, st.Error)
	}
	direct, err := (Spec{Method: "cutoff", Side: 2, Steps: 40, Equil: 10, Seed: 5}).RunDirect()
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalHash != fmt.Sprintf("%016x", direct) {
		t.Errorf("served hash %s != direct %016x", st.FinalHash, direct)
	}
	if st.LastEnergy == nil || st.LastEnergy.Step != 40 {
		t.Errorf("last energy missing or stale: %+v", st.LastEnergy)
	}

	var list []Status
	getJSON(t, ts.URL+"/jobs", &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list: %+v", list)
	}

	var metrics struct {
		Atoms  int `json:"atoms"`
		Stages []struct {
			Count int64 `json:"count"`
		} `json:"stages"`
	}
	getJSON(t, ts.URL+"/jobs/"+st.ID+"/metrics", &metrics)
	if metrics.Atoms != 24 || len(metrics.Stages) == 0 {
		t.Errorf("metrics: %+v", metrics)
	}

	var energies struct {
		Rows []EnergyPoint `json:"rows"`
		Next int           `json:"next"`
	}
	getJSON(t, ts.URL+"/jobs/"+st.ID+"/energies", &energies)
	if len(energies.Rows) == 0 || energies.Next != len(energies.Rows) {
		t.Errorf("energies: %+v", energies)
	}

	streamResp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	csv, err := io.ReadAll(streamResp.Body)
	streamResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if lines[0] != "step,potential,kinetic,total" {
		t.Errorf("stream header: %q", lines[0])
	}
	if len(lines)-1 != len(energies.Rows) {
		t.Errorf("stream has %d rows, ledger %d", len(lines)-1, len(energies.Rows))
	}

	var stats Stats
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Completed != 1 || stats.StepLatency.Samples == 0 {
		t.Errorf("stats: %+v", stats)
	}
}

// TestHTTPValidation pins the 4xx mapping: every malformed submission is
// rejected with the validation message in the JSON error body.
func TestHTTPValidation(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name, body, wantErr string
		wantCode            int
	}{
		{"bad json", `{`, "decoding spec", 400},
		{"unknown field", `{"steps":10,"sides":4}`, "unknown field", 400},
		{"unknown method", `{"method":"pppm","steps":10}`, "unknown method", 400},
		{"unknown kernel", `{"method":"tme","kernel":"cauchy","steps":10}`, "unknown kernel family", 400},
		{"bad grid", `{"method":"spme","grid":17,"steps":10}`, "not a power of two", 400},
		{"negative steps", `{"steps":-1}`, "must be positive", 400},
		{"zero steps", `{"method":"cutoff"}`, "must be positive", 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJob(t, ts, tc.body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.wantCode, data)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatalf("error body not JSON: %s", data)
			}
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Errorf("error %q, want substring %q", e.Error, tc.wantErr)
			}
		})
	}
	if resp := getJSON(t, ts.URL+"/jobs/j999999", nil); resp.StatusCode != 404 {
		t.Errorf("unknown job: %d", resp.StatusCode)
	}
}

// TestHTTPBackpressure checks a full queue answers 429.
func TestHTTPBackpressure(t *testing.T) {
	ts, _ := newTestServer(t, Config{QueueCap: 1}) // never started: jobs stay queued
	if resp, data := postJob(t, ts, `{"method":"cutoff","side":2,"steps":10}`); resp.StatusCode != 201 {
		t.Fatalf("first submit: %d %s", resp.StatusCode, data)
	}
	resp, data := postJob(t, ts, `{"method":"cutoff","side":2,"steps":10}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d %s, want 429", resp.StatusCode, data)
	}
}

// TestHTTPCancelAndMethods covers DELETE and the registry listing.
func TestHTTPCancelAndMethods(t *testing.T) {
	ts, _ := newTestServer(t, Config{}) // not started: cancel hits the queued path
	_, data := postJob(t, ts, `{"method":"cutoff","side":2,"steps":1000}`)
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var canceled Status
	json.NewDecoder(resp.Body).Decode(&canceled) //nolint:errcheck // checked below
	resp.Body.Close()
	if resp.StatusCode != 200 || canceled.State != StateCanceled {
		t.Errorf("cancel: %d %+v", resp.StatusCode, canceled)
	}

	var methods []solver.Method
	getJSON(t, ts.URL+"/methods", &methods)
	names := make([]string, len(methods))
	for i, m := range methods {
		names[i] = m.Name
		if m.Doc == "" {
			t.Errorf("method %s has no doc", m.Name)
		}
	}
	if strings.Join(names, ",") != "msm,spme,tme" {
		t.Errorf("methods = %v, want sorted [msm spme tme]", names)
	}

	var ok map[string]bool
	getJSON(t, ts.URL+"/healthz", &ok)
	if !ok["ok"] {
		t.Errorf("healthz: %v", ok)
	}
}
