package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// deadWriter fails every write, modeling a client whose connection is
// gone but whose request context was never canceled (a misbehaving
// proxy, or an http stack that only cancels on read).
type deadWriter struct{ header http.Header }

func (w *deadWriter) Header() http.Header       { return w.header }
func (w *deadWriter) WriteHeader(int)           {}
func (w *deadWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }
func (w *deadWriter) Flush()                    {}

// TestStreamStopsOnWriteError is the regression test for the errdrop
// finding tmevet surfaced in the stream handler: write errors were
// discarded, so a dead client streaming a job that never terminates left
// the handler polling forever at 10ms intervals. The scheduler is never
// started, so the queued job stays non-terminal for the whole test — the
// only way out of the loop is noticing the failed write.
func TestStreamStopsOnWriteError(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := mustSubmit(t, s, fastSpec(1, 1000))

	srv := NewServer(s)
	req := httptest.NewRequest("GET", "/jobs/"+st.ID+"/stream", nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeHTTP(&deadWriter{header: http.Header{}}, req)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream handler kept polling a non-terminal job after the client's writer failed")
	}
}

// TestEngineReleasedOnDone pins the releaseEngine split: a finished job's
// engine memory (sys, integ, store) is freed on the scheduler goroutine
// once the job reaches a terminal state. Read after Close, which joins
// the loop goroutine, so the check races with nothing.
func TestEngineReleasedOnDone(t *testing.T) {
	s, err := New(Config{MaxActive: 1, Quantum: 10})
	if err != nil {
		t.Fatal(err)
	}
	st := mustSubmit(t, s, fastSpec(3, 20))
	s.Start()
	if got := waitState(t, s, st.ID); got.State != StateDone {
		t.Fatalf("job ended %s, want done", got.State)
	}
	s.Close()
	j := s.jobs[st.ID]
	if j.sys != nil || j.integ != nil || j.store != nil {
		t.Errorf("terminal job retains engine state: sys=%v integ=%v store=%v", j.sys != nil, j.integ != nil, j.store != nil)
	}
}

// TestCancelQueuedStaysOffEngineFields is the schedown regression: Cancel
// runs on the caller's (HTTP) goroutine, and for a still-queued job it
// finalizes directly — which used to write the //tme:owner engine fields
// from the wrong goroutine. A queued job never had engine state, so after
// the split Cancel must terminate it without ever touching those fields.
func TestCancelQueuedStaysOffEngineFields(t *testing.T) {
	s, err := New(Config{MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := mustSubmit(t, s, fastSpec(5, 50)) // scheduler not started: stays queued
	got, err := s.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("canceled queued job is %s, want canceled", got.State)
	}
	j := s.jobs[st.ID]
	if j.sys != nil || j.integ != nil || j.store != nil || j.started {
		t.Error("queued job acquired engine state through Cancel")
	}
}
