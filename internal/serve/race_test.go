package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentAPIStress drives at least eight concurrent jobs through
// submit/step/metrics/cancel while API readers hammer every query path.
// Its real assertions run under tier1's -race pass: the scheduler loop,
// the HTTP-facing snapshots and the durability writes must share the job
// table without a single unsynchronized access.
func TestConcurrentAPIStress(t *testing.T) {
	s, err := New(Config{MaxActive: 8, QueueCap: 32, Quantum: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()

	const jobs = 12
	ids := make(chan string, jobs)
	var wg sync.WaitGroup

	// Submitters race each other and the scheduler's promotion loop.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < jobs/4; i++ {
				st, err := s.Submit(fastSpec(int64(100+10*w+i), 60))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- st.ID
			}
		}(w)
	}

	// Readers poll every query surface while jobs run.
	done := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, st := range s.List() {
					s.Get(st.ID)            //nolint:errcheck // racing a cancel
					s.Metrics(st.ID, 4)     //nolint:errcheck // racing a cancel
					s.Energies(st.ID, 0, 8) //nolint:errcheck // racing a cancel
				}
				s.Stats()
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// A canceler kills every third job mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for id := range ids {
			n++
			if n%3 == 0 {
				s.Cancel(id) //nolint:errcheck // may already be done
			}
			if n == jobs {
				close(ids)
			}
		}
	}()

	deadline := time.Now().Add(120 * time.Second)
	for {
		stats := s.Stats()
		if stats.Completed+stats.Failed+stats.Canceled == jobs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled: %+v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(done)
	wg.Wait()

	stats := s.Stats()
	if stats.Failed != 0 {
		for _, st := range s.List() {
			if st.State == StateFailed {
				t.Errorf("job %s failed: %s", st.ID, st.Error)
			}
		}
	}
	if got := stats.Completed + stats.Canceled; got != jobs {
		t.Errorf("%d jobs terminal, want %d (%+v)", got, jobs, stats)
	}
	// Completed jobs must still match their direct twins, even after all
	// that concurrency.
	for _, st := range s.List() {
		if st.State != StateDone {
			continue
		}
		direct, err := st.Spec.RunDirect()
		if err != nil {
			t.Fatal(err)
		}
		if st.FinalHash != fmt.Sprintf("%016x", direct) {
			t.Errorf("job %s: served %s direct %016x", st.ID, st.FinalHash, direct)
		}
	}
}
