package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"tme4a/internal/ckpt"
	"tme4a/internal/md"
	"tme4a/internal/obs"
)

// Sentinel errors the API layer maps to HTTP statuses.
var (
	// ErrQueueFull is returned by Submit when the bounded pending queue is
	// at capacity — the backpressure signal (HTTP 429).
	ErrQueueFull = errors.New("serve: pending queue full") //tmevet:ignore mutflag -- sentinel error, assigned once at init
	// ErrClosed is returned by Submit after Close (HTTP 503).
	ErrClosed = errors.New("serve: scheduler closed") //tmevet:ignore mutflag -- sentinel error, assigned once at init
	// ErrUnknownJob is returned for ids the scheduler never issued (HTTP 404).
	ErrUnknownJob = errors.New("serve: unknown job") //tmevet:ignore mutflag -- sentinel error, assigned once at init
)

// ValidationError wraps a job-spec rejection so the API layer can answer
// 400 with the underlying Params.Validate message instead of a 500.
type ValidationError struct{ Err error }

func (e *ValidationError) Error() string { return e.Err.Error() }
func (e *ValidationError) Unwrap() error { return e.Err }

// Config parameterizes a Scheduler. Zero values select the documented
// defaults.
type Config struct {
	// Dir roots job durability (specs, checkpoints, terminal markers);
	// empty disables persistence entirely.
	Dir string
	// FS is the filesystem seam durability flows through; nil means the
	// real filesystem. Tests inject ckpt.MemFS / ckpt.FaultFS here to
	// kill and resurrect the daemon deterministically.
	FS ckpt.FS
	// MaxActive bounds the jobs resident in the round-robin ring
	// (admission control). Default 8.
	MaxActive int
	// QueueCap bounds the pending queue; a full queue rejects submissions
	// with ErrQueueFull (backpressure). Default 64.
	QueueCap int
	// Quantum is the number of steps one job runs per scheduling turn.
	// Default 25.
	Quantum int
	// CkptEvery is the per-job checkpoint cadence in steps (0 disables;
	// meaningful only with Dir set). Default 200 when Dir is set.
	CkptEvery int
	// CkptKeep is the per-job checkpoint retention. Default 3.
	CkptKeep int
	// EnergyEvery is the energy-ledger cadence in steps. Default 10.
	EnergyEvery int
	// Trace records the quantum interleaving for the fairness tests.
	Trace bool
	// LatWindow is the step-latency ring capacity. Default 16384.
	LatWindow int
}

func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = ckpt.OS()
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 8
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Quantum <= 0 {
		c.Quantum = 25
	}
	if c.CkptEvery <= 0 && c.Dir != "" {
		c.CkptEvery = 200
	}
	if c.CkptKeep <= 0 {
		c.CkptKeep = 3
	}
	if c.EnergyEvery <= 0 {
		c.EnergyEvery = 10
	}
	if c.LatWindow <= 0 {
		c.LatWindow = 1 << 14
	}
	return c
}

// Quantum is one entry of the scheduling trace: job ran steps (From, To].
type Quantum struct {
	Job  string `json:"job"`
	From int    `json:"from"`
	To   int    `json:"to"`
}

// Scheduler multiplexes admitted jobs over the shared worker pool: one
// scheduling loop steps the active jobs round-robin in bounded quanta, so
// every step still uses the full pool (par fans each force evaluation out
// to GOMAXPROCS workers) while N jobs share the machine fairly — the
// software form of time-sharing one accelerator pipeline.
//
// Determinism: the scheduler never feeds scheduling state into a
// trajectory. Each job's dynamics are a pure function of its Spec, so a
// job's bits are identical whether it ran alone, multiplexed among eight
// others, or across a kill/resume cycle.
type Scheduler struct {
	cfg Config
	fs  ckpt.FS
	dir string

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*job
	ids     []string // every issued id, admission order
	active  []*job   // round-robin ring
	queue   []*job   // bounded pending queue
	rr      int      //tme:owner Scheduler.loop
	nextID  int
	started bool
	closed  bool
	trace   []Quantum //tme:owner Scheduler.loop

	submitted, completed, failed, canceled int64

	closing   atomic.Bool
	stepsDone atomic.Int64
	quanta    atomic.Int64

	// The latency ring is written only by the stepping loop; latMu guards
	// the snapshot reads in latency().
	latMu  sync.Mutex
	latBuf []int64 //tme:owner Scheduler.loop
	latIdx int     //tme:owner Scheduler.loop
	latN   int     //tme:owner Scheduler.loop

	loopDone chan struct{}
}

// New builds a scheduler and, when cfg.Dir is set, recovers every
// persisted job: terminal jobs are listed as-is, interrupted ones are
// re-admitted (in id order) and resume from their newest valid checkpoint
// when they next run. Call Start to begin stepping.
func New(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:      cfg,
		fs:       cfg.FS,
		dir:      cfg.Dir,
		jobs:     make(map[string]*job),
		latBuf:   make([]int64, cfg.LatWindow),
		loopDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if s.dir != "" {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// recover scans dir/jobs and rebuilds the job table. The directory scan
// is sorted (ckpt.FS contract), so recovered admission order — and hence
// the resumed round-robin schedule — is deterministic.
func (s *Scheduler) recover() error {
	jobsRoot := filepath.Join(s.dir, jobsDirName)
	if err := s.fs.MkdirAll(jobsRoot); err != nil {
		return fmt.Errorf("serve: create %s: %w", jobsRoot, err)
	}
	names, err := s.fs.ReadDir(jobsRoot)
	if err != nil {
		return fmt.Errorf("serve: scan %s: %w", jobsRoot, err)
	}
	for _, id := range names {
		dir := jobDir(s.dir, id)
		specData, err := s.fs.ReadFile(filepath.Join(dir, specFileName))
		if err != nil {
			continue // a job dir without a durable spec never fully existed
		}
		sp, err := DecodeSpec(specData)
		if err != nil {
			return fmt.Errorf("serve: job %s has a corrupt spec: %w", id, err)
		}
		sp.Normalize()
		j := &job{id: id, spec: sp, rec: obs.New(), state: StateQueued}
		if data, err := s.fs.ReadFile(filepath.Join(dir, stateFileName)); err == nil {
			var ds durableState
			if err := json.Unmarshal(data, &ds); err == nil && ds.State.Terminal() {
				j.state = ds.State
				j.step = ds.Step
				j.err = ds.Error
				if h, err := strconv.ParseUint(ds.FinalHash, 16, 64); err == nil {
					j.finalHash = h
				}
			}
		}
		s.jobs[id] = j
		s.ids = append(s.ids, id)
		if n, ok := parseID(id); ok && n >= s.nextID {
			s.nextID = n + 1
		}
		if !j.state.Terminal() {
			s.queue = append(s.queue, j)
			s.submitted++
		}
	}
	return nil
}

func parseID(id string) (int, bool) {
	digits, ok := strings.CutPrefix(id, "j")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Start launches the scheduling loop. Submissions before Start queue up,
// which is how tests pin a deterministic admission order.
func (s *Scheduler) Start() {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.loop()
}

// Close stops the scheduler promptly: the current quantum ends at the
// next step boundary and no further quanta run. In-flight jobs keep their
// durable checkpoints, so a new scheduler over the same Dir resumes them
// bitwise. Close is the graceful half of crash-consistency; the crash
// half needs no cooperation at all.
func (s *Scheduler) Close() {
	s.closing.Store(true)
	s.mu.Lock()
	wasStarted := s.started
	alreadyClosed := s.closed
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if wasStarted && !alreadyClosed {
		<-s.loopDone
	}
}

// Submit validates, persists and admits a job, returning its initial
// status. Spec errors come back as *ValidationError; a full queue as
// ErrQueueFull.
func (s *Scheduler) Submit(sp Spec) (Status, error) {
	sp.Normalize()
	if err := sp.Validate(); err != nil {
		return Status{}, &ValidationError{Err: err}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Status{}, ErrClosed
	}
	if len(s.queue) >= s.cfg.QueueCap {
		s.mu.Unlock()
		return Status{}, ErrQueueFull
	}
	id := fmt.Sprintf("j%06d", s.nextID)
	s.nextID++
	s.mu.Unlock()

	// Make the spec durable before the job becomes visible: a daemon that
	// dies right after answering 201 must still know the job on restart.
	if s.dir != "" {
		dir := jobDir(s.dir, id)
		if err := s.fs.MkdirAll(dir); err != nil {
			return Status{}, fmt.Errorf("serve: create %s: %w", dir, err)
		}
		data, err := json.MarshalIndent(sp, "", "  ")
		if err != nil {
			return Status{}, err
		}
		if err := s.writeFileAtomic(dir, specFileName, data); err != nil {
			return Status{}, fmt.Errorf("serve: persist spec: %w", err)
		}
	}

	j := &job{id: id, spec: sp, rec: obs.New(), state: StateQueued}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Status{}, ErrClosed
	}
	if len(s.queue) >= s.cfg.QueueCap {
		s.mu.Unlock()
		return Status{}, ErrQueueFull
	}
	s.jobs[id] = j
	s.ids = append(s.ids, id)
	s.queue = append(s.queue, j)
	s.submitted++
	s.cond.Broadcast()
	s.mu.Unlock()
	return j.status(), nil
}

// Cancel requests termination. A queued job cancels immediately; a
// running one stops at its next step boundary; a terminal one is left
// unchanged.
func (s *Scheduler) Cancel(id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Status{}, ErrUnknownJob
	}
	// Remove from the pending queue if it never reached the ring.
	for i, qj := range s.queue {
		if qj == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.mu.Unlock()
			j.cancel.Store(true)
			s.finalize(j, StateCanceled, "")
			return j.status(), nil
		}
	}
	s.mu.Unlock()
	j.cancel.Store(true)
	s.signal()
	return j.status(), nil
}

// Get returns a job's status.
func (s *Scheduler) Get(id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknownJob
	}
	return j.status(), nil
}

// List returns every known job's status in admission order.
func (s *Scheduler) List() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.ids...)
	s.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j != nil {
			out = append(out, j.status())
		}
	}
	return out
}

// Metrics snapshots a job's per-stage obs report.
func (s *Scheduler) Metrics(id string, gomaxprocs int) (obs.Report, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return obs.Report{}, ErrUnknownJob
	}
	j.mu.Lock()
	atoms := j.atoms
	j.mu.Unlock()
	return j.rec.Report(id+"/"+j.spec.Method, atoms, gomaxprocs), nil
}

// Energies returns up to max ledger rows of a job starting at index from,
// plus the next unread index.
func (s *Scheduler) Energies(id string, from, max int) ([]EnergyPoint, int, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, 0, ErrUnknownJob
	}
	rows, next := j.energiesFrom(from, max)
	return rows, next, nil
}

// TraceLog returns the recorded quantum interleaving (Config.Trace).
func (s *Scheduler) TraceLog() []Quantum {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Quantum(nil), s.trace...)
}

// Latency summarizes the step-latency ring.
type Latency struct {
	Samples int   `json:"samples"`
	P50Ns   int64 `json:"p50_ns"`
	P90Ns   int64 `json:"p90_ns"`
	P99Ns   int64 `json:"p99_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// Stats is the scheduler-wide counter snapshot served at /stats.
type Stats struct {
	Active      int     `json:"active"`
	Queued      int     `json:"queued"`
	Submitted   int64   `json:"submitted"`
	Completed   int64   `json:"completed"`
	Failed      int64   `json:"failed"`
	Canceled    int64   `json:"canceled"`
	StepsDone   int64   `json:"steps_done"`
	Quanta      int64   `json:"quanta"`
	StepLatency Latency `json:"step_latency"`
}

// Stats snapshots the scheduler counters and latency quantiles.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Active:    len(s.active),
		Queued:    len(s.queue),
		Submitted: s.submitted,
		Completed: s.completed,
		Failed:    s.failed,
		Canceled:  s.canceled,
	}
	s.mu.Unlock()
	st.StepsDone = s.stepsDone.Load()
	st.Quanta = s.quanta.Load()
	st.StepLatency = s.latency()
	return st
}

func (s *Scheduler) latency() Latency {
	s.latMu.Lock()
	n := s.latN
	if n > len(s.latBuf) {
		n = len(s.latBuf)
	}
	samples := append([]int64(nil), s.latBuf[:n]...)
	s.latMu.Unlock()
	lat := Latency{Samples: n}
	if n == 0 {
		return lat
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	q := func(p int) int64 {
		idx := (n-1)*p/100 + 1
		if idx >= n {
			idx = n - 1
		}
		return samples[idx]
	}
	lat.P50Ns = q(50)
	lat.P90Ns = q(90)
	lat.P99Ns = q(99)
	lat.MaxNs = samples[n-1]
	return lat
}

// signal wakes the scheduling loop (e.g. after a cancel flag flip).
func (s *Scheduler) signal() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// loop is the scheduling loop: pick the next active job round-robin, run
// one quantum, repeat until closed.
func (s *Scheduler) loop() {
	defer close(s.loopDone)
	for {
		j := s.pick()
		if j == nil {
			return
		}
		s.runQuantum(j)
	}
}

// pick blocks until an active job exists (promoting queued jobs into free
// slots) and returns the next one in ring order, or nil when closed.
func (s *Scheduler) pick() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		for len(s.active) < s.cfg.MaxActive && len(s.queue) > 0 {
			j := s.queue[0]
			s.queue = s.queue[1:]
			s.active = append(s.active, j)
			j.mu.Lock()
			j.state = StateRunning
			j.mu.Unlock()
		}
		if len(s.active) > 0 {
			if s.rr >= len(s.active) {
				s.rr = 0
			}
			j := s.active[s.rr]
			s.rr++
			return j
		}
		s.cond.Wait()
	}
}

// runQuantum advances j by up to Quantum steps, then settles its state.
func (s *Scheduler) runQuantum(j *job) {
	if !j.started {
		if err := s.startJob(j); err != nil {
			s.removeActive(j)
			s.finalize(j, StateFailed, err.Error())
			s.releaseEngine(j)
			return
		}
	}
	from := j.step
	ran := 0
	for ran < s.cfg.Quantum && j.step < j.spec.Steps && !j.cancel.Load() && !s.closing.Load() {
		s.stepOnce(j)
		ran++
		step := j.step
		if j.store != nil && s.cfg.CkptEvery > 0 && step%s.cfg.CkptEvery == 0 && step < j.spec.Steps {
			// A failed checkpoint must not kill the simulation: the store
			// counts the failure (obs ckpt_failures) and the previous
			// durable checkpoint remains the resume point.
			j.store.Save(j.integ.CaptureResume(j.sys, j.spec.meta())) //tmevet:ignore errdrop -- deliberate: the store counts the failure (obs ckpt_failures) and the previous durable checkpoint stays the resume point
		}
	}
	s.quanta.Add(1)
	if s.cfg.Trace && ran > 0 {
		s.mu.Lock()
		s.trace = append(s.trace, Quantum{Job: j.id, From: from, To: j.step})
		s.mu.Unlock()
	}
	switch {
	case j.cancel.Load() && j.step < j.spec.Steps:
		s.removeActive(j)
		s.finalize(j, StateCanceled, "")
		s.releaseEngine(j)
	case j.step >= j.spec.Steps:
		j.mu.Lock()
		j.finalHash = md.StateHash(j.sys)
		j.mu.Unlock()
		s.removeActive(j)
		s.finalize(j, StateDone, "")
		s.releaseEngine(j)
	}
}

// releaseEngine frees a terminal job's engine memory. It runs only on the
// scheduler goroutine (tmevet schedown enforces this): finalize used to do
// the release itself, but finalize is also called from Cancel on the HTTP
// goroutine for still-queued jobs, which put a cross-goroutine write on
// //tme:owner fields. A queued job has no engine state, so the release
// belongs to the quantum paths alone.
func (s *Scheduler) releaseEngine(j *job) {
	j.sys, j.integ, j.store = nil, nil, nil
}

// stepOnce advances j by exactly one step: integrate, record the step's
// wall latency into the ring, bump the step counter and the energy
// ledger. Allocation-free at steady state (gated by TestStepOnceAllocs).
func (s *Scheduler) stepOnce(j *job) {
	t0 := obs.Now()
	e := j.integ.Step(j.sys)
	lat := obs.Now() - t0
	s.latMu.Lock()
	s.latBuf[s.latIdx] = lat
	s.latIdx++
	if s.latIdx >= len(s.latBuf) {
		s.latIdx = 0
	}
	if s.latN < len(s.latBuf) {
		s.latN++
	}
	s.latMu.Unlock()
	s.stepsDone.Add(1)
	j.mu.Lock()
	j.step++
	if (j.step%s.cfg.EnergyEvery == 0 || j.step == j.spec.Steps) && len(j.energies) < cap(j.energies) {
		j.energies = append(j.energies, EnergyPoint{
			Step: int64(j.step), Potential: e.Potential(), Kinetic: e.Kinetic, Total: e.Total(),
		})
	}
	j.mu.Unlock()
}

// startJob builds the engine state: from the newest valid checkpoint when
// the job has one (bitwise resume), from the spec otherwise.
func (s *Scheduler) startJob(j *job) error {
	if s.dir != "" {
		store, err := ckpt.Open(filepath.Join(jobDir(s.dir, j.id), "ckpt"), s.cfg.CkptKeep, j.spec.ConfigHash(), s.fs)
		if err != nil {
			return err
		}
		j.store = store
		store.SetObs(j.rec)
		c, err := store.LoadLatest()
		switch {
		case err == nil:
			sys := j.spec.rebuild(c.Snap)
			integ, ierr := j.spec.integrator(sys.Box)
			if ierr != nil {
				return ierr
			}
			integ.SetObs(j.rec)
			if rerr := integ.RestoreResume(sys, c.Snap); rerr != nil {
				return rerr
			}
			c.RestoreObs(j.rec)
			j.sys, j.integ = sys, integ
			j.mu.Lock()
			j.step = int(c.Step())
			j.resumedFrom = c.Step()
			j.atoms = sys.N()
			j.mu.Unlock()
		case errors.Is(err, ckpt.ErrNoCheckpoint):
			if err := s.startFresh(j); err != nil {
				return err
			}
		default:
			return err
		}
	} else if err := s.startFresh(j); err != nil {
		return err
	}
	// Preallocate the full energy ledger so steady-state stepping never
	// grows it.
	capRows := j.spec.Steps/s.cfg.EnergyEvery + 2
	j.mu.Lock()
	j.energies = make([]EnergyPoint, 0, capRows)
	j.mu.Unlock()
	j.started = true
	return nil
}

func (s *Scheduler) startFresh(j *job) error {
	sys := j.spec.buildFresh()
	integ, err := j.spec.integrator(sys.Box)
	if err != nil {
		return err
	}
	integ.SetObs(j.rec)
	j.sys, j.integ = sys, integ
	j.mu.Lock()
	j.atoms = sys.N()
	j.mu.Unlock()
	return nil
}

// removeActive drops j from the ring and wakes the promoter.
func (s *Scheduler) removeActive(j *job) {
	s.mu.Lock()
	for i, aj := range s.active {
		if aj == j {
			s.active = append(s.active[:i], s.active[i+1:]...)
			if i < s.rr && s.rr > 0 {
				s.rr--
			}
			break
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// finalize moves j to a terminal state, persists the durable marker and
// releases the engine memory (the obs recorder stays queryable).
func (s *Scheduler) finalize(j *job, state State, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.err = errMsg
	ds := durableState{State: state, Step: j.step, Error: errMsg}
	if state == StateDone {
		ds.FinalHash = fmt.Sprintf("%016x", j.finalHash)
	}
	j.mu.Unlock()

	s.mu.Lock()
	switch state {
	case StateDone:
		s.completed++
	case StateFailed:
		s.failed++
	case StateCanceled:
		s.canceled++
	}
	s.mu.Unlock()

	if s.dir != "" {
		if data, err := json.MarshalIndent(ds, "", "  "); err == nil {
			s.writeFileAtomic(jobDir(s.dir, j.id), stateFileName, data) //tmevet:ignore errdrop -- best effort: a lost marker re-admits the job on restart, never corrupts it
		}
	}
}

// writeFileAtomic writes data to dir/name with the temp + fsync + rename
// + dir-fsync protocol, through the scheduler's FS seam.
func (s *Scheduler) writeFileAtomic(dir, name string, data []byte) error {
	final := filepath.Join(dir, name)
	tmp := final + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()        //tmevet:ignore errdrop -- already failing; the first error wins
		s.fs.Remove(tmp) //tmevet:ignore errdrop -- best-effort temp cleanup on the failure path
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.fs.Remove(tmp) //tmevet:ignore errdrop -- best-effort temp cleanup on the failure path
		return err
	}
	return s.fs.SyncDir(dir)
}
