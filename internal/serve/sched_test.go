package serve

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"tme4a/internal/ckpt"
)

// fastSpec is a small, quick job: 8 water molecules, cutoff electrostatics.
func fastSpec(seed int64, steps int) Spec {
	return Spec{Method: "cutoff", Side: 2, Steps: steps, Equil: 10, Seed: seed}
}

// meshSpec exercises a registry mesh method through the scheduler.
func meshSpec(method string, seed int64, steps int) Spec {
	return Spec{Method: method, Side: 2, Steps: steps, Equil: 10, Seed: seed, Grid: 16}
}

// waitState polls until the job reaches a terminal state or the deadline
// passes.
func waitState(t *testing.T, s *Scheduler, id string) Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s at step %d/%d", id, st.State, st.Step, st.Steps)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func mustSubmit(t *testing.T, s *Scheduler, sp Spec) Status {
	t.Helper()
	st, err := s.Submit(sp)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return st
}

// TestTraceDeterministic pins the fair-share schedule: two equal jobs
// submitted before Start interleave in strict round-robin quanta, and the
// trace is identical run over run.
func TestTraceDeterministic(t *testing.T) {
	want := []Quantum{
		{Job: "j000000", From: 0, To: 25},
		{Job: "j000001", From: 0, To: 25},
		{Job: "j000000", From: 25, To: 50},
		{Job: "j000001", From: 25, To: 50},
		{Job: "j000000", From: 50, To: 60},
		{Job: "j000001", From: 50, To: 60},
	}
	for run := 0; run < 2; run++ {
		s, err := New(Config{MaxActive: 2, Quantum: 25, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		a := mustSubmit(t, s, fastSpec(1, 60))
		b := mustSubmit(t, s, fastSpec(2, 60))
		s.Start()
		waitState(t, s, a.ID)
		waitState(t, s, b.ID)
		s.Close()
		got := s.TraceLog()
		if len(got) != len(want) {
			t.Fatalf("run %d: trace has %d quanta, want %d: %v", run, len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("run %d: quantum %d = %+v, want %+v", run, i, got[i], want[i])
			}
		}
	}
}

// TestServedMatchesDirect is the tentpole acceptance: eight concurrent
// jobs multiplexed over the shared pool finish with trajectories bitwise
// identical to the same specs run alone, at GOMAXPROCS 1 and 4.
func TestServedMatchesDirect(t *testing.T) {
	specs := make([]Spec, 8)
	for i := range specs {
		if i%4 == 3 {
			specs[i] = meshSpec("spme", int64(10+i), 30)
		} else {
			specs[i] = fastSpec(int64(10+i), 30)
		}
	}
	direct := make([]uint64, len(specs))
	for i, sp := range specs {
		h, err := sp.RunDirect()
		if err != nil {
			t.Fatalf("RunDirect(%d): %v", i, err)
		}
		direct[i] = h
	}
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			s, err := New(Config{MaxActive: 8, Quantum: 7})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			ids := make([]string, len(specs))
			for i, sp := range specs {
				ids[i] = mustSubmit(t, s, sp).ID
			}
			s.Start()
			for i, id := range ids {
				st := waitState(t, s, id)
				if st.State != StateDone {
					t.Fatalf("job %s: state %s, err %q", id, st.State, st.Error)
				}
				want := fmt.Sprintf("%016x", direct[i])
				if st.FinalHash != want {
					t.Errorf("job %s (spec %d): served hash %s, direct %s — multiplexing leaked into the trajectory",
						id, i, st.FinalHash, want)
				}
			}
		})
	}
}

// TestKillAndResume kills the daemon mid-run — a torn checkpoint write
// followed by power loss, injected through FaultFS over MemFS — then
// boots a fresh scheduler on the surviving bytes. Every job must recover
// and finish with exactly the bits of an uninterrupted run.
func TestKillAndResume(t *testing.T) {
	specs := []Spec{fastSpec(21, 80), fastSpec(22, 80)}
	direct := make([]uint64, len(specs))
	for i, sp := range specs {
		h, err := sp.RunDirect()
		if err != nil {
			t.Fatal(err)
		}
		direct[i] = h
	}

	mfs := ckpt.NewMemFS()
	// The third checkpoint write anywhere tears mid-buffer and the machine
	// dies: each job has durable checkpoints before the tear, and the torn
	// file itself must be rejected by CRC on recovery.
	ffs := ckpt.NewFaultFS(mfs, ckpt.Rule{Op: ckpt.OpWrite, Match: "ckpt-", Nth: 3, Mode: ckpt.ModeTorn})

	s1, err := New(Config{Dir: "svc", FS: ffs, MaxActive: 2, Quantum: 10, CkptEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(specs))
	for i, sp := range specs {
		ids[i] = mustSubmit(t, s1, sp).ID
	}
	s1.Start()
	deadline := time.Now().Add(120 * time.Second)
	for !ffs.Crashed() {
		if time.Now().After(deadline) {
			t.Fatal("fault never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s1.Close() // the goroutine stops; every durability op has been dead since the crash

	s2, err := New(Config{Dir: "svc", FS: mfs, MaxActive: 2, Quantum: 10, CkptEvery: 10})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	listed := s2.List()
	if len(listed) != len(specs) {
		t.Fatalf("recovered %d jobs, want %d", len(listed), len(specs))
	}
	s2.Start()
	for i, id := range ids {
		st := waitState(t, s2, id)
		if st.State != StateDone {
			t.Fatalf("job %s after resume: state %s, err %q", id, st.State, st.Error)
		}
		if st.ResumedFrom <= 0 {
			t.Errorf("job %s: ResumedFrom = %d, expected a checkpoint resume", id, st.ResumedFrom)
		}
		want := fmt.Sprintf("%016x", direct[i])
		if st.FinalHash != want {
			t.Errorf("job %s: resumed hash %s, direct %s — resume is not bitwise", id, st.FinalHash, want)
		}
	}
}

// TestRestartAfterClose is the graceful half: a closed daemon's jobs
// resume on a new scheduler over the same directory, and already-finished
// jobs are listed terminal instead of re-run.
func TestRestartAfterClose(t *testing.T) {
	mfs := ckpt.NewMemFS()
	spFast := fastSpec(31, 20)
	spSlow := fastSpec(32, 300)
	s1, err := New(Config{Dir: "svc", FS: mfs, MaxActive: 2, Quantum: 10, CkptEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	fastID := mustSubmit(t, s1, spFast).ID
	slowID := mustSubmit(t, s1, spSlow).ID
	s1.Start()
	st := waitState(t, s1, fastID)
	doneHash := st.FinalHash
	s1.Close()

	s2, err := New(Config{Dir: "svc", FS: mfs, MaxActive: 2, Quantum: 10, CkptEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Get(fastID)
	if err != nil {
		t.Fatalf("terminal job lost on restart: %v", err)
	}
	if got.State != StateDone || got.FinalHash != doneHash {
		t.Errorf("terminal job: state %s hash %s, want done %s", got.State, got.FinalHash, doneHash)
	}
	s2.Start()
	final := waitState(t, s2, slowID)
	if final.State != StateDone {
		t.Fatalf("slow job: %s err %q", final.State, final.Error)
	}
	want, err := spSlow.RunDirect()
	if err != nil {
		t.Fatal(err)
	}
	if final.FinalHash != fmt.Sprintf("%016x", want) {
		t.Errorf("slow job resumed hash %s, direct %016x", final.FinalHash, want)
	}
}

// TestCancel covers both cancellation paths: a queued job dies without
// ever running; a running job stops at a step boundary.
func TestCancel(t *testing.T) {
	s, err := New(Config{MaxActive: 1, Quantum: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	running := mustSubmit(t, s, fastSpec(41, 100_000))
	queued := mustSubmit(t, s, fastSpec(42, 100))
	if st, err := s.Cancel(queued.ID); err != nil || st.State != StateCanceled {
		t.Fatalf("queued cancel: state %v err %v", st.State, err)
	}
	if st, _ := s.Cancel(queued.ID); st.State != StateCanceled {
		t.Errorf("second cancel changed state to %s", st.State)
	}
	s.Start()
	for {
		st, _ := s.Get(running.ID)
		if st.Step > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, running.ID)
	if st.State != StateCanceled {
		t.Fatalf("running cancel: state %s", st.State)
	}
	if st.Step <= 0 || st.Step >= st.Steps {
		t.Errorf("canceled at step %d of %d, expected mid-run", st.Step, st.Steps)
	}
	if _, err := s.Cancel("j999999"); err != ErrUnknownJob {
		t.Errorf("unknown cancel: %v", err)
	}
}

// TestBackpressure checks admission control: the pending queue is bounded
// and overflow is a typed rejection, not silent queuing.
func TestBackpressure(t *testing.T) {
	s, err := New(Config{MaxActive: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustSubmit(t, s, fastSpec(51, 50))
	mustSubmit(t, s, fastSpec(52, 50))
	if _, err := s.Submit(fastSpec(53, 50)); err != ErrQueueFull {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	s.Close()
	if _, err := s.Submit(fastSpec(54, 50)); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

// TestEnergiesLedger checks the streamed ledger: rows appear at the
// configured cadence, paging by index is stable, and the final step is
// always recorded.
func TestEnergiesLedger(t *testing.T) {
	s, err := New(Config{EnergyEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := mustSubmit(t, s, fastSpec(61, 45))
	s.Start()
	waitState(t, s, st.ID)
	rows, next, err := s.Energies(st.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := []int64{10, 20, 30, 40, 45}
	if len(rows) != len(wantSteps) {
		t.Fatalf("ledger has %d rows (%v), want %d", len(rows), rows, len(wantSteps))
	}
	for i, w := range wantSteps {
		if rows[i].Step != w {
			t.Errorf("row %d at step %d, want %d", i, rows[i].Step, w)
		}
		if rows[i].Total == 0 {
			t.Errorf("row %d has zero total energy", i)
		}
	}
	if next != len(rows) {
		t.Errorf("next = %d, want %d", next, len(rows))
	}
	page, pnext, err := s.Energies(st.ID, 2, 2)
	if err != nil || len(page) != 2 || page[0].Step != 30 || pnext != 4 {
		t.Errorf("page from=2 max=2: rows %v next %d err %v", page, pnext, err)
	}
}

// TestStepOnceAllocs gates the steady-state serving loop at zero
// allocations per step, the same bar the engine hot paths meet.
func TestStepOnceAllocs(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sp := fastSpec(71, 100_000)
	sp.Normalize()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	j := &job{id: "alloc", spec: sp, state: StateRunning}
	if err := s.startJob(j); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ { // warm the pair list and latency ring
		s.stepOnce(j)
	}
	if avg := testing.AllocsPerRun(100, func() { s.stepOnce(j) }); avg != 0 {
		t.Errorf("stepOnce allocates %.2f times per step; the serving loop must be allocation-free", avg)
	}
}

// TestStatsAndLatency checks the counter snapshot and that the latency
// ring produced ordered quantiles.
func TestStatsAndLatency(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := mustSubmit(t, s, fastSpec(81, 40))
	s.Start()
	waitState(t, s, st.ID)
	stats := s.Stats()
	if stats.Submitted != 1 || stats.Completed != 1 {
		t.Errorf("stats: %+v", stats)
	}
	if stats.StepsDone < 40 {
		t.Errorf("steps_done = %d, want >= 40", stats.StepsDone)
	}
	lat := stats.StepLatency
	if lat.Samples < 40 || lat.P50Ns <= 0 || lat.P50Ns > lat.P99Ns || lat.P99Ns > lat.MaxNs {
		t.Errorf("latency quantiles out of order: %+v", lat)
	}
}

// TestMetricsReport checks the per-job obs report is live and scoped to
// the one job.
func TestMetricsReport(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := mustSubmit(t, s, fastSpec(91, 30))
	s.Start()
	waitState(t, s, st.ID)
	rep, err := s.Metrics(st.ID, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Atoms != 24 {
		t.Errorf("report atoms = %d, want 24", rep.Atoms)
	}
	found := false
	for _, stg := range rep.Stages {
		if stg.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Error("report has no populated stages")
	}
	if _, err := s.Metrics("j424242", 1); err != ErrUnknownJob {
		t.Errorf("unknown metrics: %v", err)
	}
}
