// Package serve is the MD-as-a-service tier: a job API over the engine
// that multiplexes many concurrent simulations across the one shared
// worker pool (internal/par), the software analogue of MDGRAPE-4A pushing
// many workloads through a single accelerator pipeline.
//
// The package splits into three layers:
//
//   - Spec (this file): the validated JSON job description — a solver
//     registry Config plus box and step budget. Every trajectory served is
//     a pure function of its Spec, so per-job results are bitwise
//     reproducible regardless of what else the daemon is running.
//   - Scheduler (sched.go, job.go): fair round-robin multiplexing in
//     bounded step quanta with admission control, backpressure and
//     crash-consistent durability on internal/ckpt.
//   - Server (http.go): the stdlib HTTP/JSON surface cmd/mdserve exposes.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"tme4a/internal/ckpt"
	"tme4a/internal/md"
	"tme4a/internal/solver"
	"tme4a/internal/spme"
	"tme4a/internal/tune"
	"tme4a/internal/vec"
	"tme4a/internal/water"

	// The service validates and runs any registered method, so it links
	// the whole registry rather than leaving that to each binary.
	_ "tme4a/internal/core"
	_ "tme4a/internal/msm"
)

// Spec is one job description: which long-range method to run, on how
// large a TIP3P water box, for how many steps. The zero value of every
// optional field selects a documented default (Normalize), so a minimal
// submission is {"method":"tme","side":4,"steps":200}. A Spec fully
// determines its trajectory: same spec, same bits, on any daemon at any
// GOMAXPROCS.
type Spec struct {
	// Name is a free-form label echoed in listings.
	Name string `json:"name,omitempty"`
	// Method is "cutoff" (erfc-screened short range only), any solver
	// registry method (spme, tme, msm), or "auto": admission plans the
	// cheapest registered configuration predicted to meet ErrBudget
	// (internal/tune) and rewrites this spec to the concrete result, so
	// the config hash and the stored job carry the resolved plan, never
	// the word "auto". Default "tme".
	Method string `json:"method,omitempty"`
	// Kernel selects the TME middle-range family: "", "gauss", "useries".
	Kernel string `json:"kernel,omitempty"`
	// Side is the number of water molecules per box edge (side³ molecules,
	// 3·side³ atoms). Default 4.
	Side int `json:"side,omitempty"`
	// Steps is the total trajectory length in 1 fs steps. Required.
	Steps int `json:"steps"`
	// Dt is the time step in ps. Default 0.001.
	Dt float64 `json:"dt,omitempty"`
	// Rc is the short-range cutoff in nm; 0 selects min(0.9, 0.45·L) for
	// the spec's box edge L. Must stay below half the box.
	Rc float64 `json:"rc,omitempty"`
	// Grid is the mesh points per axis. Default 16.
	Grid int `json:"grid,omitempty"`
	// M is the TME Gaussians per middle-range shell. Default 3.
	M int `json:"m,omitempty"`
	// Gc is the grid-kernel cutoff (TME/MSM). Default 8.
	Gc int `json:"gc,omitempty"`
	// Levels is the TME/MSM middle-level count. Default 1.
	Levels int `json:"levels,omitempty"`
	// Skin is the Verlet buffer in nm (0 disables the pair list). Default 0.1.
	Skin float64 `json:"skin,omitempty"`
	// MeshEvery > 1 evaluates the mesh every MeshEvery steps (MTS). Default 1.
	MeshEvery int `json:"mesh_every,omitempty"`
	// Temp is the initial temperature in K. Default 300.
	Temp float64 `json:"temp,omitempty"`
	// Seed feeds box building, equilibration and the velocity draw. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// Equil is the number of cheap thermalization steps before the served
	// trajectory starts. Default 50.
	Equil int `json:"equil,omitempty"`
	// ErrBudget is the relative force-error budget for method "auto".
	// Required (and only meaningful) there; it stays on the resolved spec
	// and in the config hash as a record of what the plan promised.
	ErrBudget float64 `json:"err_budget,omitempty"`

	// autoErr records a planning failure from Normalize's method-"auto"
	// resolution; Validate surfaces it. Unexported on purpose: resolution
	// happens once at admission, stored specs are already concrete.
	autoErr error
}

// Admission bounds. The service refuses work it cannot multiplex fairly:
// boxes above maxSide monopolize the pool for seconds per quantum, and
// step budgets above maxSteps would pin a slot for hours.
const (
	minSide  = 2
	maxSide  = 24
	maxSteps = 1_000_000
	maxEquil = 5_000
	maxDt    = 0.01
	maxTemp  = 1_000
	// maxGrid/maxLevels bound the mesh a single job may request: a 64³
	// complex grid is already ~4 MiB of scratch per job.
	maxGrid   = 64
	maxLevels = 6
)

// maxSpecBytes bounds a submitted spec document; anything larger is
// rejected before JSON decoding allocates.
const maxSpecBytes = 1 << 16

// DecodeSpec parses a JSON job spec strictly: unknown fields, trailing
// data and oversized documents are errors, so a typo like "sides" cannot
// silently select a default box.
func DecodeSpec(data []byte) (Spec, error) {
	var sp Spec
	if len(data) > maxSpecBytes {
		return sp, fmt.Errorf("serve: spec document is %d bytes, limit %d", len(data), maxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return sp, fmt.Errorf("serve: decoding spec: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return sp, errors.New("serve: trailing data after spec document")
	}
	return sp, nil
}

// Normalize fills defaulted fields in place. It is idempotent and is
// applied before Validate, so a stored spec re-normalizes to itself and
// the config hash is stable across submit/restart.
func (sp *Spec) Normalize() {
	if sp.Method == "" {
		sp.Method = "tme"
	}
	if sp.Side == 0 {
		sp.Side = 4
	}
	if sp.Method == "auto" {
		sp.resolveAuto()
	}
	if sp.Dt == 0 {
		sp.Dt = 0.001
	}
	if sp.Rc == 0 && sp.Side >= minSide {
		sp.Rc = math.Min(0.9, 0.45*sp.Box().L[0])
	}
	if sp.Grid == 0 {
		sp.Grid = 16
	}
	if sp.M == 0 {
		sp.M = 3
	}
	if sp.Gc == 0 {
		sp.Gc = 8
	}
	if sp.Levels == 0 {
		sp.Levels = 1
	}
	if sp.Skin == 0 {
		sp.Skin = 0.1
	}
	if sp.MeshEvery == 0 {
		sp.MeshEvery = 1
	}
	if sp.Temp == 0 {
		sp.Temp = 300
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Equil == 0 {
		sp.Equil = 50
	}
}

// resolveAuto rewrites a method-"auto" spec to the concrete plan the
// tuner picks for its box and error budget. Planning failures (budget
// out of range, infeasible budget) are parked in autoErr for Validate —
// Normalize cannot return one. The plan fully determines method, kernel,
// cutoff, grid, and mesh parameters; a skinless plan still runs with the
// spec-default Verlet skin (the skin changes step cost, never accuracy).
func (sp *Spec) resolveAuto() {
	if sp.Side < minSide || sp.Side > maxSide {
		sp.autoErr = fmt.Errorf("serve: side %d out of range [%d, %d]", sp.Side, minSide, maxSide)
		return
	}
	plan, err := tune.PlanFor(tune.Request{
		Box: sp.Box(), Atoms: 3 * sp.Side * sp.Side * sp.Side, ErrBudget: sp.ErrBudget,
	})
	if err != nil {
		sp.autoErr = fmt.Errorf("serve: auto planning: %w", err)
		return
	}
	sp.Method = plan.Method
	sp.Kernel = plan.Kernel
	sp.Rc = plan.Rc
	sp.Grid = plan.Grid[0]
	sp.Skin = plan.Skin
	if plan.M > 0 {
		sp.M = plan.M
	}
	if plan.Gc > 0 {
		sp.Gc = plan.Gc
	}
	if plan.Levels > 0 {
		sp.Levels = plan.Levels
	}
}

// Box returns the cubic box the spec's molecule count fills at ambient
// density.
func (sp Spec) Box() vec.Box {
	return water.CubicBoxFor(sp.Side * sp.Side * sp.Side)
}

// Validate checks every field and, for mesh methods, constructs the
// configured solver once so the per-package Params.Validate errors (odd
// order, non-power-of-two grid, out-of-range u-series M, unknown kernel)
// surface verbatim in the API response. The spec must be normalized.
func (sp Spec) Validate() error {
	if sp.autoErr != nil {
		return sp.autoErr
	}
	if sp.ErrBudget != 0 && (sp.ErrBudget < 0 || sp.ErrBudget > 0.5 || sp.ErrBudget != sp.ErrBudget) {
		return fmt.Errorf("serve: err_budget %g out of range (0, 0.5]", sp.ErrBudget)
	}
	if sp.Side < minSide || sp.Side > maxSide {
		return fmt.Errorf("serve: side %d out of range [%d, %d]", sp.Side, minSide, maxSide)
	}
	if sp.Steps <= 0 {
		return fmt.Errorf("serve: steps %d must be positive", sp.Steps)
	}
	if sp.Steps > maxSteps {
		return fmt.Errorf("serve: steps %d exceeds the %d-step budget", sp.Steps, maxSteps)
	}
	if sp.Dt <= 0 || sp.Dt > maxDt {
		return fmt.Errorf("serve: dt %g ps out of range (0, %g]", sp.Dt, maxDt)
	}
	half := sp.Box().L[0] / 2
	if sp.Rc <= 0 || sp.Rc >= half {
		return fmt.Errorf("serve: rc %g nm must lie in (0, %g) for a side-%d box", sp.Rc, half, sp.Side)
	}
	if sp.Skin < 0 || sp.Skin > 0.5 {
		return fmt.Errorf("serve: skin %g nm out of range [0, 0.5]", sp.Skin)
	}
	if sp.MeshEvery < 1 || sp.MeshEvery > 16 {
		return fmt.Errorf("serve: mesh_every %d out of range [1, 16]", sp.MeshEvery)
	}
	if sp.Temp <= 0 || sp.Temp > maxTemp {
		return fmt.Errorf("serve: temp %g K out of range (0, %g]", sp.Temp, float64(maxTemp))
	}
	if sp.Equil < 0 || sp.Equil > maxEquil {
		return fmt.Errorf("serve: equil %d out of range [0, %d]", sp.Equil, maxEquil)
	}
	if sp.Kernel != "" && sp.Method != "tme" {
		return fmt.Errorf("serve: kernel %q applies only to method tme", sp.Kernel)
	}
	// Mesh-size admission bounds, checked before any solver is built so a
	// hostile spec cannot make Validate itself allocate a huge grid.
	if sp.Grid < 4 || sp.Grid > maxGrid {
		return fmt.Errorf("serve: grid %d out of range [4, %d]", sp.Grid, maxGrid)
	}
	if sp.Levels < 1 || sp.Levels > maxLevels {
		return fmt.Errorf("serve: levels %d out of range [1, %d]", sp.Levels, maxLevels)
	}
	if sp.M < 1 || sp.M > 64 {
		return fmt.Errorf("serve: m %d out of range [1, 64]", sp.M)
	}
	if sp.Gc < 1 || sp.Gc > 64 {
		return fmt.Errorf("serve: gc %d out of range [1, 64]", sp.Gc)
	}
	if sp.Method != "cutoff" {
		if _, err := sp.newMesh(); err != nil {
			return err
		}
	}
	return nil
}

// canonical renders every trajectory-shaping parameter into the string
// the checkpoint config hash fingerprints; resuming a job under an edited
// spec is refused by the store.
func (sp Spec) canonical() string {
	return fmt.Sprintf(
		"serve method=%s kernel=%s side=%d steps=%d dt=%g rc=%g grid=%d M=%d gc=%d L=%d skin=%g meshEvery=%d T=%g seed=%d equil=%d errbudget=%g rtol=1e-4",
		sp.Method, sp.Kernel, sp.Side, sp.Steps, sp.Dt, sp.Rc, sp.Grid, sp.M, sp.Gc,
		sp.Levels, sp.Skin, sp.MeshEvery, sp.Temp, sp.Seed, sp.Equil, sp.ErrBudget)
}

// ConfigHash fingerprints the normalized spec for the checkpoint store.
func (sp Spec) ConfigHash() uint64 { return ckpt.ConfigHash(sp.canonical()) }

// alpha is the Ewald splitting parameter shared by the short-range and
// mesh terms, at the same force tolerance cmd/mdrun uses.
func (sp Spec) alpha() float64 { return spme.AlphaFromRTol(sp.Rc, 1e-4) }

// newMesh constructs the spec's mesh solver through the registry (nil for
// the cutoff method).
func (sp Spec) newMesh() (md.MeshSolver, error) {
	if sp.Method == "cutoff" {
		return nil, nil
	}
	s, err := solver.New(sp.Method, solver.Config{
		Alpha: sp.alpha(), Rc: sp.Rc, Order: 6, N: [3]int{sp.Grid, sp.Grid, sp.Grid},
		Levels: sp.Levels, M: sp.M, Gc: sp.Gc, Kernel: sp.Kernel,
	}, sp.Box())
	if err != nil {
		return nil, err
	}
	return s, nil
}

// meta carries the builder parameters into snapshots, mirroring cmd/mdrun.
func (sp Spec) meta() map[string]int64 {
	return map[string]int64{"side": int64(sp.Side), "seed": sp.Seed}
}

// buildFresh constructs the job's initial state: lattice build, cheap
// thermalization, Maxwell–Boltzmann velocity draw. Pure in the spec.
func (sp Spec) buildFresh() *md.System {
	sys := water.Build(sp.Side, sp.Side, sp.Side, sp.Box(), sp.Seed)
	if sp.Equil > 0 {
		water.Equilibrate(sys, sp.Equil, sp.Dt, sp.Temp, math.Min(0.9, sp.Rc), sp.Seed+1)
	}
	sys.InitVelocities(sp.Temp, rand.New(rand.NewSource(sp.Seed+2)))
	return sys
}

// rebuild reconstructs the topology for a checkpoint resume; positions
// and velocities are about to be overwritten by the snapshot, so no
// equilibration and no velocity draw.
func (sp Spec) rebuild(snap *md.Snapshot) *md.System {
	return water.Build(sp.Side, sp.Side, sp.Side, snap.Box, sp.Seed)
}

// integrator builds the spec's integrator for a box. The mesh solver is
// constructed fresh so concurrent jobs never share solver scratch.
func (sp Spec) integrator(box vec.Box) (*md.Integrator, error) {
	mesh, err := sp.newMesh()
	if err != nil {
		return nil, err
	}
	return &md.Integrator{
		FF:        &md.ForceField{Alpha: sp.alpha(), Rc: sp.Rc, Skin: sp.Skin, Mesh: mesh},
		Dt:        sp.Dt,
		MeshEvery: sp.MeshEvery,
	}, nil
}

// RunDirect executes the spec's full trajectory in-process, outside any
// scheduler, and returns the bitwise state hash of the final step. It is
// the reference the served trajectories must match exactly — the tests'
// single-job twin of a multiplexed run.
func (sp Spec) RunDirect() (uint64, error) {
	sp.Normalize()
	if err := sp.Validate(); err != nil {
		return 0, err
	}
	sys := sp.buildFresh()
	integ, err := sp.integrator(sys.Box)
	if err != nil {
		return 0, err
	}
	for s := 0; s < sp.Steps; s++ {
		integ.Step(sys)
	}
	return md.StateHash(sys), nil
}
