package loadgen

import (
	"net/http/httptest"
	"testing"

	"tme4a/internal/serve"
)

// TestRunAgainstLiveDaemon drives a real scheduler through the HTTP
// surface and checks the load generator's accounting: all jobs complete,
// throughput is positive, and the daemon-side latency quantiles are
// populated and ordered.
func TestRunAgainstLiveDaemon(t *testing.T) {
	s, err := serve.New(serve.Config{MaxActive: 4, Quantum: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	ts := httptest.NewServer(serve.NewServer(s))
	defer ts.Close()

	res, err := Run(Config{
		BaseURL:     ts.URL,
		Jobs:        6,
		Concurrency: 3,
		Spec:        serve.Spec{Method: "cutoff", Side: 2, Steps: 30, Equil: 10, Seed: 500},
	})
	if err != nil {
		t.Fatalf("Run: %v (result %+v)", err, res)
	}
	if res.Completed != 6 || res.Failed != 0 {
		t.Fatalf("completed %d failed %d, want 6/0", res.Completed, res.Failed)
	}
	if res.JobsPerSec <= 0 || res.ElapsedNs <= 0 {
		t.Errorf("throughput not measured: %+v", res)
	}
	if res.StepsDone < 6*30 {
		t.Errorf("steps_done = %d, want >= 180", res.StepsDone)
	}
	if res.P50StepNs <= 0 || res.P50StepNs > res.P99StepNs {
		t.Errorf("latency quantiles: p50 %d p99 %d", res.P50StepNs, res.P99StepNs)
	}
}

// TestRunBackpressure squeezes the fleet through a tiny queue: 429s are
// absorbed by retry and counted, and every job still completes.
func TestRunBackpressure(t *testing.T) {
	s, err := serve.New(serve.Config{MaxActive: 1, QueueCap: 1, Quantum: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	ts := httptest.NewServer(serve.NewServer(s))
	defer ts.Close()

	res, err := Run(Config{
		BaseURL:     ts.URL,
		Jobs:        5,
		Concurrency: 5,
		Spec:        serve.Spec{Method: "cutoff", Side: 2, Steps: 20, Equil: 10, Seed: 600},
	})
	if err != nil {
		t.Fatalf("Run: %v (result %+v)", err, res)
	}
	if res.Completed != 5 {
		t.Fatalf("completed %d, want 5 (%+v)", res.Completed, res)
	}
	if res.Rejected == 0 {
		t.Log("no 429s observed this run (scheduling-dependent); backpressure path untested here")
	}
}
