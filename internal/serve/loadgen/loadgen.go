// Package loadgen is the mdserve load generator: it drives a running
// daemon over plain HTTP — the same path a real client takes — submitting
// a fleet of jobs from a bounded worker pool and reporting service-side
// throughput and step-latency quantiles. The saturation experiment
// (tmebench -exp saturate) sweeps it across concurrency levels to produce
// BENCH_serve.json.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"tme4a/internal/obs"
	"tme4a/internal/serve"
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8612".
	BaseURL string
	// Jobs is the total number of submissions.
	Jobs int
	// Concurrency is the client worker count (concurrent submit+poll
	// loops). Defaults to 1.
	Concurrency int
	// Spec is the job template; each submission gets Spec.Seed+i so the
	// daemon runs distinct trajectories.
	Spec serve.Spec
	// PollEvery is the status poll interval. Defaults to 5ms.
	PollEvery time.Duration
}

// Result is one load run's outcome.
type Result struct {
	Jobs        int     `json:"jobs"`
	Concurrency int     `json:"concurrency"`
	Completed   int     `json:"completed"`
	Failed      int     `json:"failed"`
	Rejected    int     `json:"rejected"` // 429 backpressure responses observed
	ElapsedNs   int64   `json:"elapsed_ns"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	// Step latency quantiles from the daemon's own ring (GET /stats),
	// covering every step it served during the run.
	P50StepNs int64 `json:"p50_step_ns"`
	P99StepNs int64 `json:"p99_step_ns"`
	StepsDone int64 `json:"steps_done"`
}

// Run submits cfg.Jobs jobs from cfg.Concurrency workers and blocks until
// every submission reaches a terminal state. Backpressure (429) is
// retried after a poll interval and counted, not treated as failure.
func Run(cfg Config) (Result, error) {
	if cfg.Jobs <= 0 {
		return Result{}, fmt.Errorf("loadgen: jobs must be positive, got %d", cfg.Jobs)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 5 * time.Millisecond
	}
	client := &http.Client{}

	type outcome struct {
		done     bool
		rejected int
		err      error
	}
	work := make(chan int, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		work <- i
	}
	close(work)
	results := make(chan outcome, cfg.Jobs)

	t0 := obs.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		go func() {
			for i := range work {
				o := outcome{}
				sp := cfg.Spec
				sp.Seed += int64(i)
				id, rejected, err := submit(client, cfg, sp)
				o.rejected = rejected
				if err != nil {
					o.err = err
					results <- o
					continue
				}
				st, err := await(client, cfg, id)
				if err != nil {
					o.err = err
				} else {
					o.done = st.State == serve.StateDone
				}
				results <- o
			}
		}()
	}

	var res Result
	res.Jobs = cfg.Jobs
	res.Concurrency = cfg.Concurrency
	var firstErr error
	for i := 0; i < cfg.Jobs; i++ {
		o := <-results
		res.Rejected += o.rejected
		switch {
		case o.err != nil:
			res.Failed++
			if firstErr == nil {
				firstErr = o.err
			}
		case o.done:
			res.Completed++
		default:
			res.Failed++
		}
	}
	res.ElapsedNs = obs.Now() - t0
	if res.ElapsedNs > 0 {
		res.JobsPerSec = float64(res.Completed) / (float64(res.ElapsedNs) / 1e9)
	}

	var stats serve.Stats
	if err := getJSON(client, cfg.BaseURL+"/stats", &stats); err == nil {
		res.P50StepNs = stats.StepLatency.P50Ns
		res.P99StepNs = stats.StepLatency.P99Ns
		res.StepsDone = stats.StepsDone
	} else if firstErr == nil {
		firstErr = err
	}
	return res, firstErr
}

// submit POSTs the spec, retrying 429 responses, and returns the job id
// plus the number of backpressure rejections absorbed.
func submit(client *http.Client, cfg Config, sp serve.Spec) (string, int, error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return "", 0, err
	}
	rejected := 0
	for {
		resp, err := client.Post(cfg.BaseURL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", rejected, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", rejected, err
		}
		switch resp.StatusCode {
		case http.StatusCreated:
			var st serve.Status
			if err := json.Unmarshal(data, &st); err != nil {
				return "", rejected, err
			}
			return st.ID, rejected, nil
		case http.StatusTooManyRequests:
			rejected++
			time.Sleep(cfg.PollEvery)
		default:
			return "", rejected, fmt.Errorf("loadgen: submit: %s: %s", resp.Status, data)
		}
	}
}

// await polls the job until it reaches a terminal state.
func await(client *http.Client, cfg Config, id string) (serve.Status, error) {
	for {
		var st serve.Status
		if err := getJSON(client, cfg.BaseURL+"/jobs/"+id, &st); err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		time.Sleep(cfg.PollEvery)
	}
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body) //nolint:errcheck // best-effort error detail
		return fmt.Errorf("loadgen: GET %s: %s: %s", url, resp.Status, data)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
