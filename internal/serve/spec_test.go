package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"tme4a/internal/tune"
)

// TestDecodeSpecStrict pins the strict decode contract: typos, trailing
// garbage and oversized documents are hard errors.
func TestDecodeSpecStrict(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"minimal", `{"method":"cutoff","steps":10}`, ""},
		{"unknown field", `{"method":"cutoff","steps":10,"sides":4}`, "unknown field"},
		{"trailing data", `{"steps":10}{"steps":20}`, "trailing data"},
		{"not json", `steps=10`, "decoding spec"},
		{"wrong type", `{"steps":"ten"}`, "decoding spec"},
		{"oversize", `{"name":"` + strings.Repeat("x", maxSpecBytes) + `"}`, "limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpec([]byte(tc.body))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("DecodeSpec: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("DecodeSpec error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateTable drives every rejected field through Normalize+Validate
// — the exact path a POST /jobs body takes — and checks the solver
// packages' own Params.Validate messages surface verbatim.
func TestValidateTable(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"unknown method", func(sp *Spec) { sp.Method = "pppm" }, "unknown method"},
		{"unknown kernel", func(sp *Spec) { sp.Method = "tme"; sp.Kernel = "cauchy" }, "unknown kernel family"},
		{"kernel on non-tme", func(sp *Spec) { sp.Method = "spme"; sp.Kernel = "gauss" }, "applies only to method tme"},
		{"side too small", func(sp *Spec) { sp.Side = 1 }, "side 1 out of range"},
		{"side too large", func(sp *Spec) { sp.Side = 100 }, "side 100 out of range"},
		{"zero steps", func(sp *Spec) { sp.Steps = 0 }, "steps 0 must be positive"},
		{"negative steps", func(sp *Spec) { sp.Steps = -5 }, "steps -5 must be positive"},
		{"steps budget", func(sp *Spec) { sp.Steps = maxSteps + 1 }, "exceeds"},
		{"negative dt", func(sp *Spec) { sp.Dt = -0.001 }, "dt"},
		{"huge dt", func(sp *Spec) { sp.Dt = 1 }, "dt"},
		{"rc beyond half box", func(sp *Spec) { sp.Rc = 10 }, "rc 10"},
		{"negative rc", func(sp *Spec) { sp.Rc = -1 }, "rc -1"},
		{"negative skin", func(sp *Spec) { sp.Skin = -0.1 }, "skin"},
		{"fat skin", func(sp *Spec) { sp.Skin = 2 }, "skin"},
		{"mesh_every", func(sp *Spec) { sp.MeshEvery = 99 }, "mesh_every"},
		{"cold start", func(sp *Spec) { sp.Temp = -3 }, "temp"},
		{"hot start", func(sp *Spec) { sp.Temp = 5000 }, "temp"},
		{"negative equil", func(sp *Spec) { sp.Equil = -1 }, "equil"},
		{"equil budget", func(sp *Spec) { sp.Equil = maxEquil + 1 }, "equil"},
		// Errors owned by the solver packages, surfaced verbatim.
		{"spme non-pow2 grid", func(sp *Spec) { sp.Method = "spme"; sp.Grid = 17 }, "not a power of two"},
		{"tme grid vs levels", func(sp *Spec) { sp.Method = "tme"; sp.Grid = 20; sp.Levels = 3 }, "not divisible"},
		{"useries M range", func(sp *Spec) { sp.Method = "tme"; sp.Kernel = "useries"; sp.M = 40 }, "u-series"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := Spec{Method: "cutoff", Side: 2, Steps: 50}
			tc.mutate(&sp)
			sp.Normalize()
			err := sp.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestNormalizeStable checks Normalize is idempotent and the config hash
// is invariant under a store/decode round trip — the property the
// checkpoint guard depends on across daemon restarts.
func TestNormalizeStable(t *testing.T) {
	sp := Spec{Method: "tme", Side: 3, Steps: 100}
	sp.Normalize()
	h1 := sp.ConfigHash()
	again := sp
	again.Normalize()
	if again != sp {
		t.Fatalf("Normalize not idempotent: %+v vs %+v", again, sp)
	}
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	back.Normalize()
	if back.ConfigHash() != h1 {
		t.Fatalf("config hash drifted across marshal round trip: %016x vs %016x", back.ConfigHash(), h1)
	}
}

// TestAutoSpecResolves: a method-"auto" submission is rewritten at
// Normalize to the tuner's concrete plan — the stored job and its config
// hash never contain "auto" — and the resolved spec passes the same
// Validate as an explicit one.
func TestAutoSpecResolves(t *testing.T) {
	sp := Spec{Method: "auto", Side: 6, Steps: 100, ErrBudget: 1e-3}
	sp.Normalize()
	if sp.Method == "auto" || sp.Method == "" {
		t.Fatalf("auto method not resolved: %+v", sp)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("resolved auto spec invalid: %v", err)
	}
	plan, err := tune.PlanFor(tune.Request{Box: sp.Box(), Atoms: 3 * 6 * 6 * 6, ErrBudget: 1e-3})
	if err != nil {
		t.Fatalf("PlanFor: %v", err)
	}
	if sp.Method != plan.Method || sp.Rc != plan.Rc || sp.Grid != plan.Grid[0] {
		t.Errorf("spec %+v does not match the tuner's plan %s", sp, plan.String())
	}

	// The budget is part of the config hash, and a different budget that
	// picks a different plan must hash differently.
	loose := Spec{Method: "auto", Side: 6, Steps: 100, ErrBudget: 5e-3}
	loose.Normalize()
	if loose.ConfigHash() == sp.ConfigHash() {
		t.Error("different budgets produced the same config hash")
	}

	// Idempotent: re-normalizing the resolved spec changes nothing.
	again := sp
	again.Normalize()
	if again != sp {
		t.Errorf("resolved spec not stable under Normalize: %+v vs %+v", again, sp)
	}
}

// TestAutoSpecErrors: planning failures surface through Validate as
// typed tuner errors; err_budget is bounds-checked even for explicit
// methods.
func TestAutoSpecErrors(t *testing.T) {
	missing := Spec{Method: "auto", Side: 4, Steps: 10}
	missing.Normalize()
	if err := missing.Validate(); err == nil || !strings.Contains(err.Error(), "auto planning") {
		t.Errorf("auto without err_budget: %v, want planning error", err)
	}
	infeasible := Spec{Method: "auto", Side: 4, Steps: 10, ErrBudget: 2e-6}
	infeasible.Normalize()
	if err := infeasible.Validate(); err == nil || !strings.Contains(err.Error(), "no plan meets error budget") {
		t.Errorf("infeasible budget: %v, want infeasible planning error", err)
	}
	bad := Spec{Method: "tme", Side: 4, Steps: 10, ErrBudget: -1}
	bad.Normalize()
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "err_budget") {
		t.Errorf("negative err_budget: %v, want range error", err)
	}
}

// FuzzJobSpecDecode fuzzes the submission decoder: arbitrary bytes must
// never panic, and any accepted document must survive a normalize →
// marshal → decode round trip with an identical spec and config hash.
func FuzzJobSpecDecode(f *testing.F) {
	f.Add([]byte(`{"method":"tme","steps":200}`))
	f.Add([]byte(`{"method":"cutoff","side":2,"steps":10,"seed":7}`))
	f.Add([]byte(`{"method":"spme","grid":32,"steps":50,"dt":0.002,"rc":0.5}`))
	f.Add([]byte(`{"method":"tme","kernel":"useries","m":6,"levels":2,"steps":1}`))
	f.Add([]byte(`{"method":"auto","err_budget":0.001,"side":4,"steps":20}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"steps":1e9}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := DecodeSpec(data)
		if err != nil {
			return
		}
		sp.Normalize()
		if verr := sp.Validate(); verr != nil {
			return // rejected specs only need a clean error
		}
		out, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("valid spec failed to marshal: %v (%+v)", err, sp)
		}
		back, err := DecodeSpec(out)
		if err != nil {
			t.Fatalf("round trip decode failed: %v on %s", err, out)
		}
		back.Normalize()
		if back != sp {
			t.Fatalf("round trip changed the spec: %+v vs %+v", back, sp)
		}
		if back.ConfigHash() != sp.ConfigHash() {
			t.Fatalf("round trip changed the config hash")
		}
	})
}
