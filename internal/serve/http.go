package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"tme4a/internal/solver"
)

// Server exposes a Scheduler as the mdserve HTTP/JSON API:
//
//	POST   /jobs               submit a Spec           → 201 Status (400/429/503)
//	GET    /jobs               list all jobs           → 200 []Status
//	GET    /jobs/{id}          one job                 → 200 Status
//	DELETE /jobs/{id}          cancel                  → 200 Status
//	GET    /jobs/{id}/metrics  per-stage obs report    → 200 obs.Report
//	GET    /jobs/{id}/energies ledger rows ?from=&max= → 200 {rows, next}
//	GET    /jobs/{id}/stream   live CSV energy stream  → 200 text/csv (chunked)
//	GET    /stats              scheduler counters      → 200 Stats
//	GET    /methods            registered solvers      → 200 []solver.Method
//	GET    /healthz            liveness                → 200 {"ok":true}
//
// Errors are JSON: {"error": "..."}.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer builds the API surface over s.
func NewServer(s *Scheduler) *Server {
	sv := &Server{sched: s, mux: http.NewServeMux()}
	sv.mux.HandleFunc("POST /jobs", sv.submit)
	sv.mux.HandleFunc("GET /jobs", sv.list)
	sv.mux.HandleFunc("GET /jobs/{id}", sv.get)
	sv.mux.HandleFunc("DELETE /jobs/{id}", sv.cancel)
	sv.mux.HandleFunc("GET /jobs/{id}/metrics", sv.metrics)
	sv.mux.HandleFunc("GET /jobs/{id}/energies", sv.energies)
	sv.mux.HandleFunc("GET /jobs/{id}/stream", sv.stream)
	sv.mux.HandleFunc("GET /stats", sv.stats)
	sv.mux.HandleFunc("GET /methods", sv.methods)
	sv.mux.HandleFunc("GET /healthz", sv.healthz)
	return sv
}

// ServeHTTP implements http.Handler.
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { sv.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //tmevet:ignore errdrop -- status already committed by WriteHeader; nothing left to signal the client with
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// submitErrCode maps a Submit error to its HTTP status.
func submitErrCode(err error) int {
	var verr *ValidationError
	switch {
	case errors.As(err, &verr):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (sv *Server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	sp, err := DecodeSpec(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := sv.sched.Submit(sp)
	if err != nil {
		writeErr(w, submitErrCode(err), err)
		return
	}
	w.Header().Set("Location", "/jobs/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (sv *Server) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sv.sched.List())
}

func (sv *Server) get(w http.ResponseWriter, r *http.Request) {
	st, err := sv.sched.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (sv *Server) cancel(w http.ResponseWriter, r *http.Request) {
	st, err := sv.sched.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (sv *Server) metrics(w http.ResponseWriter, r *http.Request) {
	rep, err := sv.sched.Metrics(r.PathValue("id"), runtime.GOMAXPROCS(0))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (sv *Server) energies(w http.ResponseWriter, r *http.Request) {
	from := queryInt(r, "from", 0)
	max := queryInt(r, "max", 0)
	rows, next, err := sv.sched.Energies(r.PathValue("id"), from, max)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rows": rows, "next": next})
}

// stream writes the job's energy ledger as chunked CSV, following the
// live run until it reaches a terminal state (or the client goes away).
func (sv *Server) stream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := sv.sched.Get(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	// A write error means the client is gone; without checking it, a
	// non-terminal job whose context outlives the connection would keep
	// this handler polling forever (found by tmevet errdrop).
	if _, err := fmt.Fprintln(w, "step,potential,kinetic,total"); err != nil {
		return
	}
	writeRows := func(rows []EnergyPoint) error {
		for _, e := range rows {
			if _, err := fmt.Fprintf(w, "%d,%.17g,%.17g,%.17g\n", e.Step, e.Potential, e.Kinetic, e.Total); err != nil {
				return err
			}
		}
		return nil
	}
	flusher, _ := w.(http.Flusher)
	next := 0
	for {
		rows, n, err := sv.sched.Energies(id, next, 0)
		if err != nil {
			return
		}
		if writeRows(rows) != nil {
			return
		}
		next = n
		if flusher != nil {
			flusher.Flush()
		}
		st, err := sv.sched.Get(id)
		if err != nil || st.State.Terminal() {
			// Drain any rows appended between the read and the state check.
			if rows, _, err := sv.sched.Energies(id, next, 0); err == nil {
				writeRows(rows) //tmevet:ignore errdrop -- final drain; the handler returns either way
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (sv *Server) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sv.sched.Stats())
}

func (sv *Server) methods(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, solver.Methods())
}

func (sv *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func queryInt(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
