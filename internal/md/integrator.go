package md

import (
	"math"

	"tme4a/internal/obs"
	"tme4a/internal/vec"
)

// Integrator advances a System with the velocity-Verlet scheme and SETTLE
// constraints, matching the three-phase structure the paper describes for
// the GP cores (Sec. V.A): half-kick + drift, force evaluation, half-kick.
type Integrator struct {
	FF *ForceField
	Dt float64 // ps

	// MeshEvery > 1 evaluates the long-range mesh only every MeshEvery
	// steps, replaying its forces in between — the multiple-timestep
	// practice the paper's Table 2 notes for the Anton machines.
	MeshEvery int

	// Thermostat, if non-nil, is applied after each step. Both the
	// Berendsen weak-coupling Thermostat and the canonical CSVR satisfy
	// the interface.
	Thermostat Coupler

	initialized bool
	stepCount   int
	lastE       Energies
	old         []vec.V // reference positions of constrained waters
}

// SetObs attaches a stage recorder to the integrator's force field and
// everything below it (nil detaches). Step reads the recorder from the
// force field, so this is pure delegation.
func (in *Integrator) SetObs(r *obs.Recorder) { in.FF.SetObs(r) }

// Step advances the system by one time step and returns the energies
// evaluated at the new positions.
//
//tme:noalloc
func (in *Integrator) Step(sys *System) Energies {
	if !in.initialized {
		in.lastE = in.FF.Compute(sys)
		in.initialized = true
	}
	rec := in.FF.Obs
	spStep := rec.Start(obs.StageStep)
	dt := in.Dt

	// Phase 1: half-kick with the previous step's forces, then drift.
	spInt := rec.Start(obs.StageIntegrate)
	for i := range sys.Vel {
		sys.Vel[i] = sys.Vel[i].Add(sys.Frc[i].Scale(0.5 * dt / sys.Mass[i]))
	}
	if sys.WaterModel != nil && len(sys.RigidWaters) > 0 {
		if len(in.old) != 3*len(sys.RigidWaters) {
			in.old = make([]vec.V, 3*len(sys.RigidWaters)) //tmevet:ignore noalloc -- grow-once on first step / atom-count change
		}
		for wi, w := range sys.RigidWaters {
			for k := 0; k < 3; k++ {
				in.old[3*wi+k] = sys.Pos[w[k]]
			}
		}
	}
	for i := range sys.Pos {
		sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(dt))
	}
	spInt.Stop()
	// Constrain positions; fold the constraint impulse into velocities via
	// v = (r_constrained − r_old)/dt.
	if sys.WaterModel != nil {
		spCon := rec.Start(obs.StageConstraint)
		for wi, w := range sys.RigidWaters {
			a0, b0, c0 := in.old[3*wi], in.old[3*wi+1], in.old[3*wi+2]
			a, b, c := sys.WaterModel.Settle(a0, b0, c0, sys.Pos[w[0]], sys.Pos[w[1]], sys.Pos[w[2]])
			sys.Vel[w[0]] = a.Sub(a0).Scale(1 / dt)
			sys.Vel[w[1]] = b.Sub(b0).Scale(1 / dt)
			sys.Vel[w[2]] = c.Sub(c0).Scale(1 / dt)
			sys.Pos[w[0]], sys.Pos[w[1]], sys.Pos[w[2]] = a, b, c
		}
		spCon.Stop()
	}

	// Phase 2: forces at the new positions.
	in.stepCount++
	var e Energies
	if in.MeshEvery > 1 && in.stepCount%in.MeshEvery != 0 {
		e = in.FF.ComputeReuseMesh(sys)
	} else {
		e = in.FF.Compute(sys)
	}

	// Phase 3: second half-kick, then remove constraint-violating velocity
	// components (the velocity half of SETTLE / RATTLE).
	spInt = rec.Start(obs.StageIntegrate)
	for i := range sys.Vel {
		sys.Vel[i] = sys.Vel[i].Add(sys.Frc[i].Scale(0.5 * dt / sys.Mass[i]))
	}
	spInt.Stop()
	spCon := rec.Start(obs.StageConstraint)
	sys.applyVelocityConstraints()
	spCon.Stop()

	if in.Thermostat != nil {
		in.Thermostat.Apply(sys, dt)
	}
	e.Kinetic = sys.KineticEnergy()
	in.lastE = e
	spStep.Stop()
	return e
}

// CaptureResume captures the complete cross-step state needed to resume
// the run bitwise: the system snapshot plus the step counter, last-step
// forces and energies, the Verlet-list build positions and the cached
// long-range term of a multiple-timestep schedule. Call it between steps
// (e.g. from a Run report callback), never concurrently with Step.
//
// The SETTLE scratch (in.old) is deliberately not captured: it is
// refilled from the current positions at the top of every step before
// anything reads it, so it carries no cross-step information. A CSVR
// thermostat's RNG state is likewise not captured — CSVR runs resume as
// valid canonical trajectories but not bitwise-identical ones.
func (in *Integrator) CaptureResume(sys *System, meta map[string]int64) *Snapshot {
	snap := sys.TakeSnapshot(meta)
	snap.Step = int64(in.stepCount)
	if in.initialized {
		snap.Frc = append([]vec.V(nil), sys.Frc...)
		snap.LastE = in.lastE
	}
	in.FF.captureResume(sys, snap)
	return snap
}

// RestoreResume restores a CaptureResume snapshot into sys and the
// integrator/force-field cross-step state, so the next Step continues the
// checkpointed trajectory bitwise. The system must have the topology the
// snapshot was taken from (same builder, same atom count).
func (in *Integrator) RestoreResume(sys *System, snap *Snapshot) error {
	if err := sys.Restore(snap); err != nil {
		return err
	}
	in.stepCount = int(snap.Step)
	in.initialized = false
	if len(snap.Frc) == sys.N() && sys.N() > 0 {
		copy(sys.Frc, snap.Frc)
		in.lastE = snap.LastE
		// With the checkpointed forces in place the bootstrap Compute of
		// the first Step must not run: it would be correct at MeshEvery=1
		// but would recompute the mesh term a multiple-timestep schedule
		// expects to replay from its cache.
		in.initialized = true
	}
	return in.FF.restoreResume(sys, snap)
}

// StepCount returns the number of completed steps (restored across a
// resume).
func (in *Integrator) StepCount() int { return in.stepCount }

// Run advances n steps, invoking report (if non-nil) after every step with
// the 1-based step index and its energies.
func (in *Integrator) Run(sys *System, n int, report func(step int, e Energies)) Energies {
	var e Energies
	for s := 1; s <= n; s++ {
		e = in.Step(sys)
		if report != nil {
			report(s, e)
		}
	}
	return e
}

// Coupler adjusts velocities after each step (thermostats).
type Coupler interface {
	Apply(sys *System, dt float64)
}

// Thermostat is a Berendsen-style weak-coupling velocity rescaler.
type Thermostat struct {
	T   float64 // target temperature (K)
	Tau float64 // coupling time (ps); Tau <= Dt gives hard rescaling
}

// Apply rescales velocities toward the target temperature.
func (th *Thermostat) Apply(sys *System, dt float64) {
	cur := sys.Temperature()
	if cur <= 0 {
		return
	}
	lambda := math.Sqrt(1 + dt/math.Max(th.Tau, dt)*(th.T/cur-1))
	sys.ScaleVelocities(lambda)
}
