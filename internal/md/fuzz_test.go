package md_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tme4a/internal/md"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

// fuzzSeedSnapshot builds a snapshot with every resume field populated,
// so the seed corpus exercises the full wire format, not just the plain
// (box, positions, velocities) core.
func fuzzSeedSnapshot() *md.Snapshot {
	box := water.CubicBoxFor(8)
	sys := water.Build(2, 2, 2, box, 21)
	sys.InitVelocities(300, rand.New(rand.NewSource(4)))
	snap := sys.TakeSnapshot(map[string]int64{"side": 2, "seed": 21})
	snap.Step = 137
	snap.Frc = append([]vec.V(nil), snap.Pos...)
	snap.VerletRef = append([]vec.V(nil), snap.Pos...)
	snap.MeshForces = append([]vec.V(nil), snap.Vel...)
	snap.MeshEnergy = -3.25
	snap.MeshExcl = 1.5
	snap.HasMesh = true
	snap.LastE = md.Energies{Kinetic: 2.5, LJ: -1.25}
	return snap
}

func fuzzSeedBytes(tb testing.TB) []byte {
	var buf bytes.Buffer
	if err := fuzzSeedSnapshot().Encode(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotDecode asserts snapshot decoding is total: arbitrary bytes
// either decode (and then validate and re-encode without panicking) or
// return a clean error. A decoder panic or unbounded allocation here
// would turn one corrupt checkpoint file into a crashed resume.
func FuzzSnapshotDecode(f *testing.F) {
	valid := fuzzSeedBytes(f)
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Add(valid)
	f.Add(valid[:1])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	corrupt := bytes.Clone(valid)
	corrupt[len(corrupt)/2] ^= 0x10
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // decode cost and allocation scale with input; cap the fuzz domain
		}
		snap, err := md.ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // a clean error is the correct outcome for garbage
		}
		// Whatever the decoder accepted must be safe to validate and to
		// re-encode; neither may panic even if validation rejects it.
		_ = snap.Validate()
		var buf bytes.Buffer
		if err := snap.Encode(&buf); err != nil {
			t.Fatalf("re-encode of decoded snapshot failed: %v", err)
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzSnapshotDecode when TME_WRITE_FUZZ_CORPUS=1 is set
// (it is a no-op otherwise). The corpus pins a real encoded snapshot and
// its truncations so CI fuzzing starts from format-aware inputs even
// before any fuzz cache exists.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("TME_WRITE_FUZZ_CORPUS") != "1" {
		t.Skip("set TME_WRITE_FUZZ_CORPUS=1 to regenerate the committed corpus")
	}
	valid := fuzzSeedBytes(t)
	corrupt := bytes.Clone(valid)
	corrupt[len(corrupt)/2] ^= 0x10
	entries := map[string][]byte{
		"seed-valid":          valid,
		"seed-truncated-half": valid[:len(valid)/2],
		"seed-truncated-tail": valid[:len(valid)-1],
		"seed-corrupt-middle": corrupt,
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range entries {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
