// Package md provides the molecular-dynamics engine: the particle system
// container, force-field composition (short-range nonbonded + mesh
// long-range + bonded), the velocity-Verlet integrator with SETTLE
// constraints, thermostats and energy bookkeeping.
//
// This is the software equivalent of what the MDGRAPE-4A GP cores
// orchestrate: integration, bonded terms and constraint handling, with the
// nonbonded and long-range work delegated to the dedicated units.
package md

import (
	"fmt"
	"math"
	"math/rand"

	"tme4a/internal/constraint"
	"tme4a/internal/nonbond"
	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// System is the mutable state of a simulation.
type System struct {
	Box  vec.Box
	Pos  []vec.V
	Vel  []vec.V
	Frc  []vec.V
	Mass []float64
	Q    []float64 // charges (e)
	LJ   *nonbond.LJ
	Excl *topol.Exclusions

	// RigidWaters lists (O, H, H) index triplets constrained by SETTLE.
	RigidWaters [][3]int
	// WaterModel is the rigid geometry shared by all RigidWaters.
	WaterModel *constraint.Water
}

// N returns the number of atoms.
func (s *System) N() int { return len(s.Pos) }

// NewSystem allocates a system of n atoms in box with zeroed state.
func NewSystem(n int, box vec.Box) *System {
	return &System{
		Box:  box,
		Pos:  make([]vec.V, n),
		Vel:  make([]vec.V, n),
		Frc:  make([]vec.V, n),
		Mass: make([]float64, n),
		Q:    make([]float64, n),
		LJ:   &nonbond.LJ{Sigma: make([]float64, n), Eps: make([]float64, n)},
		Excl: topol.NewExclusions(n),
	}
}

// KineticEnergy returns ½ Σ m v² in kJ/mol.
func (s *System) KineticEnergy() float64 {
	var ke float64
	for i, v := range s.Vel {
		ke += 0.5 * s.Mass[i] * v.Norm2()
	}
	return ke
}

// DegreesOfFreedom returns 3N minus constraints minus COM motion.
func (s *System) DegreesOfFreedom() int {
	return 3*s.N() - 3*len(s.RigidWaters) - 3
}

// Temperature returns the instantaneous kinetic temperature in kelvin.
func (s *System) Temperature() float64 {
	dof := s.DegreesOfFreedom()
	if dof <= 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / (float64(dof) * units.Boltzmann)
}

// InitVelocities draws Maxwell–Boltzmann velocities at temperature T and
// removes centre-of-mass motion. Constrained molecules then have their
// internal velocity components projected out.
func (s *System) InitVelocities(T float64, rng *rand.Rand) {
	for i := range s.Vel {
		sd := math.Sqrt(units.Boltzmann * T / s.Mass[i])
		s.Vel[i] = vec.V{rng.NormFloat64() * sd, rng.NormFloat64() * sd, rng.NormFloat64() * sd}
	}
	s.RemoveCOMMotion()
	s.applyVelocityConstraints()
	// Rescale to hit T exactly on the constrained ensemble.
	cur := s.Temperature()
	if cur > 0 {
		s.ScaleVelocities(math.Sqrt(T / cur))
	}
}

// RemoveCOMMotion zeroes the total linear momentum.
func (s *System) RemoveCOMMotion() {
	var p vec.V
	var m float64
	for i, v := range s.Vel {
		p = p.Add(v.Scale(s.Mass[i]))
		m += s.Mass[i]
	}
	vcom := p.Scale(1 / m)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(vcom)
	}
}

// ScaleVelocities multiplies all velocities by s (velocity-rescale
// thermostat primitive).
func (s *System) ScaleVelocities(f float64) {
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(f)
	}
}

func (s *System) applyVelocityConstraints() {
	if s.WaterModel == nil {
		return
	}
	for _, w := range s.RigidWaters {
		s.WaterModel.SettleVelocities(
			s.Pos[w[0]], s.Pos[w[1]], s.Pos[w[2]],
			&s.Vel[w[0]], &s.Vel[w[1]], &s.Vel[w[2]])
	}
}

// Validate performs basic sanity checks and returns an error describing
// the first inconsistency found.
func (s *System) Validate() error {
	n := s.N()
	if len(s.Vel) != n || len(s.Frc) != n || len(s.Mass) != n || len(s.Q) != n {
		return fmt.Errorf("md: inconsistent array lengths for %d atoms", n)
	}
	for i, m := range s.Mass {
		if m <= 0 {
			return fmt.Errorf("md: atom %d has non-positive mass %g", i, m)
		}
	}
	for _, w := range s.RigidWaters {
		for _, idx := range w {
			if idx < 0 || idx >= n {
				return fmt.Errorf("md: rigid water references atom %d out of range", idx)
			}
		}
	}
	if len(s.RigidWaters) > 0 && s.WaterModel == nil {
		return fmt.Errorf("md: rigid waters without a water model")
	}
	return nil
}
