package md

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// XYZWriter streams trajectory frames in the ubiquitous XYZ text format
// (element, x, y, z per atom; coordinates converted from nm to Å), so
// trajectories can be inspected with standard molecular viewers.
type XYZWriter struct {
	w        *bufio.Writer
	elements []string
}

// NewXYZWriter wraps w. elements gives the per-atom element symbols; if
// nil, all atoms are written as "X".
func NewXYZWriter(w io.Writer, elements []string) *XYZWriter {
	return &XYZWriter{w: bufio.NewWriter(w), elements: elements}
}

// WriteFrame appends one frame with the given comment line.
func (x *XYZWriter) WriteFrame(sys *System, comment string) error {
	fmt.Fprintf(x.w, "%d\n%s\n", sys.N(), strings.ReplaceAll(comment, "\n", " "))
	for i, r := range sys.Pos {
		el := "X"
		if x.elements != nil {
			el = x.elements[i]
		}
		// nm → Å.
		fmt.Fprintf(x.w, "%-2s %12.6f %12.6f %12.6f\n", el, r[0]*10, r[1]*10, r[2]*10)
	}
	return x.w.Flush()
}

// WaterElements returns the element symbols of a pure TIP3P system
// (O, H, H per molecule).
func WaterElements(nmol int) []string {
	e := make([]string, 0, 3*nmol)
	for i := 0; i < nmol; i++ {
		e = append(e, "O", "H", "H")
	}
	return e
}

// ReadXYZFrame parses one frame from r, returning the element symbols and
// positions in nm. io.EOF is returned at end of stream.
func ReadXYZFrame(r *bufio.Reader) (elements []string, pos [][3]float64, comment string, err error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, nil, "", err
	}
	var n int
	if _, err := fmt.Sscanf(strings.TrimSpace(line), "%d", &n); err != nil {
		return nil, nil, "", fmt.Errorf("md: bad XYZ atom count %q: %w", strings.TrimSpace(line), err)
	}
	cl, err := r.ReadString('\n')
	if err != nil {
		return nil, nil, "", err
	}
	comment = strings.TrimSpace(cl)
	elements = make([]string, n)
	pos = make([][3]float64, n)
	for i := 0; i < n; i++ {
		al, err := r.ReadString('\n')
		if err != nil {
			return nil, nil, "", fmt.Errorf("md: truncated XYZ frame: %w", err)
		}
		var ax, ay, az float64
		if _, err := fmt.Sscanf(al, "%s %f %f %f", &elements[i], &ax, &ay, &az); err != nil {
			return nil, nil, "", fmt.Errorf("md: bad XYZ atom line %q: %w", strings.TrimSpace(al), err)
		}
		// Å → nm.
		pos[i] = [3]float64{ax / 10, ay / 10, az / 10}
	}
	return elements, pos, comment, nil
}
