package md_test

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/md"
	"tme4a/internal/spme"
	"tme4a/internal/water"
)

func TestCSVRMaintainsTemperature(t *testing.T) {
	box := water.CubicBoxFor(125)
	sys := water.Build(5, 5, 5, box, 21)
	water.Equilibrate(sys, 100, 0.001, 300, 0.7, 3)
	rc := 0.7
	alpha := spme.AlphaFromRTol(rc, 1e-4)
	integ := &md.Integrator{
		FF:         &md.ForceField{Alpha: alpha, Rc: rc},
		Dt:         0.001,
		Thermostat: &md.CSVR{T: 300, Tau: 0.005, Rng: rand.New(rand.NewSource(4))},
	}
	// The freshly built lattice still releases potential energy while it
	// melts, so the thermostat fights a real heat source; with a tight
	// 5 fs coupling the kinetic temperature must track the target.
	var sum float64
	n := 0
	integ.Run(sys, 300, func(s int, e md.Energies) {
		if s > 150 { // after coupling transient
			sum += sys.Temperature()
			n++
		}
	})
	mean := sum / float64(n)
	if math.Abs(mean-300) > 25 {
		t.Errorf("CSVR mean temperature %.1f K, want ~300 K", mean)
	}
}

func TestCSVRWeakCouplingIsNearNVE(t *testing.T) {
	// With Tau much longer than the run, CSVR must barely perturb the
	// velocities (it limits to NVE).
	box := water.CubicBoxFor(64)
	sys := water.Build(4, 4, 4, box, 9)
	sys.InitVelocities(300, rand.New(rand.NewSource(5)))
	k0 := sys.KineticEnergy()
	c := &md.CSVR{T: 300, Tau: 1e6, Rng: rand.New(rand.NewSource(6))}
	c.Apply(sys, 0.001)
	k1 := sys.KineticEnergy()
	if math.Abs(k1-k0) > 0.01*k0 {
		t.Errorf("weak-coupling CSVR changed KE by %.3f%%", 100*(k1-k0)/k0)
	}
}

func TestCSVRPullsColdSystemUp(t *testing.T) {
	box := water.CubicBoxFor(64)
	sys := water.Build(4, 4, 4, box, 9)
	sys.InitVelocities(100, rand.New(rand.NewSource(7)))
	c := &md.CSVR{T: 300, Tau: 0.002, Rng: rand.New(rand.NewSource(8))}
	for i := 0; i < 50; i++ {
		c.Apply(sys, 0.001)
	}
	if temp := sys.Temperature(); temp < 200 {
		t.Errorf("CSVR left cold system at %.0f K", temp)
	}
}
