package md_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"tme4a/internal/md"
	"tme4a/internal/spme"
	"tme4a/internal/water"
)

func TestSnapshotRoundTrip(t *testing.T) {
	box := water.CubicBoxFor(27)
	sys := water.Build(3, 3, 3, box, 5)
	sys.InitVelocities(300, rand.New(rand.NewSource(1)))
	snap := sys.TakeSnapshot(map[string]int64{"side": 3, "seed": 5})

	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := md.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := water.Build(3, 3, 3, box, 99) // different seed: different positions
	if err := sys2.Restore(got); err != nil {
		t.Fatal(err)
	}
	for i := range sys.Pos {
		if sys2.Pos[i] != sys.Pos[i] || sys2.Vel[i] != sys.Vel[i] {
			t.Fatalf("state mismatch at atom %d", i)
		}
	}
	if got.Meta["side"] != 3 {
		t.Errorf("meta lost: %v", got.Meta)
	}
}

// TestSnapshotEncodingIsByteDeterministic is the regression test for the
// determinism finding behind snapshotWire: gob serializes maps in
// randomized iteration order, so encoding Meta as a map made two
// snapshots of identical state differ byte-wise between runs. The wire
// form carries Meta as sorted key/value slices; identical state must now
// produce identical bytes, every time.
func TestSnapshotEncodingIsByteDeterministic(t *testing.T) {
	box := water.CubicBoxFor(8)
	sys := water.Build(2, 2, 2, box, 11)
	sys.InitVelocities(300, rand.New(rand.NewSource(2)))
	// Enough keys that randomized map order would almost surely differ
	// between two encodings (8! orderings).
	meta := map[string]int64{
		"side": 2, "seed": 11, "a": 1, "b": 2, "c": 3, "d": 4, "e": 5, "f": 6,
	}
	var first bytes.Buffer
	if err := sys.TakeSnapshot(meta).Encode(&first); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		// Rebuild the map so its internal layout (and hence gob's
		// would-be iteration order) varies between trials.
		m := make(map[string]int64, len(meta))
		for k, v := range meta {
			m[k] = v
		}
		var buf bytes.Buffer
		if err := sys.TakeSnapshot(m).Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), buf.Bytes()) {
			t.Fatalf("trial %d: identical state encoded to different bytes (%d vs %d)", trial, first.Len(), buf.Len())
		}
	}
	// And the wire form must still round-trip the meta map.
	got, err := md.ReadSnapshot(&first)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range meta {
		if got.Meta[k] != v {
			t.Fatalf("meta[%q] = %d after round trip, want %d", k, got.Meta[k], v)
		}
	}
}

func TestRestoreRejectsWrongSize(t *testing.T) {
	a := water.Build(2, 2, 2, water.CubicBoxFor(8), 1)
	b := water.Build(3, 3, 3, water.CubicBoxFor(27), 1)
	if err := b.Restore(a.TakeSnapshot(nil)); err == nil {
		t.Error("expected size-mismatch error")
	}
}

func TestEnergyReporterFormat(t *testing.T) {
	var buf bytes.Buffer
	r := &md.EnergyReporter{W: &buf, Dt: 0.001}
	var e md.Energies
	e.Kinetic = 2
	r.Report(1, e)
	r.Report(2, e)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_ps,") {
		t.Errorf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.0010,") {
		t.Errorf("first row %q", lines[1])
	}
}

// TestMeshEveryTwoConservesEnergyApproximately: multiple-timestepping the
// mesh at every other step (Anton practice) must remain stable, with only
// modestly larger energy excursions than every-step evaluation.
func TestMeshEveryTwoConservesEnergyApproximately(t *testing.T) {
	run := func(every int) float64 {
		box := water.CubicBoxFor(125)
		sys := water.Build(5, 5, 5, box, 42)
		water.Equilibrate(sys, 100, 0.001, 300, 0.7, 7)
		rc := 0.7
		alpha := spme.AlphaFromRTol(rc, 1e-4)
		mesh := spme.New(spme.Params{Alpha: alpha, Rc: rc, Order: 6, N: [3]int{16, 16, 16}}, sys.Box)
		integ := &md.Integrator{
			FF:        &md.ForceField{Alpha: alpha, Rc: rc, Mesh: mesh},
			Dt:        0.001,
			MeshEvery: every,
		}
		var eMin, eMax float64
		for s := 0; s < 150; s++ {
			e := integ.Step(sys)
			tot := e.Total()
			if s == 0 {
				eMin, eMax = tot, tot
			}
			eMin = math.Min(eMin, tot)
			eMax = math.Max(eMax, tot)
		}
		return eMax - eMin
	}
	s1 := run(1)
	s2 := run(2)
	t.Logf("energy spread: every step %.3f, every other %.3f kJ/mol", s1, s2)
	if s2 > 30*s1+5 {
		t.Errorf("MeshEvery=2 spread %.3f wildly exceeds every-step %.3f", s2, s1)
	}
}

// TestVerletSkinPreservesDynamics: trajectories with and without the
// buffered pair list must agree (the buffered list reproduces the exact
// same forces).
func TestVerletSkinPreservesDynamics(t *testing.T) {
	mk := func(skin float64) *md.System {
		box := water.CubicBoxFor(64)
		sys := water.Build(4, 4, 4, box, 9)
		sys.InitVelocities(250, rand.New(rand.NewSource(3)))
		rc := 0.55
		alpha := spme.AlphaFromRTol(rc, 1e-4)
		integ := &md.Integrator{
			FF: &md.ForceField{Alpha: alpha, Rc: rc, Skin: skin},
			Dt: 0.001,
		}
		integ.Run(sys, 80, nil)
		return sys
	}
	a := mk(0)
	b := mk(0.25)
	for i := range a.Pos {
		if a.Pos[i].Sub(b.Pos[i]).Norm() > 1e-9 {
			t.Fatalf("trajectories diverged at atom %d: %v vs %v", i, a.Pos[i], b.Pos[i])
		}
	}
}
