package md_test

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/core"
	"tme4a/internal/md"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

// smallWaterSystem builds and lightly equilibrates a 125-molecule box.
func smallWaterSystem(t testing.TB) *md.System {
	box := water.CubicBoxFor(125)
	sys := water.Build(5, 5, 5, box, 42)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	water.Equilibrate(sys, 100, 0.001, 300, 0.7, 7)
	return sys
}

func TestInitVelocitiesTemperature(t *testing.T) {
	box := water.CubicBoxFor(216)
	sys := water.Build(6, 6, 6, box, 1)
	sys.InitVelocities(300, rand.New(rand.NewSource(2)))
	if temp := sys.Temperature(); math.Abs(temp-300) > 1 {
		t.Errorf("initialised temperature %.2f K, want 300 K", temp)
	}
	// COM momentum removed.
	var p vec.V
	for i, v := range sys.Vel {
		p = p.Add(v.Scale(sys.Mass[i]))
	}
	if p.Norm() > 1e-8 {
		t.Errorf("net momentum %v", p)
	}
}

func TestDegreesOfFreedomWithConstraints(t *testing.T) {
	box := water.CubicBoxFor(8)
	sys := water.Build(2, 2, 2, box, 1)
	// 3 constraints per rigid water: 3N − 3·Nmol − 3 COM.
	want := 3*24 - 3*8 - 3
	if got := sys.DegreesOfFreedom(); got != want {
		t.Errorf("DoF %d, want %d", got, want)
	}
}

// TestNVEEnergyConservation is the integrator-level analogue of paper
// Fig. 4: velocity Verlet + SETTLE + TME electrostatics must show no
// energy drift.
func TestNVEEnergyConservation(t *testing.T) {
	sys := smallWaterSystem(t)
	rc := 0.7
	alpha := spme.AlphaFromRTol(rc, 1e-4)
	mesh := core.New(core.Params{
		Alpha: alpha, Rc: rc, Order: 6,
		N: [3]int{16, 16, 16}, Levels: 1, M: 3, Gc: 8,
	}, sys.Box)
	integ := &md.Integrator{
		FF: &md.ForceField{Alpha: alpha, Rc: rc, Mesh: mesh},
		Dt: 0.001,
	}
	var e0, eMin, eMax float64
	var ke float64
	for s := 0; s < 200; s++ {
		e := integ.Step(sys)
		tot := e.Total()
		if s == 0 {
			e0, eMin, eMax = tot, tot, tot
			ke = e.Kinetic
		}
		eMin = math.Min(eMin, tot)
		eMax = math.Max(eMax, tot)
		if math.IsNaN(tot) {
			t.Fatalf("energy NaN at step %d", s)
		}
	}
	spread := eMax - eMin
	t.Logf("E0=%.3f kJ/mol, spread %.3f kJ/mol, KE=%.1f kJ/mol", e0, spread, ke)
	// Velocity Verlet at 1 fs with rigid water: total-energy excursions
	// should stay a small fraction of the kinetic energy over 200 fs.
	if spread > 0.05*ke {
		t.Errorf("energy spread %.3f kJ/mol exceeds 5%% of KE (%.1f)", spread, ke)
	}
}

// TestNVEConservesMomentum: the composed force field obeys Newton's third
// law, so total momentum stays zero through a trajectory.
func TestNVEConservesMomentum(t *testing.T) {
	sys := smallWaterSystem(t)
	rc := 0.7
	alpha := spme.AlphaFromRTol(rc, 1e-4)
	sp := spme.New(spme.Params{Alpha: alpha, Rc: rc, Order: 6, N: [3]int{16, 16, 16}}, sys.Box)
	integ := &md.Integrator{FF: &md.ForceField{Alpha: alpha, Rc: rc, Mesh: sp}, Dt: 0.001}
	integ.Run(sys, 50, nil)
	var p vec.V
	for i, v := range sys.Vel {
		p = p.Add(v.Scale(sys.Mass[i]))
	}
	// Mesh forces carry a small net-force residual (B-spline interpolation
	// does not enforce Σ F = 0 exactly — the classic PME artifact that MD
	// codes counter by removing COM motion). The random-walk accumulation
	// over 50 steps must stay far below the thermal momentum scale
	// (~7 amu·nm/ps per atom).
	if p.Norm() > 0.3 {
		t.Errorf("net momentum %v after 50 steps", p)
	}
}

// TestSettleHoldsThroughTrajectory: rigid geometry maintained to high
// precision over many steps.
func TestSettleHoldsThroughTrajectory(t *testing.T) {
	sys := smallWaterSystem(t)
	rc := 0.7
	alpha := spme.AlphaFromRTol(rc, 1e-4)
	integ := &md.Integrator{FF: &md.ForceField{Alpha: alpha, Rc: rc}, Dt: 0.001}
	integ.Run(sys, 100, nil)
	w := sys.WaterModel
	for wi, trip := range sys.RigidWaters {
		oh1 := sys.Pos[trip[0]].Sub(sys.Pos[trip[1]]).Norm()
		oh2 := sys.Pos[trip[0]].Sub(sys.Pos[trip[2]]).Norm()
		hh := sys.Pos[trip[1]].Sub(sys.Pos[trip[2]]).Norm()
		if math.Abs(oh1-w.ROH) > 1e-7 || math.Abs(oh2-w.ROH) > 1e-7 || math.Abs(hh-w.RHH()) > 1e-7 {
			t.Fatalf("water %d geometry drifted: %g %g %g", wi, oh1, oh2, hh)
		}
	}
}

func TestThermostatDrivesTemperature(t *testing.T) {
	sys := smallWaterSystem(t)
	sys.InitVelocities(150, rand.New(rand.NewSource(3)))
	rc := 0.7
	alpha := spme.AlphaFromRTol(rc, 1e-4)
	integ := &md.Integrator{
		FF:         &md.ForceField{Alpha: alpha, Rc: rc},
		Dt:         0.001,
		Thermostat: &md.Thermostat{T: 300, Tau: 0.02},
	}
	integ.Run(sys, 150, nil)
	if temp := sys.Temperature(); math.Abs(temp-300) > 45 {
		t.Errorf("temperature %.1f K after thermostatting to 300 K", temp)
	}
}

func TestWaterBuildProperties(t *testing.T) {
	box := water.CubicBoxFor(64)
	sys := water.Build(4, 4, 4, box, 9)
	if sys.N() != 192 {
		t.Fatalf("atom count %d", sys.N())
	}
	// Neutrality.
	var qt float64
	for _, q := range sys.Q {
		qt += q
	}
	if math.Abs(qt) > 1e-10 {
		t.Errorf("net charge %g", qt)
	}
	// All O–H distances start at the rigid geometry.
	w := sys.WaterModel
	for _, trip := range sys.RigidWaters {
		if d := sys.Pos[trip[0]].Sub(sys.Pos[trip[1]]).Norm(); math.Abs(d-w.ROH) > 1e-12 {
			t.Fatalf("initial O-H distance %g", d)
		}
	}
	// No catastrophic intermolecular contacts.
	minD := math.Inf(1)
	for i := 0; i < sys.N(); i++ {
		for j := i + 1; j < sys.N(); j++ {
			if sys.Excl.Excluded(i, j) {
				continue
			}
			if d := sys.Box.MinImage(sys.Pos[i].Sub(sys.Pos[j])).Norm(); d < minD {
				minD = d
			}
		}
	}
	if minD < 0.11 {
		t.Errorf("closest intermolecular contact %.3f nm", minD)
	}
}

func TestEnergiesBreakdown(t *testing.T) {
	var e md.Energies
	e.CoulShort, e.CoulLong, e.CoulExcl, e.LJ, e.Bonded, e.Kinetic = 1, 2, 3, 4, 5, 6
	if e.Coulomb() != 6 {
		t.Errorf("Coulomb() = %g", e.Coulomb())
	}
	if e.Potential() != 15 {
		t.Errorf("Potential() = %g", e.Potential())
	}
	if e.Total() != 21 {
		t.Errorf("Total() = %g", e.Total())
	}
}

func BenchmarkMDStepWater125(b *testing.B) {
	sys := smallWaterSystem(b)
	rc := 0.7
	alpha := spme.AlphaFromRTol(rc, 1e-4)
	mesh := core.New(core.Params{
		Alpha: alpha, Rc: rc, Order: 6,
		N: [3]int{16, 16, 16}, Levels: 1, M: 4, Gc: 8,
	}, sys.Box)
	integ := &md.Integrator{FF: &md.ForceField{Alpha: alpha, Rc: rc, Mesh: mesh}, Dt: 0.001}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		integ.Step(sys)
	}
}
