package md

import (
	"tme4a/internal/bonded"
	"tme4a/internal/ewald"
	"tme4a/internal/nonbond"
	"tme4a/internal/vec"
)

// MeshSolver is the long-range electrostatics interface satisfied by
// spme.Solver, core.Solver (TME) and msm.Solver: it returns the mesh +
// self energy and accumulates mesh forces.
type MeshSolver interface {
	LongRange(pos []vec.V, q []float64, f []vec.V) float64
}

// Energies is the per-step energy breakdown in kJ/mol.
type Energies struct {
	CoulShort float64 // erfc-screened short-range Coulomb
	CoulLong  float64 // mesh + self energy
	CoulExcl  float64 // exclusion corrections
	LJ        float64
	Bonded    float64
	Kinetic   float64
}

// Potential returns the total potential energy.
func (e Energies) Potential() float64 {
	return e.CoulShort + e.CoulLong + e.CoulExcl + e.LJ + e.Bonded
}

// Total returns kinetic + potential energy.
func (e Energies) Total() float64 { return e.Potential() + e.Kinetic }

// Coulomb returns the full electrostatic energy.
func (e Energies) Coulomb() float64 { return e.CoulShort + e.CoulLong + e.CoulExcl }

// ForceField composes the interaction terms of a simulation. Mesh and
// Bonded may be nil. Alpha is the Ewald splitting parameter shared by the
// short-range erfc term and the exclusion corrections; with Alpha = 0 and
// Mesh = nil electrostatics are plain cutoff Coulomb. A positive Skin
// enables a buffered Verlet pair list rebuilt only when an atom has moved
// more than Skin/2 (the GROMACS verlet scheme the paper's reference runs
// use).
type ForceField struct {
	Alpha  float64
	Rc     float64
	Skin   float64
	Mesh   MeshSolver
	Bonded *bonded.FF

	vlist *nonbond.VerletList
	// Cached long-range state for multiple-timestep integration
	// (Integrator.MeshEvery > 1): the mesh forces of the last full
	// evaluation are replayed on intermediate steps, the practice the
	// paper notes for the Anton family ("they calculate long range part
	// at every other step").
	meshForces []vec.V
	meshEnergy float64
	meshExcl   float64
}

// Compute zeroes sys.Frc and evaluates all force-field terms, returning
// the energy breakdown (Kinetic included for convenience).
func (ff *ForceField) Compute(sys *System) Energies {
	return ff.compute(sys, true)
}

// ComputeReuseMesh evaluates the short-range and bonded terms freshly but
// replays the cached long-range forces (multiple-timestep mode). Compute
// must have run at least once before.
func (ff *ForceField) ComputeReuseMesh(sys *System) Energies {
	return ff.compute(sys, false)
}

func (ff *ForceField) compute(sys *System, doMesh bool) Energies {
	for i := range sys.Frc {
		sys.Frc[i] = vec.V{}
	}
	var e Energies
	var res nonbond.Result
	if ff.Skin > 0 {
		if ff.vlist == nil {
			ff.vlist = nonbond.NewVerletList(sys.Box, ff.Rc, ff.Skin)
		}
		if ff.vlist.NeedsRebuild(sys.Pos) {
			ff.vlist.Rebuild(sys.Pos, sys.Excl)
		}
		res = ff.vlist.Compute(sys.Pos, sys.Q, sys.LJ, ff.Alpha, sys.Frc)
	} else {
		res = nonbond.Compute(sys.Box, sys.Pos, sys.Q, sys.LJ, ff.Alpha, ff.Rc, sys.Excl, sys.Frc)
	}
	e.CoulShort = res.ECoul
	e.LJ = res.ELJ
	if ff.Mesh != nil {
		if doMesh || ff.meshForces == nil {
			if len(ff.meshForces) != sys.N() {
				ff.meshForces = make([]vec.V, sys.N())
			}
			for i := range ff.meshForces {
				ff.meshForces[i] = vec.V{}
			}
			ff.meshEnergy = ff.Mesh.LongRange(sys.Pos, sys.Q, ff.meshForces)
			ff.meshExcl = ewald.ExclusionCorrection(sys.Box, sys.Pos, sys.Q, ff.Alpha, sys.Excl, ff.meshForces)
		}
		e.CoulLong = ff.meshEnergy
		e.CoulExcl = ff.meshExcl
		for i := range sys.Frc {
			sys.Frc[i] = sys.Frc[i].Add(ff.meshForces[i])
		}
	}
	if ff.Bonded != nil {
		e.Bonded = ff.Bonded.Compute(sys.Box, sys.Pos, sys.Frc)
	}
	e.Kinetic = sys.KineticEnergy()
	return e
}
