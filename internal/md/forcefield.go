package md

import (
	"fmt"

	"tme4a/internal/bonded"
	"tme4a/internal/celllist"
	"tme4a/internal/ewald"
	"tme4a/internal/nonbond"
	"tme4a/internal/obs"
	"tme4a/internal/par"
	"tme4a/internal/vec"
)

// MeshSolver is the long-range electrostatics interface satisfied by
// spme.Solver, core.Solver (TME) and msm.Solver: it returns the mesh +
// self energy and accumulates mesh forces. The solver registry
// (internal/solver) extends this contract with self-description and
// constructs any registered implementation from a method name, so callers
// that select the method at runtime (cmd/mdrun, the shootout experiment)
// need not import the concrete packages.
type MeshSolver interface {
	LongRange(pos []vec.V, q []float64, f []vec.V) float64
}

// Energies is the per-step energy breakdown in kJ/mol.
type Energies struct {
	CoulShort float64 // erfc-screened short-range Coulomb
	CoulLong  float64 // mesh + self energy
	CoulExcl  float64 // exclusion corrections
	LJ        float64
	Bonded    float64
	Kinetic   float64
}

// Potential returns the total potential energy.
func (e Energies) Potential() float64 {
	return e.CoulShort + e.CoulLong + e.CoulExcl + e.LJ + e.Bonded
}

// Total returns kinetic + potential energy.
func (e Energies) Total() float64 { return e.Potential() + e.Kinetic }

// Coulomb returns the full electrostatic energy.
func (e Energies) Coulomb() float64 { return e.CoulShort + e.CoulLong + e.CoulExcl }

// ForceField composes the interaction terms of a simulation. Mesh and
// Bonded may be nil. Alpha is the Ewald splitting parameter shared by the
// short-range erfc term and the exclusion corrections; with Alpha = 0 and
// Mesh = nil electrostatics are plain cutoff Coulomb. A positive Skin
// enables a buffered Verlet pair list rebuilt only when an atom has moved
// more than Skin/2 (the GROMACS verlet scheme the paper's reference runs
// use).
//
// Every term writes into its own cached force buffer and the buffers are
// merged per atom in a fixed order, so the short-range pair engine, the
// mesh solve (+ exclusion corrections) and the bonded terms can run
// concurrently on the worker pool (par.Do) with results bitwise identical
// at any GOMAXPROCS — the software analogue of the MDGRAPE-4A pipelines,
// LRU and GP cores working the same step in parallel. All scratch is
// reused, so a steady-state force evaluation allocates nothing.
type ForceField struct {
	Alpha  float64
	Rc     float64
	Skin   float64
	Mesh   MeshSolver
	Bonded *bonded.FF

	vlist *nonbond.VerletList
	// cl is the reused cell decomposition of the unbuffered (Skin == 0)
	// path, rebuilt every evaluation but never reallocated.
	cl *celllist.List
	// Cached long-range state for multiple-timestep integration
	// (Integrator.MeshEvery > 1): the mesh forces of the last full
	// evaluation are replayed on intermediate steps, the practice the
	// paper notes for the Anton family ("they calculate long range part
	// at every other step").
	meshForces []vec.V
	meshEnergy float64
	meshExcl   float64
	// bondedFrc is the bonded terms' private force buffer.
	bondedFrc []vec.V

	// Obs, when non-nil, records the per-step stage timing breakdown. Set
	// it through SetObs so the recorder propagates to the mesh solver and
	// pair lists. A nil recorder makes every instrumentation site a no-op,
	// preserving the zero-allocation and determinism contracts.
	Obs *obs.Recorder
}

// obsWirer is satisfied by the instrumentable mesh solvers — all three
// registered implementations (spme.Solver, core.Solver, msm.Solver) wire
// the recorder through to their meshers, pools and sub-solvers. Solvers
// without a SetObs method simply go untimed below the mesh-total stage.
// internal/solver exports the same assertion as solver.ObsWirer.
type obsWirer interface {
	SetObs(*obs.Recorder)
}

// SetObs attaches a stage recorder to the force field and every
// instrumentable component it owns (nil detaches). Call it before or
// between steps, never concurrently with Compute.
func (ff *ForceField) SetObs(r *obs.Recorder) {
	ff.Obs = r
	if w, ok := ff.Mesh.(obsWirer); ok {
		w.SetObs(r)
	}
	if ff.vlist != nil {
		ff.vlist.SetObs(r)
	}
	if ff.cl != nil {
		ff.cl.SetObs(r)
	}
}

// captureResume copies the force field's cross-step caches into snap: the
// Verlet list's build-time positions and, when a mesh term is cached for
// multiple-timestep replay, the cached forces and energies.
func (ff *ForceField) captureResume(sys *System, snap *Snapshot) {
	if ff.vlist != nil {
		if ref := ff.vlist.RefPositions(); ref != nil {
			snap.VerletRef = append([]vec.V(nil), ref...)
		}
	}
	if ff.Mesh != nil && len(ff.meshForces) == sys.N() && sys.N() > 0 {
		snap.MeshForces = append([]vec.V(nil), ff.meshForces...)
		snap.MeshEnergy = ff.meshEnergy
		snap.MeshExcl = ff.meshExcl
		snap.HasMesh = true
	}
}

// restoreResume rebuilds the force field's cross-step caches from snap.
// The Verlet list is re-primed by running Rebuild at the captured build
// positions — Rebuild is deterministic in (positions, exclusions), so the
// pair buckets and their summation order come back bitwise, where a fresh
// build at the resume positions would reorder them. Call after
// sys.Restore.
func (ff *ForceField) restoreResume(sys *System, snap *Snapshot) error {
	if len(snap.VerletRef) > 0 {
		if ff.Skin <= 0 {
			return fmt.Errorf("md: snapshot carries a Verlet reference but the force field runs skinless")
		}
		if ff.vlist == nil {
			ff.vlist = nonbond.NewVerletList(sys.Box, ff.Rc, ff.Skin)
			ff.vlist.SetObs(ff.Obs)
		}
		ff.vlist.Rebuild(snap.VerletRef, sys.Excl)
	}
	if snap.HasMesh {
		if ff.Mesh == nil {
			return fmt.Errorf("md: snapshot carries cached mesh forces but the force field has no mesh solver")
		}
		ff.meshForces = append(ff.meshForces[:0], snap.MeshForces...)
		ff.meshEnergy = snap.MeshEnergy
		ff.meshExcl = snap.MeshExcl
	}
	return nil
}

// Compute zeroes sys.Frc and evaluates all force-field terms, returning
// the energy breakdown (Kinetic included for convenience).
func (ff *ForceField) Compute(sys *System) Energies {
	return ff.compute(sys, true)
}

// ComputeReuseMesh evaluates the short-range and bonded terms freshly but
// replays the cached long-range forces (multiple-timestep mode). Compute
// must have run at least once before.
func (ff *ForceField) ComputeReuseMesh(sys *System) Energies {
	return ff.compute(sys, false)
}

func (ff *ForceField) compute(sys *System, doMesh bool) Energies {
	// The three force terms write disjoint buffers (sys.Frc, meshForces,
	// bondedFrc), so they can overlap. Each is internally deterministic
	// and the merge below is per-atom with a fixed association order, so
	// the result does not depend on how the tasks interleave. The
	// concurrent branch lives in its own function: par.Do closures would
	// force their captures onto the heap even on the serial path, and the
	// sequential branch must stay allocation-free at steady state.
	var res nonbond.Result
	var eBonded float64
	if par.Concurrent() && (ff.Mesh != nil || ff.Bonded != nil) {
		res, eBonded = ff.computeTermsParallel(sys, doMesh)
	} else {
		res = ff.shortRange(sys)
		ff.meshTerm(sys, doMesh)
		eBonded = ff.bondedTerm(sys)
	}

	var e Energies
	e.CoulShort = res.ECoul
	e.LJ = res.ELJ
	e.Bonded = eBonded
	if ff.Mesh != nil {
		e.CoulLong = ff.meshEnergy
		e.CoulExcl = ff.meshExcl
	}
	ff.merge(sys)
	e.Kinetic = sys.KineticEnergy()
	return e
}

// computeTermsParallel overlaps the three force terms on the worker pool,
// the software analogue of MDGRAPE-4A's nonbond pipelines, LRU and GP
// cores working the same step concurrently.
//
//tme:noalloc
func (ff *ForceField) computeTermsParallel(sys *System, doMesh bool) (nonbond.Result, float64) {
	var res nonbond.Result
	var eBonded float64
	sp := ff.Obs.Start(obs.StageOverlap)
	par.Do(
		func() { res = ff.shortRange(sys) },
		func() { ff.meshTerm(sys, doMesh) },
		func() { eBonded = ff.bondedTerm(sys) },
	)
	sp.Stop()
	return res, eBonded
}

// shortRange zeroes sys.Frc and evaluates the short-range nonbonded term
// into it, via the buffered Verlet list (Skin > 0) or the reused cell
// list.
func (ff *ForceField) shortRange(sys *System) nonbond.Result {
	sp := ff.Obs.Start(obs.StageShortRange)
	defer sp.Stop()
	for i := range sys.Frc {
		sys.Frc[i] = vec.V{}
	}
	if ff.Skin > 0 {
		if ff.vlist == nil {
			ff.vlist = nonbond.NewVerletList(sys.Box, ff.Rc, ff.Skin)
			ff.vlist.SetObs(ff.Obs)
		}
		if ff.vlist.NeedsRebuild(sys.Pos) {
			ff.vlist.Rebuild(sys.Pos, sys.Excl)
		}
		return ff.vlist.Compute(sys.Pos, sys.Q, sys.LJ, ff.Alpha, sys.Frc)
	}
	if ff.cl == nil {
		ff.cl = celllist.New(sys.Box, ff.Rc)
		ff.cl.SetObs(ff.Obs)
	}
	// The unbuffered path rebuilds every evaluation; the cell list records
	// no span of its own, so attribute the rebuild to the neighbor stage
	// here (nested inside short-range, like the Verlet rebuild).
	spn := ff.Obs.Start(obs.StageNeighbor)
	ff.cl.Rebuild(sys.Pos)
	spn.Stop()
	return nonbond.ComputeWithList(ff.cl, sys.Box, sys.Pos, sys.Q, sys.LJ, ff.Alpha, sys.Excl, sys.Frc)
}

// meshTerm refreshes the cached long-range forces and energies when due
// (every step, or on mesh steps of a multiple-timestep schedule).
func (ff *ForceField) meshTerm(sys *System, doMesh bool) {
	if ff.Mesh == nil {
		return
	}
	if !doMesh && len(ff.meshForces) == sys.N() {
		ff.Obs.Add(obs.CounterMeshReplays, 1)
		return
	}
	sp := ff.Obs.Start(obs.StageMesh)
	defer sp.Stop()
	ff.Obs.Add(obs.CounterMeshSolves, 1)
	if len(ff.meshForces) != sys.N() {
		ff.meshForces = make([]vec.V, sys.N())
	}
	for i := range ff.meshForces {
		ff.meshForces[i] = vec.V{}
	}
	ff.meshEnergy = ff.Mesh.LongRange(sys.Pos, sys.Q, ff.meshForces)
	ff.meshExcl = ewald.ExclusionCorrection(sys.Box, sys.Pos, sys.Q, ff.Alpha, sys.Excl, ff.meshForces)
}

// bondedTerm evaluates the bonded terms into their private buffer.
func (ff *ForceField) bondedTerm(sys *System) float64 {
	if ff.Bonded == nil {
		return 0
	}
	sp := ff.Obs.Start(obs.StageBonded)
	defer sp.Stop()
	if len(ff.bondedFrc) != sys.N() {
		ff.bondedFrc = make([]vec.V, sys.N())
	}
	for i := range ff.bondedFrc {
		ff.bondedFrc[i] = vec.V{}
	}
	return ff.Bonded.Compute(sys.Box, sys.Pos, ff.bondedFrc)
}

// merge folds the term buffers into sys.Frc. Per atom the association
// order is fixed (short-range + mesh + bonded), so the merge is bitwise
// identical at any worker count.
//
//tme:noalloc
func (ff *ForceField) merge(sys *System) {
	mesh := ff.Mesh != nil
	bond := ff.Bonded != nil
	if !mesh && !bond {
		return
	}
	sp := ff.Obs.Start(obs.StageMerge)
	defer sp.Stop()
	n := sys.N()
	if par.Workers(n) == 1 {
		ff.mergeRange(sys, 0, n, mesh, bond)
	} else {
		par.ForRange(n, func(lo, hi int) {
			ff.mergeRange(sys, lo, hi, mesh, bond)
		})
	}
}

//tme:noalloc
func (ff *ForceField) mergeRange(sys *System, lo, hi int, mesh, bond bool) {
	for i := lo; i < hi; i++ {
		fi := sys.Frc[i]
		if mesh {
			fi = fi.Add(ff.meshForces[i])
		}
		if bond {
			fi = fi.Add(ff.bondedFrc[i])
		}
		sys.Frc[i] = fi
	}
}
