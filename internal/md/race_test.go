//go:build race

package md_test

// raceEnabled disables allocation-count assertions (and the long NVE
// regression run) under the race detector, whose instrumentation
// allocates on sync.Pool operations and slows stepping ~20x.
const raceEnabled = true
