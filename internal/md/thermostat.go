package md

import (
	"math"
	"math/rand"

	"tme4a/internal/units"
)

// CSVR is the canonical-sampling-through-velocity-rescaling thermostat of
// Bussi, Donadio & Parrinello (2007): a global rescaling whose target
// kinetic energy performs the exact Ornstein–Uhlenbeck process of the
// canonical ensemble. Unlike Berendsen weak coupling it samples the
// correct ensemble; with Tau → ∞ it reduces to NVE.
type CSVR struct {
	T   float64 // target temperature (K)
	Tau float64 // coupling time (ps)
	Rng *rand.Rand
}

// Apply rescales all velocities by the CSVR factor for one step dt.
func (c *CSVR) Apply(sys *System, dt float64) {
	dof := sys.DegreesOfFreedom()
	if dof <= 0 {
		return
	}
	kin := sys.KineticEnergy()
	if kin <= 0 {
		return
	}
	kinTarget := 0.5 * float64(dof) * units.Boltzmann * c.T
	factor := csvrFactor(kin, kinTarget, dof, dt/c.Tau, c.Rng)
	sys.ScaleVelocities(math.Sqrt(factor))
}

// csvrFactor returns α² for one step of the stochastic velocity-rescale
// update (Bussi et al., Eq. (A7)): with c = e^{−Δt/τ},
//
//	α² = c + (1−c)·K̄/(Nf·K)·(R₁² + Σ_{i=2}^{Nf} R_i²) + 2R₁·√(c(1−c)K̄/(Nf·K))
//
// where the R are standard normal deviates; the Σ term is drawn from a
// gamma distribution with (Nf−1)/2 degrees of freedom.
func csvrFactor(kin, kinTarget float64, dof int, dtOverTau float64, rng *rand.Rand) float64 {
	c := math.Exp(-dtOverTau)
	r1 := rng.NormFloat64()
	sumR2 := gammaDeviate(rng, float64(dof-1)/2) * 2 // χ²_{Nf−1}
	kk := kinTarget / (float64(dof) * kin)
	alpha2 := c +
		(1-c)*kk*(r1*r1+sumR2) +
		2*r1*math.Sqrt(c*(1-c)*kk)
	if alpha2 < 0 {
		alpha2 = 0
	}
	return alpha2
}

// gammaDeviate draws from Gamma(shape, 1) by Marsaglia–Tsang.
func gammaDeviate(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1)·U^{1/a}.
		return gammaDeviate(rng, shape+1) * math.Pow(rng.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	cc := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + cc*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
