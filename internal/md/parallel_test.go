package md_test

// Whole-stack determinism and steady-state allocation gates. A trajectory
// must be bitwise reproducible at any GOMAXPROCS: the short-range slab
// engine, the mesh solve, the exclusion corrections and the bonded terms
// each fix their accumulation orders independently of the worker count,
// and the force-field merge is per-atom in a fixed association order.

import (
	"math"
	"runtime"
	"testing"

	"tme4a/internal/core"
	"tme4a/internal/md"
	"tme4a/internal/obs"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

var gomaxprocsLevels = []int{1, 2, 7, 16}

type trajState struct {
	pos, vel, frc []vec.V
	e             md.Energies
}

// runTrajectory builds a fresh deterministic system and force field and
// advances it nSteps, capturing the final state. Everything — including
// the equilibration inside water.Equilibrate — runs at the caller's
// GOMAXPROCS, so any order-dependence anywhere in the stack shows up.
// A non-nil rec attaches the stage recorder, which must not perturb the
// trajectory (TestObsBitwiseNeutral).
func runTrajectory(nSteps int, skin float64, withMesh bool, rec *obs.Recorder) trajState {
	box := water.CubicBoxFor(64)
	sys := water.Build(4, 4, 4, box, 42)
	water.Equilibrate(sys, 20, 0.001, 300, 0.7, 7)
	rc := 0.7
	alpha := spme.AlphaFromRTol(rc, 1e-4)
	ff := &md.ForceField{Alpha: alpha, Rc: rc, Skin: skin}
	if withMesh {
		ff.Mesh = spme.New(spme.Params{Alpha: alpha, Rc: rc, Order: 6, N: [3]int{16, 16, 16}}, sys.Box)
	}
	integ := &md.Integrator{FF: ff, Dt: 0.001}
	if rec != nil {
		integ.SetObs(rec)
	}
	var e md.Energies
	for s := 0; s < nSteps; s++ {
		e = integ.Step(sys)
	}
	st := trajState{
		pos: make([]vec.V, sys.N()),
		vel: make([]vec.V, sys.N()),
		frc: make([]vec.V, sys.N()),
		e:   e,
	}
	copy(st.pos, sys.Pos)
	copy(st.vel, sys.Vel)
	copy(st.frc, sys.Frc)
	return st
}

func TestStepBitwiseAcrossGOMAXPROCS(t *testing.T) {
	for _, tc := range []struct {
		name string
		skin float64
		mesh bool
	}{
		{"cutoff", 0, false},
		{"verlet+mesh", 0.1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var ref trajState
			for li, p := range gomaxprocsLevels {
				old := runtime.GOMAXPROCS(p)
				st := runTrajectory(5, tc.skin, tc.mesh, nil)
				runtime.GOMAXPROCS(old)
				if li == 0 {
					ref = st
					continue
				}
				if st.e != ref.e {
					t.Fatalf("GOMAXPROCS=%d: energies differ: %+v vs %+v", p, st.e, ref.e)
				}
				for i := range ref.pos {
					if st.pos[i] != ref.pos[i] || st.vel[i] != ref.vel[i] || st.frc[i] != ref.frc[i] {
						t.Fatalf("GOMAXPROCS=%d: atom %d state differs:\npos %v vs %v\nvel %v vs %v\nfrc %v vs %v",
							p, i, st.pos[i], ref.pos[i], st.vel[i], ref.vel[i], st.frc[i], ref.frc[i])
					}
				}
			}
		})
	}
}

// TestNVELongRegression integrates a TIP3P box for 1000 steps (1 ps) and
// bounds the total-energy drift, the long-horizon analogue of paper
// Fig. 4. Gated behind -short because it costs a few seconds.
func TestNVELongRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-step NVE run skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("1000-step NVE run is too slow under -race")
	}
	box := water.CubicBoxFor(64)
	sys := water.Build(4, 4, 4, box, 42)
	water.Equilibrate(sys, 100, 0.001, 300, 0.7, 7)
	rc := 0.7
	alpha := spme.AlphaFromRTol(rc, 1e-4)
	mesh := core.New(core.Params{
		Alpha: alpha, Rc: rc, Order: 6,
		N: [3]int{16, 16, 16}, Levels: 1, M: 3, Gc: 8,
	}, sys.Box)
	integ := &md.Integrator{
		FF: &md.ForceField{Alpha: alpha, Rc: rc, Skin: 0.1, Mesh: mesh},
		Dt: 0.001,
	}
	var e0, eMin, eMax, ke float64
	for s := 0; s < 1000; s++ {
		e := integ.Step(sys)
		tot := e.Total()
		if math.IsNaN(tot) {
			t.Fatalf("energy NaN at step %d", s)
		}
		if s == 0 {
			e0, eMin, eMax, ke = tot, tot, tot, e.Kinetic
		}
		eMin = math.Min(eMin, tot)
		eMax = math.Max(eMax, tot)
	}
	spread := eMax - eMin
	t.Logf("E0=%.3f kJ/mol, spread over 1 ps: %.3f kJ/mol (%.2f%% of KE %.1f)",
		e0, spread, 100*spread/ke, ke)
	// Velocity Verlet with rigid water at 1 fs: bounded oscillation, no
	// systematic drift. 5% of the kinetic energy is ~25x the observed
	// spread, so a regression that introduces drift trips this long
	// before it would corrupt an observable.
	if spread > 0.05*ke {
		t.Errorf("total-energy spread %.3f kJ/mol exceeds 5%% of KE (%.1f)", spread, ke)
	}
}

// TestStepSteadyStateAllocs: after warmup an Integrator.Step with the
// buffered Verlet list and no mesh must not allocate at all; with a full
// SPME mesh it must stay within the mesh pipeline's small fixed budget.
func TestStepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	for _, tc := range []struct {
		name   string
		mesh   bool
		budget float64
	}{
		{"verlet-no-mesh", false, 0},
		{"verlet+spme", true, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			box := water.CubicBoxFor(64)
			sys := water.Build(4, 4, 4, box, 42)
			water.Equilibrate(sys, 20, 0.001, 300, 0.7, 7)
			rc := 0.7
			alpha := spme.AlphaFromRTol(rc, 1e-4)
			ff := &md.ForceField{Alpha: alpha, Rc: rc, Skin: 0.1}
			if tc.mesh {
				ff.Mesh = spme.New(spme.Params{Alpha: alpha, Rc: rc, Order: 6, N: [3]int{16, 16, 16}}, sys.Box)
			}
			integ := &md.Integrator{FF: ff, Dt: 0.001}
			for s := 0; s < 5; s++ {
				integ.Step(sys)
			}
			allocs := testing.AllocsPerRun(10, func() {
				integ.Step(sys)
			})
			if allocs > tc.budget {
				t.Errorf("Step allocates %.1f per run, budget %.0f", allocs, tc.budget)
			}
		})
	}
}
