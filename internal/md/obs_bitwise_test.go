package md_test

// Instrumentation neutrality: attaching the internal/obs stage recorder to
// an integrator must not change the trajectory by a single bit, at any
// GOMAXPROCS. The recorder only reads the clock and touches its own atomic
// slots; a regression here means an instrumentation site leaked into the
// numerics (reordered a reduction, perturbed a buffer, changed a branch).

import (
	"runtime"
	"testing"

	"tme4a/internal/obs"
)

// TestObsBitwiseNeutral runs a 1000-step NVE trajectory (SPME mesh +
// buffered Verlet list, the Fig 4 stack) twice per GOMAXPROCS level —
// uninstrumented and with a recorder attached — and requires bitwise
// identical positions, velocities, forces and energies.
func TestObsBitwiseNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("four 1000-step NVE runs skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("four 1000-step NVE runs are too slow under -race")
	}
	const steps = 1000
	for _, p := range []int{1, 4} {
		old := runtime.GOMAXPROCS(p)
		plain := runTrajectory(steps, 0.1, true, nil)
		rec := obs.New()
		instr := runTrajectory(steps, 0.1, true, rec)
		runtime.GOMAXPROCS(old)

		if instr.e != plain.e {
			t.Fatalf("GOMAXPROCS=%d: energies differ with obs attached: %+v vs %+v", p, instr.e, plain.e)
		}
		for i := range plain.pos {
			if instr.pos[i] != plain.pos[i] || instr.vel[i] != plain.vel[i] || instr.frc[i] != plain.frc[i] {
				t.Fatalf("GOMAXPROCS=%d: atom %d state differs with obs attached:\npos %v vs %v\nvel %v vs %v\nfrc %v vs %v",
					p, i, instr.pos[i], plain.pos[i], instr.vel[i], plain.vel[i], instr.frc[i], plain.frc[i])
			}
		}
		// The recorder must actually have observed the run it rode along.
		if got := rec.StageCount(obs.StageStep); got != steps {
			t.Errorf("GOMAXPROCS=%d: recorder saw %d step spans, want %d", p, got, steps)
		}
		// The first Step also runs the initialization force evaluation, so
		// force-side stages see steps+1 evaluations.
		if rec.StageNs(obs.StageShortRange) <= 0 || rec.StageCount(obs.StageMesh) != steps+1 {
			t.Errorf("GOMAXPROCS=%d: stage data incomplete: short-range %d ns, mesh count %d",
				p, rec.StageNs(obs.StageShortRange), rec.StageCount(obs.StageMesh))
		}
	}
}
