package md

import (
	"hash/fnv"
	"math"
)

// StateHash digests the full dynamic state of a system — positions and
// velocities as raw float64 bits, in atom order — with FNV-1a. Two states
// hash equal iff they are bitwise identical, so trajectory comparisons
// built on it (the fig4resume harness, the serve tier's per-job identity
// checks) are exact rather than tolerance-based.
func StateHash(sys *System) uint64 {
	h := fnv.New64a()
	var b [8]byte
	word := func(x float64) {
		u := math.Float64bits(x)
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	for i := range sys.Pos {
		for k := 0; k < 3; k++ {
			word(sys.Pos[i][k])
		}
		for k := 0; k < 3; k++ {
			word(sys.Vel[i][k])
		}
	}
	return h.Sum64()
}
