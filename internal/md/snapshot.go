package md

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"tme4a/internal/vec"
)

// Snapshot is the serializable dynamic state of a System (positions and
// velocities; the static topology is rebuilt by the system builders, which
// are deterministic in their seeds).
type Snapshot struct {
	Box vec.Box
	Pos []vec.V
	Vel []vec.V
	// Meta carries builder parameters (free-form, e.g. lattice side and
	// seed) so loaders can reconstruct the matching topology.
	Meta map[string]int64
}

// TakeSnapshot captures the system's dynamic state.
func (s *System) TakeSnapshot(meta map[string]int64) *Snapshot {
	snap := &Snapshot{
		Box:  s.Box,
		Pos:  append([]vec.V(nil), s.Pos...),
		Vel:  append([]vec.V(nil), s.Vel...),
		Meta: meta,
	}
	return snap
}

// Restore copies a snapshot's dynamic state into the system, which must
// have the same atom count.
func (s *System) Restore(snap *Snapshot) error {
	if len(snap.Pos) != s.N() {
		return fmt.Errorf("md: snapshot has %d atoms, system has %d", len(snap.Pos), s.N())
	}
	s.Box = snap.Box
	copy(s.Pos, snap.Pos)
	copy(s.Vel, snap.Vel)
	return nil
}

// snapshotWire is the on-disk form. Meta travels as parallel key/value
// slices in sorted key order: gob serializes maps in Go's randomized
// iteration order, so encoding the map directly makes two snapshots of
// the same state differ byte-wise between runs — a determinism leak
// tmevet's detmap check guards against in code and this wire form closes
// at the serialization boundary.
type snapshotWire struct {
	Box      vec.Box
	Pos      []vec.V
	Vel      []vec.V
	MetaKeys []string
	MetaVals []int64
}

// GobEncode implements gob.GobEncoder with byte-deterministic output.
func (snap *Snapshot) GobEncode() ([]byte, error) {
	w := snapshotWire{Box: snap.Box, Pos: snap.Pos, Vel: snap.Vel}
	w.MetaKeys = make([]string, 0, len(snap.Meta))
	for k := range snap.Meta { //tmevet:ignore detmap -- keys are sorted below before anything observes the order
		w.MetaKeys = append(w.MetaKeys, k)
	}
	sort.Strings(w.MetaKeys)
	w.MetaVals = make([]int64, len(w.MetaKeys))
	for i, k := range w.MetaKeys {
		w.MetaVals[i] = snap.Meta[k]
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder for the wire form above.
func (snap *Snapshot) GobDecode(data []byte) error {
	var w snapshotWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	snap.Box, snap.Pos, snap.Vel = w.Box, w.Pos, w.Vel
	snap.Meta = nil
	if len(w.MetaKeys) > 0 {
		if len(w.MetaVals) != len(w.MetaKeys) {
			return fmt.Errorf("md: corrupt snapshot meta: %d keys, %d values", len(w.MetaKeys), len(w.MetaVals))
		}
		snap.Meta = make(map[string]int64, len(w.MetaKeys))
		for i, k := range w.MetaKeys {
			snap.Meta[k] = w.MetaVals[i]
		}
	}
	return nil
}

// Encode serializes the snapshot with encoding/gob. The byte stream is a
// pure function of the snapshot contents (see snapshotWire).
func (snap *Snapshot) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(snap)
}

// ReadSnapshot deserializes a snapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var snap Snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// SaveSnapshot writes the snapshot to a file.
func SaveSnapshot(path string, snap *Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return snap.Encode(f)
}

// LoadSnapshot reads a snapshot from a file.
func LoadSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// EnergyReporter writes a CSV energy ledger, one row per report, for
// trajectory analysis (the Fig. 4 series use this format).
type EnergyReporter struct {
	W     io.Writer
	Dt    float64 // ps per step
	wrote bool
}

// Report writes one row (writing the header first if needed); it is shaped
// to plug into Integrator.Run.
func (r *EnergyReporter) Report(step int, e Energies) {
	if !r.wrote {
		fmt.Fprintln(r.W, "time_ps,potential,kinetic,total,coul_short,coul_long,coul_excl,lj,bonded")
		r.wrote = true
	}
	fmt.Fprintf(r.W, "%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
		float64(step)*r.Dt, e.Potential(), e.Kinetic, e.Total(),
		e.CoulShort, e.CoulLong, e.CoulExcl, e.LJ, e.Bonded)
}
