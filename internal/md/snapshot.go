package md

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"tme4a/internal/vec"
)

// Snapshot is the serializable dynamic state of a System (positions and
// velocities; the static topology is rebuilt by the system builders, which
// are deterministic in their seeds).
//
// Beyond the plain (Box, Pos, Vel, Meta) state, a snapshot can carry the
// full cross-step resume state captured by Integrator.CaptureResume: the
// step counter, the forces of the last completed step, the neighbor-list
// build positions and the cached long-range forces of a multiple-timestep
// schedule. With those present, Integrator.RestoreResume reproduces the
// uninterrupted trajectory bitwise (see DESIGN.md §7.5); without them the
// snapshot restores like a plain initial condition.
type Snapshot struct {
	Box vec.Box
	Pos []vec.V
	Vel []vec.V
	// Meta carries builder parameters (free-form, e.g. lattice side and
	// seed) so loaders can reconstruct the matching topology.
	Meta map[string]int64

	// Resume extension, zero-valued in plain TakeSnapshot snapshots.
	Step  int64    // completed integrator steps at capture time
	Frc   []vec.V  // forces at the end of step Step (empty: not captured)
	LastE Energies // energies of step Step
	// VerletRef holds the positions the live Verlet pair list was built
	// from; re-running Rebuild at these positions reproduces the pair
	// buckets, and hence the force summation order, bitwise.
	VerletRef []vec.V
	// MeshForces/MeshEnergy/MeshExcl are the cached long-range term of a
	// multiple-timestep schedule (Integrator.MeshEvery > 1), valid when
	// HasMesh is set. They were computed at the last mesh step's
	// positions, so recomputing at the snapshot positions would not be
	// the same replay.
	MeshForces []vec.V
	MeshEnergy float64
	MeshExcl   float64
	HasMesh    bool
}

// Validate checks the snapshot's self-consistency: matching array
// lengths, a sane periodic box, and no non-finite values anywhere. It is
// called by System.Restore and by the checkpoint loader so that a NaN or
// a truncation smuggled through serialized state is rejected at load
// time, not detonated thousands of steps later.
func (snap *Snapshot) Validate() error {
	n := len(snap.Pos)
	if len(snap.Vel) != n {
		return fmt.Errorf("md: snapshot has %d positions but %d velocities", n, len(snap.Vel))
	}
	if snap.Step < 0 {
		return fmt.Errorf("md: snapshot has negative step count %d", snap.Step)
	}
	for k := 0; k < 3; k++ {
		if l := snap.Box.L[k]; !isFinite(l) || l <= 0 {
			return fmt.Errorf("md: snapshot box edge %d is %g, want finite and positive", k, l)
		}
	}
	for _, s := range []struct {
		name string
		v    []vec.V
	}{
		{"forces", snap.Frc},
		{"verlet reference", snap.VerletRef},
		{"mesh forces", snap.MeshForces},
	} {
		if len(s.v) != 0 && len(s.v) != n {
			return fmt.Errorf("md: snapshot %s cover %d atoms, positions %d", s.name, len(s.v), n)
		}
	}
	if snap.HasMesh {
		if len(snap.MeshForces) != n {
			return fmt.Errorf("md: snapshot claims cached mesh forces but carries %d of %d", len(snap.MeshForces), n)
		}
		if !isFinite(snap.MeshEnergy) || !isFinite(snap.MeshExcl) {
			return fmt.Errorf("md: snapshot mesh energies are not finite (%g, %g)", snap.MeshEnergy, snap.MeshExcl)
		}
	}
	for _, s := range []struct {
		name string
		v    []vec.V
	}{
		{"position", snap.Pos},
		{"velocity", snap.Vel},
		{"force", snap.Frc},
		{"verlet reference", snap.VerletRef},
		{"mesh force", snap.MeshForces},
	} {
		for i, v := range s.v {
			if !isFinite(v[0]) || !isFinite(v[1]) || !isFinite(v[2]) {
				return fmt.Errorf("md: snapshot %s %d is not finite: %v", s.name, i, v)
			}
		}
	}
	for _, e := range [...]float64{
		snap.LastE.CoulShort, snap.LastE.CoulLong, snap.LastE.CoulExcl,
		snap.LastE.LJ, snap.LastE.Bonded, snap.LastE.Kinetic,
	} {
		if !isFinite(e) {
			return fmt.Errorf("md: snapshot energies are not finite: %+v", snap.LastE)
		}
	}
	return nil
}

func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// TakeSnapshot captures the system's dynamic state.
func (s *System) TakeSnapshot(meta map[string]int64) *Snapshot {
	snap := &Snapshot{
		Box:  s.Box,
		Pos:  append([]vec.V(nil), s.Pos...),
		Vel:  append([]vec.V(nil), s.Vel...),
		Meta: meta,
	}
	return snap
}

// Restore copies a snapshot's dynamic state into the system, which must
// have the same atom count. The snapshot is validated first (length
// agreement, box sanity, finite values), so corrupt or hand-edited state
// is rejected here rather than silently integrated.
func (s *System) Restore(snap *Snapshot) error {
	if err := snap.Validate(); err != nil {
		return err
	}
	if len(snap.Pos) != s.N() {
		return fmt.Errorf("md: snapshot has %d atoms, system has %d", len(snap.Pos), s.N())
	}
	s.Box = snap.Box
	copy(s.Pos, snap.Pos)
	copy(s.Vel, snap.Vel)
	return nil
}

// snapshotWire is the on-disk form. Meta travels as parallel key/value
// slices in sorted key order: gob serializes maps in Go's randomized
// iteration order, so encoding the map directly makes two snapshots of
// the same state differ byte-wise between runs — a determinism leak
// tmevet's detmap check guards against in code and this wire form closes
// at the serialization boundary.
type snapshotWire struct {
	Box      vec.Box
	Pos      []vec.V
	Vel      []vec.V
	MetaKeys []string
	MetaVals []int64

	Step       int64
	Frc        []vec.V
	LastE      Energies
	VerletRef  []vec.V
	MeshForces []vec.V
	MeshEnergy float64
	MeshExcl   float64
	HasMesh    bool
}

// GobEncode implements gob.GobEncoder with byte-deterministic output.
func (snap *Snapshot) GobEncode() ([]byte, error) {
	w := snapshotWire{
		Box: snap.Box, Pos: snap.Pos, Vel: snap.Vel,
		Step: snap.Step, Frc: snap.Frc, LastE: snap.LastE,
		VerletRef: snap.VerletRef, MeshForces: snap.MeshForces,
		MeshEnergy: snap.MeshEnergy, MeshExcl: snap.MeshExcl,
		HasMesh: snap.HasMesh,
	}
	w.MetaKeys = make([]string, 0, len(snap.Meta))
	for k := range snap.Meta { //tmevet:ignore detmap -- keys are sorted below before anything observes the order
		w.MetaKeys = append(w.MetaKeys, k)
	}
	sort.Strings(w.MetaKeys)
	w.MetaVals = make([]int64, len(w.MetaKeys))
	for i, k := range w.MetaKeys {
		w.MetaVals[i] = snap.Meta[k]
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder for the wire form above.
func (snap *Snapshot) GobDecode(data []byte) error {
	var w snapshotWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	snap.Box, snap.Pos, snap.Vel = w.Box, w.Pos, w.Vel
	snap.Step, snap.Frc, snap.LastE = w.Step, w.Frc, w.LastE
	snap.VerletRef, snap.MeshForces = w.VerletRef, w.MeshForces
	snap.MeshEnergy, snap.MeshExcl, snap.HasMesh = w.MeshEnergy, w.MeshExcl, w.HasMesh
	snap.Meta = nil
	if len(w.MetaKeys) > 0 {
		if len(w.MetaVals) != len(w.MetaKeys) {
			return fmt.Errorf("md: corrupt snapshot meta: %d keys, %d values", len(w.MetaKeys), len(w.MetaVals))
		}
		snap.Meta = make(map[string]int64, len(w.MetaKeys))
		for i, k := range w.MetaKeys {
			snap.Meta[k] = w.MetaVals[i]
		}
	}
	return nil
}

// Encode serializes the snapshot with encoding/gob. The byte stream is a
// pure function of the snapshot contents (see snapshotWire).
func (snap *Snapshot) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(snap)
}

// ReadSnapshot deserializes a snapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var snap Snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// SaveSnapshot writes the snapshot to a file.
func SaveSnapshot(path string, snap *Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return snap.Encode(f)
}

// LoadSnapshot reads a snapshot from a file.
func LoadSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// EnergyReporter writes a CSV energy ledger, one row per report, for
// trajectory analysis (the Fig. 4 series use this format).
type EnergyReporter struct {
	W     io.Writer
	Dt    float64 // ps per step
	wrote bool
}

// Report writes one row (writing the header first if needed); it is shaped
// to plug into Integrator.Run.
func (r *EnergyReporter) Report(step int, e Energies) {
	if !r.wrote {
		fmt.Fprintln(r.W, "time_ps,potential,kinetic,total,coul_short,coul_long,coul_excl,lj,bonded")
		r.wrote = true
	}
	fmt.Fprintf(r.W, "%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
		float64(step)*r.Dt, e.Potential(), e.Kinetic, e.Total(),
		e.CoulShort, e.CoulLong, e.CoulExcl, e.LJ, e.Bonded)
}
