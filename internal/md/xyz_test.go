package md_test

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"tme4a/internal/md"
	"tme4a/internal/water"
)

func TestXYZRoundTrip(t *testing.T) {
	box := water.CubicBoxFor(8)
	sys := water.Build(2, 2, 2, box, 3)
	var buf bytes.Buffer
	w := md.NewXYZWriter(&buf, md.WaterElements(8))
	if err := w.WriteFrame(sys, "frame 0"); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(sys, "frame 1\nwith newline"); err != nil {
		t.Fatal(err)
	}

	r := bufio.NewReader(&buf)
	for frame := 0; frame < 2; frame++ {
		el, pos, comment, err := md.ReadXYZFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
		if len(el) != sys.N() {
			t.Fatalf("frame %d: %d atoms", frame, len(el))
		}
		if el[0] != "O" || el[1] != "H" {
			t.Errorf("elements %v...", el[:3])
		}
		if frame == 1 && strings.Contains(comment, "\n") {
			t.Error("newline leaked into comment")
		}
		for i := range pos {
			for k := 0; k < 3; k++ {
				if math.Abs(pos[i][k]-sys.Pos[i][k]) > 1e-6 {
					t.Fatalf("frame %d atom %d axis %d: %g vs %g",
						frame, i, k, pos[i][k], sys.Pos[i][k])
				}
			}
		}
	}
	if _, _, _, err := md.ReadXYZFrame(r); err != io.EOF {
		t.Errorf("expected EOF after last frame, got %v", err)
	}
}

func TestXYZRejectsGarbage(t *testing.T) {
	r := bufio.NewReader(strings.NewReader("not-a-count\ncomment\n"))
	if _, _, _, err := md.ReadXYZFrame(r); err == nil {
		t.Error("expected parse error")
	}
}
