package md_test

import (
	"bytes"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/md"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

// TestSnapshotPropertyRoundTrip is a property-based check over randomly
// populated snapshots: for systems of varying size whose state is drawn
// from a generator seeded by the subtest name, encode→decode must
// reproduce the snapshot exactly, restoring must reproduce the system
// state exactly, and re-encoding the decoded snapshot must reproduce the
// original bytes — the byte-determinism contract the checkpoint CRC and
// the fig4resume harness both lean on.
func TestSnapshotPropertyRoundTrip(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "meta-heavy", "resume-state"} {
		t.Run(name, func(t *testing.T) {
			h := fnv.New64a()
			h.Write([]byte(name))
			rng := rand.New(rand.NewSource(int64(h.Sum64())))

			side := 2 + rng.Intn(2)
			n := side * side * side
			sys := water.Build(side, side, side, water.CubicBoxFor(n), rng.Int63n(1000))
			sys.InitVelocities(250+50*rng.Float64(), rng)

			meta := map[string]int64{"side": int64(side)}
			for i := 0; i < rng.Intn(12); i++ {
				meta[string(rune('a'+i))] = rng.Int63()
			}
			snap := sys.TakeSnapshot(meta)
			if name == "resume-state" {
				snap.Step = rng.Int63n(1 << 40)
				snap.Frc = randVecs(rng, sys.N())
				snap.VerletRef = randVecs(rng, sys.N())
				snap.MeshForces = randVecs(rng, sys.N())
				snap.MeshEnergy = rng.NormFloat64()
				snap.MeshExcl = rng.NormFloat64()
				snap.HasMesh = true
				snap.LastE = md.Energies{Kinetic: rng.Float64(), LJ: rng.NormFloat64()}
			}

			var first bytes.Buffer
			if err := snap.Encode(&first); err != nil {
				t.Fatal(err)
			}
			got, err := md.ReadSnapshot(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			// Decoded state is exact.
			other := water.Build(side, side, side, sys.Box, 999)
			if err := other.Restore(got); err != nil {
				t.Fatal(err)
			}
			for i := range sys.Pos {
				if other.Pos[i] != sys.Pos[i] || other.Vel[i] != sys.Vel[i] {
					t.Fatalf("restored state differs at atom %d", i)
				}
			}
			if got.Step != snap.Step || got.HasMesh != snap.HasMesh || got.LastE != snap.LastE {
				t.Fatal("resume scalars lost in round trip")
			}

			// Re-encoding the decoded snapshot is byte-identical.
			var second bytes.Buffer
			if err := got.Encode(&second); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("re-encode differs: %d vs %d bytes", first.Len(), second.Len())
			}
		})
	}
}

func randVecs(rng *rand.Rand, n int) []vec.V {
	vs := make([]vec.V, n)
	for i := range vs {
		vs[i] = vec.V{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	return vs
}

// TestRestoreRejectsInvalidState: the regression suite for the latent
// Restore hole — before Validate was wired in, a NaN position or a
// degenerate box restored silently and detonated steps later.
func TestRestoreRejectsInvalidState(t *testing.T) {
	base := func() (*md.System, *md.Snapshot) {
		sys := water.Build(2, 2, 2, water.CubicBoxFor(8), 3)
		sys.InitVelocities(300, rand.New(rand.NewSource(5)))
		return sys, sys.TakeSnapshot(nil)
	}
	cases := []struct {
		name   string
		mutate func(*md.Snapshot)
	}{
		{"nan position", func(s *md.Snapshot) { s.Pos[1][2] = math.NaN() }},
		{"inf velocity", func(s *md.Snapshot) { s.Vel[0][0] = math.Inf(1) }},
		{"zero box edge", func(s *md.Snapshot) { s.Box.L[1] = 0 }},
		{"negative box edge", func(s *md.Snapshot) { s.Box.L[2] = -1.2 }},
		{"nan box edge", func(s *md.Snapshot) { s.Box.L[0] = math.NaN() }},
		{"velocity count mismatch", func(s *md.Snapshot) { s.Vel = s.Vel[:len(s.Vel)-1] }},
		{"negative step", func(s *md.Snapshot) { s.Step = -1 }},
		{"nan force", func(s *md.Snapshot) { s.Frc = make([]vec.V, len(s.Pos)); s.Frc[0][0] = math.NaN() }},
		{"mesh claim without forces", func(s *md.Snapshot) { s.HasMesh = true }},
		{"nan energy", func(s *md.Snapshot) { s.LastE.CoulLong = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, snap := base()
			tc.mutate(snap)
			if err := sys.Restore(snap); err == nil {
				t.Fatal("Restore accepted invalid state")
			}
			// And the same state must be refused when it arrives via the
			// serialized path.
			var buf bytes.Buffer
			if err := snap.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := md.ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				return // decoder itself refused: also acceptable
			}
			if err := sys.Restore(got); err == nil {
				t.Fatal("Restore accepted invalid state after decode")
			}
		})
	}
}

// TestResumeIsBitwise is the integrator-level resume contract: capturing
// mid-run with CaptureResume and continuing in a fresh process-alike
// (new System from the same builder, new Integrator, RestoreResume) must
// reproduce the uninterrupted trajectory bit for bit. Exercised both for
// the plain every-step force field and for the hard case — buffered
// Verlet list plus a multiple-timestep mesh whose cached long-range term
// must replay, not recompute.
func TestResumeIsBitwise(t *testing.T) {
	type cfg struct {
		name      string
		skin      float64
		mesh      bool
		meshEvery int
	}
	for _, c := range []cfg{
		{name: "plain", meshEvery: 1},
		{name: "verlet+mts-mesh", skin: 0.15, mesh: true, meshEvery: 2},
	} {
		t.Run(c.name, func(t *testing.T) {
			const (
				side     = 3
				seed     = 17
				rc       = 0.55
				dt       = 0.0005
				total    = 50
				breakAt  = 23 // deliberately not a mesh-step multiple
				tempInit = 280.0
			)
			box := water.CubicBoxFor(side * side * side)
			build := func() *md.System {
				sys := water.Build(side, side, side, box, seed)
				sys.InitVelocities(tempInit, rand.New(rand.NewSource(seed)))
				return sys
			}
			mkInteg := func(sysBox vec.Box) *md.Integrator {
				ff := &md.ForceField{Rc: rc, Skin: c.skin}
				if c.mesh {
					alpha := spme.AlphaFromRTol(rc, 1e-4)
					ff.Alpha = alpha
					ff.Mesh = spme.New(spme.Params{Alpha: alpha, Rc: rc, Order: 6, N: [3]int{16, 16, 16}}, sysBox)
				}
				return &md.Integrator{FF: ff, Dt: dt, MeshEvery: c.meshEvery}
			}

			// Uninterrupted reference.
			ref := build()
			refInteg := mkInteg(ref.Box)
			for s := 0; s < total; s++ {
				refInteg.Step(ref)
			}

			// Interrupted run: capture at breakAt…
			a := build()
			ai := mkInteg(a.Box)
			for s := 0; s < breakAt; s++ {
				ai.Step(a)
			}
			snap := ai.CaptureResume(a, map[string]int64{"side": side, "seed": seed})
			if snap.Step != breakAt {
				t.Fatalf("captured step %d, want %d", snap.Step, breakAt)
			}

			// …serialize through the wire format, as a real restart would…
			var buf bytes.Buffer
			if err := snap.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			wire, err := md.ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			// …and continue in fresh objects.
			b := build()
			bi := mkInteg(b.Box)
			if err := bi.RestoreResume(b, wire); err != nil {
				t.Fatal(err)
			}
			if bi.StepCount() != breakAt {
				t.Fatalf("resumed step count %d, want %d", bi.StepCount(), breakAt)
			}
			for s := breakAt; s < total; s++ {
				bi.Step(b)
			}

			for i := range ref.Pos {
				if ref.Pos[i] != b.Pos[i] || ref.Vel[i] != b.Vel[i] {
					t.Fatalf("resumed trajectory diverged at atom %d:\n  pos %v vs %v\n  vel %v vs %v",
						i, ref.Pos[i], b.Pos[i], ref.Vel[i], b.Vel[i])
				}
			}
		})
	}
}
