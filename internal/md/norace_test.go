//go:build !race

package md_test

const raceEnabled = false
