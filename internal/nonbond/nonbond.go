// Package nonbond computes the short-range nonbonded interactions: the
// real-space (erfc-screened) Coulomb term of Ewald-split electrostatics and
// Lennard-Jones dispersion/repulsion, over a linked-cell pair list.
//
// This is the computation the MDGRAPE-4A "nonbond pipelines" perform: 64
// dedicated pipelines per SoC evaluating one pair interaction per cycle.
// The cycle model of those pipelines lives in internal/hw; this package is
// the numerical implementation.
//
// # Parallel determinism
//
// ComputeWithList and VerletList.Compute are parallelized over the cell
// list's ownership slabs (celllist.List.Slabs) with the same guarantee the
// mesh pipeline gives: results are bitwise identical at any GOMAXPROCS.
// Each slab's worker accumulates forces only into atoms its slab owns, in
// a fixed enumeration order; the Newton-pair reaction forces that land in
// a foreign slab are recorded in per-slab deferred buffers and applied by
// the owning slab in a second pass, in fixed source-slab order. Energies,
// virial-style sums and pair counts reduce over per-slab padded partials
// in ascending slab order. No atomics, no per-worker force arrays.
package nonbond

import (
	"math"
	"sync"

	"tme4a/internal/celllist"
	"tme4a/internal/par"
	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// LJ holds per-atom Lennard-Jones parameters; atoms with Eps == 0 carry no
// LJ site. Pair parameters follow Lorentz–Berthelot combining rules.
type LJ struct {
	Sigma []float64 // nm
	Eps   []float64 // kJ/mol
}

// Result reports the short-range energy components in kJ/mol.
type Result struct {
	ECoul float64 // erfc-screened Coulomb
	ELJ   float64 // Lennard-Jones
	Pairs int     // interacting pairs evaluated (within cutoff)
}

// slabPartial is one slab's energy/pair-count accumulator, padded to a
// cache line so concurrent slab workers never share one.
type slabPartial struct {
	eCoul, eLJ float64
	pairs      int
	_          [5]float64
}

// deferredForce is a Newton-pair reaction force destined for an atom in a
// foreign slab, applied by that slab's worker in the second pass.
type deferredForce struct {
	j int32
	f vec.V
}

// pairScratch holds the per-call slab partials and deferred-force buffers
// of ComputeWithList, recycled through scratchPool so steady-state calls
// allocate nothing.
type pairScratch struct {
	part []slabPartial
	// def[src*ns+tgt] collects the reaction forces slab src owes slab tgt.
	// Used in cell mode, where cross-slab pairs are the thin boundary-layer
	// minority and only tgt = src+1 (mod ns) is populated.
	def []([]deferredForce)
	// dense[src] is slab src's private full-length reaction-force buffer,
	// used in direct mode instead of def: there nearly every pair crosses a
	// block boundary, and a dense accumulator costs one vector write per
	// pair (like the serial f[j] update) where per-pair deferred entries
	// would dominate the runtime. Direct mode caps the slab count at 32, so
	// the footprint stays bounded at ns·n vectors.
	dense [][]vec.V
}

var scratchPool = sync.Pool{New: func() interface{} { return new(pairScratch) }}

func (sc *pairScratch) reset(ns int) {
	if cap(sc.part) < ns {
		sc.part = make([]slabPartial, ns)
	}
	sc.part = sc.part[:ns]
	for i := range sc.part {
		sc.part[i] = slabPartial{}
	}
	need := ns * ns
	if cap(sc.def) < need {
		old := sc.def
		sc.def = make([][]deferredForce, need)
		// Keep the grown buffers of previous calls alive.
		copy(sc.def, old)
	}
	sc.def = sc.def[:need]
	for i := range sc.def {
		sc.def[i] = sc.def[i][:0]
	}
}

// resetDense sizes and zeroes the direct-mode dense reaction buffers.
func (sc *pairScratch) resetDense(ns, n int) {
	if cap(sc.dense) < ns {
		old := sc.dense
		sc.dense = make([][]vec.V, ns)
		copy(sc.dense, old)
	}
	sc.dense = sc.dense[:ns]
	for s := range sc.dense {
		if cap(sc.dense[s]) < n {
			sc.dense[s] = make([]vec.V, n)
		}
		sc.dense[s] = sc.dense[s][:n]
		buf := sc.dense[s]
		for i := range buf {
			buf[i] = vec.V{}
		}
	}
}

// Compute evaluates short-range interactions for all non-excluded pairs
// within rc, accumulating forces into f (may be nil). alpha is the Ewald
// splitting parameter; pass alpha = 0 for plain (unscreened) Coulomb.
func Compute(box vec.Box, pos []vec.V, q []float64, lj *LJ, alpha, rc float64, excl *topol.Exclusions, f []vec.V) Result {
	cl := celllist.Build(box, rc, pos)
	return ComputeWithList(cl, box, pos, q, lj, alpha, excl, f)
}

// ComputeWithList is Compute with a prebuilt cell list (so callers stepping
// an MD trajectory can reuse the list while atoms move less than the skin).
// It is parallel and bitwise deterministic at any GOMAXPROCS (see the
// package comment) and allocation-free in steady state.
func ComputeWithList(cl *celllist.List, box vec.Box, pos []vec.V, q []float64, lj *LJ, alpha float64, excl *topol.Exclusions, f []vec.V) Result {
	ns := cl.Slabs()
	n := len(pos)
	dense := cl.Direct() && f != nil
	sc := scratchPool.Get().(*pairScratch)
	sc.reset(ns)
	if dense {
		sc.resetDense(ns, n)
	}
	if par.WorkersGrain(ns, 1) == 1 {
		if dense {
			for s := 0; s < ns; s++ {
				computeSlabDense(cl, pos, q, lj, alpha, excl, f, sc, s)
			}
			applyDense(f, sc, 0, ns, ns, n)
		} else {
			for s := 0; s < ns; s++ {
				computeSlab(cl, pos, q, lj, alpha, excl, f, sc, s, ns)
			}
			if f != nil {
				applyDeferred(f, sc, 0, ns, ns)
			}
		}
	} else if dense {
		par.ForRangeGrain(ns, 1, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				computeSlabDense(cl, pos, q, lj, alpha, excl, f, sc, s)
			}
		})
		par.ForRangeGrain(ns, 1, func(lo, hi int) {
			applyDense(f, sc, lo, hi, ns, n)
		})
	} else {
		par.ForRangeGrain(ns, 1, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				computeSlab(cl, pos, q, lj, alpha, excl, f, sc, s, ns)
			}
		})
		if f != nil {
			par.ForRangeGrain(ns, 1, func(lo, hi int) {
				applyDeferred(f, sc, lo, hi, ns)
			})
		}
	}
	var res Result
	for s := 0; s < ns; s++ {
		res.ECoul += sc.part[s].eCoul
		res.ELJ += sc.part[s].eLJ
		res.Pairs += sc.part[s].pairs
	}
	scratchPool.Put(sc)
	return res
}

// computeSlab traverses slab s, writing forces only into atoms slab s owns
// and deferring cross-slab reaction forces.
func computeSlab(cl *celllist.List, pos []vec.V, q []float64, lj *LJ, alpha float64, excl *topol.Exclusions, f []vec.V, sc *pairScratch, s, ns int) {
	p := &sc.part[s]
	base := s * ns
	cl.ForEachPairInSlab(s, pos, func(i, j int, d vec.V, r2 float64, tgt int) {
		if excl.Excluded(i, j) {
			return
		}
		p.pairs++
		eC, eLJ, fr := pairEval(q[i]*q[j], lj, i, j, alpha, r2)
		p.eCoul += eC
		p.eLJ += eLJ
		if f != nil && fr != 0 {
			fv := d.Scale(fr)
			f[i] = f[i].Add(fv)
			if tgt == s {
				f[j] = f[j].Sub(fv)
			} else {
				sc.def[base+tgt] = append(sc.def[base+tgt], deferredForce{int32(j), fv})
			}
		}
	})
}

// computeSlabDense is the direct-mode variant of computeSlab: cross-block
// reaction forces accumulate into the slab's dense private buffer instead
// of per-pair deferred entries.
func computeSlabDense(cl *celllist.List, pos []vec.V, q []float64, lj *LJ, alpha float64, excl *topol.Exclusions, f []vec.V, sc *pairScratch, s int) {
	p := &sc.part[s]
	fs := sc.dense[s]
	cl.ForEachPairInSlab(s, pos, func(i, j int, d vec.V, r2 float64, tgt int) {
		if excl.Excluded(i, j) {
			return
		}
		p.pairs++
		eC, eLJ, fr := pairEval(q[i]*q[j], lj, i, j, alpha, r2)
		p.eCoul += eC
		p.eLJ += eLJ
		if fr != 0 {
			fv := d.Scale(fr)
			f[i] = f[i].Add(fv)
			if tgt == s {
				f[j] = f[j].Sub(fv)
			} else {
				fs[j] = fs[j].Sub(fv)
			}
		}
	})
}

// applyDense folds the dense reaction buffers into the atoms of target
// slabs [mlo, mhi), scanning source slabs in ascending order. Direct-mode
// blocks follow atom order with i < j, so only sources below the target
// ever contribute.
func applyDense(f []vec.V, sc *pairScratch, mlo, mhi, ns, n int) {
	c := (n + ns - 1) / ns
	for m := mlo; m < mhi; m++ {
		lo, hi := m*c, (m+1)*c
		if hi > n {
			hi = n
		}
		for src := 0; src < m; src++ {
			fs := sc.dense[src]
			for j := lo; j < hi; j++ {
				f[j] = f[j].Add(fs[j])
			}
		}
	}
}

// applyDeferred applies the deferred reaction forces owed to target slabs
// [mlo, mhi), scanning source slabs in ascending order so each atom's
// accumulation order is fixed.
func applyDeferred(f []vec.V, sc *pairScratch, mlo, mhi, ns int) {
	for m := mlo; m < mhi; m++ {
		for src := 0; src < ns; src++ {
			if src == m {
				continue
			}
			for _, e := range sc.def[src*ns+m] {
				f[e.j] = f[e.j].Sub(e.f)
			}
		}
	}
}

// pairEval evaluates the erfc-screened Coulomb + Lennard-Jones kernel for
// one pair at squared distance r2, returning the two energy terms and the
// radial force factor fr such that F_i = fr·d (and F_j = −fr·d).
func pairEval(qq float64, lj *LJ, i, j int, alpha, r2 float64) (eC, eLJ, fr float64) {
	r := math.Sqrt(r2)
	inv2 := 1 / r2
	if qq != 0 {
		if alpha > 0 {
			eC = qq * math.Erfc(alpha*r) / r * units.Coulomb
			fr += (eC + qq*units.Coulomb*alpha*twoOverSqrtPi*math.Exp(-alpha*alpha*r2)) * inv2
		} else {
			eC = qq / r * units.Coulomb
			fr += eC * inv2
		}
	}
	if lj != nil && lj.Eps[i] != 0 && lj.Eps[j] != 0 {
		eps := math.Sqrt(lj.Eps[i] * lj.Eps[j])
		sig := 0.5 * (lj.Sigma[i] + lj.Sigma[j])
		sr2 := sig * sig * inv2
		sr6 := sr2 * sr2 * sr2
		sr12 := sr6 * sr6
		eLJ = 4 * eps * (sr12 - sr6)
		fr += 24 * eps * (2*sr12 - sr6) * inv2
	}
	return eC, eLJ, fr
}

const twoOverSqrtPi = 2 / 1.7724538509055160273
