// Package nonbond computes the short-range nonbonded interactions: the
// real-space (erfc-screened) Coulomb term of Ewald-split electrostatics and
// Lennard-Jones dispersion/repulsion, over a linked-cell pair list.
//
// This is the computation the MDGRAPE-4A "nonbond pipelines" perform: 64
// dedicated pipelines per SoC evaluating one pair interaction per cycle.
// The cycle model of those pipelines lives in internal/hw; this package is
// the numerical implementation.
package nonbond

import (
	"math"

	"tme4a/internal/celllist"
	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// LJ holds per-atom Lennard-Jones parameters; atoms with Eps == 0 carry no
// LJ site. Pair parameters follow Lorentz–Berthelot combining rules.
type LJ struct {
	Sigma []float64 // nm
	Eps   []float64 // kJ/mol
}

// Result reports the short-range energy components in kJ/mol.
type Result struct {
	ECoul float64 // erfc-screened Coulomb
	ELJ   float64 // Lennard-Jones
	Pairs int     // interacting pairs evaluated (within cutoff)
}

// Compute evaluates short-range interactions for all non-excluded pairs
// within rc, accumulating forces into f (may be nil). alpha is the Ewald
// splitting parameter; pass alpha = 0 for plain (unscreened) Coulomb.
func Compute(box vec.Box, pos []vec.V, q []float64, lj *LJ, alpha, rc float64, excl *topol.Exclusions, f []vec.V) Result {
	cl := celllist.Build(box, rc, pos)
	return ComputeWithList(cl, box, pos, q, lj, alpha, excl, f)
}

// ComputeWithList is Compute with a prebuilt cell list (so callers stepping
// an MD trajectory can reuse the list while atoms move less than the skin).
func ComputeWithList(cl *celllist.List, box vec.Box, pos []vec.V, q []float64, lj *LJ, alpha float64, excl *topol.Exclusions, f []vec.V) Result {
	var res Result
	cl.ForEachPair(pos, func(i, j int, d vec.V, r2 float64) {
		if excl.Excluded(i, j) {
			return
		}
		res.Pairs++
		r := math.Sqrt(r2)
		inv2 := 1 / r2
		var fr float64 // radial force / r, so F_i = fr·d

		if qq := q[i] * q[j]; qq != 0 {
			var e float64
			if alpha > 0 {
				e = qq * math.Erfc(alpha*r) / r * units.Coulomb
				fr += (e + qq*units.Coulomb*alpha*twoOverSqrtPi*math.Exp(-alpha*alpha*r2)) * inv2
			} else {
				e = qq / r * units.Coulomb
				fr += e * inv2
			}
			res.ECoul += e
		}
		if lj != nil && lj.Eps[i] != 0 && lj.Eps[j] != 0 {
			eps := math.Sqrt(lj.Eps[i] * lj.Eps[j])
			sig := 0.5 * (lj.Sigma[i] + lj.Sigma[j])
			sr2 := sig * sig * inv2
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			res.ELJ += 4 * eps * (sr12 - sr6)
			fr += 24 * eps * (2*sr12 - sr6) * inv2
		}
		if f != nil && fr != 0 {
			fv := d.Scale(fr)
			f[i] = f[i].Add(fv)
			f[j] = f[j].Sub(fv)
		}
	})
	return res
}

const twoOverSqrtPi = 2 / 1.7724538509055160273
