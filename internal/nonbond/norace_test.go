//go:build !race

package nonbond

const raceEnabled = false
