// Slab-range evaluation for the rank-decomposed run mode (internal/rank).
//
// A rank owns the contiguous slab range [s0, s1) of the cell list and
// evaluates exactly the pairs ComputeWithList attributes to those slabs,
// with identical per-pair arithmetic and per-atom accumulation order. The
// z-major half stencil defers cross-slab reaction forces only to slab s+1
// (mod ns), so a range's external traffic is a single deferred-force list
// shipped to the next rank and one received from the previous rank; energy
// partials per slab travel to the root, which folds them in ascending slab
// order — the serial reduction — to reconstruct Result bitwise.

package nonbond

import (
	"tme4a/internal/celllist"
	"tme4a/internal/topol"
	"tme4a/internal/vec"
)

// SlabPartial is one slab's short-range energy/pair-count partial; fold
// ECoul/ELJ/Pairs over all slabs in ascending slab order to reconstruct
// Result exactly.
type SlabPartial struct {
	ECoul, ELJ float64
	Pairs      int
}

// Deferred is a Newton-pair reaction force owed to atom J of the slab
// above the range that recorded it.
type Deferred struct {
	J int32
	F vec.V
}

// SlabScratch holds the per-range deferred-force lists of
// ComputeSlabRange; reuse one per rank so steady-state calls allocate
// nothing once the lists have grown.
type SlabScratch struct {
	// def[k] collects the reaction forces slab s0+k owes slab s0+k+1.
	def [][]Deferred
}

func (sc *SlabScratch) reset(n int) {
	if cap(sc.def) < n {
		old := sc.def
		sc.def = make([][]Deferred, n)
		copy(sc.def, old)
	}
	sc.def = sc.def[:n]
	for i := range sc.def {
		sc.def[i] = sc.def[i][:0]
	}
}

// ComputeSlabRange evaluates the pairs owned by cell-mode slabs [s0, s1)
// of cl, accumulating forces into f (full-length, global atom indices) and
// writing slab s0+k's energy partial into part[k] (len(part) ≥ s1−s0).
// Reaction forces between in-range slabs are applied internally in the
// serial order (after all slabs' owner passes, ascending source slab);
// those owed to slab s1 mod ns are returned for the caller to ship to that
// slab's owner, whose ApplyDeferred call must run after its own owner pass
// — the same phase order ComputeWithList uses. The caller zeroes f for the
// atoms of layers [s0, s1) beforehand (ComputeWithList zeroes the whole
// array via the force field).
func ComputeSlabRange(cl *celllist.List, pos []vec.V, q []float64, lj *LJ, alpha float64, excl *topol.Exclusions, f []vec.V, part []SlabPartial, sc *SlabScratch, s0, s1 int) []Deferred {
	n := s1 - s0
	sc.reset(n)
	for s := s0; s < s1; s++ {
		k := s - s0
		p := &part[k]
		*p = SlabPartial{}
		def := sc.def[k]
		cl.ForEachPairInSlab(s, pos, func(i, j int, d vec.V, r2 float64, tgt int) {
			if excl.Excluded(i, j) {
				return
			}
			p.Pairs++
			eC, eLJ, fr := pairEval(q[i]*q[j], lj, i, j, alpha, r2)
			p.ECoul += eC
			p.ELJ += eLJ
			if fr != 0 {
				fv := d.Scale(fr)
				f[i] = f[i].Add(fv)
				if tgt == s {
					f[j] = f[j].Sub(fv)
				} else {
					def = append(def, Deferred{int32(j), fv})
				}
			}
		})
		sc.def[k] = def
	}
	// In-range deferred pass: slab s0+k's list targets slab s0+k+1. Applied
	// after every owner pass, ascending source — the applyDeferred order.
	for k := 0; k+1 < n; k++ {
		ApplyDeferred(f, sc.def[k])
	}
	return sc.def[n-1]
}

// ApplyDeferred subtracts the reaction forces in def from f in list order
// — the order the recording slab enumerated them, which is the order the
// serial applyDeferred pass replays them in.
func ApplyDeferred(f []vec.V, def []Deferred) {
	for _, e := range def {
		f[e.J] = f[e.J].Sub(e.F)
	}
}
