package nonbond

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

func randomSystem(rng *rand.Rand, n int, box vec.Box) ([]vec.V, []float64, *LJ) {
	pos := make([]vec.V, n)
	q := make([]float64, n)
	lj := &LJ{Sigma: make([]float64, n), Eps: make([]float64, n)}
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
		q[i] = rng.NormFloat64() * 0.5
		lj.Sigma[i] = 0.3
		if i%3 == 0 {
			lj.Eps[i] = 0.65
		}
	}
	return pos, q, lj
}

// naive recomputes the short-range interactions with a double loop.
func naive(box vec.Box, pos []vec.V, q []float64, lj *LJ, alpha, rc float64, excl *topol.Exclusions, f []vec.V) Result {
	var res Result
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			if excl.Excluded(i, j) {
				continue
			}
			d := box.MinImage(pos[i].Sub(pos[j]))
			r2 := d.Norm2()
			if r2 > rc*rc {
				continue
			}
			res.Pairs++
			r := math.Sqrt(r2)
			var fr float64
			if qq := q[i] * q[j]; qq != 0 {
				e := qq * math.Erfc(alpha*r) / r * units.Coulomb
				res.ECoul += e
				fr += (e + qq*units.Coulomb*alpha*twoOverSqrtPi*math.Exp(-alpha*alpha*r2)) / r2
			}
			if lj.Eps[i] != 0 && lj.Eps[j] != 0 {
				eps := math.Sqrt(lj.Eps[i] * lj.Eps[j])
				sig := 0.5 * (lj.Sigma[i] + lj.Sigma[j])
				sr6 := math.Pow(sig*sig/r2, 3)
				res.ELJ += 4 * eps * (sr6*sr6 - sr6)
				fr += 24 * eps * (2*sr6*sr6 - sr6) / r2
			}
			if f != nil {
				fv := d.Scale(fr)
				f[i] = f[i].Add(fv)
				f[j] = f[j].Sub(fv)
			}
		}
	}
	return res
}

func TestMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(4)
	pos, q, lj := randomSystem(rng, 120, box)
	excl := topol.NewExclusions(len(pos))
	for g := 0; g+2 < len(pos); g += 3 {
		excl.AddGroup([]int{g, g + 1, g + 2})
	}
	f1 := make([]vec.V, len(pos))
	f2 := make([]vec.V, len(pos))
	r1 := Compute(box, pos, q, lj, 2.5, 1.1, excl, f1)
	r2 := naive(box, pos, q, lj, 2.5, 1.1, excl, f2)
	if r1.Pairs != r2.Pairs {
		t.Fatalf("pair counts %d vs %d", r1.Pairs, r2.Pairs)
	}
	if math.Abs(r1.ECoul-r2.ECoul) > 1e-9*math.Abs(r2.ECoul) {
		t.Errorf("ECoul %g vs %g", r1.ECoul, r2.ECoul)
	}
	if math.Abs(r1.ELJ-r2.ELJ) > 1e-9*math.Abs(r2.ELJ) {
		t.Errorf("ELJ %g vs %g", r1.ELJ, r2.ELJ)
	}
	for i := range f1 {
		if f1[i].Sub(f2[i]).Norm() > 1e-8*math.Max(1, f2[i].Norm()) {
			t.Fatalf("force %d: %v vs %v", i, f1[i], f2[i])
		}
	}
}

func TestLJMinimumLocation(t *testing.T) {
	// Two LJ-only particles: the force vanishes at r = 2^{1/6}σ and the
	// energy there is −ε.
	box := vec.Cubic(10)
	sigma, eps := 0.3, 0.7
	rmin := math.Pow(2, 1.0/6.0) * sigma
	pos := []vec.V{{5, 5, 5}, {5 + rmin, 5, 5}}
	lj := &LJ{Sigma: []float64{sigma, sigma}, Eps: []float64{eps, eps}}
	f := make([]vec.V, 2)
	res := Compute(box, pos, []float64{0, 0}, lj, 0, 2, nil, f)
	if math.Abs(res.ELJ+eps) > 1e-12 {
		t.Errorf("LJ minimum energy %g, want %g", res.ELJ, -eps)
	}
	if f[0].Norm() > 1e-10 {
		t.Errorf("force at LJ minimum %v", f[0])
	}
}

func TestPlainCoulombAlphaZero(t *testing.T) {
	box := vec.Cubic(10)
	pos := []vec.V{{5, 5, 5}, {5.5, 5, 5}}
	q := []float64{1, -1}
	lj := &LJ{Sigma: []float64{0, 0}, Eps: []float64{0, 0}}
	res := Compute(box, pos, q, lj, 0, 2, nil, nil)
	want := -units.Coulomb / 0.5
	if math.Abs(res.ECoul-want) > 1e-10*math.Abs(want) {
		t.Errorf("plain Coulomb %g, want %g", res.ECoul, want)
	}
}

func TestForceGradientConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	box := vec.Cubic(3)
	pos, q, lj := randomSystem(rng, 20, box)
	f := make([]vec.V, len(pos))
	Compute(box, pos, q, lj, 2.0, 1.2, nil, f)
	energy := func() float64 {
		r := Compute(box, pos, q, lj, 2.0, 1.2, nil, nil)
		return r.ECoul + r.ELJ
	}
	const h = 1e-7
	for _, i := range []int{0, 7, 19} {
		for axis := 0; axis < 3; axis++ {
			p0 := pos[i]
			pos[i][axis] = p0[axis] + h
			ep := energy()
			pos[i][axis] = p0[axis] - h
			em := energy()
			pos[i] = p0
			fd := -(ep - em) / (2 * h)
			// Tolerate cutoff-crossing noise: pairs near rc make E only
			// C⁰-continuous. Use a loose relative tolerance.
			if math.Abs(f[i][axis]-fd) > 1e-3*math.Max(10, math.Abs(fd)) {
				t.Errorf("atom %d axis %d: F %.6f vs fd %.6f", i, axis, f[i][axis], fd)
			}
		}
	}
}

func TestExclusionsRespected(t *testing.T) {
	box := vec.Cubic(4)
	pos := []vec.V{{1, 1, 1}, {1.05, 1, 1}}
	q := []float64{1, 1}
	lj := &LJ{Sigma: []float64{0.3, 0.3}, Eps: []float64{0.6, 0.6}}
	excl := topol.NewExclusions(2)
	excl.Add(0, 1)
	res := Compute(box, pos, q, lj, 2.0, 1.0, excl, nil)
	if res.Pairs != 0 || res.ECoul != 0 || res.ELJ != 0 {
		t.Errorf("excluded pair leaked: %+v", res)
	}
}

func BenchmarkComputeWater1536(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(2.49)
	pos, q, lj := randomSystem(rng, 1536, box)
	f := make([]vec.V, len(pos))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(box, pos, q, lj, 2.3, 1.0, nil, f)
	}
}
