package nonbond

// Steady-state allocation gates for the short-range engine. After the first
// call warms the scratch pool, recomputing over a reused cell list or a
// buffered Verlet list must not allocate at all: the inner loop runs every
// MD step and any per-step garbage would dominate GC pressure at scale.

import (
	"math/rand"
	"runtime"
	"testing"

	"tme4a/internal/celllist"
	"tme4a/internal/vec"
)

func TestComputeWithListSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	rng := rand.New(rand.NewSource(nameSeed(t)))
	for _, tc := range []struct {
		name string
		box  vec.Box
	}{
		{"cells", vec.Cubic(5)},
		{"direct", vec.Cubic(2.2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := 300
			pos, q, lj := randomSystem(rng, n, tc.box)
			excl := testExclusions(n)
			cl := celllist.New(tc.box, 1.0)
			f := make([]vec.V, n)
			cl.Rebuild(pos)
			ComputeWithList(cl, tc.box, pos, q, lj, 2.5, excl, f) // warm the pool
			allocs := testing.AllocsPerRun(10, func() {
				cl.Rebuild(pos)
				ComputeWithList(cl, tc.box, pos, q, lj, 2.5, excl, f)
			})
			if allocs != 0 {
				t.Fatalf("Rebuild+ComputeWithList allocates %.1f per run, want 0", allocs)
			}
		})
	}
}

func TestVerletComputeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	rng := rand.New(rand.NewSource(nameSeed(t)))
	box := vec.Cubic(4)
	n := 300
	pos, q, lj := randomSystem(rng, n, box)
	excl := testExclusions(n)

	v := NewVerletList(box, 1.0, 0.2)
	v.Rebuild(pos, excl)
	f := make([]vec.V, n)
	v.Compute(pos, q, lj, 2.5, f)
	allocs := testing.AllocsPerRun(10, func() {
		v.Compute(pos, q, lj, 2.5, f)
	})
	if allocs != 0 {
		t.Fatalf("VerletList.Compute allocates %.1f per run, want 0", allocs)
	}

	// Rebuild at the same atom count must also be allocation-free once the
	// buckets have grown to capacity.
	v.Rebuild(pos, excl)
	allocs = testing.AllocsPerRun(10, func() {
		v.Rebuild(pos, excl)
	})
	if allocs != 0 {
		t.Fatalf("VerletList.Rebuild allocates %.1f per run, want 0", allocs)
	}
}
