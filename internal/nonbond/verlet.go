package nonbond

import (
	"math"

	"tme4a/internal/celllist"
	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// VerletList is a buffered pair list ("Verlet list"): pairs within
// cutoff+skin are enumerated once and reused until any atom has moved more
// than skin/2, amortizing the cell-list traversal over many MD steps.
// This mirrors GROMACS' Verlet scheme (the paper's reference runs use
// verlet-buffer-tolerance) and the import-region buffering of the
// MDGRAPE-4A cells.
type VerletList struct {
	Box    vec.Box
	Cutoff float64
	Skin   float64

	pairs []pair
	ref   []vec.V // positions at build time
	n     int
}

type pair struct {
	i, j int32
}

// NewVerletList creates an empty list; Rebuild must be called before use.
func NewVerletList(box vec.Box, cutoff, skin float64) *VerletList {
	return &VerletList{Box: box, Cutoff: cutoff, Skin: skin}
}

// Rebuild regenerates the pair list from the current positions.
func (v *VerletList) Rebuild(pos []vec.V, excl *topol.Exclusions) {
	v.n = len(pos)
	v.pairs = v.pairs[:0]
	if cap(v.ref) < len(pos) {
		v.ref = make([]vec.V, len(pos))
	}
	v.ref = v.ref[:len(pos)]
	copy(v.ref, pos)
	cl := celllist.Build(v.Box, v.Cutoff+v.Skin, pos)
	cl.ForEachPair(pos, func(i, j int, d vec.V, r2 float64) {
		if excl.Excluded(i, j) {
			return
		}
		v.pairs = append(v.pairs, pair{int32(i), int32(j)})
	})
}

// NeedsRebuild reports whether any atom has moved more than skin/2 since
// the last Rebuild (the standard sufficient condition for list validity).
func (v *VerletList) NeedsRebuild(pos []vec.V) bool {
	if len(pos) != v.n || v.n == 0 {
		return true
	}
	lim2 := v.Skin * v.Skin / 4
	for i := range pos {
		d := v.Box.MinImage(pos[i].Sub(v.ref[i]))
		if d.Norm2() > lim2 {
			return true
		}
	}
	return false
}

// NPairs returns the current buffered pair count.
func (v *VerletList) NPairs() int { return len(v.pairs) }

// Compute evaluates the short-range interactions over the buffered list
// (pairs beyond the true cutoff are skipped), accumulating forces into f.
// Exclusions were applied at Rebuild time.
func (v *VerletList) Compute(pos []vec.V, q []float64, lj *LJ, alpha float64, f []vec.V) Result {
	var res Result
	rc2 := v.Cutoff * v.Cutoff
	for _, p := range v.pairs {
		i, j := int(p.i), int(p.j)
		d := v.Box.MinImage(pos[i].Sub(pos[j]))
		r2 := d.Norm2()
		if r2 > rc2 {
			continue
		}
		res.Pairs++
		r := math.Sqrt(r2)
		inv2 := 1 / r2
		var fr float64
		if qq := q[i] * q[j]; qq != 0 {
			var e float64
			if alpha > 0 {
				e = qq * math.Erfc(alpha*r) / r * units.Coulomb
				fr += (e + qq*units.Coulomb*alpha*twoOverSqrtPi*math.Exp(-alpha*alpha*r2)) * inv2
			} else {
				e = qq / r * units.Coulomb
				fr += e * inv2
			}
			res.ECoul += e
		}
		if lj != nil && lj.Eps[i] != 0 && lj.Eps[j] != 0 {
			eps := math.Sqrt(lj.Eps[i] * lj.Eps[j])
			sig := 0.5 * (lj.Sigma[i] + lj.Sigma[j])
			sr2 := sig * sig * inv2
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			res.ELJ += 4 * eps * (sr12 - sr6)
			fr += 24 * eps * (2*sr12 - sr6) * inv2
		}
		if f != nil && fr != 0 {
			fv := d.Scale(fr)
			f[i] = f[i].Add(fv)
			f[j] = f[j].Sub(fv)
		}
	}
	return res
}
